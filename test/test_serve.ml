(* The serving layer: cache bookkeeping (LRU order, TTL expiry, exact
   counters), fingerprint collision-freedom, scheduler backpressure, the
   deadline-degradation contract, and the headline determinism guarantee
   — a served response is bit-identical to the direct library call. *)

open Mde_relational
module Serve = Mde_serve
module Cache = Mde_serve.Cache
module Scheduler = Mde_serve.Scheduler
module Server = Mde_serve.Server
module Workload = Mde_serve.Workload
module Target = Mde_serve.Target
module Demo = Mde_serve.Demo
module Pool = Mde_par.Pool
module Rng = Mde_prob.Rng
module Database = Mde_mcdb.Database
module Est = Mde_mcdb.Estimator
module Chain = Mde_simsql.Chain
module Rc = Mde_composite.Result_cache

(* --- cache --- *)

let test_cache_lru () =
  let c = Cache.create ~capacity:3 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  ignore (Cache.find c "a");
  (* [b] is now least recently used; a fourth insert evicts it. *)
  Cache.add c "d" 4;
  Alcotest.(check (list string)) "MRU order" [ "d"; "a"; "c" ] (Cache.keys_mru_first c);
  Alcotest.(check bool) "b evicted" false (Cache.mem c "b");
  Alcotest.(check bool) "a kept" true (Cache.mem c "a");
  Alcotest.(check int) "one eviction" 1 (Cache.counters c).Cache.evictions

let test_cache_ttl () =
  let now = ref 0. in
  let c = Cache.create ~capacity:4 ~ttl:10. ~clock:(fun () -> !now) () in
  Cache.add c "k" 1;
  now := 5.;
  Alcotest.(check (option int)) "young entry hits" (Some 1) (Cache.find c "k");
  now := 20.;
  Alcotest.(check (option int)) "expired entry misses" None (Cache.find c "k");
  let ctr = Cache.counters c in
  Alcotest.(check int) "one expiration" 1 ctr.Cache.expirations;
  Alcotest.(check int) "expiry counted as a miss" 1 ctr.Cache.misses;
  Alcotest.(check bool) "expired entry removed" false (Cache.mem c "k")

let test_cache_counters () =
  let c = Cache.create ~capacity:2 () in
  Alcotest.(check (option int)) "cold miss" None (Cache.find c "x");
  ignore (Cache.find c "y");
  Cache.add c "x" 7;
  ignore (Cache.find c "x");
  ignore (Cache.find c "x");
  ignore (Cache.find c "x");
  Cache.add c ~admit:false "z" 9;
  let ctr = Cache.counters c in
  Alcotest.(check int) "hits" 3 ctr.Cache.hits;
  Alcotest.(check int) "misses" 2 ctr.Cache.misses;
  Alcotest.(check int) "evictions" 0 ctr.Cache.evictions;
  Alcotest.(check int) "expirations" 0 ctr.Cache.expirations;
  Alcotest.(check int) "admission rejections" 1 ctr.Cache.admission_rejections;
  Alcotest.(check bool) "rejected entry absent" false (Cache.mem c "z");
  Alcotest.(check (float 1e-12)) "hit rate" 0.6 (Cache.hit_rate c)

(* Counter totals must not depend on which probe notices an expiry:
   [mem] and [find] each delete an expired entry and count one
   expiration, and only [find] adds a miss. *)
let test_cache_expiry_counter_parity () =
  let probe first =
    let now = ref 0. in
    let c = Cache.create ~capacity:4 ~ttl:10. ~clock:(fun () -> !now) () in
    Cache.add c "k" 1;
    now := 20.;
    (match first with
    | `Mem_then_find ->
      Alcotest.(check bool) "mem sees expiry" false (Cache.mem c "k");
      Alcotest.(check (option int)) "find then misses" None (Cache.find c "k")
    | `Find_then_mem ->
      Alcotest.(check (option int)) "find sees expiry" None (Cache.find c "k");
      Alcotest.(check bool) "mem then misses" false (Cache.mem c "k"));
    Cache.counters c
  in
  let a = probe `Mem_then_find and b = probe `Find_then_mem in
  Alcotest.(check int) "expirations agree" a.Cache.expirations b.Cache.expirations;
  Alcotest.(check int) "one expiration either way" 1 a.Cache.expirations;
  Alcotest.(check int) "misses agree" a.Cache.misses b.Cache.misses;
  Alcotest.(check int) "one miss either way" 1 a.Cache.misses;
  Alcotest.(check int) "mem removed the dead entry" 0
    (let now = ref 0. in
     let c = Cache.create ~capacity:4 ~ttl:10. ~clock:(fun () -> !now) () in
     Cache.add c "k" 1;
     now := 20.;
     ignore (Cache.mem c "k");
     Cache.length c)

let test_cache_add_counts_expired_tail_as_expiration () =
  let now = ref 0. in
  let c = Cache.create ~capacity:2 ~ttl:10. ~clock:(fun () -> !now) () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* Both entries are past their TTL when the capacity displacement
     happens: dropping the dead tail is an expiration, not an LRU
     eviction. *)
  now := 20.;
  Cache.add c "c" 3;
  let ctr = Cache.counters c in
  Alcotest.(check int) "no eviction charged" 0 ctr.Cache.evictions;
  Alcotest.(check int) "expiration charged" 1 ctr.Cache.expirations;
  (* Refresh [b] so the tail is live again: a live tail displaced at
     capacity is still an eviction. *)
  Cache.add c "b" 5;
  Cache.add c "d" 4;
  let ctr = Cache.counters c in
  Alcotest.(check int) "live tail evicts" 1 ctr.Cache.evictions;
  Alcotest.(check int) "expirations unchanged" 1 ctr.Cache.expirations

let test_cache_pays_off () =
  (* A popular class (most requests exact repeats) pays off; a class
     that never repeats does not. *)
  let popular =
    Cache.class_statistics ~compute_cost:0.1 ~serve_cost:0.001 ~result_variance:1.0
      ~repeat_fraction:0.9
  in
  let unpopular =
    Cache.class_statistics ~compute_cost:0.1 ~serve_cost:0.001 ~result_variance:1.0
      ~repeat_fraction:0.
  in
  Alcotest.(check bool) "repeats admit" true (Cache.pays_off popular);
  Alcotest.(check bool) "no repeats reject" false (Cache.pays_off unpopular)

(* --- fixtures mirroring the direct library calls --- *)

let sbp_db rows =
  let patients =
    Table.create
      (Schema.of_list [ ("pid", Value.Tint); ("gender", Value.Tstring) ])
      (List.init rows (fun i ->
           [| Value.Int i; Value.String (if i mod 2 = 0 then "F" else "M") |]))
  in
  let param =
    Table.create
      (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
      [ [| Value.Float 120.; Value.Float 15. |] ]
  in
  let st =
    Mde_mcdb.Stochastic_table.define ~name:"SBP_DATA"
      ~schema:
        (Schema.of_list
           [ ("pid", Value.Tint); ("gender", Value.Tstring); ("sbp", Value.Tfloat) ])
      ~driver:patients ~vg:Mde_mcdb.Vg.normal
      ~params:(fun _ -> [ param ])
      ~combine:(fun d v -> [| d.(0); d.(1); v.(0) |])
  in
  let db = Database.create () in
  Database.add_stochastic db st;
  db

let sbp_query catalog =
  let t = Catalog.find catalog "SBP_DATA" in
  let total = ref 0. and n = ref 0 in
  Table.iter
    (fun row ->
      total := !total +. Value.to_float row.(2);
      incr n)
    t;
  !total /. float_of_int !n

let walk_chain () =
  let schema = Schema.of_list [ ("x", Value.Tfloat) ] in
  let table x = Table.create schema [ [| Value.Float x |] ] in
  let current state = Value.to_float (Table.rows (Chain.table state "X")).(0).(0) in
  ( {
      Chain.initial = (fun _rng -> Chain.state_of_tables [ ("X", table 0.) ]);
      transition =
        (fun rng state ->
          Chain.with_table state "X" (table (current state +. Rng.float rng -. 0.5)));
    },
    current )

let two_stage =
  { Rc.model1 = (fun rng -> 10. *. Rng.float rng); model2 = (fun rng y1 -> y1 +. Rng.float rng) }

let make_server ?pool ?clock ?scheduler ?admission db =
  let t = Server.create ?pool ?clock ?scheduler ?admission () in
  Server.register_mcdb t ~name:"sbp" ~query:sbp_query db;
  let chain, current = walk_chain () in
  Server.register_chain t ~name:"walk" ~query:current chain;
  Server.register_composite t ~name:"queue" two_stage;
  t

let req ?deadline model kind seed = { Server.model; kind; seed; deadline }

(* --- fingerprints --- *)

let test_fingerprint_collision_free () =
  let t = make_server (sbp_db 10) in
  let requests =
    List.concat
      [
        List.concat_map
          (fun reps ->
            List.map (fun seed -> req "sbp" (Server.Mcdb_mean { reps }) seed) [ 0; 1; 2 ])
          [ 2; 3; 10 ];
        List.concat_map
          (fun p ->
            List.map (fun seed -> req "sbp" (Server.Mcdb_tail { reps = 64; p }) seed) [ 0; 1 ])
          [ 0.9; 0.95 ];
        List.concat_map
          (fun steps ->
            List.map (fun reps -> req "walk" (Server.Chain_mean { steps; reps }) 0) [ 2; 3 ])
          [ 1; 2 ];
        List.concat_map
          (fun n ->
            List.map
              (fun alpha -> req "queue" (Server.Composite_estimate { n; alpha }) 0)
              [ 0.25; 0.5 ])
          [ 2; 4 ];
      ]
  in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let fp = Server.fingerprint t r in
      Alcotest.(check string) "fingerprint is stable" fp (Server.fingerprint t r);
      (match Hashtbl.find_opt seen fp with
      | Some () -> Alcotest.failf "fingerprint collision: %s" fp
      | None -> ());
      Hashtbl.add seen fp ())
    requests;
  Alcotest.(check int) "all distinct" (List.length requests) (Hashtbl.length seen)

(* --- determinism: served == direct library call --- *)

let get_served = function
  | `Served (r : Server.response) -> r
  | `Rejected -> Alcotest.fail "request rejected unexpectedly"

let check_pair = Alcotest.(check (pair (float 0.) (float 0.)))

let test_served_equals_direct () =
  let db = sbp_db 40 in
  let chain, _ = walk_chain () in
  let mean_direct = Database.estimate db (Rng.create ~seed:11 ()) ~reps:24 ~query:sbp_query in
  let tail_samples =
    Database.monte_carlo db (Rng.create ~seed:12 ()) ~reps:20 ~query:sbp_query
  in
  let chain_direct =
    let series = Chain.monte_carlo chain (Rng.create ~seed:13 ()) ~steps:5 ~reps:12 ~query:(fun
        state -> Value.to_float (Table.rows (Chain.table state "X")).(0).(0))
    in
    Est.of_samples (Array.map (fun row -> row.(5)) series)
  in
  let rc_direct = Rc.estimate two_stage (Rng.create ~seed:14 ()) ~n:16 ~alpha:0.5 in
  Pool.with_pool ~domains:3 (fun pool ->
      let t = make_server ~pool db in
      (* Submit the four kinds plus same-class neighbours so the batcher
         actually groups work, then drain them all at once. *)
      let submit r =
        match Server.submit t r with
        | `Queued id -> id
        | `Rejected -> Alcotest.fail "rejected"
      in
      let id_mean = submit (req "sbp" (Server.Mcdb_mean { reps = 24 }) 11) in
      let _ = submit (req "sbp" (Server.Mcdb_mean { reps = 24 }) 99) in
      let id_tail = submit (req "sbp" (Server.Mcdb_tail { reps = 20; p = 0.9 }) 12) in
      let id_chain = submit (req "walk" (Server.Chain_mean { steps = 5; reps = 12 }) 13) in
      let id_rc = submit (req "queue" (Server.Composite_estimate { n = 16; alpha = 0.5 }) 14) in
      let responses = Server.drain t in
      let find id = List.assoc id responses in
      let r_mean = find id_mean in
      Alcotest.(check (float 0.)) "mcdb mean" mean_direct.Est.mean r_mean.Server.value;
      check_pair "mcdb ci95" mean_direct.Est.ci95 (Option.get r_mean.Server.ci95);
      let r_tail = find id_tail in
      Alcotest.(check (float 0.)) "mcdb tail quantile"
        (Est.extreme_quantile tail_samples 0.9)
        r_tail.Server.value;
      check_pair "tail ci" (Est.quantile_ci tail_samples 0.9 0.95)
        (Option.get r_tail.Server.ci95);
      let r_chain = find id_chain in
      Alcotest.(check (float 0.)) "chain mean" chain_direct.Est.mean r_chain.Server.value;
      let r_rc = find id_rc in
      Alcotest.(check (float 0.)) "composite theta" rc_direct.Rc.theta_hat r_rc.Server.value;
      (* Served again: a cache hit with the identical bits. *)
      let again = get_served (Server.serve t (req "sbp" (Server.Mcdb_mean { reps = 24 }) 11)) in
      Alcotest.(check bool) "second serve hits" true (again.Server.cache = Server.Hit);
      Alcotest.(check (float 0.)) "cached bits identical" mean_direct.Est.mean
        again.Server.value);
  (* And without a pool (sequential path): still the same bits. *)
  let t_seq = make_server db in
  let r = get_served (Server.serve t_seq (req "sbp" (Server.Mcdb_mean { reps = 24 }) 11)) in
  Alcotest.(check (float 0.)) "sequential serve identical" mean_direct.Est.mean
    r.Server.value

let test_backpressure () =
  let t =
    make_server ~scheduler:{ Scheduler.queue_capacity = 4; batch_size = 2 } (sbp_db 10)
  in
  let outcomes =
    List.init 6 (fun i -> Server.submit t (req "sbp" (Server.Mcdb_mean { reps = 4 }) i))
  in
  let accepted =
    List.length (List.filter (function `Queued _ -> true | `Rejected -> false) outcomes)
  in
  Alcotest.(check int) "high-water mark admits 4" 4 accepted;
  Alcotest.(check int) "2 rejected" 2 (Server.stats t).Server.rejected;
  Alcotest.(check int) "queue drains fully" 4 (List.length (Server.drain t))

exception Request_trouble

(* One raising request must not destroy accepted work: completions from
   earlier batches and from its own batch siblings survive the raise and
   come out of the next drain, the unprocessed remainder stays queued,
   and the counters account every item exactly once. *)
let test_drain_exception_preserves_accepted_work () =
  let s = Scheduler.create { Scheduler.queue_capacity = 16; batch_size = 2 } in
  let submit i =
    match
      Scheduler.submit s ~class_key:"k" (fun ~time_left:_ ->
          if i = 2 then raise Request_trouble else i * 10)
    with
    | `Accepted ticket -> ticket
    | `Rejected -> Alcotest.fail "submit rejected"
  in
  (* Batches of 2: [0;1] completes, [2;3] has the raiser (3 is its
     sibling), [4] is never dispatched. *)
  let tickets = List.init 5 submit in
  Alcotest.(check bool) "first drain raises" true
    (try
       ignore (Scheduler.drain s);
       false
     with Request_trouble -> true);
  let ctr = Scheduler.counters s in
  Alcotest.(check int) "completed counts survivors" 3 ctr.Scheduler.completed;
  Alcotest.(check int) "failed counts the raiser" 1 ctr.Scheduler.failed;
  Alcotest.(check int) "undispatched item still pending" 1 (Scheduler.pending s);
  (* The second drain delivers the banked completions plus the
     remainder, in ticket order. *)
  let completions = Scheduler.drain s in
  Alcotest.(check (list int)) "all accepted work delivered"
    [ List.nth tickets 0; List.nth tickets 1; List.nth tickets 3; List.nth tickets 4 ]
    (List.map (fun c -> c.Scheduler.ticket) completions);
  Alcotest.(check (list int)) "results intact" [ 0; 10; 30; 40 ]
    (List.map (fun c -> c.Scheduler.result) completions);
  let ctr = Scheduler.counters s in
  Alcotest.(check int) "completed settles at 4" 4 ctr.Scheduler.completed;
  Alcotest.(check int) "nothing left pending" 0 (Scheduler.pending s)

(* The default scheduler clock is wall time, so a request that sleeps in
   the queue past its deadline must see a negative budget at dispatch —
   and its completion latency must include the sleep. *)
let test_wall_clock_sees_sleep () =
  let s = Scheduler.create Scheduler.default_config in
  let observed = ref None in
  (match
     Scheduler.submit s ~class_key:"k" ~deadline:0.02 (fun ~time_left ->
         observed := time_left;
         0)
   with
  | `Accepted _ -> ()
  | `Rejected -> Alcotest.fail "submit rejected");
  Unix.sleepf 0.06;
  (match Scheduler.drain s with
  | [ c ] ->
    Alcotest.(check bool)
      (Printf.sprintf "latency %.3f includes the queue sleep" c.Scheduler.latency)
      true
      (c.Scheduler.latency >= 0.05)
  | _ -> Alcotest.fail "expected one completion");
  match !observed with
  | Some left ->
    Alcotest.(check bool)
      (Printf.sprintf "time_left %.3f negative after sleeping past the deadline" left)
      true (left < 0.)
  | None -> Alcotest.fail "deadline budget not forwarded"

(* The counterpart documents the bug this replaced: with CPU time
   injected, the same sleep burns no CPU, the clock stands still, and
   the blown deadline goes unnoticed. The [?clock] stays injectable, so
   the old behaviour is reproducible on demand. *)
let test_cpu_clock_misses_sleep () =
  let s = Scheduler.create ~clock:Sys.time Scheduler.default_config in
  let observed = ref None in
  ignore
    (Scheduler.submit s ~class_key:"k" ~deadline:0.02 (fun ~time_left ->
         observed := time_left;
         0));
  Unix.sleepf 0.06;
  ignore (Scheduler.drain s);
  match !observed with
  | Some left ->
    Alcotest.(check bool)
      (Printf.sprintf "CPU budget %.3f still positive: the sleep was invisible" left)
      true (left > 0.)
  | None -> Alcotest.fail "deadline budget not forwarded"

(* A clock that advances one unit per reading makes deadline arithmetic
   deterministic: any deadline under 1.0 is blown by dispatch time. *)
let ticking () =
  let t = ref 0. in
  fun () ->
    let v = !t in
    t := v +. 1.;
    v

let test_deadline_degradation () =
  let db = sbp_db 40 in
  let t = make_server ~clock:(ticking ()) db in
  let full = get_served (Server.serve t (req "sbp" (Server.Mcdb_mean { reps = 24 }) 5)) in
  Alcotest.(check bool) "full budget not degraded" false full.Server.degraded;
  Alcotest.(check int) "full reps" 24 full.Server.reps_executed;
  let degraded =
    get_served (Server.serve t (req ~deadline:0.5 "sbp" (Server.Mcdb_mean { reps = 24 }) 7))
  in
  Alcotest.(check bool) "blown deadline degrades" true degraded.Server.degraded;
  Alcotest.(check int) "degraded to the floor" 2 degraded.Server.reps_executed;
  Alcotest.(check int) "requested budget reported" 24 degraded.Server.reps_requested;
  (* The partial estimate is the direct call at the reduced budget... *)
  let direct_floor = Database.estimate db (Rng.create ~seed:7 ()) ~reps:2 ~query:sbp_query in
  Alcotest.(check (float 0.)) "partial estimate is the direct 2-rep call"
    direct_floor.Est.mean degraded.Server.value;
  check_pair "partial CI is the direct 2-rep CI" direct_floor.Est.ci95
    (Option.get degraded.Server.ci95);
  (* ...with the widened CI of 2 replications. *)
  let width (lo, hi) = hi -. lo in
  let direct_full = Database.estimate db (Rng.create ~seed:7 ()) ~reps:24 ~query:sbp_query in
  Alcotest.(check bool) "degraded CI wider" true
    (width (Option.get degraded.Server.ci95) > width direct_full.Est.ci95);
  (* Degraded results are never cached: a full-budget retry misses and
     recomputes the undegraded answer. *)
  let retry = get_served (Server.serve t (req "sbp" (Server.Mcdb_mean { reps = 24 }) 7)) in
  Alcotest.(check bool) "retry is a miss" true (retry.Server.cache = Server.Miss);
  Alcotest.(check bool) "retry not degraded" false retry.Server.degraded;
  Alcotest.(check (float 0.)) "retry serves the full answer" direct_full.Est.mean
    retry.Server.value;
  let cached = get_served (Server.serve t (req "sbp" (Server.Mcdb_mean { reps = 24 }) 7)) in
  Alcotest.(check bool) "full answer now cached" true (cached.Server.cache = Server.Hit)

(* The report's p50/p95/p99 come from [percentiles] (one sort); each
   element must be bit-identical to the per-call [percentile] path. *)
let test_workload_percentiles () =
  let rng = Rng.create ~seed:44 () in
  let xs = Array.init 237 (fun _ -> Rng.float rng *. 10.) in
  let qs = [| 0.; 0.25; 0.50; 0.95; 0.99; 1. |] in
  let ps = Workload.percentiles xs qs in
  Array.iteri
    (fun i q ->
      let expect = Workload.percentile xs q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f single-sort = per-call" q)
        true
        (Int64.equal (Int64.bits_of_float expect) (Int64.bits_of_float ps.(i))))
    qs;
  (* The empty-sample rejection is a real branch, not an assert, so it
     must hold under --profile noassert too. *)
  (match Workload.percentile [||] 0.5 with
  | _ -> Alcotest.fail "percentile on empty: expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Workload.percentiles [||] qs with
  | _ -> Alcotest.fail "percentiles on empty: expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* "sbp_bundle" pushes the same query through the columnar bundle
   engine ([Database.plan_samples] with an Avg plan) that "sbp" answers
   with the naive instantiate-and-scan loop. Same seed, same reps: the
   served samples — hence value and CI — must be bit-identical. *)
let test_bundle_model_matches_naive_model () =
  let t = Demo.server ~rows:25 () in
  List.iter
    (fun (kind, seed) ->
      let naive = get_served (Server.serve t (req "sbp" kind seed)) in
      let bundle = get_served (Server.serve t (req "sbp_bundle" kind seed)) in
      Alcotest.(check (float 0.)) "value identical" naive.Server.value
        bundle.Server.value;
      check_pair "ci identical" (Option.get naive.Server.ci95)
        (Option.get bundle.Server.ci95);
      Alcotest.(check int) "same budget" naive.Server.reps_executed
        bundle.Server.reps_executed)
    [
      (Server.Mcdb_mean { reps = 24 }, 5);
      (Server.Mcdb_tail { reps = 40; p = 0.9 }, 6);
    ]

(* The demo's registered query now runs on the columnar substrate; the
   hand-rolled row fold is kept as its oracle. Same realized instance →
   identical bits, so every served "sbp" answer is unchanged by the
   rewiring. *)
let test_demo_columnar_query_matches_rows () =
  let db = sbp_db 60 in
  let rng = Rng.create ~seed:21 () in
  for _ = 1 to 10 do
    let catalog = Database.instantiate db rng in
    Alcotest.(check bool) "columnar mean == row fold, bit for bit" true
      (Int64.bits_of_float (Demo.mean_sbp catalog)
      = Int64.bits_of_float (Demo.mean_sbp_rows catalog))
  done

let test_demo_cold_warm () =
  let server = Demo.server ~rows:30 () in
  let catalog = Demo.catalog 8 in
  let config = { Workload.requests = 48; concurrency = 4; zipf_s = 1.0; seed = 3 } in
  let cold, warm, verdict = Demo.cold_warm (Target.of_server server) ~catalog config in
  (match verdict with
  | `Identical n -> Alcotest.(check bool) "some requests compared" true (n > 0)
  | `Mismatch n -> Alcotest.failf "%d warm responses diverged from cold" n);
  Alcotest.(check bool) "warm hit rate strictly higher" true
    (warm.Workload.hit_rate > cold.Workload.hit_rate);
  Alcotest.(check int) "all requests served" config.Workload.requests
    cold.Workload.served

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "LRU eviction order" `Quick test_cache_lru;
          Alcotest.test_case "TTL expiry" `Quick test_cache_ttl;
          Alcotest.test_case "exact counters" `Quick test_cache_counters;
          Alcotest.test_case "expiry counter parity (mem vs find)" `Quick
            test_cache_expiry_counter_parity;
          Alcotest.test_case "expired tail counts as expiration" `Quick
            test_cache_add_counts_expired_tail_as_expiration;
          Alcotest.test_case "cost-aware admission" `Quick test_cache_pays_off;
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "collision-free over params" `Quick test_fingerprint_collision_free ] );
      ( "server",
        [
          Alcotest.test_case "served == direct (pooled, batched, cached)" `Quick
            test_served_equals_direct;
          Alcotest.test_case "backpressure" `Quick test_backpressure;
          Alcotest.test_case "drain preserves accepted work on exception" `Quick
            test_drain_exception_preserves_accepted_work;
          Alcotest.test_case "wall clock sees queue sleep" `Quick
            test_wall_clock_sees_sleep;
          Alcotest.test_case "CPU clock misses queue sleep" `Quick
            test_cpu_clock_misses_sleep;
          Alcotest.test_case "deadline degradation" `Quick test_deadline_degradation;
          Alcotest.test_case "workload percentiles = per-call" `Quick
            test_workload_percentiles;
          Alcotest.test_case "bundle model == naive model" `Quick
            test_bundle_model_matches_naive_model;
          Alcotest.test_case "demo columnar query == row fold" `Quick
            test_demo_columnar_query_matches_rows;
          Alcotest.test_case "cold vs warm workload" `Quick test_demo_cold_warm;
        ] );
    ]
