open Mde_relational

let v_int i = Value.Int i
let v_str s = Value.String s
let v_float f = Value.Float f

let people_schema =
  Schema.of_list
    [ ("id", Value.Tint); ("name", Value.Tstring); ("age", Value.Tint); ("score", Value.Tfloat) ]

let people =
  Table.create people_schema
    [
      [| v_int 1; v_str "ann"; v_int 34; v_float 7.5 |];
      [| v_int 2; v_str "bob"; v_int 4; v_float 3.0 |];
      [| v_int 3; v_str "cal"; v_int 61; v_float 9.1 |];
      [| v_int 4; v_str "dee"; v_int 4; v_float 5.5 |];
      [| v_int 5; v_str "eli"; v_int 25; Value.Null |];
    ]

(* --- values and schemas --- *)

let test_value_compare () =
  Alcotest.(check bool) "int < float cross" true (Value.compare (v_int 1) (v_float 1.5) < 0);
  Alcotest.(check bool) "numeric equal" true (Value.equal (v_int 2) (v_float 2.));
  Alcotest.(check bool) "null smallest" true (Value.compare Value.Null (v_int (-100)) < 0);
  Alcotest.(check bool) "string order" true (Value.compare (v_str "a") (v_str "b") < 0)

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.create: duplicate column \"x\"") (fun () ->
      ignore (Schema.of_list [ ("x", Value.Tint); ("x", Value.Tfloat) ]))

let test_schema_lookup () =
  Alcotest.(check int) "index" 2 (Schema.column_index people_schema "age");
  Alcotest.(check bool) "mem" true (Schema.mem people_schema "score");
  Alcotest.(check bool) "not mem" false (Schema.mem people_schema "missing")

let test_schema_rename_concat () =
  let renamed = Schema.rename people_schema [ ("id", "pid") ] in
  Alcotest.(check bool) "renamed" true (Schema.mem renamed "pid");
  let other = Schema.of_list [ ("city", Value.Tstring) ] in
  let joined = Schema.concat renamed other in
  Alcotest.(check int) "arity" 5 (Schema.arity joined)

let test_table_type_check () =
  Alcotest.(check bool) "bad type raises" true
    (try
       ignore (Table.create people_schema [ [| v_str "oops"; v_str "x"; v_int 1; v_float 0. |] ]);
       false
     with Invalid_argument _ -> true)

let test_table_null_allowed () =
  Alcotest.(check int) "5 rows" 5 (Table.cardinality people);
  Alcotest.(check bool) "null kept" true (Value.is_null (Table.get people 4 "score"))

let test_value_display () =
  Alcotest.(check string) "null" "NULL" (Value.to_display Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_display (v_int 42));
  Alcotest.(check string) "bool" "true" (Value.to_display (Value.Bool true));
  Alcotest.(check string) "float" "2.5" (Value.to_display (v_float 2.5));
  Alcotest.(check bool) "coercion errors" true
    (try
       ignore (Value.to_float (v_str "x"));
       false
     with Invalid_argument _ -> true)

(* --- expressions --- *)

let test_expr_eval () =
  let row = (Table.rows people).(0) in
  let e = Expr.((col "age" + int 6) / int 2) in
  Alcotest.(check (float 1e-9)) "arith" 20. (Value.to_float (Expr.eval people_schema row e));
  Alcotest.(check bool) "bool" true
    (Expr.eval_bool people_schema row Expr.(col "name" = string "ann"));
  Alcotest.(check bool) "null comparison false" false
    (Expr.eval_bool people_schema (Table.rows people).(4) Expr.(col "score" > float 0.))

let test_expr_columns_used () =
  let e = Expr.((col "a" + col "b") * col "a") in
  Alcotest.(check (list string)) "distinct in order" [ "a"; "b" ] (Expr.columns_used e)

let test_expr_if () =
  let row = (Table.rows people).(1) in
  let e = Expr.(If (col "age" <= int 4, string "preschool", string "other")) in
  Alcotest.(check string) "if" "preschool"
    (Value.to_string_value (Expr.eval people_schema row e))

(* --- algebra --- *)

let test_select () =
  let kids = Algebra.select Expr.(col "age" <= int 4) people in
  Alcotest.(check int) "two preschoolers" 2 (Table.cardinality kids)

let test_project_extend () =
  let p = Algebra.project [ "name"; "age" ] people in
  Alcotest.(check int) "arity" 2 (Schema.arity (Table.schema p));
  let e = Algebra.extend [ ("age2", Value.Tint, Expr.(col "age" * int 2)) ] people in
  Alcotest.(check int) "computed" 68 (Value.to_int (Table.get e 0 "age2"))

let orders_schema =
  Schema.of_list [ ("order_id", Value.Tint); ("customer", Value.Tint); ("total", Value.Tfloat) ]

let orders =
  Table.create orders_schema
    [
      [| v_int 10; v_int 1; v_float 20. |];
      [| v_int 11; v_int 1; v_float 5. |];
      [| v_int 12; v_int 3; v_float 8. |];
      [| v_int 13; v_int 9; v_float 1. |];
    ]

let test_equi_join () =
  let j = Algebra.equi_join ~on:[ ("id", "customer") ] people orders in
  Alcotest.(check int) "3 matches" 3 (Table.cardinality j);
  (* Matches a hand-rolled nested loop. *)
  let manual = ref 0 in
  Table.iter
    (fun p ->
      Table.iter
        (fun o -> if Value.equal p.(0) o.(1) then incr manual)
        orders)
    people;
  Alcotest.(check int) "nested loop agrees" !manual (Table.cardinality j)

let test_left_join () =
  let j = Algebra.equi_join ~kind:Algebra.Left ~on:[ ("id", "customer") ] people orders in
  (* ann twice, bob padded, cal once, dee padded, eli padded = 6 rows. *)
  Alcotest.(check int) "left join rows" 6 (Table.cardinality j);
  let padded =
    Array.to_list (Table.rows j)
    |> List.filter (fun row -> Value.is_null row.(4))
  in
  Alcotest.(check int) "padded rows" 3 (List.length padded)

let test_theta_join () =
  let small = Algebra.rename [ ("id", "id2"); ("name", "name2"); ("age", "age2"); ("score", "score2") ] people in
  let j = Algebra.theta_join ~on:Expr.(col "age" < col "age2") people small in
  (* Count pairs with age_i < age_j manually. *)
  let ages = Table.column_floats people "age" in
  let expected = ref 0 in
  Array.iter (fun a -> Array.iter (fun b -> if a < b then incr expected) ages) ages;
  Alcotest.(check int) "pairs" !expected (Table.cardinality j)

let test_semi_anti_join () =
  let matched = Algebra.semi_join ~on:[ ("id", "customer") ] people orders in
  (* ann and cal have orders; each appears once despite ann's two orders. *)
  Alcotest.(check int) "semi join" 2 (Table.cardinality matched);
  let unmatched = Algebra.anti_join ~on:[ ("id", "customer") ] people orders in
  Alcotest.(check int) "anti join" 3 (Table.cardinality unmatched);
  (* Semi + anti partition the left side. *)
  Alcotest.(check int) "partition" 5
    (Table.cardinality matched + Table.cardinality unmatched);
  (* Null keys never match. *)
  let with_null =
    Table.create people_schema [ [| Value.Null; v_str "zed"; v_int 1; v_float 0. |] ]
  in
  Alcotest.(check int) "null key excluded" 0
    (Table.cardinality (Algebra.semi_join ~on:[ ("id", "customer") ] with_null orders))

let test_group_by () =
  let g =
    Algebra.group_by ~keys:[ "age" ]
      ~aggs:
        [
          ("n", Algebra.Count);
          ("total", Algebra.Sum (Expr.col "score"));
          ("best", Algebra.Max (Expr.col "score"));
        ]
      people
  in
  (* ages: 34, 4 (×2), 61, 25 → 4 groups. *)
  Alcotest.(check int) "groups" 4 (Table.cardinality g);
  let four = Algebra.select Expr.(col "age" = int 4) g in
  Alcotest.(check int) "n" 2 (Value.to_int (Table.get four 0 "n"));
  Alcotest.(check (float 1e-9)) "sum" 8.5 (Value.to_float (Table.get four 0 "total"));
  Alcotest.(check (float 1e-9)) "max" 5.5 (Value.to_float (Table.get four 0 "best"))

let test_group_by_global () =
  let g = Algebra.group_by ~keys:[] ~aggs:[ ("n", Algebra.Count) ] people in
  Alcotest.(check int) "one row" 1 (Table.cardinality g);
  Alcotest.(check int) "count" 5 (Value.to_int (Table.get g 0 "n"))

let test_group_by_skips_nulls () =
  let g =
    Algebra.group_by ~keys:[] ~aggs:[ ("avg", Algebra.Avg (Expr.col "score")) ] people
  in
  (* Nulls excluded: (7.5+3.0+9.1+5.5)/4. *)
  Alcotest.(check (float 1e-9)) "avg" 6.275 (Value.to_float (Table.get g 0 "avg"))

(* NaN keys: [Value.compare] makes every NaN equal to itself and
   [Value.hash] gives every NaN payload the same hash, so the hash-keyed
   operators must treat NaN as one key — not leak one group (or drop one
   match) per row. Regression for the float-keyed Monte Carlo outputs
   the bundle engine feeds through these operators. *)
let test_nan_keys () =
  let neg_nan = Int64.float_of_bits 0xFFF8000000000001L in
  let t =
    Table.create
      (Schema.of_list [ ("k", Value.Tfloat); ("x", Value.Tfloat) ])
      [
        [| v_float nan; v_float 1. |];
        [| v_float 2.; v_float 10. |];
        [| v_float neg_nan; v_float 5. |];
      ]
  in
  let g =
    Algebra.group_by ~keys:[ "k" ]
      ~aggs:[ ("s", Algebra.Sum (Expr.col "x")); ("n", Algebra.Count) ]
      t
  in
  Alcotest.(check int) "NaN payloads collapse to one group" 2 (Table.cardinality g);
  let nan_group =
    Array.to_list (Table.rows g)
    |> List.find (fun r ->
           match r.(0) with Value.Float f -> Float.is_nan f | _ -> false)
  in
  Alcotest.(check (float 1e-9)) "NaN group sums both rows" 6.
    (Value.to_float nan_group.(1));
  Alcotest.(check int) "NaN group counts both rows" 2 (Value.to_int nan_group.(2));
  let right =
    Table.create
      (Schema.of_list [ ("rk", Value.Tfloat); ("y", Value.Tint) ])
      [ [| v_float nan; v_int 7 |] ]
  in
  let j = Algebra.equi_join ~on:[ ("k", "rk") ] t right in
  Alcotest.(check int) "NaN join key matches both NaN rows" 2 (Table.cardinality j);
  Alcotest.(check int) "distinct collapses NaN duplicates" 2
    (Table.cardinality (Algebra.distinct (Algebra.project [ "k" ] t)))

(* Int and Float keys that compare equal must hash equal — group_by and
   joins key by [Value.equal], so Int 2 and Float 2. are the same key. *)
let test_cross_type_numeric_keys () =
  let l =
    Table.create
      (Schema.of_list [ ("k", Value.Tint) ])
      [ [| v_int 2 |]; [| v_int 3 |] ]
  in
  let r =
    Table.create
      (Schema.of_list [ ("rk", Value.Tfloat) ])
      [ [| v_float 2. |] ]
  in
  Alcotest.(check int) "Int 2 joins Float 2." 1
    (Table.cardinality (Algebra.equi_join ~on:[ ("k", "rk") ] l r))

let test_count_if () =
  let g =
    Algebra.group_by ~keys:[]
      ~aggs:[ ("kids", Algebra.Count_if Expr.(col "age" <= int 4)) ]
      people
  in
  Alcotest.(check int) "count_if" 2 (Value.to_int (Table.get g 0 "kids"))

let test_order_by () =
  let sorted = Algebra.order_by [ "age" ] people in
  let ages = Table.column_floats sorted "age" in
  Alcotest.(check bool) "nondecreasing" true
    (Array.for_all2 ( <= ) (Array.sub ages 0 4) (Array.sub ages 1 4));
  let desc = Algebra.order_by ~descending:true [ "age" ] sorted in
  Alcotest.(check (float 1e-9)) "desc first" 61. (Table.column_floats desc "age").(0)

let test_order_by_stable () =
  (* Rows with equal keys keep their input order. *)
  let sorted = Algebra.order_by [ "age" ] people in
  let names = Table.column sorted "name" in
  Alcotest.(check string) "bob before dee" "bob" (Value.to_string_value names.(0));
  Alcotest.(check string) "dee second" "dee" (Value.to_string_value names.(1))

let test_distinct_union_limit () =
  let doubled = Algebra.union people people in
  Alcotest.(check int) "union" 10 (Table.cardinality doubled);
  Alcotest.(check int) "distinct" 5 (Table.cardinality (Algebra.distinct doubled));
  Alcotest.(check int) "limit" 3 (Table.cardinality (Algebra.limit 3 doubled))

let test_empty_table_operators () =
  let empty = Table.empty people_schema in
  Alcotest.(check int) "select" 0
    (Table.cardinality (Algebra.select Expr.(col "age" > int 0) empty));
  Alcotest.(check int) "project" 0
    (Table.cardinality (Algebra.project [ "name" ] empty));
  Alcotest.(check int) "extend" 0
    (Table.cardinality
       (Algebra.extend [ ("x", Value.Tint, Expr.int 1) ] empty));
  Alcotest.(check int) "join empty left" 0
    (Table.cardinality (Algebra.equi_join ~on:[ ("id", "customer") ] empty orders));
  Alcotest.(check int) "join empty right" 0
    (Table.cardinality
       (Algebra.equi_join ~on:[ ("id", "customer") ] people (Table.empty orders_schema)));
  Alcotest.(check int) "left join keeps left" 5
    (Table.cardinality
       (Algebra.equi_join ~kind:Algebra.Left ~on:[ ("id", "customer") ] people
          (Table.empty orders_schema)));
  Alcotest.(check int) "order_by" 0 (Table.cardinality (Algebra.order_by [ "age" ] empty));
  Alcotest.(check int) "distinct" 0 (Table.cardinality (Algebra.distinct empty));
  Alcotest.(check int) "limit" 0 (Table.cardinality (Algebra.limit 3 empty));
  (* Grouped aggregate over empty input: no groups. *)
  Alcotest.(check int) "group_by keyed" 0
    (Table.cardinality (Algebra.group_by ~keys:[ "age" ] ~aggs:[ ("n", Algebra.Count) ] empty));
  (* Global aggregate over empty input: one zero-count row. *)
  let g = Algebra.group_by ~keys:[] ~aggs:[ ("n", Algebra.Count) ] empty in
  Alcotest.(check int) "global count row" 1 (Table.cardinality g);
  Alcotest.(check int) "count zero" 0 (Value.to_int (Table.get g 0 "n"));
  Alcotest.(check int) "semi join" 0
    (Table.cardinality (Algebra.semi_join ~on:[ ("id", "customer") ] empty orders))

(* --- columnar substrate: bit-identity against the row oracle --- *)

(* Exact identity, not semantic equality: floats must match bit for bit
   (NaN payloads included), and Int 2 is not Float 2. *)
let value_identical a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> a = b

let tables_identical a b =
  Schema.column_names (Table.schema a) = Schema.column_names (Table.schema b)
  && Table.cardinality a = Table.cardinality b
  && Array.for_all2
       (fun ra rb -> Array.for_all2 value_identical ra rb)
       (Table.rows a) (Table.rows b)

(* Check one operator against its row oracle under both implementations. *)
let both_impls oracle f =
  tables_identical oracle (Columnar.to_table (f `Kernel))
  && tables_identical oracle (Columnar.to_table (f `Interpreter))

let test_columnar_roundtrip () =
  Alcotest.(check bool) "of_table |> to_table is the identity" true
    (tables_identical people (Columnar.to_table (Columnar.of_table people)))

let test_columnar_matches_algebra_people () =
  let c = Columnar.of_table people in
  let num_pred = Expr.(col "age" <= int 4) in
  let str_pred = Expr.(col "name" = string "ann") in
  let defs = [ ("age2", Value.Tint, Expr.(col "age" * int 2)) ] in
  let aggs = [ ("n", Algebra.Count); ("best", Algebra.Max (Expr.col "score")) ] in
  Alcotest.(check bool) "select (numeric pred)" true
    (both_impls (Algebra.select num_pred people) (fun impl ->
         Columnar.select ~impl num_pred c));
  Alcotest.(check bool) "select (string pred)" true
    (both_impls (Algebra.select str_pred people) (fun impl ->
         Columnar.select ~impl str_pred c));
  Alcotest.(check bool) "extend" true
    (both_impls (Algebra.extend defs people) (fun impl -> Columnar.extend ~impl defs c));
  Alcotest.(check bool) "group_by (null score skipped)" true
    (both_impls
       (Algebra.group_by ~keys:[ "age" ] ~aggs people)
       (fun impl -> Columnar.group_by ~impl ~keys:[ "age" ] ~aggs c));
  Alcotest.(check bool) "project" true
    (tables_identical
       (Algebra.project [ "name"; "score" ] people)
       (Columnar.to_table (Columnar.project [ "name"; "score" ] c)));
  Alcotest.(check bool) "order_by strings" true
    (tables_identical
       (Algebra.order_by [ "name" ] people)
       (Columnar.to_table (Columnar.order_by [ "name" ] c)));
  Alcotest.(check bool) "distinct" true
    (tables_identical (Algebra.distinct people) (Columnar.to_table (Columnar.distinct c)));
  Alcotest.(check bool) "join" true
    (tables_identical
       (Algebra.equi_join ~on:[ ("id", "customer") ] people orders)
       (Columnar.to_table
          (Columnar.equi_join ~on:[ ("id", "customer") ] c (Columnar.of_table orders))))

let test_columnar_empty_global () =
  let empty = Table.empty people_schema in
  let aggs =
    [ ("n", Algebra.Count); ("s", Algebra.Sum (Expr.col "score"));
      ("m", Algebra.Avg (Expr.col "score")) ]
  in
  let oracle = Algebra.group_by ~keys:[] ~aggs empty in
  Alcotest.(check bool) "empty global row identical" true
    (both_impls oracle (fun impl ->
         Columnar.group_by ~impl ~keys:[] ~aggs (Columnar.of_table empty)));
  Alcotest.(check int) "keyed empty: no groups" 0
    (Columnar.row_count
       (Columnar.group_by ~keys:[ "age" ] ~aggs:[ ("n", Algebra.Count) ]
          (Columnar.of_table empty)))

let test_limit_negative () =
  Alcotest.check_raises "algebra"
    (Invalid_argument "Algebra.limit: negative row count") (fun () ->
      ignore (Algebra.limit (-1) people));
  Alcotest.check_raises "columnar"
    (Invalid_argument "Columnar.limit: negative row count") (fun () ->
      ignore (Columnar.limit (-1) (Columnar.of_table people)))

(* Randomized tables with NaN keys and nulls, the hostile inputs the
   bundle engine's Monte Carlo outputs actually contain. *)
let mixed_rows_gen =
  QCheck.Gen.(
    let vfloat =
      frequency
        [ (6, map (fun f -> Value.Float f) (float_range (-5.) 5.));
          (1, return (Value.Float nan));
          (1, return Value.Null) ]
    in
    let row = map3 (fun k g v -> (k, g, v)) vfloat (int_range 0 3) vfloat in
    list_size (int_range 0 30) row)

let mixed_table rows =
  let schema =
    Schema.of_list [ ("k", Value.Tfloat); ("g", Value.Tint); ("v", Value.Tfloat) ]
  in
  Table.create schema (List.map (fun (k, g, v) -> [| k; Value.Int g; v |]) rows)

let prop_columnar_matches_algebra =
  QCheck.Test.make ~name:"columnar kernel == interpreter == row algebra" ~count:120
    (QCheck.make mixed_rows_gen)
    (fun rows ->
      let t = mixed_table rows in
      let c = Columnar.of_table t in
      let pred = Expr.(col "v" > float 0. || col "g" = int 1) in
      let defs = [ ("w", Value.Tfloat, Expr.((col "v" * float 2.) + col "k")) ] in
      let aggs =
        [ ("n", Algebra.Count);
          ("pos", Algebra.Count_if Expr.(col "v" > float 0.));
          ("s", Algebra.Sum (Expr.col "v"));
          ("m", Algebra.Avg (Expr.col "v"));
          ("sd", Algebra.Std (Expr.col "v"));
          ("lo", Algebra.Min (Expr.col "k"));
          ("hi", Algebra.Max (Expr.col "k")) ]
      in
      both_impls (Algebra.select pred t) (fun impl -> Columnar.select ~impl pred c)
      && both_impls (Algebra.extend defs t) (fun impl -> Columnar.extend ~impl defs c)
      && both_impls
           (Algebra.group_by ~keys:[ "g" ] ~aggs t)
           (fun impl -> Columnar.group_by ~impl ~keys:[ "g" ] ~aggs c)
      && both_impls
           (* Float keys: NaN collapses to one group, Null forms its own. *)
           (Algebra.group_by ~keys:[ "k" ] ~aggs:[ ("n", Algebra.Count) ] t)
           (fun impl ->
             Columnar.group_by ~impl ~keys:[ "k" ] ~aggs:[ ("n", Algebra.Count) ] c)
      && tables_identical
           (Algebra.project [ "v"; "g" ] t)
           (Columnar.to_table (Columnar.project [ "v"; "g" ] c))
      && tables_identical
           (Algebra.order_by [ "k"; "v" ] t)
           (Columnar.to_table (Columnar.order_by [ "k"; "v" ] c))
      && tables_identical
           (Algebra.order_by ~descending:true [ "v" ] t)
           (Columnar.to_table (Columnar.order_by ~descending:true [ "v" ] c))
      && tables_identical (Algebra.distinct t) (Columnar.to_table (Columnar.distinct c))
      && tables_identical (Algebra.limit 7 t)
           (Columnar.to_table (Columnar.limit 7 c)))

let prop_columnar_join_mixed_keys =
  QCheck.Test.make ~name:"columnar join == row join on Int/Float mixed keys"
    ~count:120
    QCheck.(pair (small_list (int_range 0 4)) (small_list (int_range 0 4)))
    (fun (ls, rs) ->
      let left =
        Table.create
          (Schema.of_list [ ("k", Value.Tint); ("x", Value.Tint) ])
          (List.mapi (fun i k -> [| Value.Int k; Value.Int i |]) ls)
      in
      let right =
        Table.create
          (Schema.of_list [ ("rk", Value.Tfloat); ("y", Value.Tint) ])
          (List.mapi
             (fun i k ->
               [|
                 (* Int 4 on the left meets Null on the right: null keys
                    must never match, in either engine. *)
                 (if k = 4 then Value.Null else Value.Float (float_of_int k));
                 Value.Int i;
               |])
             rs)
      in
      tables_identical
        (Algebra.equi_join ~on:[ ("k", "rk") ] left right)
        (Columnar.to_table
           (Columnar.equi_join ~on:[ ("k", "rk") ] (Columnar.of_table left)
              (Columnar.of_table right))))

let test_columnar_pooled_identity () =
  let rng = Mde_prob.Rng.create ~seed:42 () in
  let rows =
    List.init 5000 (fun i ->
        ( (if i mod 97 = 0 then Value.Null
           else if i mod 41 = 0 then Value.Float nan
           else Value.Float (Mde_prob.Rng.float_range rng (-5.) 5.)),
          Mde_prob.Rng.int rng 4,
          Value.Float (Mde_prob.Rng.float_range rng (-5.) 5.) ))
  in
  let c = Columnar.of_table (mixed_table rows) in
  let pred = Expr.(col "v" > col "k") in
  let defs = [ ("w", Value.Tfloat, Expr.(col "v" + col "k")) ] in
  Mde_par.Pool.with_pool ~domains:3 (fun pool ->
      List.iter
        (fun impl ->
          Alcotest.(check bool) "pooled select == sequential" true
            (tables_identical
               (Columnar.to_table (Columnar.select ~impl pred c))
               (Columnar.to_table (Columnar.select ~pool ~impl pred c)));
          Alcotest.(check bool) "pooled extend == sequential" true
            (tables_identical
               (Columnar.to_table (Columnar.extend ~impl defs c))
               (Columnar.to_table (Columnar.extend ~pool ~impl defs c))))
        [ `Kernel; `Interpreter ])

(* --- packed key codes --- *)

let det_col ty vs =
  let a = Array.of_list vs in
  Column.of_det_cells ~ty ~rows:(Array.length a) ~reps:1 (fun i -> a.(i))

let codes_equal a i b j =
  match (a, b) with
  | Keycode.Kint xa, Keycode.Kint xb -> xa.(i) = xb.(j)
  | Keycode.Kbytes xa, Keycode.Kbytes xb -> Bytes.equal xa.(i) xb.(j)
  | _ -> false

(* The encoding contract: codes compare equal exactly when the boxed
   keys are Value.Key-equal. [sides] is a list of (components, boxed
   key per row) pairs; every cross-side row pair is checked, and the
   null flags must mark exactly the rows with a Null component. *)
let check_injective label sides =
  match Keycode.of_columns (List.map (fun (cs, _) -> Array.of_list cs) sides) with
  | None -> Alcotest.failf "%s: encoder refused" label
  | Some enc ->
    let coded =
      List.mapi
        (fun s (_, keys) -> (Keycode.encode enc ~side:s, Array.of_list keys))
        sides
    in
    List.iteri
      (fun si (ci, keys_i) ->
        List.iteri
          (fun sj (cj, keys_j) ->
            Array.iteri
              (fun i ki ->
                Array.iteri
                  (fun j kj ->
                    let want = Value.Key.equal ki kj in
                    let got = codes_equal ci.Keycode.keys i cj.Keycode.keys j in
                    if want <> got then
                      Alcotest.failf
                        "%s: side %d row %d vs side %d row %d: keys %s but codes %s"
                        label si i sj j
                        (if want then "equal" else "differ")
                        (if got then "equal" else "differ"))
                  keys_j)
              keys_i)
          coded)
      coded;
    List.iteri
      (fun s (c, keys) ->
        let flag =
          match c.Keycode.null_rows with
          | None -> fun _ -> false
          | Some flags -> fun i -> flags.(i)
        in
        Array.iteri
          (fun i key ->
            if List.exists Value.is_null key <> flag i then
              Alcotest.failf "%s: side %d row %d null flag wrong" label s i)
          keys)
      coded

let neg_nan = Int64.float_of_bits 0xFFF8000000000001L

let test_keycode_bytes_composite () =
  (* Float component forces bytes mode; the image must collapse every
     NaN payload to one key and -0.0 onto +0.0, and keep Null apart. *)
  let fpool =
    [ Value.Float nan; Value.Float neg_nan; Value.Float (-0.); Value.Float 0.;
      Value.Null; Value.Float 1.5; Value.Float (-1.5) ]
  in
  let gpool = [ Value.Int 0; Value.Int 3; Value.Null ] in
  let rows = List.concat_map (fun f -> List.map (fun g -> (f, g)) gpool) fpool in
  let fcol = det_col Value.Tfloat (List.map fst rows) in
  let gcol = det_col Value.Tint (List.map snd rows) in
  check_injective "float+int composite"
    [ ([ fcol; gcol ], List.map (fun (f, g) -> [ f; g ]) rows) ]

let test_keycode_packed_composite () =
  let ipool = [ Value.Int (-3); Value.Int 7; Value.Null ] in
  let bpool = [ Value.Bool true; Value.Bool false; Value.Null ] in
  let spool = [ Value.String "ann"; Value.String "bob"; Value.Null ] in
  let rows =
    List.concat_map
      (fun i -> List.concat_map (fun b -> List.map (fun s -> (i, b, s)) spool) bpool)
      ipool
  in
  let icol = det_col Value.Tint (List.map (fun (i, _, _) -> i) rows) in
  let bcol = det_col Value.Tbool (List.map (fun (_, b, _) -> b) rows) in
  let scol = det_col Value.Tstring (List.map (fun (_, _, s) -> s) rows) in
  (match Keycode.of_columns [ [| icol; bcol; scol |] ] with
  | Some enc -> (
    match (Keycode.encode enc ~side:0).Keycode.keys with
    | Keycode.Kint _ -> ()
    | Keycode.Kbytes _ -> Alcotest.fail "int/bool/string key should pack into one word")
  | None -> Alcotest.fail "int/bool/string key should encode");
  check_injective "packed int+bool+string"
    [ ([ icol; bcol; scol ], List.map (fun (i, b, s) -> [ i; b; s ]) rows) ]

let test_keycode_cross_side_numeric () =
  let ls = [ Value.Int 2; Value.Int 3; Value.Int 0; Value.Null; Value.Int (-7) ] in
  let rs =
    [ Value.Float 2.; Value.Float nan; Value.Float (-0.); Value.Float 3.5; Value.Null ]
  in
  let l = det_col Value.Tint ls
  and r = det_col Value.Tfloat rs in
  check_injective "int side vs float side"
    [ ([ l ], List.map (fun v -> [ v ]) ls); ([ r ], List.map (fun v -> [ v ]) rs) ];
  (* The join pattern: table built from side 0, probed with side 1. *)
  let enc = Option.get (Keycode.of_columns [ [| l |]; [| r |] ]) in
  let build = Keycode.encode enc ~side:0
  and probe = Keycode.encode enc ~side:1 in
  let tbl = Keycode.tbl_create ~hint:8 build.Keycode.keys in
  List.iteri (fun i _ -> ignore (Keycode.tbl_add tbl i)) ls;
  Alcotest.(check int) "distinct build keys" 5 (Keycode.tbl_count tbl);
  Alcotest.(check int) "Float 2. finds Int 2" 0 (Keycode.tbl_find tbl probe.Keycode.keys 0);
  Alcotest.(check int) "Float -0. finds Int 0" 2 (Keycode.tbl_find tbl probe.Keycode.keys 2);
  Alcotest.(check int) "NaN unmatched" (-1) (Keycode.tbl_find tbl probe.Keycode.keys 1);
  Alcotest.(check int) "3.5 unmatched" (-1) (Keycode.tbl_find tbl probe.Keycode.keys 3)

let test_keycode_shared_string_dict () =
  (* Same strings, different per-column dictionary codes (the insertion
     orders differ): the shared dictionary must reconcile them. *)
  let ls = [ "b"; "a"; "c"; "a" ]
  and rs = [ "c"; "c"; "b"; "d" ] in
  let lv = List.map (fun s -> Value.String s) ls
  and rv = List.map (fun s -> Value.String s) rs in
  check_injective "string dictionaries across sides"
    [ ([ det_col Value.Tstring lv ], List.map (fun v -> [ v ]) lv);
      ([ det_col Value.Tstring rv ], List.map (fun v -> [ v ]) rv) ];
  let lt =
    Table.create
      (Schema.of_list [ ("s", Value.Tstring); ("x", Value.Tint) ])
      (List.mapi (fun i s -> [| Value.String s; Value.Int i |]) ls)
  in
  let rt =
    Table.create
      (Schema.of_list [ ("rs", Value.Tstring); ("y", Value.Tint) ])
      (List.mapi (fun i s -> [| Value.String s; Value.Int i |]) rs)
  in
  Alcotest.(check bool) "string join == row oracle" true
    (tables_identical
       (Algebra.equi_join ~on:[ ("s", "rs") ] lt rt)
       (Columnar.to_table
          (Columnar.equi_join ~on:[ ("s", "rs") ] (Columnar.of_table lt)
             (Columnar.of_table rt))))

let test_keycode_wide_ints () =
  (* A range too wide to offset-pack must fall back to exact int bytes,
     not wrap: min_int and max_int stay distinct keys. *)
  let vs = [ Value.Int min_int; Value.Int max_int; Value.Int 0; Value.Int 1; Value.Null ] in
  let pair = List.map (fun _ -> Value.Int 1) vs in
  let wide = det_col Value.Tint vs
  and mate = det_col Value.Tint pair in
  check_injective "wide int composite"
    [ ([ wide; mate ], List.map2 (fun a b -> [ a; b ]) vs pair) ];
  match Keycode.of_columns [ [| wide; mate |] ] with
  | Some enc -> (
    match (Keycode.encode enc ~side:0).Keycode.keys with
    | Keycode.Kbytes _ -> ()
    | Keycode.Kint _ -> Alcotest.fail "min_int..max_int cannot offset-pack")
  | None -> Alcotest.fail "wide ints should still encode exactly"

let test_keycode_refusals_and_raw () =
  Alcotest.(check bool) "no sides refused" true (Keycode.of_columns [] = None);
  Alcotest.(check bool) "no components refused" true (Keycode.of_columns [ [||] ] = None);
  (* Beyond 2^53, float_of_int is not injective: an int column next to a
     float-typed mate must refuse rather than conflate 2^53+1 with 2^53. *)
  let big = det_col Value.Tint [ Value.Int ((1 lsl 53) + 1) ] in
  let f = det_col Value.Tfloat [ Value.Float 1. ] in
  Alcotest.(check bool) "inexact int next to float refused" true
    (Keycode.of_columns [ [| big |]; [| f |] ] = None);
  Alcotest.(check bool) "side arity mismatch refused" true
    (Keycode.of_columns [ [| big |]; [| f; f |] ] = None);
  (* A sole no-null int component is zero-copy: the raw values. *)
  let vs = [ 5; min_int + 1; max_int; 5 ] in
  let raw = det_col Value.Tint (List.map (fun v -> Value.Int v) vs) in
  match Keycode.of_columns [ [| raw |] ] with
  | None -> Alcotest.fail "sole int column should encode"
  | Some enc -> (
    match (Keycode.encode enc ~side:0).Keycode.keys with
    | Keycode.Kint a -> Alcotest.(check (array int)) "raw zero-copy" (Array.of_list vs) a
    | Keycode.Kbytes _ -> Alcotest.fail "sole int column should stay unboxed")

let test_keycode_tbl_first_seen () =
  (* Dense first-seen ids, across a growth of the open-addressing table
     (19 distinct quadratic residues > the 16-slot initial load limit). *)
  let n = 120 in
  let vs = List.init n (fun i -> Value.Int (i * i mod 37)) in
  let enc = Option.get (Keycode.of_columns [ [| det_col Value.Tint vs |] ]) in
  let coded = Keycode.encode enc ~side:0 in
  let tbl = Keycode.tbl_create ~hint:4 coded.Keycode.keys in
  let seen = Hashtbl.create 64 in
  List.iteri
    (fun i v ->
      let expect =
        match Hashtbl.find_opt seen v with
        | Some id -> id
        | None ->
          let id = Hashtbl.length seen in
          Hashtbl.add seen v id;
          id
      in
      Alcotest.(check int) (Printf.sprintf "row %d id" i) expect (Keycode.tbl_add tbl i))
    vs;
  Alcotest.(check int) "distinct count" (Hashtbl.length seen) (Keycode.tbl_count tbl)

let test_order_by_packed_matches_comparator () =
  (* Duplicate keys and nulls: the packed image's index tiebreak must
     reproduce the comparator chain's stable order, both directions. *)
  let schema =
    Schema.of_list
      [ ("s", Value.Tstring); ("b", Value.Tbool); ("i", Value.Tint); ("x", Value.Tint) ]
  in
  let rng = Mde_prob.Rng.create ~seed:31 () in
  let names = [| "ann"; "bob"; "cal"; "dee" |] in
  let rows =
    List.init 200 (fun r ->
        [|
          (if Mde_prob.Rng.int rng 10 = 0 then Value.Null
           else Value.String names.(Mde_prob.Rng.int rng 4));
          (if Mde_prob.Rng.int rng 10 = 0 then Value.Null
           else Value.Bool (Mde_prob.Rng.int rng 2 = 1));
          (if Mde_prob.Rng.int rng 10 = 0 then Value.Null
           else Value.Int (Mde_prob.Rng.int rng 5 - 2));
          Value.Int r;
        |])
  in
  let t = Table.create schema rows in
  let c = Columnar.of_table t in
  let keys = [ "s"; "b"; "i" ] in
  Alcotest.(check bool) "packed == row oracle" true
    (tables_identical (Algebra.order_by keys t)
       (Columnar.to_table (Columnar.order_by keys c)));
  List.iter
    (fun descending ->
      Alcotest.(check bool)
        (if descending then "descending" else "ascending")
        true
        (tables_identical
           (Columnar.to_table (Columnar.order_by ~descending ~packed:false keys c))
           (Columnar.to_table (Columnar.order_by ~descending keys c))))
    [ false; true ]

let mixed_table_r rows =
  let schema =
    Schema.of_list [ ("rk", Value.Tfloat); ("rg", Value.Tint); ("rv", Value.Tfloat) ]
  in
  Table.create schema (List.map (fun (k, g, v) -> [| k; Value.Int g; v |]) rows)

let prop_packed_matches_boxed =
  QCheck.Test.make ~name:"packed keyed operators == boxed Value.Tbl paths" ~count:80
    (QCheck.pair (QCheck.make mixed_rows_gen) (QCheck.make mixed_rows_gen))
    (fun (ls, rs) ->
      let lc = Columnar.of_table (mixed_table ls) in
      let rc = Columnar.of_table (mixed_table_r rs) in
      let aggs =
        [ ("n", Algebra.Count); ("s", Algebra.Sum (Expr.col "v"));
          ("m", Algebra.Avg (Expr.col "v")) ]
      in
      let same a b = tables_identical (Columnar.to_table a) (Columnar.to_table b) in
      same
        (Columnar.group_by ~packed:false ~keys:[ "g" ] ~aggs lc)
        (Columnar.group_by ~keys:[ "g" ] ~aggs lc)
      && same
           (Columnar.group_by ~packed:false ~keys:[ "k"; "g" ] ~aggs lc)
           (Columnar.group_by ~keys:[ "k"; "g" ] ~aggs lc)
      && same (Columnar.distinct ~packed:false lc) (Columnar.distinct lc)
      && same (Columnar.order_by ~packed:false [ "g" ] lc) (Columnar.order_by [ "g" ] lc)
      && same
           (Columnar.order_by ~packed:false ~descending:true [ "g" ] lc)
           (Columnar.order_by ~descending:true [ "g" ] lc)
      && same
           (Columnar.equi_join ~packed:false ~on:[ ("g", "rg") ] lc rc)
           (Columnar.equi_join ~on:[ ("g", "rg") ] lc rc)
      && same
           (Columnar.equi_join ~packed:false ~on:[ ("k", "rk") ] lc rc)
           (Columnar.equi_join ~on:[ ("k", "rk") ] lc rc))

let test_keyed_pooled_identity () =
  (* Sizes straddling the pooled chunk boundaries; NaN and Null keys. *)
  let table_pair n =
    let rng = Mde_prob.Rng.create ~seed:(9000 + n) () in
    let cell i =
      if i mod 19 = 0 then Value.Null
      else if i mod 13 = 0 then Value.Float nan
      else Value.Float (Mde_prob.Rng.float_range rng (-4.) 4.)
    in
    let lt =
      mixed_table
        (List.init n (fun i ->
             ( cell i,
               Mde_prob.Rng.int rng 5,
               Value.Float (Mde_prob.Rng.float_range rng (-1.) 1.) )))
    in
    let rt =
      mixed_table_r
        (List.init (max 1 (n / 3)) (fun i -> (cell i, Mde_prob.Rng.int rng 5, Value.Null)))
    in
    (Columnar.of_table lt, Columnar.of_table rt)
  in
  let aggs =
    [ ("n", Algebra.Count); ("s", Algebra.Sum (Expr.col "v"));
      ("sd", Algebra.Std (Expr.col "v")) ]
  in
  Mde_par.Pool.with_pool ~domains:3 (fun pool ->
      List.iter
        (fun n ->
          let lc, rc = table_pair n in
          let check label a b =
            Alcotest.(check bool)
              (Printf.sprintf "%s pooled == sequential (n=%d)" label n)
              true
              (tables_identical (Columnar.to_table a) (Columnar.to_table b))
          in
          check "group_by"
            (Columnar.group_by ~keys:[ "k"; "g" ] ~aggs lc)
            (Columnar.group_by ~pool ~keys:[ "k"; "g" ] ~aggs lc);
          check "group_by boxed"
            (Columnar.group_by ~packed:false ~keys:[ "k" ] ~aggs lc)
            (Columnar.group_by ~packed:false ~pool ~keys:[ "k" ] ~aggs lc);
          check "join"
            (Columnar.equi_join ~on:[ ("k", "rk") ] lc rc)
            (Columnar.equi_join ~pool ~on:[ ("k", "rk") ] lc rc);
          check "join on ints"
            (Columnar.equi_join ~on:[ ("g", "rg") ] lc rc)
            (Columnar.equi_join ~pool ~on:[ ("g", "rg") ] lc rc);
          check "distinct" (Columnar.distinct lc) (Columnar.distinct ~pool lc))
        [ 0; 1; 2; 3; 7; 61; 509; 2048 ])

(* --- query builder --- *)

let test_query_pipeline () =
  let n =
    Query.of_table people
    |> Query.where Expr.(col "age" > int 10)
    |> Query.group ~keys:[] ~aggs:[ ("n", Algebra.Count) ]
    |> Query.scalar
  in
  Alcotest.(check int) "adults" 3 (Value.to_int n)

let test_query_join_compute () =
  let result =
    Query.of_table orders
    |> Query.join ~on:[ ("customer", "id") ]
         (Algebra.rename [ ("score", "cust_score") ] people
         |> Algebra.project [ "id"; "cust_score" ])
    |> Query.compute [ ("weighted", Value.Tfloat, Expr.(col "total" * col "cust_score")) ]
    |> Query.sort ~descending:true [ "weighted" ]
    |> Query.run
  in
  Alcotest.(check int) "joined rows" 3 (Table.cardinality result);
  Alcotest.(check (float 1e-9)) "top weighted" 150. (Value.to_float (Table.get result 0 "weighted"))

(* --- logical plans and the optimizer --- *)

let star_catalog ?(orders_n = 300) ?(customers_n = 40) ?(regions_n = 5) seed =
  let rng = Mde_prob.Rng.create ~seed () in
  let cat = Catalog.create () in
  Catalog.register cat "regions"
    (Table.create
       (Schema.of_list [ ("rid", Value.Tint); ("rname", Value.Tstring) ])
       (List.init regions_n (fun i -> [| v_int i; v_str (Printf.sprintf "r%d" i) |])));
  Catalog.register cat "customers"
    (Table.create
       (Schema.of_list [ ("cid", Value.Tint); ("crid", Value.Tint); ("cage", Value.Tint) ])
       (List.init customers_n (fun i ->
            [| v_int i; v_int (Mde_prob.Rng.int rng regions_n);
               v_int (18 + Mde_prob.Rng.int rng 60) |])));
  Catalog.register cat "orders"
    (Table.create
       (Schema.of_list [ ("oid", Value.Tint); ("ocid", Value.Tint); ("amount", Value.Tfloat) ])
       (List.init orders_n (fun i ->
            [| v_int i; v_int (Mde_prob.Rng.int rng customers_n);
               v_float (Mde_prob.Rng.float_range rng 0. 100.) |])));
  cat

(* Compare result multisets up to row order AND column order: join
   reordering legitimately permutes output columns. *)
let sorted_rows table =
  let names = List.sort String.compare (Schema.column_names (Table.schema table)) in
  let canonical = Algebra.project names table in
  Array.to_list (Table.rows canonical)
  |> List.map Array.to_list
  |> List.sort (fun a b -> List.compare Value.compare a b)

let same_multiset a b = sorted_rows a = sorted_rows b

let star_query =
  Plan.select
    Expr.(col "rname" = string "r1" && col "amount" > float 50.)
    (Plan.join ~on:[ ("rid", "crid") ]
       (Plan.scan "regions")
       (Plan.join ~on:[ ("cid", "ocid") ] (Plan.scan "customers") (Plan.scan "orders")))

let test_plan_execute () =
  let cat = star_catalog 1 in
  let direct =
    Algebra.equi_join ~on:[ ("rid", "crid") ]
      (Catalog.find cat "regions")
      (Algebra.equi_join ~on:[ ("cid", "ocid") ]
         (Catalog.find cat "customers")
         (Catalog.find cat "orders"))
    |> Algebra.select Expr.(col "rname" = string "r1" && col "amount" > float 50.)
  in
  Alcotest.(check bool) "plan = direct algebra" true
    (same_multiset (Plan.execute cat star_query) direct)

let test_plan_schema () =
  let cat = star_catalog 2 in
  Alcotest.(check int) "join schema arity" 8
    (Schema.arity (Plan.schema_of cat star_query));
  Alcotest.(check int) "project narrows" 2
    (Schema.arity (Plan.schema_of cat (Plan.project [ "oid"; "rname" ] star_query)))

let test_estimate_rows_sanity () =
  let cat = star_catalog 3 in
  let scan_est = Plan.estimate_rows cat (Plan.scan "orders") in
  Alcotest.(check (float 1e-9)) "scan = row count" 300. scan_est;
  (* Equality on a 5-distinct column selects ~1/5. *)
  let eq_est =
    Plan.estimate_rows cat
      (Plan.select Expr.(col "rid" = int 3) (Plan.scan "regions"))
  in
  Alcotest.(check (float 1e-6)) "eq selectivity" 1. eq_est

let test_push_selections_preserves_and_helps () =
  let cat = star_catalog 4 in
  let pushed = Plan.push_selections cat star_query in
  Alcotest.(check bool) "same result" true
    (same_multiset (Plan.execute cat star_query) (Plan.execute cat pushed));
  let before = (Plan.estimate_cost cat star_query).Plan.intermediate_rows in
  let after = (Plan.estimate_cost cat pushed).Plan.intermediate_rows in
  Alcotest.(check bool)
    (Printf.sprintf "cheaper (%.0f -> %.0f)" before after)
    true (after < before)

let test_order_joins_small_first () =
  let cat = star_catalog 5 in
  (* A deliberately bad order: the two big tables first. *)
  let bad =
    Plan.join ~on:[ ("crid", "rid") ]
      (Plan.join ~on:[ ("ocid", "cid") ] (Plan.scan "orders") (Plan.scan "customers"))
      (Plan.select Expr.(col "rname" = string "r2") (Plan.scan "regions"))
  in
  let reordered = Plan.order_joins cat bad in
  Alcotest.(check bool) "same result" true
    (same_multiset (Plan.execute cat bad) (Plan.execute cat reordered));
  let before = (Plan.estimate_cost cat bad).Plan.intermediate_rows in
  let after = (Plan.estimate_cost cat reordered).Plan.intermediate_rows in
  Alcotest.(check bool)
    (Printf.sprintf "join order cheaper (%.0f -> %.0f)" before after)
    true (after <= before)

let test_optimize_end_to_end () =
  let cat = star_catalog 6 in
  let optimized = Plan.optimize cat star_query in
  Alcotest.(check bool) "same result" true
    (same_multiset (Plan.execute cat star_query) (Plan.execute cat optimized));
  let before = (Plan.estimate_cost cat star_query).Plan.intermediate_rows in
  let after = (Plan.estimate_cost cat optimized).Plan.intermediate_rows in
  Alcotest.(check bool)
    (Printf.sprintf "optimize cheaper (%.0f -> %.0f)" before after)
    true (after < before /. 2.)

let test_plan_columnar_identity () =
  let cat = star_catalog 7 in
  let check_plan label plan =
    let oracle = Plan.execute_rows cat plan in
    Alcotest.(check bool) (label ^ ": kernel == rows") true
      (tables_identical oracle (Plan.execute cat plan));
    Alcotest.(check bool)
      (label ^ ": interpreter == rows")
      true
      (tables_identical oracle (Plan.execute ~impl:`Interpreter cat plan))
  in
  check_plan "raw" star_query;
  check_plan "optimized" (Plan.optimize cat star_query);
  check_plan "projected" (Plan.project [ "oid"; "rname" ] star_query)

let prop_plan_execute_bit_identity =
  QCheck.Test.make ~name:"Plan.execute (columnar) == Plan.execute_rows" ~count:40
    QCheck.(pair (int_range 0 4) small_int)
    (fun (region_pick, seed) ->
      let cat = star_catalog (200 + seed) in
      let plan =
        Plan.select
          Expr.(col "rid" = int region_pick && col "amount" > float 25.)
          (Plan.join ~on:[ ("rid", "crid") ]
             (Plan.scan "regions")
             (Plan.join ~on:[ ("cid", "ocid") ] (Plan.scan "customers")
                (Plan.scan "orders")))
      in
      let oracle = Plan.execute_rows cat plan in
      tables_identical oracle (Plan.execute cat plan)
      && tables_identical oracle (Plan.execute ~impl:`Interpreter cat plan)
      && tables_identical
           (Plan.execute_rows cat (Plan.optimize cat plan))
           (Plan.execute cat (Plan.optimize cat plan)))

(* Regression: a top-level chain that cannot be reordered (it needs a
   cross product) used to come back entirely untouched — including the
   badly-ordered connected join chain nested inside it. *)
let test_order_joins_disconnected_chain () =
  let cat = star_catalog 8 in
  Catalog.register cat "lonely"
    (Table.create
       (Schema.of_list [ ("lid", Value.Tint) ])
       (List.init 3 (fun i -> [| v_int i |])));
  let bad_chain =
    Plan.join ~on:[ ("crid", "rid") ]
      (Plan.join ~on:[ ("ocid", "cid") ] (Plan.scan "orders") (Plan.scan "customers"))
      (Plan.scan "regions")
  in
  let disconnected = Plan.join ~on:[] bad_chain (Plan.scan "lonely") in
  let result = Plan.order_joins cat disconnected in
  (match result with
  | Plan.Join ([], l, Plan.Scan "lonely") ->
    Alcotest.(check bool) "nested chain reordered in place" true
      (l = Plan.order_joins cat bad_chain);
    Alcotest.(check bool) "reordering actually changed the sub-chain" true
      (l <> bad_chain);
    let before = (Plan.estimate_cost cat bad_chain).Plan.intermediate_rows in
    let after = (Plan.estimate_cost cat l).Plan.intermediate_rows in
    Alcotest.(check bool)
      (Printf.sprintf "sub-chain cheaper (%.0f -> %.0f)" before after)
      true (after <= before)
  | _ -> Alcotest.fail "optimizer changed the disconnected top-level join shape");
  Alcotest.(check bool) "same result" true
    (same_multiset (Plan.execute_rows cat disconnected) (Plan.execute_rows cat result));
  Alcotest.(check bool) "columnar cross product agrees" true
    (tables_identical (Plan.execute_rows cat result) (Plan.execute cat result))

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimize preserves query results" ~count:60
    QCheck.(triple (int_range 0 4) (int_range 20 60) small_int)
    (fun (region_pick, amount_cut, seed) ->
      let cat = star_catalog (100 + seed) in
      let plan =
        Plan.select
          Expr.(
            col "rid" = int region_pick
            && col "amount" > float (float_of_int amount_cut)
            && col "cage" < int 60)
          (Plan.join ~on:[ ("rid", "crid") ]
             (Plan.scan "regions")
             (Plan.join ~on:[ ("cid", "ocid") ] (Plan.scan "customers")
                (Plan.scan "orders")))
      in
      same_multiset (Plan.execute cat plan) (Plan.execute cat (Plan.optimize cat plan)))

(* --- catalog --- *)

let test_catalog () =
  let cat = Catalog.create () in
  Catalog.register cat "people" people;
  Alcotest.(check int) "rows" 5 (Catalog.row_count cat "people");
  let stats = Catalog.column_stats cat "people" "age" in
  Alcotest.(check int) "non_null" 5 stats.Catalog.non_null;
  Alcotest.(check int) "distinct" 4 stats.Catalog.distinct;
  Alcotest.(check (float 1e-9)) "mean" 25.6 (Option.get stats.Catalog.mean);
  let score_stats = Catalog.column_stats cat "people" "score" in
  Alcotest.(check int) "nulls dropped" 4 score_stats.Catalog.non_null;
  Catalog.drop cat "people";
  Alcotest.(check bool) "dropped" true (Catalog.find_opt cat "people" = None)

(* --- QCheck properties --- *)

let random_table_gen =
  QCheck.Gen.(
    let row = map2 (fun a b -> (a, b)) (int_range 0 5) (float_range 0. 10.) in
    list_size (int_range 0 40) row)

let arbitrary_rows = QCheck.make random_table_gen

let to_table rows =
  let schema = Schema.of_list [ ("k", Value.Tint); ("v", Value.Tfloat) ] in
  Table.create schema
    (List.map (fun (k, v) -> [| Value.Int k; Value.Float v |]) rows)

let prop_select_conjunction =
  QCheck.Test.make ~name:"select (a && b) = select a |> select b" ~count:200
    arbitrary_rows
    (fun rows ->
      let t = to_table rows in
      let a = Expr.(col "k" >= int 2) and b = Expr.(col "v" < float 5.) in
      let both = Algebra.select Expr.(a && b) t in
      let seq = Algebra.select b (Algebra.select a t) in
      Table.cardinality both = Table.cardinality seq
      && Array.for_all2
           (fun r1 r2 -> Value.equal r1.(0) r2.(0) && Value.equal r1.(1) r2.(1))
           (Table.rows both) (Table.rows seq))

let prop_join_count =
  QCheck.Test.make ~name:"hash join row count equals nested loop" ~count:100
    (QCheck.pair arbitrary_rows arbitrary_rows)
    (fun (xs, ys) ->
      let left = to_table xs in
      let right =
        let schema = Schema.of_list [ ("k2", Value.Tint); ("v2", Value.Tfloat) ] in
        Table.create schema
          (List.map (fun (k, v) -> [| Value.Int k; Value.Float v |]) ys)
      in
      let joined = Algebra.equi_join ~on:[ ("k", "k2") ] left right in
      let expected =
        List.fold_left
          (fun acc (k, _) ->
            acc + List.length (List.filter (fun (k2, _) -> k = k2) ys))
          0 xs
      in
      Table.cardinality joined = expected)

(* Random well-typed numeric expressions over the (k, v) schema: eval
   must be total and columns_used sound. *)
let expr_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return (Expr.col "k"); return (Expr.col "v");
        map Expr.int (int_range (-5) 5); map Expr.float (float_range (-5.) 5.) ]
  in
  fix
    (fun self depth ->
      if depth <= 0 then leaf
      else
        oneof
          [ leaf;
            map2 (fun a b -> Expr.Add (a, b)) (self (depth - 1)) (self (depth - 1));
            map2 (fun a b -> Expr.Sub (a, b)) (self (depth - 1)) (self (depth - 1));
            map2 (fun a b -> Expr.Mul (a, b)) (self (depth - 1)) (self (depth - 1));
            map (fun a -> Expr.Neg a) (self (depth - 1));
            map3
              (fun c a b -> Expr.If (Expr.Lt (c, Expr.int 0), a, b))
              (self (depth - 1)) (self (depth - 1)) (self (depth - 1)) ])
    3

let prop_expr_total =
  QCheck.Test.make ~name:"well-typed numeric expressions evaluate totally" ~count:300
    (QCheck.pair (QCheck.make expr_gen) arbitrary_rows)
    (fun (expr, rows) ->
      let t = to_table rows in
      let schema = Table.schema t in
      List.for_all (fun c -> Schema.mem schema c) (Expr.columns_used expr)
      && Array.for_all
           (fun row ->
             match Expr.eval schema row expr with
             | Value.Int _ | Value.Float _ | Value.Null -> true
             | Value.Bool _ | Value.String _ -> false)
           (Table.rows t))

let prop_distinct_idempotent =
  QCheck.Test.make ~name:"distinct is idempotent" ~count:200 arbitrary_rows
    (fun rows ->
      let t = to_table rows in
      let once = Algebra.distinct t in
      let twice = Algebra.distinct once in
      Table.cardinality once = Table.cardinality twice)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_relational"
    [
      ( "values+schemas",
        [
          Alcotest.test_case "value compare" `Quick test_value_compare;
          Alcotest.test_case "schema duplicate" `Quick test_schema_duplicate;
          Alcotest.test_case "schema lookup" `Quick test_schema_lookup;
          Alcotest.test_case "rename/concat" `Quick test_schema_rename_concat;
          Alcotest.test_case "table type check" `Quick test_table_type_check;
          Alcotest.test_case "nulls allowed" `Quick test_table_null_allowed;
          Alcotest.test_case "value display/coercion" `Quick test_value_display;
        ] );
      ( "expr",
        [
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "columns_used" `Quick test_expr_columns_used;
          Alcotest.test_case "if" `Quick test_expr_if;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project/extend" `Quick test_project_extend;
          Alcotest.test_case "equi join" `Quick test_equi_join;
          Alcotest.test_case "left join" `Quick test_left_join;
          Alcotest.test_case "theta join" `Quick test_theta_join;
          Alcotest.test_case "semi/anti join" `Quick test_semi_anti_join;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "global aggregate" `Quick test_group_by_global;
          Alcotest.test_case "nulls skipped" `Quick test_group_by_skips_nulls;
          Alcotest.test_case "count_if" `Quick test_count_if;
          Alcotest.test_case "NaN keys" `Quick test_nan_keys;
          Alcotest.test_case "cross-type numeric keys" `Quick test_cross_type_numeric_keys;
          Alcotest.test_case "order by" `Quick test_order_by;
          Alcotest.test_case "order by stable" `Quick test_order_by_stable;
          Alcotest.test_case "distinct/union/limit" `Quick test_distinct_union_limit;
          Alcotest.test_case "empty-table sweep" `Quick test_empty_table_operators;
        ] );
      ( "columnar",
        [
          Alcotest.test_case "roundtrip" `Quick test_columnar_roundtrip;
          Alcotest.test_case "operators == algebra" `Quick
            test_columnar_matches_algebra_people;
          Alcotest.test_case "empty global aggregate" `Quick test_columnar_empty_global;
          Alcotest.test_case "negative limit raises" `Quick test_limit_negative;
          Alcotest.test_case "pooled == sequential" `Quick test_columnar_pooled_identity;
        ] );
      ( "keycode",
        [
          Alcotest.test_case "bytes composite injective" `Quick test_keycode_bytes_composite;
          Alcotest.test_case "packed composite injective" `Quick
            test_keycode_packed_composite;
          Alcotest.test_case "cross-side numeric keys" `Quick
            test_keycode_cross_side_numeric;
          Alcotest.test_case "shared string dictionary" `Quick
            test_keycode_shared_string_dict;
          Alcotest.test_case "wide ints exact" `Quick test_keycode_wide_ints;
          Alcotest.test_case "refusals and raw mode" `Quick test_keycode_refusals_and_raw;
          Alcotest.test_case "table first-seen ids" `Quick test_keycode_tbl_first_seen;
          Alcotest.test_case "order_by packed == comparator" `Quick
            test_order_by_packed_matches_comparator;
          Alcotest.test_case "keyed ops pooled == sequential" `Quick
            test_keyed_pooled_identity;
        ] );
      ( "query",
        [
          Alcotest.test_case "pipeline" `Quick test_query_pipeline;
          Alcotest.test_case "join+compute" `Quick test_query_join_compute;
        ] );
      ( "plan",
        [
          Alcotest.test_case "execute" `Quick test_plan_execute;
          Alcotest.test_case "schema" `Quick test_plan_schema;
          Alcotest.test_case "cardinality estimates" `Quick test_estimate_rows_sanity;
          Alcotest.test_case "selection pushdown" `Quick test_push_selections_preserves_and_helps;
          Alcotest.test_case "join ordering" `Quick test_order_joins_small_first;
          Alcotest.test_case "optimize end-to-end" `Quick test_optimize_end_to_end;
          Alcotest.test_case "columnar executor identity" `Quick test_plan_columnar_identity;
          Alcotest.test_case "disconnected chain still optimizes subtrees" `Quick
            test_order_joins_disconnected_chain;
        ] );
      ("catalog", [ Alcotest.test_case "stats" `Quick test_catalog ]);
      ( "properties",
        qc
          [ prop_select_conjunction; prop_join_count; prop_distinct_idempotent;
            prop_expr_total; prop_optimize_preserves_semantics;
            prop_columnar_matches_algebra; prop_columnar_join_mixed_keys;
            prop_packed_matches_boxed; prop_plan_execute_bit_identity ] );
    ]
