open Mde_relational
module Rng = Mde_prob.Rng
module Vg = Mde_mcdb.Vg
module St = Mde_mcdb.Stochastic_table
module Bundle = Mde_mcdb.Bundle
module Estimator = Mde_mcdb.Estimator

let v_int i = Value.Int i
let v_str s = Value.String s
let v_float f = Value.Float f

(* The paper's SBP_DATA example: patients drive a Normal VG function
   parametrized from a one-row parameter table. *)
let patients_schema =
  Schema.of_list [ ("pid", Value.Tint); ("gender", Value.Tstring) ]

let patients n =
  Table.create patients_schema
    (List.init n (fun i ->
         [| v_int i; v_str (if i mod 2 = 0 then "F" else "M") |]))

let sbp_param = Table.create
    (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
    [ [| v_float 120.; v_float 15. |] ]

let sbp_schema =
  Schema.of_list
    [ ("pid", Value.Tint); ("gender", Value.Tstring); ("sbp", Value.Tfloat) ]

let sbp_table n =
  St.define ~name:"SBP_DATA" ~schema:sbp_schema ~driver:(patients n) ~vg:Vg.normal
    ~params:(fun _ -> [ sbp_param ])
    ~combine:(fun driver vg_row -> [| driver.(0); driver.(1); vg_row.(0) |])

(* --- VG functions --- *)

let test_vg_normal_stats () =
  let rng = Rng.create ~seed:1 () in
  let xs =
    Array.init 20_000 (fun _ ->
        match Vg.normal.Vg.generate rng [ sbp_param ] with
        | [ [| Value.Float x |] ] -> x
        | _ -> Alcotest.fail "unexpected VG output")
  in
  Alcotest.(check (float 0.5)) "mean" 120. (Mde_prob.Stats.mean xs);
  Alcotest.(check (float 0.5)) "std" 15. (Mde_prob.Stats.std xs)

let test_vg_discrete_choice () =
  let weights =
    Table.create
      (Schema.of_list [ ("label", Value.Tstring); ("w", Value.Tfloat) ])
      [ [| v_str "a"; v_float 1. |]; [| v_str "b"; v_float 3. |] ]
  in
  let rng = Rng.create ~seed:2 () in
  let counts = Hashtbl.create 2 in
  for _ = 1 to 10_000 do
    match Vg.discrete_choice.Vg.generate rng [ weights ] with
    | [ [| Value.String s |] ] ->
      Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))
    | _ -> Alcotest.fail "unexpected"
  done;
  let b = float_of_int (Hashtbl.find counts "b") in
  Alcotest.(check bool) "b ~ 75%" true (b > 7200. && b < 7800.)

let test_vg_backward_walk () =
  let param =
    Table.create
      (Schema.of_list [ ("price", Value.Tfloat); ("vol", Value.Tfloat) ])
      [ [| v_float 100.; v_float 0.01 |] ]
  in
  let vg = Vg.backward_walk ~steps:5 in
  let rng = Rng.create ~seed:3 () in
  let rows = vg.Vg.generate rng [ param ] in
  Alcotest.(check int) "6 rows" 6 (List.length rows);
  Alcotest.(check bool) "not row stable" false vg.Vg.row_stable;
  (match List.rev rows with
  | last :: _ -> Alcotest.(check (float 1e-9)) "anchored at today" 100. (Value.to_float last.(1))
  | [] -> Alcotest.fail "empty")

let test_vg_option_value_nonnegative () =
  let param =
    Table.create
      (Schema.of_list
         [ ("s0", Value.Tfloat); ("drift", Value.Tfloat); ("vol", Value.Tfloat) ])
      [ [| v_float 100.; v_float 0.; v_float 0.05 |] ]
  in
  let vg = Vg.option_value ~horizon:10 ~strike:105. in
  let rng = Rng.create ~seed:4 () in
  for _ = 1 to 1000 do
    match vg.Vg.generate rng [ param ] with
    | [ [| Value.Float payoff |] ] ->
      if payoff < 0. then Alcotest.fail "negative payoff"
    | _ -> Alcotest.fail "unexpected"
  done

let test_vg_resample_row () =
  let schema = Schema.of_list [ ("k", Value.Tint); ("v", Value.Tfloat) ] in
  let history =
    Table.create schema
      [ [| v_int 1; v_float 10. |]; [| v_int 2; v_float 20. |]; [| v_int 3; v_float 30. |] ]
  in
  let vg = Vg.resample_row ~output:schema in
  let rng = Rng.create ~seed:20 () in
  let counts = Array.make 4 0 in
  for _ = 1 to 3000 do
    match vg.Vg.generate rng [ history ] with
    | [ [| Value.Int k; Value.Float v |] ] ->
      Alcotest.(check (float 1e-9)) "row intact" (float_of_int (k * 10)) v;
      counts.(k) <- counts.(k) + 1
    | _ -> Alcotest.fail "unexpected shape"
  done;
  for k = 1 to 3 do
    Alcotest.(check bool) "roughly uniform" true (counts.(k) > 800 && counts.(k) < 1200)
  done;
  Alcotest.(check bool) "schema mismatch rejected" true
    (try
       ignore
         (vg.Vg.generate rng
            [ Table.create (Schema.of_list [ ("x", Value.Tint) ]) [ [| v_int 1 |] ] ]);
       false
     with Invalid_argument _ -> true)

(* --- stochastic tables --- *)

let test_instantiate_row_count () =
  let rng = Rng.create ~seed:5 () in
  let t = St.instantiate (sbp_table 37) rng in
  Alcotest.(check int) "one row per patient" 37 (Table.cardinality t);
  Alcotest.(check bool) "schema" true (Schema.equal sbp_schema (Table.schema t))

let test_instantiate_many_differ () =
  let rng = Rng.create ~seed:6 () in
  let instances = St.instantiate_many (sbp_table 5) rng 2 in
  let a = Table.column_floats instances.(0) "sbp" in
  let b = Table.column_floats instances.(1) "sbp" in
  Alcotest.(check bool) "realizations differ" true (a <> b)

let test_empty_driver () =
  let rng = Rng.create ~seed:19 () in
  (* A stochastic table over an empty driver realizes as an empty table. *)
  let st =
    St.define ~name:"EMPTY" ~schema:sbp_schema ~driver:(Table.empty patients_schema)
      ~vg:Vg.normal
      ~params:(fun _ -> [ sbp_param ])
      ~combine:(fun d v -> [| d.(0); d.(1); v.(0) |])
  in
  Alcotest.(check int) "no rows" 0 (Table.cardinality (St.instantiate st rng));
  let bundle = Bundle.of_stochastic_table st rng ~n_reps:5 in
  Alcotest.(check int) "empty bundle" 0 (Bundle.row_count bundle);
  match Bundle.aggregate [ ("n", Bundle.Count) ] bundle with
  | [ (_, per) ] -> Alcotest.(check (float 0.)) "count 0" 0. per.(0).(0)
  | _ -> Alcotest.fail "expected the global group"

(* --- the Monte Carlo database facade --- *)

module Database = Mde_mcdb.Database

let test_database_instantiate () =
  let db = Database.create () in
  Database.add_table db "PATIENTS" (patients 12);
  Database.add_table db "SBP_PARAM" sbp_param;
  Database.add_stochastic db (sbp_table 12);
  Alcotest.(check (list string)) "deterministic" [ "PATIENTS"; "SBP_PARAM" ]
    (Database.deterministic_tables db);
  Alcotest.(check (list string)) "stochastic" [ "SBP_DATA" ] (Database.stochastic_tables db);
  let rng = Rng.create ~seed:30 () in
  let instance = Database.instantiate db rng in
  Alcotest.(check int) "realized rows" 12
    (Table.cardinality (Catalog.find instance "SBP_DATA"));
  Alcotest.(check int) "ordinary tables present" 12
    (Table.cardinality (Catalog.find instance "PATIENTS"))

let test_database_name_clash () =
  let db = Database.create () in
  Database.add_table db "X" (patients 2);
  Alcotest.(check bool) "stochastic clash rejected" true
    (try
       Database.add_stochastic db
         (St.define ~name:"X" ~schema:sbp_schema ~driver:(patients 1) ~vg:Vg.normal
            ~params:(fun _ -> [ sbp_param ])
            ~combine:(fun d v -> [| d.(0); d.(1); v.(0) |]));
       false
     with Invalid_argument _ -> true)

let test_database_monte_carlo () =
  let db = Database.create () in
  Database.add_stochastic db (sbp_table 40);
  let rng = Rng.create ~seed:31 () in
  (* Mean SBP over the realized table, per repetition. *)
  let query catalog =
    Mde_prob.Stats.mean (Table.column_floats (Catalog.find catalog "SBP_DATA") "sbp")
  in
  let samples = Database.monte_carlo db rng ~reps:200 ~query in
  Alcotest.(check int) "reps" 200 (Array.length samples);
  Alcotest.(check bool) "reps differ" true (samples.(0) <> samples.(1));
  let e = Database.estimate db rng ~reps:200 ~query in
  Alcotest.(check bool) "mean near 120" true (Float.abs (e.Estimator.mean -. 120.) < 2.);
  (* Replication-count validation must survive [-noassert] builds. *)
  Alcotest.(check bool) "reps = 0 raises Invalid_argument" true
    (try
       ignore (Database.monte_carlo db rng ~reps:0 ~query);
       false
     with
    | Invalid_argument _ -> true
    | _ -> false)

let test_database_estimate_instrumented () =
  (* Observability must never change an answer: the same seed yields a
     bit-identical estimate whether the default registry is the no-op or
     a live one — and the live run records its replication count. *)
  let db = Database.create () in
  Database.add_stochastic db (sbp_table 20);
  let query catalog =
    Mde_prob.Stats.mean (Table.column_floats (Catalog.find catalog "SBP_DATA") "sbp")
  in
  let plain = Database.estimate db (Rng.create ~seed:5 ()) ~reps:50 ~query in
  let registry = Mde_obs.create () in
  Mde_obs.set_default registry;
  let instrumented =
    Fun.protect
      ~finally:(fun () -> Mde_obs.set_default Mde_obs.noop)
      (fun () -> Database.estimate db (Rng.create ~seed:5 ()) ~reps:50 ~query)
  in
  Alcotest.(check (float 0.)) "mean bit-identical" plain.Estimator.mean
    instrumented.Estimator.mean;
  Alcotest.(check (float 0.)) "std bit-identical" plain.Estimator.std
    instrumented.Estimator.std;
  Alcotest.(check int) "replications counted" 50
    (Mde_obs.Counter.value (Mde_obs.counter registry "mde_mcdb_replications_total"));
  Alcotest.(check bool) "span recorded" true
    (List.exists (fun s -> s.Mde_obs.name = "mcdb.estimate") (Mde_obs.spans registry))

(* --- tuple bundles --- *)

let test_bundle_shape () =
  let rng = Rng.create ~seed:7 () in
  let b = Bundle.of_stochastic_table (sbp_table 10) rng ~n_reps:25 in
  Alcotest.(check int) "rows" 10 (Bundle.row_count b);
  Alcotest.(check int) "reps" 25 (Bundle.n_reps b);
  (* pid is deterministic across reps, sbp uncertain. *)
  let r0 = Bundle.realize_row b 0 0 and r1 = Bundle.realize_row b 0 1 in
  Alcotest.(check bool) "pid stable" true (Value.equal r0.(0) r1.(0))

let test_bundle_rejects_unstable_vg () =
  let st =
    St.define ~name:"walks" ~schema:(Schema.of_list [ ("step", Value.Tint); ("price", Value.Tfloat) ])
      ~driver:(patients 2)
      ~vg:(Vg.backward_walk ~steps:3)
      ~params:(fun _ ->
        [
          Table.create
            (Schema.of_list [ ("p", Value.Tfloat); ("v", Value.Tfloat) ])
            [ [| v_float 10.; v_float 0.1 |] ];
        ])
      ~combine:(fun _ vg_row -> vg_row)
  in
  let rng = Rng.create ~seed:8 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Bundle.of_stochastic_table st rng ~n_reps:2);
       false
     with Invalid_argument _ -> true)

(* Equivalence: bundle operators vs per-instance relational execution. *)
let bundle_and_instances () =
  let rng = Rng.create ~seed:9 () in
  let b = Bundle.of_stochastic_table (sbp_table 30) rng ~n_reps:40 in
  (b, Bundle.to_instances b)

let test_bundle_select_equivalence () =
  let b, instances = bundle_and_instances () in
  let pred = Expr.(col "sbp" > float 125.) in
  let selected = Bundle.select pred b in
  let per_rep = Bundle.to_instances selected in
  Array.iteri
    (fun r inst ->
      let expected = Algebra.select pred instances.(r) in
      Alcotest.(check int)
        (Printf.sprintf "rep %d cardinality" r)
        (Table.cardinality expected) (Table.cardinality inst))
    per_rep

let test_bundle_aggregate_equivalence () =
  let b, instances = bundle_and_instances () in
  let groups =
    Bundle.aggregate ~keys:[ "gender" ]
      [ ("n", Bundle.Count); ("avg_sbp", Bundle.Avg (Expr.col "sbp")) ]
      b
  in
  Alcotest.(check int) "two genders" 2 (List.length groups);
  List.iter
    (fun (key, per_agg) ->
      let gender = key.(0) in
      Array.iteri
        (fun r inst ->
          let expected =
            Algebra.group_by ~keys:[ "gender" ]
              ~aggs:[ ("n", Algebra.Count); ("avg", Algebra.Avg (Expr.col "sbp")) ]
              inst
            |> Algebra.select Expr.(col "gender" = Lit gender)
          in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "count rep %d" r)
            (Value.to_float (Table.get expected 0 "n"))
            per_agg.(0).(r);
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "avg rep %d" r)
            (Value.to_float (Table.get expected 0 "avg"))
            per_agg.(1).(r))
        instances)
    groups

let test_bundle_extend_and_join () =
  let b, _ = bundle_and_instances () in
  let extended =
    Bundle.extend [ ("high", Value.Tbool, Expr.(col "sbp" > float 140.)) ] b
  in
  Alcotest.(check int) "arity grew" 4 (Schema.arity (Bundle.schema extended));
  (* Join against a deterministic region table on pid. *)
  let region =
    Bundle.of_table
      (Table.create
         (Schema.of_list [ ("pid2", Value.Tint); ("region", Value.Tstring) ])
         (List.init 30 (fun i ->
              [| v_int i; v_str (if i < 15 then "east" else "west") |])))
      ~n_reps:(Bundle.n_reps b)
  in
  let joined = Bundle.join ~on:[ ("pid", "pid2") ] b region in
  Alcotest.(check int) "join preserves rows" 30 (Bundle.row_count joined);
  let groups =
    Bundle.aggregate ~keys:[ "region" ] [ ("n", Bundle.Count) ] joined
  in
  Alcotest.(check int) "two regions" 2 (List.length groups)

let test_bundle_det_compression () =
  (* A VG that adds a constant yields Det cells, and selection on it is
     evaluated once (observable through equal results, cheaply). *)
  let const_vg =
    Vg.create ~name:"Const" ~output:(Schema.of_list [ ("value", Value.Tfloat) ])
      ~row_stable:true
      (fun _rng _params -> [ [| v_float 1.0 |] ])
  in
  let st =
    St.define ~name:"const" ~schema:(Schema.of_list [ ("pid", Value.Tint); ("value", Value.Tfloat) ])
      ~driver:(patients 5) ~vg:const_vg
      ~params:(fun _ -> [ sbp_param ])
      ~combine:(fun d v -> [| d.(0); v.(0) |])
  in
  let rng = Rng.create ~seed:10 () in
  let b = Bundle.of_stochastic_table st rng ~n_reps:10 in
  let selected = Bundle.select Expr.(col "value" > float 0.5) b in
  for r = 0 to 9 do
    Alcotest.(check bool) "all present" true (Bundle.present selected 0 r)
  done

(* --- estimators --- *)

let test_estimator_basic () =
  let rng = Rng.create ~seed:11 () in
  let xs = Mde_prob.Dist.sample_n (Mde_prob.Dist.Normal { mean = 10.; std = 2. }) rng 5000 in
  let e = Estimator.of_samples xs in
  Alcotest.(check bool) "mean close" true (Float.abs (e.Estimator.mean -. 10.) < 0.15);
  let lo, hi = e.Estimator.ci95 in
  Alcotest.(check bool) "ci contains" true (lo < 10. && 10. < hi)

let test_estimator_nan_dropped () =
  let e = Estimator.of_samples [| 1.; nan; 3.; nan; 5. |] in
  Alcotest.(check int) "n" 3 e.Estimator.n;
  Alcotest.(check int) "dropped reported" 2 e.Estimator.dropped;
  Alcotest.(check (float 1e-9)) "mean" 3. e.Estimator.mean;
  let clean = Estimator.of_samples [| 1.; 2.; 3. |] in
  Alcotest.(check int) "no drops on clean input" 0 clean.Estimator.dropped

(* Validation must raise [Invalid_argument] — never [Assert_failure],
   which [-noassert] builds compile away — so the checks are probed with
   an explicit handler rather than [check_raises]. *)
let raises_invalid f =
  try
    ignore (f ());
    false
  with
  | Invalid_argument _ -> true
  | _ -> false

let test_estimator_all_nan () =
  let all_nan = [| nan; nan; nan |] in
  Alcotest.(check bool) "of_samples" true
    (raises_invalid (fun () -> Estimator.of_samples all_nan));
  Alcotest.(check bool) "quantile" true
    (raises_invalid (fun () -> Estimator.quantile all_nan 0.5));
  Alcotest.(check bool) "quantile_ci" true
    (raises_invalid (fun () -> Estimator.quantile_ci all_nan 0.5 0.95));
  Alcotest.(check bool) "extreme_quantile" true
    (raises_invalid (fun () -> Estimator.extreme_quantile all_nan 0.9));
  Alcotest.(check bool) "conditional_tail_expectation" true
    (raises_invalid (fun () -> Estimator.conditional_tail_expectation all_nan 0.9));
  Alcotest.(check bool) "threshold_probability" true
    (raises_invalid (fun () -> Estimator.threshold_probability all_nan 0.));
  (* The error message must name the drop count so the caller can see
     every repetition was empty. *)
  try ignore (Estimator.of_samples all_nan)
  with Invalid_argument msg ->
    let needle = "all 3 samples" in
    let n = String.length needle and m = String.length msg in
    let rec contains i = i + n <= m && (String.sub msg i n = needle || contains (i + 1)) in
    Alcotest.(check bool)
      (Printf.sprintf "message %S names the count" msg)
      true (contains 0)

let test_estimator_validation_no_assert () =
  let xs = Array.init 100 float_of_int in
  Alcotest.(check bool) "quantile_ci p out of range" true
    (raises_invalid (fun () -> Estimator.quantile_ci xs 1.5 0.95));
  Alcotest.(check bool) "quantile_ci level out of range" true
    (raises_invalid (fun () -> Estimator.quantile_ci xs 0.5 0.));
  Alcotest.(check bool) "quantile_ci too few samples" true
    (raises_invalid (fun () -> Estimator.quantile_ci [| 1. |] 0.5 0.95));
  Alcotest.(check bool) "extreme_quantile p = 0" true
    (raises_invalid (fun () -> Estimator.extreme_quantile xs 0.));
  Alcotest.(check bool) "extreme_quantile p = 1" true
    (raises_invalid (fun () -> Estimator.extreme_quantile xs 1.));
  Alcotest.(check bool) "extreme_quantile nan p" true
    (raises_invalid (fun () -> Estimator.extreme_quantile xs nan));
  Alcotest.(check bool) "threshold_probability empty" true
    (raises_invalid (fun () -> Estimator.threshold_probability [||] 0.))

let test_estimator_pp_consistent () =
  (* The printed ± half-width must be the stored interval's half-width
     (z = 1.959963...), not a separately hardcoded 1.96·SE. *)
  let e = Estimator.of_samples [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |] in
  let printed = Format.asprintf "%a" Estimator.pp_estimate e in
  let lo, hi = e.Estimator.ci95 in
  let expected = Printf.sprintf "%.3g" ((hi -. lo) /. 2.) in
  Alcotest.(check bool)
    (Printf.sprintf "printed %S carries half-width %s" printed expected)
    true
    (let pm = Printf.sprintf "\xc2\xb1 %s " expected in
     let rec contains i =
       if i + String.length pm > String.length printed then false
       else String.sub printed i (String.length pm) = pm || contains (i + 1)
     in
     contains 0)

let test_threshold_probability () =
  let xs = Array.init 1000 (fun i -> float_of_int i) in
  let p, (lo, hi) = Estimator.threshold_probability xs 499.5 in
  Alcotest.(check (float 1e-9)) "phat" 0.5 p;
  Alcotest.(check bool) "wilson interval" true (lo < 0.5 && 0.5 < hi);
  Alcotest.(check bool) "decision" true
    (Estimator.exceeds_with_probability xs ~cutoff:100. ~prob:0.5)

let test_extreme_quantile_guard () =
  Alcotest.(check bool) "too few samples raises" true
    (try
       ignore (Estimator.extreme_quantile (Array.init 10 float_of_int) 0.999);
       false
     with Invalid_argument _ -> true);
  let xs = Array.init 10_000 float_of_int in
  Alcotest.(check bool) "q99 large" true (Estimator.extreme_quantile xs 0.99 > 9800.)

let test_conditional_tail_expectation () =
  let xs = Array.init 100 (fun i -> float_of_int i) in
  let cte = Estimator.conditional_tail_expectation xs 0.9 in
  Alcotest.(check bool) "CTE above quantile" true (cte >= 89.)

let test_quantile_ci_orders () =
  let rng = Rng.create ~seed:12 () in
  let xs = Mde_prob.Dist.sample_n (Mde_prob.Dist.Uniform (0., 1.)) rng 2000 in
  let lo, hi = Estimator.quantile_ci xs 0.5 0.95 in
  Alcotest.(check bool) "brackets median" true (lo <= 0.5 && 0.5 <= hi)

let test_quantile_ci_coverage () =
  (* Order-statistic CI for the median: ~95% coverage over repeated
     samples. *)
  let rng = Rng.create ~seed:21 () in
  let hits = ref 0 in
  let trials = 300 in
  for _ = 1 to trials do
    let xs = Mde_prob.Dist.sample_n (Mde_prob.Dist.Normal { mean = 0.; std = 1. }) rng 100 in
    let lo, hi = Estimator.quantile_ci xs 0.5 0.95 in
    if lo <= 0. && 0. <= hi then incr hits
  done;
  let coverage = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.2f" coverage)
    true
    (coverage > 0.88 && coverage <= 1.0)

let test_quantiles_match_per_call () =
  let rng = Rng.create ~seed:33 () in
  let xs = Mde_prob.Dist.sample_n (Mde_prob.Dist.Normal { mean = 5.; std = 2. }) rng 500 in
  let ps = [| 0.; 0.01; 0.25; 0.5; 0.75; 0.9; 0.99; 1. |] in
  let qs = Estimator.quantiles xs ps in
  Array.iteri
    (fun i p ->
      let expect = Estimator.quantile xs p in
      Alcotest.(check bool)
        (Printf.sprintf "p=%.2f single-sort = per-call" p)
        true
        (Int64.equal (Int64.bits_of_float expect) (Int64.bits_of_float qs.(i))))
    ps;
  Alcotest.(check bool) "empty raises" true
    (try ignore (Estimator.quantiles [||] [| 0.5 |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "p out of range raises" true
    (try ignore (Estimator.quantiles xs [| 1.5 |]); false
     with Invalid_argument _ -> true)

let test_tail_estimate_matches_per_call () =
  let rng = Rng.create ~seed:34 () in
  let xs = Mde_prob.Dist.sample_n (Mde_prob.Dist.Uniform (0., 100.)) rng 400 in
  List.iter
    (fun p ->
      let q, (lo, hi) = Estimator.tail_estimate xs ~p ~level:0.95 in
      let q' = Estimator.extreme_quantile xs p in
      let lo', hi' = Estimator.quantile_ci xs p 0.95 in
      let eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b) in
      Alcotest.(check bool)
        (Printf.sprintf "p=%.2f point estimate" p)
        true (eq q q');
      Alcotest.(check bool) "ci" true (eq lo lo' && eq hi hi'))
    [ 0.5; 0.9; 0.95 ];
  Alcotest.(check bool) "empty tail raises" true
    (try ignore (Estimator.tail_estimate (Array.init 5 float_of_int) ~p:0.999 ~level:0.95); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "level out of range raises" true
    (try ignore (Estimator.tail_estimate xs ~p:0.9 ~level:1.5); false
     with Invalid_argument _ -> true)

(* What-if revenue query: full pipeline through bundles (integration). *)
let test_whatif_revenue_pipeline () =
  let customers =
    Table.create
      (Schema.of_list
         [ ("cid", Value.Tint); ("region", Value.Tstring); ("age", Value.Tint) ])
      (List.init 40 (fun i ->
           [|
             v_int i;
             v_str (if i mod 2 = 0 then "east" else "west");
             v_int (20 + (i mod 30));
           |]))
  in
  let demand_param =
    Table.create
      (Schema.of_list
         [ ("alpha", Value.Tfloat); ("beta", Value.Tfloat); ("price", Value.Tfloat) ])
      [ [| v_float 2.0; v_float 1.0; v_float 10.5 |] ]
  in
  let history =
    Table.create (Schema.of_list [ ("q", Value.Tfloat) ]) [ [| v_float 3. |]; [| v_float 2. |] ]
  in
  let st =
    St.define ~name:"DEMAND"
      ~schema:
        (Schema.of_list
           [
             ("cid", Value.Tint);
             ("region", Value.Tstring);
             ("age", Value.Tint);
             ("demand", Value.Tfloat);
           ])
      ~driver:customers ~vg:Vg.bayesian_demand
      ~params:(fun _ -> [ demand_param; history ])
      ~combine:(fun d v -> [| d.(0); d.(1); d.(2); v.(0) |])
  in
  let rng = Rng.create ~seed:13 () in
  let b = Bundle.of_stochastic_table st rng ~n_reps:60 in
  let east_young =
    Bundle.select Expr.(col "region" = string "east" && col "age" < int 30) b
  in
  let revenue =
    Bundle.extend
      [ ("revenue", Value.Tfloat, Expr.(col "demand" * float 10.5)) ]
      east_young
  in
  match Bundle.aggregate [ ("total", Bundle.Sum (Expr.col "revenue")) ] revenue with
  | [ (_, per_agg) ] ->
    let estimate = Estimator.of_samples per_agg.(0) in
    Alcotest.(check bool) "positive revenue" true (estimate.Estimator.mean > 0.);
    Alcotest.(check int) "all reps" 60 estimate.Estimator.n
  | _ -> Alcotest.fail "expected one group"

let () =
  Alcotest.run "mde_mcdb"
    [
      ( "vg",
        [
          Alcotest.test_case "normal stats" `Slow test_vg_normal_stats;
          Alcotest.test_case "discrete choice" `Quick test_vg_discrete_choice;
          Alcotest.test_case "backward walk" `Quick test_vg_backward_walk;
          Alcotest.test_case "option payoff >= 0" `Quick test_vg_option_value_nonnegative;
          Alcotest.test_case "bootstrap resample" `Quick test_vg_resample_row;
        ] );
      ( "stochastic_table",
        [
          Alcotest.test_case "row count" `Quick test_instantiate_row_count;
          Alcotest.test_case "instances differ" `Quick test_instantiate_many_differ;
          Alcotest.test_case "empty driver" `Quick test_empty_driver;
        ] );
      ( "database",
        [
          Alcotest.test_case "instantiate" `Quick test_database_instantiate;
          Alcotest.test_case "name clash" `Quick test_database_name_clash;
          Alcotest.test_case "monte carlo" `Quick test_database_monte_carlo;
          Alcotest.test_case "instrumented estimate bit-identical" `Quick
            test_database_estimate_instrumented;
        ] );
      ( "bundle",
        [
          Alcotest.test_case "shape" `Quick test_bundle_shape;
          Alcotest.test_case "rejects unstable VG" `Quick test_bundle_rejects_unstable_vg;
          Alcotest.test_case "select = naive" `Quick test_bundle_select_equivalence;
          Alcotest.test_case "aggregate = naive" `Quick test_bundle_aggregate_equivalence;
          Alcotest.test_case "extend + join" `Quick test_bundle_extend_and_join;
          Alcotest.test_case "det compression" `Quick test_bundle_det_compression;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "basic" `Quick test_estimator_basic;
          Alcotest.test_case "nan dropped" `Quick test_estimator_nan_dropped;
          Alcotest.test_case "all-NaN raises" `Quick test_estimator_all_nan;
          Alcotest.test_case "validation survives -noassert" `Quick
            test_estimator_validation_no_assert;
          Alcotest.test_case "pp half-width = CI" `Quick test_estimator_pp_consistent;
          Alcotest.test_case "threshold query" `Quick test_threshold_probability;
          Alcotest.test_case "extreme quantile" `Quick test_extreme_quantile_guard;
          Alcotest.test_case "tail expectation" `Quick test_conditional_tail_expectation;
          Alcotest.test_case "quantile CI" `Quick test_quantile_ci_orders;
          Alcotest.test_case "quantile CI coverage" `Slow test_quantile_ci_coverage;
          Alcotest.test_case "multi-quantile = per-call" `Quick
            test_quantiles_match_per_call;
          Alcotest.test_case "tail_estimate = per-call pair" `Quick
            test_tail_estimate_matches_per_call;
        ] );
      ( "integration",
        [ Alcotest.test_case "what-if revenue" `Quick test_whatif_revenue_pipeline ] );
    ]
