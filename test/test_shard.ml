(* The sharded serving front: rendezvous-router placement properties
   (stability under growth, degenerate fronts), sharded-vs-single-shard
   bit-identity over a randomized Zipf workload, typed load shedding at
   both admission levels, federation catalog resolution and
   bit-identity across backends, open-loop workload accounting, and the
   shutdown contracts (scheduler banked-completion delivery, abandoned
   accounting, front-wide shutdown). *)

module Serve = Mde_serve
module Router = Mde_serve.Router
module Shard = Mde_serve.Shard
module Scheduler = Mde_serve.Scheduler
module Server = Mde_serve.Server
module Workload = Mde_serve.Workload
module Target = Mde_serve.Target
module Demo = Mde_serve.Demo
module Rng = Mde_prob.Rng

let keys n = Array.init n (Printf.sprintf "query-fingerprint-%d")

(* --- router --- *)

let test_router_validation () =
  Alcotest.check_raises "zero shards" (Invalid_argument "Router.create: shards must be >= 1")
    (fun () -> ignore (Router.create ~shards:0))

let test_router_one_shard () =
  let r = Router.create ~shards:1 in
  Array.iter
    (fun k -> Alcotest.(check int) "all keys on shard 0" 0 (Router.route r k))
    (keys 64)

let test_router_matches_weight_argmax () =
  let shards = 5 in
  let r = Router.create ~shards in
  Array.iter
    (fun k ->
      let best = ref 0 in
      for shard = 1 to shards - 1 do
        if
          Int64.unsigned_compare
            (Router.weight ~key:k ~shard)
            (Router.weight ~key:k ~shard:!best)
          > 0
        then best := shard
      done;
      Alcotest.(check int) "route = highest-weight shard" !best (Router.route r k))
    (keys 200)

let test_router_deterministic_and_bounded () =
  let r = Router.create ~shards:7 in
  Array.iter
    (fun k ->
      let s = Router.route r k in
      Alcotest.(check bool) "in range" true (s >= 0 && s < 7);
      Alcotest.(check int) "same key, same shard" s (Router.route r k))
    (keys 128)

(* Growing n -> n+1 must remap only keys won by the new shard: the
   rendezvous weights of existing shards are unchanged, so a key either
   keeps its shard or moves to the newcomer — never between old shards —
   and the moved fraction concentrates around K/(n+1). *)
let test_router_growth_remaps_few () =
  let k = 500 in
  let before = Router.create ~shards:4 in
  let after = Router.resize before ~shards:5 in
  let moved = ref 0 in
  Array.iter
    (fun key ->
      let b = Router.route before key and a = Router.route after key in
      if b <> a then begin
        incr moved;
        Alcotest.(check int) "moved keys land on the new shard" 4 a
      end)
    (keys k);
  Alcotest.(check bool)
    (Printf.sprintf "moved %d of %d keys, expected <= %d" !moved k (2 * k / 5))
    true
    (!moved <= 2 * k / 5);
  Alcotest.(check bool) "growth moves something" true (!moved > 0)

(* --- sharded front vs single shard --- *)

let responses_identical (a : Server.response) (b : Server.response) =
  a.Server.value = b.Server.value && a.Server.ci95 = b.Server.ci95
  && a.Server.reps_executed = b.Server.reps_executed

let test_sharded_equals_single () =
  let catalog = Demo.catalog 10 in
  let single = Demo.server ~rows:40 () in
  let front = Demo.front ~rows:40 ~shards:3 () in
  let cdf = Workload.zipf_cdf ~s:1.1 ~n:(Array.length catalog) in
  let rng = Rng.create ~seed:99 () in
  let compared = ref 0 in
  for _ = 1 to 50 do
    let request = catalog.(Workload.zipf_sample rng cdf) in
    match (Server.serve single request, Shard.serve front request) with
    | `Served a, `Served b ->
      incr compared;
      Alcotest.(check bool) "sharded bits == single-shard bits" true
        (responses_identical a b)
    | _ -> Alcotest.fail "nothing was shed or rejected in this workload"
  done;
  Alcotest.(check int) "all 50 pairs compared" 50 !compared;
  (* Routing spread the catalog: more than one shard saw traffic, and
     the imbalance gauge is a finite ratio >= 1. *)
  let stats = Shard.stats front in
  let active =
    Array.fold_left (fun n routed -> if routed > 0 then n + 1 else n) 0 stats.Shard.routed
  in
  Alcotest.(check bool) "several shards active" true (active > 1);
  let imb = Shard.imbalance front in
  Alcotest.(check bool) "imbalance finite and >= 1" true
    (Float.is_finite imb && imb >= 1.)

let test_same_fingerprint_same_shard () =
  let front = Demo.front ~rows:20 ~shards:4 () in
  Array.iter
    (fun request ->
      Alcotest.(check int) "shard_of is a pure function of the fingerprint"
        (Shard.shard_of front request) (Shard.shard_of front request))
    (Demo.catalog 12);
  let r = { Server.model = "sbp"; kind = Server.Mcdb_mean { reps = 8 }; seed = 3; deadline = None } in
  Alcotest.(check int) "equal requests, equal shard" (Shard.shard_of front r)
    (Shard.shard_of front { r with Server.model = "sbp" })

(* --- typed shedding --- *)

let test_shed_shard_queue_full () =
  let scheduler = { Scheduler.queue_capacity = 2; batch_size = 8 } in
  let front = Demo.front ~rows:20 ~scheduler ~high_water:10 ~shards:1 () in
  let catalog = Demo.catalog 5 in
  let accepted = ref 0 and sheds = ref [] in
  Array.iter
    (fun request ->
      match Shard.submit front request with
      | `Queued _ -> incr accepted
      | `Shed s -> sheds := s :: !sheds)
    catalog;
  Alcotest.(check int) "queue capacity admits 2" 2 !accepted;
  Alcotest.(check int) "rest shed" 3 (List.length !sheds);
  List.iter
    (fun (s : Shard.shed) ->
      Alcotest.(check bool) "typed reason" true (s.Shard.reason = Shard.Shard_queue_full);
      Alcotest.(check int) "routed shard" 0 s.Shard.shard;
      Alcotest.(check int) "limit echoed" 2 s.Shard.limit)
    !sheds;
  (* Shedding never sinks the front: the accepted work still drains. *)
  Alcotest.(check int) "accepted work drains" 2 (List.length (Shard.drain front));
  let stats = Shard.stats front in
  Alcotest.(check int) "shed counted" 3 stats.Shard.shed.(0);
  Alcotest.(check int) "no front-level sheds" 0 stats.Shard.shed_front

let test_shed_front_high_water () =
  let scheduler = { Scheduler.queue_capacity = 100; batch_size = 8 } in
  let front = Demo.front ~rows:20 ~scheduler ~high_water:3 ~shards:2 () in
  let catalog = Demo.catalog 6 in
  let accepted = ref 0 and sheds = ref [] in
  Array.iter
    (fun request ->
      match Shard.submit front request with
      | `Queued _ -> incr accepted
      | `Shed s -> sheds := s :: !sheds)
    catalog;
  Alcotest.(check int) "high water admits 3" 3 !accepted;
  Alcotest.(check int) "rest shed at the front" 3 (List.length !sheds);
  List.iter
    (fun (s : Shard.shed) ->
      Alcotest.(check bool) "typed reason" true (s.Shard.reason = Shard.Front_high_water);
      Alcotest.(check int) "limit echoed" 3 s.Shard.limit;
      Alcotest.(check int) "depth is the aggregate outstanding" 3 s.Shard.depth)
    !sheds;
  let stats = Shard.stats front in
  Alcotest.(check int) "front-level sheds counted" 3 stats.Shard.shed_front;
  Alcotest.(check int) "outstanding tracks accepted" 3 stats.Shard.outstanding;
  Alcotest.(check int) "drain delivers the accepted 3" 3 (List.length (Shard.drain front));
  Alcotest.(check int) "drained front is empty" 0 (Shard.stats front).Shard.outstanding

(* --- federation --- *)

let test_federation_prefers_bundle_then_stays_identical () =
  let front = Demo.front ~rows:40 ~shards:2 () in
  let single = Demo.server ~rows:40 () in
  let request seed =
    { Server.model = "sbp_any"; kind = Server.Mcdb_mean { reps = 16 }; seed; deadline = None }
  in
  Alcotest.(check string) "static preference: bundle plan first" "sbp_bundle"
    (Shard.backend_for front (request 1));
  (* Whatever backend the catalog picks as costs accrue, the answer is
     bit-identical to the naive single-server path. *)
  for seed = 1 to 6 do
    let direct =
      match Server.serve single { (request seed) with Server.model = "sbp" } with
      | `Served a -> a
      | `Rejected -> Alcotest.fail "direct serve rejected"
    in
    match Shard.serve front (request seed) with
    | `Served b ->
      Alcotest.(check bool) "federated bits == direct naive bits" true
        (responses_identical direct b)
    | `Shed _ -> Alcotest.fail "federated serve shed"
  done;
  let backend = Shard.backend_for front (request 99) in
  Alcotest.(check bool) "resolves to a registered backend" true
    (backend = "sbp_bundle" || backend = "sbp")

let test_federated_fingerprint_pinned_to_primary () =
  let front = Demo.front ~rows:20 ~shards:4 () in
  let request model =
    { Server.model; kind = Server.Mcdb_mean { reps = 16 }; seed = 7; deadline = None }
  in
  Alcotest.(check string) "fingerprint is the primary backend's"
    (Shard.fingerprint front (request "sbp_bundle"))
    (Shard.fingerprint front (request "sbp_any"));
  Alcotest.(check int) "so the shard never moves with backend choice"
    (Shard.shard_of front (request "sbp_bundle"))
    (Shard.shard_of front (request "sbp_any"))

let test_federate_validation () =
  let front = Demo.front ~rows:20 ~shards:2 () in
  let raises name f =
    match f () with
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises "empty backend list" (fun () -> Shard.federate front ~name:"f" ~backends:[]);
  raises "unknown backend" (fun () -> Shard.federate front ~name:"f" ~backends:[ "nope" ]);
  raises "incompatible backends" (fun () ->
      Shard.federate front ~name:"f" ~backends:[ "sbp"; "walk" ]);
  raises "name already taken" (fun () ->
      Shard.federate front ~name:"sbp_any" ~backends:[ "sbp" ]);
  raises "unknown model in submit" (fun () ->
      ignore
        (Shard.submit front
           { Server.model = "ghost"; kind = Server.Mcdb_mean { reps = 4 }; seed = 1;
             deadline = None }))

(* --- open loop --- *)

let ticking step =
  let t = ref 0. in
  fun () ->
    t := !t +. step;
    !t

let test_open_loop_accounting_and_determinism () =
  let run () =
    let front = Demo.front ~clock:(ticking 1e-4) ~rows:20 ~shards:2 () in
    Workload.run_open ~clock:(ticking 1e-4) (Target.of_shard front)
      ~catalog:(Demo.catalog 8)
      { Workload.arrivals = 30; rate = 50.; zipf_s = 1.1; seed = 13 }
  in
  let report, responses = run () in
  Alcotest.(check int) "offered echoed" 30 report.Workload.offered;
  Alcotest.(check int) "served + shed = offered" 30
    (report.Workload.served + report.Workload.shed);
  let filled =
    Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 responses
  in
  Alcotest.(check int) "one response slot per served arrival" report.Workload.served
    filled;
  Alcotest.(check bool) "p99 finite when something was served" true
    (report.Workload.served = 0 || Float.is_finite report.Workload.p99);
  (* Same seed, fresh front and clocks: the identical arrival process
     produces bit-identical estimates. *)
  let report2, responses2 = run () in
  Alcotest.(check int) "deterministic served count" report.Workload.served
    report2.Workload.served;
  Array.iteri
    (fun i r ->
      match (r, responses2.(i)) with
      | Some a, Some b ->
        Alcotest.(check bool) "deterministic response bits" true
          (responses_identical a b)
      | None, None -> ()
      | _ -> Alcotest.fail "the two runs served different arrival sets")
    responses

let test_open_loop_validation () =
  let front = Demo.front ~rows:20 ~shards:1 () in
  let target = Target.of_shard front in
  let catalog = Demo.catalog 4 in
  let raises name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  raises "empty catalog" (fun () ->
      Workload.run_open target ~catalog:[||]
        { Workload.arrivals = 1; rate = 1.; zipf_s = 1.; seed = 0 });
  raises "zero arrivals" (fun () ->
      Workload.run_open target ~catalog
        { Workload.arrivals = 0; rate = 1.; zipf_s = 1.; seed = 0 });
  raises "non-positive rate" (fun () ->
      Workload.run_open target ~catalog
        { Workload.arrivals = 1; rate = 0.; zipf_s = 1.; seed = 0 })

(* --- shutdown --- *)

(* The satellite bugfix: completions banked in [stashed] after a
   drain-time exception used to be silently lost if the scheduler was
   dropped before the next drain. [shutdown] must deliver them, count
   never-executed work as abandoned, and refuse further submissions. *)
let test_scheduler_shutdown_delivers_banked () =
  let sched = Scheduler.create { Scheduler.queue_capacity = 8; batch_size = 1 } in
  let accept label closure =
    match Scheduler.submit sched ~class_key:label closure with
    | `Accepted ticket -> ticket
    | `Rejected -> Alcotest.fail "submission rejected"
  in
  let ta = accept "a" (fun ~time_left:_ -> 1) in
  let _tb = accept "b" (fun ~time_left:_ -> failwith "boom") in
  let _tc = accept "c" (fun ~time_left:_ -> 3) in
  (match Scheduler.drain sched with
  | _ -> Alcotest.fail "drain should propagate the closure's exception"
  | exception Failure _ -> ());
  (* [a] completed before the failing batch and sits banked; [c] was
     never executed. *)
  let banked = Scheduler.shutdown sched in
  Alcotest.(check (list int)) "banked completion delivered" [ ta ]
    (List.map (fun (c : int Scheduler.completion) -> c.Scheduler.ticket) banked);
  Alcotest.(check (list int)) "with its result" [ 1 ]
    (List.map (fun (c : int Scheduler.completion) -> c.Scheduler.result) banked);
  let counters = Scheduler.counters sched in
  Alcotest.(check int) "unexecuted work counted abandoned" 1
    counters.Scheduler.abandoned;
  Alcotest.(check int) "failed closure counted failed" 1 counters.Scheduler.failed;
  Alcotest.(check int) "nothing left pending" 0 (Scheduler.pending sched);
  Alcotest.(check (list int)) "second shutdown is empty" []
    (List.map
       (fun (c : int Scheduler.completion) -> c.Scheduler.ticket)
       (Scheduler.shutdown sched));
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Scheduler.submit: scheduler is shut down") (fun () ->
      ignore (Scheduler.submit sched ~class_key:"a" (fun ~time_left:_ -> 0)))

let test_server_shutdown_delivers_ready_hits () =
  let server = Demo.server ~rows:20 () in
  let request =
    { Server.model = "sbp"; kind = Server.Mcdb_mean { reps = 8 }; seed = 4; deadline = None }
  in
  let first =
    match Server.serve server request with
    | `Served r -> r
    | `Rejected -> Alcotest.fail "serve rejected"
  in
  (match Server.submit server request with
  | `Queued _ -> ()
  | `Rejected -> Alcotest.fail "hit submission rejected");
  (match Server.shutdown server with
  | [ (_, r) ] ->
    Alcotest.(check bool) "pending cache hit delivered at shutdown" true
      (r.Server.cache = Server.Hit && responses_identical first r)
  | other -> Alcotest.failf "expected one response, got %d" (List.length other));
  (* A cache hit never reaches the scheduler, so only cache-missing
     submissions observe the closed state. *)
  Alcotest.check_raises "cache-missing submit after shutdown"
    (Invalid_argument "Scheduler.submit: scheduler is shut down") (fun () ->
      ignore (Server.submit server { request with Server.seed = 5 }))

let test_front_shutdown () =
  let front = Demo.front ~rows:20 ~shards:2 () in
  let catalog = Demo.catalog 4 in
  Array.iter (fun r -> ignore (Shard.serve front r)) catalog;
  (* Re-submit the whole catalog: every response is now a pending cache
     hit, deliverable without executing queued work. *)
  Array.iter
    (fun r ->
      match Shard.submit front r with
      | `Queued _ -> ()
      | `Shed _ -> Alcotest.fail "warm resubmission shed")
    catalog;
  Alcotest.(check int) "shutdown delivers all pending hits" (Array.length catalog)
    (List.length (Shard.shutdown front));
  Alcotest.(check int) "outstanding zero after shutdown" 0
    (Shard.stats front).Shard.outstanding

(* --- metrics --- *)

let test_shard_metrics_registered () =
  let registry = Mde_obs.create () in
  Mde_obs.set_default registry;
  let front = Demo.front ~rows:20 ~shards:2 () in
  Mde_obs.set_default Mde_obs.noop;
  Array.iter (fun r -> ignore (Shard.serve front r)) (Demo.catalog 6);
  let text = Mde_obs.Export.prometheus registry in
  List.iter
    (fun metric ->
      let present =
        (* substring search *)
        let n = String.length text and m = String.length metric in
        let rec scan i = i + m <= n && (String.sub text i m = metric || scan (i + 1)) in
        scan 0
      in
      Alcotest.(check bool) (metric ^ " exported") true present)
    [
      "mde_shard_routed_total"; "mde_shard_shed_total"; "mde_shard_depth";
      "mde_shard_outstanding"; "mde_shard_imbalance";
    ]

let () =
  Alcotest.run "shard"
    [
      ( "router",
        [
          Alcotest.test_case "zero shards rejected" `Quick test_router_validation;
          Alcotest.test_case "one shard takes everything" `Quick test_router_one_shard;
          Alcotest.test_case "route = weight argmax" `Quick
            test_router_matches_weight_argmax;
          Alcotest.test_case "deterministic, in range" `Quick
            test_router_deterministic_and_bounded;
          Alcotest.test_case "growth remaps <= 2K/N, onto the new shard" `Quick
            test_router_growth_remaps_few;
        ] );
      ( "front",
        [
          Alcotest.test_case "sharded == single shard (bit-identical)" `Quick
            test_sharded_equals_single;
          Alcotest.test_case "same fingerprint, same shard" `Quick
            test_same_fingerprint_same_shard;
          Alcotest.test_case "shard queue full: typed shed" `Quick
            test_shed_shard_queue_full;
          Alcotest.test_case "front high water: typed shed" `Quick
            test_shed_front_high_water;
          Alcotest.test_case "shard metrics exported" `Quick
            test_shard_metrics_registered;
        ] );
      ( "federation",
        [
          Alcotest.test_case "bundle preferred, bits identical" `Quick
            test_federation_prefers_bundle_then_stays_identical;
          Alcotest.test_case "fingerprint pinned to primary" `Quick
            test_federated_fingerprint_pinned_to_primary;
          Alcotest.test_case "validation" `Quick test_federate_validation;
        ] );
      ( "open loop",
        [
          Alcotest.test_case "accounting and determinism" `Quick
            test_open_loop_accounting_and_determinism;
          Alcotest.test_case "validation" `Quick test_open_loop_validation;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "scheduler delivers banked completions" `Quick
            test_scheduler_shutdown_delivers_banked;
          Alcotest.test_case "server delivers ready hits" `Quick
            test_server_shutdown_delivers_ready_hits;
          Alcotest.test_case "front-wide shutdown" `Quick test_front_shutdown;
        ] );
    ]
