open Mde_relational
module Rng = Mde_prob.Rng
module Chain = Mde_simsql.Chain
module Self_join = Mde_simsql.Self_join

let v_int i = Value.Int i
let v_float f = Value.Float f

(* A database-valued Markov chain: table "wealth" holds one row per
   account; each version adds a normal increment whose volatility is read
   from a second stochastic table "vol" that itself evolves — the mutual
   parametrization SimSQL enables. *)
let wealth_schema = Schema.of_list [ ("acct", Value.Tint); ("amount", Value.Tfloat) ]
let vol_schema = Schema.of_list [ ("sigma", Value.Tfloat) ]

let initial_state _rng =
  Chain.state_of_tables
    [
      ( "wealth",
        Table.create wealth_schema
          (List.init 8 (fun i -> [| v_int i; v_float 100. |])) );
      ("vol", Table.create vol_schema [ [| v_float 1.0 |] ]);
    ]

let transition rng state =
  let vol =
    Value.to_float (Table.get (Chain.table state "vol") 0 "sigma")
  in
  (* New vol: mean-reverting positive noise. *)
  let fresh_vol =
    Float.max 0.1
      (1.0 +. (0.5 *. (vol -. 1.0))
      +. Mde_prob.Dist.sample (Mde_prob.Dist.Normal { mean = 0.; std = 0.1 }) rng)
  in
  let wealth = Chain.table state "wealth" in
  let next_wealth =
    Table.of_rows wealth_schema
      (Array.map
         (fun row ->
           let bump =
             Mde_prob.Dist.sample (Mde_prob.Dist.Normal { mean = 1.; std = vol }) rng
           in
           [| row.(0); Value.Float (Value.to_float row.(1) +. bump) |])
         (Table.rows wealth))
  in
  let state = Chain.with_table state "wealth" next_wealth in
  Chain.with_table state "vol" (Table.create vol_schema [ [| v_float fresh_vol |] ])

let chain = { Chain.initial = initial_state; transition }

let total_wealth state =
  Array.fold_left
    (fun acc row -> acc +. Value.to_float row.(1))
    0.
    (Table.rows (Chain.table state "wealth"))

let test_simulate_length () =
  let rng = Rng.create ~seed:1 () in
  let states = Chain.simulate chain rng ~steps:10 in
  Alcotest.(check int) "steps+1 states" 11 (Array.length states);
  Alcotest.(check (list string)) "tables" [ "vol"; "wealth" ]
    (Chain.table_names states.(5))

let test_chain_is_markov_progression () =
  let rng = Rng.create ~seed:2 () in
  let series = Chain.simulate_query chain rng ~steps:20 ~query:total_wealth in
  Alcotest.(check (float 1e-9)) "initial total" 800. series.(0);
  (* Drift of +1 per account per step: expect roughly 800 + 8·20. *)
  Alcotest.(check bool) "drift visible" true (series.(20) > 850. && series.(20) < 1100.)

let test_monte_carlo_reps () =
  let rng = Rng.create ~seed:3 () in
  let reps = Chain.monte_carlo chain rng ~steps:5 ~reps:6 ~query:total_wealth in
  Alcotest.(check int) "6 reps" 6 (Array.length reps);
  Alcotest.(check int) "6 steps each" 6 (Array.length reps.(0));
  (* Different streams → different trajectories. *)
  Alcotest.(check bool) "reps differ" true (reps.(0).(5) <> reps.(1).(5))

let test_rules_sequencing () =
  (* Rule 2 must see rule 1's freshly derived table within the same step. *)
  let schema = Schema.of_list [ ("x", Value.Tfloat) ] in
  let initial _ =
    Chain.state_of_tables
      [
        ("a", Table.create schema [ [| v_float 1. |] ]);
        ("b", Table.create schema [ [| v_float 0. |] ]);
      ]
  in
  let rule_a =
    {
      Chain.Rules.target = "a";
      derive =
        (fun _ state ->
          let prev = Value.to_float (Table.get (Chain.table state "a") 0 "x") in
          Table.create schema [ [| v_float (prev +. 1.) |] ]);
    }
  in
  let rule_b =
    {
      Chain.Rules.target = "b";
      derive =
        (fun _ state ->
          (* Reads the already-updated "a". *)
          let a = Value.to_float (Table.get (Chain.table state "a") 0 "x") in
          Table.create schema [ [| v_float (a *. 10.) |] ]);
    }
  in
  let chain = { Chain.initial; transition = Chain.Rules.transition [ rule_a; rule_b ] } in
  let rng = Rng.create ~seed:4 () in
  let states = Chain.simulate chain rng ~steps:3 in
  let b3 = Value.to_float (Table.get (Chain.table states.(3) "b") 0 "x") in
  Alcotest.(check (float 1e-9)) "b tracks updated a" 40. b3

let test_vg_rule () =
  let schema = Schema.of_list [ ("id", Value.Tint); ("v", Value.Tfloat) ] in
  let driver = Table.create (Schema.of_list [ ("id", Value.Tint) ])
      [ [| v_int 0 |]; [| v_int 1 |]; [| v_int 2 |] ]
  in
  let rule =
    Chain.Rules.vg_rule ~target:"noise" ~schema
      ~driver:(fun _ -> driver)
      ~vg:Mde_mcdb.Vg.normal
      ~params:(fun state _row ->
        (* Parametrize from the previous version of the table itself:
           mean = previous global mean (recursive definition). *)
        let prev_mean =
          match Chain.table_opt state "noise" with
          | None -> 0.
          | Some t -> Mde_prob.Stats.mean (Table.column_floats t "v")
        in
        [
          Table.create
            (Schema.of_list [ ("m", Value.Tfloat); ("s", Value.Tfloat) ])
            [ [| v_float prev_mean; v_float 1.0 |] ];
        ])
      ~combine:(fun d v -> [| d.(0); v.(0) |])
  in
  let initial _ = Chain.state_of_tables [] in
  let chain = { Chain.initial; transition = Chain.Rules.transition [ rule ] } in
  let rng = Rng.create ~seed:5 () in
  let states = Chain.simulate chain rng ~steps:4 in
  Alcotest.(check int) "3 rows" 3 (Table.cardinality (Chain.table states.(4) "noise"))

let test_chain_validation () =
  let rng = Rng.create ~seed:6 () in
  Alcotest.check_raises "negative steps"
    (Invalid_argument "Chain.simulate: steps must be non-negative") (fun () ->
      ignore (Chain.simulate chain rng ~steps:(-1)));
  Alcotest.check_raises "non-positive reps"
    (Invalid_argument "Chain.monte_carlo: reps must be positive") (fun () ->
      ignore (Chain.monte_carlo chain rng ~steps:3 ~reps:0 ~query:total_wealth))

let test_monte_carlo_pooled_identity () =
  Mde_par.Pool.with_pool ~domains:3 (fun pool ->
      let seq =
        Chain.monte_carlo chain (Rng.create ~seed:7 ()) ~steps:6 ~reps:8
          ~query:total_wealth
      in
      let par =
        Chain.monte_carlo ~pool chain (Rng.create ~seed:7 ()) ~steps:6 ~reps:8
          ~query:total_wealth
      in
      Alcotest.(check bool) "pooled == sequential, bit for bit" true
        (Array.for_all2
           (fun a b ->
             Array.for_all2
               (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
               a b)
           seq par))

(* A chain step that *is* a relational query: the plan-driven rule must
   produce exactly what the row-oracle executor produces on the same
   state, every step. *)
let test_plan_rule_matches_rows () =
  let totals_plan =
    Plan.project [ "amount"; "sigma" ]
      (Plan.join ~on:[] (Plan.scan "wealth") (Plan.scan "vol"))
  in
  let rule = Chain.Rules.plan_rule ~target:"exposure" totals_plan in
  let chain' = { Chain.initial = initial_state; transition = Chain.Rules.transition [ rule ] } in
  let states = Chain.simulate chain' (Rng.create ~seed:8 ()) ~steps:3 in
  Array.iter
    (fun state ->
      match Chain.table_opt state "exposure" with
      | None -> () (* D[0] has no derived table yet *)
      | Some derived ->
        let catalog = Catalog.create () in
        List.iter
          (fun name -> Catalog.register catalog name (Chain.table state name))
          [ "wealth"; "vol" ];
        let oracle = Plan.execute_rows catalog totals_plan in
        Alcotest.(check int) "cardinality" (Table.cardinality oracle)
          (Table.cardinality derived);
        Alcotest.(check bool) "plan_rule == execute_rows" true
          (Array.for_all2
             (fun ra rb ->
               Array.for_all2 (fun a b -> Value.compare a b = 0) ra rb)
             (Table.rows oracle) (Table.rows derived)))
    states

(* --- ABS step as self-join --- *)

let agent_schema =
  Schema.of_list [ ("id", Value.Tint); ("x", Value.Tfloat); ("y", Value.Tfloat); ("heat", Value.Tfloat) ]

let make_agents n seed =
  let rng = Rng.create ~seed () in
  Table.create agent_schema
    (List.init n (fun i ->
         [|
           v_int i;
           v_float (Rng.float_range rng 0. 10.);
           v_float (Rng.float_range rng 0. 10.);
           v_float (Rng.float_range rng 0. 1.);
         |]))

let dist2 schema a b =
  let get row col = Value.to_float row.(Schema.column_index schema col) in
  let dx = get a "x" -. get b "x" and dy = get a "y" -. get b "y" in
  (dx *. dx) +. (dy *. dy)

let neighbor schema a b = dist2 schema a b <= 1.0

(* Diffusion update: move heat toward the neighbourhood average. *)
let update _rng schema row neighbors =
  let heat_idx = Schema.column_index agent_schema "heat" in
  ignore schema;
  let mine = Value.to_float row.(heat_idx) in
  let next =
    match neighbors with
    | [] -> mine
    | ns ->
      let avg =
        List.fold_left (fun acc n -> acc +. Value.to_float n.(heat_idx)) 0. ns
        /. float_of_int (List.length ns)
      in
      0.5 *. (mine +. avg)
  in
  let out = Array.copy row in
  out.(heat_idx) <- Value.Float next;
  out

let test_self_join_bucketed_equals_full () =
  let agents = make_agents 60 7 in
  let rng1 = Rng.create ~seed:8 () and rng2 = Rng.create ~seed:8 () in
  let full, full_stats = Self_join.step ~neighbor ~update rng1 agents in
  let bucketed, bucket_stats =
    Self_join.step
      ~buckets:(Self_join.grid_buckets ~x:"x" ~y:"y" ~cell:1.0 agent_schema)
      ~neighbor ~update rng2 agents
  in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          Alcotest.(check bool)
            (Printf.sprintf "cell %d,%d equal" i j)
            true
            (Value.equal v (Table.rows bucketed).(i).(j)))
        row)
    (Table.rows full);
  Alcotest.(check bool)
    (Printf.sprintf "buckets prune pairs (%d < %d)" bucket_stats.Self_join.candidate_pairs
       full_stats.Self_join.candidate_pairs)
    true
    (bucket_stats.Self_join.candidate_pairs < full_stats.Self_join.candidate_pairs)

let test_self_join_stats () =
  let agents = make_agents 20 9 in
  let rng = Rng.create ~seed:10 () in
  let _, stats = Self_join.step ~neighbor ~update rng agents in
  Alcotest.(check int) "agents" 20 stats.Self_join.agents;
  Alcotest.(check int) "naive pairs" 400 stats.Self_join.naive_pairs;
  Alcotest.(check int) "full join candidates" (20 * 19) stats.Self_join.candidate_pairs

let test_self_join_synchronous () =
  (* Updates must read the pre-step table: two mutually-visible agents
     exchange values symmetrically. *)
  let schema = Schema.of_list [ ("id", Value.Tint); ("x", Value.Tfloat); ("y", Value.Tfloat); ("heat", Value.Tfloat) ] in
  let agents =
    Table.create schema
      [
        [| v_int 0; v_float 0.; v_float 0.; v_float 0. |];
        [| v_int 1; v_float 0.5; v_float 0.; v_float 1. |];
      ]
  in
  let rng = Rng.create ~seed:11 () in
  let stepped, _ = Self_join.step ~neighbor ~update rng agents in
  Alcotest.(check (float 1e-9)) "a" 0.5 (Value.to_float (Table.get stepped 0 "heat"));
  Alcotest.(check (float 1e-9)) "b" 0.5 (Value.to_float (Table.get stepped 1 "heat"))

let prop_bucketed_matches_full =
  QCheck.Test.make ~name:"bucketed self-join = full self-join" ~count:25
    QCheck.(int_range 5 40)
    (fun n ->
      let agents = make_agents n (n + 100) in
      let r1 = Rng.create ~seed:n () and r2 = Rng.create ~seed:n () in
      let full, _ = Self_join.step ~neighbor ~update r1 agents in
      let bucketed, _ =
        Self_join.step
          ~buckets:(Self_join.grid_buckets ~x:"x" ~y:"y" ~cell:1.0 agent_schema)
          ~neighbor ~update r2 agents
      in
      Array.for_all2
        (fun a b -> Array.for_all2 Value.equal a b)
        (Table.rows full) (Table.rows bucketed))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_simsql"
    [
      ( "chain",
        [
          Alcotest.test_case "simulate length" `Quick test_simulate_length;
          Alcotest.test_case "markov progression" `Quick test_chain_is_markov_progression;
          Alcotest.test_case "monte carlo reps" `Quick test_monte_carlo_reps;
          Alcotest.test_case "rules sequencing" `Quick test_rules_sequencing;
          Alcotest.test_case "vg rule recursion" `Quick test_vg_rule;
          Alcotest.test_case "validation" `Quick test_chain_validation;
          Alcotest.test_case "pooled monte carlo identity" `Quick
            test_monte_carlo_pooled_identity;
          Alcotest.test_case "plan rule == row oracle" `Quick test_plan_rule_matches_rows;
        ] );
      ( "self_join",
        [
          Alcotest.test_case "bucketed = full" `Quick test_self_join_bucketed_equals_full;
          Alcotest.test_case "stats" `Quick test_self_join_stats;
          Alcotest.test_case "synchronous semantics" `Quick test_self_join_synchronous;
        ] );
      ("properties", qc [ prop_bucketed_matches_full ]);
    ]
