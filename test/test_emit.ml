(* The benchmark emitter: JSON has no nan/inf literals, so non-finite
   floats — unserved percentiles, empty-window throughputs — must land
   in BENCH_*.json as null, in both the typed [Float] field case and
   raw [Json] curves assembled with [json_float]. One bare [nan] token
   would invalidate the whole accumulated array. *)

module Emit = Mde_bench_emit

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub haystack i m = needle || scan (i + 1)) in
  scan 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_json_float () =
  Alcotest.(check string) "nan is null" "null" (Emit.json_float Float.nan);
  Alcotest.(check string) "inf is null" "null" (Emit.json_float Float.infinity);
  Alcotest.(check string) "-inf is null" "null" (Emit.json_float Float.neg_infinity);
  Alcotest.(check string) "finite renders as a number" "1.5" (Emit.json_float 1.5);
  Alcotest.(check string) "zero" "0" (Emit.json_float 0.)

let test_append_guards_non_finite () =
  let file = Filename.temp_file "mde_emit_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let path =
    Emit.append ~file ~name:"guard"
      [
        ("p99_s", Emit.Float Float.nan);
        ("throughput_rps", Float Float.infinity);
        ("ok", Float 2.25);
        ("curve", Json ("[" ^ Emit.json_float Float.nan ^ ", " ^ Emit.json_float 1. ^ "]"));
      ]
  in
  let s = read_file path in
  Alcotest.(check bool) "nan field nulled" true (contains s "\"p99_s\": null");
  Alcotest.(check bool) "inf field nulled" true (contains s "\"throughput_rps\": null");
  Alcotest.(check bool) "finite field kept" true (contains s "\"ok\": 2.25");
  Alcotest.(check bool) "curve nan nulled" true (contains s "\"curve\": [null, 1]");
  Alcotest.(check bool) "no bare nan token" false (contains s "nan");
  Alcotest.(check bool) "no bare inf token" false (contains s "inf");
  (* A second append must keep the file one well-formed array holding
     both entries. *)
  ignore (Emit.append ~file ~name:"guard2" [ ("ok", Emit.Float 1.) ]);
  let s2 = String.trim (read_file path) in
  Alcotest.(check bool) "still an array" true
    (String.length s2 > 1 && s2.[0] = '[' && s2.[String.length s2 - 1] = ']');
  Alcotest.(check bool) "first entry survived" true (contains s2 "\"guard\"");
  Alcotest.(check bool) "second entry appended" true (contains s2 "\"guard2\"")

let () =
  Alcotest.run "emit"
    [
      ( "json",
        [
          Alcotest.test_case "json_float non-finite guard" `Quick test_json_float;
          Alcotest.test_case "append nulls non-finite floats" `Quick
            test_append_guards_non_finite;
        ] );
    ]
