(* Unit and property tests for the probability substrate. *)

module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist
module Stats = Mde_prob.Stats
module Special = Mde_prob.Special
module Kde = Mde_prob.Kde

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* --- RNG --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:1 () and b = Rng.create ~seed:1 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_changes_stream () =
  let a = Rng.create ~seed:1 () and b = Rng.create ~seed:2 () in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Rng.bits64 a) (Rng.bits64 b) then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_rng_float_range () =
  let rng = Rng.create () in
  for _ = 1 to 10_000 do
    let u = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create ~seed:7 () in
  let xs = Array.init 50_000 (fun _ -> Rng.float rng) in
  check_close 0.01 "mean 0.5" 0.5 (Stats.mean xs)

let test_rng_int_bounds () =
  let rng = Rng.create () in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let k = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 7);
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 9_000 && c < 11_000))
    counts

let test_rng_int_chi_square () =
  (* Regression for the rejection bound in Rng.int: on a non-power-of-two
     bound the rejection condition must cut exactly at the last complete
     block of size [bound], or cells get spuriously rejected draws and
     the fit degrades. Pearson chi-square against the uniform null. *)
  let rng = Rng.create ~seed:2024 () in
  let bound = 12 in
  let draws = 120_000 in
  let counts = Array.make bound 0 in
  for _ = 1 to draws do
    let k = Rng.int rng bound in
    counts.(k) <- counts.(k) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  (* 99.9% critical value of chi-square with 11 degrees of freedom. *)
  Alcotest.(check bool)
    (Printf.sprintf "chi2=%.2f below 31.26" chi2)
    true (chi2 < 31.26)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:3 () in
  let a = Rng.split parent and b = Rng.split parent in
  let xs = Array.init 20_000 (fun _ -> Rng.float a) in
  let ys = Array.init 20_000 (fun _ -> Rng.float b) in
  Alcotest.(check bool)
    "uncorrelated" true
    (Float.abs (Stats.correlation xs ys) < 0.03)

let test_permutation () =
  let rng = Rng.create () in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* --- Special functions --- *)

let test_erf_known () =
  check_close 1e-6 "erf 0" 0. (Special.erf 0.);
  check_close 1e-6 "erf 1" 0.8427007929 (Special.erf 1.);
  check_close 1e-6 "erf -1" (-0.8427007929) (Special.erf (-1.));
  check_close 1e-6 "erf 2" 0.9953222650 (Special.erf 2.)

let test_log_gamma_factorials () =
  for n = 1 to 10 do
    let fact = ref 1. in
    for k = 2 to n do
      fact := !fact *. float_of_int k
    done;
    check_close 1e-9 (Printf.sprintf "log %d!" n) (log !fact)
      (Special.log_gamma (float_of_int n +. 1.))
  done

let test_normal_cdf_known () =
  check_close 1e-9 "Phi(0)" 0.5 (Special.normal_cdf 0.);
  check_close 1e-7 "Phi(1.96)" 0.9750021 (Special.normal_cdf 1.96);
  check_close 1e-7 "Phi(-1.96)" 0.0249979 (Special.normal_cdf (-1.96))

let test_normal_inv_roundtrip () =
  List.iter
    (fun p ->
      check_close 1e-7 "roundtrip" p (Special.normal_cdf (Special.normal_inv_cdf p)))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_gamma_p_known () =
  (* P(1, x) = 1 - e^-x. *)
  List.iter
    (fun x -> check_close 1e-9 "P(1,x)" (1. -. exp (-.x)) (Special.gamma_p 1. x))
    [ 0.1; 0.5; 1.; 2.; 5. ];
  check_close 1e-8 "P(0.5, x) = erf(sqrt x)" (Special.erf 1.) (Special.gamma_p 0.5 1.)

let test_beta_inc_known () =
  (* I_x(1,1) = x. *)
  List.iter
    (fun x -> check_close 1e-9 "I_x(1,1)" x (Special.beta_inc 1. 1. x))
    [ 0.1; 0.3; 0.7; 0.9 ];
  (* Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a). *)
  check_close 1e-9 "symmetry"
    (1. -. Special.beta_inc 5. 2. 0.7)
    (Special.beta_inc 2. 5. 0.3)

let test_log_choose () =
  check_close 1e-9 "C(5,2)" (log 10.) (Special.log_choose 5 2);
  check_close 1e-8 "C(20,10)" (log 184756.) (Special.log_choose 20 10)

(* --- Distributions --- *)

let sample_stats d n seed =
  let rng = Rng.create ~seed () in
  let xs = Dist.sample_n d rng n in
  (Stats.mean xs, Stats.variance xs)

let test_dist_moments () =
  let cases =
    [
      ("uniform", Dist.Uniform (2., 6.));
      ("normal", Dist.Normal { mean = -1.; std = 2. });
      ("exponential", Dist.Exponential { rate = 0.5 });
      ("gamma", Dist.Gamma { shape = 3.; scale = 2. });
      ("beta", Dist.Beta { alpha = 2.; beta = 5. });
      ("lognormal", Dist.Lognormal { mu = 0.; sigma = 0.5 });
      ("triangular", Dist.Triangular { lo = 0.; mode = 1.; hi = 4. });
      ("weibull", Dist.Weibull { shape = 2.; scale = 1.5 });
    ]
  in
  List.iter
    (fun (name, d) ->
      let mean, var = sample_stats d 100_000 5 in
      let tol_mean = 0.05 *. Float.max 0.2 (Float.abs (Dist.mean d)) in
      let tol_var = 0.10 *. Float.max 0.2 (Dist.variance d) in
      check_close tol_mean (name ^ " mean") (Dist.mean d) mean;
      check_close tol_var (name ^ " variance") (Dist.variance d) var)
    cases

let test_dist_cdf_quantile_roundtrip () =
  let dists =
    [
      Dist.Uniform (0., 1.);
      Dist.Normal { mean = 3.; std = 1.5 };
      Dist.Exponential { rate = 2. };
      Dist.Gamma { shape = 2.5; scale = 1. };
      Dist.Beta { alpha = 2.; beta = 3. };
      Dist.Weibull { shape = 1.5; scale = 2. };
    ]
  in
  List.iter
    (fun d ->
      List.iter
        (fun p -> check_close 1e-5 "cdf(quantile p) = p" p (Dist.cdf d (Dist.quantile d p)))
        [ 0.05; 0.25; 0.5; 0.75; 0.95 ])
    dists

let test_discrete_moments () =
  let cases =
    [
      ("bernoulli", Dist.Bernoulli 0.3);
      ("binomial-small", Dist.Binomial { n = 20; p = 0.4 });
      ("binomial-large", Dist.Binomial { n = 500; p = 0.07 });
      ("poisson-small", Dist.Poisson 3.);
      ("poisson-large", Dist.Poisson 80.);
      ("geometric", Dist.Geometric 0.25);
      ("uniform", Dist.Discrete_uniform (3, 9));
      ("categorical", Dist.Categorical [| 1.; 2.; 3.; 4. |]);
    ]
  in
  List.iter
    (fun (name, d) ->
      let rng = Rng.create ~seed:11 () in
      let xs =
        Array.map float_of_int (Dist.sample_discrete_n d rng 100_000)
      in
      let tol_mean = 0.03 *. Float.max 0.5 (Float.abs (Dist.mean_discrete d)) in
      let tol_var = 0.08 *. Float.max 0.5 (Dist.variance_discrete d) in
      check_close tol_mean (name ^ " mean") (Dist.mean_discrete d) (Stats.mean xs);
      check_close tol_var (name ^ " var") (Dist.variance_discrete d) (Stats.variance xs))
    cases

let test_pmf_sums_to_one () =
  let total d lo hi =
    let acc = ref 0. in
    for k = lo to hi do
      acc := !acc +. Dist.pmf d k
    done;
    !acc
  in
  check_close 1e-9 "binomial" 1. (total (Dist.Binomial { n = 30; p = 0.3 }) 0 30);
  check_close 1e-9 "poisson" 1. (total (Dist.Poisson 4.) 0 60);
  check_close 1e-9 "categorical" 1. (total (Dist.Categorical [| 0.5; 1.5; 3. |]) 0 2)

let test_pdf_integrates_to_one () =
  (* Trapezoid integration over the effective support. *)
  let integrate d lo hi n =
    let h = (hi -. lo) /. float_of_int n in
    let acc = ref 0. in
    for i = 0 to n do
      let w = if i = 0 || i = n then 0.5 else 1. in
      acc := !acc +. (w *. Dist.pdf d (lo +. (float_of_int i *. h)))
    done;
    !acc *. h
  in
  check_close 1e-4 "normal" 1. (integrate (Dist.Normal { mean = 0.; std = 1. }) (-8.) 8. 4000);
  check_close 1e-3 "gamma" 1. (integrate (Dist.Gamma { shape = 2.; scale = 1. }) 0. 30. 4000);
  check_close 1e-3 "triangular" 1.
    (integrate (Dist.Triangular { lo = 0.; mode = 2.; hi = 5. }) 0. 5. 2000)

(* --- Stats --- *)

let test_stats_known () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_close 1e-9 "variance" (32. /. 7.) (Stats.variance xs);
  check_float "median" 4.5 (Stats.median xs);
  let lo, hi = Stats.min_max xs in
  check_float "min" 2. lo;
  check_float "max" 9. hi

let test_quantile_extremes () =
  let xs = [| 3.; 1.; 2. |] in
  check_float "q0" 1. (Stats.quantile xs 0.);
  check_float "q1" 3. (Stats.quantile xs 1.);
  check_float "q0.5" 2. (Stats.quantile xs 0.5)

let test_online_matches_batch () =
  let rng = Rng.create ~seed:13 () in
  let xs = Array.init 1000 (fun _ -> Rng.float_range rng (-5.) 10.) in
  let acc = Stats.Online.create () in
  Array.iter (Stats.Online.add acc) xs;
  check_close 1e-9 "mean" (Stats.mean xs) (Stats.Online.mean acc);
  check_close 1e-9 "variance" (Stats.variance xs) (Stats.Online.variance acc)

let test_online_merge () =
  let rng = Rng.create ~seed:17 () in
  let xs = Array.init 500 (fun _ -> Rng.float rng) in
  let ys = Array.init 700 (fun _ -> Rng.float_range rng 3. 5.) in
  let a = Stats.Online.create () and b = Stats.Online.create () in
  Array.iter (Stats.Online.add a) xs;
  Array.iter (Stats.Online.add b) ys;
  let merged = Stats.Online.merge a b in
  let all = Array.append xs ys in
  check_close 1e-9 "merged mean" (Stats.mean all) (Stats.Online.mean merged);
  check_close 1e-9 "merged var" (Stats.variance all) (Stats.Online.variance merged)

let test_covariance_correlation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = [| 2.; 4.; 6.; 8. |] in
  check_close 1e-9 "corr=1" 1. (Stats.correlation xs ys);
  let zs = [| 8.; 6.; 4.; 2. |] in
  check_close 1e-9 "corr=-1" (-1.) (Stats.correlation xs zs)

let test_autocorrelation () =
  let xs = Array.init 1000 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  check_close 1e-2 "acf1 of alternating" (-1.) (Stats.autocorrelation xs 1);
  check_close 1e-9 "acf0" 1. (Stats.autocorrelation xs 0)

let test_confidence_interval_coverage () =
  (* 95% CI for the mean should contain the truth about 95% of the time. *)
  let rng = Rng.create ~seed:19 () in
  let hits = ref 0 in
  let trials = 400 in
  for _ = 1 to trials do
    let xs = Dist.sample_n (Dist.Normal { mean = 2.; std = 1. }) rng 50 in
    let lo, hi = Stats.mean_confidence_interval xs 0.95 in
    if lo <= 2. && 2. <= hi then incr hits
  done;
  let coverage = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f in [0.90, 0.99]" coverage)
    true
    (coverage >= 0.90 && coverage <= 0.99)

let test_bootstrap_ci () =
  let rng = Rng.create ~seed:37 () in
  let xs = Dist.sample_n (Dist.Normal { mean = 10.; std = 2. }) rng 400 in
  (* Mean CI: brackets the truth and roughly matches the normal-theory CI. *)
  let lo, hi = Stats.bootstrap_ci ~rng ~statistic:Stats.mean xs 0.95 in
  Alcotest.(check bool) "brackets truth" true (lo < 10. && 10. < hi);
  let nlo, nhi = Stats.mean_confidence_interval xs 0.95 in
  Alcotest.(check bool) "agrees with normal theory" true
    (Float.abs (lo -. nlo) < 0.15 && Float.abs (hi -. nhi) < 0.15);
  (* Works for a non-mean statistic (median). *)
  let mlo, mhi = Stats.bootstrap_ci ~rng ~statistic:Stats.median xs 0.95 in
  Alcotest.(check bool) "median CI brackets" true (mlo < 10. && 10. < mhi)

(* --- KDE --- *)

let test_kde_integrates_to_one () =
  let rng = Rng.create ~seed:23 () in
  let samples = Dist.sample_n (Dist.Normal { mean = 0.; std = 1. }) rng 200 in
  let kde = Kde.fit samples in
  let h = 0.01 in
  let acc = ref 0. in
  let x = ref (-10.) in
  while !x < 10. do
    acc := !acc +. (h *. Kde.density kde !x);
    x := !x +. h
  done;
  check_close 0.02 "integral" 1. !acc

let test_kde_tracks_density () =
  let rng = Rng.create ~seed:29 () in
  let samples = Dist.sample_n (Dist.Normal { mean = 0.; std = 1. }) rng 5000 in
  let kde = Kde.fit samples in
  check_close 0.05 "peak" (Dist.pdf (Dist.Normal { mean = 0.; std = 1. }) 0.)
    (Kde.density kde 0.)

let test_kde_kernels () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        "kernel max at 0" true
        (Kde.kernel_value k 0. >= Kde.kernel_value k 0.5))
    [ Kde.Gaussian; Kde.Laplace; Kde.Epanechnikov ]

(* --- QCheck properties --- *)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"sample quantiles are monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 2 40) (float_range (-100.) 100.))
              (pair (float_range 0.01 0.99) (float_range 0.01 0.99)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let arr = Array.of_list xs in
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.quantile arr lo <= Stats.quantile arr hi +. 1e-9)

let prop_cdf_bounded =
  QCheck.Test.make ~name:"normal cdf in [0,1] and nondecreasing" ~count:500
    QCheck.(pair (float_range (-50.) 50.) (float_range 0. 10.))
    (fun (x, dx) ->
      let a = Special.normal_cdf x and b = Special.normal_cdf (x +. dx) in
      a >= 0. && b <= 1. && a <= b +. 1e-12)

let prop_online_mean =
  QCheck.Test.make ~name:"online mean equals batch mean" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range (-1e3) 1e3))
    (fun xs ->
      let arr = Array.of_list xs in
      let acc = Stats.Online.create () in
      Array.iter (Stats.Online.add acc) arr;
      Float.abs (Stats.Online.mean acc -. Stats.mean arr)
      < 1e-6 *. Float.max 1. (Float.abs (Stats.mean arr)))

let prop_categorical_in_support =
  QCheck.Test.make ~name:"categorical samples stay in support" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 10) (float_range 0.1 10.))
    (fun ws ->
      let weights = Array.of_list ws in
      let rng = Rng.create ~seed:31 () in
      let d = Dist.Categorical weights in
      let ok = ref true in
      for _ = 1 to 100 do
        let k = Dist.sample_discrete d rng in
        if k < 0 || k >= Array.length weights then ok := false
      done;
      !ok)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_prob"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed changes stream" `Quick test_rng_seed_changes_stream;
          Alcotest.test_case "float in [0,1)" `Quick test_rng_float_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "int bounds + uniformity" `Quick test_rng_int_bounds;
          Alcotest.test_case "int chi-square" `Quick test_rng_int_chi_square;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "permutation" `Quick test_permutation;
        ] );
      ( "special",
        [
          Alcotest.test_case "erf known values" `Quick test_erf_known;
          Alcotest.test_case "log_gamma factorials" `Quick test_log_gamma_factorials;
          Alcotest.test_case "normal cdf known" `Quick test_normal_cdf_known;
          Alcotest.test_case "inv cdf roundtrip" `Quick test_normal_inv_roundtrip;
          Alcotest.test_case "incomplete gamma" `Quick test_gamma_p_known;
          Alcotest.test_case "incomplete beta" `Quick test_beta_inc_known;
          Alcotest.test_case "log choose" `Quick test_log_choose;
        ] );
      ( "dist",
        [
          Alcotest.test_case "continuous moments" `Slow test_dist_moments;
          Alcotest.test_case "cdf/quantile roundtrip" `Quick test_dist_cdf_quantile_roundtrip;
          Alcotest.test_case "discrete moments" `Slow test_discrete_moments;
          Alcotest.test_case "pmf sums to 1" `Quick test_pmf_sums_to_one;
          Alcotest.test_case "pdf integrates to 1" `Quick test_pdf_integrates_to_one;
        ] );
      ( "stats",
        [
          Alcotest.test_case "known dataset" `Quick test_stats_known;
          Alcotest.test_case "quantile extremes" `Quick test_quantile_extremes;
          Alcotest.test_case "online = batch" `Quick test_online_matches_batch;
          Alcotest.test_case "online merge" `Quick test_online_merge;
          Alcotest.test_case "covariance/correlation" `Quick test_covariance_correlation;
          Alcotest.test_case "autocorrelation" `Quick test_autocorrelation;
          Alcotest.test_case "CI coverage" `Slow test_confidence_interval_coverage;
          Alcotest.test_case "bootstrap CI" `Quick test_bootstrap_ci;
        ] );
      ( "kde",
        [
          Alcotest.test_case "integrates to 1" `Quick test_kde_integrates_to_one;
          Alcotest.test_case "tracks true density" `Slow test_kde_tracks_density;
          Alcotest.test_case "kernel shapes" `Quick test_kde_kernels;
        ] );
      ( "properties",
        qc
          [
            prop_quantile_monotone;
            prop_cdf_bounded;
            prop_online_mean;
            prop_categorical_in_support;
          ] );
    ]
