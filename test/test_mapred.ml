module Dataset = Mde_mapred.Dataset
module Job = Mde_mapred.Job

let test_partition_roundtrip () =
  let data = Array.init 103 Fun.id in
  let ds = Dataset.of_array ~partitions:7 data in
  Alcotest.(check int) "partitions" 7 (Dataset.partition_count ds);
  Alcotest.(check int) "total" 103 (Dataset.total_length ds);
  Alcotest.(check (array int)) "roundtrip" data (Dataset.to_array ds)

let test_partition_small_input () =
  let ds = Dataset.of_array ~partitions:10 [| 1; 2; 3 |] in
  Alcotest.(check int) "capped partitions" 3 (Dataset.partition_count ds);
  let empty = Dataset.of_array ~partitions:4 ([||] : int array) in
  Alcotest.(check int) "empty ok" 0 (Dataset.total_length empty)

let test_map_preserves_structure () =
  let ds = Dataset.of_array ~partitions:3 [| 1; 2; 3; 4; 5 |] in
  let doubled = Dataset.map (fun x -> x * 2) ds in
  Alcotest.(check int) "same partitions" 3 (Dataset.partition_count doubled);
  Alcotest.(check (array int)) "values" [| 2; 4; 6; 8; 10 |] (Dataset.to_array doubled)

let test_mapi_global_index () =
  let ds = Dataset.of_array ~partitions:4 (Array.make 10 'x') in
  let indexed = Dataset.mapi (fun i _ -> i) ds in
  Alcotest.(check (array int)) "indices" (Array.init 10 Fun.id) (Dataset.to_array indexed)

let test_filter_fold () =
  let ds = Dataset.of_array ~partitions:4 (Array.init 20 Fun.id) in
  let evens = Dataset.filter (fun x -> x mod 2 = 0) ds in
  Alcotest.(check int) "evens" 10 (Dataset.total_length evens);
  Alcotest.(check int) "sum" 90 (Dataset.fold ( + ) 0 evens)

let test_of_partitions_copies () =
  let source = [| [| 1; 2 |]; [| 3 |] |] in
  let ds = Dataset.of_partitions source in
  source.(0).(0) <- 99;
  Alcotest.(check (array int)) "defensive copy" [| 1; 2; 3 |] (Dataset.to_array ds)

let test_word_count () =
  let words =
    [| "the"; "quick"; "fox"; "the"; "lazy"; "dog"; "the"; "fox" |]
  in
  let ds = Dataset.of_array ~partitions:3 words in
  let result, stats =
    Job.map_reduce
      ~map:(fun w -> [ (w, 1) ])
      ~reduce:(fun w counts -> [ (w, List.fold_left ( + ) 0 counts) ])
      ds
  in
  let counts = Dataset.to_array result in
  let find w = snd (Array.get (Array.of_list (List.filter (fun (k, _) -> k = w) (Array.to_list counts))) 0) in
  Alcotest.(check int) "the" 3 (find "the");
  Alcotest.(check int) "fox" 2 (find "fox");
  Alcotest.(check int) "dog" 1 (find "dog");
  Alcotest.(check int) "mapped" 8 stats.Job.records_mapped

let test_combiner_reduces_shuffle () =
  let data = Array.init 1000 (fun i -> i mod 5) in
  let ds = Dataset.of_array ~partitions:8 data in
  let run combine =
    let _, stats =
      Job.map_reduce ?combine
        ~map:(fun k -> [ (k, 1) ])
        ~reduce:(fun k vs -> [ (k, List.fold_left ( + ) 0 vs) ])
        ds
    in
    stats.Job.records_shuffled
  in
  let without = run None in
  let with_comb = run (Some (fun _ vs -> [ List.fold_left ( + ) 0 vs ])) in
  Alcotest.(check bool)
    (Printf.sprintf "combiner shrinks shuffle (%d -> %d)" without with_comb)
    true (with_comb < without / 5)

let test_shuffle_counts_cross_partition_only () =
  (* With an explicit reduce_partitions, a record whose hash destination
     is its own source partition never crosses the (simulated) network,
     so it must not be charged to the shuffle. Pin the corrected count by
     replaying the routing rule. *)
  let data = Array.init 40 Fun.id in
  let ds = Dataset.of_array ~partitions:4 data in
  let run ?reduce_partitions () =
    let _, stats =
      Job.map_reduce ?reduce_partitions
        ~map:(fun i -> [ (i, i) ])
        ~reduce:(fun _ vs -> vs)
        ds
    in
    stats
  in
  let expected n_reduce =
    let count = ref 0 in
    Array.iteri
      (fun src part ->
        Array.iter
          (fun k -> if Hashtbl.hash k mod n_reduce <> src then incr count)
          part)
      (Dataset.partitions ds)
  ; !count
  in
  let explicit_same = run ~reduce_partitions:4 () in
  Alcotest.(check int) "explicit n = input n" (expected 4)
    explicit_same.Job.records_shuffled;
  Alcotest.(check int) "matches implicit" (run ()).Job.records_shuffled
    explicit_same.Job.records_shuffled;
  let narrowed = run ~reduce_partitions:2 () in
  Alcotest.(check int) "narrowed: only true cross-partition traffic"
    (expected 2) narrowed.Job.records_shuffled;
  Alcotest.(check bool)
    (Printf.sprintf "home records uncharged (%d < 40)" narrowed.Job.records_shuffled)
    true
    (narrowed.Job.records_shuffled < Array.length data)

let test_reduce_groups_all_values () =
  let ds = Dataset.of_array ~partitions:4 (Array.init 100 Fun.id) in
  let result, _ =
    Job.map_reduce
      ~map:(fun i -> [ (i mod 3, i) ])
      ~reduce:(fun _ vs -> [ List.length vs ])
      ds
  in
  let sizes = Array.to_list (Dataset.to_array result) in
  Alcotest.(check int) "3 groups" 3 (List.length sizes);
  Alcotest.(check int) "all values" 100 (List.fold_left ( + ) 0 sizes)

let test_equi_join () =
  let rng = Mde_prob.Rng.create ~seed:5 () in
  let left = Array.init 120 (fun i -> (i, Mde_prob.Rng.int rng 20)) in
  let right = Array.init 80 (fun i -> (Mde_prob.Rng.int rng 20, i)) in
  let joined, stats =
    Job.equi_join
      ~left_key:(fun (_, k) -> k)
      ~right_key:(fun (k, _) -> k)
      (Dataset.of_array ~partitions:4 left)
      (Dataset.of_array ~partitions:3 right)
  in
  let expected =
    Array.fold_left
      (fun acc (_, lk) ->
        acc + Array.length (Array.of_list (List.filter (fun (rk, _) -> rk = lk) (Array.to_list right))))
      0 left
  in
  Alcotest.(check int) "pair count = nested loop" expected
    (Dataset.total_length joined);
  Dataset.iter
    (fun ((_, lk), (rk, _)) -> Alcotest.(check int) "keys agree" lk rk)
    joined;
  Alcotest.(check int) "all records mapped" 200 stats.Job.records_mapped

let test_sort_by () =
  let rng = Mde_prob.Rng.create ~seed:3 () in
  let data = Array.init 500 (fun _ -> Mde_prob.Rng.int rng 1000) in
  let ds = Dataset.of_array ~partitions:6 data in
  let sorted, stats = Job.sort_by ~cmp:Int.compare ds in
  let out = Dataset.to_array sorted in
  let expected = Array.copy data in
  Array.sort Int.compare expected;
  Alcotest.(check (array int)) "globally sorted" expected out;
  Alcotest.(check int) "nothing lost" 500 stats.Job.records_mapped

let test_sort_empty () =
  let ds = Dataset.of_array ~partitions:4 ([||] : int array) in
  let sorted, _ = Job.sort_by ~cmp:Int.compare ds in
  Alcotest.(check int) "empty" 0 (Dataset.total_length sorted)

let test_global_counter () =
  Job.reset_global_counter ();
  let ds = Dataset.of_array ~partitions:4 (Array.init 50 Fun.id) in
  let _ =
    Job.map_reduce ~map:(fun i -> [ (i, i) ]) ~reduce:(fun _ vs -> vs) ds
  in
  Alcotest.(check bool) "counter advanced" true (Job.global_records_shuffled () > 0);
  Job.reset_global_counter ();
  Alcotest.(check int) "reset" 0 (Job.global_records_shuffled ())

let prop_mapreduce_identity =
  QCheck.Test.make ~name:"map_reduce with identity preserves multiset" ~count:100
    QCheck.(list (int_range 0 50))
    (fun xs ->
      let ds = Dataset.of_array ~partitions:5 (Array.of_list xs) in
      let out, _ =
        Job.map_reduce ~map:(fun x -> [ (x, x) ]) ~reduce:(fun _ vs -> vs) ds
      in
      let sort l = List.sort Int.compare l in
      sort (Array.to_list (Dataset.to_array out)) = sort xs)

let prop_sort_by_sorts =
  QCheck.Test.make ~name:"sort_by output is sorted and complete" ~count:100
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let ds = Dataset.of_array ~partitions:4 (Array.of_list xs) in
      let out, _ = Job.sort_by ~cmp:Int.compare ds in
      let result = Array.to_list (Dataset.to_array out) in
      result = List.sort Int.compare xs)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_mapred"
    [
      ( "dataset",
        [
          Alcotest.test_case "roundtrip" `Quick test_partition_roundtrip;
          Alcotest.test_case "small input" `Quick test_partition_small_input;
          Alcotest.test_case "map" `Quick test_map_preserves_structure;
          Alcotest.test_case "mapi" `Quick test_mapi_global_index;
          Alcotest.test_case "filter/fold" `Quick test_filter_fold;
          Alcotest.test_case "of_partitions copies" `Quick test_of_partitions_copies;
        ] );
      ( "job",
        [
          Alcotest.test_case "word count" `Quick test_word_count;
          Alcotest.test_case "combiner shrinks shuffle" `Quick test_combiner_reduces_shuffle;
          Alcotest.test_case "shuffle = cross-partition only" `Quick
            test_shuffle_counts_cross_partition_only;
          Alcotest.test_case "reduce sees all values" `Quick test_reduce_groups_all_values;
          Alcotest.test_case "reduce-side join" `Quick test_equi_join;
          Alcotest.test_case "sample sort" `Quick test_sort_by;
          Alcotest.test_case "sort empty" `Quick test_sort_empty;
          Alcotest.test_case "global counter" `Quick test_global_counter;
        ] );
      ("properties", qc [ prop_mapreduce_identity; prop_sort_by_sorts ]);
    ]
