module Dataset = Mde_mapred.Dataset
module Job = Mde_mapred.Job

let test_partition_roundtrip () =
  let data = Array.init 103 Fun.id in
  let ds = Dataset.of_array ~partitions:7 data in
  Alcotest.(check int) "partitions" 7 (Dataset.partition_count ds);
  Alcotest.(check int) "total" 103 (Dataset.total_length ds);
  Alcotest.(check (array int)) "roundtrip" data (Dataset.to_array ds)

let test_partition_small_input () =
  let ds = Dataset.of_array ~partitions:10 [| 1; 2; 3 |] in
  Alcotest.(check int) "capped partitions" 3 (Dataset.partition_count ds);
  let empty = Dataset.of_array ~partitions:4 ([||] : int array) in
  Alcotest.(check int) "empty ok" 0 (Dataset.total_length empty)

let test_map_preserves_structure () =
  let ds = Dataset.of_array ~partitions:3 [| 1; 2; 3; 4; 5 |] in
  let doubled = Dataset.map (fun x -> x * 2) ds in
  Alcotest.(check int) "same partitions" 3 (Dataset.partition_count doubled);
  Alcotest.(check (array int)) "values" [| 2; 4; 6; 8; 10 |] (Dataset.to_array doubled)

let test_mapi_global_index () =
  let ds = Dataset.of_array ~partitions:4 (Array.make 10 'x') in
  let indexed = Dataset.mapi (fun i _ -> i) ds in
  Alcotest.(check (array int)) "indices" (Array.init 10 Fun.id) (Dataset.to_array indexed)

let test_filter_fold () =
  let ds = Dataset.of_array ~partitions:4 (Array.init 20 Fun.id) in
  let evens = Dataset.filter (fun x -> x mod 2 = 0) ds in
  Alcotest.(check int) "evens" 10 (Dataset.total_length evens);
  Alcotest.(check int) "sum" 90 (Dataset.fold ( + ) 0 evens)

let test_of_partitions_copies () =
  let source = [| [| 1; 2 |]; [| 3 |] |] in
  let ds = Dataset.of_partitions source in
  source.(0).(0) <- 99;
  Alcotest.(check (array int)) "defensive copy" [| 1; 2; 3 |] (Dataset.to_array ds)

let test_word_count () =
  let words =
    [| "the"; "quick"; "fox"; "the"; "lazy"; "dog"; "the"; "fox" |]
  in
  let ds = Dataset.of_array ~partitions:3 words in
  let result, stats =
    Job.map_reduce
      ~map:(fun w -> [ (w, 1) ])
      ~reduce:(fun w counts -> [ (w, List.fold_left ( + ) 0 counts) ])
      ds
  in
  let counts = Dataset.to_array result in
  let find w = snd (Array.get (Array.of_list (List.filter (fun (k, _) -> k = w) (Array.to_list counts))) 0) in
  Alcotest.(check int) "the" 3 (find "the");
  Alcotest.(check int) "fox" 2 (find "fox");
  Alcotest.(check int) "dog" 1 (find "dog");
  Alcotest.(check int) "mapped" 8 stats.Job.records_mapped

let test_combiner_reduces_shuffle () =
  let data = Array.init 1000 (fun i -> i mod 5) in
  let ds = Dataset.of_array ~partitions:8 data in
  let run combine =
    let _, stats =
      Job.map_reduce ?combine
        ~map:(fun k -> [ (k, 1) ])
        ~reduce:(fun k vs -> [ (k, List.fold_left ( + ) 0 vs) ])
        ds
    in
    stats.Job.records_shuffled
  in
  let without = run None in
  let with_comb = run (Some (fun _ vs -> [ List.fold_left ( + ) 0 vs ])) in
  Alcotest.(check bool)
    (Printf.sprintf "combiner shrinks shuffle (%d -> %d)" without with_comb)
    true (with_comb < without / 5)

let test_shuffle_counts_cross_partition_only () =
  (* With an explicit reduce_partitions, a record whose hash destination
     is its own source partition never crosses the (simulated) network,
     so it must not be charged to the shuffle. Pin the corrected count by
     replaying the routing rule. *)
  let data = Array.init 40 Fun.id in
  let ds = Dataset.of_array ~partitions:4 data in
  let run ?reduce_partitions () =
    let _, stats =
      Job.map_reduce ?reduce_partitions
        ~map:(fun i -> [ (i, i) ])
        ~reduce:(fun _ vs -> vs)
        ds
    in
    stats
  in
  let expected n_reduce =
    let count = ref 0 in
    Array.iteri
      (fun src part ->
        Array.iter
          (fun k -> if Hashtbl.hash k mod n_reduce <> src then incr count)
          part)
      (Dataset.partitions ds)
  ; !count
  in
  let explicit_same = run ~reduce_partitions:4 () in
  Alcotest.(check int) "explicit n = input n" (expected 4)
    explicit_same.Job.records_shuffled;
  Alcotest.(check int) "matches implicit" (run ()).Job.records_shuffled
    explicit_same.Job.records_shuffled;
  let narrowed = run ~reduce_partitions:2 () in
  Alcotest.(check int) "narrowed: only true cross-partition traffic"
    (expected 2) narrowed.Job.records_shuffled;
  Alcotest.(check bool)
    (Printf.sprintf "home records uncharged (%d < 40)" narrowed.Job.records_shuffled)
    true
    (narrowed.Job.records_shuffled < Array.length data)

let test_reduce_groups_all_values () =
  let ds = Dataset.of_array ~partitions:4 (Array.init 100 Fun.id) in
  let result, _ =
    Job.map_reduce
      ~map:(fun i -> [ (i mod 3, i) ])
      ~reduce:(fun _ vs -> [ List.length vs ])
      ds
  in
  let sizes = Array.to_list (Dataset.to_array result) in
  Alcotest.(check int) "3 groups" 3 (List.length sizes);
  Alcotest.(check int) "all values" 100 (List.fold_left ( + ) 0 sizes)

let test_equi_join () =
  let rng = Mde_prob.Rng.create ~seed:5 () in
  let left = Array.init 120 (fun i -> (i, Mde_prob.Rng.int rng 20)) in
  let right = Array.init 80 (fun i -> (Mde_prob.Rng.int rng 20, i)) in
  let joined, stats =
    Job.equi_join
      ~left_key:(fun (_, k) -> k)
      ~right_key:(fun (k, _) -> k)
      (Dataset.of_array ~partitions:4 left)
      (Dataset.of_array ~partitions:3 right)
  in
  let expected =
    Array.fold_left
      (fun acc (_, lk) ->
        acc + Array.length (Array.of_list (List.filter (fun (rk, _) -> rk = lk) (Array.to_list right))))
      0 left
  in
  Alcotest.(check int) "pair count = nested loop" expected
    (Dataset.total_length joined);
  Dataset.iter
    (fun ((_, lk), (rk, _)) -> Alcotest.(check int) "keys agree" lk rk)
    joined;
  Alcotest.(check int) "all records mapped" 200 stats.Job.records_mapped

let test_sort_by () =
  let rng = Mde_prob.Rng.create ~seed:3 () in
  let data = Array.init 500 (fun _ -> Mde_prob.Rng.int rng 1000) in
  let ds = Dataset.of_array ~partitions:6 data in
  let sorted, stats = Job.sort_by ~cmp:Int.compare ds in
  let out = Dataset.to_array sorted in
  let expected = Array.copy data in
  Array.sort Int.compare expected;
  Alcotest.(check (array int)) "globally sorted" expected out;
  Alcotest.(check int) "nothing lost" 500 stats.Job.records_mapped

let test_sort_empty () =
  let ds = Dataset.of_array ~partitions:4 ([||] : int array) in
  let sorted, _ = Job.sort_by ~cmp:Int.compare ds in
  Alcotest.(check int) "empty" 0 (Dataset.total_length sorted)

let test_global_counter () =
  Job.reset_global_counter ();
  let ds = Dataset.of_array ~partitions:4 (Array.init 50 Fun.id) in
  let _ =
    Job.map_reduce ~map:(fun i -> [ (i, i) ]) ~reduce:(fun _ vs -> vs) ds
  in
  Alcotest.(check bool) "counter advanced" true (Job.global_records_shuffled () > 0);
  Job.reset_global_counter ();
  Alcotest.(check int) "reset" 0 (Job.global_records_shuffled ())

let prop_mapreduce_identity =
  QCheck.Test.make ~name:"map_reduce with identity preserves multiset" ~count:100
    QCheck.(list (int_range 0 50))
    (fun xs ->
      let ds = Dataset.of_array ~partitions:5 (Array.of_list xs) in
      let out, _ =
        Job.map_reduce ~map:(fun x -> [ (x, x) ]) ~reduce:(fun _ vs -> vs) ds
      in
      let sort l = List.sort Int.compare l in
      sort (Array.to_list (Dataset.to_array out)) = sort xs)

let prop_sort_by_sorts =
  QCheck.Test.make ~name:"sort_by output is sorted and complete" ~count:100
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let ds = Dataset.of_array ~partitions:4 (Array.of_list xs) in
      let out, _ = Job.sort_by ~cmp:Int.compare ds in
      let result = Array.to_list (Dataset.to_array out) in
      result = List.sort Int.compare xs)

(* --- validation must survive -noassert builds --- *)

let test_dataset_validation () =
  Alcotest.check_raises "of_array"
    (Invalid_argument "Dataset.of_array: partitions must be positive") (fun () ->
      ignore (Dataset.of_array ~partitions:0 [| 1 |]));
  Alcotest.check_raises "of_partitions"
    (Invalid_argument "Dataset.of_partitions: at least one partition required")
    (fun () -> ignore (Dataset.of_partitions ([||] : int array array)))

let test_reduce_partitions_validation () =
  Alcotest.check_raises "non-positive reduce_partitions"
    (Invalid_argument "Job.map_reduce: reduce_partitions must be positive")
    (fun () ->
      ignore
        (Job.map_reduce ~reduce_partitions:0
           ~map:(fun x -> [ (x, x) ])
           ~reduce:(fun _ vs -> vs)
           (Dataset.of_array ~partitions:2 [| 1; 2; 3 |])))

(* Duplicate keys must come out in input order whatever the partition
   count or pool — the local sorts are index-stabilized like
   [Algebra.order_by]'s. *)
let prop_sort_by_stable =
  QCheck.Test.make ~name:"sort_by is stable on duplicate keys" ~count:100
    QCheck.(pair (int_range 1 6) (list (int_range 0 5)))
    (fun (partitions, keys) ->
      (* Tag each record with its input index; equal keys must keep
         ascending tags. *)
      let data = Array.of_list (List.mapi (fun i k -> (k, i)) keys) in
      let cmp (a, _) (b, _) = Int.compare a b in
      let ds = Dataset.of_array ~partitions data in
      let out, _ = Job.sort_by ~cmp ds in
      let out = Dataset.to_array out in
      let expected = Array.copy data in
      (* Array.sort is not stable; sort on (key, tag) instead, which is a
         total order, hence equals the unique stable sort by key. *)
      Array.sort compare expected;
      out = expected)

(* --- relational tables on the engine (Reljob) --- *)

module Reljob = Mde_mapred.Reljob
open Mde_relational

let value_identical a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> a = b

(* Reljob.group_by guarantees per-group values bit-identical to Algebra
   but its group *row order* is the job's, so compare canonically sorted
   rows pairwise. *)
let same_rows_as_multiset a b =
  let canon t =
    let rows = Array.to_list (Table.rows t) |> List.map Array.to_list in
    List.sort (List.compare Value.compare) rows
  in
  Table.cardinality a = Table.cardinality b
  && List.for_all2 (List.for_all2 value_identical) (canon a) (canon b)

let grouped_table rows =
  Table.create
    (Schema.of_list [ ("k", Value.Tfloat); ("v", Value.Tfloat) ])
    (List.map (fun (k, v) -> [| k; Value.Float v |]) rows)

let reljob_rows_gen =
  QCheck.Gen.(
    let key =
      frequency
        [ (5, map (fun f -> Value.Float (float_of_int f)) (int_range 0 4));
          (1, return (Value.Float nan));
          (1, return Value.Null) ]
    in
    list_size (int_range 0 40) (map2 (fun k v -> (k, v)) key (float_range (-5.) 5.)))

let reljob_aggs =
  [ ("n", Algebra.Count); ("s", Algebra.Sum (Expr.col "v"));
    ("m", Algebra.Avg (Expr.col "v")) ]

let prop_reljob_group_by_matches_algebra =
  QCheck.Test.make ~name:"Reljob.group_by == Algebra.group_by (as multiset)"
    ~count:100
    QCheck.(pair (int_range 1 5) (QCheck.make reljob_rows_gen))
    (fun (partitions, rows) ->
      let t = grouped_table rows in
      let oracle = Algebra.group_by ~keys:[ "k" ] ~aggs:reljob_aggs t in
      let out, _ = Reljob.group_by ~partitions ~keys:[ "k" ] ~aggs:reljob_aggs t in
      same_rows_as_multiset oracle out)

let prop_reljob_sort_matches_algebra =
  QCheck.Test.make ~name:"Reljob.sort_by == Algebra.order_by exactly" ~count:100
    QCheck.(triple (int_range 1 5) bool (QCheck.make reljob_rows_gen))
    (fun (partitions, descending, rows) ->
      let t = grouped_table rows in
      let oracle = Algebra.order_by ~descending [ "k" ] t in
      let out, _ = Reljob.sort_by ~partitions ~descending [ "k" ] t in
      Table.cardinality oracle = Table.cardinality out
      && Array.for_all2
           (fun ra rb -> Array.for_all2 value_identical ra rb)
           (Table.rows oracle) (Table.rows out))

let test_reljob_pooled_identity () =
  let rng = Mde_prob.Rng.create ~seed:11 () in
  let rows =
    List.init 2000 (fun i ->
        ( (if i mod 53 = 0 then Value.Float nan
           else Value.Float (float_of_int (Mde_prob.Rng.int rng 40))),
          Mde_prob.Rng.float_range rng (-5.) 5. ))
  in
  let t = grouped_table rows in
  Mde_par.Pool.with_pool ~domains:3 (fun pool ->
      let seq_g, _ = Reljob.group_by ~keys:[ "k" ] ~aggs:reljob_aggs t in
      let par_g, _ = Reljob.group_by ~pool ~keys:[ "k" ] ~aggs:reljob_aggs t in
      Alcotest.(check bool) "pooled group_by == sequential" true
        (Array.for_all2
           (fun ra rb -> Array.for_all2 value_identical ra rb)
           (Table.rows seq_g) (Table.rows par_g));
      let seq_s, _ = Reljob.sort_by [ "k" ] t in
      let par_s, _ = Reljob.sort_by ~pool [ "k" ] t in
      Alcotest.(check bool) "pooled sort_by == sequential" true
        (Array.for_all2
           (fun ra rb -> Array.for_all2 value_identical ra rb)
           (Table.rows seq_s) (Table.rows par_s)))

let test_reljob_nan_keys_and_empty () =
  let nan2 = Int64.float_of_bits 0xFFF8000000000001L in
  let t =
    grouped_table
      [ (Value.Float nan, 1.); (Value.Float 2., 10.); (Value.Float nan2, 5.) ]
  in
  let out, _ = Reljob.group_by ~keys:[ "k" ] ~aggs:[ ("n", Algebra.Count) ] t in
  Alcotest.(check int) "NaN payloads collapse to one group" 2 (Table.cardinality out);
  (* Global aggregate over empty input still emits its one row. *)
  let empty = Table.empty (Table.schema t) in
  let g, _ = Reljob.group_by ~keys:[] ~aggs:reljob_aggs empty in
  Alcotest.(check bool) "empty global row identical" true
    (same_rows_as_multiset (Algebra.group_by ~keys:[] ~aggs:reljob_aggs empty) g)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_mapred"
    [
      ( "dataset",
        [
          Alcotest.test_case "roundtrip" `Quick test_partition_roundtrip;
          Alcotest.test_case "small input" `Quick test_partition_small_input;
          Alcotest.test_case "map" `Quick test_map_preserves_structure;
          Alcotest.test_case "mapi" `Quick test_mapi_global_index;
          Alcotest.test_case "filter/fold" `Quick test_filter_fold;
          Alcotest.test_case "of_partitions copies" `Quick test_of_partitions_copies;
        ] );
      ( "job",
        [
          Alcotest.test_case "word count" `Quick test_word_count;
          Alcotest.test_case "combiner shrinks shuffle" `Quick test_combiner_reduces_shuffle;
          Alcotest.test_case "shuffle = cross-partition only" `Quick
            test_shuffle_counts_cross_partition_only;
          Alcotest.test_case "reduce sees all values" `Quick test_reduce_groups_all_values;
          Alcotest.test_case "reduce-side join" `Quick test_equi_join;
          Alcotest.test_case "sample sort" `Quick test_sort_by;
          Alcotest.test_case "sort empty" `Quick test_sort_empty;
          Alcotest.test_case "global counter" `Quick test_global_counter;
          Alcotest.test_case "dataset validation" `Quick test_dataset_validation;
          Alcotest.test_case "reduce_partitions validation" `Quick
            test_reduce_partitions_validation;
        ] );
      ( "reljob",
        [
          Alcotest.test_case "NaN keys + empty global" `Quick
            test_reljob_nan_keys_and_empty;
          Alcotest.test_case "pooled == sequential" `Quick test_reljob_pooled_identity;
        ] );
      ( "properties",
        qc
          [ prop_mapreduce_identity; prop_sort_by_sorts; prop_sort_by_stable;
            prop_reljob_group_by_matches_algebra; prop_reljob_sort_matches_algebra ] );
    ]
