(* Columnar bundle engine: parity properties against the naive path.

   The contract under test (Bundle's doc): realization [r] of a bundle
   built from seed [s] is bit-identical to element [r] of
   [Stochastic_table.instantiate_many] with the same seed, and every
   operator (select / extend / aggregate / fused query) produces
   bit-identical results across the compiled-kernel path, the
   interpreter-fallback path, and the naive per-instance path — pooled
   or sequential. Randomized trials draw rows / reps / predicates /
   computed columns from a seeded RNG so failures reproduce exactly. *)

open Mde_relational
module Rng = Mde_prob.Rng
module Vg = Mde_mcdb.Vg
module St = Mde_mcdb.Stochastic_table
module Bundle = Mde_mcdb.Bundle
module Database = Mde_mcdb.Database
module Pool = Mde_par.Pool

let v_int i = Value.Int i
let v_str s = Value.String s
let v_float f = Value.Float f

let float_bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Bitwise on floats (NaN ≡ NaN, -0. ≢ 0.), structural elsewhere. *)
let value_eq a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> float_bits_eq x y
  | _ -> Value.equal a b

let row_eq a b = Array.length a = Array.length b && Array.for_all2 value_eq a b

let check_tables_identical msg expected actual =
  Alcotest.(check int)
    (msg ^ ": cardinality")
    (Table.cardinality expected) (Table.cardinality actual);
  Array.iteri
    (fun i row ->
      if not (row_eq row (Table.rows actual).(i)) then
        Alcotest.failf "%s: row %d differs" msg i)
    (Table.rows expected)

(* --- randomized fixture ------------------------------------------------ *)

let sbp_param =
  Table.create
    (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
    [ [| v_float 120.; v_float 15. |] ]

let sbp_schema =
  Schema.of_list
    [ ("pid", Value.Tint); ("gender", Value.Tstring); ("sbp", Value.Tfloat) ]

let sbp_table n =
  let driver =
    Table.create
      (Schema.of_list [ ("pid", Value.Tint); ("gender", Value.Tstring) ])
      (List.init n (fun i ->
           [| v_int i; v_str (if i mod 2 = 0 then "F" else "M") |]))
  in
  St.define ~name:"SBP_DATA" ~schema:sbp_schema ~driver ~vg:Vg.normal
    ~params:(fun _ -> [ sbp_param ])
    ~combine:(fun driver vg_row -> [| driver.(0); driver.(1); vg_row.(0) |])

(* Predicate pool: a mix of kernel-covered shapes (typed comparisons,
   boolean connectives, Is_null, If over booleans) and shapes the
   compiler declines (mixed-kind If branches, comparison against a Null
   literal) that must take the interpreter fallback with identical
   results. None of them can raise on the SBP schema. *)
let predicates =
  Expr.
    [
      col "sbp" > float 120.;
      col "sbp" <= float 110. || col "gender" = string "F";
      col "pid" < int 5;
      not_ (col "gender" = string "M") && col "sbp" >= float 100.;
      Is_null (col "sbp");
      If (col "pid" < int 3, col "sbp" > float 115., bool false);
      (* fallback: mixed-kind If branches defeat static typing *)
      If (col "gender" = string "F", col "sbp", col "pid") > float 118.;
      (* fallback: Null literal comparison *)
      col "sbp" > Lit Value.Null;
      ((col "sbp" - float 120.) / float 15.) * (col "sbp" - float 120.) / float 15.
      > float 1.;
    ]

(* Computed-column pool: (name, declared type, expr), again mixing
   kernel-covered and fallback shapes. *)
let derivations =
  Expr.
    [
      ("risk", Value.Tfloat, (col "sbp" - float 120.) / float 15.);
      ("flag", Value.Tbool, col "sbp" > float 125.);
      ("bucket", Value.Tint, If (col "sbp" > float 120., int 1, int 0));
      (* fallback: the Null literal defeats static typing *)
      ("mixed", Value.Tfloat, If (col "gender" = string "F", col "sbp", Lit Value.Null));
      ("label", Value.Tstring, If (col "sbp" > float 120., string "hi", string "lo"));
    ]

let agg_pool =
  [
    ("n", Bundle.Count);
    ("s", Bundle.Sum (Expr.col "sbp"));
    ("a", Bundle.Avg (Expr.col "sbp"));
    ("lo", Bundle.Min (Expr.col "sbp"));
    ("hi", Bundle.Max (Expr.col "sbp"));
  ]

let algebra_agg = function
  | Bundle.Count -> Algebra.Count
  | Bundle.Sum e -> Algebra.Sum e
  | Bundle.Avg e -> Algebra.Avg e
  | Bundle.Min e -> Algebra.Min e
  | Bundle.Max e -> Algebra.Max e

(* Bundle aggregates are float-valued; map Algebra's Value results onto
   the same representation (empty-group Avg/Min/Max is Null ↦ nan,
   which is also Bundle's empty-group value). *)
let agg_value_to_float = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | Value.Null -> nan
  | v -> Alcotest.failf "unexpected aggregate value %s" (Format.asprintf "%a" Value.pp v)

(* --- to_instances ≡ instantiate_many ----------------------------------- *)

let test_to_instances_matches_naive () =
  let rng0 = Rng.create ~seed:101 () in
  for trial = 0 to 9 do
    let rows = 1 + Rng.int rng0 12 and reps = 1 + Rng.int rng0 8 in
    let st = sbp_table rows in
    let seed = 500 + trial in
    let b = Bundle.of_stochastic_table st (Rng.create ~seed ()) ~n_reps:reps in
    let naive = St.instantiate_many st (Rng.create ~seed ()) reps in
    let realized = Bundle.to_instances b in
    Alcotest.(check int) "instance count" reps (Array.length realized);
    Array.iteri
      (fun r t ->
        check_tables_identical
          (Printf.sprintf "trial %d rep %d" trial r)
          naive.(r) t)
      realized
  done

(* --- select: kernel ≡ interpreter ≡ naive σ ---------------------------- *)

let test_select_parity () =
  let rng0 = Rng.create ~seed:202 () in
  List.iteri
    (fun pi pred ->
      let rows = 2 + Rng.int rng0 10 and reps = 2 + Rng.int rng0 6 in
      let st = sbp_table rows in
      let seed = 900 + pi in
      let b = Bundle.of_stochastic_table st (Rng.create ~seed ()) ~n_reps:reps in
      let kernel = Bundle.select ~impl:`Kernel pred b in
      let interp = Bundle.select ~impl:`Interpreter pred b in
      for i = 0 to Bundle.row_count b - 1 do
        for r = 0 to reps - 1 do
          if Bundle.present kernel i r <> Bundle.present interp i r then
            Alcotest.failf "predicate %d: kernel/interp presence differs at (%d,%d)"
              pi i r
        done
      done;
      let naive = St.instantiate_many st (Rng.create ~seed ()) reps in
      Array.iteri
        (fun r t ->
          check_tables_identical
            (Printf.sprintf "predicate %d rep %d vs naive σ" pi r)
            (Algebra.select pred naive.(r))
            t)
        (Bundle.to_instances kernel))
    predicates

(* --- extend: kernel ≡ interpreter ≡ naive ------------------------------ *)

let test_extend_parity () =
  let rng0 = Rng.create ~seed:303 () in
  List.iteri
    (fun di def ->
      let rows = 2 + Rng.int rng0 8 and reps = 2 + Rng.int rng0 6 in
      let st = sbp_table rows in
      let seed = 1300 + di in
      let b = Bundle.of_stochastic_table st (Rng.create ~seed ()) ~n_reps:reps in
      let kernel = Bundle.extend ~impl:`Kernel [ def ] b in
      let interp = Bundle.extend ~impl:`Interpreter [ def ] b in
      for i = 0 to Bundle.row_count b - 1 do
        for r = 0 to reps - 1 do
          if not (row_eq (Bundle.realize_row kernel i r) (Bundle.realize_row interp i r))
          then
            Alcotest.failf "derivation %d: kernel/interp row differs at (%d,%d)" di i r
        done
      done;
      let naive = St.instantiate_many st (Rng.create ~seed ()) reps in
      Array.iteri
        (fun r t ->
          check_tables_identical
            (Printf.sprintf "derivation %d rep %d vs naive extend" di r)
            (Algebra.extend [ def ] naive.(r))
            t)
        (Bundle.to_instances kernel))
    derivations

(* --- aggregate: kernel ≡ interpreter ≡ naive group_by ------------------ *)

let check_agg_results_identical msg expected actual =
  Alcotest.(check int) (msg ^ ": group count") (List.length expected)
    (List.length actual);
  List.iter2
    (fun (k1, v1) (k2, v2) ->
      if not (row_eq k1 k2) then Alcotest.failf "%s: group keys differ" msg;
      Array.iteri
        (fun j samples ->
          Array.iteri
            (fun r x ->
              if not (float_bits_eq x v2.(j).(r)) then
                Alcotest.failf "%s: agg %d rep %d: %h <> %h" msg j r x v2.(j).(r))
            samples)
        v1)
    expected actual

let test_aggregate_parity () =
  let rng0 = Rng.create ~seed:404 () in
  List.iteri
    (fun pi pred ->
      let rows = 2 + Rng.int rng0 10 and reps = 2 + Rng.int rng0 6 in
      let st = sbp_table rows in
      let seed = 1700 + pi in
      let b = Bundle.of_stochastic_table st (Rng.create ~seed ()) ~n_reps:reps in
      let filtered = Bundle.select pred b in
      List.iter
        (fun keys ->
          let kernel = Bundle.aggregate ~impl:`Kernel ~keys agg_pool filtered in
          let interp = Bundle.aggregate ~impl:`Interpreter ~keys agg_pool filtered in
          check_agg_results_identical
            (Printf.sprintf "predicate %d keys [%s] kernel vs interp" pi
               (String.concat ";" keys))
            kernel interp;
          (* Naive oracle: run σ + γ on every realized instance. A group
             empty in repetition [r] simply has no row in the naive
             output; the bundle reports Count 0 / Sum 0 / nan there. *)
          let naive = St.instantiate_many st (Rng.create ~seed ()) reps in
          let algebra_aggs =
            List.map (fun (name, a) -> (name, algebra_agg a)) agg_pool
          in
          let n_keys = List.length keys in
          List.iter
            (fun (key, per_agg) ->
              for r = 0 to reps - 1 do
                let inst = Algebra.select pred naive.(r) in
                let g = Algebra.group_by ~keys ~aggs:algebra_aggs inst in
                let matching =
                  Array.to_list (Table.rows g)
                  |> List.filter (fun row ->
                         Array.for_all2 value_eq (Array.sub row 0 n_keys) key)
                in
                match matching with
                | [] ->
                  (* group absent in this repetition: Count must be 0 *)
                  Array.iteri
                    (fun j (_, a) ->
                      match a with
                      | Bundle.Count ->
                        Alcotest.(check (float 0.)) "empty group count" 0.
                          per_agg.(j).(r)
                      | _ -> ())
                    (Array.of_list agg_pool)
                | [ row ] ->
                  let n_keys = List.length keys in
                  List.iteri
                    (fun j (_, _) ->
                      let expect = agg_value_to_float row.(n_keys + j) in
                      if not (float_bits_eq expect per_agg.(j).(r)) then
                        Alcotest.failf
                          "predicate %d rep %d agg %d: naive %h <> bundle %h" pi r
                          j expect
                          per_agg.(j).(r))
                    agg_pool
                | _ -> Alcotest.fail "duplicate group in naive output"
              done)
            kernel)
        [ []; [ "gender" ]; [ "gender"; "pid" ] ])
    predicates

(* --- fused query ≡ select |> extend |> aggregate ----------------------- *)

let plan =
  {
    Bundle.where_ = Some Expr.(col "sbp" > float 100.);
    derive = [ ("risk", Value.Tfloat, Expr.((col "sbp" - float 120.) / float 15.)) ];
    group_keys = [];
    aggs =
      [
        ("mean_sbp", Bundle.Avg (Expr.col "sbp"));
        ("max_risk", Bundle.Max (Expr.col "risk"));
        ("n", Bundle.Count);
      ];
  }

let compose ?pool ?impl b (p : Bundle.plan) =
  let b = match p.where_ with None -> b | Some e -> Bundle.select ?pool ?impl e b in
  let b = match p.derive with [] -> b | defs -> Bundle.extend ?pool ?impl defs b in
  Bundle.aggregate ?pool ?impl ~keys:p.group_keys p.aggs b

let test_query_fused_equals_compose () =
  let st = sbp_table 40 in
  let b = Bundle.of_stochastic_table st (Rng.create ~seed:7 ()) ~n_reps:32 in
  let plan =
    (* pid_band is derived but deterministic (pid is deterministic), so
       it is a legal group key that is absent from the base schema —
       grouping on it forces the unfused compose path inside [query]. *)
    {
      plan with
      Bundle.derive =
        plan.Bundle.derive
        @ [ ("pid_band", Value.Tint, Expr.(If (col "pid" < int 20, int 0, int 1))) ];
    }
  in
  List.iter
    (fun impl ->
      List.iter
        (fun keys ->
          let p = { plan with Bundle.group_keys = keys } in
          check_agg_results_identical "query vs compose"
            (Bundle.query ~impl b p) (compose ~impl b p))
        [ []; [ "gender" ]; [ "pid_band" ] ])
    [ `Kernel; `Interpreter ]

(* --- pooled execution is bit-identical --------------------------------- *)

let test_pooled_bit_identity () =
  let st = sbp_table 23 in
  let reps = 17 in
  Pool.with_pool ~domains:2 (fun pool ->
      let seq = Bundle.of_stochastic_table st (Rng.create ~seed:31 ()) ~n_reps:reps in
      let par =
        Bundle.of_stochastic_table ~pool st (Rng.create ~seed:31 ()) ~n_reps:reps
      in
      for i = 0 to Bundle.row_count seq - 1 do
        for r = 0 to reps - 1 do
          if not (row_eq (Bundle.realize_row seq i r) (Bundle.realize_row par i r))
          then Alcotest.failf "pooled construction differs at (%d,%d)" i r
        done
      done;
      let pred = Expr.(col "sbp" > float 118.) in
      let s_seq = Bundle.select pred seq and s_par = Bundle.select ~pool pred par in
      Alcotest.(check int) "pooled select survivors" (Bundle.survivors s_seq)
        (Bundle.survivors s_par);
      for i = 0 to Bundle.row_count seq - 1 do
        for r = 0 to reps - 1 do
          if Bundle.present s_seq i r <> Bundle.present s_par i r then
            Alcotest.failf "pooled select presence differs at (%d,%d)" i r
        done
      done;
      List.iter
        (fun keys ->
          check_agg_results_identical "pooled aggregate"
            (Bundle.aggregate ~keys agg_pool s_seq)
            (Bundle.aggregate ~pool ~keys agg_pool s_par))
        [ []; [ "gender" ] ];
      check_agg_results_identical "pooled fused query" (Bundle.query seq plan)
        (Bundle.query ~pool par plan))

(* --- survivors = popcount of presence ---------------------------------- *)

let test_survivors_popcount () =
  let st = sbp_table 15 in
  let b = Bundle.of_stochastic_table st (Rng.create ~seed:77 ()) ~n_reps:11 in
  let b = Bundle.select Expr.(col "sbp" > float 120.) b in
  let per_cell = ref 0 and per_row = ref 0 in
  for i = 0 to Bundle.row_count b - 1 do
    per_row := !per_row + Bundle.row_survivors b i;
    for r = 0 to Bundle.n_reps b - 1 do
      if Bundle.present b i r then incr per_cell
    done
  done;
  Alcotest.(check int) "survivors = per-cell walk" !per_cell (Bundle.survivors b);
  Alcotest.(check int) "survivors = row popcounts" !per_row (Bundle.survivors b)

(* --- NaN keys: joins and grouping treat NaN = NaN ---------------------- *)

let test_nan_keys () =
  let schema =
    Schema.of_list [ ("k", Value.Tfloat); ("x", Value.Tfloat) ]
  in
  let t =
    Table.create schema
      [
        [| v_float nan; v_float 1. |];
        [| v_float 2.; v_float 10. |];
        [| v_float nan; v_float 5. |];
      ]
  in
  let b = Bundle.of_table t ~n_reps:3 in
  (match Bundle.aggregate ~keys:[ "k" ] [ ("s", Bundle.Sum (Expr.col "x")) ] b with
  | groups ->
    Alcotest.(check int) "NaN rows form one group" 2 (List.length groups);
    let nan_group =
      List.find (fun (key, _) -> Value.equal key.(0) (v_float nan)) groups
    in
    let _, per_agg = nan_group in
    Array.iter
      (fun s -> Alcotest.(check (float 0.)) "NaN group sums both rows" 6. s)
      per_agg.(0));
  let right =
    Table.create
      (Schema.of_list [ ("rk", Value.Tfloat); ("y", Value.Tint) ])
      [ [| v_float nan; v_int 42 |] ]
  in
  let joined = Bundle.join ~on:[ ("k", "rk") ] b (Bundle.of_table right ~n_reps:3) in
  (* both NaN-keyed left rows match the NaN-keyed right row *)
  Alcotest.(check int) "NaN join matches" 2 (Bundle.row_count joined)

(* --- Database.plan_samples --------------------------------------------- *)

let test_plan_samples_matches_instances () =
  let db = Database.create () in
  Database.add_stochastic db (sbp_table 25);
  let reps = 20 and seed = 55 in
  let samples =
    Database.plan_samples db (Rng.create ~seed ()) ~table:"SBP_DATA" ~reps plan
  in
  Alcotest.(check int) "one sample per repetition" reps (Array.length samples);
  (* oracle: realize instance r, run the plan naively, take the first
     aggregate (mean_sbp) *)
  let naive = St.instantiate_many (sbp_table 25) (Rng.create ~seed ()) reps in
  Array.iteri
    (fun r inst ->
      let inst = Algebra.select (Option.get plan.Bundle.where_) inst in
      let inst = Algebra.extend plan.Bundle.derive inst in
      let g =
        Algebra.group_by ~keys:[]
          ~aggs:[ ("mean_sbp", Algebra.Avg (Expr.col "sbp")) ]
          inst
      in
      let expect = agg_value_to_float (Table.rows g).(0).(0) in
      if not (float_bits_eq expect samples.(r)) then
        Alcotest.failf "rep %d: naive %h <> plan_samples %h" r expect samples.(r))
    naive;
  (* pooled and interpreted paths are bit-identical too *)
  Pool.with_pool ~domains:2 (fun pool ->
      let pooled =
        Database.plan_samples ~pool db (Rng.create ~seed ()) ~table:"SBP_DATA" ~reps
          plan
      in
      Array.iteri
        (fun r x ->
          if not (float_bits_eq x pooled.(r)) then
            Alcotest.failf "pooled plan_samples differs at rep %d" r)
        samples);
  let interp =
    Database.plan_samples ~impl:`Interpreter db (Rng.create ~seed ())
      ~table:"SBP_DATA" ~reps plan
  in
  Array.iteri
    (fun r x ->
      if not (float_bits_eq x interp.(r)) then
        Alcotest.failf "interpreted plan_samples differs at rep %d" r)
    samples

let raises_invalid f =
  try
    ignore (f ());
    false
  with
  | Invalid_argument _ -> true
  | _ -> false

let test_plan_samples_validation () =
  let db = Database.create () in
  Database.add_stochastic db (sbp_table 5);
  let rng () = Rng.create ~seed:1 () in
  Alcotest.(check bool) "reps < 1" true
    (raises_invalid (fun () ->
         Database.plan_samples db (rng ()) ~table:"SBP_DATA" ~reps:0 plan));
  Alcotest.(check bool) "unknown table" true
    (raises_invalid (fun () ->
         Database.plan_samples db (rng ()) ~table:"NOPE" ~reps:4 plan));
  Alcotest.(check bool) "grouped plan" true
    (raises_invalid (fun () ->
         Database.plan_samples db (rng ()) ~table:"SBP_DATA" ~reps:4
           { plan with Bundle.group_keys = [ "gender" ] }));
  Alcotest.(check bool) "no aggregates" true
    (raises_invalid (fun () ->
         Database.plan_samples db (rng ()) ~table:"SBP_DATA" ~reps:4
           { plan with Bundle.aggs = [] }))

let () =
  Alcotest.run "mde_bundle"
    [
      ( "parity",
        [
          Alcotest.test_case "to_instances = instantiate_many" `Quick
            test_to_instances_matches_naive;
          Alcotest.test_case "select: kernel = interp = naive" `Quick
            test_select_parity;
          Alcotest.test_case "extend: kernel = interp = naive" `Quick
            test_extend_parity;
          Alcotest.test_case "aggregate: kernel = interp = naive" `Quick
            test_aggregate_parity;
          Alcotest.test_case "fused query = compose" `Quick
            test_query_fused_equals_compose;
        ] );
      ( "parallel",
        [ Alcotest.test_case "pooled = sequential, bit for bit" `Quick
            test_pooled_bit_identity ] );
      ( "presence",
        [ Alcotest.test_case "survivors = popcount" `Quick test_survivors_popcount ] );
      ( "nan-keys",
        [ Alcotest.test_case "NaN groups and joins" `Quick test_nan_keys ] );
      ( "plan-samples",
        [
          Alcotest.test_case "matches per-instance naive" `Quick
            test_plan_samples_matches_instances;
          Alcotest.test_case "validation" `Quick test_plan_samples_validation;
        ] );
    ]
