(* Progressive-refinement sessions: the bit-identity contract (a
   converged handle holds exactly the one-shot bits, pooled or not,
   whatever order the planner interleaved batches in), watch callbacks
   firing exactly once per landed batch, exact budget accounting
   (fresh + reused = summed per-tick allocations, each tick capped by
   its configured budget), cached-pilot reuse between key-mates, and
   handles surviving a retarget to a resized shard front. *)

module Serve = Mde_serve
module Server = Mde_serve.Server
module Session = Mde_serve.Session
module Target = Mde_serve.Target
module Demo = Mde_serve.Demo
module Pool = Mde_par.Pool

let bits = Int64.bits_of_float

let same_float a b = Int64.equal (bits a) (bits b)

let same_ci a b =
  match (a, b) with
  | None, None -> true
  | Some (alo, ahi), Some (blo, bhi) -> same_float alo blo && same_float ahi bhi
  | _ -> false

(* One request per query kind, including the columnar bundle path. *)
let kind_requests ~seed =
  [
    { Server.model = "sbp"; kind = Server.Mcdb_mean { reps = 48 }; seed; deadline = None };
    {
      Server.model = "sbp_bundle";
      kind = Server.Mcdb_tail { reps = 64; p = 0.9 };
      seed = seed + 1;
      deadline = None;
    };
    {
      Server.model = "walk";
      kind = Server.Chain_mean { steps = 8; reps = 24 };
      seed = seed + 2;
      deadline = None;
    };
    {
      Server.model = "queue";
      kind = Server.Composite_estimate { n = 64; alpha = 0.25 };
      seed = seed + 3;
      deadline = None;
    };
  ]

let check_session_matches_oneshot ?pool ~planner () =
  let session_server = Demo.server ?pool ~rows:30 () in
  let session = Session.create ~planner (Target.of_server session_server) in
  let requests = kind_requests ~seed:7 in
  let handles = List.map (Session.open_query session) requests in
  let finals = Session.drive session in
  Alcotest.(check int) "one final update per handle" (List.length handles)
    (List.length finals);
  (* One-shot serves on a fresh server: nothing the session did can
     have warmed it, so the comparison is against a cold computation. *)
  let oneshot = Demo.server ?pool ~rows:30 () in
  List.iter2
    (fun request h ->
      let u =
        match List.find_opt (fun u -> u.Session.id = Session.id h) finals with
        | Some u -> u
        | None -> Alcotest.fail "missing final update"
      in
      Alcotest.(check bool) "converged" true u.Session.converged;
      match Server.serve oneshot request with
      | `Rejected -> Alcotest.fail "one-shot serve rejected"
      | `Served resp ->
        Alcotest.(check bool) "value bits" true
          (same_float u.Session.value resp.Server.value);
        Alcotest.(check bool) "ci95 bits" true (same_ci u.Session.ci95 resp.Server.ci95);
        Alcotest.(check int) "reps" resp.Server.reps_executed u.Session.reps_done)
    requests handles

let test_bit_identity_sequential () =
  check_session_matches_oneshot ~planner:Session.Explore ();
  check_session_matches_oneshot ~planner:Session.Round_robin ()

let test_bit_identity_pooled () =
  Pool.with_pool ~domains:2 (fun pool ->
      check_session_matches_oneshot ~pool ~planner:Session.Explore ())

(* Key-mates (same model, kind parameters and seed — different rep
   budgets) share one store: the second handle adopts the first one's
   replications instead of re-drawing them, and both still hold their
   one-shot bits. *)
let test_key_mate_reuse () =
  let server = Demo.server ~rows:30 () in
  let session = Session.create (Target.of_server server) in
  let big =
    Session.open_query session
      { Server.model = "sbp"; kind = Server.Mcdb_mean { reps = 48 }; seed = 3; deadline = None }
  in
  let small =
    Session.open_query session
      { Server.model = "sbp"; kind = Server.Mcdb_mean { reps = 16 }; seed = 3; deadline = None }
  in
  ignore (Session.drive session);
  let stats = Session.stats session in
  Alcotest.(check int) "no replication drawn twice" 48 stats.Session.fresh_reps;
  Alcotest.(check int) "small handle adopted its prefix" 16 stats.Session.reused_reps;
  let value_of h =
    match Session.estimate session h with
    | Some u -> u.Session.value
    | None -> Alcotest.fail "converged handle has no estimate"
  in
  let oneshot = Demo.server ~rows:30 () in
  let serve reps =
    match
      Server.serve oneshot
        { Server.model = "sbp"; kind = Server.Mcdb_mean { reps }; seed = 3; deadline = None }
    with
    | `Served resp -> resp.Server.value
    | `Rejected -> Alcotest.fail "one-shot serve rejected"
  in
  Alcotest.(check bool) "big matches one-shot at 48" true
    (same_float (value_of big) (serve 48));
  Alcotest.(check bool) "small matches one-shot at 16" true
    (same_float (value_of small) (serve 16))

(* A watcher fires exactly once per fresh batch landing on its key —
   counted against the batches the paying handle's refinement actually
   executed — and never again after the stream stops growing. *)
let test_watch_fires_once_per_batch () =
  let server = Demo.server ~rows:30 () in
  let config = { Session.default_config with Session.tick_reps = 16; min_batch = 8 } in
  let session = Session.create ~config (Target.of_server server) in
  let request =
    { Server.model = "sbp"; kind = Server.Mcdb_mean { reps = 32 }; seed = 9; deadline = None }
  in
  let fired = ref [] in
  let _w = Session.watch session request (fun u -> fired := u :: !fired) in
  Alcotest.(check int) "nothing fires before batches land" 0 (List.length !fired);
  let _h = Session.open_query session request in
  ignore (Session.drive session);
  (* 32 reps in 8-rep batches: four batches, four firings, each at a
     strictly larger landed count. *)
  let firings = List.rev !fired in
  Alcotest.(check int) "one firing per batch" 4 (List.length firings);
  Alcotest.(check (list int)) "monotone landed counts" [ 8; 16; 24; 32 ]
    (List.map (fun u -> u.Session.reps_done) firings);
  (* Reuse-only progress fires nothing: a key-mate handle converging
     purely off the store must not re-trigger the watcher. *)
  let mate =
    Session.open_query session
      { request with Server.kind = Server.Mcdb_mean { reps = 16 } }
  in
  ignore (Session.drive session);
  Alcotest.(check int) "reuse-only progress is silent" 4 (List.length !fired);
  match Session.estimate session mate with
  | Some u -> Alcotest.(check bool) "mate converged off the store" true u.Session.converged
  | None -> Alcotest.fail "mate has no estimate"

(* Every tick spends at most its configured budget, exactly the
   configured budget while demand remains, and the session totals equal
   the summed per-tick allocations. *)
let test_budget_accounting () =
  let server = Demo.server ~rows:30 () in
  let config = { Session.default_config with Session.tick_reps = 24; min_batch = 8 } in
  let session = Session.create ~config (Target.of_server server) in
  List.iter
    (fun r -> ignore (Session.open_query session r))
    (kind_requests ~seed:21);
  let demand =
    List.fold_left
      (fun acc r -> acc + Server.units_of r.Server.kind)
      0 (kind_requests ~seed:21)
  in
  let spent tick_stats =
    tick_stats.Session.fresh_reps + tick_stats.Session.reused_reps
  in
  let total = ref 0 and ticks = ref 0 in
  while (Session.stats session).Session.handles_open > 0 && !ticks < 100 do
    let before = spent (Session.stats session) in
    ignore (Session.tick session);
    let after = spent (Session.stats session) in
    let allocated = after - before in
    incr ticks;
    total := !total + allocated;
    let remaining = demand - after in
    if remaining > 0 then
      Alcotest.(check int) "full budget spent while demand remains" 24 allocated
    else
      Alcotest.(check bool) "never over budget" true (allocated <= 24)
  done;
  let stats = Session.stats session in
  Alcotest.(check int) "ticks counted" !ticks stats.Session.ticks;
  Alcotest.(check int) "fresh + reused = summed allocations" !total
    (spent stats);
  Alcotest.(check int) "every unit of demand allocated" demand (spent stats)

(* Open handles survive a retarget to a resized shard front: positional
   streams make the refinement target-independent, so the converged
   estimates still carry the one-shot bits. *)
let test_handles_survive_shard_resize () =
  let front2 = Demo.front ~rows:30 ~shards:2 () in
  let config = { Session.default_config with Session.tick_reps = 16 } in
  let session = Session.create ~config (Target.of_shard front2) in
  let requests = kind_requests ~seed:31 in
  let handles = List.map (Session.open_query session) requests in
  (* Partial progress on the 2-shard front... *)
  ignore (Session.tick session);
  ignore (Session.tick session);
  let mid = Session.stats session in
  Alcotest.(check bool) "made progress before the resize" true
    (mid.Session.fresh_reps > 0);
  (* ...then the front is resized and the session re-pointed. *)
  let front5 = Demo.front ~rows:30 ~shards:5 () in
  Session.retarget session (Target.of_shard front5);
  let finals = Session.drive session in
  Alcotest.(check int) "every handle converged across the resize"
    (List.length handles) (List.length finals);
  let oneshot = Demo.server ~rows:30 () in
  List.iter2
    (fun request h ->
      let u =
        match List.find_opt (fun u -> u.Session.id = Session.id h) finals with
        | Some u -> u
        | None -> Alcotest.fail "missing final update"
      in
      match Server.serve oneshot request with
      | `Rejected -> Alcotest.fail "one-shot serve rejected"
      | `Served resp ->
        Alcotest.(check bool) "value bits across resize" true
          (same_float u.Session.value resp.Server.value);
        Alcotest.(check bool) "ci95 bits across resize" true
          (same_ci u.Session.ci95 resp.Server.ci95))
    requests handles;
  ignore (Serve.Shard.shutdown front2);
  ignore (Serve.Shard.shutdown front5)

(* Cancelled handles stop consuming budget; their samples stay for
   key-mates. *)
let test_cancel () =
  let server = Demo.server ~rows:30 () in
  let config = { Session.default_config with Session.tick_reps = 8 } in
  let session = Session.create ~config (Target.of_server server) in
  let request =
    { Server.model = "sbp"; kind = Server.Mcdb_mean { reps = 64 }; seed = 5; deadline = None }
  in
  let h = Session.open_query session request in
  ignore (Session.tick session);
  Session.cancel session h;
  let before = Session.stats session in
  let updates = Session.tick session in
  let after = Session.stats session in
  Alcotest.(check int) "no updates after cancel" 0 (List.length updates);
  Alcotest.(check int) "no budget spent after cancel"
    (before.Session.fresh_reps + before.Session.reused_reps)
    (after.Session.fresh_reps + after.Session.reused_reps);
  (* The 8 landed replications are still adoptable by a key-mate. *)
  let mate =
    Session.open_query session { request with Server.kind = Server.Mcdb_mean { reps = 8 } }
  in
  ignore (Session.drive session);
  Alcotest.(check int) "cancelled handle's samples reused" 8
    (Session.stats session).Session.reused_reps;
  match Session.estimate session mate with
  | Some u -> Alcotest.(check bool) "mate converged" true u.Session.converged
  | None -> Alcotest.fail "mate has no estimate"

let () =
  Alcotest.run "session"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "converged == one-shot (both planners)" `Quick
            test_bit_identity_sequential;
          Alcotest.test_case "converged == one-shot (pooled)" `Quick
            test_bit_identity_pooled;
          Alcotest.test_case "key-mates share one store" `Quick test_key_mate_reuse;
        ] );
      ( "watch",
        [
          Alcotest.test_case "fires once per landed batch" `Quick
            test_watch_fires_once_per_batch;
        ] );
      ( "budget",
        [
          Alcotest.test_case "allocations sum to configured budget" `Quick
            test_budget_accounting;
          Alcotest.test_case "cancel stops spend, keeps samples" `Quick test_cancel;
        ] );
      ( "retarget",
        [
          Alcotest.test_case "handles survive shard resize" `Quick
            test_handles_survive_shard_resize;
        ] );
    ]
