(* The observability substrate: registry bookkeeping (idempotent
   registration, type clashes, counter monotonicity), exact histogram
   quantiles, span nesting under an injected clock, the no-op registry's
   do-nothing contract, and the exporters (Prometheus golden output,
   JSON well-formedness, the line validator CI gates on). *)

module Obs = Mde_obs

(* A clock that advances one unit per reading, so span timestamps are
   exact. *)
let ticking () =
  let t = ref 0. in
  fun () ->
    let v = !t in
    t := v +. 1.;
    v

(* --- registry --- *)

let test_counter () =
  let r = Obs.create () in
  let c = Obs.counter r "requests_total" in
  Obs.Counter.incr c;
  Obs.Counter.add c 2;
  Alcotest.(check int) "incr + add" 3 (Obs.Counter.value c);
  (* Registration is idempotent: the same (name, labels) pair is the
     same cell. *)
  let c' = Obs.counter r "requests_total" in
  Obs.Counter.incr c';
  Alcotest.(check int) "same cell through re-registration" 4 (Obs.Counter.value c);
  let l = Obs.counter r ~labels:[ ("k", "v") ] "requests_total" in
  Alcotest.(check int) "distinct labels, distinct cell" 0 (Obs.Counter.value l);
  Alcotest.(check bool) "negative add raises" true
    (try
       Obs.Counter.add c (-1);
       false
     with Invalid_argument _ -> true)

let test_gauge () =
  let r = Obs.create () in
  let g = Obs.gauge r "depth" in
  Obs.Gauge.set g 5.;
  Obs.Gauge.add g (-2.);
  Alcotest.(check (float 0.)) "set then add" 3. (Obs.Gauge.value g)

let test_registration_errors () =
  let r = Obs.create () in
  ignore (Obs.counter r "dual");
  Alcotest.(check bool) "type clash raises" true
    (try
       ignore (Obs.gauge r "dual");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad metric name raises" true
    (try
       ignore (Obs.counter r "bad name");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad label name raises" true
    (try
       ignore (Obs.counter r ~labels:[ ("bad-label", "v") ] "ok");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-increasing buckets raise" true
    (try
       ignore (Obs.histogram r ~buckets:[| 1.; 1. |] "h");
       false
     with Invalid_argument _ -> true)

(* --- histogram quantiles --- *)

let test_histogram_quantiles () =
  let r = Obs.create () in
  let h = Obs.histogram r ~buckets:[| 1.; 2.; 4.; 8. |] "lat" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Obs.Histogram.quantile h 0.5));
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.5; 1.7; 3.; 3.; 7. ];
  Alcotest.(check int) "count" 6 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 16.7 (Obs.Histogram.sum h);
  (* Nearest rank over buckets: rank 3 of 6 lands in the (1,2] bucket. *)
  Alcotest.(check (float 0.)) "p50 = second bound" 2. (Obs.Histogram.quantile h 0.5);
  (* The top bucket's bound (8) is clamped to the observed max. *)
  Alcotest.(check (float 0.)) "p99 clamped to max" 7. (Obs.Histogram.quantile h 0.99);
  Alcotest.(check (float 0.)) "p0 = first bound" 1. (Obs.Histogram.quantile h 0.)

let test_histogram_overflow () =
  let r = Obs.create () in
  let h = Obs.histogram r ~buckets:[| 1. |] "over" in
  Obs.Histogram.observe h 100.;
  Alcotest.(check (float 0.)) "overflow bucket reads back max" 100.
    (Obs.Histogram.quantile h 1.)

(* --- spans --- *)

let test_span_nesting () =
  let r = Obs.create () in
  let clock = ticking () in
  let result =
    Obs.with_span r ~clock ~name:"outer" (fun () ->
        Obs.with_span r ~clock ~name:"inner" (fun () -> 42))
  in
  Alcotest.(check int) "value returned" 42 result;
  (match Obs.spans r with
  | [ outer; inner ] ->
    Alcotest.(check string) "flame order: parent first" "outer" outer.Obs.name;
    Alcotest.(check int) "outer depth" 0 outer.Obs.depth;
    Alcotest.(check int) "inner depth" 1 inner.Obs.depth;
    (* Clock reads: outer open 0, inner open 1, inner close 2, outer
       close 3. *)
    Alcotest.(check (float 0.)) "outer start" 0. outer.Obs.start;
    Alcotest.(check (float 0.)) "inner start" 1. inner.Obs.start;
    Alcotest.(check (float 0.)) "inner stop" 2. inner.Obs.stop;
    Alcotest.(check (float 0.)) "outer stop" 3. outer.Obs.stop
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
  Alcotest.(check int) "none dropped" 0 (Obs.spans_dropped r)

let test_span_exception () =
  let r = Obs.create () in
  let clock = ticking () in
  (try Obs.with_span r ~clock ~name:"boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  match Obs.spans r with
  | [ s ] ->
    Alcotest.(check bool) "span closed despite exception" true
      (not (Float.is_nan s.Obs.stop))
  | _ -> Alcotest.fail "expected one span"

(* --- no-op registry --- *)

let test_noop () =
  Alcotest.(check bool) "noop disabled" false (Obs.enabled Obs.noop);
  Alcotest.(check bool) "live enabled" true (Obs.enabled (Obs.create ()));
  let c = Obs.counter Obs.noop "anything" in
  Obs.Counter.incr c;
  Alcotest.(check int) "noop counter stays 0" 0 (Obs.Counter.value c);
  let h = Obs.histogram Obs.noop "h" in
  Obs.Histogram.observe h 1.;
  Alcotest.(check int) "noop histogram stays empty" 0 (Obs.Histogram.count h);
  Alcotest.(check int) "noop span runs thunk"
    7
    (Obs.with_span Obs.noop ~name:"s" (fun () -> 7));
  Alcotest.(check string) "noop prometheus empty" "" (Obs.Export.prometheus Obs.noop)

let test_default_registry () =
  Alcotest.(check bool) "default starts noop (or was restored)" false
    (Obs.enabled (Obs.default ()));
  let r = Obs.create () in
  Obs.set_default r;
  Alcotest.(check bool) "set_default installs" true (Obs.enabled (Obs.default ()));
  Obs.set_default Obs.noop;
  Alcotest.(check bool) "restored" false (Obs.enabled (Obs.default ()))

(* --- exporters --- *)

let golden_registry () =
  let r = Obs.create () in
  let c = Obs.counter r ~help:"Total requests" "requests_total" in
  Obs.Counter.add c 3;
  let g = Obs.gauge r ~help:"Queue depth" ~labels:[ ("stage", "sched") ] "queue_depth" in
  Obs.Gauge.set g 2.;
  let h = Obs.histogram r ~help:"Latency" ~buckets:[| 0.5; 1. |] "lat" in
  List.iter (Obs.Histogram.observe h) [ 0.25; 0.75; 5. ];
  r

let test_prometheus_golden () =
  let expected =
    String.concat "\n"
      [
        "# HELP requests_total Total requests";
        "# TYPE requests_total counter";
        "requests_total 3";
        "# HELP queue_depth Queue depth";
        "# TYPE queue_depth gauge";
        "queue_depth{stage=\"sched\"} 2";
        "# HELP lat Latency";
        "# TYPE lat histogram";
        "lat_bucket{le=\"0.5\"} 1";
        "lat_bucket{le=\"1\"} 2";
        "lat_bucket{le=\"+Inf\"} 3";
        "lat_sum 6";
        "lat_count 3";
        "";
      ]
  in
  Alcotest.(check string) "exposition text" expected
    (Obs.Export.prometheus (golden_registry ()))

let test_validate_prometheus () =
  let r = golden_registry () in
  (match Obs.Export.validate_prometheus (Obs.Export.prometheus r) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "exporter output rejected: %s" msg);
  let rejects s =
    match Obs.Export.validate_prometheus s with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "bad comment rejected" true (rejects "# BOGUS foo\n");
  Alcotest.(check bool) "unterminated labels rejected" true (rejects "m{le=\"0.1 7\n");
  Alcotest.(check bool) "missing value rejected" true (rejects "just_a_name\n");
  Alcotest.(check bool) "unparseable value rejected" true (rejects "m twelve\n")

let test_json_export () =
  let r = golden_registry () in
  ignore (Obs.with_span r ~clock:(ticking ()) ~name:"s" (fun () -> ()));
  let s = Obs.Export.json r in
  (* Spot checks, not a full parser: the snapshot carries the metrics,
     the quantile readouts and the span. *)
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "json contains %s" needle) true (go 0)
  in
  contains "\"name\": \"requests_total\"";
  contains "\"value\": 3";
  contains "\"p50\"";
  contains "\"spans_dropped\": 0";
  contains "\"name\": \"s\""

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter;
          Alcotest.test_case "gauge semantics" `Quick test_gauge;
          Alcotest.test_case "registration errors" `Quick test_registration_errors;
          Alcotest.test_case "default registry" `Quick test_default_registry;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "overflow bucket" `Quick test_histogram_overflow;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and flame order" `Quick test_span_nesting;
          Alcotest.test_case "closed on exception" `Quick test_span_exception;
        ] );
      ( "noop",
        [ Alcotest.test_case "all operations inert" `Quick test_noop ] );
      ( "export",
        [
          Alcotest.test_case "prometheus golden output" `Quick test_prometheus_golden;
          Alcotest.test_case "validator" `Quick test_validate_prometheus;
          Alcotest.test_case "json snapshot" `Quick test_json_export;
        ] );
    ]
