open Mde_relational
module Pool = Mde_par.Pool
module Rng = Mde_prob.Rng
module St = Mde_mcdb.Stochastic_table
module Database = Mde_mcdb.Database
module Rc = Mde_composite.Result_cache
module Dataset = Mde_mapred.Dataset
module Job = Mde_mapred.Job

(* --- pool lifecycle --- *)

let test_lifecycle () =
  let pool = Pool.create ~domains:3 () in
  Alcotest.(check int) "domains" 3 (Pool.domains pool);
  let squares = Pool.parallel_init pool 257 (fun i -> i * i) in
  Alcotest.(check (array int)) "init" (Array.init 257 (fun i -> i * i)) squares;
  let doubled = Pool.parallel_map pool ~chunk:7 (fun x -> 2 * x) (Array.init 100 Fun.id) in
  Alcotest.(check (array int)) "map, odd chunk" (Array.init 100 (fun i -> 2 * i)) doubled;
  Alcotest.(check (array int)) "empty input" [||] (Pool.parallel_map pool Fun.id [||]);
  Alcotest.(check (array int)) "single element" [| 9 |]
    (Pool.parallel_map pool (fun x -> x * 3) [| 3 |]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* shutdown is idempotent *)
  Alcotest.(check bool) "closed pool rejects work" true
    (try
       ignore (Pool.parallel_init pool 4 Fun.id);
       false
     with Invalid_argument _ -> true)

let test_single_domain_pool () =
  (* domains = 1 degenerates to sequential execution on the caller. *)
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "one domain" 1 (Pool.domains pool);
      Alcotest.(check (array int)) "still correct" (Array.init 50 succ)
        (Pool.parallel_init pool 50 succ))

let test_create_rejects_zero_domains () =
  Alcotest.(check bool) "domains=0 rejected" true
    (try
       ignore (Pool.create ~domains:0 ());
       false
     with Invalid_argument _ -> true)

let test_with_pool_shuts_down_on_raise () =
  let captured = ref None in
  (try
     Pool.with_pool ~domains:2 (fun pool ->
         captured := Some pool;
         failwith "escape")
   with Failure _ -> ());
  match !captured with
  | None -> Alcotest.fail "with_pool never ran"
  | Some pool ->
    Alcotest.(check bool) "pool closed after raise" true
      (try
         ignore (Pool.parallel_init pool 2 Fun.id);
         false
       with Invalid_argument _ -> true)

let test_chunk_validated_on_every_pool_size () =
  (* Regression: the 1-domain fast path used to return before the
     [?chunk] check, so [~chunk:0] silently succeeded there while
     raising on a multi-domain pool. *)
  let rejects pool label =
    Alcotest.(check bool) label true
      (try
         ignore (Pool.parallel_init pool ~chunk:0 8 Fun.id);
         false
       with Invalid_argument _ -> true);
    Alcotest.(check bool) (label ^ ", negative") true
      (try
         ignore (Pool.parallel_map pool ~chunk:(-3) Fun.id (Array.init 8 Fun.id));
         false
       with Invalid_argument _ -> true)
  in
  Pool.with_pool ~domains:1 (fun pool -> rejects pool "chunk=0 on 1-domain pool");
  Pool.with_pool ~domains:2 (fun pool -> rejects pool "chunk=0 on 2-domain pool")

let test_each_index_evaluated_once () =
  (* The unboxed write path seeds the result array with [f 0] computed
     on the caller; no index may be skipped or recomputed because of
     that. *)
  Pool.with_pool ~domains:3 (fun pool ->
      let counts = Array.init 101 (fun _ -> Atomic.make 0) in
      let out =
        Pool.parallel_init pool ~chunk:4 101 (fun i ->
            Atomic.incr counts.(i);
            i)
      in
      Alcotest.(check (array int)) "values correct" (Array.init 101 Fun.id) out;
      Array.iteri
        (fun i c ->
          Alcotest.(check int) (Printf.sprintf "index %d ran once" i) 1 (Atomic.get c))
        counts)

let test_iter_optional_pool () =
  (* The ?pool pass-through form: a plain for loop without a pool, the
     same disjoint-slot fill with one — identical results either way. *)
  let fill pool =
    let out = Array.make 257 0 in
    Pool.iter ?pool 257 (fun i -> out.(i) <- i * i);
    out
  in
  let expected = Array.init 257 (fun i -> i * i) in
  Alcotest.(check (array int)) "sequential fill" expected (fill None);
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (array int)) "pooled fill identical" expected (fill (Some pool)))

let test_stats_and_steals () =
  Pool.with_pool ~domains:2 (fun pool ->
      ignore (Pool.parallel_init pool ~chunk:1 32 Fun.id);
      let s = Pool.stats pool in
      Alcotest.(check int) "stat domains" 2 s.Pool.stat_domains;
      Alcotest.(check bool) "a batch fanned out" true (s.Pool.batches >= 1);
      Alcotest.(check int) "every chunk executed and counted" 32
        (Array.fold_left ( + ) 0 s.Pool.tasks);
      Alcotest.(check int) "per-domain arrays sized to the pool" 2
        (Array.length s.Pool.steals))

let test_crossover_fast_path_engages () =
  (* Trivial work trains the per-site estimate down to nanoseconds per
     item, after which an unchunked small batch must run sequentially on
     the caller. A few attempts absorb scheduling noise in the first
     measurement. *)
  Pool.with_pool ~domains:2 (fun pool ->
      let engaged = ref false in
      for _ = 1 to 12 do
        let before = (Pool.stats pool).Pool.seq_batches in
        ignore (Pool.parallel_init pool ~site:"test.tiny" 16 Fun.id);
        if (Pool.stats pool).Pool.seq_batches > before then engaged := true
      done;
      Alcotest.(check bool) "sequential fast path engaged" true !engaged;
      (* An explicit [~chunk] is an instruction to fan out regardless. *)
      let before = (Pool.stats pool).Pool.batches in
      ignore (Pool.parallel_init pool ~site:"test.tiny" ~chunk:4 16 Fun.id);
      Alcotest.(check bool) "explicit chunk still fans out" true
        ((Pool.stats pool).Pool.batches > before))

let test_shared_pool_reused () =
  let p1 = Pool.shared ~domains:2 () in
  let p2 = Pool.shared ~domains:2 () in
  Alcotest.(check bool) "same size, same pool" true (p1 == p2);
  let p3 = Pool.shared ~domains:1 () in
  Alcotest.(check bool) "different size, different pool" true (p1 != p3);
  Alcotest.(check (array int)) "shared pool computes" (Array.init 40 succ)
    (Pool.parallel_init p1 40 succ)

(* --- exception propagation --- *)

exception Worker_trouble of int

let test_exception_propagates () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check bool) "exception reaches caller" true
        (try
           ignore
             (Pool.parallel_init pool ~chunk:1 64 (fun i ->
                  if i = 37 then raise (Worker_trouble i) else i));
           false
         with Worker_trouble 37 -> true);
      (* The failed batch drains completely; the pool keeps working. *)
      Alcotest.(check (array int)) "pool alive after failure"
        (Array.init 30 Fun.id)
        (Pool.parallel_init pool 30 Fun.id))

let test_parallel_iter_each_index_once () =
  Pool.with_pool ~domains:3 (fun pool ->
      let counts = Array.init 101 (fun _ -> Atomic.make 0) in
      Pool.parallel_iter pool ~chunk:4 101 (fun i -> Atomic.incr counts.(i));
      Array.iteri
        (fun i c ->
          Alcotest.(check int) (Printf.sprintf "index %d ran once" i) 1 (Atomic.get c))
        counts;
      Pool.parallel_iter pool 0 (fun _ -> Alcotest.fail "empty sweep ran its body");
      Alcotest.(check bool) "chunk=0 rejected" true
        (try
           Pool.parallel_iter pool ~chunk:0 8 ignore;
           false
         with Invalid_argument _ -> true))

let test_parallel_iter_exception_propagates () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check bool) "exception reaches caller" true
        (try
           Pool.parallel_iter pool ~chunk:1 64 (fun i ->
               if i = 23 then raise (Worker_trouble i));
           false
         with Worker_trouble 23 -> true);
      let out = Array.make 30 0 in
      Pool.parallel_iter pool 30 (fun i -> out.(i) <- i + 1);
      Alcotest.(check (array int)) "pool alive after failure" (Array.init 30 succ) out)

let test_shutdown_drains_in_flight_work () =
  (* Close the pool under a batch submitted from another domain: every
     queued chunk must still run before the workers exit. *)
  let pool = Pool.create ~domains:3 () in
  let started = Atomic.make false in
  let submitter =
    Domain.spawn (fun () ->
        Pool.parallel_init pool ~chunk:1 64 (fun i ->
            if i > 0 then Atomic.set started true;
            i * i))
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  Pool.shutdown pool;
  Alcotest.(check (array int)) "every chunk of the in-flight batch ran"
    (Array.init 64 (fun i -> i * i))
    (Domain.join submitter);
  Alcotest.(check bool) "submit after shutdown raises" true
    (try
       ignore (Pool.parallel_init pool 4 Fun.id);
       false
     with Invalid_argument _ -> true)

(* --- determinism: parallel == sequential, bit for bit --- *)

let patients n =
  Table.create
    (Schema.of_list [ ("pid", Value.Tint); ("gender", Value.Tstring) ])
    (List.init n (fun i ->
         [| Value.Int i; Value.String (if i mod 2 = 0 then "F" else "M") |]))

let sbp_param =
  Table.create
    (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
    [ [| Value.Float 120.; Value.Float 15. |] ]

let sbp_db rows =
  let st =
    St.define ~name:"SBP_DATA"
      ~schema:
        (Schema.of_list
           [ ("pid", Value.Tint); ("gender", Value.Tstring); ("sbp", Value.Tfloat) ])
      ~driver:(patients rows) ~vg:Mde_mcdb.Vg.normal
      ~params:(fun _ -> [ sbp_param ])
      ~combine:(fun driver vg_row -> [| driver.(0); driver.(1); vg_row.(0) |])
  in
  let db = Database.create () in
  Database.add_stochastic db st;
  db

let mean_sbp catalog =
  let t = Catalog.find catalog "SBP_DATA" in
  let total = ref 0. and n = ref 0 in
  Table.iter
    (fun row ->
      total := !total +. Value.to_float row.(2);
      incr n)
    t;
  !total /. float_of_int !n

let test_mcdb_parallel_deterministic () =
  let db = sbp_db 60 in
  let reps = 48 in
  let sequential =
    Database.monte_carlo db (Rng.create ~seed:77 ()) ~reps ~query:mean_sbp
  in
  Pool.with_pool ~domains:4 (fun pool ->
      let parallel =
        Database.monte_carlo ~pool db (Rng.create ~seed:77 ()) ~reps ~query:mean_sbp
      in
      Alcotest.(check (array (float 0.))) "bit-identical samples" sequential parallel);
  (* A different seed must still change the answer (the equality above is
     not vacuous). *)
  let other = Database.monte_carlo db (Rng.create ~seed:78 ()) ~reps ~query:mean_sbp in
  Alcotest.(check bool) "seed still matters" true (sequential <> other)

let test_instantiate_many_deterministic () =
  let st =
    St.define ~name:"T"
      ~schema:(Schema.of_list [ ("pid", Value.Tint); ("g", Value.Tstring); ("x", Value.Tfloat) ])
      ~driver:(patients 20) ~vg:Mde_mcdb.Vg.normal
      ~params:(fun _ -> [ sbp_param ])
      ~combine:(fun driver vg_row -> [| driver.(0); driver.(1); vg_row.(0) |])
  in
  let realize pool = St.instantiate_many ?pool st (Rng.create ~seed:5 ()) 12 in
  let sequential = realize None in
  Pool.with_pool ~domains:3 (fun pool ->
      let parallel = realize (Some pool) in
      Array.iteri
        (fun r inst ->
          Alcotest.(check bool)
            (Printf.sprintf "realization %d identical" r)
            true
            (Table.rows inst = Table.rows sequential.(r)))
        parallel)

let test_map_reduce_parallel_deterministic () =
  let data = Array.init 500 (fun i -> i mod 17) in
  let ds = Dataset.of_array ~partitions:8 data in
  let run ?pool () =
    Job.map_reduce ?pool
      ~map:(fun k -> [ (k, 1) ])
      ~reduce:(fun k vs -> [ (k, List.fold_left ( + ) 0 vs) ])
      ds
  in
  let out_seq, stats_seq = run () in
  Pool.with_pool ~domains:4 (fun pool ->
      let out_par, stats_par = run ~pool () in
      Alcotest.(check (array (pair int int)))
        "identical output, identical order"
        (Dataset.to_array out_seq) (Dataset.to_array out_par);
      Alcotest.(check int) "same shuffle count" stats_seq.Job.records_shuffled
        stats_par.Job.records_shuffled;
      Alcotest.(check int) "same reduce count" stats_seq.Job.records_reduced
        stats_par.Job.records_reduced)

let test_pilot_parallel_deterministic () =
  (* Two-stage composite with known variance split; the sampled outputs
     (so V1/V2) must not depend on the pool. *)
  let two_stage =
    {
      Rc.model1 = (fun rng -> 2. *. Mde_prob.Rng.float rng);
      model2 = (fun rng y1 -> y1 +. Mde_prob.Rng.float rng);
    }
  in
  let p_seq = Rc.pilot two_stage (Rng.create ~seed:9 ()) ~inputs:40 ~outputs_per_input:4 in
  Pool.with_pool ~domains:4 (fun pool ->
      let p_par =
        Rc.pilot ~pool two_stage (Rng.create ~seed:9 ()) ~inputs:40 ~outputs_per_input:4
      in
      Alcotest.(check (float 0.)) "V1 identical" p_seq.Rc.statistics.Rc.v1
        p_par.Rc.statistics.Rc.v1;
      Alcotest.(check (float 0.)) "V2 identical" p_seq.Rc.statistics.Rc.v2
        p_par.Rc.statistics.Rc.v2)

let () =
  Alcotest.run "mde_par"
    [
      ( "pool",
        [
          Alcotest.test_case "lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "single-domain pool" `Quick test_single_domain_pool;
          Alcotest.test_case "zero domains rejected" `Quick test_create_rejects_zero_domains;
          Alcotest.test_case "with_pool cleans up" `Quick test_with_pool_shuts_down_on_raise;
          Alcotest.test_case "chunk validated on every pool size" `Quick
            test_chunk_validated_on_every_pool_size;
          Alcotest.test_case "each index evaluated once" `Quick
            test_each_index_evaluated_once;
          Alcotest.test_case "stats and steals" `Quick test_stats_and_steals;
          Alcotest.test_case "crossover fast path" `Quick
            test_crossover_fast_path_engages;
          Alcotest.test_case "shared pool reused" `Quick test_shared_pool_reused;
          Alcotest.test_case "iter with optional pool" `Quick test_iter_optional_pool;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "parallel_iter each index once" `Quick
            test_parallel_iter_each_index_once;
          Alcotest.test_case "parallel_iter exception propagation" `Quick
            test_parallel_iter_exception_propagates;
          Alcotest.test_case "shutdown drains in-flight work" `Quick
            test_shutdown_drains_in_flight_work;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "mcdb monte carlo" `Quick test_mcdb_parallel_deterministic;
          Alcotest.test_case "instantiate_many" `Quick test_instantiate_many_deterministic;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce_parallel_deterministic;
          Alcotest.test_case "result-cache pilot" `Quick test_pilot_parallel_deterministic;
        ] );
    ]
