(* Reproductions of the paper's figures (FIG1-FIG5 in DESIGN.md). *)

module Series = Mde.Timeseries.Series
module Forecast = Mde.Timeseries.Forecast
module Synthetic = Mde.Timeseries.Synthetic
module Design = Mde.Metamodel.Design
module Polynomial = Mde.Metamodel.Polynomial
module Rc = Mde.Composite.Result_cache
module Rng = Mde.Prob.Rng
module Dist = Mde.Prob.Dist

(* FIG1 — "The dangers of extrapolation": fit shallow predictive models
   to the housing index through 2006, extrapolate to 2011, and watch them
   fail across the regime change. *)
let fig1 () =
  Util.section "FIG1" "housing-price extrapolation fails across the 2006 bust";
  let full = Synthetic.housing_index () in
  let history = Series.sub_before full 2006.0 in
  let horizon =
    Array.length
      (Array.of_list
         (List.filter (fun t -> t > 2006.0) (Array.to_list (Series.times full))))
  in
  Util.note "history: %d monthly observations (1970-2006); holdout: %d months (2006-2011)"
    (Series.length history) horizon;
  let value_near series year =
    let times = Series.times series and values = Series.values series in
    let best = ref 0 in
    Array.iteri
      (fun idx t ->
        if Float.abs (t -. year) < Float.abs (times.(!best) -. year) then best := idx)
      times;
    values.(!best)
  in
  let actual_2011 = value_near full 2011.0 in
  let rows =
    List.map
      (fun (name, model) ->
        let fit = Forecast.fit model history in
        let forecast = Forecast.extrapolate fit ~horizon in
        let rmse = Forecast.extrapolation_error fit ~actual:full in
        let predicted_2011 = (Series.values forecast).(horizon - 1) in
        [ name; Util.f2 (Forecast.in_sample_rmse fit); Util.f2 predicted_2011;
          Util.f2 actual_2011; Util.f2 rmse ])
      [ ("linear trend", Forecast.Linear_trend);
        ("quadratic trend", Forecast.Quadratic_trend);
        ("AR(12)", Forecast.Ar 12) ]
  in
  Util.table [ "model"; "in-sample RMSE"; "pred. 2011"; "actual 2011"; "holdout RMSE" ] rows;
  Util.note "";
  Util.note "index path (1970-2011):  %s" (Util.spark (Series.values full));
  Util.note
    "Paper shape: models that fit the boom superbly predict continued growth";
  Util.note
    "into 2011 while the realized index collapses — holdout error is an order";
  Util.note "of magnitude above the in-sample error."

(* FIG2 — the two-model composite of §2.3 plus the g(alpha) theory: sweep
   the replication fraction and compare theoretical and empirical
   estimator variance; mark alpha*. *)
let fig2 () =
  Util.section "FIG2" "result caching in a two-model composite (g(alpha) and alpha*)";
  (* The paper's favourable-caching regime: an expensive, mildly
     influential M1 (c1 = 20, V2 = 0.5) feeding a cheap, noisy M2 (c2 = 1,
     V1 = 5). M1 ~ N(5, 0.5); M2 = Y1 + N(0, 4.5), so V2 = Var(E[Y2|Y1])
     = 0.5 and V1 = 5 exactly. *)
  let two_stage =
    {
      Rc.model1 =
        (fun rng -> Dist.sample (Dist.Normal { mean = 5.; std = sqrt 0.5 }) rng);
      model2 =
        (fun rng y1 -> y1 +. Dist.sample (Dist.Normal { mean = 0.; std = sqrt 4.5 }) rng);
    }
  in
  let stats = { Rc.c1 = 20.; c2 = 1.; v1 = 5.; v2 = 0.5 } in
  let star = Rc.alpha_star stats in
  Util.note "statistics: c1=%.0f c2=%.0f V1=%.1f V2=%.1f -> alpha* = %.4f" stats.Rc.c1
    stats.Rc.c2 stats.Rc.v1 stats.Rc.v2 star;
  let rng = Rng.create ~seed:4 () in
  let budget = 4000. in
  let rows =
    List.map
      (fun alpha ->
        (* Work-normalized empirical variance: variance of the
           budget-constrained estimate over repeated experiments. *)
        let estimates =
          Array.init 300 (fun _ ->
              (Rc.estimate_under_budget two_stage rng ~budget ~alpha ~stats).Rc.theta_hat)
        in
        let empirical = budget *. Mde.Prob.Stats.variance estimates in
        let sample = Rc.estimate_under_budget two_stage rng ~budget ~alpha ~stats in
        [ Util.f4 alpha; Util.i sample.Rc.n; Util.i sample.Rc.m;
          Util.f2 (Rc.g stats alpha); Util.f2 empirical;
          (if alpha = star then "<- alpha*" else "") ])
      [ 0.02; 0.04; star; 0.15; 0.3; 0.6; 1.0 ]
  in
  Util.table [ "alpha"; "n (M2 runs)"; "m (M1 runs)"; "g(alpha)"; "c*Var (emp.)"; "" ] rows;
  Util.note "";
  Util.note
    "Paper shape: g is minimized near alpha* = sqrt((c2/c1)/(V1/V2 - 1)) and the";
  Util.note
    "empirical budget-normalized variance tracks the theoretical curve; caching";
  Util.note "at alpha* beats no caching (alpha = 1) by g(1)/g(alpha*) = %.2fx."
    (Rc.efficiency_gain stats)

(* FIG3 — the resolution III fractional factorial, printed exactly. *)
let fig3 () =
  Util.section "FIG3" "resolution III design for seven parameters (eight runs)";
  let d = Design.resolution_iii_7 () in
  Format.printf "%a@." Design.pp d;
  Util.note "";
  Util.note "Columns are pairwise orthogonal: max |corr| = %.3g"
    (Design.max_abs_correlation d);
  Util.note
    "Generators: x4 = x1x2, x5 = x1x3, x6 = x2x3, x7 = x1x2x3 (matches the";
  Util.note "paper's table row for row — verified in the test suite)."

(* FIG4 — the main-effects plot, produced by running a simulation with
   known sensitivities over the FIG3 design. *)
let fig4 () =
  Util.section "FIG4" "main-effects plot for seven parameters";
  let design = Design.resolution_iii_7 () in
  let rng = Rng.create ~seed:5 () in
  (* Ground truth: betas 2.0, 0, 1.0, 0, 0.4, 0, 0 plus noise. *)
  let betas = [| 2.0; 0.; 1.0; 0.; 0.4; 0.; 0. |] in
  let simulate row =
    let acc = ref 10. in
    Array.iteri (fun j b -> acc := !acc +. (b *. row.(j))) betas;
    !acc +. Dist.sample (Dist.Normal { mean = 0.; std = 0.05 }) rng
  in
  let response = Array.map simulate design in
  let effects = Polynomial.main_effects ~design ~response in
  print_string (Polynomial.main_effects_plot effects);
  Util.note "";
  Util.table
    [ "factor"; "low mean"; "high mean"; "effect"; "true 2*beta" ]
    (Array.to_list
       (Array.mapi
          (fun j (e : Polynomial.main_effect) ->
            [ Printf.sprintf "x%d" (j + 1); Util.f2 e.Polynomial.low_mean;
              Util.f2 e.Polynomial.high_mean; Util.f2 e.Polynomial.effect;
              Util.f2 (2. *. betas.(j)) ])
          effects));
  (* The accompanying half-normal (Daniel) diagnostic. *)
  let terms = Polynomial.terms_up_to ~factors:7 ~order:1 in
  let fit = Polynomial.fit ~terms ~design ~response in
  let points = Polynomial.half_normal fit in
  let significant = Polynomial.significant_terms fit in
  Util.note "";
  Util.note "half-normal (Daniel) diagnostic of the effect sizes:";
  List.iter
    (fun (pt : Polynomial.half_normal_point) ->
      match pt.Polynomial.term_hn with
      | [ j ] ->
        Util.note "  x%d: |effect| = %5.2f at quantile %.2f%s" (j + 1)
          pt.Polynomial.abs_effect pt.Polynomial.quantile
          (if List.mem [ j ] significant then "   <- significant" else "")
      | _ -> ())
    points;
  Util.note "";
  Util.note
    "Paper shape: eight runs recover all seven sensitivities; the slopes in the";
  Util.note
    "plot identify x1, x3 (and mildly x5) as the active factors, and the same";
  Util.note
    "factors fall off the half-normal line through the inert effects — the";
  Util.note "Daniel-plot reading the paper describes."

(* FIG5 — the randomized Latin hypercube for two factors and nine runs. *)
let fig5 () =
  Util.section "FIG5" "Latin hypercube design, two factors, nine runs";
  let rng = Rng.create ~seed:23 () in
  let d = Design.nearly_orthogonal_lh ~rng ~factors:2 ~levels:9 ~tries:500 in
  Format.printf "%a@." Design.pp d;
  Util.note "";
  (* ASCII scatter of the design points. *)
  let canvas = Array.make_matrix 9 9 '.' in
  Array.iter
    (fun row ->
      let x = Float.to_int (row.(0) +. 4.) and y = Float.to_int (row.(1) +. 4.) in
      canvas.(8 - y).(x) <- 'o')
    d;
  Array.iter
    (fun line -> Util.note "%s" (String.init 9 (fun k -> line.(k))))
    canvas;
  Util.note "";
  Util.note "Latin property: %b; max |column correlation| = %.3f" (Design.is_latin d)
    (Design.max_abs_correlation d);
  Util.note
    "Paper shape: each of the nine levels -4..4 appears exactly once per";
  Util.note "factor, covering the space far better than 9 factorial corners."

let all = [
  ("fig1", "housing extrapolation (Figure 1)", fig1);
  ("fig2", "result caching / g(alpha) (Figure 2, Section 2.3)", fig2);
  ("fig3", "resolution III design (Figure 3)", fig3);
  ("fig4", "main-effects plot (Figure 4)", fig4);
  ("fig5", "Latin hypercube (Figure 5)", fig5);
]
