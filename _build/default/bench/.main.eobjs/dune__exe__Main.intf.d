bench/main.mli:
