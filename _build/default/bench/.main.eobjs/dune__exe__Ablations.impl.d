bench/ablations.ml: Array List Mde Printf Util
