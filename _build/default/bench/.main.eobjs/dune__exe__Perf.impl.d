bench/perf.ml: Algebra Analyze Array Bechamel Benchmark Catalog Expr Hashtbl Lazy List Mde Measure Plan Printf Schema Staged String Table Test Time Util Value
