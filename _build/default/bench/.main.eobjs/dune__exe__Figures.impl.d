bench/figures.ml: Array Float Format List Mde Printf String Util
