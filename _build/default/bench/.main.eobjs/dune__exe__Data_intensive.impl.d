bench/data_intensive.ml: Algebra Array Catalog Expr Float Format Hashtbl List Mde Plan Printf Query Schema Table Util Value
