bench/util.ml: Array Float Format List Printf String Sys
