bench/main.ml: Ablations Array Data_intensive Figures Format Integration List Metamodeling Perf Sys Util
