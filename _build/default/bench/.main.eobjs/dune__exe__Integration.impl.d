bench/integration.ml: Array Float List Mde Util
