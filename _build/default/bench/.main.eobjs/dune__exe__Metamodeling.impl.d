bench/metamodeling.ml: Array Int List Mde Printf String Util
