(* Shared rendering helpers for the experiment harness. *)

let section id title =
  Format.printf "@.=== %s: %s ===@.@." id title

let note fmt = Format.printf ("  " ^^ fmt ^^ "@.")

let table header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Format.printf "%s%*s" (if i = 0 then "  " else "  ") (List.nth widths i) cell)
      cells;
    Format.printf "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let g3 x = Printf.sprintf "%.3g" x
let i d = string_of_int d
let pct x = Printf.sprintf "%.1f%%" (100. *. x)

let spark values =
  (* Unicode-free sparkline for a series. *)
  let glyphs = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |] in
  let lo = Array.fold_left Float.min infinity values in
  let hi = Array.fold_left Float.max neg_infinity values in
  let span = if hi > lo then hi -. lo else 1. in
  String.init (Array.length values) (fun idx ->
      let level =
        Float.to_int ((values.(idx) -. lo) /. span *. 7.999)
      in
      glyphs.(max 0 (min 7 level)))

let time_it f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)
