(* Section 3 experiments: MSM calibration of the herding market and
   particle-filter wildfire assimilation (Algorithm 2), plus the traffic
   motivation from Section 1. *)

module Market = Mde.Calibrate.Market
module Msm = Mde.Calibrate.Msm
module Assimilation = Mde.Assimilate.Assimilation
module Wildfire = Mde.Assimilate.Wildfire
module Traffic = Mde.Abs.Traffic
module Rng = Mde.Prob.Rng

(* TRAFFIC — the Section 1 motivation: rule-based agents reproduce jams. *)
let traffic () =
  Util.section "TRAFFIC" "behavioural rules reproduce jam formation (Section 1)";
  let params = Traffic.default_params in
  let densities = Array.init 12 (fun i -> 0.05 +. (0.07 *. float_of_int i)) in
  let points = Traffic.density_sweep ~seed:4 params ~densities ~warmup:150 ~measure:60 in
  Util.table
    [ "density"; "flow"; "mean speed"; "jammed" ]
    (Array.to_list
       (Array.map
          (fun (p : Traffic.sweep_point) ->
            [ Util.f3 p.Traffic.density; Util.f4 p.Traffic.mean_flow;
              Util.f3 p.Traffic.mean_speed_pt; Util.pct p.Traffic.jammed ])
          points));
  let flows = Array.map (fun (p : Traffic.sweep_point) -> p.Traffic.mean_flow) points in
  Util.note "";
  Util.note "flow vs density: %s" (Util.spark flows);
  Util.note
    "Paper shape: the fundamental diagram rises, peaks near the critical";
  Util.note
    "density, then falls as spontaneous jams absorb the flow — emergent from";
  Util.note "three behavioural rules, not from any fitted correlation."

(* MSM — calibration back-ends compared on the herding market. *)
let msm () =
  Util.section "MSM" "calibrating the herding ABS by simulated moments (Section 3.1)";
  let steps = 1500 and burn_in = 300 and n_agents = 50 and noise = 0.002 in
  let truth = [| 0.002; 0.3 |] in
  let data_rng = Rng.create ~seed:2024 () in
  let observed =
    Array.init 60 (fun _ ->
        Market.simulate_moments ~steps ~burn_in ~n_agents ~noise data_rng truth)
  in
  let problem =
    {
      Msm.simulate_moments = Market.simulate_moments ~steps ~burn_in ~n_agents ~noise;
      observed;
      bounds = [| (0.0005, 0.01); (0.0, 0.5) |];
      replications = 10;
      regularization = None;
    }
  in
  let y = Msm.observed_mean problem in
  Util.note "true theta = (a=%.4f, b=%.2f); observed moments: var=%.3g kurt=%.2f acf|r|=%.3f"
    truth.(0) truth.(1) y.(0) y.(1) y.(2);
  Util.note "";
  let row (result : Msm.result) =
    [ result.Msm.method_name; Util.f4 result.Msm.theta.(0); Util.f3 result.Msm.theta.(1);
      Util.g3 result.Msm.j_value; Util.i result.Msm.simulations ]
  in
  let ga = { Mde.Optimize.Genetic.default_params with population = 24; generations = 15 } in
  let ga_result = Msm.calibrate ~seed:2 problem (Msm.Genetic ga) in
  Util.table
    [ "method"; "a-hat"; "b-hat"; "J"; "ABS simulations" ]
    [
      row (Msm.calibrate ~seed:1 problem Msm.Nelder_mead);
      row ga_result;
      row (Msm.calibrate ~seed:3 problem (Msm.Random_search 120));
      row
        (Msm.calibrate ~seed:4 problem
           (Msm.Kriging_surrogate { design_points = 21; refine = true }));
    ];
  (* The [51] equifinality caveat: calibrations with similar J can still
     disagree on statistics outside the moment vector. *)
  let prediction theta =
    (* Out-of-moment prediction: the 99th percentile of |returns|. *)
    let rng = Rng.create ~seed:5 () in
    let qs =
      Array.init 10 (fun _ ->
          let params =
            { Market.n_agents; a = theta.(0); b = theta.(1); noise }
          in
          let r = Market.simulate_returns rng params ~steps ~burn_in in
          Mde.Prob.Stats.quantile (Array.map Float.abs r) 0.99)
    in
    Mde.Prob.Stats.mean qs
  in
  let ga_theta = ga_result.Msm.theta in
  let alt_theta = [| 0.004; 0.45 |] in
  let w = Msm.weight_matrix problem in
  let j_of theta = Msm.objective problem (Rng.create ~seed:6 ()) w theta in
  Util.note "";
  Util.note
    "equifinality check ([51]): two acceptable calibrations, different tails:";
  Util.note "  GA fit      (a=%.4f, b=%.2f): J=%.2f, predicted q99|r| = %.4f"
    ga_theta.(0) ga_theta.(1) (j_of ga_theta) (prediction ga_theta);
  Util.note "  alternative (a=%.4f, b=%.2f): J=%.2f, predicted q99|r| = %.4f"
    alt_theta.(0) alt_theta.(1) (j_of alt_theta) (prediction alt_theta);
  Util.note "";
  Util.note
    "Paper shape: heuristic global optimizers (GA) and the DOE+kriging";
  Util.note
    "surrogate recover theta; plain simplex search gets trapped on the rugged";
  Util.note
    "simulated objective — the pattern reported by Fabretti [17] and";
  Util.note
    "Salle-Yildizoglu [45]. Near-equal J values can still hide different";
  Util.note
    "out-of-moment behaviour — the calibration-range caution of [51] that";
  Util.note "motivates the paper's call for finer-grained calibration."

(* ALG2 — the wildfire particle filter, bootstrap vs sensor-aware. *)
let alg2 () =
  Util.section "ALG2" "wildfire data assimilation by particle filtering (Section 3.2)";
  let params = Wildfire.default_params ~width:20 ~height:20 in
  let run proposal =
    Assimilation.run_experiment ~seed:31 ~n_particles:120 ~params ~ignition:[ (10, 10) ]
      ~sensor_spacing:4 ~steps:14 ~proposal ()
  in
  let bootstrap = run `Bootstrap in
  let aware = run `Sensor_aware in
  Util.table
    [ "step"; "open-loop err"; "PF bootstrap err"; "PF sensor-aware err" ]
    (List.map
       (fun s ->
         let b = bootstrap.Assimilation.errors.(s - 1) in
         let a = aware.Assimilation.errors.(s - 1) in
         [ Util.i s; Util.i b.Assimilation.open_loop_error;
           Util.i b.Assimilation.filter_error; Util.i a.Assimilation.filter_error ])
       [ 2; 4; 6; 8; 10; 12; 14 ]);
  Util.note "";
  Util.note "mean error: open-loop %.1f, bootstrap PF %.1f, sensor-aware PF %.1f"
    bootstrap.Assimilation.mean_open_loop_error bootstrap.Assimilation.mean_filter_error
    aware.Assimilation.mean_filter_error;
  Util.note "";
  Util.note
    "Paper shape: assimilating the sensor stream keeps the state estimate close";
  Util.note
    "to the true fire while the unassimilated simulation drifts; the [57]";
  Util.note
    "sensor-aware proposal improves further on the bootstrap filter of [56]."

let all = [
  ("traffic", "jam formation (Section 1)", traffic);
  ("msm", "MSM calibration of the herding ABS (Section 3.1)", msm);
  ("alg2", "wildfire particle filter (Section 3.2, Algorithm 2)", alg2);
]
