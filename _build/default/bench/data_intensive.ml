(* Section 2 experiments: MCDB tuple bundles, SimSQL Markov chains,
   DSGD spline fitting, MapReduce time alignment, gridfield regrid
   optimization, and the Indemics intervention (Algorithm 1). *)

open Mde.Relational
module Mcdb = Mde.Mcdb
module Chain = Mde.Simsql.Chain
module Self_join = Mde.Simsql.Self_join
module Series = Mde.Timeseries.Series
module Spline = Mde.Timeseries.Spline
module Sgd = Mde.Timeseries.Sgd
module Align = Mde.Timeseries.Align
module Mr_align = Mde.Timeseries.Mr_align
module Synthetic = Mde.Timeseries.Synthetic
module Grid = Mde.Gridfields.Grid
module Gridfield = Mde.Gridfields.Gridfield
module Network = Mde.Epidemic.Network
module Indemics = Mde.Epidemic.Indemics
module Rng = Mde.Prob.Rng
module Dist = Mde.Prob.Dist

(* Backward-walk price imputation — the paper's "executing a backward
   random walk starting at a given current price in order to estimate
   missing prior prices". *)
let mcdb_imputation () =
  Util.note "";
  Util.note "price imputation — backward random walk over the Database facade:";
  let stocks =
    Table.create
      (Schema.of_list [ ("ticker", Value.Tstring); ("price", Value.Tfloat); ("vol", Value.Tfloat) ])
      [
        [| Value.String "AAA"; Value.Float 100.; Value.Float 0.02 |];
        [| Value.String "BBB"; Value.Float 40.; Value.Float 0.05 |];
      ]
  in
  let st =
    Mcdb.Stochastic_table.define ~name:"PRICE_HISTORY"
      ~schema:
        (Schema.of_list
           [ ("ticker", Value.Tstring); ("step", Value.Tint); ("price", Value.Tfloat) ])
      ~driver:stocks
      ~vg:(Mcdb.Vg.backward_walk ~steps:5)
      ~params:(fun row ->
        [ Table.create
            (Schema.of_list [ ("p", Value.Tfloat); ("v", Value.Tfloat) ])
            [ [| row.(1); row.(2) |] ] ])
      ~combine:(fun driver vg_row -> [| driver.(0); vg_row.(0); vg_row.(1) |])
  in
  let db = Mcdb.Database.create () in
  Mcdb.Database.add_table db "STOCKS" stocks;
  Mcdb.Database.add_stochastic db st;
  let rng = Rng.create ~seed:6 () in
  List.iter
    (fun ticker ->
      let samples =
        Mcdb.Database.monte_carlo db rng ~reps:500 ~query:(fun catalog ->
            let history = Catalog.find catalog "PRICE_HISTORY" in
            Query.of_table history
            |> Query.where Expr.(col "ticker" = string ticker && col "step" = int (-5))
            |> Query.select_cols [ "price" ] |> Query.scalar |> Value.to_float)
      in
      let e = Mcdb.Estimator.of_samples samples in
      Util.note "  %s price 5 ticks ago: %.2f +/- %.2f (q05 %.2f, q95 %.2f)" ticker
        e.Mcdb.Estimator.mean
        (1.96 *. e.Mcdb.Estimator.std_error)
        (Mcdb.Estimator.quantile samples 0.05)
        (Mcdb.Estimator.quantile samples 0.95))
    [ "AAA"; "BBB" ];
  Util.note
    "  (the imputed distribution widens with each ticker's volatility, as the";
  Util.note "  paper's VG-function example intends)"

(* MCDB — tuple-bundle execution vs naive instance-at-a-time. *)
let mcdb () =
  Util.section "MCDB" "tuple bundles vs instance-at-a-time query execution";
  let n_customers = 2_000 in
  let customers =
    Table.create
      (Schema.of_list [ ("cid", Value.Tint); ("region", Value.Tstring) ])
      (List.init n_customers (fun idx ->
           [| Value.Int idx; Value.String (if idx mod 2 = 0 then "east" else "west") |]))
  in
  let param =
    Table.create
      (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
      [ [| Value.Float 50.; Value.Float 12. |] ]
  in
  let st =
    Mcdb.Stochastic_table.define ~name:"SALES"
      ~schema:
        (Schema.of_list
           [ ("cid", Value.Tint); ("region", Value.Tstring); ("amount", Value.Tfloat) ])
      ~driver:customers ~vg:Mcdb.Vg.normal
      ~params:(fun _ -> [ param ])
      ~combine:(fun d v -> [| d.(0); d.(1); v.(0) |])
  in
  let pred = Expr.(col "region" = string "east" && col "amount" > float 60.) in
  let run_bundle n_reps =
    let rng = Rng.create ~seed:1 () in
    let bundle = Mcdb.Bundle.of_stochastic_table st rng ~n_reps in
    let selected = Mcdb.Bundle.select pred bundle in
    match Mcdb.Bundle.aggregate [ ("s", Mcdb.Bundle.Sum (Expr.col "amount")) ] selected with
    | [ (_, per) ] -> Mde.Prob.Stats.mean per.(0)
    | _ -> nan
  in
  let run_naive n_reps =
    let rng = Rng.create ~seed:1 () in
    let acc = ref 0. in
    for _ = 1 to n_reps do
      let instance = Mcdb.Stochastic_table.instantiate st rng in
      let filtered = Algebra.select pred instance in
      let total =
        Algebra.group_by ~keys:[] ~aggs:[ ("s", Algebra.Sum (Expr.col "amount")) ] filtered
      in
      acc := !acc +. Value.to_float (Table.get total 0 "s")
    done;
    !acc /. float_of_int n_reps
  in
  let rows =
    List.map
      (fun n_reps ->
        let bundle_answer, bundle_time = Util.time_it (fun () -> run_bundle n_reps) in
        let naive_answer, naive_time = Util.time_it (fun () -> run_naive n_reps) in
        [ Util.i n_reps; Util.g3 bundle_answer; Util.g3 naive_answer;
          Util.f3 bundle_time; Util.f3 naive_time;
          Util.f2 (naive_time /. Float.max 1e-9 bundle_time) ])
      [ 10; 50; 200 ]
  in
  Util.table
    [ "MC reps"; "bundle E[sum]"; "naive E[sum]"; "bundle s"; "naive s"; "speedup" ]
    rows;
  Util.note "";
  Util.note
    "Paper shape: executing the plan once over tuple bundles beats running it";
  Util.note
    "per Monte Carlo instance, with the gap widening in the repetition count.";
  (* Risk + threshold queries (MCDB-R, [5, 42]). *)
  let rng = Rng.create ~seed:2 () in
  let bundle = Mcdb.Bundle.of_stochastic_table st rng ~n_reps:2_000 in
  match Mcdb.Bundle.aggregate ~keys:[ "region" ] [ ("s", Mcdb.Bundle.Sum (Expr.col "amount")) ] bundle with
  | groups ->
    Util.note "";
    Util.note "risk extension — per-region revenue distribution over 2000 reps:";
    List.iter
      (fun (key, per) ->
        let samples = per.(0) in
        let q99 = Mcdb.Estimator.extreme_quantile samples 0.99 in
        let cte = Mcdb.Estimator.conditional_tail_expectation samples 0.99 in
        let p, (lo, hi) =
          Mcdb.Estimator.threshold_probability samples 50_200.
        in
        Util.note
          "  %s: q99 = %.0f, CTE99 = %.0f, P(revenue > 50200) = %.3f [%.3f, %.3f]"
          (Value.to_display key.(0)) q99 cte p lo hi)
      groups;
    mcdb_imputation ()

(* SIMSQL — a database-valued Markov chain over versioned stochastic
   tables, plus the ABS-step-as-self-join scalability observation. *)
let simsql () =
  Util.section "SIMSQL" "database-valued Markov chain + ABS step as self-join";
  let wealth_schema = Schema.of_list [ ("acct", Value.Tint); ("amount", Value.Tfloat) ] in
  let vol_schema = Schema.of_list [ ("sigma", Value.Tfloat) ] in
  let chain =
    {
      Chain.initial =
        (fun _ ->
          Chain.state_of_tables
            [
              ( "wealth",
                Table.create wealth_schema
                  (List.init 100 (fun a -> [| Value.Int a; Value.Float 100. |])) );
              ("vol", Table.create vol_schema [ [| Value.Float 1. |] ]);
            ]);
      transition =
        (fun rng state ->
          let vol = Value.to_float (Table.get (Chain.table state "vol") 0 "sigma") in
          let fresh_vol =
            Float.max 0.2
              (1. +. (0.7 *. (vol -. 1.))
              +. Dist.sample (Dist.Normal { mean = 0.; std = 0.15 }) rng)
          in
          let wealth = Chain.table state "wealth" in
          let next =
            Table.of_rows wealth_schema
              (Array.map
                 (fun row ->
                   [| row.(0);
                      Value.Float
                        (Value.to_float row.(1)
                        +. Dist.sample (Dist.Normal { mean = 0.5; std = vol }) rng) |])
                 (Table.rows wealth))
          in
          Chain.with_table
            (Chain.with_table state "wealth" next)
            "vol"
            (Table.create vol_schema [ [| Value.Float fresh_vol |] ]));
    }
  in
  let rng = Rng.create ~seed:3 () in
  let query state =
    Mde.Prob.Stats.mean (Table.column_floats (Chain.table state "wealth") "amount")
  in
  let reps = Chain.monte_carlo chain rng ~steps:30 ~reps:50 ~query in
  let at_step s = Array.map (fun rep -> rep.(s)) reps in
  Util.table
    [ "version"; "E[mean wealth]"; "sd across reps" ]
    (List.map
       (fun s ->
         let xs = at_step s in
         [ Printf.sprintf "D[%d]" s; Util.f2 (Mde.Prob.Stats.mean xs);
           Util.f2 (Mde.Prob.Stats.std xs) ])
       [ 0; 5; 10; 20; 30 ]);
  Util.note "";
  Util.note
    "Paper shape: the chain D[0], D[1], ... drifts upward (+0.5/step) while the";
  Util.note "versioned vol table recursively parametrizes the wealth updates.";
  (* Self-join scalability: candidate pairs with and without bucketing. *)
  let agent_schema =
    Schema.of_list
      [ ("id", Value.Tint); ("x", Value.Tfloat); ("y", Value.Tfloat); ("v", Value.Tfloat) ]
  in
  let rng = Rng.create ~seed:4 () in
  let agents n =
    Table.create agent_schema
      (List.init n (fun a ->
           [| Value.Int a; Value.Float (Rng.float_range rng 0. 30.);
              Value.Float (Rng.float_range rng 0. 30.); Value.Float 0. |]))
  in
  let neighbor schema a b =
    let get row c = Value.to_float row.(Schema.column_index schema c) in
    let dx = get a "x" -. get b "x" and dy = get a "y" -. get b "y" in
    (dx *. dx) +. (dy *. dy) <= 1.
  in
  let update _ _ row nbrs =
    let out = Array.copy row in
    out.(3) <- Value.Float (float_of_int (List.length nbrs));
    out
  in
  Util.note "";
  Util.note "ABS step as self-join — candidate pairs examined:";
  Util.table
    [ "agents"; "full join"; "grid-bucketed"; "reduction" ]
    (List.map
       (fun n ->
         let t = agents n in
         let r1 = Rng.create ~seed:5 () and r2 = Rng.create ~seed:5 () in
         let _, full = Self_join.step ~neighbor ~update r1 t in
         let _, bucketed =
           Self_join.step
             ~buckets:(Self_join.grid_buckets ~x:"x" ~y:"y" ~cell:1.0 agent_schema)
             ~neighbor ~update r2 t
         in
         [ Util.i n; Util.i full.Self_join.candidate_pairs;
           Util.i bucketed.Self_join.candidate_pairs;
           Util.f2
             (float_of_int full.Self_join.candidate_pairs
             /. float_of_int (max 1 bucketed.Self_join.candidate_pairs)) ])
       [ 200; 500; 1000 ]);
  Util.note "";
  Util.note
    "Paper shape: because agents interact only with nearby agents, partitioning";
  Util.note "the join makes the step scale far below the quadratic naive cost."

(* SPLINE — cubic-spline constants via the direct Thomas solve vs the
   stratified DSGD of [21], with shuffle accounting. *)
let spline () =
  Util.section "SPLINE" "cubic-spline constants: Thomas solve vs stratified DSGD";
  let rows =
    List.map
      (fun knots ->
        let series = Synthetic.smooth_signal ~seed:11 ~knots ~span:100. () in
        let a, b = Spline.system series in
        let problem = Sgd.of_tridiag a b in
        let direct, direct_time = Util.time_it (fun () -> Mde.Linalg.Tridiag.solve a b) in
        let rng = Rng.create ~seed:12 () in
        let result, dsgd_time =
          Util.time_it (fun () ->
              Sgd.dsgd ~rng ~schedule:(Sgd.Row_normalized 1.0) ~sub_epochs:100_000
                ~tol:1e-8
                ~strata:(Sgd.tridiagonal_strata ~dim:problem.Sgd.dim)
                problem)
        in
        let max_err =
          let worst = ref 0. in
          Array.iteri
            (fun idx v -> worst := Float.max !worst (Float.abs (v -. direct.(idx))))
            result.Sgd.solution;
          !worst
        in
        [ Util.i knots; Util.f3 direct_time; Util.f3 dsgd_time;
          Util.i result.Sgd.stratum_switches; Util.g3 max_err;
          Util.g3 result.Sgd.final_residual ])
      [ 1_000; 10_000; 50_000 ]
  in
  Util.table
    [ "knots"; "Thomas s"; "DSGD s"; "stratum switches"; "max |x-x*|"; "residual" ]
    rows;
  Util.note "";
  Util.note
    "Paper shape: on one node Thomas wins on raw time, but it is inherently";
  Util.note
    "sequential; DSGD reaches the same constants while synchronizing only at";
  Util.note
    "stratum switches (hundreds of barriers — 'negligible shuffling' — vs";
  Util.note "shipping the whole tridiagonal system through a cluster shuffle)."

(* ALIGN — windowed interpolation on the MapReduce substrate. *)
let align () =
  Util.section "ALIGN" "time alignment at scale on the MapReduce substrate";
  let source = Synthetic.smooth_signal ~seed:13 ~knots:5_000 ~span:1_000. () in
  let target_times = Series.regular_times ~start:0.05 ~step:0.013 ~count:60_000 in
  let rows =
    List.map
      (fun (name, kind) ->
        let result, elapsed =
          Util.time_it (fun () ->
              Mr_align.interpolate ~partitions:16 ~kind source ~target_times)
        in
        let seq, seq_time =
          Util.time_it (fun () ->
              Align.align
                (Align.Interpolate (match kind with `Linear -> Align.Linear | `Cubic -> Align.Cubic))
                source ~target_times)
        in
        let rmse =
          Mde.Prob.Stats.root_mean_square_error
            (Series.values result.Mr_align.target)
            (Series.values seq)
        in
        [ name; Util.i (Series.length result.Mr_align.target);
          Util.i result.Mr_align.interpolation_stats.Mde.Mapred.Job.records_shuffled;
          Util.i result.Mr_align.sort_stats.Mde.Mapred.Job.records_shuffled;
          Util.f3 elapsed; Util.f3 seq_time; Util.g3 rmse ])
      [ ("linear", `Linear); ("cubic spline", `Cubic) ]
  in
  Util.table
    [ "kind"; "targets"; "map shuffle"; "sort shuffle"; "MR s"; "seq s"; "RMSE vs seq" ]
    rows;
  Util.note "";
  Util.note
    "Paper shape: windows make interpolation embarrassingly parallel (the only";
  Util.note
    "shuffle is the final parallel sort), and the distributed answer matches";
  Util.note "the sequential aligner to machine precision.";
  (* Aggregation direction, for completeness. *)
  let coarse = Series.regular_times ~start:10. ~step:10. ~count:99 in
  let aligned, cls = Align.auto source ~target_times:coarse in
  Util.note "";
  Util.note "aggregation direction: classified %s, %d -> %d ticks"
    (match cls with
    | Align.Needs_aggregation -> "Needs_aggregation"
    | Align.Needs_interpolation -> "Needs_interpolation"
    | Align.Identical -> "Identical")
    (Series.length source) (Series.length aligned)

(* GRID — gridfield regrid with the restriction-pushdown rewrite. *)
let grid () =
  Util.section "GRID" "gridfield regrid and the restrict/regrid commutation";
  let fine_n = 96 and coarse_n = 24 in
  let fine = Grid.regular_2d ~nx:fine_n ~ny:fine_n in
  let coarse = Grid.regular_2d ~nx:coarse_n ~ny:coarse_n in
  let fine_faces = Grid.cells_of_dim fine 2 in
  let coarse_faces = Grid.cells_of_dim coarse 2 in
  (* Bind a smooth field (e.g. salinity) to the fine faces. *)
  let field =
    Gridfield.bind fine ~dim:2 (fun id ->
        let pos = id mod (fine_n * fine_n) in
        sin (float_of_int (pos mod fine_n) /. 9.)
        +. cos (float_of_int (pos / fine_n) /. 13.))
  in
  let index_of = Hashtbl.create 1024 in
  Array.iteri (fun idx (c : Grid.cell) -> Hashtbl.add index_of c.Grid.id idx) fine_faces;
  let assignment id =
    match Hashtbl.find_opt index_of id with
    | None -> None
    | Some idx ->
      let fx = idx mod fine_n and fy = idx / fine_n in
      let cx = fx * coarse_n / fine_n and cy = fy * coarse_n / fine_n in
      Some coarse_faces.((cy * coarse_n) + cx).Grid.id
  in
  (* Region: the left quarter of the coarse grid. *)
  let coarse_index = Hashtbl.create 1024 in
  Array.iteri (fun idx (c : Grid.cell) -> Hashtbl.add coarse_index c.Grid.id idx) coarse_faces;
  let region id =
    match Hashtbl.find_opt coarse_index id with
    | Some idx -> idx mod coarse_n < coarse_n / 4
    | None -> false
  in
  let (naive_field, naive_stats), naive_time =
    Util.time_it (fun () ->
        Gridfield.naive_regrid_then_restrict ~region ~assignment
          ~aggregate:Gridfield.Average ~target:coarse ~target_dim:2 field)
  in
  let (opt_field, opt_stats), opt_time =
    Util.time_it (fun () ->
        Gridfield.restrict_then_regrid ~region ~assignment ~aggregate:Gridfield.Average
          ~target:coarse ~target_dim:2 field)
  in
  Util.table
    [ "plan"; "source cells touched"; "bound targets"; "time s" ]
    [
      [ "regrid then restrict"; Util.i naive_stats.Gridfield.source_cells_touched;
        Util.i (Gridfield.size naive_field); Util.f3 naive_time ];
      [ "restrict pushed down"; Util.i opt_stats.Gridfield.source_cells_touched;
        Util.i (Gridfield.size opt_field); Util.f3 opt_time ];
    ];
  let equal =
    Gridfield.size naive_field = Gridfield.size opt_field
    && Array.for_all
         (fun id ->
           Float.abs (Gridfield.value naive_field id -. Gridfield.value opt_field id)
           < 1e-9)
         (Gridfield.cells naive_field)
  in
  Util.note "";
  Util.note "results identical: %b" equal;
  Util.note
    "Paper shape: the Howe-Maier commutation lets the restriction prune ~%d%%"
    (100
    - (100 * opt_stats.Gridfield.source_cells_touched
      / max 1 naive_stats.Gridfield.source_cells_touched));
  Util.note "of the source cells before the expensive regrid aggregation."

(* ALG1 — the Indemics intervention experiment. *)
let alg1 () =
  Util.section "ALG1" "Indemics: SQL-specified vaccination policy (Algorithm 1)";
  let days = 150 in
  let policy engine =
    let cat = Indemics.catalog engine in
    let person = Catalog.find cat "Person" in
    let infected = Catalog.find cat "InfectedPerson" in
    let preschool =
      Query.of_table person
      |> Query.where Expr.(col "age" >= int 0 && col "age" <= int 4)
      |> Query.select_cols [ "pid" ]
      |> Query.run
    in
    let n_preschool = Table.cardinality preschool in
    let n_infected_preschool =
      Query.of_table preschool
      |> Query.join ~on:[ ("pid", "ipid") ] (Algebra.rename [ ("pid", "ipid") ] infected)
      |> Query.count
    in
    if float_of_int n_infected_preschool > 0.01 *. float_of_int n_preschool then
      Indemics.apply_intervention engine
        ~pids:
          (Array.to_list (Table.rows preschool) |> List.map (fun r -> Value.to_int r.(0)))
        Indemics.Vaccinate
    else 0
  in
  let run ?(params = Indemics.default_params) p =
    let network = Network.synthetic ~seed:7 ~n:10_000 ~community_degree:4. () in
    let engine = Indemics.create ~seed:12 network params in
    Indemics.run engine ~days ~policy:p
  in
  let baseline = run None in
  let with_policy = run (Some policy) in
  (* Endogenous behaviour instead of mandated policy: fear-driven
     distancing (§2.4's behavioural state). *)
  let with_fear =
    run
      ~params:
        { Indemics.default_params with
          Indemics.fear_gain = 0.04;
          fear_distancing = 0.45;
          edge_churn_per_1000 = 5
        }
      None
  in
  let peak records =
    Array.fold_left (fun m (r : Indemics.day_record) -> max m r.Indemics.infectious) 0 records
  in
  let vaccinated records =
    records.(Array.length records - 1).Indemics.vaccinated
  in
  Util.table
    [ "metric"; "baseline"; "Algorithm 1"; "fear-driven distancing" ]
    [
      [ "attack rate"; Util.pct (Indemics.attack_rate baseline);
        Util.pct (Indemics.attack_rate with_policy);
        Util.pct (Indemics.attack_rate with_fear) ];
      [ "peak infectious"; Util.i (peak baseline); Util.i (peak with_policy);
        Util.i (peak with_fear) ];
      [ "vaccinated"; Util.i (vaccinated baseline); Util.i (vaccinated with_policy);
        Util.i (vaccinated with_fear) ];
    ];
  let curve records =
    Util.spark
      (Array.map (fun (r : Indemics.day_record) -> float_of_int r.Indemics.infectious) records)
  in
  Util.note "";
  Util.note "infectious curve (baseline):    %s" (curve baseline);
  Util.note "infectious curve (Algorithm 1): %s" (curve with_policy);
  Util.note "";
  Util.note
    "Paper shape: pausing the simulation to run SQL queries over Person and";
  Util.note
    "InfectedPerson and vaccinating the selected subpopulation flattens the";
  Util.note
    "epidemic at a fraction of the population vaccinated; endogenous fear-";
  Util.note
    "driven distancing (the behavioural state of Indemics nodes) also damps";
  Util.note "the epidemic with no mandated intervention at all."

(* PLANOPT — classical query optimization with catalog statistics, the
   machinery Section 2.3 says simulation-run optimization subsumes. *)
let planopt () =
  Util.section "PLANOPT" "catalog-driven query optimization (Section 2.3's subsumed problem)";
  let rng = Rng.create ~seed:8 () in
  let cat = Catalog.create () in
  let regions = 8 and customers = 2_000 and orders = 40_000 in
  Catalog.register cat "regions"
    (Table.create
       (Schema.of_list [ ("rid", Value.Tint); ("rname", Value.Tstring) ])
       (List.init regions (fun i -> [| Value.Int i; Value.String (Printf.sprintf "r%d" i) |])));
  Catalog.register cat "customers"
    (Table.create
       (Schema.of_list [ ("cid", Value.Tint); ("crid", Value.Tint) ])
       (List.init customers (fun i -> [| Value.Int i; Value.Int (Rng.int rng regions) |])));
  Catalog.register cat "orders"
    (Table.create
       (Schema.of_list [ ("oid", Value.Tint); ("ocid", Value.Tint); ("amount", Value.Tfloat) ])
       (List.init orders (fun i ->
            [| Value.Int i; Value.Int (Rng.int rng customers);
               Value.Float (Rng.float_range rng 0. 100.) |])));
  let naive =
    Plan.select
      Expr.(col "rname" = string "r3" && col "amount" > float 90.)
      (Plan.join ~on:[ ("ocid", "cid") ]
         (Plan.scan "orders")
         (Plan.join ~on:[ ("crid", "rid") ] (Plan.scan "customers") (Plan.scan "regions")))
  in
  let optimized = Plan.optimize cat naive in
  let report label plan =
    let cost = Plan.estimate_cost cat plan in
    let result, elapsed = Util.time_it (fun () -> Plan.execute cat plan) in
    [ label; Util.g3 cost.Plan.intermediate_rows; Util.g3 cost.Plan.estimated_rows;
      Util.i (Table.cardinality result); Util.f3 elapsed ]
  in
  Util.table
    [ "plan"; "est. intermediate rows"; "est. result"; "actual result"; "time s" ]
    [ report "as written" naive; report "optimized" optimized ];
  Util.note "";
  Util.note "optimized plan:";
  Format.printf "%a@." Plan.pp optimized;
  Util.note "";
  Util.note
    "Paper shape: selection pushdown + statistics-driven join ordering return";
  Util.note
    "exactly the same rows while shrinking the intermediate volume and the";
  Util.note
    "wall-clock by roughly an order of magnitude — the catalog-statistics";
  Util.note "machinery Section 2.3 wants reused for simulation-run optimization."

let all = [
  ("mcdb", "tuple bundles, risk and threshold queries (Section 2.1)", mcdb);
  ("simsql", "database-valued Markov chain, self-join ABS (Section 2.1)", simsql);
  ("spline", "DSGD vs Thomas for spline constants (Section 2.2)", spline);
  ("align", "MapReduce time alignment (Section 2.2)", align);
  ("grid", "gridfield regrid optimization (Section 2.2)", grid);
  ("alg1", "Indemics intervention (Section 2.4, Algorithm 1)", alg1);
  ("planopt", "catalog-driven query optimization (Section 2.3)", planopt);
]
