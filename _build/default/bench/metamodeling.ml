(* Section 4 experiments: kriging metamodels and factor screening, plus
   the PDES-MAS range-query study from Section 2.4. *)

module Design = Mde.Metamodel.Design
module Kriging = Mde.Metamodel.Kriging
module Screening = Mde.Metamodel.Screening
module Range_query = Mde.Abs.Range_query
module Rng = Mde.Prob.Rng
module Dist = Mde.Prob.Dist

(* KRIG — Gaussian-process metamodel quality and "simulation on demand". *)
let krig () =
  Util.section "KRIG" "Gaussian-process metamodels: interpolation and smoothing";
  (* A 2-d deterministic response over [0,1]^2. *)
  let f x = sin (4. *. x.(0)) +. (0.8 *. x.(1) *. x.(1)) +. (0.3 *. x.(0) *. x.(1)) in
  let rng = Rng.create ~seed:6 () in
  let rows =
    List.map
      (fun levels ->
        let coded = Design.nearly_orthogonal_lh ~rng ~factors:2 ~levels ~tries:100 in
        let design = Design.scale coded ~ranges:[| (0., 1.); (0., 1.) |] in
        let response = Array.map f design in
        let model, fit_time = Util.time_it (fun () -> Kriging.fit_mle ~design ~response ()) in
        (* Out-of-sample error on a 20x20 grid. *)
        let err = ref 0. and count = ref 0 in
        for a = 0 to 19 do
          for b = 0 to 19 do
            let x = [| float_of_int a /. 19.; float_of_int b /. 19. |] in
            err := !err +. ((Kriging.predict model x -. f x) ** 2.);
            incr count
          done
        done;
        let rmse = sqrt (!err /. float_of_int !count) in
        [ Util.i levels; Util.g3 rmse; Util.f3 fit_time ])
      [ 9; 17; 33 ]
  in
  Util.table [ "design points"; "grid RMSE"; "fit time s" ] rows;
  Util.note "";
  (* Stochastic kriging under noise. *)
  let design =
    Design.scale
      (Design.latin_hypercube ~rng ~factors:1 ~levels:15)
      ~ranges:[| (0., 1.) |]
  in
  let reps = 8 in
  let noisy = Array.map (fun x ->
      let samples = Array.init reps (fun _ ->
          f [| x.(0); 0.5 |] +. Dist.sample (Dist.Normal { mean = 0.; std = 0.3 }) rng)
      in
      (Mde.Prob.Stats.mean samples, Mde.Prob.Stats.variance samples /. float_of_int reps))
      design
  in
  let means = Array.map fst noisy and noise_var = Array.map snd noisy in
  let deterministic = Kriging.fit ~theta:[| 20. |] ~tau2:1. ~design ~response:means () in
  let stochastic =
    Kriging.fit_stochastic ~theta:[| 20. |] ~tau2:1. ~design ~means
      ~noise_variances:noise_var ()
  in
  let rmse model =
    let acc = ref 0. in
    for a = 0 to 50 do
      let x = [| float_of_int a /. 50. |] in
      acc := !acc +. ((Kriging.predict model x -. f [| x.(0); 0.5 |]) ** 2.)
    done;
    sqrt (!acc /. 51.)
  in
  Util.note "noisy responses (sd 0.3, %d reps/point): kriging RMSE %.3f vs stochastic kriging RMSE %.3f"
    reps (rmse deterministic) (rmse stochastic);
  Util.note "";
  Util.note
    "Paper shape: the BLUP interpolates deterministic outputs exactly and its";
  Util.note
    "accuracy improves with the design size; under Monte Carlo noise the";
  Util.note
    "stochastic-kriging Sigma_eps term smooths instead of chasing the noise."

(* SCREEN — sequential bifurcation vs the factorial alternative, plus GP
   length-scale screening. *)
let screen () =
  Util.section "SCREEN" "factor screening: sequential bifurcation and GP length-scales";
  let rng = Rng.create ~seed:7 () in
  let rows =
    List.map
      (fun factors ->
        (* Plant 3 important factors at random positions. *)
        let perm = Rng.permutation rng factors in
        let important = [ perm.(0); perm.(1); perm.(2) ] in
        let important_sorted = List.sort Int.compare important in
        let simulate x =
          List.fold_left (fun acc j -> acc +. ((2. +. float_of_int (j mod 3)) *. x.(j))) 15. important
        in
        let result =
          Screening.sequential_bifurcation ~threshold:0.5 ~factors ~simulate ()
        in
        let found = result.Screening.important = important_sorted in
        [ Util.i factors;
          String.concat "," (List.map string_of_int important_sorted);
          String.concat "," (List.map string_of_int result.Screening.important);
          string_of_bool found; Util.i result.Screening.runs_used;
          Printf.sprintf "2^%d = %.0f" factors (2. ** float_of_int factors) ])
      [ 8; 16; 32; 64 ]
  in
  Util.table
    [ "factors"; "planted"; "found"; "exact"; "runs used"; "full factorial" ]
    rows;
  Util.note "";
  (* Morris elementary effects on a nonlinear response over the unit
     cube: importance AND nonlinearity per factor. *)
  let morris_rng = Rng.create ~seed:17 () in
  let morris =
    Mde.Metamodel.Morris.screen ~trajectories:12 ~rng:morris_rng ~factors:5
      ~simulate:(fun x -> (3. *. x.(0)) +. (4. *. x.(2) *. x.(2)) +. (0.5 *. x.(4)))
      ()
  in
  Util.note "Morris screening on y = 3 x1 + 4 x3^2 + 0.5 x5 (%d runs):"
    morris.Mde.Metamodel.Morris.runs_used;
  Array.iter
    (fun (st : Mde.Metamodel.Morris.factor_stats) ->
      Util.note "  x%d: mu* = %.2f  sigma = %.2f%s"
        (st.Mde.Metamodel.Morris.factor + 1)
        st.Mde.Metamodel.Morris.mu_star st.Mde.Metamodel.Morris.sigma
        (if st.Mde.Metamodel.Morris.sigma > 0.5 then "  <- nonlinear" else ""))
    morris.Mde.Metamodel.Morris.stats;
  Util.note "";
  (* GP screening cross-check on a nonlinear response. *)
  let rng = Rng.create ~seed:8 () in
  let design = Array.init 40 (fun _ -> Array.init 5 (fun _ -> Rng.float rng)) in
  let response = Array.map (fun x -> sin (5. *. x.(3)) +. (0.5 *. x.(1))) design in
  let gp = Screening.gp_screening ~design ~response in
  Util.note "GP screening on y = sin(5 x4) + 0.5 x2 (5 factors, 40 LH points):";
  List.iter
    (fun (j, theta) -> Util.note "  factor x%d: theta = %.3g" (j + 1) theta)
    gp.Screening.ranked;
  Util.note "";
  Util.note
    "Paper shape: group testing finds the important factors in O(k log n) runs";
  Util.note
    "instead of 2^n; Morris trajectories add a nonlinearity fingerprint per";
  Util.note
    "factor at r(k+1) runs; and for complex metamodels the fitted GP";
  Util.note "length-scales rank the active factors first."

(* RANGE — PDES-MAS synchronized range queries. *)
let range () =
  Util.section "RANGE" "synchronized range queries over shared state (Section 2.4)";
  let rng = Rng.create ~seed:9 () in
  let rows =
    List.concat_map
      (fun n_agents ->
        (* Two SSV stores over identical write streams: whole-history
           bounds vs time-bucketed bounds. *)
        let plain = Range_query.create ~n_agents () in
        let bucketed = Range_query.create ~bucket_width:1.0 ~n_agents () in
        (* Agents random-walk a scalar SSV at their own rates (ALPs
           progressing through simulated time unevenly). *)
        let clock = Array.make n_agents 0. in
        let position = Array.make n_agents 0. in
        for _ = 1 to n_agents * 20 do
          let agent = Rng.int rng n_agents in
          clock.(agent) <- clock.(agent) +. Rng.float_pos rng;
          position.(agent) <-
            position.(agent) +. Dist.sample (Dist.Normal { mean = 0.; std = 1. }) rng;
          Range_query.write plain ~agent ~time:clock.(agent) ~value:position.(agent);
          Range_query.write bucketed ~agent ~time:clock.(agent) ~value:position.(agent)
        done;
        (* Range queries at past instants (early times favour bucketing). *)
        let queries = 200 in
        let run t =
          let query_rng = Rng.create ~seed:(10 + n_agents) () in
          let visited = ref 0 and matched = ref 0 and correct = ref 0 in
          for _ = 1 to queries do
            let time = Rng.float_range query_rng 0. 6. in
            let lo = Rng.float_range query_rng (-6.) 4. in
            let hi = lo +. 2. in
            let via_tree, stats = Range_query.range_query t ~time ~lo ~hi in
            let brute = Range_query.range_query_brute t ~time ~lo ~hi in
            visited := !visited + stats.Range_query.clp_nodes_visited;
            matched := !matched + stats.Range_query.matched;
            if via_tree = brute then incr correct
          done;
          (!visited, !matched, !correct)
        in
        let pv, pm, pc = run plain in
        let bv, _, bc = run bucketed in
        [
          [ Util.i n_agents; "whole-history"; Util.i (2 * n_agents - 1);
            Util.f2 (float_of_int pv /. float_of_int queries);
            Util.f2 (float_of_int pm /. float_of_int queries);
            Printf.sprintf "%d/%d" pc queries ];
          [ ""; "time-bucketed"; "";
            Util.f2 (float_of_int bv /. float_of_int queries);
            ""; Printf.sprintf "%d/%d" bc queries ];
        ])
      [ 256; 1024; 4096 ]
  in
  Util.table
    [ "agents"; "bounds"; "CLP nodes"; "avg nodes visited"; "avg matches";
      "matches brute force" ]
    rows;
  Util.note "";
  Util.note
    "Paper shape: the CLP tree answers instantaneous range queries issued at";
  Util.note
    "different simulated times exactly (validated against a full scan);";
  Util.note
    "time-bucketed subtree bounds sharpen the pruning for queries early in";
  Util.note
    "simulated time — the algorithmic headroom [52] says is still open."

let all = [
  ("krig", "GP metamodels / stochastic kriging (Section 4.1)", krig);
  ("screen", "factor screening (Section 4.3)", screen);
  ("range", "PDES-MAS range queries (Section 2.4)", range);
]
