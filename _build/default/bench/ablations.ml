(* Ablation studies for the design choices DESIGN.md calls out: the
   result-caching regimes, DSGD step-size schedules, the NOLH search
   budget, and the Splash experiment manager end-to-end. *)

module Rc = Mde.Composite.Result_cache
module Sgd = Mde.Timeseries.Sgd
module Spline = Mde.Timeseries.Spline
module Synthetic = Mde.Timeseries.Synthetic
module Design = Mde.Metamodel.Design
module Kriging = Mde.Metamodel.Kriging
module Experiment = Mde.Composite.Experiment
module Splash = Mde.Composite.Splash
module Series = Mde.Timeseries.Series
module Rng = Mde.Prob.Rng
module Dist = Mde.Prob.Dist

(* RC — the optimal replication fraction across cost/variance regimes,
   including the paper's two degenerate limits. *)
let rc_ablation () =
  Util.section "RC-ABL" "result-caching regimes: where alpha* lands and what it buys";
  let rows =
    List.map
      (fun (label, stats) ->
        let star = Rc.alpha_star stats in
        [ label;
          Printf.sprintf "%.2g" (stats.Rc.c1 /. stats.Rc.c2);
          (if stats.Rc.v2 = 0. then "inf" else Printf.sprintf "%.1f" (stats.Rc.v1 /. stats.Rc.v2));
          Util.f4 star;
          Util.f2 (Rc.efficiency_gain stats) ])
      [
        ("M1 deterministic (V2 = 0)", { Rc.c1 = 10.; c2 = 1.; v1 = 5.; v2 = 0. });
        ("M2 pure transformer (V1 = V2)", { Rc.c1 = 10.; c2 = 1.; v1 = 5.; v2 = 5. });
        ("expensive insensitive M1", { Rc.c1 = 100.; c2 = 1.; v1 = 5.; v2 = 0.25 });
        ("cheap M1", { Rc.c1 = 1.; c2 = 10.; v1 = 5.; v2 = 1. });
        ("balanced", { Rc.c1 = 10.; c2 = 1.; v1 = 5.; v2 = 1. });
        ("M1 dominates variance", { Rc.c1 = 10.; c2 = 1.; v1 = 5.; v2 = 4.5 });
      ]
  in
  Util.table [ "regime"; "c1/c2"; "V1/V2"; "alpha*"; "gain g(1)/g(a*)" ] rows;
  Util.note "";
  Util.note
    "Paper shape: expensive/insensitive M1 -> cache aggressively (alpha* -> 0,";
  Util.note
    "large gains); M2 a deterministic transformer -> never cache (alpha* = 1);";
  Util.note "the V2 = 0 limit recovers 'run M1 once'."

(* DSGD — step-size schedule ablation on one spline system. *)
let dsgd_ablation () =
  Util.section "DSGD-ABL" "SGD schedule ablation on the spline system";
  let series = Synthetic.smooth_signal ~seed:11 ~knots:4_000 ~span:50. () in
  let a, b = Spline.system series in
  let problem = Sgd.of_tridiag a b in
  let strata = Sgd.tridiagonal_strata ~dim:problem.Sgd.dim in
  let budget = 300 in
  let rows =
    List.map
      (fun (label, schedule) ->
        let rng = Rng.create ~seed:12 () in
        let result = Sgd.dsgd ~rng ~schedule ~sub_epochs:budget ~strata problem in
        [ label; Util.i result.Sgd.sub_epochs; Util.g3 result.Sgd.final_residual ])
      [
        ("Kaczmarz omega=0.5", Sgd.Row_normalized 0.5);
        ("Kaczmarz omega=1.0", Sgd.Row_normalized 1.0);
        ("Kaczmarz omega=1.5", Sgd.Row_normalized 1.5);
        ("polynomial eps=0.2/n", Sgd.Polynomial { scale = 0.2; alpha = 1.0 });
        ("polynomial eps=0.2/n^1.5", Sgd.Polynomial { scale = 0.2; alpha = 1.5 });
      ]
  in
  Util.table [ "schedule"; "sub-epochs"; "residual after budget" ] rows;
  Util.note "";
  Util.note
    "Paper shape: the provably convergent n^-alpha schedules (1 <= alpha < 2)";
  Util.note
    "do descend but slowly; the row-normalized (exact line search) step makes";
  Util.note "DSGD practical, and over-relaxation (omega = 1.5) speeds it further."

(* NOLH — search budget vs achieved orthogonality. *)
let nolh_ablation () =
  Util.section "NOLH-ABL" "nearly-orthogonal LH: search budget vs correlation";
  let rows =
    List.map
      (fun tries ->
        let rng = Rng.create ~seed:13 () in
        let d = Design.nearly_orthogonal_lh ~rng ~factors:6 ~levels:17 ~tries in
        [ Util.i tries; Util.f4 (Design.max_abs_correlation d);
          string_of_bool (Design.is_latin d) ])
      [ 1; 10; 100; 1000 ]
  in
  Util.table [ "candidates tried"; "max |corr|"; "latin" ] rows;
  Util.note "";
  Util.note
    "Paper shape: randomized LHs are rarely orthogonal for r ~ n; cheap search";
  Util.note "(Cioppa-Lucas style) buys near-orthogonality without losing the";
  Util.note "space-filling Latin structure."

(* EXPMGR — the Splash experiment manager end-to-end: design over composite
   parameters -> templated runs -> stochastic-kriging metamodel. *)
let expmgr () =
  Util.section "EXPMGR" "experiment manager: design -> templated runs -> metamodel";
  (* Composite: arrival and service rates feed the discrete-event M/M/1
     station from the DES core. *)
  let queue_model =
    {
      Splash.name = "queue";
      description = "M/M/1 mean wait (discrete-event)";
      inputs = [ "arrival_rate"; "service_rate" ];
      outputs = [ "mean_wait" ];
      run =
        (fun rng inputs ->
          match inputs with
          | [ Splash.Number lambda; Splash.Number mu ] ->
            let r =
              Mde.Des.Queueing.simulate
                { Mde.Des.Queueing.arrival_rate = lambda; service_rate = mu; servers = 1 }
                ~customers:400 rng
            in
            [ Splash.Number r.Mde.Des.Queueing.mean_time_in_system ]
          | _ -> failwith "queue: bad inputs");
    }
  in
  let composite = Splash.compose ~name:"queue" ~models:[ queue_model ] ~transforms:[] in
  let result =
    Experiment.run ~replications:6
      ~rng:(Rng.create ~seed:14 ())
      ~design:(Experiment.Nolh { levels = 17; tries = 100 })
      ~parameters:
        [
          Experiment.number_parameter ~factor:"arrival_rate" ~dataset:"arrival_rate"
            ~low:1. ~high:6.;
          Experiment.number_parameter ~factor:"service_rate" ~dataset:"service_rate"
            ~low:7. ~high:12.;
        ]
      ~composite ~fixed_inputs:[]
      ~response:(fun outputs ->
        match List.assoc "mean_wait" outputs with Splash.Number w -> w | _ -> nan)
      ()
  in
  Util.note "design: 17-point NOLH over arrival_rate x service_rate, 6 replications";
  Util.note "total composite runs: %d" (Array.length result.Experiment.runs);
  let metamodel = Experiment.fit_kriging_metamodel result in
  Util.note "";
  Util.note "simulation on demand — metamodel vs fresh simulation:";
  let rng = Rng.create ~seed:15 () in
  let rows =
    List.map
      (fun (lambda, mu) ->
        let predicted = Kriging.predict metamodel [| lambda; mu |] in
        let direct =
          let samples =
            Array.init 30 (fun _ ->
                match
                  Splash.execute composite (Rng.split rng)
                    ~inputs:
                      [ ("arrival_rate", Splash.Number lambda);
                        ("service_rate", Splash.Number mu) ]
                with
                | outputs -> (
                  match List.assoc "mean_wait" outputs with
                  | Splash.Number w -> w
                  | _ -> nan))
          in
          Mde.Prob.Stats.mean samples
        in
        [ Util.f2 lambda; Util.f2 mu; Util.f3 predicted; Util.f3 direct ])
      [ (2., 8.); (3.5, 9.5); (5., 11.); (5.5, 7.5) ]
  in
  Util.table [ "arrival"; "service"; "metamodel"; "30-rep simulation" ] rows;
  Util.note "";
  Util.note
    "Paper shape: the manager turns factor values into the inputs each model";
  Util.note
    "expects (the templating mechanism), and the stochastic-kriging metamodel";
  Util.note "answers what-if queries instantly to within Monte Carlo noise."

let all = [
  ("rc_abl", "result-caching regime ablation (Section 2.3)", rc_ablation);
  ("dsgd_abl", "DSGD schedule ablation (Section 2.2)", dsgd_ablation);
  ("nolh_abl", "NOLH search-budget ablation (Section 4.2)", nolh_ablation);
  ("expmgr", "experiment manager end-to-end (Sections 2.2 + 4.2)", expmgr);
]
