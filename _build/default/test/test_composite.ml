module Splash = Mde_composite.Splash
module Rc = Mde_composite.Result_cache
module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist
module Series = Mde_timeseries.Series

let check_close eps = Alcotest.(check (float eps))

(* --- Splash composition --- *)

let demand_model =
  {
    Splash.name = "demand";
    description = "customer arrival intensity series";
    inputs = [ "base_rate" ];
    outputs = [ "arrivals" ];
    run =
      (fun rng inputs ->
        match inputs with
        | [ Splash.Number rate ] ->
          let times = Series.regular_times ~start:0. ~step:1. ~count:24 in
          let values =
            Array.map
              (fun _ ->
                rate
                *. (1. +. (0.2 *. Dist.sample (Dist.Normal { mean = 0.; std = 1. }) rng)))
              times
          in
          [ Splash.Timeseries (Series.create ~times ~values) ]
        | _ -> Alcotest.fail "demand: bad inputs");
  }

let queue_model =
  {
    Splash.name = "queue";
    description = "mean wait from arrival intensities";
    inputs = [ "arrivals" ];
    outputs = [ "mean_wait" ];
    run =
      (fun _rng inputs ->
        match inputs with
        | [ Splash.Timeseries s ] ->
          let load = Mde_prob.Stats.mean (Series.values s) in
          [ Splash.Number (load /. (10. -. Float.min 9.9 load)) ]
        | _ -> Alcotest.fail "queue: bad inputs");
  }

let test_compose_and_execute () =
  let c =
    Splash.compose ~name:"demand-queue" ~models:[ queue_model; demand_model ]
      ~transforms:[]
  in
  Alcotest.(check (list string)) "topological order" [ "demand"; "queue" ]
    (Splash.execution_order c);
  let rng = Rng.create ~seed:1 () in
  let out = Splash.execute c rng ~inputs:[ ("base_rate", Splash.Number 5.) ] in
  match List.assoc "mean_wait" out with
  | Splash.Number w -> Alcotest.(check bool) "wait positive" true (w > 0.)
  | _ -> Alcotest.fail "expected number"

let test_compose_detects_cycle () =
  let a =
    { Splash.name = "a"; description = ""; inputs = [ "y" ]; outputs = [ "x" ];
      run = (fun _ _ -> []) }
  in
  let b =
    { Splash.name = "b"; description = ""; inputs = [ "x" ]; outputs = [ "y" ];
      run = (fun _ _ -> []) }
  in
  Alcotest.(check bool) "cycle rejected" true
    (try
       ignore (Splash.compose ~name:"bad" ~models:[ a; b ] ~transforms:[]);
       false
     with Invalid_argument _ -> true)

let test_compose_detects_double_producer () =
  let a =
    { Splash.name = "a"; description = ""; inputs = []; outputs = [ "x" ];
      run = (fun _ _ -> [ Splash.Number 0. ]) }
  in
  let b =
    { Splash.name = "b"; description = ""; inputs = []; outputs = [ "x" ];
      run = (fun _ _ -> [ Splash.Number 0. ]) }
  in
  Alcotest.(check bool) "double producer rejected" true
    (try
       ignore (Splash.compose ~name:"bad" ~models:[ a; b ] ~transforms:[]);
       false
     with Invalid_argument _ -> true)

let test_missing_input_detected () =
  let c = Splash.compose ~name:"dq" ~models:[ demand_model; queue_model ] ~transforms:[] in
  let rng = Rng.create ~seed:2 () in
  Alcotest.(check bool) "missing dataset detected" true
    (try
       ignore (Splash.execute c rng ~inputs:[]);
       false
     with Invalid_argument _ -> true)

let test_transform_applied () =
  (* Align the demand model's 24 hourly ticks down to 6 four-hour ticks
     before the queue model reads them. *)
  let target_times = Series.regular_times ~start:3. ~step:4. ~count:6 in
  let c =
    Splash.compose ~name:"dq-aligned"
      ~models:[ demand_model; queue_model ]
      ~transforms:[ Splash.time_align_transform ~dataset:"arrivals" ~target_times ]
  in
  let rng = Rng.create ~seed:3 () in
  let out = Splash.execute c rng ~inputs:[ ("base_rate", Splash.Number 5.) ] in
  (match List.assoc "arrivals" out with
  | Splash.Timeseries s -> Alcotest.(check int) "aligned length" 6 (Series.length s)
  | _ -> Alcotest.fail "expected series");
  match List.assoc "mean_wait" out with
  | Splash.Number w -> Alcotest.(check bool) "still works" true (w > 0.)
  | _ -> Alcotest.fail "expected number"

let test_monte_carlo_reps () =
  let c = Splash.compose ~name:"dq" ~models:[ demand_model; queue_model ] ~transforms:[] in
  let rng = Rng.create ~seed:4 () in
  let samples =
    Splash.monte_carlo c rng ~inputs:[ ("base_rate", Splash.Number 5.) ] ~reps:20
      ~query:(fun out ->
        match List.assoc "mean_wait" out with
        | Splash.Number w -> w
        | _ -> nan)
  in
  Alcotest.(check int) "20 reps" 20 (Array.length samples);
  Alcotest.(check bool) "variation across reps" true
    (Mde_prob.Stats.std samples > 0.)

let test_monte_carlo_reproducible () =
  (* Identical seeds give bit-identical Monte Carlo runs — the property
     every experiment in EXPERIMENTS.md relies on. *)
  let c = Splash.compose ~name:"dq" ~models:[ demand_model; queue_model ] ~transforms:[] in
  let sample seed =
    Splash.monte_carlo c (Rng.create ~seed ())
      ~inputs:[ ("base_rate", Splash.Number 5.) ]
      ~reps:10
      ~query:(fun out ->
        match List.assoc "mean_wait" out with Splash.Number w -> w | _ -> nan)
  in
  Alcotest.(check (array (float 0.))) "same seed, same samples" (sample 99) (sample 99);
  Alcotest.(check bool) "different seed differs" true (sample 99 <> sample 100)

(* --- Result caching theory --- *)

let stats_example = { Rc.c1 = 9.; c2 = 1.; v1 = 1.; v2 = 0.25 }

let test_g_formulas () =
  (* α = 1: r = 1, g = (c1+c2)·(V1 + (2-2)V2) = (c1+c2)·V1. *)
  check_close 1e-9 "g(1)" 10. (Rc.g stats_example 1.);
  check_close 1e-9 "g~(1)" 10. (Rc.g_approx stats_example 1.);
  (* α = 0.5: r = 2, bracket = V1 + (4 - 3)·V2. *)
  check_close 1e-9 "g(0.5)" (5.5 *. 1.25) (Rc.g stats_example 0.5)

let test_alpha_star_interior () =
  (* α* = sqrt((c2/c1)/(V1/V2 − 1)) = sqrt((1/9)/3) = 1/sqrt(27). *)
  check_close 1e-9 "alpha*" (1. /. sqrt 27.) (Rc.alpha_star stats_example)

let test_alpha_star_degenerate () =
  check_close 1e-9 "V2=0 → 0" 0. (Rc.alpha_star { stats_example with v2 = 0. });
  check_close 1e-9 "V2=V1 → 1" 1. (Rc.alpha_star { stats_example with v2 = 1. });
  (* Huge c2 pushes α* to the cap. *)
  check_close 1e-9 "cap at 1" 1. (Rc.alpha_star { Rc.c1 = 1.; c2 = 100.; v1 = 1.; v2 = 0.5 })

let test_g_minimized_near_alpha_star () =
  let star = Rc.alpha_star stats_example in
  let g_star = Rc.g_approx stats_example star in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "g~(%g) >= g~(α*)" a)
        true
        (Rc.g_approx stats_example a >= g_star -. 1e-12))
    [ 0.05; 0.1; 0.3; 0.5; 0.8; 1.0 ]

let test_efficiency_gain_positive () =
  Alcotest.(check bool) "caching helps here" true (Rc.efficiency_gain stats_example > 1.)

(* --- RC estimator --- *)

(* M1 ~ N(5, 2²); M2 adds N(0, 1) noise: θ = 5, V1 = 5, V2 = 4. *)
let two_stage =
  {
    Rc.model1 = (fun rng -> Dist.sample (Dist.Normal { mean = 5.; std = 2. }) rng);
    model2 =
      (fun rng y1 -> y1 +. Dist.sample (Dist.Normal { mean = 0.; std = 1. }) rng);
  }

let test_rc_estimator_unbiased () =
  let rng = Rng.create ~seed:5 () in
  let estimates =
    Array.init 200 (fun _ ->
        (Rc.estimate two_stage rng ~n:100 ~alpha:0.3).Rc.theta_hat)
  in
  check_close 0.1 "mean of estimates" 5. (Mde_prob.Stats.mean estimates)

let test_rc_estimator_m_count () =
  let rng = Rng.create ~seed:6 () in
  let e = Rc.estimate two_stage rng ~n:100 ~alpha:0.25 in
  Alcotest.(check int) "m = ceil(αn)" 25 e.Rc.m;
  Alcotest.(check int) "n" 100 e.Rc.n

let test_rc_variance_matches_theory () =
  (* Empirical per-n variance at fixed n should track the bracket factor
     V1 + [2r − αr(r+1)]V2 from the g formula. *)
  let stats = { Rc.c1 = 1.; c2 = 1.; v1 = 5.; v2 = 4. } in
  let rng = Rng.create ~seed:7 () in
  let variance_at alpha =
    let xs =
      Array.init 600 (fun _ ->
          (Rc.estimate two_stage rng ~n:60 ~alpha).Rc.theta_hat)
    in
    Mde_prob.Stats.variance xs
  in
  let v_full = variance_at 1.0 in
  let v_cached = variance_at 0.25 in
  (* At fixed n, caching with positive V2 *raises* per-n variance. *)
  Alcotest.(check bool) "per-n variance rises with caching" true (v_cached > v_full);
  (* The bracket factor ratio for α = 0.25: r = 4, factor = V1 + (8 − 5)V2 = 17
     vs V1 = 5 at α = 1 → ratio 3.4. Empirical ratio within a factor ~1.6. *)
  let predicted = 17. /. 5. in
  let observed = v_cached /. v_full in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f near %.2f" observed predicted)
    true
    (observed > predicted /. 1.6 && observed < predicted *. 1.6);
  ignore stats

let test_rc_budget () =
  let rng = Rng.create ~seed:8 () in
  let stats = { Rc.c1 = 10.; c2 = 1.; v1 = 5.; v2 = 4. } in
  let e = Rc.estimate_under_budget two_stage rng ~budget:200. ~alpha:0.5 ~stats in
  (* C_n = ceil(0.5n)·10 + n ≤ 200: n = 32 gives 192, n = 33 gives 203. *)
  Alcotest.(check int) "N(c)" 32 e.Rc.n;
  Alcotest.(check bool) "tiny budget rejected" true
    (try
       ignore (Rc.estimate_under_budget two_stage rng ~budget:0.5 ~alpha:0.5 ~stats);
       false
     with Invalid_argument _ -> true)

let test_pilot_recovers_variance_components () =
  let rng = Rng.create ~seed:9 () in
  let p = Rc.pilot two_stage rng ~inputs:400 ~outputs_per_input:4 in
  let s = p.Rc.statistics in
  (* True V1 = 4 + 1 = 5, V2 = 4. *)
  Alcotest.(check bool)
    (Printf.sprintf "v1=%.2f near 5" s.Rc.v1)
    true
    (s.Rc.v1 > 4.0 && s.Rc.v1 < 6.0);
  Alcotest.(check bool)
    (Printf.sprintf "v2=%.2f near 4" s.Rc.v2)
    true
    (s.Rc.v2 > 3.0 && s.Rc.v2 < 5.0);
  Alcotest.(check bool) "costs positive" true (s.Rc.c1 > 0. && s.Rc.c2 > 0.)

let test_transformer_m2_detected () =
  (* M2 deterministic given Y1 → V1 = V2 → α* = 1 (no caching). *)
  let det = { Rc.model1 = two_stage.Rc.model1; model2 = (fun _ y1 -> 2. *. y1) } in
  let rng = Rng.create ~seed:10 () in
  let p = Rc.pilot det rng ~inputs:100 ~outputs_per_input:3 in
  check_close 1e-6 "alpha* = 1" 1. (Rc.alpha_star p.Rc.statistics)

module Experiment = Mde_composite.Experiment

(* --- Experiment manager --- *)

(* A cheap composite whose response is an analytic function of two
   parameters, so metamodel quality is checkable. *)
let analytic_model =
  {
    Splash.name = "analytic";
    description = "y = sin(3a) + b^2 + noise";
    inputs = [ "a"; "b" ];
    outputs = [ "y" ];
    run =
      (fun rng inputs ->
        match inputs with
        | [ Splash.Number a; Splash.Number b ] ->
          [ Splash.Number
              (sin (3. *. a) +. (b *. b)
              +. Dist.sample (Dist.Normal { mean = 0.; std = 0.02 }) rng) ]
        | _ -> Alcotest.fail "analytic: bad inputs");
  }

let analytic_composite =
  Splash.compose ~name:"analytic" ~models:[ analytic_model ] ~transforms:[]

let response outputs =
  match List.assoc "y" outputs with Splash.Number y -> y | _ -> nan

let run_experiment ?(replications = 1) design =
  Experiment.run ~replications ~rng:(Rng.create ~seed:21 ()) ~design
    ~parameters:
      [
        Experiment.number_parameter ~factor:"a" ~dataset:"a" ~low:0. ~high:1.;
        Experiment.number_parameter ~factor:"b" ~dataset:"b" ~low:(-1.) ~high:1.;
      ]
    ~composite:analytic_composite ~fixed_inputs:[] ~response ()

let test_experiment_full_factorial () =
  let result = run_experiment Experiment.Full_factorial in
  Alcotest.(check int) "4 corners" 4 (Array.length result.Experiment.design);
  Alcotest.(check int) "4 runs" 4 (Array.length result.Experiment.runs);
  (* Corners in natural units. *)
  Array.iter
    (fun point ->
      Alcotest.(check bool) "a at an endpoint" true (point.(0) = 0. || point.(0) = 1.);
      Alcotest.(check bool) "b at an endpoint" true (point.(1) = -1. || point.(1) = 1.))
    result.Experiment.design

let test_experiment_replications () =
  let result = run_experiment ~replications:5 (Experiment.Latin_hypercube { levels = 6 }) in
  Alcotest.(check int) "6 points" 6 (Array.length result.Experiment.design);
  Alcotest.(check int) "30 runs" 30 (Array.length result.Experiment.runs);
  Alcotest.(check bool) "variance measured" true
    (Array.exists (fun v -> v > 0.) result.Experiment.response_variance)

let test_experiment_metamodel () =
  let result = run_experiment ~replications:3 (Experiment.Nolh { levels = 15; tries = 40 }) in
  let model = Experiment.fit_kriging_metamodel result in
  (* Simulation on demand: check the metamodel against the analytic truth. *)
  let worst = ref 0. in
  for i = 0 to 10 do
    for j = 0 to 10 do
      let a = float_of_int i /. 10. and b = -1. +. (float_of_int j /. 5.) in
      let truth = sin (3. *. a) +. (b *. b) in
      worst :=
        Float.max !worst
          (Float.abs (Mde_metamodel.Kriging.predict model [| a; b |] -. truth))
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "metamodel max error %.3f < 0.3" !worst)
    true (!worst < 0.3)

let test_experiment_template_overrides () =
  (* A fixed input for "a" must be overridden by the templated factor. *)
  let result =
    Experiment.run ~rng:(Rng.create ~seed:22 ())
      ~design:Experiment.Full_factorial
      ~parameters:
        [ Experiment.number_parameter ~factor:"a" ~dataset:"a" ~low:0.5 ~high:0.5 ]
      ~composite:
        (Splash.compose ~name:"one"
           ~models:
             [
               {
                 Splash.name = "id";
                 description = "";
                 inputs = [ "a"; "b" ];
                 outputs = [ "y" ];
                 run =
                   (fun _ inputs ->
                     match inputs with
                     | [ Splash.Number a; Splash.Number b ] ->
                       [ Splash.Number (a +. b) ]
                     | _ -> Alcotest.fail "bad");
               };
             ]
           ~transforms:[])
      ~fixed_inputs:[ ("a", Splash.Number 99.); ("b", Splash.Number 1.) ]
      ~response:(fun outputs ->
        match List.assoc "y" outputs with Splash.Number y -> y | _ -> nan)
      ()
  in
  Array.iter
    (fun r ->
      check_close 1e-9 "templated a=0.5 used, fixed b kept" 1.5 r.Experiment.response)
    result.Experiment.runs

let test_transform_type_error () =
  let tr = Splash.time_align_transform ~dataset:"x" ~target_times:[| 0.; 1. |] in
  Alcotest.(check bool) "number rejected by aligner" true
    (try
       ignore (tr.Splash.apply (Splash.Number 3.));
       false
     with Invalid_argument _ -> true)

let test_resample_transform () =
  let tr = Splash.resample_transform ~dataset:"s" ~step:2. in
  let series =
    Series.create
      ~times:[| 0.; 1.; 2.; 3.; 4.; 5.; 6. |]
      ~values:[| 0.; 1.; 2.; 3.; 4.; 5.; 6. |]
  in
  match tr.Splash.apply (Splash.Timeseries series) with
  | Splash.Timeseries out ->
    Alcotest.(check int) "4 ticks at step 2" 4 (Series.length out);
    check_close 1e-9 "starts at range start" 0. (Series.start_time out)
  | _ -> Alcotest.fail "expected timeseries"

let () =
  Alcotest.run "mde_composite"
    [
      ( "splash",
        [
          Alcotest.test_case "compose + execute" `Quick test_compose_and_execute;
          Alcotest.test_case "cycle detection" `Quick test_compose_detects_cycle;
          Alcotest.test_case "double producer" `Quick test_compose_detects_double_producer;
          Alcotest.test_case "missing input" `Quick test_missing_input_detected;
          Alcotest.test_case "transform applied" `Quick test_transform_applied;
          Alcotest.test_case "monte carlo" `Quick test_monte_carlo_reps;
          Alcotest.test_case "reproducible" `Quick test_monte_carlo_reproducible;
        ] );
      ( "theory",
        [
          Alcotest.test_case "g formulas" `Quick test_g_formulas;
          Alcotest.test_case "alpha* interior" `Quick test_alpha_star_interior;
          Alcotest.test_case "alpha* degenerate" `Quick test_alpha_star_degenerate;
          Alcotest.test_case "g minimized at alpha*" `Quick test_g_minimized_near_alpha_star;
          Alcotest.test_case "efficiency gain" `Quick test_efficiency_gain_positive;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "full factorial" `Quick test_experiment_full_factorial;
          Alcotest.test_case "replications" `Quick test_experiment_replications;
          Alcotest.test_case "metamodel on demand" `Quick test_experiment_metamodel;
          Alcotest.test_case "template overrides" `Quick test_experiment_template_overrides;
          Alcotest.test_case "resample transform" `Quick test_resample_transform;
          Alcotest.test_case "transform type error" `Quick test_transform_type_error;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "unbiased" `Slow test_rc_estimator_unbiased;
          Alcotest.test_case "m count" `Quick test_rc_estimator_m_count;
          Alcotest.test_case "variance vs theory" `Slow test_rc_variance_matches_theory;
          Alcotest.test_case "budget constrained" `Quick test_rc_budget;
          Alcotest.test_case "pilot ANOVA" `Slow test_pilot_recovers_variance_components;
          Alcotest.test_case "transformer M2" `Quick test_transformer_m2_detected;
        ] );
    ]
