module Nm = Mde_optimize.Nelder_mead
module Genetic = Mde_optimize.Genetic
module Search = Mde_optimize.Search
module Rng = Mde_prob.Rng

let check_close eps = Alcotest.(check (float eps))

let sphere x = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. x

let shifted_quadratic x =
  ((x.(0) -. 3.) ** 2.) +. (2. *. ((x.(1) +. 1.) ** 2.)) +. 5.

let rosenbrock x =
  let a = 1. -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
  (a *. a) +. (100. *. b *. b)

let test_nm_quadratic () =
  let r = Nm.minimize ~f:shifted_quadratic ~x0:[| 0.; 0. |] () in
  Alcotest.(check bool) "converged" true r.Nm.converged;
  check_close 1e-3 "x0" 3. r.Nm.x.(0);
  check_close 1e-3 "x1" (-1.) r.Nm.x.(1);
  check_close 1e-5 "f" 5. r.Nm.f

let test_nm_rosenbrock () =
  let r = Nm.minimize ~max_iter:5000 ~f:rosenbrock ~x0:[| -1.2; 1. |] () in
  check_close 0.01 "x0" 1. r.Nm.x.(0);
  check_close 0.02 "x1" 1. r.Nm.x.(1)

let test_nm_1d () =
  let r = Nm.minimize ~f:(fun x -> Float.abs (x.(0) -. 7.)) ~x0:[| 0. |] () in
  check_close 1e-3 "1d" 7. r.Nm.x.(0)

let test_nm_counts_evaluations () =
  let count = ref 0 in
  let f x =
    incr count;
    sphere x
  in
  let r = Nm.minimize ~f ~x0:[| 1.; 1. |] () in
  Alcotest.(check int) "counter matches" !count r.Nm.evaluations

let test_nm_box () =
  (* Unconstrained optimum at (3,-1); box forces x0 <= 2. *)
  let bounds = [| (0., 2.); (-5., 5.) |] in
  let r = Nm.minimize_box ~bounds ~f:shifted_quadratic ~x0:[| 1.; 0. |] () in
  Alcotest.(check bool) "within box" true (r.Nm.x.(0) >= 0. && r.Nm.x.(0) <= 2.);
  check_close 0.01 "hits boundary" 2. r.Nm.x.(0);
  check_close 0.01 "free coordinate" (-1.) r.Nm.x.(1)

let test_genetic_sphere () =
  let rng = Rng.create ~seed:1 () in
  let bounds = Array.make 3 (-5., 5.) in
  let r = Genetic.minimize ~rng ~bounds ~f:sphere () in
  Alcotest.(check bool)
    (Printf.sprintf "near origin (f=%.4f)" r.Genetic.f)
    true (r.Genetic.f < 0.05);
  Array.iter
    (fun v -> Alcotest.(check bool) "bounded" true (v >= -5. && v <= 5.))
    r.Genetic.x

let test_genetic_monotone_best () =
  let rng = Rng.create ~seed:2 () in
  let bounds = Array.make 2 (-4., 4.) in
  let r = Genetic.minimize ~rng ~bounds ~f:shifted_quadratic () in
  let best = r.Genetic.best_per_generation in
  for g = 1 to Array.length best - 1 do
    Alcotest.(check bool) "elitism keeps best" true (best.(g) <= best.(g - 1) +. 1e-9)
  done

let test_random_search () =
  let rng = Rng.create ~seed:3 () in
  let bounds = [| (-10., 10.); (-10., 10.) |] in
  let r = Search.random_search ~rng ~bounds ~f:sphere ~evaluations:2000 in
  Alcotest.(check int) "budget spent" 2000 r.Search.evaluations;
  Alcotest.(check bool) "rough minimum" true (r.Search.f < 1.)

let test_grid_search () =
  let bounds = [| (0., 10.); (0., 10.) |] in
  let f x = ((x.(0) -. 5.) ** 2.) +. ((x.(1) -. 7.5) ** 2.) in
  let r = Search.grid_search ~bounds ~f ~points_per_dim:5 in
  Alcotest.(check int) "5^2 evaluations" 25 r.Search.evaluations;
  check_close 1e-9 "x0 on grid" 5. r.Search.x.(0);
  check_close 1e-9 "x1 on grid" 7.5 r.Search.x.(1)

let prop_nm_box_stays_inside =
  QCheck.Test.make ~name:"box-constrained NM stays inside bounds" ~count:50
    QCheck.(pair (float_range (-3.) 0.) (float_range 0.5 3.))
    (fun (lo, hi) ->
      let bounds = [| (lo, hi) |] in
      let r = Nm.minimize_box ~bounds ~f:(fun x -> -.x.(0)) ~x0:[| lo |] () in
      r.Nm.x.(0) >= lo -. 1e-9 && r.Nm.x.(0) <= hi +. 1e-9)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_optimize"
    [
      ( "nelder_mead",
        [
          Alcotest.test_case "quadratic" `Quick test_nm_quadratic;
          Alcotest.test_case "rosenbrock" `Quick test_nm_rosenbrock;
          Alcotest.test_case "1d" `Quick test_nm_1d;
          Alcotest.test_case "evaluation count" `Quick test_nm_counts_evaluations;
          Alcotest.test_case "box constraints" `Quick test_nm_box;
        ] );
      ( "genetic",
        [
          Alcotest.test_case "sphere" `Quick test_genetic_sphere;
          Alcotest.test_case "monotone best" `Quick test_genetic_monotone_best;
        ] );
      ( "search",
        [
          Alcotest.test_case "random" `Quick test_random_search;
          Alcotest.test_case "grid" `Quick test_grid_search;
        ] );
      ("properties", qc [ prop_nm_box_stays_inside ]);
    ]
