module Importance = Mde_assimilate.Importance
module Particle = Mde_assimilate.Particle
module Wildfire = Mde_assimilate.Wildfire
module Sensors = Mde_assimilate.Sensors
module Assimilation = Mde_assimilate.Assimilation
module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist

let check_close eps = Alcotest.(check (float eps))

(* --- Importance sampling --- *)

let test_is_estimates_mean () =
  (* Target N(2,1) sampled through proposal N(0,2): the weighted estimate
     must still recover E[X] = 2. *)
  let rng = Rng.create ~seed:1 () in
  let target = Dist.Normal { mean = 2.; std = 1. } in
  let proposal_dist = Dist.Normal { mean = 0.; std = 2. } in
  let w =
    Importance.sample ~rng ~n:20_000
      ~proposal:(fun rng -> Dist.sample proposal_dist rng)
      ~log_gamma:(Dist.log_pdf target)
      ~log_proposal:(Dist.log_pdf proposal_dist)
  in
  check_close 0.05 "mean" 2. (Importance.estimate w Fun.id);
  (* gamma here is normalized, so Z = 1. *)
  check_close 0.05 "log Z" 0. (Importance.log_normalizer w)

let test_ess_bounds () =
  let uniform = Array.make 10 0.1 in
  check_close 1e-9 "uniform ESS = N" 10. (Importance.effective_sample_size uniform);
  let collapsed = Array.init 10 (fun i -> if i = 0 then 1. else 0.) in
  check_close 1e-9 "collapsed ESS = 1" 1. (Importance.effective_sample_size collapsed)

let test_normalized_weights_sum () =
  let rng = Rng.create ~seed:2 () in
  let w =
    Importance.sample ~rng ~n:100
      ~proposal:(fun rng -> Rng.float rng)
      ~log_gamma:(fun x -> -.x)
      ~log_proposal:(fun _ -> 0.)
  in
  let weights = Importance.normalized_weights w in
  check_close 1e-9 "sum to 1" 1. (Array.fold_left ( +. ) 0. weights)

(* --- Particle filter on a linear-Gaussian HMM --- *)

(* X_n = 0.9 X_{n-1} + N(0, 0.3²); Y_n = X_n + N(0, 0.5²). *)
let lg_model =
  {
    Particle.init = (fun rng -> Dist.sample (Dist.Normal { mean = 0.; std = 1. }) rng);
    transition =
      (fun rng x -> (0.9 *. x) +. Dist.sample (Dist.Normal { mean = 0.; std = 0.3 }) rng);
    obs_log_likelihood =
      (fun y x -> Dist.log_pdf (Dist.Normal { mean = x; std = 0.5 }) y);
  }

(* Exact Kalman filter for the same model — the correctness oracle. *)
module Kalman = Mde_assimilate.Kalman

let lg_kalman_model =
  { Kalman.a = 0.9; q = 0.09; h = 1.; r = 0.25; mu0 = 0.; p0 = 1. }

let kalman observations = Kalman.filter_all lg_kalman_model observations

let simulate_lg seed steps =
  let rng = Rng.create ~seed () in
  let x = ref (Dist.sample (Dist.Normal { mean = 0.; std = 1. }) rng) in
  Array.init steps (fun _ ->
      x := (0.9 *. !x) +. Dist.sample (Dist.Normal { mean = 0.; std = 0.3 }) rng;
      let y = !x +. Dist.sample (Dist.Normal { mean = 0.; std = 0.5 }) rng in
      (!x, y))

let test_particle_filter_tracks_kalman () =
  let trajectory = simulate_lg 3 50 in
  let observations = Array.map snd trajectory in
  let kalman_means = kalman observations in
  let filter =
    Particle.create ~n_particles:2000 ~model:lg_model
      ~proposal:(Particle.bootstrap lg_model)
      (Rng.create ~seed:4 ())
  in
  let pf_means =
    Array.map
      (fun y ->
        Particle.step filter y;
        Particle.estimate filter Fun.id)
      observations
  in
  let rmse = Mde_prob.Stats.root_mean_square_error pf_means kalman_means in
  Alcotest.(check bool)
    (Printf.sprintf "PF ~ Kalman (rmse %.3f)" rmse)
    true (rmse < 0.08)

let test_sis_degenerates_without_resampling () =
  (* The paper's SIS collapse: without resampling the ESS decays. *)
  let observations = Array.map snd (simulate_lg 5 40) in
  let run threshold =
    let filter =
      Particle.create ~n_particles:300 ~resample_threshold:threshold ~model:lg_model
        ~proposal:(Particle.bootstrap lg_model)
        (Rng.create ~seed:6 ())
    in
    Array.iter (Particle.step filter) observations;
    Particle.effective_sample_size (Particle.population filter)
  in
  let sis_ess = run 0.0 in
  let sir_ess = run 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "SIS collapses (ess %.1f), SIR does not (%.1f)" sis_ess sir_ess)
    true
    (sis_ess < 10. && sir_ess > 50.)

let test_resampling_preserves_mean () =
  let rng = Rng.create ~seed:7 () in
  let particles = Array.init 5000 float_of_int in
  let weights = Array.init 5000 (fun i -> if i < 2500 then 3. else 1.) in
  let total = Array.fold_left ( +. ) 0. weights in
  let weights = Array.map (fun w -> w /. total) weights in
  let pop = { Particle.particles; weights } in
  let weighted_mean =
    Array.fold_left ( +. ) 0. (Array.mapi (fun i w -> w *. particles.(i)) weights)
  in
  List.iter
    (fun scheme ->
      let resampled = Particle.resample ~scheme rng pop in
      let mean = Mde_prob.Stats.mean resampled.Particle.particles in
      check_close 60. "mean preserved" weighted_mean mean;
      check_close 1e-9 "uniform weights" (1. /. 5000.) resampled.Particle.weights.(0))
    [ Particle.Multinomial; Particle.Systematic ]

let test_kalman_variance_converges () =
  (* The posterior variance reaches the Riccati fixed point. *)
  let t = Kalman.create lg_kalman_model in
  for i = 1 to 200 do
    Kalman.step t (float_of_int (i mod 3))
  done;
  let p1 = Kalman.variance t in
  Kalman.step t 0.;
  Alcotest.(check (float 1e-9)) "fixed point" p1 (Kalman.variance t);
  Alcotest.(check int) "steps" 201 (Kalman.steps t)

let test_kalman_certain_observation () =
  (* Tiny observation noise: the posterior jumps (almost) to the data. *)
  let t = Kalman.create { lg_kalman_model with Kalman.r = 1e-9 } in
  Kalman.step t 5.;
  check_close 1e-4 "mean follows data" 5. (Kalman.mean t);
  Alcotest.(check bool) "variance collapses" true (Kalman.variance t < 1e-6)

let test_pf_evidence_matches_kalman () =
  (* The SMC evidence estimate should agree with the exact Kalman
     log-likelihood on a linear-Gaussian model. *)
  let observations = Array.map snd (simulate_lg 11 40) in
  let exact = Kalman.create lg_kalman_model in
  Array.iter (Kalman.step exact) observations;
  let filter =
    Particle.create ~n_particles:4000 ~model:lg_model
      ~proposal:(Particle.bootstrap lg_model)
      (Rng.create ~seed:12 ())
  in
  Array.iter (Particle.step filter) observations;
  let exact_ll = Kalman.log_likelihood exact in
  let pf_ll = Particle.log_marginal_likelihood filter in
  Alcotest.(check bool)
    (Printf.sprintf "PF logZ %.2f ~ Kalman %.2f" pf_ll exact_ll)
    true
    (Float.abs (pf_ll -. exact_ll) < 0.02 *. Float.abs exact_ll +. 1.)

let test_log_marginal_model_selection () =
  (* The evidence estimate must prefer the true model over one with the
     wrong dynamics on the same observation stream. *)
  let observations = Array.map snd (simulate_lg 9 60) in
  let wrong_model =
    { lg_model with
      transition =
        (fun rng x -> (-0.9 *. x) +. Dist.sample (Dist.Normal { mean = 0.; std = 0.3 }) rng)
    }
  in
  let log_z model seed =
    let filter =
      Particle.create ~n_particles:500 ~model ~proposal:(Particle.bootstrap model)
        (Rng.create ~seed ())
    in
    Array.iter (Particle.step filter) observations;
    Particle.log_marginal_likelihood filter
  in
  let true_z = log_z lg_model 10 and wrong_z = log_z wrong_model 10 in
  Alcotest.(check bool)
    (Printf.sprintf "log Z: true %.1f > wrong %.1f" true_z wrong_z)
    true (true_z > wrong_z +. 5.)

let test_filter_requires_step () =
  let filter =
    Particle.create ~n_particles:10 ~model:lg_model
      ~proposal:(Particle.bootstrap lg_model)
      (Rng.create ~seed:8 ())
  in
  Alcotest.(check bool) "population before step raises" true
    (try
       ignore (Particle.population filter);
       false
     with Invalid_argument _ -> true)

(* --- Wildfire --- *)

let fire_params = Wildfire.default_params ~width:12 ~height:12

let test_wildfire_ignite () =
  let s = Wildfire.ignite fire_params [ (5, 5) ] in
  Alcotest.(check int) "one burning" 1 (Wildfire.burning_count s);
  Alcotest.(check bool) "cell state" true
    (match Wildfire.cell s 5 5 with Wildfire.Burning 1 -> true | _ -> false)

let test_wildfire_burned_never_unburns () =
  let rng = Rng.create ~seed:9 () in
  let s = ref (Wildfire.ignite fire_params [ (5, 5) ]) in
  for _ = 1 to 30 do
    let next = Wildfire.step rng !s in
    (* Monotonicity: burned stays burned; unburned cells never jump to
       burned without burning. *)
    for y = 0 to 11 do
      for x = 0 to 11 do
        match (Wildfire.cell !s x y, Wildfire.cell next x y) with
        | Wildfire.Burned, c ->
          Alcotest.(check bool) "burned persists" true (c = Wildfire.Burned)
        | Wildfire.Unburned, Wildfire.Burned ->
          Alcotest.fail "unburned jumped to burned"
        | (Wildfire.Unburned | Wildfire.Burning _), _ -> ()
      done
    done;
    s := next
  done

let test_wildfire_spreads () =
  let rng = Rng.create ~seed:10 () in
  let s = ref (Wildfire.ignite fire_params [ (6, 6) ]) in
  for _ = 1 to 20 do
    s := Wildfire.step rng !s
  done;
  Alcotest.(check bool) "fire grew" true (Wildfire.burned_area_fraction !s > 0.05)

let test_wildfire_wind_bias () =
  (* Strong +x wind: fire reaches the right edge before the left. *)
  let params =
    { fire_params with Wildfire.width = 31; height = 9; wind = (1., 0.); wind_boost = 0.9 }
  in
  let trials = 30 in
  let right_first = ref 0 in
  for seed = 1 to trials do
    let rng = Rng.create ~seed () in
    let s = ref (Wildfire.ignite params [ (15, 4) ]) in
    let result = ref None in
    let steps = ref 0 in
    while !result = None && !steps < 200 do
      incr steps;
      s := Wildfire.step rng !s;
      let touched x =
        List.exists (fun (cx, _) -> cx = x) (Wildfire.front_cells !s)
        || (match Wildfire.cell !s x 4 with Wildfire.Burned -> true | _ -> false)
      in
      let left = ref false and right = ref false in
      for y = 0 to 8 do
        (match Wildfire.cell !s 0 y with
        | Wildfire.Burning _ | Wildfire.Burned -> left := true
        | Wildfire.Unburned -> ());
        match Wildfire.cell !s 30 y with
        | Wildfire.Burning _ | Wildfire.Burned -> right := true
        | Wildfire.Unburned -> ()
      done;
      ignore touched;
      if !right && not !left then result := Some true
      else if !left && not !right then result := Some false
    done;
    if !result = Some true then incr right_first
  done;
  Alcotest.(check bool)
    (Printf.sprintf "downwind first in %d/%d" !right_first trials)
    true
    (float_of_int !right_first > 0.7 *. float_of_int trials)

let test_cell_difference_metric () =
  let a = Wildfire.ignite fire_params [ (1, 1) ] in
  let b = Wildfire.ignite fire_params [ (1, 1); (2, 2) ] in
  Alcotest.(check int) "self distance" 0 (Wildfire.cell_difference a a);
  Alcotest.(check int) "one cell differs" 1 (Wildfire.cell_difference a b)

let test_with_cell () =
  let s = Wildfire.ignite fire_params [] in
  let s' = Wildfire.with_cell s 3 3 (Wildfire.Burning 2) in
  Alcotest.(check int) "original untouched" 0 (Wildfire.burning_count s);
  Alcotest.(check int) "copy burning" 1 (Wildfire.burning_count s')

let test_fuel_barrier_stops_fire () =
  (* A zero-fuel column down the middle: fire ignited on the left never
     reaches the right half. *)
  let params =
    { (Wildfire.default_params ~width:21 ~height:9) with
      Wildfire.fuel = Some (fun x _ -> if x = 10 then 0. else 1.);
      spread_prob = 0.5
    }
  in
  let rng = Rng.create ~seed:15 () in
  let s = ref (Wildfire.ignite params [ (3, 4) ]) in
  for _ = 1 to 60 do
    s := Wildfire.step rng !s
  done;
  let right_touched = ref false in
  for y = 0 to 8 do
    for x = 10 to 20 do
      match Wildfire.cell !s x y with
      | Wildfire.Burning _ | Wildfire.Burned -> right_touched := true
      | Wildfire.Unburned -> ()
    done
  done;
  Alcotest.(check bool) "left half burned" true (Wildfire.burned_count !s > 10);
  Alcotest.(check bool) "fire break held" false !right_touched

let test_smooth_fuel_map_range () =
  let fuel = Wildfire.smooth_fuel_map ~width:30 ~height:30 () in
  for x = 0 to 29 do
    for y = 0 to 29 do
      let v = fuel x y in
      Alcotest.(check bool) "in range" true (v >= 0.3 && v <= 1.7)
    done
  done

(* --- Sensors --- *)

let test_sensor_layout () =
  let sensors = Sensors.grid_layout ~spacing:4 fire_params in
  Alcotest.(check int) "3x3 sensors" 9 (Sensors.count sensors)

let test_sensor_expected_readings () =
  let sensors = Sensors.grid_layout ~spacing:4 fire_params in
  let cold = Wildfire.ignite fire_params [] in
  Array.iter
    (fun r -> check_close 1e-9 "ambient" Sensors.ambient r)
    (Sensors.expected sensors cold);
  (* Put fire exactly at a sensor cell. *)
  let positions = Sensors.positions sensors in
  let sx, sy = positions.(0) in
  let hot = Wildfire.ignite fire_params [ (sx, sy) ] in
  let expected = Sensors.expected sensors hot in
  check_close 1e-9 "own-cell contribution" (Sensors.ambient +. 120.) expected.(0)

let test_sensor_log_likelihood_peaks_at_truth () =
  let sensors = Sensors.grid_layout ~spacing:4 fire_params in
  let truth = Wildfire.ignite fire_params [ (5, 5); (6, 6) ] in
  let rng = Rng.create ~seed:11 () in
  let reading = Sensors.observe ~noise_std:5. sensors rng truth in
  let ll_truth = Sensors.log_likelihood ~noise_std:5. sensors reading truth in
  let wrong = Wildfire.ignite fire_params [ (1, 10) ] in
  let ll_wrong = Sensors.log_likelihood ~noise_std:5. sensors reading wrong in
  Alcotest.(check bool) "truth more likely" true (ll_truth > ll_wrong)

let test_hot_cool_cells () =
  let sensors = Sensors.grid_layout ~spacing:4 fire_params in
  let reading = Array.make (Sensors.count sensors) Sensors.ambient in
  reading.(0) <- Sensors.ambient +. 200.;
  Alcotest.(check int) "one hot" 1 (List.length (Sensors.hot_cells sensors reading));
  Alcotest.(check int) "rest cool" 8 (List.length (Sensors.cool_cells sensors reading))

(* --- Assimilation experiment --- *)

let test_assimilation_beats_open_loop () =
  let params = Wildfire.default_params ~width:14 ~height:14 in
  let exp_result =
    Assimilation.run_experiment ~seed:13 ~n_particles:60 ~params
      ~ignition:[ (7, 7) ] ~sensor_spacing:3 ~steps:12 ~proposal:`Bootstrap ()
  in
  Alcotest.(check int) "all steps recorded" 12 (Array.length exp_result.Assimilation.errors);
  Alcotest.(check bool)
    (Printf.sprintf "filter %.1f <= open loop %.1f"
       exp_result.Assimilation.mean_filter_error
       exp_result.Assimilation.mean_open_loop_error)
    true
    (exp_result.Assimilation.mean_filter_error
    <= exp_result.Assimilation.mean_open_loop_error)

let test_sensor_aware_proposal_runs () =
  let params = Wildfire.default_params ~width:10 ~height:10 in
  let exp_result =
    Assimilation.run_experiment ~seed:14 ~n_particles:30 ~params
      ~ignition:[ (5, 5) ] ~sensor_spacing:3 ~steps:6 ~proposal:`Sensor_aware ()
  in
  Alcotest.(check int) "runs to completion" 6 (Array.length exp_result.Assimilation.errors);
  Array.iter
    (fun (e : Assimilation.step_error) ->
      Alcotest.(check bool) "ess sane" true (e.Assimilation.ess >= 1. && e.Assimilation.ess <= 30.))
    exp_result.Assimilation.errors

let () =
  Alcotest.run "mde_assimilate"
    [
      ( "importance",
        [
          Alcotest.test_case "estimates mean" `Quick test_is_estimates_mean;
          Alcotest.test_case "ESS bounds" `Quick test_ess_bounds;
          Alcotest.test_case "weights normalized" `Quick test_normalized_weights_sum;
        ] );
      ( "particle",
        [
          Alcotest.test_case "tracks Kalman" `Slow test_particle_filter_tracks_kalman;
          Alcotest.test_case "SIS degeneracy" `Quick test_sis_degenerates_without_resampling;
          Alcotest.test_case "resampling preserves mean" `Quick test_resampling_preserves_mean;
          Alcotest.test_case "evidence model selection" `Slow test_log_marginal_model_selection;
          Alcotest.test_case "Kalman Riccati fixed point" `Quick test_kalman_variance_converges;
          Alcotest.test_case "Kalman certain observation" `Quick test_kalman_certain_observation;
          Alcotest.test_case "PF evidence ~ Kalman" `Slow test_pf_evidence_matches_kalman;
          Alcotest.test_case "requires step" `Quick test_filter_requires_step;
        ] );
      ( "wildfire",
        [
          Alcotest.test_case "ignite" `Quick test_wildfire_ignite;
          Alcotest.test_case "monotone burn" `Quick test_wildfire_burned_never_unburns;
          Alcotest.test_case "spreads" `Quick test_wildfire_spreads;
          Alcotest.test_case "wind bias" `Slow test_wildfire_wind_bias;
          Alcotest.test_case "state metric" `Quick test_cell_difference_metric;
          Alcotest.test_case "functional update" `Quick test_with_cell;
          Alcotest.test_case "fuel barrier" `Quick test_fuel_barrier_stops_fire;
          Alcotest.test_case "fuel map range" `Quick test_smooth_fuel_map_range;
        ] );
      ( "sensors",
        [
          Alcotest.test_case "layout" `Quick test_sensor_layout;
          Alcotest.test_case "expected readings" `Quick test_sensor_expected_readings;
          Alcotest.test_case "likelihood peaks at truth" `Quick test_sensor_log_likelihood_peaks_at_truth;
          Alcotest.test_case "hot/cool cells" `Quick test_hot_cool_cells;
        ] );
      ( "assimilation",
        [
          Alcotest.test_case "beats open loop" `Slow test_assimilation_beats_open_loop;
          Alcotest.test_case "sensor-aware proposal" `Slow test_sensor_aware_proposal_runs;
        ] );
    ]
