module Registry = Mde.Registry
module Splash = Mde.Composite.Splash

let noop_model name inputs outputs =
  { Splash.name; description = name; inputs; outputs;
    run = (fun _ _ -> List.map (fun _ -> Splash.Number 0.) outputs) }

let meta name ?(time_step = None) inputs outputs =
  {
    Registry.model_name = name;
    description = "test model " ^ name;
    inputs;
    outputs;
    time_step;
    mean_run_cost = None;
    output_variance = None;
  }

let test_register_and_lookup () =
  let reg = Registry.create () in
  Registry.register_model reg (meta "demand" [] [ "arrivals" ]) (noop_model "demand" [] [ "arrivals" ]);
  Registry.register_dataset reg
    {
      Registry.dataset_name = "census";
      dataset_description = "synthetic census";
      provenance = "generator v1";
      time_step_ds = Some 1.;
    }
    (Splash.Number 42.);
  Alcotest.(check (list string)) "models" [ "demand" ] (Registry.model_names reg);
  Alcotest.(check (list string)) "datasets" [ "census" ] (Registry.dataset_names reg);
  (match Registry.dataset reg "census" with
  | Splash.Number v -> Alcotest.(check (float 0.)) "datum" 42. v
  | _ -> Alcotest.fail "wrong datum");
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Registry.model reg "nope");
       false
     with Invalid_argument _ -> true)

let test_record_run_refines_stats () =
  let reg = Registry.create () in
  Registry.register_model reg (meta "m" [] [ "out" ]) (noop_model "m" [] [ "out" ]);
  Registry.record_run reg "m" ~cost:10. ~output:2.;
  let stats1 = (Registry.model_meta reg "m").Registry.mean_run_cost in
  Alcotest.(check (option (float 1e-9))) "first run sets cost" (Some 10.) stats1;
  Registry.record_run reg "m" ~cost:20. ~output:2.;
  (match (Registry.model_meta reg "m").Registry.mean_run_cost with
  | Some c -> Alcotest.(check (float 1e-9)) "EMA" 12. c
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "variance tracked" true
    ((Registry.model_meta reg "m").Registry.output_variance <> None)

let test_time_step_mismatch () =
  let reg = Registry.create () in
  Registry.register_model reg
    (meta "hourly" ~time_step:(Some 1.) [] [ "a" ])
    (noop_model "hourly" [] [ "a" ]);
  Registry.register_model reg
    (meta "daily" ~time_step:(Some 24.) [ "a" ] [ "b" ])
    (noop_model "daily" [ "a" ] [ "b" ]);
  Registry.register_model reg
    (meta "untimed" [] [ "c" ])
    (noop_model "untimed" [] [ "c" ]);
  Alcotest.(check bool) "mismatch detected" true
    (Registry.time_step_mismatch reg ~source:"hourly" ~target:"daily");
  Alcotest.(check bool) "same step ok" false
    (Registry.time_step_mismatch reg ~source:"hourly" ~target:"hourly");
  Alcotest.(check bool) "unknown step tolerated" false
    (Registry.time_step_mismatch reg ~source:"hourly" ~target:"untimed")

let test_registry_compose_auto_aligns () =
  let module Series = Mde.Timeseries.Series in
  let reg = Registry.create () in
  let hourly_producer =
    {
      Splash.name = "hourly";
      description = "hourly series";
      inputs = [];
      outputs = [ "signal" ];
      run =
        (fun _ _ ->
          let times = Series.regular_times ~start:0. ~step:1. ~count:48 in
          [ Splash.Timeseries (Series.create ~times ~values:(Array.map (fun t -> t) times)) ]);
    }
  in
  let daily_consumer =
    {
      Splash.name = "daily";
      description = "consumes a daily series";
      inputs = [ "signal" ];
      outputs = [ "ticks" ];
      run =
        (fun _ inputs ->
          match inputs with
          | [ Splash.Timeseries s ] -> [ Splash.Number (float_of_int (Series.length s)) ]
          | _ -> Alcotest.fail "daily: bad input");
    }
  in
  Registry.register_model reg
    (meta "hourly" ~time_step:(Some 1.) [] [ "signal" ])
    hourly_producer;
  Registry.register_model reg
    (meta "daily" ~time_step:(Some 24.) [ "signal" ] [ "ticks" ])
    daily_consumer;
  let composite = Registry.compose reg ~name:"auto" ~model_names:[ "hourly"; "daily" ] in
  let out = Splash.execute composite (Mde.Prob.Rng.create ~seed:1 ()) ~inputs:[] in
  match List.assoc "ticks" out with
  | Splash.Number n ->
    (* 48 hourly ticks spanning [0, 47] resampled at step 24 -> 2 ticks. *)
    Alcotest.(check (float 0.)) "consumer saw the daily series" 2. n
  | _ -> Alcotest.fail "expected number"

let test_execution_costs_feed_registry () =
  (* The §2.3 loop: production runs observe model costs; the registry's
     metadata refines with each run. *)
  let module Series = Mde.Timeseries.Series in
  let reg = Registry.create () in
  let producer =
    {
      Splash.name = "producer";
      description = "";
      inputs = [];
      outputs = [ "series" ];
      run =
        (fun _ _ ->
          (* Burn a little CPU so the measured cost is nonzero. *)
          let acc = ref 0. in
          for i = 1 to 200_000 do
            acc := !acc +. sin (float_of_int i)
          done;
          ignore !acc;
          let times = Series.regular_times ~start:0. ~step:1. ~count:4 in
          [ Splash.Timeseries (Series.create ~times ~values:[| 1.; 2.; 3.; 4. |]) ]);
    }
  in
  Registry.register_model reg (meta "producer" [] [ "series" ]) producer;
  let composite = Registry.compose reg ~name:"p" ~model_names:[ "producer" ] in
  let _, costs =
    Splash.execute_timed composite (Mde.Prob.Rng.create ~seed:1 ()) ~inputs:[]
  in
  Alcotest.(check int) "one cost record" 1 (List.length costs);
  List.iter (fun (name, cost) -> Registry.record_run reg name ~cost ~output:0.) costs;
  match (Registry.model_meta reg "producer").Registry.mean_run_cost with
  | Some c -> Alcotest.(check bool) "cost recorded" true (c >= 0.)
  | None -> Alcotest.fail "cost not folded into metadata"

let test_registry_compose_unknown_model () =
  let reg = Registry.create () in
  Alcotest.(check bool) "unknown model rejected" true
    (try
       ignore (Registry.compose reg ~name:"x" ~model_names:[ "ghost" ]);
       false
     with Invalid_argument _ -> true)

(* Smoke-check that the umbrella module exposes every subsystem. *)
let test_umbrella_aliases () =
  let rng = Mde.Prob.Rng.create ~seed:1 () in
  Alcotest.(check bool) "prob" true (Mde.Prob.Rng.float rng >= 0.);
  Alcotest.(check int) "linalg" 2 (Mde.Linalg.Mat.rows (Mde.Linalg.Mat.identity 2));
  Alcotest.(check int) "metamodel" 8
    (Array.length (Mde.Metamodel.Design.resolution_iii_7 ()));
  Alcotest.(check bool) "optimize" true
    ((Mde.Optimize.Nelder_mead.minimize
        ~f:(fun x -> x.(0) *. x.(0))
        ~x0:[| 1. |] ())
       .Mde.Optimize.Nelder_mead.f
    < 1e-6)

let test_registry_pp () =
  let reg = Registry.create () in
  Registry.register_model reg (meta "m" [ "a" ] [ "b" ]) (noop_model "m" [ "a" ] [ "b" ]);
  let rendered = Format.asprintf "%a" Registry.pp reg in
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions model" true (contains rendered "test model m")

let () =
  Alcotest.run "mde_core"
    [
      ( "registry",
        [
          Alcotest.test_case "register/lookup" `Quick test_register_and_lookup;
          Alcotest.test_case "record_run EMA" `Quick test_record_run_refines_stats;
          Alcotest.test_case "time-step mismatch" `Quick test_time_step_mismatch;
          Alcotest.test_case "compose auto-aligns" `Quick test_registry_compose_auto_aligns;
          Alcotest.test_case "compose unknown model" `Quick test_registry_compose_unknown_model;
          Alcotest.test_case "costs feed registry" `Quick test_execution_costs_feed_registry;
        ] );
      ( "umbrella",
        [
          Alcotest.test_case "aliases" `Quick test_umbrella_aliases;
          Alcotest.test_case "pp" `Quick test_registry_pp;
        ] );
    ]
