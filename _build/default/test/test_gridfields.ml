module Grid = Mde_gridfields.Grid
module Gridfield = Mde_gridfields.Gridfield

let check_close eps = Alcotest.(check (float eps))

(* --- Grid --- *)

let test_regular_2d_counts () =
  let g = Grid.regular_2d ~nx:3 ~ny:2 in
  Alcotest.(check int) "vertices" 12 (Array.length (Grid.cells_of_dim g 0));
  (* Edges: 3·3 horizontal + 4·2 vertical = 17. *)
  Alcotest.(check int) "edges" 17 (Array.length (Grid.cells_of_dim g 1));
  Alcotest.(check int) "faces" 6 (Array.length (Grid.cells_of_dim g 2));
  Alcotest.(check int) "total" 35 (Grid.cell_count g);
  Alcotest.(check (list int)) "dims" [ 0; 1; 2 ] (Grid.dims g)

let test_incidence_structure () =
  let g = Grid.regular_2d ~nx:2 ~ny:2 in
  (* Every face has 4 edges + 4 vertices below it. *)
  Array.iter
    (fun (face : Grid.cell) ->
      let below = Grid.down g face.Grid.id in
      let edges = List.filter (fun c -> Grid.dim_of g c = 1) below in
      let verts = List.filter (fun c -> Grid.dim_of g c = 0) below in
      Alcotest.(check int) "4 edges" 4 (List.length edges);
      Alcotest.(check int) "4 vertices" 4 (List.length verts))
    (Grid.cells_of_dim g 2);
  (* Interior vertex of a 2x2 mesh touches 4 edges and 4 faces. *)
  let interior =
    Array.to_list (Grid.cells_of_dim g 0)
    |> List.find (fun (c : Grid.cell) -> List.length (Grid.up g c.Grid.id) = 8)
  in
  Alcotest.(check bool) "leq reflexive" true (Grid.leq g interior.Grid.id interior.Grid.id)

let test_create_validation () =
  Alcotest.(check bool) "dim violation rejected" true
    (try
       ignore
         (Grid.create
            ~cells:[ { Grid.id = 0; dim = 1 }; { Grid.id = 1; dim = 0 } ]
            ~incidence:[ (0, 1) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate id rejected" true
    (try
       ignore
         (Grid.create
            ~cells:[ { Grid.id = 0; dim = 0 }; { Grid.id = 0; dim = 1 } ]
            ~incidence:[]);
       false
     with Invalid_argument _ -> true)

let test_sub_grid () =
  let g = Grid.regular_2d ~nx:2 ~ny:1 in
  let faces = Grid.cells_of_dim g 2 in
  let keep_face = faces.(0).Grid.id in
  let sub = Grid.sub_grid g ~keep:(fun c -> c.Grid.dim <> 2 || c.Grid.id = keep_face) in
  Alcotest.(check int) "one face" 1 (Array.length (Grid.cells_of_dim sub 2));
  Alcotest.(check int) "vertices kept" 6 (Array.length (Grid.cells_of_dim sub 0))

let test_up_down_vertex () =
  let g = Grid.regular_2d ~nx:1 ~ny:1 in
  let corner = (Grid.cells_of_dim g 0).(0) in
  (* A unit-square corner vertex touches 2 edges and 1 face. *)
  let ups = Grid.up g corner.Grid.id in
  Alcotest.(check int) "3 incident higher cells" 3 (List.length ups);
  let face = (Grid.cells_of_dim g 2).(0) in
  Alcotest.(check int) "face has 8 lower cells" 8
    (List.length (Grid.down g face.Grid.id));
  Alcotest.(check bool) "corner <= face" true (Grid.leq g corner.Grid.id face.Grid.id);
  Alcotest.(check bool) "face not <= corner" false (Grid.leq g face.Grid.id corner.Grid.id)

(* --- Gridfield --- *)

let face_field nx ny =
  let g = Grid.regular_2d ~nx ~ny in
  (* Bind each face its id as data (deterministic, easy to check). *)
  (g, Gridfield.bind g ~dim:2 (fun id -> float_of_int id))

let test_bind_and_value () =
  let g, f = face_field 3 3 in
  Alcotest.(check int) "9 faces" 9 (Gridfield.size f);
  let faces = Grid.cells_of_dim g 2 in
  Array.iter
    (fun (c : Grid.cell) ->
      check_close 1e-9 "value" (float_of_int c.Grid.id) (Gridfield.value f c.Grid.id))
    faces

let test_restrict () =
  let g, f = face_field 3 3 in
  let faces = Grid.cells_of_dim g 2 in
  let cutoff = float_of_int faces.(4).Grid.id in
  let restricted = Gridfield.restrict (fun v -> v >= cutoff) f in
  Alcotest.(check int) "faces kept" 5 (Gridfield.size restricted);
  (* Other dimensions survive. *)
  Alcotest.(check int) "vertices intact" 16
    (Array.length (Grid.cells_of_dim (Gridfield.grid restricted) 0))

let test_merge () =
  let _, f = face_field 2 2 in
  let merged = Gridfield.merge f f ( +. ) in
  Array.iter
    (fun id ->
      check_close 1e-9 "doubled" (2. *. Gridfield.value f id) (Gridfield.value merged id))
    (Array.to_list (Gridfield.cells merged) |> Array.of_list)

let test_aggregate_values () =
  check_close 1e-9 "avg" 2. (Gridfield.aggregate_values Gridfield.Average [ 1.; 2.; 3. ]);
  check_close 1e-9 "total" 6. (Gridfield.aggregate_values Gridfield.Total [ 1.; 2.; 3. ]);
  check_close 1e-9 "max" 3. (Gridfield.aggregate_values Gridfield.Maximum [ 1.; 2.; 3. ]);
  check_close 1e-9 "min" 1. (Gridfield.aggregate_values Gridfield.Minimum [ 1.; 2.; 3. ])

(* Regrid a fine 4x4 face field onto a coarse 2x2 target: each coarse face
   aggregates the 4 fine faces inside it. *)
let coarse_assignment fine_nx coarse_nx fine_faces coarse_faces id =
  (* Face ids are laid out row-major within their stratum. *)
  let fine_index =
    let rec find i = if fine_faces.(i).Grid.id = id then i else find (i + 1) in
    find 0
  in
  let fx = fine_index mod fine_nx and fy = fine_index / fine_nx in
  let cx = fx * coarse_nx / fine_nx and cy = fy * coarse_nx / fine_nx in
  Some coarse_faces.((cy * coarse_nx) + cx).Grid.id

let test_regrid () =
  let fine_grid = Grid.regular_2d ~nx:4 ~ny:4 in
  let coarse_grid = Grid.regular_2d ~nx:2 ~ny:2 in
  let fine_faces = Grid.cells_of_dim fine_grid 2 in
  let coarse_faces = Grid.cells_of_dim coarse_grid 2 in
  let field = Gridfield.bind fine_grid ~dim:2 (fun _ -> 1.) in
  let out, stats =
    Gridfield.regrid
      ~assignment:(coarse_assignment 4 2 fine_faces coarse_faces)
      ~aggregate:Gridfield.Total ~target:coarse_grid ~target_dim:2 field
  in
  Alcotest.(check int) "touched all" 16 stats.Gridfield.source_cells_touched;
  Alcotest.(check int) "4 targets" 4 stats.Gridfield.target_cells_bound;
  Array.iter
    (fun (c : Grid.cell) -> check_close 1e-9 "4 fine per coarse" 4. (Gridfield.value out c.Grid.id))
    coarse_faces

let test_restrict_regrid_commutation () =
  let fine_grid = Grid.regular_2d ~nx:6 ~ny:6 in
  let coarse_grid = Grid.regular_2d ~nx:3 ~ny:3 in
  let fine_faces = Grid.cells_of_dim fine_grid 2 in
  let coarse_faces = Grid.cells_of_dim coarse_grid 2 in
  let field = Gridfield.bind fine_grid ~dim:2 (fun id -> float_of_int (id mod 7)) in
  let assignment = coarse_assignment 6 3 fine_faces coarse_faces in
  (* Region: only the first 3 coarse faces. *)
  let allowed =
    Array.to_list (Array.sub coarse_faces 0 3) |> List.map (fun c -> c.Grid.id)
  in
  let region id = List.mem id allowed in
  let optimized, opt_stats =
    Gridfield.restrict_then_regrid ~region ~assignment ~aggregate:Gridfield.Average
      ~target:coarse_grid ~target_dim:2 field
  in
  let naive, naive_stats =
    Gridfield.naive_regrid_then_restrict ~region ~assignment
      ~aggregate:Gridfield.Average ~target:coarse_grid ~target_dim:2 field
  in
  (* Same answer... *)
  Alcotest.(check int) "same size" (Gridfield.size naive) (Gridfield.size optimized);
  Array.iter
    (fun id ->
      check_close 1e-9 (Printf.sprintf "cell %d" id) (Gridfield.value naive id)
        (Gridfield.value optimized id))
    (Gridfield.cells naive);
  (* ...with fewer source cells touched. *)
  Alcotest.(check bool)
    (Printf.sprintf "pushdown touches fewer (%d < %d)"
       opt_stats.Gridfield.source_cells_touched
       naive_stats.Gridfield.source_cells_touched)
    true
    (opt_stats.Gridfield.source_cells_touched
    < naive_stats.Gridfield.source_cells_touched)

let prop_commutation =
  QCheck.Test.make ~name:"restrict/regrid rewrite preserves results" ~count:30
    QCheck.(int_range 0 8)
    (fun region_size ->
      let fine_grid = Grid.regular_2d ~nx:4 ~ny:4 in
      let coarse_grid = Grid.regular_2d ~nx:2 ~ny:2 in
      let fine_faces = Grid.cells_of_dim fine_grid 2 in
      let coarse_faces = Grid.cells_of_dim coarse_grid 2 in
      let field = Gridfield.bind fine_grid ~dim:2 (fun id -> float_of_int ((id * 13) mod 11)) in
      let assignment = coarse_assignment 4 2 fine_faces coarse_faces in
      let allowed =
        Array.to_list coarse_faces
        |> List.filteri (fun i _ -> i < region_size mod (Array.length coarse_faces + 1))
        |> List.map (fun c -> c.Grid.id)
      in
      let region id = List.mem id allowed in
      let optimized, _ =
        Gridfield.restrict_then_regrid ~region ~assignment ~aggregate:Gridfield.Total
          ~target:coarse_grid ~target_dim:2 field
      in
      let naive, _ =
        Gridfield.naive_regrid_then_restrict ~region ~assignment
          ~aggregate:Gridfield.Total ~target:coarse_grid ~target_dim:2 field
      in
      Gridfield.size optimized = Gridfield.size naive
      && Array.for_all
           (fun id ->
             Float.abs (Gridfield.value optimized id -. Gridfield.value naive id) < 1e-9)
           (Gridfield.cells naive))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_gridfields"
    [
      ( "grid",
        [
          Alcotest.test_case "regular 2d counts" `Quick test_regular_2d_counts;
          Alcotest.test_case "incidence" `Quick test_incidence_structure;
          Alcotest.test_case "validation" `Quick test_create_validation;
          Alcotest.test_case "sub grid" `Quick test_sub_grid;
          Alcotest.test_case "up/down/leq" `Quick test_up_down_vertex;
        ] );
      ( "gridfield",
        [
          Alcotest.test_case "bind/value" `Quick test_bind_and_value;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "aggregations" `Quick test_aggregate_values;
          Alcotest.test_case "regrid" `Quick test_regrid;
          Alcotest.test_case "restrict/regrid commute" `Quick test_restrict_regrid_commutation;
        ] );
      ("properties", qc [ prop_commutation ]);
    ]
