test/test_composite.ml: Alcotest Array Float List Mde_composite Mde_metamodel Mde_prob Mde_timeseries Printf
