test/test_mapred.ml: Alcotest Array Fun Int List Mde_mapred Mde_prob Printf QCheck QCheck_alcotest
