test/test_assimilate.mli:
