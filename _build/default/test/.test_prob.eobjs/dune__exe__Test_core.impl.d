test/test_core.ml: Alcotest Array Format List Mde String
