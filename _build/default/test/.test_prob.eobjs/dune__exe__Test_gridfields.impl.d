test/test_gridfields.ml: Alcotest Array Float List Mde_gridfields Printf QCheck QCheck_alcotest
