test/test_timeseries.ml: Alcotest Array Expr Float Gen List Mde_linalg Mde_mapred Mde_prob Mde_relational Mde_timeseries Printf QCheck QCheck_alcotest Schema Table Value
