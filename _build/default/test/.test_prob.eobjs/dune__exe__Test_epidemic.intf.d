test/test_epidemic.mli:
