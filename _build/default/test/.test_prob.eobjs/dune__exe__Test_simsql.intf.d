test/test_simsql.mli:
