test/test_mcdb.ml: Alcotest Algebra Array Catalog Expr Float Hashtbl List Mde_mcdb Mde_prob Mde_relational Option Printf Schema Table Value
