test/test_optimize.ml: Alcotest Array Float List Mde_optimize Mde_prob Printf QCheck QCheck_alcotest
