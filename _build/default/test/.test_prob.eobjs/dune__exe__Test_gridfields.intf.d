test/test_gridfields.mli:
