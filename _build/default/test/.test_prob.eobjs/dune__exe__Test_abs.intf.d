test/test_abs.mli:
