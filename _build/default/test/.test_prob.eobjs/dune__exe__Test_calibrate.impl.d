test/test_calibrate.ml: Alcotest Array Float Mde_calibrate Mde_linalg Mde_optimize Mde_prob Printf
