test/test_abs.ml: Alcotest Array Float List Mde_abs Mde_prob Printf QCheck QCheck_alcotest String
