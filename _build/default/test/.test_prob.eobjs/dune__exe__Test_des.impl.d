test/test_des.ml: Alcotest Float Fun List Mde_des Mde_prob QCheck QCheck_alcotest
