test/test_mcdb.mli:
