test/test_simsql.ml: Alcotest Array Float List Mde_mcdb Mde_prob Mde_relational Mde_simsql Printf QCheck QCheck_alcotest Schema Table Value
