test/test_prob.ml: Alcotest Array Float Fun Gen Int Int64 List Mde_prob Printf QCheck QCheck_alcotest
