test/test_metamodel.ml: Alcotest Array Float Fun List Mde_metamodel Mde_prob Printf QCheck QCheck_alcotest String
