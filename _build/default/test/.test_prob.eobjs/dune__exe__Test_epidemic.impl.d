test/test_epidemic.ml: Alcotest Array Catalog Expr Float List Mde_epidemic Mde_prob Mde_relational Printf Query Stdlib Table Value
