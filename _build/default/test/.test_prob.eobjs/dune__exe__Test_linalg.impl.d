test/test_linalg.ml: Alcotest Array Float List Mde_linalg Mde_prob Printf QCheck QCheck_alcotest
