test/test_relational.ml: Alcotest Algebra Array Catalog Expr List Mde_prob Mde_relational Option Plan Printf QCheck QCheck_alcotest Query Schema String Table Value
