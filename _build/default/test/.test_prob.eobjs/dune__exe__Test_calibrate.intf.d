test/test_calibrate.mli:
