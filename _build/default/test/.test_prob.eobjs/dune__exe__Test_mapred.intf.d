test/test_mapred.mli:
