test/test_metamodel.mli:
