test/test_assimilate.ml: Alcotest Array Float Fun List Mde_assimilate Mde_prob Printf
