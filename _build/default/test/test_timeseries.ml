module Series = Mde_timeseries.Series
module Spline = Mde_timeseries.Spline
module Sgd = Mde_timeseries.Sgd
module Align = Mde_timeseries.Align
module Mr_align = Mde_timeseries.Mr_align
module Schema_map = Mde_timeseries.Schema_map
module Forecast = Mde_timeseries.Forecast
module Synthetic = Mde_timeseries.Synthetic
module Rng = Mde_prob.Rng
open Mde_relational

let check_close eps = Alcotest.(check (float eps))

(* --- Series --- *)

let test_series_validation () =
  Alcotest.(check bool) "non-increasing rejected" true
    (try
       ignore (Series.create ~times:[| 0.; 0. |] ~values:[| 1.; 2. |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore (Series.create ~times:[| 0.; 1. |] ~values:[| 1. |]);
       false
     with Invalid_argument _ -> true)

let test_series_locate () =
  let s = Series.of_pairs [ (0., 0.); (1., 1.); (2., 4.); (5., 25.) ] in
  Alcotest.(check int) "inside" 1 (Series.locate s 1.5);
  Alcotest.(check int) "below clamps" 0 (Series.locate s (-3.));
  Alcotest.(check int) "above clamps" 2 (Series.locate s 100.);
  Alcotest.(check int) "at knot" 2 (Series.locate s 2.)

let test_series_sub_before () =
  let s = Series.of_pairs [ (0., 0.); (1., 1.); (2., 2.) ] in
  Alcotest.(check int) "cut" 2 (Series.length (Series.sub_before s 1.5))

(* --- Spline --- *)

let sample_series () =
  Synthetic.smooth_signal ~seed:5 ~knots:25 ~span:10. ()

let test_spline_interpolates_knots () =
  let s = sample_series () in
  let spline = Spline.fit s in
  Array.iteri
    (fun i t ->
      check_close 1e-9
        (Printf.sprintf "knot %d" i)
        (Series.values s).(i)
        (Spline.eval spline t))
    (Series.times s)

let test_spline_linear_data_stays_linear () =
  (* For data on a straight line the natural spline IS that line. *)
  let times = Array.init 10 float_of_int in
  let s = Series.create ~times ~values:(Array.map (fun t -> (2. *. t) +. 1.) times) in
  let spline = Spline.fit s in
  List.iter
    (fun t -> check_close 1e-9 "linear" ((2. *. t) +. 1.) (Spline.eval spline t))
    [ 0.5; 3.3; 7.9 ];
  Array.iter (fun sg -> check_close 1e-9 "sigma 0" 0. sg) (Spline.sigma spline)

let test_spline_two_points () =
  let s = Series.of_pairs [ (0., 1.); (2., 5.) ] in
  let spline = Spline.fit s in
  check_close 1e-9 "midpoint linear" 3. (Spline.eval spline 1.)

let test_spline_smoothness () =
  (* Approximation quality on a smooth function: denser knots shrink the
     max error. *)
  let f t = sin t in
  let build n =
    let times = Array.init n (fun i -> 6.28 *. float_of_int i /. float_of_int (n - 1)) in
    Spline.fit (Series.create ~times ~values:(Array.map f times))
  in
  let max_err spline =
    let worst = ref 0. in
    for i = 0 to 200 do
      let t = 6.28 *. float_of_int i /. 200. in
      worst := Float.max !worst (Float.abs (Spline.eval spline t -. f t))
    done;
    !worst
  in
  let coarse = max_err (build 8) and fine = max_err (build 30) in
  Alcotest.(check bool)
    (Printf.sprintf "error shrinks (%.4g -> %.4g)" coarse fine)
    true
    (fine < coarse /. 4.)

(* --- SGD / DSGD --- *)

let spline_problem () =
  let s = sample_series () in
  let a, b = Spline.system s in
  (s, a, b, Sgd.of_tridiag a b)

let test_strata_independent () =
  let _, a, b, problem = spline_problem () in
  ignore a;
  ignore b;
  let strata = Sgd.tridiagonal_strata ~dim:problem.Sgd.dim in
  Alcotest.(check int) "3 strata" 3 (Array.length strata);
  Alcotest.(check bool) "independent" true (Sgd.strata_independent problem strata);
  (* Two adjacent rows in one stratum would clash. *)
  Alcotest.(check bool) "adjacent rows clash" false
    (Sgd.strata_independent problem [| [| 0; 1 |] |])

let test_dsgd_converges_to_thomas () =
  let _, a, b, problem = spline_problem () in
  let direct = Mde_linalg.Tridiag.solve a b in
  let rng = Rng.create ~seed:21 () in
  let result =
    Sgd.dsgd ~rng ~schedule:(Sgd.Row_normalized 1.0) ~sub_epochs:3000 ~tol:1e-10
      ~strata:(Sgd.tridiagonal_strata ~dim:problem.Sgd.dim)
      problem
  in
  Alcotest.(check bool)
    (Printf.sprintf "residual %.2g" result.Sgd.final_residual)
    true
    (result.Sgd.final_residual < 1e-8);
  Array.iteri
    (fun i x -> check_close 1e-5 (Printf.sprintf "x%d" i) direct.(i) x)
    result.Sgd.solution

let test_dsgd_early_stop () =
  let _, _, _, problem = spline_problem () in
  let rng = Rng.create ~seed:22 () in
  let result =
    Sgd.dsgd ~rng ~schedule:(Sgd.Row_normalized 1.0) ~sub_epochs:100_000 ~tol:1e-6
      ~strata:(Sgd.tridiagonal_strata ~dim:problem.Sgd.dim)
      problem
  in
  Alcotest.(check bool) "stopped early" true (result.Sgd.sub_epochs < 100_000)

let test_sgd_polynomial_schedule_descends () =
  let _, _, _, problem = spline_problem () in
  let rng = Rng.create ~seed:23 () in
  let x0 = Array.make problem.Sgd.dim 0. in
  let before = Sgd.residual_norm problem x0 in
  let x =
    Sgd.sgd ~rng
      ~schedule:(Sgd.Polynomial { scale = 0.2; alpha = 1.0 })
      ~iters:50_000 problem
  in
  (* The provably convergent n^-alpha schedule is slow; assert steady
     descent rather than full convergence (Row_normalized covers that). *)
  let after = Sgd.residual_norm problem x in
  Alcotest.(check bool)
    (Printf.sprintf "residual fell (%.3g -> %.3g)" before after)
    true (after < before *. 0.7)

let test_dsgd_spline_equals_direct_interpolation () =
  (* End-to-end: spline built from DSGD constants matches the direct one. *)
  let s = sample_series () in
  let a, b = Spline.system s in
  let problem = Sgd.of_tridiag a b in
  let rng = Rng.create ~seed:24 () in
  let result =
    Sgd.dsgd ~rng ~schedule:(Sgd.Row_normalized 1.0) ~sub_epochs:5000 ~tol:1e-12
      ~strata:(Sgd.tridiagonal_strata ~dim:problem.Sgd.dim)
      problem
  in
  let sigma = Array.make (Series.length s) 0. in
  Array.blit result.Sgd.solution 0 sigma 1 (Series.length s - 2);
  let via_dsgd = Spline.of_sigma s sigma in
  let direct = Spline.fit s in
  List.iter
    (fun t -> check_close 1e-5 "same interpolation" (Spline.eval direct t) (Spline.eval via_dsgd t))
    [ 0.3; 2.7; 6.1; 9.9 ]

(* --- Alignment --- *)

let test_classify () =
  let s = Series.of_pairs (List.init 20 (fun i -> (float_of_int i, 1.))) in
  let coarse = Series.regular_times ~start:0. ~step:5. ~count:4 in
  let fine = Series.regular_times ~start:0. ~step:0.25 ~count:77 in
  Alcotest.(check bool) "coarser → aggregation" true
    (Align.classify s ~target_times:coarse = Align.Needs_aggregation);
  Alcotest.(check bool) "finer → interpolation" true
    (Align.classify s ~target_times:fine = Align.Needs_interpolation);
  Alcotest.(check bool) "identical" true
    (Align.classify s ~target_times:(Series.times s) = Align.Identical)

let test_aggregate_mean_sum () =
  let s = Series.of_pairs [ (1., 2.); (2., 4.); (3., 6.); (4., 8.) ] in
  let target = [| 2.; 4. |] in
  let mean = Align.align (Align.Aggregate Align.Mean) s ~target_times:target in
  check_close 1e-9 "mean bucket 1" 3. (Series.values mean).(0);
  check_close 1e-9 "mean bucket 2" 7. (Series.values mean).(1);
  let sum = Align.align (Align.Aggregate Align.Sum) s ~target_times:target in
  check_close 1e-9 "sum bucket 2" 14. (Series.values sum).(1)

let test_aggregate_empty_bucket_carries () =
  let s = Series.of_pairs [ (0., 5.); (10., 7.) ] in
  let target = [| 1.; 2.; 10. |] in
  let out = Align.align (Align.Aggregate Align.Last) s ~target_times:target in
  check_close 1e-9 "bucket with data" 5. (Series.values out).(0);
  check_close 1e-9 "empty carries" 5. (Series.values out).(1);
  check_close 1e-9 "later data" 7. (Series.values out).(2)

let test_interpolate_linear_nearest_repeat () =
  let s = Series.of_pairs [ (0., 0.); (2., 4.) ] in
  let target = [| 0.5; 1.; 1.9 |] in
  let lin = Align.align (Align.Interpolate Align.Linear) s ~target_times:target in
  check_close 1e-9 "linear" 2. (Series.values lin).(1);
  let near = Align.align (Align.Interpolate Align.Nearest) s ~target_times:target in
  check_close 1e-9 "nearest low" 0. (Series.values near).(0);
  check_close 1e-9 "nearest high" 4. (Series.values near).(2);
  let rep = Align.align (Align.Interpolate Align.Repeat) s ~target_times:target in
  check_close 1e-9 "repeat" 0. (Series.values rep).(2)

let test_aggregate_min_max_first () =
  let s = Series.of_pairs [ (1., 5.); (2., 1.); (3., 9.); (4., 4.) ] in
  let target = [| 4. |] in
  let value kind =
    (Series.values (Align.align (Align.Aggregate kind) s ~target_times:target)).(0)
  in
  check_close 1e-9 "max" 9. (value Align.Max_agg);
  check_close 1e-9 "min" 1. (value Align.Min_agg);
  check_close 1e-9 "first" 5. (value Align.First)

let test_auto_alignment () =
  let s = sample_series () in
  let fine = Series.regular_times ~start:0. ~step:0.1 ~count:95 in
  let aligned, cls = Align.auto s ~target_times:fine in
  Alcotest.(check bool) "classified" true (cls = Align.Needs_interpolation);
  Alcotest.(check int) "length" 95 (Series.length aligned)

(* --- MapReduce alignment --- *)

let test_mr_align_matches_sequential () =
  let s = sample_series () in
  let target = Series.regular_times ~start:0.05 ~step:0.07 ~count:120 in
  List.iter
    (fun (kind, align_kind) ->
      let mr = Mr_align.interpolate ~partitions:5 ~kind s ~target_times:target in
      let seq = Align.align (Align.Interpolate align_kind) s ~target_times:target in
      Alcotest.(check int) "length" (Array.length target) (Series.length mr.Mr_align.target);
      Array.iteri
        (fun i v ->
          check_close 1e-9 (Printf.sprintf "point %d" i) (Series.values seq).(i) v)
        (Series.values mr.Mr_align.target))
    [ (`Linear, Align.Linear); (`Cubic, Align.Cubic) ]

let test_mr_align_stats () =
  let s = sample_series () in
  let target = Series.regular_times ~start:0. ~step:0.5 ~count:19 in
  let mr = Mr_align.interpolate ~partitions:4 ~kind:`Linear s ~target_times:target in
  Alcotest.(check bool) "windows mapped" true
    (mr.Mr_align.interpolation_stats.Mde_mapred.Job.records_mapped = 24)

(* --- Frames --- *)

module Frame = Mde_timeseries.Frame

let sample_frame () =
  Frame.create
    ~times:[| 0.; 1.; 2.; 3. |]
    ~columns:[ ("temp", [| 10.; 12.; 11.; 9. |]); ("wind", [| 1.; 2.; 3.; 4. |]) ]

let test_frame_basics () =
  let f = sample_frame () in
  Alcotest.(check int) "length" 4 (Frame.length f);
  Alcotest.(check (list string)) "columns" [ "temp"; "wind" ] (Frame.column_names f);
  check_close 1e-9 "cell" 11. (Frame.values f "temp").(2);
  Alcotest.(check (list (pair string (float 1e-9)))) "row"
    [ ("temp", 12.); ("wind", 2.) ] (Frame.row f 1)

let test_frame_validation () =
  Alcotest.(check bool) "duplicate columns rejected" true
    (try
       ignore
         (Frame.create ~times:[| 0.; 1. |]
            ~columns:[ ("a", [| 1.; 2. |]); ("a", [| 3.; 4. |]) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "length mismatch rejected" true
    (try
       ignore (Frame.create ~times:[| 0.; 1. |] ~columns:[ ("a", [| 1. |]) ]);
       false
     with Invalid_argument _ -> true)

let test_frame_column_ops () =
  let f = sample_frame () in
  let doubled = Frame.map_column f "wind" (fun v -> 2. *. v) in
  check_close 1e-9 "mapped" 8. (Frame.values doubled "wind").(3);
  check_close 1e-9 "original untouched" 4. (Frame.values f "wind").(3);
  let extended = Frame.add_column f "humid" [| 0.1; 0.2; 0.3; 0.4 |] in
  Alcotest.(check int) "3 columns" 3 (List.length (Frame.column_names extended));
  let dropped = Frame.drop_column extended "temp" in
  Alcotest.(check (list string)) "dropped" [ "wind"; "humid" ] (Frame.column_names dropped);
  Alcotest.(check bool) "cannot drop last" true
    (try
       ignore (Frame.drop_column (Frame.of_series ~name:"x" (Series.of_pairs [ (0., 1.); (1., 2.) ])) "x");
       false
     with Invalid_argument _ -> true)

let test_frame_align_columnwise () =
  let f = sample_frame () in
  let target = [| 0.5; 1.5; 2.5 |] in
  let aligned =
    Frame.align ~methods:[ ("wind", Align.Interpolate Align.Repeat) ] f
      ~target_times:target
  in
  Alcotest.(check int) "target length" 3 (Frame.length aligned);
  (* wind used Repeat (step function), temp used auto (cubic). *)
  check_close 1e-9 "wind repeats" 1. (Frame.values aligned "wind").(0);
  let temp_direct =
    Align.align (Align.Interpolate Align.Cubic)
      (Frame.column f "temp") ~target_times:target
  in
  Array.iteri
    (fun i v -> check_close 1e-9 "temp auto = cubic" (Series.values temp_direct).(i) v)
    (Frame.values aligned "temp")

let test_frame_table_roundtrip () =
  let f = sample_frame () in
  let table = Frame.to_table f in
  Alcotest.(check int) "rows" 4 (Table.cardinality table);
  Alcotest.(check int) "cols incl. time" 3 (Schema.arity (Table.schema table));
  let back = Frame.of_table ~time_column:"time" table in
  Alcotest.(check (list string)) "columns preserved" (Frame.column_names f)
    (Frame.column_names back);
  Array.iteri
    (fun i v -> check_close 1e-9 "values preserved" v (Frame.values back "temp").(i))
    (Frame.values f "temp")

(* --- Schema maps --- *)

let source_schema =
  Schema.of_list [ ("temp_f", Value.Tfloat); ("city", Value.Tstring) ]

let test_schema_map_apply () =
  let mapping =
    Schema_map.create ~source:source_schema
      [
        Schema_map.field "temp_c" Value.Tfloat
          Expr.((col "temp_f" - float 32.) * float (5. /. 9.));
        Schema_map.rename_field "location" ~ty:Value.Tstring ~from:"city";
      ]
  in
  let table =
    Table.create source_schema [ [| Value.Float 212.; Value.String "sj" |] ]
  in
  let out = Schema_map.apply mapping table in
  check_close 1e-9 "212F = 100C" 100. (Value.to_float (Table.get out 0 "temp_c"));
  Alcotest.(check string) "renamed" "sj" (Value.to_string_value (Table.get out 0 "location"))

let test_schema_map_compose_mismatch () =
  let m1 =
    Schema_map.create ~source:source_schema
      [ Schema_map.scale_field "x" ~from:"temp_f" ~factor:1. ]
  in
  Alcotest.(check bool) "compose rejects misaligned schemas" true
    (try
       ignore (Schema_map.compose m1 m1);
       false
     with Invalid_argument _ -> true)

let test_schema_map_validation () =
  Alcotest.(check bool) "unknown column rejected" true
    (try
       ignore
         (Schema_map.create ~source:source_schema
            [ Schema_map.field "x" Value.Tfloat (Expr.col "nope") ]);
       false
     with Invalid_argument _ -> true)

let test_schema_map_compose () =
  let m1 =
    Schema_map.create ~source:source_schema
      [
        Schema_map.scale_field "temp_half" ~from:"temp_f" ~factor:0.5;
        Schema_map.rename_field "location" ~ty:Value.Tstring ~from:"city";
      ]
  in
  let m2 =
    Schema_map.create ~source:(Schema_map.target_schema m1)
      [ Schema_map.scale_field "temp_quarter" ~from:"temp_half" ~factor:0.5 ]
  in
  let composed = Schema_map.compose m1 m2 in
  let table = Table.create source_schema [ [| Value.Float 100.; Value.String "x" |] ] in
  let direct = Schema_map.apply m2 (Schema_map.apply m1 table) in
  let fused = Schema_map.apply composed table in
  check_close 1e-9 "compose = sequential"
    (Value.to_float (Table.get direct 0 "temp_quarter"))
    (Value.to_float (Table.get fused 0 "temp_quarter"))

(* --- Forecast (Figure 1 machinery) --- *)

let test_forecast_linear_recovers_slope () =
  let times = Array.init 50 float_of_int in
  let s = Series.create ~times ~values:(Array.map (fun t -> 3. +. (2. *. t)) times) in
  let fit = Forecast.fit Forecast.Linear_trend s in
  let coef = Forecast.coefficients fit in
  check_close 1e-6 "intercept" 3. coef.(0);
  check_close 1e-8 "slope" 2. coef.(1);
  let future = Forecast.extrapolate fit ~horizon:5 in
  check_close 1e-6 "first forecast" (3. +. (2. *. 50.)) (Series.values future).(0)

let test_forecast_ar_on_ar_process () =
  let rng = Rng.create ~seed:31 () in
  let n = 2000 in
  let values = Array.make n 0. in
  for i = 1 to n - 1 do
    values.(i) <-
      (0.8 *. values.(i - 1))
      +. Mde_prob.Dist.sample (Mde_prob.Dist.Normal { mean = 0.; std = 0.1 }) rng
  done;
  let s = Series.create ~times:(Array.init n float_of_int) ~values in
  let fit = Forecast.fit (Forecast.Ar 1) s in
  let coef = Forecast.coefficients fit in
  check_close 0.05 "AR coefficient" 0.8 coef.(1)

let test_forecast_extrapolation_error () =
  let times = Array.init 30 float_of_int in
  let full =
    Series.create ~times
      ~values:(Array.map (fun t -> if t < 20. then t else 20. -. (2. *. (t -. 20.))) times)
  in
  let fit = Forecast.fit Forecast.Linear_trend (Series.sub_before full 19.) in
  let err = Forecast.extrapolation_error fit ~actual:full in
  (* Trend continues up while actual collapses: large error. *)
  Alcotest.(check bool) "regime change error" true (err > 10.)

let test_housing_series_shape () =
  let s = Synthetic.housing_index () in
  let values = Series.values s and times = Series.times s in
  let at_year y =
    let best = ref 0 in
    Array.iteri (fun i t -> if Float.abs (t -. y) < Float.abs (times.(!best) -. y) then best := i) times;
    values.(!best)
  in
  Alcotest.(check bool) "boom into 2006" true (at_year 2006. > 1.5 *. at_year 1995.);
  Alcotest.(check bool) "collapse after 2006" true (at_year 2011. < 0.8 *. at_year 2006.)

(* --- QCheck --- *)

let prop_spline_interpolates =
  QCheck.Test.make ~name:"spline passes through all knots" ~count:50
    QCheck.(int_range 3 30)
    (fun n ->
      let s = Synthetic.smooth_signal ~seed:n ~knots:n ~span:5. () in
      let spline = Spline.fit s in
      Array.for_all2
        (fun t v -> Float.abs (Spline.eval spline t -. v) < 1e-6)
        (Series.times s) (Series.values s))

let prop_mr_align_linear =
  QCheck.Test.make ~name:"MapReduce linear interpolation = sequential" ~count:30
    QCheck.(pair (int_range 3 20) (int_range 2 50))
    (fun (knots, targets) ->
      let s = Synthetic.smooth_signal ~seed:(knots + targets) ~knots ~span:4. () in
      let target = Series.regular_times ~start:0.1 ~step:(3.8 /. float_of_int targets) ~count:targets in
      let mr = Mr_align.interpolate ~partitions:3 ~kind:`Linear s ~target_times:target in
      let seq = Align.align (Align.Interpolate Align.Linear) s ~target_times:target in
      Array.for_all2
        (fun a b -> Float.abs (a -. b) < 1e-9)
        (Series.values mr.Mr_align.target)
        (Series.values seq))

let prop_aggregate_sum_preserved =
  QCheck.Test.make ~name:"Sum aggregation preserves the covered total" ~count:100
    QCheck.(list_of_size Gen.(int_range 2 30) (float_range (-10.) 10.))
    (fun values ->
      let n = List.length values in
      let times = Array.init n (fun i -> float_of_int i) in
      let s = Series.create ~times ~values:(Array.of_list values) in
      (* A single target tick at/after the last source time covers all
         observations, so the Sum bucket equals the total. *)
      let target = [| float_of_int n |] in
      let out = Align.align (Align.Aggregate Align.Sum) s ~target_times:target in
      let total = List.fold_left ( +. ) 0. values in
      Float.abs ((Series.values out).(0) -. total) < 1e-9)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_timeseries"
    [
      ( "series",
        [
          Alcotest.test_case "validation" `Quick test_series_validation;
          Alcotest.test_case "locate" `Quick test_series_locate;
          Alcotest.test_case "sub_before" `Quick test_series_sub_before;
        ] );
      ( "spline",
        [
          Alcotest.test_case "interpolates knots" `Quick test_spline_interpolates_knots;
          Alcotest.test_case "linear stays linear" `Quick test_spline_linear_data_stays_linear;
          Alcotest.test_case "two points" `Quick test_spline_two_points;
          Alcotest.test_case "converges with knots" `Quick test_spline_smoothness;
        ] );
      ( "sgd",
        [
          Alcotest.test_case "strata independence" `Quick test_strata_independent;
          Alcotest.test_case "dsgd → thomas" `Quick test_dsgd_converges_to_thomas;
          Alcotest.test_case "dsgd early stop" `Quick test_dsgd_early_stop;
          Alcotest.test_case "polynomial schedule descends" `Slow test_sgd_polynomial_schedule_descends;
          Alcotest.test_case "dsgd spline end-to-end" `Quick test_dsgd_spline_equals_direct_interpolation;
        ] );
      ( "align",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "aggregate mean/sum" `Quick test_aggregate_mean_sum;
          Alcotest.test_case "empty bucket carries" `Quick test_aggregate_empty_bucket_carries;
          Alcotest.test_case "interpolation kinds" `Quick test_interpolate_linear_nearest_repeat;
          Alcotest.test_case "min/max/first aggregation" `Quick test_aggregate_min_max_first;
          Alcotest.test_case "auto" `Quick test_auto_alignment;
        ] );
      ( "mr_align",
        [
          Alcotest.test_case "matches sequential" `Quick test_mr_align_matches_sequential;
          Alcotest.test_case "stats" `Quick test_mr_align_stats;
        ] );
      ( "frame",
        [
          Alcotest.test_case "basics" `Quick test_frame_basics;
          Alcotest.test_case "validation" `Quick test_frame_validation;
          Alcotest.test_case "column ops" `Quick test_frame_column_ops;
          Alcotest.test_case "column-wise align" `Quick test_frame_align_columnwise;
          Alcotest.test_case "table roundtrip" `Quick test_frame_table_roundtrip;
        ] );
      ( "schema_map",
        [
          Alcotest.test_case "apply" `Quick test_schema_map_apply;
          Alcotest.test_case "validation" `Quick test_schema_map_validation;
          Alcotest.test_case "compose" `Quick test_schema_map_compose;
          Alcotest.test_case "compose mismatch" `Quick test_schema_map_compose_mismatch;
        ] );
      ( "forecast",
        [
          Alcotest.test_case "linear recovers" `Quick test_forecast_linear_recovers_slope;
          Alcotest.test_case "AR(1) recovers" `Quick test_forecast_ar_on_ar_process;
          Alcotest.test_case "regime-change error" `Quick test_forecast_extrapolation_error;
          Alcotest.test_case "housing shape" `Quick test_housing_series_shape;
        ] );
      ( "properties",
        qc [ prop_spline_interpolates; prop_mr_align_linear; prop_aggregate_sum_preserved ] );
    ]
