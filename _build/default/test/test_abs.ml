module Framework = Mde_abs.Framework
module Traffic = Mde_abs.Traffic
module Schelling = Mde_abs.Schelling
module Range_query = Mde_abs.Range_query
module Rng = Mde_prob.Rng

(* --- Framework --- *)

let counter_spec =
  {
    Framework.step_agent = (fun _rng env agents i -> agents.(i) + env);
    step_env = (fun _rng env _agents -> env + 1);
  }

let test_framework_run () =
  let init = { Framework.agents = [| 0; 10 |]; env = 1 } in
  let final = Framework.run counter_spec (Rng.create ()) ~steps:3 ~init in
  (* env: 1→2→3→4; agent gets +1, +2, +3. *)
  Alcotest.(check int) "agent 0" 6 final.Framework.agents.(0);
  Alcotest.(check int) "agent 1" 16 final.Framework.agents.(1);
  Alcotest.(check int) "env" 4 final.Framework.env

let test_framework_trajectory () =
  let init = { Framework.agents = [| 0 |]; env = 0 } in
  let obs =
    Framework.trajectory counter_spec (Rng.create ()) ~steps:5 ~init
      ~observe:(fun s -> s.Framework.agents.(0))
  in
  Alcotest.(check int) "length" 6 (Array.length obs);
  Alcotest.(check int) "initial" 0 obs.(0)

let test_framework_synchronous () =
  (* Each agent copies its left neighbour's pre-step value. *)
  let spec =
    {
      Framework.step_agent =
        (fun _ _ agents i -> agents.((i + Array.length agents - 1) mod Array.length agents));
      step_env = (fun _ env _ -> env);
    }
  in
  let init = { Framework.agents = [| 1; 2; 3 |]; env = () } in
  let next = Framework.step spec (Rng.create ()) init in
  Alcotest.(check (array int)) "rotated" [| 3; 1; 2 |] next.Framework.agents

(* --- Traffic --- *)

let test_traffic_conserves_cars () =
  let rng = Rng.create ~seed:1 () in
  let t = Traffic.create Traffic.default_params ~density:0.3 rng in
  let before = Traffic.car_count t in
  for _ = 1 to 50 do
    Traffic.step t
  done;
  Alcotest.(check int) "conserved" before (Traffic.car_count t)

let test_traffic_free_flow () =
  (* At very low density, mean speed approaches vmax − p_brake. *)
  let params = { Traffic.default_params with p_brake = 0.1 } in
  let rng = Rng.create ~seed:2 () in
  let t = Traffic.create params ~density:0.02 rng in
  for _ = 1 to 100 do
    Traffic.step t
  done;
  let speeds = ref [] in
  for _ = 1 to 50 do
    Traffic.step t;
    speeds := Traffic.mean_speed t :: !speeds
  done;
  let avg = Mde_prob.Stats.mean (Array.of_list !speeds) in
  Alcotest.(check bool)
    (Printf.sprintf "free flow speed %.2f > 4.2" avg)
    true (avg > 4.2)

let test_traffic_jams_at_high_density () =
  let rng = Rng.create ~seed:3 () in
  let t = Traffic.create Traffic.default_params ~density:0.6 rng in
  for _ = 1 to 100 do
    Traffic.step t
  done;
  Alcotest.(check bool) "substantial jamming" true (Traffic.jammed_fraction t > 0.3);
  Alcotest.(check bool) "slow" true (Traffic.mean_speed t < 1.5)

let test_traffic_fundamental_diagram_shape () =
  (* Flow rises with density, peaks, then falls — the jam transition. *)
  let points =
    Traffic.density_sweep ~seed:5 Traffic.default_params
      ~densities:[| 0.05; 0.15; 0.5; 0.8 |]
      ~warmup:80 ~measure:40
  in
  Alcotest.(check bool) "rising branch" true
    (points.(1).Traffic.mean_flow > points.(0).Traffic.mean_flow);
  Alcotest.(check bool) "falling branch" true
    (points.(3).Traffic.mean_flow < points.(1).Traffic.mean_flow);
  Alcotest.(check bool) "jam grows with density" true
    (points.(3).Traffic.jammed > points.(0).Traffic.jammed)

let test_traffic_multilane () =
  let params = { Traffic.default_params with lanes = 2; length = 200 } in
  let rng = Rng.create ~seed:7 () in
  let t = Traffic.create params ~density:0.2 rng in
  let before = Traffic.car_count t in
  for _ = 1 to 60 do
    Traffic.step t
  done;
  Alcotest.(check int) "conserved across lanes" before (Traffic.car_count t)

let test_traffic_diagram_dimensions () =
  let rng = Rng.create ~seed:9 () in
  let t = Traffic.create { Traffic.default_params with length = 50 } ~density:0.3 rng in
  let diagram = Traffic.space_time_diagram t ~steps:10 ~lane:0 in
  let lines = String.split_on_char '\n' diagram |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "10 rows" 10 (List.length lines);
  List.iter (fun l -> Alcotest.(check int) "50 cols" 50 (String.length l)) lines

(* --- Schelling --- *)

let test_schelling_segregation_rises () =
  let t = Schelling.create ~seed:11 ~size:20 ~vacancy:0.2 ~threshold:0.4 () in
  let before = Schelling.segregation_index t in
  let _ = Schelling.run_until_settled ~max_steps:100 t in
  let after = Schelling.segregation_index t in
  Alcotest.(check bool)
    (Printf.sprintf "segregation %.2f -> %.2f" before after)
    true
    (after > before +. 0.15)

let test_schelling_settles () =
  let t = Schelling.create ~seed:13 ~size:15 ~vacancy:0.25 ~threshold:0.35 () in
  let steps = Schelling.run_until_settled ~max_steps:200 t in
  Alcotest.(check bool) "settled before cap" true (steps < 200);
  Alcotest.(check int) "no unhappy agents" 0 (Schelling.unhappy_count t)

let test_schelling_zero_threshold_static () =
  let t = Schelling.create ~seed:17 ~size:10 ~vacancy:0.3 ~threshold:0.0 () in
  Alcotest.(check int) "nobody moves" 0 (Schelling.step t)

let test_schelling_render () =
  let t = Schelling.create ~seed:19 ~size:8 ~vacancy:0.2 ~threshold:0.3 () in
  let s = Schelling.to_string t in
  Alcotest.(check int) "8 lines of 8" (8 * 9) (String.length s)

(* --- PDES-MAS range queries --- *)

let test_range_query_basic () =
  let t = Range_query.create ~n_agents:10 () in
  for agent = 0 to 9 do
    Range_query.write t ~agent ~time:1.0 ~value:(float_of_int agent)
  done;
  let result, stats = Range_query.range_query t ~time:1.0 ~lo:3. ~hi:6. in
  Alcotest.(check (list int)) "ids 3..6" [ 3; 4; 5; 6 ] result;
  Alcotest.(check int) "matched" 4 stats.Range_query.matched

let test_range_query_timestamped () =
  let t = Range_query.create ~n_agents:3 () in
  Range_query.write t ~agent:0 ~time:1. ~value:10.;
  Range_query.write t ~agent:0 ~time:5. ~value:50.;
  (* Query in the past sees the old value. *)
  let past, _ = Range_query.range_query t ~time:2. ~lo:0. ~hi:20. in
  Alcotest.(check (list int)) "old value visible" [ 0 ] past;
  let now, _ = Range_query.range_query t ~time:6. ~lo:0. ~hi:20. in
  Alcotest.(check (list int)) "new value out of range" [] now;
  (* Before any write the agent has no value. *)
  Alcotest.(check (option (float 0.)) ) "none before first write" None
    (Range_query.value_at t ~agent:1 ~time:100.)

let test_range_query_time_monotonic () =
  let t = Range_query.create ~n_agents:2 () in
  Range_query.write t ~agent:0 ~time:5. ~value:1.;
  Alcotest.(check bool) "backwards write rejected" true
    (try
       Range_query.write t ~agent:0 ~time:4. ~value:2.;
       false
     with Invalid_argument _ -> true)

let test_range_query_pruning () =
  let t = Range_query.create ~n_agents:128 () in
  for agent = 0 to 127 do
    Range_query.write t ~agent ~time:1. ~value:(float_of_int (agent mod 4))
  done;
  (* A query far outside every value's range prunes at the root. *)
  let empty, stats = Range_query.range_query t ~time:1. ~lo:100. ~hi:200. in
  Alcotest.(check (list int)) "empty" [] empty;
  Alcotest.(check int) "pruned at root" 1 stats.Range_query.clp_nodes_visited

let test_range_query_bucketed_prunes_better () =
  let n_agents = 256 in
  let plain = Range_query.create ~n_agents () in
  let bucketed = Range_query.create ~bucket_width:1.0 ~n_agents () in
  let rng = Rng.create ~seed:33 () in
  let clock = Array.make n_agents 0. and position = Array.make n_agents 0. in
  for _ = 1 to n_agents * 30 do
    let agent = Rng.int rng n_agents in
    clock.(agent) <- clock.(agent) +. Rng.float_pos rng;
    position.(agent) <- position.(agent) +. Rng.float_range rng (-1.) 1.;
    Range_query.write plain ~agent ~time:clock.(agent) ~value:position.(agent);
    Range_query.write bucketed ~agent ~time:clock.(agent) ~value:position.(agent)
  done;
  (* Early-time queries: positions have not diffused yet, so bucketed
     bounds are much tighter than whole-history bounds. *)
  let total t =
    let visited = ref 0 in
    for q = 0 to 49 do
      let time = 0.5 +. (0.05 *. float_of_int q) in
      let answer, stats = Range_query.range_query t ~time ~lo:3. ~hi:6. in
      Alcotest.(check (list int))
        (Printf.sprintf "query %d correct" q)
        (Range_query.range_query_brute t ~time ~lo:3. ~hi:6.)
        answer;
      visited := !visited + stats.Range_query.clp_nodes_visited
    done;
    !visited
  in
  let plain_visited = total plain in
  let bucketed_visited = total bucketed in
  Alcotest.(check bool)
    (Printf.sprintf "bucketed prunes more (%d < %d)" bucketed_visited plain_visited)
    true
    (bucketed_visited < plain_visited)

let prop_bucketed_matches_brute =
  QCheck.Test.make ~name:"time-bucketed range query = brute force" ~count:60
    QCheck.(triple (int_range 1 30) (int_range 0 60) (float_range 0.2 3.))
    (fun (n_agents, n_writes, width) ->
      let t = Range_query.create ~bucket_width:width ~n_agents () in
      let rng = Rng.create ~seed:(n_agents + (7 * n_writes)) () in
      let clock = Array.make n_agents 0. in
      for _ = 1 to n_writes do
        let agent = Rng.int rng n_agents in
        clock.(agent) <- clock.(agent) +. Rng.float rng;
        Range_query.write t ~agent ~time:clock.(agent)
          ~value:(Rng.float_range rng (-5.) 5.)
      done;
      let time = Rng.float_range rng 0. 10. in
      let lo = Rng.float_range rng (-5.) 3. in
      let hi = lo +. 2. in
      fst (Range_query.range_query t ~time ~lo ~hi)
      = Range_query.range_query_brute t ~time ~lo ~hi)

let prop_range_query_matches_brute =
  QCheck.Test.make ~name:"CLP-tree range query = brute force" ~count:100
    QCheck.(triple (int_range 1 40) (int_range 0 80) (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun (n_agents, n_writes, (a, b)) ->
      let t = Range_query.create ~n_agents () in
      let rng = Rng.create ~seed:(n_agents + n_writes) () in
      let clock = Array.make n_agents 0. in
      for _ = 1 to n_writes do
        let agent = Rng.int rng n_agents in
        clock.(agent) <- clock.(agent) +. Rng.float rng;
        Range_query.write t ~agent ~time:clock.(agent)
          ~value:(Rng.float_range rng (-5.) 5.)
      done;
      let lo = Float.min a b -. 5. and hi = Float.max a b -. 5. in
      let time = Rng.float_range rng 0. 10. in
      let via_tree, _ = Range_query.range_query t ~time ~lo ~hi in
      let brute = Range_query.range_query_brute t ~time ~lo ~hi in
      via_tree = brute)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_abs"
    [
      ( "framework",
        [
          Alcotest.test_case "run" `Quick test_framework_run;
          Alcotest.test_case "trajectory" `Quick test_framework_trajectory;
          Alcotest.test_case "synchronous" `Quick test_framework_synchronous;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "conserves cars" `Quick test_traffic_conserves_cars;
          Alcotest.test_case "free flow" `Quick test_traffic_free_flow;
          Alcotest.test_case "jams at high density" `Quick test_traffic_jams_at_high_density;
          Alcotest.test_case "fundamental diagram" `Slow test_traffic_fundamental_diagram_shape;
          Alcotest.test_case "multilane conserves" `Quick test_traffic_multilane;
          Alcotest.test_case "space-time diagram" `Quick test_traffic_diagram_dimensions;
        ] );
      ( "schelling",
        [
          Alcotest.test_case "segregation rises" `Quick test_schelling_segregation_rises;
          Alcotest.test_case "settles" `Quick test_schelling_settles;
          Alcotest.test_case "zero threshold static" `Quick test_schelling_zero_threshold_static;
          Alcotest.test_case "render" `Quick test_schelling_render;
        ] );
      ( "range_query",
        [
          Alcotest.test_case "basic" `Quick test_range_query_basic;
          Alcotest.test_case "timestamped" `Quick test_range_query_timestamped;
          Alcotest.test_case "time monotonic" `Quick test_range_query_time_monotonic;
          Alcotest.test_case "pruning" `Quick test_range_query_pruning;
          Alcotest.test_case "bucketed pruning" `Quick test_range_query_bucketed_prunes_better;
        ] );
      ( "properties",
        qc [ prop_range_query_matches_brute; prop_bucketed_matches_brute ] );
    ]
