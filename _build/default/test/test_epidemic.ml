open Mde_relational
module Network = Mde_epidemic.Network
module Indemics = Mde_epidemic.Indemics

let net () = Network.synthetic ~seed:1 ~n:800 ~community_degree:4. ()

let test_synthetic_network_shape () =
  let n = net () in
  Alcotest.(check int) "size" 800 (Network.size n);
  Alcotest.(check bool) "has edges" true (Network.edge_count n > 800);
  (* Roughly 6% preschoolers. *)
  let preschool =
    Array.fold_left
      (fun acc p -> if p.Network.age <= 4 then acc + 1 else acc)
      0 (Network.persons n)
  in
  Alcotest.(check bool)
    (Printf.sprintf "preschoolers %d in [20, 90]" preschool)
    true
    (preschool >= 20 && preschool <= 90);
  (* Household contacts are symmetric. *)
  let ok = ref true in
  Array.iter
    (fun p ->
      List.iter
        (fun { Network.peer; _ } ->
          if
            not
              (List.exists
                 (fun c -> c.Network.peer = p.Network.id)
                 (Network.contacts n peer))
          then ok := false)
        (Network.contacts n p.Network.id))
    (Network.persons n);
  Alcotest.(check bool) "symmetric" true !ok

let test_reset () =
  let n = net () in
  let engine = Indemics.create ~seed:2 n Indemics.default_params in
  ignore (Indemics.step_day engine);
  Network.reset n;
  Alcotest.(check int) "all susceptible" 800
    (Network.count_health n Network.Susceptible)

let total_population records =
  let last = records.(Array.length records - 1) in
  last.Indemics.susceptible + last.Indemics.exposed + last.Indemics.infectious
  + last.Indemics.recovered + last.Indemics.vaccinated

let test_population_conserved () =
  let engine = Indemics.create ~seed:3 (net ()) Indemics.default_params in
  let records = Indemics.run engine ~days:60 ~policy:None in
  Array.iter
    (fun (r : Indemics.day_record) ->
      Alcotest.(check int)
        (Printf.sprintf "day %d conserved" r.Indemics.day)
        800
        (r.Indemics.susceptible + r.Indemics.exposed + r.Indemics.infectious
        + r.Indemics.recovered + r.Indemics.vaccinated))
    records;
  Alcotest.(check int) "total" 800 (total_population records)

let test_zero_transmission_dies_out () =
  let params = { Indemics.default_params with transmission_rate = 0. } in
  let engine = Indemics.create ~seed:4 (net ()) params in
  let records = Indemics.run engine ~days:100 ~policy:None in
  let last = records.(100) in
  Alcotest.(check int) "no spread beyond seeds" 5
    (last.Indemics.exposed + last.Indemics.infectious + last.Indemics.recovered)

let test_epidemic_spreads () =
  let engine = Indemics.create ~seed:5 (net ()) Indemics.default_params in
  let records = Indemics.run engine ~days:150 ~policy:None in
  let rate = Indemics.attack_rate records in
  Alcotest.(check bool)
    (Printf.sprintf "attack rate %.2f substantial" rate)
    true (rate > 0.2)

let test_relational_session () =
  let engine = Indemics.create ~seed:6 (net ()) Indemics.default_params in
  for _ = 1 to 10 do
    ignore (Indemics.step_day engine)
  done;
  let cat = Indemics.catalog engine in
  let person = Catalog.find cat "Person" in
  Alcotest.(check int) "person rows" 800 (Table.cardinality person);
  let infected = Catalog.find cat "InfectedPerson" in
  Alcotest.(check int) "infected table consistent"
    (Network.count_health (Indemics.network engine) Network.Infectious)
    (Table.cardinality infected);
  (* The paper's query shape: count preschoolers via SQL. *)
  let n_preschool =
    Query.of_table person
    |> Query.where Expr.(col "age" <= int 4)
    |> Query.count
  in
  Alcotest.(check bool) "preschool count positive" true (n_preschool > 0)

let test_vaccination_intervention () =
  let engine = Indemics.create ~seed:7 (net ()) Indemics.default_params in
  let persons = Indemics.person_table engine in
  let all_pids =
    Array.to_list (Table.rows persons) |> List.map (fun row -> Value.to_int row.(0))
  in
  let changed = Indemics.apply_intervention engine ~pids:all_pids Indemics.Vaccinate in
  (* Everyone susceptible (795 after 5 seeds) becomes vaccinated. *)
  Alcotest.(check int) "795 vaccinated" 795 changed;
  let records = Indemics.run engine ~days:60 ~policy:None in
  let last = records.(60) in
  Alcotest.(check int) "nobody new infected" 0 last.Indemics.susceptible;
  Alcotest.(check bool) "epidemic contained" true
    (last.Indemics.recovered + last.Indemics.infectious + last.Indemics.exposed <= 5)

(* Algorithm 1: vaccinate preschoolers when >1 % of them are infected. *)
let preschool_policy engine =
  let cat = Indemics.catalog engine in
  let person = Catalog.find cat "Person" in
  let infected = Catalog.find cat "InfectedPerson" in
  let preschool =
    Query.of_table person |> Query.where Expr.(col "age" <= int 4) |> Query.run
  in
  let n_preschool = Table.cardinality preschool in
  let infected_ids =
    Array.fold_left
      (fun acc row -> Value.to_int row.(0) :: acc)
      [] (Table.rows infected)
  in
  let preschool_ids =
    Array.to_list (Table.rows preschool) |> List.map (fun r -> Value.to_int r.(0))
  in
  let n_infected_preschool =
    List.length (List.filter (fun pid -> List.mem pid infected_ids) preschool_ids)
  in
  if float_of_int n_infected_preschool > 0.01 *. float_of_int n_preschool then
    Indemics.apply_intervention engine ~pids:preschool_ids Indemics.Vaccinate
  else 0

let preschool_attack records engine =
  ignore records;
  let persons = Network.persons (Indemics.network engine) in
  let total = ref 0 and hit = ref 0 in
  Array.iter
    (fun p ->
      if p.Network.age <= 4 then begin
        incr total;
        match p.Network.health with
        | Network.Exposed | Network.Infectious | Network.Recovered -> incr hit
        | Network.Susceptible | Network.Vaccinated -> ()
      end)
    persons;
  float_of_int !hit /. float_of_int (Stdlib.max 1 !total)

let test_algorithm1_policy_reduces_preschool_attack () =
  let run policy seed =
    let engine = Indemics.create ~seed (net ()) Indemics.default_params in
    let records = Indemics.run engine ~days:120 ~policy in
    (preschool_attack records engine, records)
  in
  let baseline, _ = run None 8 in
  let protected_, records = run (Some preschool_policy) 8 in
  let vaccinations =
    Array.fold_left (fun acc r -> acc + r.Indemics.interventions_applied) 0 records
  in
  Alcotest.(check bool) "policy fired" true (vaccinations > 0);
  Alcotest.(check bool)
    (Printf.sprintf "preschool attack %.3f < %.3f" protected_ baseline)
    true
    (protected_ < baseline)

let test_quarantine_reduces_spread () =
  let run policy seed =
    let engine = Indemics.create ~seed (net ()) Indemics.default_params in
    let records = Indemics.run engine ~days:100 ~policy in
    Indemics.attack_rate records
  in
  (* Quarantine every infectious person each day. *)
  let quarantine_policy engine =
    let infected = Indemics.infected_table engine in
    let pids =
      Array.to_list (Table.rows infected) |> List.map (fun r -> Value.to_int r.(0))
    in
    Indemics.apply_intervention engine ~pids (Indemics.Quarantine 14)
  in
  let baseline = run None 9 in
  let contained = run (Some quarantine_policy) 9 in
  Alcotest.(check bool)
    (Printf.sprintf "quarantine cuts attack (%.2f < %.2f)" contained baseline)
    true
    (contained < baseline)

let test_observation_interval () =
  (* Policy fires only on observation days. *)
  let fired_days = ref [] in
  let policy engine =
    fired_days := Indemics.day engine :: !fired_days;
    0
  in
  let engine = Indemics.create ~seed:24 (net ()) Indemics.default_params in
  let _ = Indemics.run ~observe_every:7 engine ~days:21 ~policy:(Some policy) in
  Alcotest.(check (list int)) "weekly observations" [ 21; 14; 7 ] !fired_days

let test_contact_closure () =
  let run close seed =
    let engine = Indemics.create ~seed (net ()) Indemics.default_params in
    if close then Indemics.close_contacts engine ~kind:"household" ~days:1000;
    let records = Indemics.run engine ~days:100 ~policy:None in
    Indemics.attack_rate records
  in
  let baseline = run false 21 in
  let closed = run true 21 in
  Alcotest.(check bool)
    (Printf.sprintf "closing households cuts attack (%.2f < %.2f)" closed baseline)
    true
    (closed < baseline)

let test_closure_clock () =
  let engine = Indemics.create ~seed:22 (net ()) Indemics.default_params in
  Indemics.close_contacts engine ~kind:"daycare" ~days:3;
  Alcotest.(check (list (pair string int))) "active" [ ("daycare", 3) ]
    (Indemics.active_closures engine);
  ignore (Indemics.step_day engine);
  ignore (Indemics.step_day engine);
  Alcotest.(check (list (pair string int))) "ticked down" [ ("daycare", 1) ]
    (Indemics.active_closures engine);
  ignore (Indemics.step_day engine);
  Alcotest.(check (list (pair string int))) "expired" []
    (Indemics.active_closures engine);
  (* Re-closing extends, never shortens. *)
  Indemics.close_contacts engine ~kind:"daycare" ~days:5;
  Indemics.close_contacts engine ~kind:"daycare" ~days:2;
  Alcotest.(check (list (pair string int))) "max of extensions" [ ("daycare", 5) ]
    (Indemics.active_closures engine)

let test_economic_cost () =
  let engine = Indemics.create ~seed:23 (net ()) Indemics.default_params in
  Indemics.close_contacts engine ~kind:"daycare" ~days:10;
  let records = Indemics.run engine ~days:50 ~policy:None in
  let costs = Indemics.default_cost_params in
  let cost = Indemics.economic_cost engine costs records in
  let last = records.(50) in
  let expected_floor =
    costs.Indemics.infection_cost
    *. float_of_int (last.Indemics.exposed + last.Indemics.infectious + last.Indemics.recovered)
    +. (costs.Indemics.closure_day_cost *. 10.)
  in
  Alcotest.(check (float 1e-6)) "cost decomposition" expected_floor cost

let test_fear_rises_and_distances () =
  let fearful =
    { Indemics.default_params with fear_gain = 0.2; fear_distancing = 0.9 }
  in
  (* Fear peaks mid-epidemic and decays once the threat passes, so track
     the running maximum of the population mean. *)
  let run params seed days =
    let engine = Indemics.create ~seed (net ()) params in
    let peak_fear = ref 0. in
    let spy _ =
      peak_fear := Float.max !peak_fear (Network.mean_fear (Indemics.network engine));
      0
    in
    let records = Indemics.run engine ~days ~policy:(Some spy) in
    (!peak_fear, Indemics.attack_rate records)
  in
  let fear_level, fearful_attack = run fearful 31 120 in
  let baseline_fear, baseline_attack = run Indemics.default_params 31 120 in
  Alcotest.(check (float 1e-9)) "no fear without gain" 0. baseline_fear;
  Alcotest.(check bool)
    (Printf.sprintf "population gets fearful (peak %.3f)" fear_level)
    true (fear_level > 0.01);
  Alcotest.(check bool)
    (Printf.sprintf "distancing cuts attack (%.2f < %.2f)" fearful_attack baseline_attack)
    true
    (fearful_attack < baseline_attack)

let test_fear_queryable () =
  let params = { Indemics.default_params with fear_gain = 0.3; fear_distancing = 0.5 } in
  let engine = Indemics.create ~seed:32 (net ()) params in
  for _ = 1 to 40 do
    ignore (Indemics.step_day engine)
  done;
  let person = Indemics.person_table engine in
  let fearful =
    Query.of_table person |> Query.where Expr.(col "fear" > float 0.2) |> Query.count
  in
  Alcotest.(check bool) "fearful subpopulation queryable" true (fearful > 0)

let symmetric n =
  let ok = ref true in
  Array.iter
    (fun p ->
      List.iter
        (fun { Network.peer; _ } ->
          if
            not
              (List.exists (fun c -> c.Network.peer = p.Network.id) (Network.contacts n peer))
          then ok := false)
        (Network.contacts n p.Network.id))
    (Network.persons n);
  !ok

let test_edge_churn () =
  let n = net () in
  let before = Network.edge_count n in
  let rng = Mde_prob.Rng.create ~seed:33 () in
  Network.churn_community_edges n rng ~count:50;
  (* Edge count roughly preserved (fresh edges may occasionally collide
     with self-pairs and be skipped) and symmetry intact. *)
  let after = Network.edge_count n in
  Alcotest.(check bool)
    (Printf.sprintf "edge count stable (%d vs %d)" before after)
    true
    (abs (after - before) <= 5);
  Alcotest.(check bool) "still symmetric" true (symmetric n)

let () =
  Alcotest.run "mde_epidemic"
    [
      ( "network",
        [
          Alcotest.test_case "synthetic shape" `Quick test_synthetic_network_shape;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "dynamics",
        [
          Alcotest.test_case "population conserved" `Quick test_population_conserved;
          Alcotest.test_case "no transmission dies" `Quick test_zero_transmission_dies_out;
          Alcotest.test_case "epidemic spreads" `Quick test_epidemic_spreads;
        ] );
      ( "session",
        [ Alcotest.test_case "relational tables" `Quick test_relational_session ] );
      ( "interventions",
        [
          Alcotest.test_case "mass vaccination" `Quick test_vaccination_intervention;
          Alcotest.test_case "algorithm 1 policy" `Slow test_algorithm1_policy_reduces_preschool_attack;
          Alcotest.test_case "quarantine" `Slow test_quarantine_reduces_spread;
          Alcotest.test_case "contact closure" `Slow test_contact_closure;
          Alcotest.test_case "observation interval" `Quick test_observation_interval;
          Alcotest.test_case "closure clock" `Quick test_closure_clock;
          Alcotest.test_case "economic cost" `Quick test_economic_cost;
          Alcotest.test_case "fear dynamics" `Slow test_fear_rises_and_distances;
          Alcotest.test_case "fear queryable" `Quick test_fear_queryable;
          Alcotest.test_case "edge churn" `Quick test_edge_churn;
        ] );
    ]
