module Design = Mde_metamodel.Design
module Polynomial = Mde_metamodel.Polynomial
module Kriging = Mde_metamodel.Kriging
module Screening = Mde_metamodel.Screening
module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist

let check_close eps = Alcotest.(check (float eps))

(* --- Designs --- *)

let test_full_factorial () =
  let d = Design.full_factorial 3 in
  Alcotest.(check int) "8 runs" 8 (Design.runs d);
  Alcotest.(check int) "3 factors" 3 (Design.factors d);
  (* All rows distinct. *)
  let as_list = Array.to_list (Array.map Array.to_list d) in
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare as_list))

(* The exact Figure 3 table. *)
let figure3 =
  [|
    [| -1.; -1.; -1.; 1.; 1.; 1.; -1. |];
    [| 1.; -1.; -1.; -1.; -1.; 1.; 1. |];
    [| -1.; 1.; -1.; -1.; 1.; -1.; 1. |];
    [| 1.; 1.; -1.; 1.; -1.; -1.; -1. |];
    [| -1.; -1.; 1.; 1.; -1.; -1.; 1. |];
    [| 1.; -1.; 1.; -1.; 1.; -1.; -1. |];
    [| -1.; 1.; 1.; -1.; -1.; 1.; -1. |];
    [| 1.; 1.; 1.; 1.; 1.; 1.; 1. |];
  |]

let test_resolution_iii_matches_figure3 () =
  let d = Design.resolution_iii_7 () in
  Alcotest.(check int) "8 runs" 8 (Design.runs d);
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          check_close 1e-12 (Printf.sprintf "run %d x%d" (i + 1) (j + 1)) figure3.(i).(j) v)
        row)
    d

let test_resolution_iii_orthogonal () =
  Alcotest.(check bool) "orthogonal columns" true
    (Design.column_orthogonal (Design.resolution_iii_7 ()))

let test_fold_over () =
  let d = Design.resolution_iii_7 () in
  let folded = Design.fold_over d in
  Alcotest.(check int) "16 runs" 16 (Design.runs folded);
  (* Second half is the mirror of the first. *)
  for i = 0 to 7 do
    for j = 0 to 6 do
      check_close 1e-12 "mirrored" (-.d.(i).(j)) folded.(i + 8).(j)
    done
  done;
  Alcotest.(check bool) "still orthogonal" true (Design.column_orthogonal folded)

let test_resolution_v () =
  let d = Design.resolution_v_5 () in
  Alcotest.(check int) "16 runs" 16 (Design.runs d);
  Alcotest.(check int) "5 factors" 5 (Design.factors d);
  Alcotest.(check bool) "orthogonal" true (Design.column_orthogonal d);
  (* Resolution V: two-factor interaction columns are orthogonal to main
     effects — check x1x2 against every main column. *)
  let inter = Array.map (fun row -> row.(0) *. row.(1)) d in
  for j = 0 to 4 do
    let dot = ref 0. in
    Array.iteri (fun i row -> dot := !dot +. (inter.(i) *. row.(j))) d;
    check_close 1e-12 (Printf.sprintf "x1x2 ⊥ x%d" (j + 1)) 0. !dot
  done

let test_central_composite () =
  let d = Design.central_composite 2 in
  Alcotest.(check int) "4+4+1 runs" 9 (Design.runs d);
  (* Rotatable alpha = (2^2)^(1/4) = sqrt 2. *)
  let has_point p = Array.exists (fun row -> row = p) d in
  Alcotest.(check bool) "centre" true (has_point [| 0.; 0. |]);
  Alcotest.(check bool) "axial" true (has_point [| sqrt 2.; 0. |]);
  Alcotest.(check bool) "corner" true (has_point [| -1.; 1. |]);
  (* A CCD supports an exact full-quadratic fit. *)
  let response =
    Array.map
      (fun x ->
        1. +. (2. *. x.(0)) -. x.(1) +. (0.5 *. x.(0) *. x.(0))
        +. (0.25 *. x.(1) *. x.(1)) +. (3. *. x.(0) *. x.(1)))
      d
  in
  let terms = [ []; [ 0 ]; [ 1 ]; [ 0; 0 ]; [ 1; 1 ]; [ 0; 1 ] ] in
  let fit = Polynomial.fit ~terms ~design:d ~response in
  check_close 1e-9 "x0^2 coefficient" 0.5 (Polynomial.coefficient fit [ 0; 0 ]);
  check_close 1e-9 "x1^2 coefficient" 0.25 (Polynomial.coefficient fit [ 1; 1 ]);
  check_close 1e-9 "interaction" 3. (Polynomial.coefficient fit [ 0; 1 ]);
  check_close 1e-9 "r2" 1. (Polynomial.r_squared fit)

let test_latin_hypercube () =
  let rng = Rng.create ~seed:1 () in
  let d = Design.latin_hypercube ~rng ~factors:2 ~levels:9 in
  Alcotest.(check int) "9 runs" 9 (Design.runs d);
  Alcotest.(check bool) "latin property" true (Design.is_latin d);
  (* Levels are the centered -4..4 of Figure 5. *)
  let col = Array.map (fun row -> row.(0)) d in
  Array.sort Float.compare col;
  check_close 1e-12 "lowest level" (-4.) col.(0);
  check_close 1e-12 "highest level" 4. col.(8)

let test_nolh_improves_orthogonality () =
  let rng1 = Rng.create ~seed:2 () and rng2 = Rng.create ~seed:2 () in
  let single = Design.latin_hypercube ~rng:rng1 ~factors:4 ~levels:17 in
  let searched = Design.nearly_orthogonal_lh ~rng:rng2 ~factors:4 ~levels:17 ~tries:200 in
  Alcotest.(check bool) "still latin" true (Design.is_latin searched);
  Alcotest.(check bool)
    (Printf.sprintf "correlation %.3f <= %.3f"
       (Design.max_abs_correlation searched)
       (Design.max_abs_correlation single))
    true
    (Design.max_abs_correlation searched <= Design.max_abs_correlation single)

let test_scale () =
  let d = Design.full_factorial 2 in
  let scaled = Design.scale d ~ranges:[| (0., 10.); (100., 200.) |] in
  let col0 = Array.map (fun r -> r.(0)) scaled in
  Alcotest.(check bool) "endpoints hit" true
    (Array.exists (fun v -> v = 0.) col0 && Array.exists (fun v -> v = 10.) col0);
  Array.iter
    (fun row ->
      Alcotest.(check bool) "in range" true (row.(1) >= 100. && row.(1) <= 200.))
    scaled

(* --- Polynomial metamodels --- *)

let test_terms_up_to () =
  let terms = Polynomial.terms_up_to ~factors:3 ~order:2 in
  (* 1 intercept + 3 mains + 3 pairs. *)
  Alcotest.(check int) "term count" 7 (List.length terms);
  Alcotest.(check bool) "has interaction" true (List.mem [ 0; 2 ] terms)

let test_polynomial_recovers_coefficients () =
  (* Response 2 + 3x1 − x2 + 0.5x1x2 on a full factorial: exact fit. *)
  let design = Design.full_factorial 2 in
  let response =
    Array.map (fun row -> 2. +. (3. *. row.(0)) -. row.(1) +. (0.5 *. row.(0) *. row.(1))) design
  in
  let terms = Polynomial.terms_up_to ~factors:2 ~order:2 in
  let fit = Polynomial.fit ~terms ~design ~response in
  check_close 1e-9 "intercept" 2. (Polynomial.coefficient fit []);
  check_close 1e-9 "x1" 3. (Polynomial.coefficient fit [ 0 ]);
  check_close 1e-9 "x2" (-1.) (Polynomial.coefficient fit [ 1 ]);
  check_close 1e-9 "x1x2" 0.5 (Polynomial.coefficient fit [ 0; 1 ]);
  check_close 1e-9 "r2" 1. (Polynomial.r_squared fit);
  check_close 1e-9 "predict" (2. +. 1.5 -. 0.25 +. (0.5 *. 0.5 *. 0.25))
    (Polynomial.predict fit [| 0.5; 0.25 |])

let linear_7_factor_response ?(noise = 0.) ?(seed = 3) design =
  (* betas: x1..x7 = 4, 0, 2, 0, 0, 1, 0. *)
  let betas = [| 4.; 0.; 2.; 0.; 0.; 1.; 0. |] in
  let rng = Rng.create ~seed () in
  Array.map
    (fun row ->
      let acc = ref 10. in
      Array.iteri (fun j b -> acc := !acc +. (b *. row.(j))) betas;
      !acc +. (if noise > 0. then Dist.sample (Dist.Normal { mean = 0.; std = noise }) rng else 0.))
    design

let test_main_effects_on_resolution_iii () =
  (* The Figure 3/4 workflow: 8 runs estimate all 7 main effects. *)
  let design = Design.resolution_iii_7 () in
  let response = linear_7_factor_response design in
  let effects = Polynomial.main_effects ~design ~response in
  let expected = [| 8.; 0.; 4.; 0.; 0.; 2.; 0. |] in
  Array.iteri
    (fun j e ->
      check_close 1e-9 (Printf.sprintf "effect x%d" (j + 1)) expected.(j)
        e.Polynomial.effect)
    effects

let test_main_effects_plot_renders () =
  let design = Design.resolution_iii_7 () in
  let response = linear_7_factor_response design in
  let effects = Polynomial.main_effects ~design ~response in
  let plot = Polynomial.main_effects_plot effects in
  Alcotest.(check bool) "non-empty" true (String.length plot > 100);
  Alcotest.(check bool) "has points" true (String.contains plot 'o')

let test_half_normal_and_significance () =
  let design = Design.fold_over (Design.resolution_iii_7 ()) in
  let response = linear_7_factor_response ~noise:0.05 design in
  let terms = Polynomial.terms_up_to ~factors:7 ~order:1 in
  let fit = Polynomial.fit ~terms ~design ~response in
  let points = Polynomial.half_normal fit in
  Alcotest.(check int) "7 effects" 7 (List.length points);
  (* Sorted ascending. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Polynomial.abs_effect <= b.Polynomial.abs_effect && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending" true (sorted points);
  let significant = Polynomial.significant_terms fit in
  Alcotest.(check bool) "x1 found" true (List.mem [ 0 ] significant);
  Alcotest.(check bool) "x3 found" true (List.mem [ 2 ] significant);
  Alcotest.(check bool) "x2 not flagged" false (List.mem [ 1 ] significant)

(* --- Kriging --- *)

let test_covariance_function () =
  let theta = [| 1.; 2. |] in
  check_close 1e-12 "at zero distance" 3. (Kriging.covariance ~theta ~tau2:3. [| 1.; 1. |] [| 1.; 1. |]);
  let v = Kriging.covariance ~theta ~tau2:3. [| 0.; 0. |] [| 1.; 1. |] in
  check_close 1e-9 "product form" (3. *. exp (-3.)) v

let branin_like x = sin (3. *. x.(0)) +. (0.5 *. x.(0) *. x.(0))

let kriging_1d_fixture () =
  let design = Array.init 12 (fun i -> [| float_of_int i /. 11. *. 3. |]) in
  let response = Array.map branin_like design in
  (design, response)

let test_kriging_interpolates () =
  let design, response = kriging_1d_fixture () in
  let model = Kriging.fit ~theta:[| 4. |] ~tau2:1. ~design ~response () in
  Array.iteri
    (fun i x ->
      check_close 1e-5 (Printf.sprintf "design point %d" i) response.(i)
        (Kriging.predict model x))
    design

let test_kriging_predicts_between_points () =
  let design, response = kriging_1d_fixture () in
  let model = Kriging.fit_mle ~design ~response () in
  let worst = ref 0. in
  for i = 0 to 60 do
    let x = [| float_of_int i /. 60. *. 3. |] in
    worst := Float.max !worst (Float.abs (Kriging.predict model x -. branin_like x))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "max error %.4f small" !worst)
    true (!worst < 0.05)

let test_kriging_variance_zero_at_design_points () =
  let design, response = kriging_1d_fixture () in
  let model = Kriging.fit ~theta:[| 25. |] ~tau2:1. ~design ~response () in
  Alcotest.(check bool) "tiny at design point" true
    (Kriging.predict_variance model design.(3) < 1e-6);
  (* Midway between the first two design points the posterior is
     genuinely uncertain. *)
  Alcotest.(check bool) "positive away" true
    (Kriging.predict_variance model [| 0.136 |] > 1e-3)

let test_stochastic_kriging_smooths () =
  (* Noisy observations of a constant: SK must not chase the noise. *)
  let rng = Rng.create ~seed:5 () in
  let design = Array.init 10 (fun i -> [| float_of_int i |]) in
  let noise = Array.map (fun _ -> Dist.sample (Dist.Normal { mean = 0.; std = 1. }) rng) design in
  let means = Array.map (fun n -> 5. +. n) noise in
  let deterministic = Kriging.fit ~theta:[| 1. |] ~tau2:1. ~design ~response:means () in
  let stochastic =
    Kriging.fit_stochastic ~theta:[| 1. |] ~tau2:1. ~design ~means
      ~noise_variances:(Array.make 10 1.) ()
  in
  (* SK prediction at a noisy design point is pulled toward the global
     mean; deterministic kriging reproduces the noise exactly. *)
  let det_err = Float.abs (Kriging.predict deterministic design.(0) -. means.(0)) in
  let sk_pull = Float.abs (Kriging.predict stochastic design.(0) -. means.(0)) in
  Alcotest.(check bool) "interpolator sticks to data" true (det_err < 1e-6);
  Alcotest.(check bool) "SK shrinks toward mean" true (sk_pull > 0.05)

let test_gp_log_likelihood_prefers_right_scale () =
  (* Data from a slowly varying function: a wildly rough theta should be
     less likely than a moderate one. *)
  let design, response = kriging_1d_fixture () in
  let ll_good = Kriging.log_likelihood ~theta:[| 2. |] ~design ~response in
  let ll_bad = Kriging.log_likelihood ~theta:[| 900. |] ~design ~response in
  Alcotest.(check bool) "moderate scale preferred" true (ll_good > ll_bad)

(* --- Screening --- *)

let planted_simulator ?(noise = 0.) ?(seed = 7) () =
  (* 16 factors, important ones {2, 9, 13} with positive effects. *)
  let rng = Rng.create ~seed () in
  fun x ->
    (3. *. x.(2)) +. (1.5 *. x.(9)) +. (2.2 *. x.(13)) +. 20.
    +. (if noise > 0. then Dist.sample (Dist.Normal { mean = 0.; std = noise }) rng else 0.)

let test_sequential_bifurcation_finds_planted () =
  let simulate = planted_simulator () in
  let result = Screening.sequential_bifurcation ~threshold:0.1 ~factors:16 ~simulate () in
  Alcotest.(check (list int)) "found exactly the planted factors" [ 2; 9; 13 ]
    result.Screening.important;
  Alcotest.(check bool)
    (Printf.sprintf "runs %d << 2^16" result.Screening.runs_used)
    true
    (result.Screening.runs_used < 40)

let test_sequential_bifurcation_null_model () =
  let result =
    Screening.sequential_bifurcation ~threshold:0.1 ~factors:8
      ~simulate:(fun _ -> 5.) ()
  in
  Alcotest.(check (list int)) "nothing important" [] result.Screening.important;
  Alcotest.(check int) "two runs suffice" 2 result.Screening.runs_used

let test_sequential_bifurcation_noisy () =
  (* Gaussian observation noise: the replicated, z-guarded variant must
     still find exactly the planted factors. *)
  let simulate = planted_simulator ~noise:0.4 ~seed:11 () in
  let result =
    Screening.sequential_bifurcation ~threshold:0.2 ~replications:8
      ~confidence_z:2.5 ~factors:16 ~simulate ()
  in
  Alcotest.(check (list int)) "planted factors under noise" [ 2; 9; 13 ]
    result.Screening.important;
  Alcotest.(check bool)
    (Printf.sprintf "runs %d still far below factorial" result.Screening.runs_used)
    true
    (result.Screening.runs_used < 8 * 40)

let test_sequential_bifurcation_noisy_null () =
  (* Pure noise with the guard: no false positives. *)
  let rng = Rng.create ~seed:13 () in
  let simulate _ = Dist.sample (Dist.Normal { mean = 5.; std = 0.5 }) rng in
  let result =
    Screening.sequential_bifurcation ~threshold:0.1 ~replications:10
      ~confidence_z:3. ~factors:12 ~simulate ()
  in
  Alcotest.(check (list int)) "no false positives" [] result.Screening.important

module Morris = Mde_metamodel.Morris

let test_morris_screening () =
  (* y = 4 x1 + x3^2 (nonlinear) + noise-free; x2 inert. *)
  let simulate x = (4. *. x.(0)) +. (x.(2) *. x.(2)) in
  let rng = Rng.create ~seed:15 () in
  let result = Morris.screen ~trajectories:20 ~rng ~factors:3 ~simulate () in
  Alcotest.(check int) "runs = r(k+1)" (20 * 4) result.Morris.runs_used;
  (match result.Morris.ranked with
  | first :: _ -> Alcotest.(check int) "x1 most important" 0 first
  | [] -> Alcotest.fail "empty");
  let s = result.Morris.stats in
  Alcotest.(check bool) "inert factor near zero" true (s.(1).Morris.mu_star < 0.05);
  check_close 1e-6 "linear factor exact" 4. s.(0).Morris.mu_star;
  (* The nonlinear factor has sigma > 0 (effects vary with position); the
     linear one has sigma = 0. *)
  Alcotest.(check bool) "nonlinearity detected" true
    (s.(2).Morris.sigma > 0.05 && s.(0).Morris.sigma < 1e-9)

let test_gp_screening_ranks_active_factor () =
  (* 3 factors; only factor 1 matters. *)
  let rng = Rng.create ~seed:9 () in
  let design =
    Array.init 25 (fun _ -> Array.init 3 (fun _ -> Rng.float_range rng 0. 1.))
  in
  let response = Array.map (fun x -> sin (6. *. x.(1))) design in
  let screen = Screening.gp_screening ~design ~response in
  match screen.Screening.ranked with
  | (top, _) :: _ -> Alcotest.(check int) "factor 1 ranked first" 1 top
  | [] -> Alcotest.fail "empty ranking"

(* --- QCheck --- *)

let prop_lh_always_latin =
  QCheck.Test.make ~name:"randomized LH always has the Latin property" ~count:100
    QCheck.(pair (int_range 1 6) (int_range 2 20))
    (fun (factors, levels) ->
      let rng = Rng.create ~seed:(factors + (31 * levels)) () in
      Design.is_latin (Design.latin_hypercube ~rng ~factors ~levels))

let prop_fractional_orthogonal =
  QCheck.Test.make ~name:"fractional factorials have orthogonal columns" ~count:30
    QCheck.(int_range 2 5)
    (fun base ->
      let generators = [ List.init base Fun.id ] in
      Design.column_orthogonal (Design.fractional_factorial ~base ~generators))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_metamodel"
    [
      ( "design",
        [
          Alcotest.test_case "full factorial" `Quick test_full_factorial;
          Alcotest.test_case "Figure 3 exact" `Quick test_resolution_iii_matches_figure3;
          Alcotest.test_case "resolution III orthogonal" `Quick test_resolution_iii_orthogonal;
          Alcotest.test_case "fold-over" `Quick test_fold_over;
          Alcotest.test_case "central composite" `Quick test_central_composite;
          Alcotest.test_case "resolution V" `Quick test_resolution_v;
          Alcotest.test_case "latin hypercube" `Quick test_latin_hypercube;
          Alcotest.test_case "NOLH search" `Quick test_nolh_improves_orthogonality;
          Alcotest.test_case "scale" `Quick test_scale;
        ] );
      ( "polynomial",
        [
          Alcotest.test_case "terms" `Quick test_terms_up_to;
          Alcotest.test_case "recovers coefficients" `Quick test_polynomial_recovers_coefficients;
          Alcotest.test_case "main effects (Fig 4)" `Quick test_main_effects_on_resolution_iii;
          Alcotest.test_case "main effects plot" `Quick test_main_effects_plot_renders;
          Alcotest.test_case "half-normal + significance" `Quick test_half_normal_and_significance;
        ] );
      ( "kriging",
        [
          Alcotest.test_case "covariance (5)" `Quick test_covariance_function;
          Alcotest.test_case "interpolates (6)" `Quick test_kriging_interpolates;
          Alcotest.test_case "predicts between points" `Quick test_kriging_predicts_between_points;
          Alcotest.test_case "variance at design points" `Quick test_kriging_variance_zero_at_design_points;
          Alcotest.test_case "stochastic kriging smooths" `Quick test_stochastic_kriging_smooths;
          Alcotest.test_case "likelihood scale" `Quick test_gp_log_likelihood_prefers_right_scale;
        ] );
      ( "screening",
        [
          Alcotest.test_case "sequential bifurcation" `Quick test_sequential_bifurcation_finds_planted;
          Alcotest.test_case "null model" `Quick test_sequential_bifurcation_null_model;
          Alcotest.test_case "noisy responses" `Quick test_sequential_bifurcation_noisy;
          Alcotest.test_case "noisy null model" `Quick test_sequential_bifurcation_noisy_null;
          Alcotest.test_case "GP theta screening" `Quick test_gp_screening_ranks_active_factor;
          Alcotest.test_case "Morris elementary effects" `Quick test_morris_screening;
        ] );
      ("properties", qc [ prop_lh_always_latin; prop_fractional_orthogonal ]);
    ]
