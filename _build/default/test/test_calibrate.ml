module Mle = Mde_calibrate.Mle
module Moments = Mde_calibrate.Moments
module Msm = Mde_calibrate.Msm
module Market = Mde_calibrate.Market
module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist

let check_close eps = Alcotest.(check (float eps))

(* --- MLE --- *)

let test_exponential_mle () =
  let rng = Rng.create ~seed:1 () in
  let xs = Dist.sample_n (Dist.Exponential { rate = 2.5 }) rng 50_000 in
  check_close 0.05 "rate" 2.5 (Mle.exponential xs);
  (* Closed form: 1 / mean. *)
  check_close 1e-12 "is 1/mean" (1. /. Mde_prob.Stats.mean xs) (Mle.exponential xs)

let test_normal_mle () =
  let rng = Rng.create ~seed:2 () in
  let xs = Dist.sample_n (Dist.Normal { mean = -3.; std = 1.5 }) rng 50_000 in
  let mu, sigma = Mle.normal xs in
  check_close 0.05 "mu" (-3.) mu;
  check_close 0.05 "sigma" 1.5 sigma

let test_poisson_mle () =
  let rng = Rng.create ~seed:3 () in
  let ks = Dist.sample_discrete_n (Dist.Poisson 7.) rng 50_000 in
  check_close 0.1 "rate" 7. (Mle.poisson ks)

let test_numeric_mle_matches_closed_form () =
  let rng = Rng.create ~seed:4 () in
  let xs = Dist.sample_n (Dist.Exponential { rate = 1.7 }) rng 5000 in
  let result =
    Mle.numeric
      ~log_density:(fun ~theta x -> Dist.log_pdf (Dist.Exponential { rate = theta.(0) }) x)
      ~bounds:[| (0.01, 20.) |]
      ~x0:[| 1. |] xs
  in
  check_close 0.01 "numeric = closed form" (Mle.exponential xs) result.Mle.theta.(0)

let test_numeric_mle_two_params () =
  let rng = Rng.create ~seed:5 () in
  let xs = Dist.sample_n (Dist.Normal { mean = 4.; std = 2. }) rng 5000 in
  let result =
    Mle.numeric
      ~log_density:(fun ~theta x ->
        Dist.log_pdf (Dist.Normal { mean = theta.(0); std = theta.(1) }) x)
      ~bounds:[| (-10., 10.); (0.1, 10.) |]
      ~x0:[| 0.; 1. |] xs
  in
  check_close 0.1 "mu" 4. result.Mle.theta.(0);
  check_close 0.1 "sigma" 2. result.Mle.theta.(1)

(* --- Method of moments --- *)

let test_mm_exponential_equals_mle () =
  let rng = Rng.create ~seed:6 () in
  let xs = Dist.sample_n (Dist.Exponential { rate = 0.8 }) rng 10_000 in
  (* The paper's observation: MM and MLE coincide for the exponential. *)
  check_close 1e-12 "coincide" (Mle.exponential xs) (Moments.exponential xs)

let test_mm_generic_solve () =
  (* Gamma(k, s): E[X] = ks, E[X²] = ks²(k+1). Solve from observed raw
     moments. *)
  let rng = Rng.create ~seed:7 () in
  let xs = Dist.sample_n (Dist.Gamma { shape = 3.; scale = 2. }) rng 100_000 in
  let observed = Moments.sample_moments ~orders:[ 1; 2 ] xs in
  let result =
    Moments.solve
      ~population_moments:(fun theta ->
        let k = theta.(0) and s = theta.(1) in
        [| k *. s; k *. s *. s *. (k +. 1.) |])
      ~observed_moments:observed
      ~bounds:[| (0.1, 20.); (0.1, 20.) |]
      ~x0:[| 1.; 1. |]
  in
  check_close 0.3 "shape" 3. result.Moments.theta.(0);
  check_close 0.2 "scale" 2. result.Moments.theta.(1)

(* --- MSM --- *)

(* A transparent "simulation": moments of N(theta0, theta1). MSM must
   recover both parameters from observed data. *)
let normal_msm_problem ?(replications = 20) () =
  let truth = [| 3.; 1.5 |] in
  let data_rng = Rng.create ~seed:8 () in
  let moment_sample rng theta =
    let d = Dist.Normal { mean = theta.(0); std = theta.(1) } in
    let xs = Dist.sample_n d rng 200 in
    [| Mde_prob.Stats.mean xs; Mde_prob.Stats.std xs |]
  in
  let observed = Array.init 50 (fun _ -> moment_sample data_rng truth) in
  {
    Msm.simulate_moments = moment_sample;
    observed;
    bounds = [| (0., 6.); (0.2, 4.) |];
    replications;
    regularization = None;
  }

let test_msm_weight_matrix_spd () =
  let problem = normal_msm_problem () in
  let w = Msm.weight_matrix problem in
  (* SPD check via Cholesky. *)
  Alcotest.(check bool) "cholesky succeeds" true
    (match Mde_linalg.Mat.cholesky w with
    | _ -> true
    | exception Failure _ -> false)

let test_msm_objective_small_at_truth () =
  let problem = normal_msm_problem ~replications:50 () in
  let w = Msm.weight_matrix problem in
  let rng = Rng.create ~seed:9 () in
  let j_truth = Msm.objective problem rng w [| 3.; 1.5 |] in
  let j_far = Msm.objective problem rng w [| 5.; 0.5 |] in
  Alcotest.(check bool)
    (Printf.sprintf "J(truth)=%.2f << J(far)=%.2f" j_truth j_far)
    true
    (j_truth < j_far /. 10.)

let check_recovery name result =
  Alcotest.(check bool)
    (Printf.sprintf "%s recovered mean %.2f" name result.Msm.theta.(0))
    true
    (Float.abs (result.Msm.theta.(0) -. 3.) < 0.3);
  Alcotest.(check bool)
    (Printf.sprintf "%s recovered std %.2f" name result.Msm.theta.(1))
    true
    (Float.abs (result.Msm.theta.(1) -. 1.5) < 0.3)

let test_msm_nelder_mead () =
  let result = Msm.calibrate ~seed:10 (normal_msm_problem ()) Msm.Nelder_mead in
  check_recovery "nelder-mead" result

let test_msm_genetic () =
  let params = { Mde_optimize.Genetic.default_params with population = 20; generations = 12 } in
  let result = Msm.calibrate ~seed:11 (normal_msm_problem ()) (Msm.Genetic params) in
  check_recovery "genetic" result

let test_msm_kriging_surrogate () =
  let result =
    Msm.calibrate ~seed:12 (normal_msm_problem ())
      (Msm.Kriging_surrogate { design_points = 17; refine = true })
  in
  check_recovery "kriging" result

let test_msm_regularization_shrinks () =
  (* The paper's anti-overfitting hook: a strong penalty toward a prior
     pulls the estimate toward it. *)
  let base = normal_msm_problem () in
  let prior = [| 1.0; 3.0 |] in
  let regularized =
    { base with Msm.regularization = Some { Msm.lambda = 1e7; prior } }
  in
  let free = Msm.calibrate ~seed:17 base (Msm.Random_search 200) in
  let shrunk = Msm.calibrate ~seed:17 regularized (Msm.Random_search 200) in
  let dist theta target =
    sqrt (((theta.(0) -. target.(0)) ** 2.) +. ((theta.(1) -. target.(1)) ** 2.))
  in
  Alcotest.(check bool) "penalized estimate nearer the prior" true
    (dist shrunk.Msm.theta prior < dist free.Msm.theta prior)

let test_msm_counts_simulations () =
  let problem = normal_msm_problem ~replications:5 () in
  let result = Msm.calibrate ~seed:13 problem (Msm.Random_search 30) in
  Alcotest.(check int) "budget × replications" 150 result.Msm.simulations

(* --- Market ABS --- *)

let test_market_returns_shape () =
  let rng = Rng.create ~seed:14 () in
  let params = { Market.n_agents = 100; a = 0.01; b = 0.15; noise = 0.01 } in
  let returns = Market.simulate_returns rng params ~steps:2000 ~burn_in:200 in
  Alcotest.(check int) "length" 2000 (Array.length returns);
  let m = Market.moments returns in
  Alcotest.(check int) "3 moments" 3 (Array.length m);
  Alcotest.(check bool) "variance positive" true (m.(0) > 0.)

let test_market_herding_fattens_tails () =
  (* Strong herding should raise kurtosis and |r| clustering relative to
     the no-herding baseline (averaged over replications). *)
  let kurtosis b seed =
    let rng = Rng.create ~seed () in
    let params = { Market.n_agents = 50; a = 0.005; b; noise = 0.005 } in
    let acc = ref 0. in
    for _ = 1 to 10 do
      let m = Market.moments (Market.simulate_returns rng params ~steps:1500 ~burn_in:300) in
      acc := !acc +. m.(1)
    done;
    !acc /. 10.
  in
  let calm = kurtosis 0.0 15 in
  let herding = kurtosis 0.35 15 in
  Alcotest.(check bool)
    (Printf.sprintf "kurtosis rises with herding (%.2f -> %.2f)" calm herding)
    true
    (herding > calm)

let test_market_msm_adapter () =
  let rng = Rng.create ~seed:16 () in
  let m =
    Market.simulate_moments ~steps:500 ~burn_in:100 ~n_agents:40 ~noise:0.01 rng
      [| 0.01; 0.2 |]
  in
  Alcotest.(check int) "moment vector" 3 (Array.length m)

let () =
  Alcotest.run "mde_calibrate"
    [
      ( "mle",
        [
          Alcotest.test_case "exponential" `Quick test_exponential_mle;
          Alcotest.test_case "normal" `Quick test_normal_mle;
          Alcotest.test_case "poisson" `Quick test_poisson_mle;
          Alcotest.test_case "numeric = closed form" `Quick test_numeric_mle_matches_closed_form;
          Alcotest.test_case "numeric 2-param" `Quick test_numeric_mle_two_params;
        ] );
      ( "moments",
        [
          Alcotest.test_case "exponential MM = MLE" `Quick test_mm_exponential_equals_mle;
          Alcotest.test_case "generic gamma" `Slow test_mm_generic_solve;
        ] );
      ( "msm",
        [
          Alcotest.test_case "weight matrix SPD" `Quick test_msm_weight_matrix_spd;
          Alcotest.test_case "J small at truth" `Quick test_msm_objective_small_at_truth;
          Alcotest.test_case "nelder-mead recovers" `Slow test_msm_nelder_mead;
          Alcotest.test_case "genetic recovers" `Slow test_msm_genetic;
          Alcotest.test_case "kriging surrogate recovers" `Slow test_msm_kriging_surrogate;
          Alcotest.test_case "counts simulations" `Quick test_msm_counts_simulations;
          Alcotest.test_case "regularization shrinks" `Quick test_msm_regularization_shrinks;
        ] );
      ( "market",
        [
          Alcotest.test_case "returns shape" `Quick test_market_returns_shape;
          Alcotest.test_case "herding fattens tails" `Slow test_market_herding_fattens_tails;
          Alcotest.test_case "msm adapter" `Quick test_market_msm_adapter;
        ] );
    ]
