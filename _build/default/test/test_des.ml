module Event_queue = Mde_des.Event_queue
module Engine = Mde_des.Engine
module Queueing = Mde_des.Queueing
module Rng = Mde_prob.Rng

let check_close eps = Alcotest.(check (float eps))

(* --- event queue --- *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  List.iter
    (fun (t, v) -> Event_queue.add q ~time:t v)
    [ (3., "c"); (1., "a"); (2., "b"); (5., "e"); (4., "d") ];
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c"; "d"; "e" ]
    (List.rev !order)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.add q ~time:1. i
  done;
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "FIFO among ties" (List.init 10 Fun.id) (List.rev !order)

let test_queue_interleaved () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:2. 2;
  Event_queue.add q ~time:1. 1;
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Event_queue.peek_time q);
  (match Event_queue.pop q with
  | Some (t, v) ->
    check_close 1e-12 "time" 1. t;
    Alcotest.(check int) "value" 1 v
  | None -> Alcotest.fail "empty");
  Event_queue.add q ~time:0.5 0;
  (match Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check int) "later add wins" 0 v
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "size" 1 (Event_queue.size q)

let prop_queue_sorted =
  QCheck.Test.make ~name:"pop sequence is sorted by time" ~count:200
    QCheck.(list (float_range 0. 100.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.add q ~time:t ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | Some (t, ()) -> t >= last && drain t
        | None -> true
      in
      drain neg_infinity)

(* --- engine --- *)

let test_engine_fires_in_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule engine ~delay:2. (fun e -> log := ("b", Engine.now e) :: !log);
  Engine.schedule engine ~delay:1. (fun e ->
      log := ("a", Engine.now e) :: !log;
      (* Handlers may schedule relative to the current clock. *)
      Engine.schedule e ~delay:0.5 (fun e -> log := ("a2", Engine.now e) :: !log));
  Engine.run engine;
  Alcotest.(check (list string)) "order" [ "a"; "a2"; "b" ]
    (List.rev_map fst !log);
  check_close 1e-12 "clock at last event" 2. (Engine.now engine);
  Alcotest.(check int) "count" 3 (Engine.events_processed engine)

let test_engine_horizon () =
  let engine = Engine.create () in
  let fired = ref 0 in
  for i = 1 to 10 do
    Engine.schedule engine ~delay:(float_of_int i) (fun _ -> incr fired)
  done;
  Engine.run ~until:4.5 engine;
  Alcotest.(check int) "only events before horizon" 4 !fired;
  check_close 1e-12 "clock stops at horizon" 4.5 (Engine.now engine);
  Alcotest.(check int) "rest pending" 6 (Engine.pending engine)

let test_engine_max_events () =
  let engine = Engine.create () in
  let rec recurring e =
    Engine.schedule e ~delay:1. recurring
  in
  Engine.schedule engine ~delay:1. recurring;
  Engine.run ~max_events:25 engine;
  Alcotest.(check int) "budget respected" 25 (Engine.events_processed engine)

let test_engine_rejects_past () =
  let engine = Engine.create () in
  Engine.schedule engine ~delay:5. (fun e ->
      Alcotest.(check bool) "past scheduling rejected" true
        (try
           Engine.schedule_at e ~time:1. (fun _ -> ());
           false
         with Invalid_argument _ -> true));
  Engine.run engine

(* --- M/M/c validation --- *)

let run_mmc params seed =
  Queueing.simulate params ~customers:60_000 (Rng.create ~seed ())

let check_queueing_theory name params seed =
  let r = run_mmc params seed in
  let wq = Queueing.theoretical_wq params in
  let w = Queueing.theoretical_w params in
  let rho = Queueing.theoretical_utilization params in
  check_close (0.08 *. Float.max 0.05 wq) (name ^ " Wq") wq r.Queueing.mean_wait_in_queue;
  check_close (0.06 *. w) (name ^ " W") w r.Queueing.mean_time_in_system;
  check_close 0.02 (name ^ " rho") rho r.Queueing.utilization;
  (* Little's law on the simulated series itself. *)
  check_close
    (0.1 *. Float.max 0.05 (Queueing.theoretical_lq params))
    (name ^ " Lq")
    (Queueing.theoretical_lq params)
    r.Queueing.mean_queue_length

let test_mm1 () =
  check_queueing_theory "M/M/1 rho=0.6"
    { Queueing.arrival_rate = 3.; service_rate = 5.; servers = 1 }
    1

let test_mm1_heavy () =
  check_queueing_theory "M/M/1 rho=0.85"
    { Queueing.arrival_rate = 8.5; service_rate = 10.; servers = 1 }
    2

let test_mm3 () =
  check_queueing_theory "M/M/3 rho=0.7"
    { Queueing.arrival_rate = 10.5; service_rate = 5.; servers = 3 }
    3

let test_erlang_c_limits () =
  (* c = 1: Erlang C reduces to rho. *)
  let p1 = { Queueing.arrival_rate = 3.; service_rate = 5.; servers = 1 } in
  check_close 1e-12 "ErlangC(c=1) = rho" 0.6 (Queueing.erlang_c p1);
  (* Many idle servers: delay probability tiny. *)
  let p8 = { Queueing.arrival_rate = 1.; service_rate = 5.; servers = 8 } in
  Alcotest.(check bool) "near zero" true (Queueing.erlang_c p8 < 1e-6)

let test_more_servers_less_wait () =
  let base = { Queueing.arrival_rate = 9.; service_rate = 5.; servers = 2 } in
  let more = { base with Queueing.servers = 4 } in
  Alcotest.(check bool) "extra servers shrink Wq" true
    (Queueing.theoretical_wq more < Queueing.theoretical_wq base /. 5.);
  let r2 = run_mmc base 4 and r4 = run_mmc more 5 in
  Alcotest.(check bool) "simulated too" true
    (r4.Queueing.mean_wait_in_queue < r2.Queueing.mean_wait_in_queue)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_des"
    [
      ( "event_queue",
        [
          Alcotest.test_case "time ordering" `Quick test_queue_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_queue_interleaved;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fires in order" `Quick test_engine_fires_in_order;
          Alcotest.test_case "horizon" `Quick test_engine_horizon;
          Alcotest.test_case "event budget" `Quick test_engine_max_events;
          Alcotest.test_case "rejects the past" `Quick test_engine_rejects_past;
        ] );
      ( "queueing",
        [
          Alcotest.test_case "M/M/1 moderate" `Slow test_mm1;
          Alcotest.test_case "M/M/1 heavy" `Slow test_mm1_heavy;
          Alcotest.test_case "M/M/3" `Slow test_mm3;
          Alcotest.test_case "Erlang C limits" `Quick test_erlang_c_limits;
          Alcotest.test_case "server scaling" `Slow test_more_servers_less_wait;
        ] );
      ("properties", qc [ prop_queue_sorted ]);
    ]
