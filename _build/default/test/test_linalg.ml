module Vec = Mde_linalg.Vec
module Mat = Mde_linalg.Mat
module Tridiag = Mde_linalg.Tridiag
module Ols = Mde_linalg.Ols
module Rng = Mde_prob.Rng

let check_close eps = Alcotest.(check (float eps))

let check_vec eps name expected actual =
  Alcotest.(check int) (name ^ " dim") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i e -> check_close eps (Printf.sprintf "%s.(%d)" name i) e actual.(i))
    expected

(* --- Vec --- *)

let test_vec_ops () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  check_vec 1e-12 "add" [| 5.; 7.; 9. |] (Vec.add x y);
  check_vec 1e-12 "sub" [| -3.; -3.; -3. |] (Vec.sub x y);
  check_close 1e-12 "dot" 32. (Vec.dot x y);
  check_close 1e-12 "norm" (sqrt 14.) (Vec.norm2 x);
  check_close 1e-12 "dist" (sqrt 27.) (Vec.dist2 x y);
  let z = Vec.copy y in
  Vec.axpy 2. x z;
  check_vec 1e-12 "axpy" [| 6.; 9.; 12. |] z

(* --- Mat --- *)

let test_mat_mul_identity () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let i = Mat.identity 2 in
  let p = Mat.mul m i in
  check_close 1e-12 "same" (Mat.get m 1 0) (Mat.get p 1 0)

let test_mat_mul_known () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.mul a b in
  check_close 1e-12 "c00" 19. (Mat.get c 0 0);
  check_close 1e-12 "c01" 22. (Mat.get c 0 1);
  check_close 1e-12 "c10" 43. (Mat.get c 1 0);
  check_close 1e-12 "c11" 50. (Mat.get c 1 1)

let random_spd rng n =
  (* A = B Bᵀ + n·I is symmetric positive definite. *)
  let b = Mat.init n n (fun _ _ -> Rng.float_range rng (-1.) 1.) in
  let a = Mat.mul b (Mat.transpose b) in
  for i = 0 to n - 1 do
    Mat.set a i i (Mat.get a i i +. float_of_int n)
  done;
  a

let test_lu_solve () =
  let rng = Rng.create ~seed:41 () in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 8 in
    let a = Mat.init n n (fun _ _ -> Rng.float_range rng (-2.) 2.) in
    for i = 0 to n - 1 do
      Mat.set a i i (Mat.get a i i +. 5.)
    done;
    let x_true = Array.init n (fun i -> float_of_int i -. 2.) in
    let b = Mat.mul_vec a x_true in
    let x = Mat.lu_solve a b in
    check_vec 1e-8 "lu solution" x_true x
  done

let test_lu_singular () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (Failure "Mat.lu_decompose: singular matrix")
    (fun () -> ignore (Mat.lu_solve a [| 1.; 1. |]))

let test_inverse () =
  let rng = Rng.create ~seed:43 () in
  let a = random_spd rng 5 in
  let inv = Mat.inverse a in
  let p = Mat.mul a inv in
  for i = 0 to 4 do
    for j = 0 to 4 do
      check_close 1e-8 "A·A⁻¹ = I" (if i = j then 1. else 0.) (Mat.get p i j)
    done
  done

let test_cholesky () =
  let rng = Rng.create ~seed:47 () in
  let a = random_spd rng 6 in
  let l = Mat.cholesky a in
  let llt = Mat.mul l (Mat.transpose l) in
  for i = 0 to 5 do
    for j = 0 to 5 do
      check_close 1e-8 "LLᵀ = A" (Mat.get a i j) (Mat.get llt i j)
    done
  done

let test_cholesky_solve_matches_lu () =
  let rng = Rng.create ~seed:53 () in
  let a = random_spd rng 7 in
  let b = Array.init 7 (fun i -> float_of_int (i * i)) in
  check_vec 1e-7 "cholesky = lu" (Mat.lu_solve a b) (Mat.cholesky_solve a b)

let test_cholesky_rejects_non_spd () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "not SPD" (Failure "Mat.cholesky: matrix not positive definite")
    (fun () -> ignore (Mat.cholesky a))

let test_determinant () =
  let a = Mat.of_rows [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  let sign, logabs = Mat.determinant_sign_logabs a in
  check_close 1e-12 "sign" 1. sign;
  check_close 1e-12 "log|det|" (log 6.) logabs

(* --- Tridiag --- *)

let random_tridiag rng n =
  let lower = Array.init n (fun i -> if i = 0 then 0. else Rng.float_range rng (-1.) 1.) in
  let upper =
    Array.init n (fun i -> if i = n - 1 then 0. else Rng.float_range rng (-1.) 1.)
  in
  (* Diagonally dominant for stability. *)
  let diag =
    Array.init n (fun i -> 3. +. Float.abs lower.(i) +. Float.abs upper.(i))
  in
  Tridiag.create ~lower ~diag ~upper

let test_tridiag_matches_dense () =
  let rng = Rng.create ~seed:59 () in
  for _ = 1 to 20 do
    let n = 3 + Rng.int rng 20 in
    let t = random_tridiag rng n in
    let b = Array.init n (fun i -> sin (float_of_int i)) in
    let x_thomas = Tridiag.solve t b in
    let x_dense = Mat.lu_solve (Tridiag.to_dense t) b in
    check_vec 1e-8 "thomas = dense" x_dense x_thomas
  done

let test_tridiag_residual () =
  let rng = Rng.create ~seed:61 () in
  let t = random_tridiag rng 50 in
  let b = Array.init 50 (fun i -> float_of_int (i mod 7)) in
  let x = Tridiag.solve t b in
  Alcotest.(check bool) "residual tiny" true (Tridiag.residual_norm t x b < 1e-8)

let test_tridiag_mul_vec () =
  let t =
    Tridiag.create ~lower:[| 0.; 1.; 1. |] ~diag:[| 2.; 2.; 2. |] ~upper:[| 1.; 1.; 0. |]
  in
  check_vec 1e-12 "Ax" [| 4.; 8.; 8. |] (Tridiag.mul_vec t [| 1.; 2.; 3. |])

(* --- OLS --- *)

let test_ols_exact_quadratic () =
  (* y = 2 - 3t + 0.5t² sampled exactly: OLS must recover coefficients. *)
  let times = Array.init 20 float_of_int in
  let x = Mat.init 20 3 (fun i j -> times.(i) ** float_of_int j) in
  let y = Array.map (fun t -> 2. -. (3. *. t) +. (0.5 *. t *. t)) times in
  let fit = Ols.fit x y in
  check_vec 1e-6 "coefficients" [| 2.; -3.; 0.5 |] fit.Ols.coefficients;
  check_close 1e-9 "r2" 1. fit.Ols.r_squared;
  check_close 1e-6 "predict" (2. -. 9. +. 4.5) (Ols.predict fit [| 1.; 3.; 9. |])

let test_ols_noisy_recovers () =
  let rng = Rng.create ~seed:67 () in
  let n = 2000 in
  let x = Mat.init n 2 (fun i j -> if j = 0 then 1. else float_of_int i /. 100.) in
  let y =
    Array.init n (fun i ->
        1.5 +. (0.7 *. float_of_int i /. 100.) +. Rng.float_range rng (-0.1) 0.1)
  in
  let fit = Ols.fit x y in
  check_close 0.02 "intercept" 1.5 fit.Ols.coefficients.(0);
  check_close 0.005 "slope" 0.7 fit.Ols.coefficients.(1)

let test_ols_ridge_shrinks () =
  let x = Mat.init 10 2 (fun i j -> if j = 0 then 1. else float_of_int i) in
  let y = Array.init 10 (fun i -> float_of_int (2 * i)) in
  let plain = Ols.fit x y in
  let ridged = Ols.fit ~ridge:100. x y in
  Alcotest.(check bool)
    "ridge shrinks slope" true
    (Float.abs ridged.Ols.coefficients.(1) < Float.abs plain.Ols.coefficients.(1))

let test_ols_standard_errors () =
  let rng = Rng.create ~seed:71 () in
  let n = 500 in
  let x = Mat.init n 2 (fun i j -> if j = 0 then 1. else float_of_int i /. 50.) in
  let y = Array.init n (fun i -> 1. +. float_of_int i /. 50. +. Rng.float_range rng (-0.5) 0.5) in
  let fit = Ols.fit x y in
  let se = Ols.standard_errors x y fit in
  Alcotest.(check bool) "positive" true (se.(0) > 0. && se.(1) > 0.);
  Alcotest.(check bool) "small" true (se.(1) < 0.05)

(* --- QCheck --- *)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:100
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (r, c) ->
      let rng = Rng.create ~seed:(r + (10 * c)) () in
      let m = Mat.init r c (fun _ _ -> Rng.float rng) in
      let tt = Mat.transpose (Mat.transpose m) in
      let ok = ref true in
      for i = 0 to r - 1 do
        for j = 0 to c - 1 do
          if Mat.get m i j <> Mat.get tt i j then ok := false
        done
      done;
      !ok)

let prop_solve_residual =
  QCheck.Test.make ~name:"tridiagonal solve has tiny residual" ~count:50
    QCheck.(int_range 3 60)
    (fun n ->
      let rng = Rng.create ~seed:n () in
      let t = random_tridiag rng n in
      let b = Array.init n (fun _ -> Rng.float_range rng (-10.) 10.) in
      let x = Tridiag.solve t b in
      Tridiag.residual_norm t x b < 1e-7)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "mde_linalg"
    [
      ("vec", [ Alcotest.test_case "ops" `Quick test_vec_ops ]);
      ( "mat",
        [
          Alcotest.test_case "mul identity" `Quick test_mat_mul_identity;
          Alcotest.test_case "mul known" `Quick test_mat_mul_known;
          Alcotest.test_case "lu solve" `Quick test_lu_solve;
          Alcotest.test_case "lu singular" `Quick test_lu_singular;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "cholesky factor" `Quick test_cholesky;
          Alcotest.test_case "cholesky = lu" `Quick test_cholesky_solve_matches_lu;
          Alcotest.test_case "cholesky rejects" `Quick test_cholesky_rejects_non_spd;
          Alcotest.test_case "determinant" `Quick test_determinant;
        ] );
      ( "tridiag",
        [
          Alcotest.test_case "matches dense LU" `Quick test_tridiag_matches_dense;
          Alcotest.test_case "residual" `Quick test_tridiag_residual;
          Alcotest.test_case "mul_vec" `Quick test_tridiag_mul_vec;
        ] );
      ( "ols",
        [
          Alcotest.test_case "exact quadratic" `Quick test_ols_exact_quadratic;
          Alcotest.test_case "noisy line" `Quick test_ols_noisy_recovers;
          Alcotest.test_case "ridge shrinks" `Quick test_ols_ridge_shrinks;
          Alcotest.test_case "standard errors" `Quick test_ols_standard_errors;
        ] );
      ("properties", qc [ prop_transpose_involution; prop_solve_residual ]);
    ]
