module Rng = Mde_prob.Rng

type t = float array array

let runs d = Array.length d
let factors d = if Array.length d = 0 then 0 else Array.length d.(0)

let full_factorial k =
  assert (k >= 1 && k <= 20);
  let n = 1 lsl k in
  (* Factor 0 varies fastest — the enumeration order of Figure 3. *)
  Array.init n (fun i ->
      Array.init k (fun j -> if (i lsr j) land 1 = 1 then 1. else -1.))

let fractional_factorial ~base ~generators =
  let core = full_factorial base in
  Array.map
    (fun row ->
      let extra =
        List.map
          (fun gen ->
            List.fold_left
              (fun acc j ->
                assert (j >= 0 && j < base);
                acc *. row.(j))
              1. gen)
          generators
      in
      Array.append row (Array.of_list extra))
    core

let resolution_iii_7 () =
  fractional_factorial ~base:3 ~generators:[ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 0; 1; 2 ] ]

let resolution_v_5 () = fractional_factorial ~base:4 ~generators:[ [ 0; 1; 2; 3 ] ]

let fold_over d = Array.append d (Array.map (Array.map (fun v -> -.v)) d)

let central_composite ?axial k =
  assert (k >= 1 && k <= 12);
  let alpha =
    match axial with
    | Some a ->
      assert (a > 0.);
      a
    | None -> (2. ** float_of_int k) ** 0.25
  in
  let corners = full_factorial k in
  let axial_points =
    Array.init (2 * k) (fun idx ->
        let j = idx / 2 and sign = if idx mod 2 = 0 then -1. else 1. in
        Array.init k (fun c -> if c = j then sign *. alpha else 0.))
  in
  Array.concat [ corners; axial_points; [| Array.make k 0. |] ]

let centered_levels r = Array.init r (fun i -> float_of_int i -. (float_of_int (r - 1) /. 2.))

let latin_hypercube ~rng ~factors ~levels =
  assert (factors >= 1 && levels >= 2);
  let base = centered_levels levels in
  let columns =
    Array.init factors (fun _ ->
        let perm = Rng.permutation rng levels in
        Array.map (fun i -> base.(i)) perm)
  in
  Array.init levels (fun run -> Array.init factors (fun f -> columns.(f).(run)))

let column d j = Array.map (fun row -> row.(j)) d

let max_abs_correlation d =
  let k = factors d in
  let worst = ref 0. in
  for a = 0 to k - 2 do
    for b = a + 1 to k - 1 do
      let c = Float.abs (Mde_prob.Stats.correlation (column d a) (column d b)) in
      if c > !worst then worst := c
    done
  done;
  !worst

let nearly_orthogonal_lh ~rng ~factors ~levels ~tries =
  assert (tries >= 1);
  let best = ref (latin_hypercube ~rng ~factors ~levels) in
  let best_score = ref (max_abs_correlation !best) in
  for _ = 2 to tries do
    let candidate = latin_hypercube ~rng ~factors ~levels in
    let score = max_abs_correlation candidate in
    if score < !best_score then begin
      best := candidate;
      best_score := score
    end
  done;
  !best

let is_latin d =
  let r = runs d in
  r >= 2
  &&
  let expected = centered_levels r in
  let sorted_equal col =
    let sorted = Array.copy col in
    Array.sort Float.compare sorted;
    Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) sorted expected
  in
  let k = factors d in
  let rec go j = j >= k || (sorted_equal (column d j) && go (j + 1)) in
  go 0

let column_orthogonal ?(tol = 1e-9) d = max_abs_correlation d <= tol

let scale d ~ranges =
  let k = factors d in
  assert (Array.length ranges = k);
  let mins = Array.init k (fun j -> Array.fold_left (fun m row -> Float.min m row.(j)) infinity d) in
  let maxs = Array.init k (fun j -> Array.fold_left (fun m row -> Float.max m row.(j)) neg_infinity d) in
  Array.map
    (fun row ->
      Array.mapi
        (fun j v ->
          let lo, hi = ranges.(j) in
          let span = maxs.(j) -. mins.(j) in
          if span = 0. then 0.5 *. (lo +. hi)
          else lo +. ((hi -. lo) *. (v -. mins.(j)) /. span))
        row)
    d

let pp ppf d =
  Format.fprintf ppf "@[<v>Run |";
  for j = 1 to factors d do
    Format.fprintf ppf " x%-3d" j
  done;
  Format.fprintf ppf "@,----+%s@," (String.make (5 * factors d) '-');
  Array.iteri
    (fun i row ->
      Format.fprintf ppf "%3d |" (i + 1);
      Array.iter
        (fun v ->
          if Float.is_integer v then Format.fprintf ppf " %4d" (Float.to_int v)
          else Format.fprintf ppf " %4.1f" v)
        row;
      Format.fprintf ppf "@,")
    d;
  Format.fprintf ppf "@]"
