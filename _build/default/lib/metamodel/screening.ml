type sb_result = { important : int list; runs_used : int; group_tests : int }

let sequential_bifurcation ?(threshold = 0.01) ?(replications = 1)
    ?(confidence_z = 2.) ~factors ~simulate () =
  assert (factors >= 1 && replications >= 1);
  let cache = Hashtbl.create 64 in
  let runs = ref 0 in
  let tests = ref 0 in
  (* y(j_set): (mean, variance-of-mean) of the response with exactly the
     given factors high. Cached so the shared endpoints of adjacent groups
     are simulated once per replication. *)
  let response high_set =
    match Hashtbl.find_opt cache high_set with
    | Some stats -> stats
    | None ->
      let x =
        Array.init factors (fun j -> if List.mem j high_set then 1. else -1.)
      in
      let samples =
        Array.init replications (fun _ ->
            incr runs;
            simulate x)
      in
      let mean = Mde_prob.Stats.mean samples in
      let var_of_mean =
        if replications = 1 then 0.
        else Mde_prob.Stats.variance samples /. float_of_int replications
      in
      Hashtbl.add cache high_set (mean, var_of_mean);
      (mean, var_of_mean)
  in
  let base_mean, base_var = response [] in
  (* Aggregate half-effect of a contiguous factor group [lo..hi], with a
     noise guard when the response is replicated. *)
  let group_significant lo hi =
    incr tests;
    let high = List.init (hi - lo + 1) (fun d -> lo + d) in
    let mean, var = response high in
    let effect = (mean -. base_mean) /. 2. in
    let se = sqrt (var +. base_var) /. 2. in
    effect > threshold +. (confidence_z *. se)
  in
  let important = ref [] in
  let rec bisect lo hi =
    if group_significant lo hi then begin
      if lo = hi then important := lo :: !important
      else begin
        let mid = (lo + hi) / 2 in
        bisect lo mid;
        bisect (mid + 1) hi
      end
    end
  in
  bisect 0 (factors - 1);
  {
    important = List.sort Int.compare !important;
    runs_used = !runs;
    group_tests = !tests;
  }

type gp_screen = { theta : float array; ranked : (int * float) list }

let gp_screening ~design ~response =
  let model = Kriging.fit_mle ~design ~response () in
  let theta = Kriging.theta model in
  let ranked =
    List.sort
      (fun (_, a) (_, b) -> Float.compare b a)
      (List.mapi (fun i t -> (i, t)) (Array.to_list theta))
  in
  { theta; ranked }
