(** Morris elementary-effects screening — the standard one-factor-at-a-
    time global screening design from the §4.2 design-of-experiments
    toolbox (Sanchez–Wan's survey [46] lists it alongside the factorial
    and LH families). Each trajectory perturbs one factor at a time on a
    p-level grid; the distribution of the resulting elementary effects
    gives μ* (importance) and σ (interaction/nonlinearity) per factor,
    at a cost of r·(k+1) runs for k factors. *)

type factor_stats = {
  factor : int;  (** 0-based *)
  mu_star : float;  (** mean |elementary effect| — overall importance *)
  mu : float;  (** signed mean effect *)
  sigma : float;  (** effect std — nonlinearity / interactions *)
}

type result = {
  stats : factor_stats array;  (** by factor index *)
  runs_used : int;
  ranked : int list;  (** factors by μ* descending *)
}

val screen :
  ?levels:int ->
  ?trajectories:int ->
  rng:Mde_prob.Rng.t ->
  factors:int ->
  simulate:(float array -> float) ->
  unit ->
  result
(** [simulate] maps a point of the unit cube [0,1]^k to a response.
    [levels] (default 4, must be even) is the grid resolution; the jump
    is the canonical Δ = levels / (2(levels−1)). [trajectories] defaults
    to 10. *)
