module Mat = Mde_linalg.Mat

let covariance ~theta ~tau2 a b =
  assert (Array.length a = Array.length b && Array.length a = Array.length theta);
  let acc = ref 0. in
  Array.iteri
    (fun k ak ->
      let d = ak -. b.(k) in
      acc := !acc +. (theta.(k) *. d *. d))
    a;
  tau2 *. exp (-. !acc)

type t = {
  design : float array array;
  theta : float array;
  tau2 : float;
  beta0 : float;
  (* Precomputed Σ⁻¹(y − β₀1) and Σ (with any nugget / Σ_ε included). *)
  sigma : Mat.t;
  weights : float array;
}

let build ?beta0 ~theta ~tau2 ~design ~response ~extra_diag () =
  let n = Array.length design in
  assert (n >= 2 && Array.length response = n);
  let sigma =
    Mat.init n n (fun i j ->
        covariance ~theta ~tau2 design.(i) design.(j)
        +. (if i = j then extra_diag.(i) else 0.))
  in
  let solve b =
    match Mat.cholesky_solve sigma b with
    | x -> x
    | exception Failure _ -> Mat.lu_solve sigma b
  in
  let beta0 =
    match beta0 with
    | Some b -> b
    | None ->
      (* GLS intercept: (1ᵀΣ⁻¹y)/(1ᵀΣ⁻¹1). *)
      let ones = Array.make n 1. in
      let si_y = solve response in
      let si_1 = solve ones in
      let num = Array.fold_left ( +. ) 0. si_y in
      let den = Array.fold_left ( +. ) 0. si_1 in
      num /. den
  in
  let centered = Array.map (fun y -> y -. beta0) response in
  let weights = solve centered in
  { design; theta; tau2; beta0; sigma; weights }

let fit ?beta0 ?nugget ~theta ~tau2 ~design ~response () =
  let n = Array.length design in
  let nugget = match nugget with Some v -> v | None -> 1e-10 *. tau2 in
  build ?beta0 ~theta ~tau2 ~design ~response ~extra_diag:(Array.make n nugget) ()

let fit_stochastic ?beta0 ~theta ~tau2 ~design ~means ~noise_variances () =
  assert (Array.length noise_variances = Array.length design);
  build ?beta0 ~theta ~tau2 ~design ~response:means ~extra_diag:noise_variances ()

let correlations t x =
  Array.map (fun xi -> covariance ~theta:t.theta ~tau2:t.tau2 x xi) t.design

let predict t x =
  let r = correlations t x in
  let acc = ref t.beta0 in
  Array.iteri (fun i ri -> acc := !acc +. (ri *. t.weights.(i))) r;
  !acc

let predict_variance t x =
  let r = correlations t x in
  let si_r =
    match Mat.cholesky_solve t.sigma r with
    | v -> v
    | exception Failure _ -> Mat.lu_solve t.sigma r
  in
  let quad = ref 0. in
  Array.iteri (fun i ri -> quad := !quad +. (ri *. si_r.(i))) r;
  Float.max 0. (t.tau2 -. !quad)

let beta0 t = t.beta0
let theta t = Array.copy t.theta
let tau2 t = t.tau2

let log_likelihood ~theta ~design ~response =
  let n = Array.length design in
  assert (n >= 2);
  let nf = float_of_int n in
  (* Correlation matrix (tau2 = 1) with a small nugget. *)
  let r =
    Mat.init n n (fun i j ->
        covariance ~theta ~tau2:1. design.(i) design.(j)
        +. (if i = j then 1e-10 else 0.))
  in
  match Mat.cholesky r with
  | exception Failure _ -> neg_infinity
  | chol ->
    let log_det = ref 0. in
    for i = 0 to n - 1 do
      log_det := !log_det +. (2. *. log (Mat.get chol i i))
    done;
    let solve b = Mat.cholesky_solve r b in
    let ones = Array.make n 1. in
    let ri_y = solve response and ri_1 = solve ones in
    let beta0 = Array.fold_left ( +. ) 0. ri_y /. Array.fold_left ( +. ) 0. ri_1 in
    let centered = Array.map (fun y -> y -. beta0) response in
    let ri_c = solve centered in
    let quad = ref 0. in
    Array.iteri (fun i c -> quad := !quad +. (c *. ri_c.(i))) centered;
    let sigma2 = Float.max 1e-300 (!quad /. nf) in
    -0.5 *. ((nf *. log sigma2) +. !log_det)

let fit_mle ?(theta_bounds = (1e-3, 1e3)) ~design ~response () =
  let dims = Array.length design.(0) in
  let lo, hi = theta_bounds in
  let log_lo = log lo and log_hi = log hi in
  let objective log_theta =
    let theta = Array.map exp log_theta in
    -.log_likelihood ~theta ~design ~response
  in
  let bounds = Array.make dims (log_lo, log_hi) in
  let x0 = Array.make dims 0. in
  let opt =
    Mde_optimize.Nelder_mead.minimize_box ~max_iter:400 ~bounds ~f:objective ~x0 ()
  in
  let theta = Array.map exp opt.Mde_optimize.Nelder_mead.x in
  (* Recover tau2 as the profiled sigma2 under the chosen theta. *)
  let n = Array.length design in
  let nf = float_of_int n in
  let r =
    Mat.init n n (fun i j ->
        covariance ~theta ~tau2:1. design.(i) design.(j)
        +. (if i = j then 1e-10 else 0.))
  in
  let solve b =
    match Mat.cholesky_solve r b with
    | x -> x
    | exception Failure _ -> Mat.lu_solve r b
  in
  let ones = Array.make n 1. in
  let ri_y = solve response and ri_1 = solve ones in
  let beta0 = Array.fold_left ( +. ) 0. ri_y /. Array.fold_left ( +. ) 0. ri_1 in
  let centered = Array.map (fun y -> y -. beta0) response in
  let ri_c = solve centered in
  let quad = ref 0. in
  Array.iteri (fun i c -> quad := !quad +. (c *. ri_c.(i))) centered;
  let tau2 = Float.max 1e-12 (!quad /. nf) in
  fit ~beta0 ~theta ~tau2 ~design ~response ()
