module Mat = Mde_linalg.Mat
module Ols = Mde_linalg.Ols

type term = int list

let terms_up_to ~factors ~order =
  assert (factors >= 1 && order >= 0);
  (* Generate all sorted index subsets of size <= order, graded. *)
  let rec subsets k start =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun i -> List.map (fun rest -> i :: rest) (subsets (k - 1) (i + 1)))
        (List.init (factors - start) (fun d -> start + d))
  in
  List.concat_map (fun k -> subsets k 0) (List.init (order + 1) Fun.id)

let term_value term x = List.fold_left (fun acc i -> acc *. x.(i)) 1. term

type fit = {
  terms : term list;
  ols : Ols.fit;
}

let fit ~terms ~design ~response =
  assert (Array.length response = Design.runs design);
  let x =
    Mat.init (Design.runs design) (List.length terms) (fun i j ->
        term_value (List.nth terms j) design.(i))
  in
  { terms; ols = Ols.fit x response }

let coefficients f =
  List.mapi (fun j t -> (t, f.ols.Ols.coefficients.(j))) f.terms

let coefficient f term =
  match List.find_opt (fun (t, _) -> t = term) (coefficients f) with
  | Some (_, c) -> c
  | None -> raise Not_found

let predict f x =
  List.fold_left2
    (fun acc t j -> acc +. (f.ols.Ols.coefficients.(j) *. term_value t x))
    0. f.terms
    (List.init (List.length f.terms) Fun.id)

let r_squared f = f.ols.Ols.r_squared

type main_effect = {
  factor : int;
  low_mean : float;
  high_mean : float;
  effect : float;
}

let main_effects ~design ~response =
  let k = Design.factors design in
  Array.init k (fun j ->
      let lows = ref [] and highs = ref [] in
      Array.iteri
        (fun i row ->
          if row.(j) < 0. then lows := response.(i) :: !lows
          else highs := response.(i) :: !highs)
        design;
      let mean l =
        match l with
        | [] -> nan
        | _ -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
      in
      let low_mean = mean !lows and high_mean = mean !highs in
      { factor = j; low_mean; high_mean; effect = high_mean -. low_mean })

let main_effects_plot effects =
  let buf = Buffer.create 1024 in
  let all =
    Array.to_list effects
    |> List.concat_map (fun e -> [ e.low_mean; e.high_mean ])
  in
  let lo = List.fold_left Float.min infinity all in
  let hi = List.fold_left Float.max neg_infinity all in
  let span = if hi > lo then hi -. lo else 1. in
  let height = 9 in
  let row_of v =
    height - 1 - Float.to_int (Float.round ((v -. lo) /. span *. float_of_int (height - 1)))
  in
  let k = Array.length effects in
  let width = k * 8 in
  let canvas = Array.make_matrix height width ' ' in
  Array.iteri
    (fun j e ->
      let c0 = (j * 8) + 1 and c1 = (j * 8) + 5 in
      canvas.(row_of e.low_mean).(c0) <- 'o';
      canvas.(row_of e.high_mean).(c1) <- 'o';
      (* Slope mark between the two points. *)
      let mid_row = (row_of e.low_mean + row_of e.high_mean) / 2 in
      let slope_char =
        if e.effect > 0. then '/' else if e.effect < 0. then '\\' else '-'
      in
      canvas.(mid_row).((c0 + c1) / 2) <- slope_char)
    effects;
  Array.iter
    (fun row ->
      Buffer.add_string buf (String.init width (fun i -> row.(i)));
      Buffer.add_char buf '\n')
    canvas;
  Array.iteri
    (fun j _ -> Buffer.add_string buf (Printf.sprintf "  x%-5d " (j + 1)))
    effects;
  Buffer.add_char buf '\n';
  Array.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "%3.1f/%3.1f " e.low_mean e.high_mean))
    effects;
  Buffer.add_char buf '\n';
  Buffer.contents buf

type half_normal_point = { term_hn : term; abs_effect : float; quantile : float }

let half_normal f =
  let effects =
    List.filter (fun (t, _) -> t <> []) (coefficients f)
    |> List.map (fun (t, c) -> (t, Float.abs c))
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  let n = List.length effects in
  List.mapi
    (fun i (t, a) ->
      (* Half-normal plotting position of Daniel [14]. *)
      let p = 0.5 +. ((float_of_int i +. 0.5) /. (2. *. float_of_int n)) in
      { term_hn = t; abs_effect = a; quantile = Mde_prob.Special.normal_inv_cdf p })
    effects

let significant_terms ?(multiplier = 2.5) f =
  let points = half_normal f in
  let abs_effects = List.map (fun p -> p.abs_effect) points in
  match abs_effects with
  | [] -> []
  | _ ->
    let median = Mde_prob.Stats.median (Array.of_list abs_effects) in
    let cutoff = multiplier *. Float.max median 1e-12 in
    List.filter_map
      (fun p -> if p.abs_effect > cutoff then Some p.term_hn else None)
      points
