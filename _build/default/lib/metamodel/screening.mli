(** Factor screening (§4.3): identify the parameters the response is most
    sensitive to, spending far fewer runs than a full factorial.

    {!sequential_bifurcation} implements the group-testing procedure of
    Shen–Wan [50] for linear metamodels with known-positive main effects:
    test a whole group of factors at once, discard it if its aggregate
    effect is negligible, split and recurse otherwise. {!gp_screening}
    is the complex-metamodel alternative: fit a GP by MLE and read each
    factor's importance off its length-scale θ_j (equation (5) — θ_j ≈ 0
    means the response ignores the factor). *)

type sb_result = {
  important : int list;  (** 0-based factor indices, ascending *)
  runs_used : int;
  group_tests : int;
}

val sequential_bifurcation :
  ?threshold:float ->
  ?replications:int ->
  ?confidence_z:float ->
  factors:int ->
  simulate:(float array -> float) ->
  unit ->
  sb_result
(** [simulate] maps a ±1-coded point to a response. Assumes (as [50]
    does) an additive metamodel with nonnegative main effects: the
    aggregate effect of a factor group is half the response difference
    between "group high, rest low" and "all low", and subgroup effects
    are bounded by the group's. Groups whose aggregate half-effect is
    ≤ [threshold] (default 0.01) are discarded; singleton groups above
    threshold are declared important. Run caching ensures each distinct
    design point is simulated once (per replication).

    For stochastic responses — [50]'s Gaussian-noise setting — set
    [replications] > 1 (default 1): each design point is simulated that
    many times, group effects use the replicate means, and a group is
    split only when its effect exceeds threshold + [confidence_z] ×
    standard error (default z = 2), guarding against noise-induced
    splits. *)

type gp_screen = {
  theta : float array;
  ranked : (int * float) list;  (** factors sorted by θ descending *)
}

val gp_screening :
  design:float array array -> response:float array -> gp_screen
(** Fit a per-dimension-θ GP by MLE and rank the factors. *)
