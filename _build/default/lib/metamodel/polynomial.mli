(** Polynomial metamodels (§4.1, equation (3)): the response is modelled
    as β₀ + Σ βᵢxᵢ + Σ βᵢⱼxᵢxⱼ + … + ε, fit by OLS, with main-effects
    analysis and half-normal (Daniel) diagnostics for two-level
    designs. *)

type term = int list
(** Sorted factor indices; [] is the intercept, [i] a main effect,
    [i; j] a two-factor interaction, etc. *)

val terms_up_to : factors:int -> order:int -> term list
(** Intercept + all interactions up to the given order, in graded
    lexicographic order. *)

val term_value : term -> float array -> float
(** Product of the named coordinates (1 for the intercept). *)

type fit

val fit : terms:term list -> design:Design.t -> response:float array -> fit
val coefficient : fit -> term -> float
(** Raises [Not_found] for a term outside the model. *)

val coefficients : fit -> (term * float) list
val predict : fit -> float array -> float
val r_squared : fit -> float

(** {2 Main effects for two-level designs (Figure 4)} *)

type main_effect = {
  factor : int;  (** 0-based *)
  low_mean : float;  (** average response over the runs at −1 *)
  high_mean : float;  (** average response over the runs at +1 *)
  effect : float;  (** high − low *)
}

val main_effects : design:Design.t -> response:float array -> main_effect array
(** One entry per factor. Requires a ±1-coded design. *)

val main_effects_plot : main_effect array -> string
(** ASCII rendering of the paper's Figure 4 "main effects plot": per
    factor, the low and high mean response with a connecting slope. *)

(** {2 Half-normal diagnostics (Daniel plots)} *)

type half_normal_point = {
  term_hn : term;
  abs_effect : float;
  quantile : float;  (** half-normal plotting position *)
}

val half_normal : fit -> half_normal_point list
(** Non-intercept effects sorted by |effect| ascending, paired with
    half-normal quantiles Φ⁻¹((i − 0.5 + n)/(2n) …) — points far above
    the line through the small effects are significant. *)

val significant_terms : ?multiplier:float -> fit -> term list
(** Heuristic cut: terms whose |effect| exceeds [multiplier] (default
    2.5) × the median |effect| (a robust pseudo standard error). *)
