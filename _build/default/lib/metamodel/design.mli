(** Experimental designs (§4.2). A design is a runs × factors matrix of
    coded levels: ±1 for two-level (fractional) factorials, centered
    integer levels (e.g. −4..4) for Latin hypercubes. *)

type t = float array array
(** runs × factors. *)

val runs : t -> int
val factors : t -> int

val full_factorial : int -> t
(** All 2^k combinations of ±1 for k factors (k ≤ 20). *)

val fractional_factorial : base:int -> generators:int list list -> t
(** 2^{k−p} design: [base] factors get a full factorial; each generator
    (a list of base-factor indices, 0-based) defines one additional
    factor as the product of those columns. *)

val resolution_iii_7 : unit -> t
(** The paper's Figure 3: seven factors in eight runs (2^{7−4}_III), with
    generators x₄ = x₁x₂, x₅ = x₁x₃, x₆ = x₂x₃, x₇ = x₁x₂x₃ — matching
    the printed table row for row. *)

val resolution_v_5 : unit -> t
(** 2^{5−1}_V: five factors in 16 runs, x₅ = x₁x₂x₃x₄ — estimates main
    and two-factor effects when third-order effects vanish. *)

val central_composite : ?axial:float -> int -> t
(** Central composite design for k factors: the 2^k factorial corners,
    2k axial points at ±[axial] (default the rotatable (2^k)^(1/4)), and
    a centre point — 2^k + 2k + 1 runs, enough to fit a full quadratic
    metamodel (squares included). *)

val fold_over : t -> t
(** Append the sign-reversed runs: lifts a resolution III design to
    resolution IV (main effects clear of two-factor interactions) at
    twice the runs. *)

val latin_hypercube : rng:Mde_prob.Rng.t -> factors:int -> levels:int -> t
(** Randomized LH: each column is an independent random permutation of
    the [levels] centered levels (−(r−1)/2 … (r−1)/2), so every level
    appears exactly once per factor — Figure 5's construction. *)

val nearly_orthogonal_lh :
  rng:Mde_prob.Rng.t -> factors:int -> levels:int -> tries:int -> t
(** Cioppa–Lucas-style search: draw [tries] randomized LHs and keep the
    one with the smallest maximum absolute pairwise column correlation —
    space-filling and near-orthogonal. *)

val is_latin : t -> bool
(** Every column a permutation of the same centered level set. *)

val max_abs_correlation : t -> float
(** max over column pairs of |Pearson correlation|; 0 for orthogonal. *)

val column_orthogonal : ?tol:float -> t -> bool

val scale : t -> ranges:(float * float) array -> t
(** Map coded levels linearly into natural parameter ranges (the coded
    min/max of each column hit the range endpoints). *)

val pp : Format.formatter -> t -> unit
(** The Figure 3 / Figure 5 table rendering. *)
