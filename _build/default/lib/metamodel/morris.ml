module Rng = Mde_prob.Rng

type factor_stats = { factor : int; mu_star : float; mu : float; sigma : float }
type result = { stats : factor_stats array; runs_used : int; ranked : int list }

let screen ?(levels = 4) ?(trajectories = 10) ~rng ~factors ~simulate () =
  assert (factors >= 1 && levels >= 2 && levels mod 2 = 0 && trajectories >= 1);
  let p = float_of_int levels in
  let delta = p /. (2. *. (p -. 1.)) in
  let runs = ref 0 in
  let evaluate x =
    incr runs;
    simulate x
  in
  (* Per-factor elementary-effect samples. *)
  let effects = Array.make factors [] in
  for _ = 1 to trajectories do
    (* Random base point on the grid, restricted so that +delta stays in
       the unit cube. *)
    let base =
      Array.init factors (fun _ ->
          let max_level = Float.to_int ((p -. 1.) *. (1. -. delta)) in
          float_of_int (Rng.int rng (max_level + 1)) /. (p -. 1.))
    in
    let order = Rng.permutation rng factors in
    let x = Array.copy base in
    let y = ref (evaluate x) in
    Array.iter
      (fun j ->
        x.(j) <- x.(j) +. delta;
        let y' = evaluate x in
        effects.(j) <- ((y' -. !y) /. delta) :: effects.(j);
        y := y')
      order
  done;
  let stats =
    Array.mapi
      (fun factor samples ->
        let arr = Array.of_list samples in
        {
          factor;
          mu_star = Mde_prob.Stats.mean (Array.map Float.abs arr);
          mu = Mde_prob.Stats.mean arr;
          sigma = Mde_prob.Stats.std arr;
        })
      effects
  in
  let ranked =
    List.sort
      (fun a b -> Float.compare stats.(b).mu_star stats.(a).mu_star)
      (List.init factors Fun.id)
  in
  { stats; runs_used = !runs; ranked }
