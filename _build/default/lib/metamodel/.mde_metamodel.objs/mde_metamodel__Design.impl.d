lib/metamodel/design.ml: Array Float Format List Mde_prob String
