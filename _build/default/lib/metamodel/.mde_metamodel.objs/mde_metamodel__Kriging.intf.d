lib/metamodel/kriging.mli:
