lib/metamodel/design.mli: Format Mde_prob
