lib/metamodel/morris.ml: Array Float Fun List Mde_prob
