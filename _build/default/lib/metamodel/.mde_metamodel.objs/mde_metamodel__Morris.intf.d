lib/metamodel/morris.mli: Mde_prob
