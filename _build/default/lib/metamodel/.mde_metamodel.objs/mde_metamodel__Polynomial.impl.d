lib/metamodel/polynomial.ml: Array Buffer Design Float Fun List Mde_linalg Mde_prob Printf String
