lib/metamodel/screening.mli:
