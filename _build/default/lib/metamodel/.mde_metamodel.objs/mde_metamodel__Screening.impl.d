lib/metamodel/screening.ml: Array Float Hashtbl Int Kriging List Mde_prob
