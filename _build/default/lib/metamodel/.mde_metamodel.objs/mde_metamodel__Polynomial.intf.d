lib/metamodel/polynomial.mli: Design
