lib/metamodel/kriging.ml: Array Float Mde_linalg Mde_optimize
