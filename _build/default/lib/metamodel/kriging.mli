(** Gaussian-process metamodels / kriging (§4.1, equations (4)–(6)).

    Y(x) = β₀ + M(x) with M a stationary Gaussian field with the product
    Gaussian covariance Σ(xᵢ,xⱼ) = τ² Π_k exp(−θ_k (x_{ik} − x_{jk})²).
    The BLUP predictor (6) interpolates the design points exactly for
    deterministic simulations; {!fit_stochastic} adds the Σ_ε term of
    Ankenman–Nelson–Staum stochastic kriging so noisy responses are
    smoothed instead of interpolated. *)

type t

val covariance : theta:float array -> tau2:float -> float array -> float array -> float
(** Equation (5). *)

val fit :
  ?beta0:float ->
  ?nugget:float ->
  theta:float array ->
  tau2:float ->
  design:float array array ->
  response:float array ->
  unit ->
  t
(** Deterministic kriging. [beta0] defaults to the GLS estimate
    (1ᵀΣ⁻¹y)/(1ᵀΣ⁻¹1); [nugget] (default 1e-10·τ²) regularizes the
    Cholesky factorization. [theta] must have one entry per input
    dimension. *)

val fit_stochastic :
  ?beta0:float ->
  theta:float array ->
  tau2:float ->
  design:float array array ->
  means:float array ->
  noise_variances:float array ->
  unit ->
  t
(** Stochastic kriging: [means] are per-design-point Monte Carlo averages
    and [noise_variances] their squared standard errors (V(xᵢ)/nᵢ);
    Σ_M⁻¹ becomes (Σ_M + Σ_ε)⁻¹ in the predictor. *)

val predict : t -> float array -> float
(** Equation (6). *)

val predict_variance : t -> float array -> float
(** Posterior variance of the prediction (0 at design points for
    deterministic kriging). *)

val beta0 : t -> float
val theta : t -> float array
val tau2 : t -> float

val log_likelihood :
  theta:float array -> design:float array array -> response:float array -> float
(** Concentrated Gaussian log-likelihood (β₀ and τ² profiled out) — the
    objective for hyperparameter estimation. *)

val fit_mle :
  ?theta_bounds:float * float ->
  design:float array array ->
  response:float array ->
  unit ->
  t
(** Estimate per-dimension θ by maximizing the concentrated likelihood
    with Nelder–Mead in log-θ space (bounds default 1e-3..1e3), then fit.
    The fitted θ are also the GP factor-screening statistic of §4.3. *)
