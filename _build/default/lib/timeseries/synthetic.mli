(** Synthetic data generators for the benchmarks — documented substitutes
    for the paper's external datasets (see DESIGN.md). *)

val housing_index :
  ?seed:int ->
  ?start_year:float ->
  ?bust_year:float ->
  ?end_year:float ->
  unit ->
  Series.t
(** A monthly "median housing price" index with the qualitative shape of
    the paper's Figure 1 data: steady growth with noise up to
    [bust_year] (default 2006), an accelerating boom in the final years
    before it, then a sharp collapse — the regime change no trend
    extrapolation can see coming. Values are index points (≈100 at
    [start_year], default 1970). *)

val smooth_signal : ?seed:int -> knots:int -> span:float -> unit -> Series.t
(** A smooth random test function on [0, span]: a sum of a low-order
    polynomial and a few random sinusoids, sampled at [knots] evenly
    spaced points — the workload for interpolation/spline benches. *)

val noisy_observations :
  ?seed:int -> f:(float -> float) -> noise:float -> float array -> Series.t
(** [noisy_observations ~f ~noise times]: f(t) + Normal(0, noise) at each
    requested time. *)
