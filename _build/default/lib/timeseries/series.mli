(** Scalar time series ⟨(s₀,d₀), …, (s_m,d_m)⟩ with strictly increasing
    observation times — the §2.2 data model. *)

type t

val create : times:float array -> values:float array -> t
(** Raises [Invalid_argument] unless lengths match, length ≥ 1, and times
    strictly increase. *)

val of_pairs : (float * float) list -> t
val length : t -> int
val times : t -> float array
val values : t -> float array
val time_at : t -> int -> float
val value_at : t -> int -> float
val start_time : t -> float
val end_time : t -> float

val regular_times : start:float -> step:float -> count:int -> float array
(** start, start+step, … (count ticks). *)

val map_values : (float -> float) -> t -> t

val sub_before : t -> float -> t
(** Observations with time ≤ the cutoff (at least one must remain). *)

val locate : t -> float -> int
(** [locate s t]: largest index j with times.(j) ≤ t, clamped to
    [0, length−2]; the window index used by interpolation. *)

val pp : Format.formatter -> t -> unit
