type t = { times : float array; values : float array }

let create ~times ~values =
  let n = Array.length times in
  if n = 0 then invalid_arg "Series.create: empty";
  if Array.length values <> n then invalid_arg "Series.create: length mismatch";
  for i = 0 to n - 2 do
    if times.(i) >= times.(i + 1) then
      invalid_arg "Series.create: times must strictly increase"
  done;
  { times = Array.copy times; values = Array.copy values }

let of_pairs pairs =
  let arr = Array.of_list pairs in
  create ~times:(Array.map fst arr) ~values:(Array.map snd arr)

let length t = Array.length t.times
let times t = t.times
let values t = t.values
let time_at t i = t.times.(i)
let value_at t i = t.values.(i)
let start_time t = t.times.(0)
let end_time t = t.times.(Array.length t.times - 1)

let regular_times ~start ~step ~count =
  assert (count > 0 && step > 0.);
  Array.init count (fun i -> start +. (float_of_int i *. step))

let map_values f t = { t with values = Array.map f t.values }

let sub_before t cutoff =
  let keep = ref 0 in
  Array.iteri (fun i time -> if time <= cutoff then keep := i + 1) t.times;
  if !keep = 0 then invalid_arg "Series.sub_before: cutoff before first observation";
  { times = Array.sub t.times 0 !keep; values = Array.sub t.values 0 !keep }

let locate t x =
  let n = Array.length t.times in
  if n < 2 then 0
  else begin
    (* Binary search for the window [times.(j), times.(j+1)) containing x. *)
    let lo = ref 0 and hi = ref (n - 2) in
    if x <= t.times.(0) then 0
    else if x >= t.times.(n - 2) then n - 2
    else begin
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if t.times.(mid) <= x then lo := mid else hi := mid - 1
      done;
      !lo
    end
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i time -> Format.fprintf ppf "%g\t%.6g@," time t.values.(i))
    t.times;
  Format.fprintf ppf "@]"
