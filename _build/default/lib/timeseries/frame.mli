(** Multi-column time series — §2.2's general case where each observation
    dᵢ is a k-tuple. A frame is a shared time axis plus named float
    columns; alignment applies column-wise, and frames convert to and
    from relational tables (time in a ["time"] column), which is how
    Splash-style platforms exchange them between models. *)

type t

val create : times:float array -> columns:(string * float array) list -> t
(** Strictly increasing times; every column the same length; at least one
    column; duplicate names rejected. *)

val of_series : name:string -> Series.t -> t
val length : t -> int
val times : t -> float array
val column_names : t -> string list
(** In declaration order. *)

val column : t -> string -> Series.t
(** One column as a scalar series. Raises [Not_found]. *)

val values : t -> string -> float array
val row : t -> int -> (string * float) list
val map_column : t -> string -> (float -> float) -> t
val add_column : t -> string -> float array -> t
val drop_column : t -> string -> t
(** Raises [Invalid_argument] when dropping the last column. *)

val align : ?methods:(string * Align.method_) list -> t -> target_times:float array -> t
(** Align every column onto the target axis: columns listed in [methods]
    use the given method, the rest use Splash's automatic choice. *)

val to_table : t -> Mde_relational.Table.t
(** Schema: (time : float, <column> : float ...). *)

val of_table : time_column:string -> Mde_relational.Table.t -> t
(** Inverse of {!to_table}: rows must be sorted by strictly increasing
    time and all columns numeric. *)

val pp : Format.formatter -> t -> unit
