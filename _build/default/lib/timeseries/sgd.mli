(** Stochastic gradient descent for least squares, and the stratified
    distributed variant (DSGD) of §2.2 / [21].

    The problem is min_x L(x) = ‖Ax − b‖² with A given as sparse rows.
    SGD picks a random row I and steps along ∇L_I; DSGD partitions the
    rows into strata whose member rows touch pairwise-disjoint solution
    coordinates, so a whole stratum can be processed in parallel with no
    coordination — the property the paper exploits for the tridiagonal
    spline system with strata {1,4,7,…}, {2,5,8,…}, {3,6,9,…}. *)

type sparse_row = {
  cols : int array;  (** coordinates with nonzero coefficients *)
  coeffs : float array;  (** matching coefficients *)
  rhs : float;
}

type problem = { dim : int; rows : sparse_row array }

val of_tridiag : Mde_linalg.Tridiag.t -> float array -> problem
val residual_norm : problem -> float array -> float
(** ‖Ax − b‖₂. *)

(** Step-size rule. [Polynomial] is the paper's ε_n = scale·(n+1)^{−alpha}
    schedule (provably convergent for 1 ≤ alpha < 2, with the gradient
    estimate Y = m·∇L_I). [Row_normalized omega] is the randomized-
    Kaczmarz step — exact minimization of L_I along its gradient, relaxed
    by omega ∈ (0, 2) — which converges linearly on consistent systems
    and is the robust default. *)
type schedule =
  | Polynomial of { scale : float; alpha : float }
  | Row_normalized of float

val sgd :
  rng:Mde_prob.Rng.t ->
  schedule:schedule ->
  iters:int ->
  ?x0:float array ->
  problem ->
  float array
(** Plain sequential SGD with uniformly random row selection. *)

type dsgd_result = {
  solution : float array;
  sub_epochs : int;  (** stratum visits executed *)
  rows_processed : int;
  stratum_switches : int;
      (** cross-node synchronization points — the only shuffle DSGD needs *)
  final_residual : float;
}

val tridiagonal_strata : dim:int -> int array array
(** The 3-coloring strata for a tridiagonal system: rows {0,3,6,…},
    {1,4,7,…}, {2,5,8,…} (0-based). Rows within one stratum update
    disjoint coordinate sets. *)

val strata_independent : problem -> int array array -> bool
(** Check the DSGD precondition: within every stratum, no two rows share
    a coordinate. *)

val dsgd :
  rng:Mde_prob.Rng.t ->
  schedule:schedule ->
  sub_epochs:int ->
  ?x0:float array ->
  ?tol:float ->
  strata:int array array ->
  problem ->
  dsgd_result
(** Visit strata in a random regenerative order that spends equal time in
    each stratum in the long run (a uniformly shuffled sequence of the
    strata per regeneration cycle), processing every row of the visited
    stratum. Stops early once the residual drops below [tol]
    (default 0 = never). *)
