type t = { series : Series.t; sigma : float array }

let system s =
  let m = Series.length s - 1 in
  if m < 2 then invalid_arg "Spline.system: need at least 3 observations";
  let times = Series.times s and values = Series.values s in
  let h j = times.(j + 1) -. times.(j) in
  let slope j = (values.(j + 1) -. values.(j)) /. h j in
  let dim = m - 1 in
  (* Row i (0-based) is the continuity equation at interior knot i+1. *)
  let lower = Array.init dim (fun i -> if i = 0 then 0. else h i /. 6.) in
  let diag = Array.init dim (fun i -> (h i +. h (i + 1)) /. 3.) in
  let upper = Array.init dim (fun i -> if i = dim - 1 then 0. else h (i + 1) /. 6.) in
  let b = Array.init dim (fun i -> slope (i + 1) -. slope i) in
  (Mde_linalg.Tridiag.create ~lower ~diag ~upper, b)

let of_sigma series sigma =
  if Array.length sigma <> Series.length series then
    invalid_arg "Spline.of_sigma: constant count must equal knot count";
  { series; sigma = Array.copy sigma }

let fit s =
  let n = Series.length s in
  if n < 2 then invalid_arg "Spline.fit: need at least 2 observations";
  if n = 2 then { series = s; sigma = [| 0.; 0. |] }
  else begin
    let a, b = system s in
    let interior = Mde_linalg.Tridiag.solve a b in
    let sigma = Array.make n 0. in
    Array.blit interior 0 sigma 1 (n - 2);
    { series = s; sigma }
  end

let sigma t = t.sigma
let series t = t.series

let eval t x =
  let s = t.series in
  let j = Series.locate s x in
  let times = Series.times s and values = Series.values s in
  let sj = times.(j) and sj1 = times.(j + 1) in
  let dj = values.(j) and dj1 = values.(j + 1) in
  let hj = sj1 -. sj in
  let sig_j = t.sigma.(j) and sig_j1 = t.sigma.(j + 1) in
  (* The paper's formula, verbatim. *)
  (sig_j /. (6. *. hj) *. ((sj1 -. x) ** 3.))
  +. (sig_j1 /. (6. *. hj) *. ((x -. sj) ** 3.))
  +. (((dj1 /. hj) -. (sig_j1 *. hj /. 6.)) *. (x -. sj))
  +. (((dj /. hj) -. (sig_j *. hj /. 6.)) *. (sj1 -. x))

let eval_many t xs = Array.map (eval t) xs
