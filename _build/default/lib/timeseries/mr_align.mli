(** Massive-scale time alignment on the MapReduce substrate (§2.2).

    Splash parallelizes interpolation by forming windows
    W = ⟨(s_j,d_j),(s_{j+1},d_{j+1})⟩; each window computes the target
    points {tᵢ : s_j ≤ tᵢ < s_{j+1}} independently, and a parallel sort
    assembles the target series. For cubic splines the windows also carry
    the spline constants σ_j, σ_{j+1} (computed by {!Spline.fit} or
    {!Sgd.dsgd}), which is what makes the otherwise global problem
    window-local. *)

type window = {
  index : int;
  s0 : float;
  d0 : float;
  s1 : float;
  d1 : float;
  sigma0 : float;
  sigma1 : float;
}

val windows : ?sigma:float array -> Series.t -> window array
(** Consecutive-knot windows (length m for m+1 observations); σ defaults
    to all zeros (linear interpolation windows). *)

type result = {
  target : Series.t;
  interpolation_stats : Mde_mapred.Job.stats;
  sort_stats : Mde_mapred.Job.stats;
}

val interpolate :
  ?partitions:int ->
  kind:[ `Linear | `Cubic ] ->
  Series.t ->
  target_times:float array ->
  result
(** Distribute the windows over [partitions] (default 8), map each window
    to its interpolated target points, shuffle-sort by time, and return
    the assembled series plus the per-job shuffle accounting. Target
    points outside the knot range are clamped into the boundary windows.
    The result equals the sequential {!Align.align} answer (property
    tested). *)
