(** Time alignment between models (§2.2, Splash's time aligner).

    Alignment reconciles timescale discrepancies: when the target model
    runs on a coarser clock than the source, observations are aggregated;
    when it runs finer, they are interpolated; matching clocks need no
    transformation. {!classify} makes the tool's automatic determination;
    {!align} applies a chosen method. *)

type aggregation =
  | Mean
  | Sum
  | Last
  | First
  | Max_agg
  | Min_agg

type interpolation =
  | Nearest
  | Linear
  | Cubic  (** natural cubic spline *)
  | Repeat  (** step function: carry the last observation forward *)

type method_ =
  | Aggregate of aggregation
  | Interpolate of interpolation

type alignment_class =
  | Needs_aggregation  (** target is coarser than the source *)
  | Needs_interpolation  (** target is finer than the source *)
  | Identical  (** tick-for-tick match *)

val classify : Series.t -> target_times:float array -> alignment_class

val align : method_ -> Series.t -> target_times:float array -> Series.t
(** Aggregation: target tick tᵢ receives the aggregate of source
    observations in (tᵢ₋₁, tᵢ] (the first tick reaches back to −∞); ticks
    with no observations carry the previous target value (or the first
    source value at the start). Interpolation: evaluated at each target
    time, clamped to the source range for [Nearest]/[Repeat]. *)

val auto : Series.t -> target_times:float array -> Series.t * alignment_class
(** Splash-style automatic choice: Mean aggregation when coarsening,
    cubic-spline interpolation when refining, identity otherwise. *)
