module Rng = Mde_prob.Rng

type sparse_row = { cols : int array; coeffs : float array; rhs : float }
type problem = { dim : int; rows : sparse_row array }

let of_tridiag a b =
  let dim = Mde_linalg.Tridiag.dim a in
  assert (Array.length b = dim);
  let rows =
    Array.init dim (fun i ->
        let entries = ref [] in
        if i > 0 then begin
          let v = Mde_linalg.Tridiag.row a i (i - 1) in
          if v <> 0. then entries := (i - 1, v) :: !entries
        end;
        let d = Mde_linalg.Tridiag.row a i i in
        if d <> 0. then entries := (i, d) :: !entries;
        if i < dim - 1 then begin
          let v = Mde_linalg.Tridiag.row a i (i + 1) in
          if v <> 0. then entries := (i + 1, v) :: !entries
        end;
        let entries = List.rev !entries in
        {
          cols = Array.of_list (List.map fst entries);
          coeffs = Array.of_list (List.map snd entries);
          rhs = b.(i);
        })
  in
  { dim; rows }

let row_residual row x =
  let acc = ref (-.row.rhs) in
  Array.iteri (fun k j -> acc := !acc +. (row.coeffs.(k) *. x.(j))) row.cols;
  !acc

let residual_norm problem x =
  let acc = ref 0. in
  Array.iter
    (fun row ->
      let r = row_residual row x in
      acc := !acc +. (r *. r))
    problem.rows;
  sqrt !acc

type schedule = Polynomial of { scale : float; alpha : float } | Row_normalized of float

(* One SGD step on a single row, updating x in place. [n] is the global
   iteration counter, [m] the total row count (for the paper's Y = m∇L_I
   gradient estimate under the Polynomial schedule). *)
let step_row schedule n m x row =
  let r = row_residual row x in
  match schedule with
  | Polynomial { scale; alpha } ->
    let eps = scale *. (float_of_int (n + 1) ** -.alpha) in
    let factor = -.eps *. float_of_int m *. 2. *. r in
    Array.iteri (fun k j -> x.(j) <- x.(j) +. (factor *. row.coeffs.(k))) row.cols
  | Row_normalized omega ->
    let norm2 = Array.fold_left (fun acc c -> acc +. (c *. c)) 0. row.coeffs in
    if norm2 > 0. then begin
      let factor = -.omega *. r /. norm2 in
      Array.iteri (fun k j -> x.(j) <- x.(j) +. (factor *. row.coeffs.(k))) row.cols
    end

let sgd ~rng ~schedule ~iters ?x0 problem =
  let x = match x0 with Some v -> Array.copy v | None -> Array.make problem.dim 0. in
  let m = Array.length problem.rows in
  assert (m > 0);
  for n = 0 to iters - 1 do
    let i = Rng.int rng m in
    step_row schedule n m x problem.rows.(i)
  done;
  x

type dsgd_result = {
  solution : float array;
  sub_epochs : int;
  rows_processed : int;
  stratum_switches : int;
  final_residual : float;
}

let tridiagonal_strata ~dim =
  assert (dim > 0);
  let bucket k = Array.of_list (List.filter (fun i -> i mod 3 = k) (List.init dim Fun.id)) in
  Array.of_list
    (List.filter (fun a -> Array.length a > 0) [ bucket 0; bucket 1; bucket 2 ])

let strata_independent problem strata =
  Array.for_all
    (fun stratum ->
      let used = Hashtbl.create 64 in
      Array.for_all
        (fun i ->
          Array.for_all
            (fun j ->
              if Hashtbl.mem used j then false
              else begin
                Hashtbl.add used j ();
                true
              end)
            problem.rows.(i).cols)
        stratum)
    strata

let dsgd ~rng ~schedule ~sub_epochs ?x0 ?(tol = 0.) ~strata problem =
  assert (Array.length strata > 0);
  let x = match x0 with Some v -> Array.copy v | None -> Array.make problem.dim 0. in
  let m = Array.length problem.rows in
  let n_strata = Array.length strata in
  let counter = ref 0 in
  let rows_processed = ref 0 in
  let switches = ref 0 in
  let executed = ref 0 in
  (* Regenerative stratum schedule: a fresh uniform shuffle of the strata
     per cycle gives equal long-run time in each stratum (the [21]
     convergence condition). *)
  let order = Array.init n_strata Fun.id in
  let pos = ref n_strata in
  let next_stratum () =
    if !pos >= n_strata then begin
      Rng.shuffle_in_place rng order;
      pos := 0
    end;
    let s = order.(!pos) in
    incr pos;
    s
  in
  (try
     for _ = 1 to sub_epochs do
       let s = next_stratum () in
       incr switches;
       (* Rows within a stratum touch disjoint coordinates, so this loop is
          the "parallel" part; sequential execution is equivalent. *)
       Array.iter
         (fun i ->
           step_row schedule !counter m x problem.rows.(i);
           incr counter;
           incr rows_processed)
         strata.(s);
       incr executed;
       if tol > 0. && residual_norm problem x < tol then raise Exit
     done
   with Exit -> ());
  {
    solution = x;
    sub_epochs = !executed;
    rows_processed = !rows_processed;
    stratum_switches = !switches;
    final_residual = residual_norm problem x;
  }
