open Mde_relational

type t = { times : float array; columns : (string * float array) list }

let validate times columns =
  let n = Array.length times in
  if n = 0 then invalid_arg "Frame.create: empty";
  if columns = [] then invalid_arg "Frame.create: no columns";
  for i = 0 to n - 2 do
    if times.(i) >= times.(i + 1) then
      invalid_arg "Frame.create: times must strictly increase"
  done;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, values) ->
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Frame.create: duplicate column %S" name);
      Hashtbl.add seen name ();
      if Array.length values <> n then
        invalid_arg (Printf.sprintf "Frame.create: column %S length mismatch" name))
    columns

let create ~times ~columns =
  validate times columns;
  {
    times = Array.copy times;
    columns = List.map (fun (name, v) -> (name, Array.copy v)) columns;
  }

let of_series ~name s =
  { times = Series.times s; columns = [ (name, Series.values s) ] }

let length t = Array.length t.times
let times t = t.times
let column_names t = List.map fst t.columns

let values t name =
  match List.assoc_opt name t.columns with
  | Some v -> v
  | None -> raise Not_found

let column t name = Series.create ~times:t.times ~values:(values t name)
let row t i = List.map (fun (name, v) -> (name, v.(i))) t.columns

let map_column t name f =
  if not (List.mem_assoc name t.columns) then raise Not_found;
  {
    t with
    columns =
      List.map
        (fun (n, v) -> if n = name then (n, Array.map f v) else (n, v))
        t.columns;
  }

let add_column t name fresh =
  validate t.times ((name, fresh) :: t.columns);
  { t with columns = t.columns @ [ (name, Array.copy fresh) ] }

let drop_column t name =
  if not (List.mem_assoc name t.columns) then raise Not_found;
  match List.filter (fun (n, _) -> n <> name) t.columns with
  | [] -> invalid_arg "Frame.drop_column: cannot drop the last column"
  | columns -> { t with columns }

let align ?(methods = []) t ~target_times =
  let align_one name v =
    let series = Series.create ~times:t.times ~values:v in
    match List.assoc_opt name methods with
    | Some m -> Series.values (Align.align m series ~target_times)
    | None -> Series.values (fst (Align.auto series ~target_times))
  in
  {
    times = Array.copy target_times;
    columns = List.map (fun (name, v) -> (name, align_one name v)) t.columns;
  }

let to_table t =
  let schema =
    Schema.of_list
      (("time", Value.Tfloat) :: List.map (fun (n, _) -> (n, Value.Tfloat)) t.columns)
  in
  let rows =
    Array.mapi
      (fun i time ->
        Array.of_list
          (Value.Float time :: List.map (fun (_, v) -> Value.Float v.(i)) t.columns))
      t.times
  in
  Table.of_rows schema rows

let of_table ~time_column table =
  let schema = Table.schema table in
  let times = Table.column_floats table time_column in
  let columns =
    Schema.column_names schema
    |> List.filter (fun n -> n <> time_column)
    |> List.map (fun n -> (n, Table.column_floats table n))
  in
  create ~times ~columns

let pp ppf t =
  Format.fprintf ppf "@[<v>time";
  List.iter (fun (n, _) -> Format.fprintf ppf "\t%s" n) t.columns;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun i time ->
      Format.fprintf ppf "%g" time;
      List.iter (fun (_, v) -> Format.fprintf ppf "\t%.6g" v.(i)) t.columns;
      Format.fprintf ppf "@,")
    t.times;
  Format.fprintf ppf "@]"
