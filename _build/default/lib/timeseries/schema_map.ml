open Mde_relational

type field = { target : string; ty : Value.ty; source : Expr.t }

type t = { source_schema : Schema.t; fields : field list; target_schema : Schema.t }

let create ~source fields =
  List.iter
    (fun f ->
      List.iter
        (fun col ->
          if not (Schema.mem source col) then
            invalid_arg
              (Printf.sprintf
                 "Schema_map.create: field %S references unknown source column %S"
                 f.target col))
        (Expr.columns_used f.source))
    fields;
  let target_schema = Schema.of_list (List.map (fun f -> (f.target, f.ty)) fields) in
  { source_schema = source; fields; target_schema }

let target_schema t = t.target_schema

let compile t =
  let exprs = Array.of_list (List.map (fun f -> f.source) t.fields) in
  fun row -> Array.map (fun e -> Expr.eval t.source_schema row e) exprs

let apply t table =
  if not (Schema.equal (Table.schema table) t.source_schema) then
    invalid_arg "Schema_map.apply: table schema differs from mapping source";
  let transform = compile t in
  Table.of_rows t.target_schema (Array.map transform (Table.rows table))

let field target ty source = { target; ty; source }
let rename_field target ~ty ~from = { target; ty; source = Expr.col from }

let scale_field target ~from ~factor =
  { target; ty = Value.Tfloat; source = Expr.(col from * float factor) }

(* Substitute column references by expressions: the classic mapping
   composition, yielding a single-pass transform. *)
let rec subst bindings expr =
  let open Expr in
  match expr with
  | Col name -> (
    match List.assoc_opt name bindings with
    | Some e -> e
    | None -> expr)
  | Lit _ -> expr
  | Add (a, b) -> Add (subst bindings a, subst bindings b)
  | Sub (a, b) -> Sub (subst bindings a, subst bindings b)
  | Mul (a, b) -> Mul (subst bindings a, subst bindings b)
  | Div (a, b) -> Div (subst bindings a, subst bindings b)
  | Neg a -> Neg (subst bindings a)
  | Eq (a, b) -> Eq (subst bindings a, subst bindings b)
  | Ne (a, b) -> Ne (subst bindings a, subst bindings b)
  | Lt (a, b) -> Lt (subst bindings a, subst bindings b)
  | Le (a, b) -> Le (subst bindings a, subst bindings b)
  | Gt (a, b) -> Gt (subst bindings a, subst bindings b)
  | Ge (a, b) -> Ge (subst bindings a, subst bindings b)
  | And (a, b) -> And (subst bindings a, subst bindings b)
  | Or (a, b) -> Or (subst bindings a, subst bindings b)
  | Not a -> Not (subst bindings a)
  | Is_null a -> Is_null (subst bindings a)
  | If (a, b, c) -> If (subst bindings a, subst bindings b, subst bindings c)

let compose f g =
  if not (Schema.equal f.target_schema g.source_schema) then
    invalid_arg "Schema_map.compose: schemas do not line up";
  let bindings = List.map (fun ff -> (ff.target, ff.source)) f.fields in
  create ~source:f.source_schema
    (List.map (fun gf -> { gf with source = subst bindings gf.source }) g.fields)
