(** Shallow predictive models — the "data is dead" cautionary tools
    behind Figure 1. A trend or autoregressive model is fit to history
    and extrapolated forward; the figure's point is that such
    extrapolations are brittle across regime changes, which the FIG1
    bench demonstrates on the synthetic housing series. *)

type model =
  | Linear_trend  (** y ≈ β₀ + β₁·t *)
  | Quadratic_trend  (** y ≈ β₀ + β₁·t + β₂·t² *)
  | Ar of int  (** AR(p) with intercept, fit by OLS *)

type fit

val fit : model -> Series.t -> fit
(** Raises [Invalid_argument] when the series is too short for the
    model's parameter count. *)

val coefficients : fit -> float array
val in_sample_rmse : fit -> float

val extrapolate : fit -> horizon:int -> Series.t
(** Continue the series [horizon] steps past its last observation, on the
    series' mean time step. Trend models evaluate the fitted curve; AR
    models iterate the recursion on their own predictions. *)

val extrapolation_error : fit -> actual:Series.t -> float
(** RMSE of the extrapolation against the held-out continuation
    [actual] (whose times must extend past the fit's series). *)
