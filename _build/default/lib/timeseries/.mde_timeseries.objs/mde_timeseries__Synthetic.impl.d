lib/timeseries/synthetic.ml: Array Float Mde_prob Series
