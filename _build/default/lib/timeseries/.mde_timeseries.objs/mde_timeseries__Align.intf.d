lib/timeseries/align.mli: Series
