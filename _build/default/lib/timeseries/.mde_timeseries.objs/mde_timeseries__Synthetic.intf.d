lib/timeseries/synthetic.mli: Series
