lib/timeseries/forecast.ml: Array List Mde_linalg Mde_prob Series
