lib/timeseries/forecast.mli: Series
