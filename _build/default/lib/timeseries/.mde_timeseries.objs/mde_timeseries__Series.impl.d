lib/timeseries/series.ml: Array Format
