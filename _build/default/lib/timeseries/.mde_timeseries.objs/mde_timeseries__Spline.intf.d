lib/timeseries/spline.mli: Mde_linalg Series
