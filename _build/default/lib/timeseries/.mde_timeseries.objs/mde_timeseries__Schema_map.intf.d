lib/timeseries/schema_map.mli: Expr Mde_relational Schema Table Value
