lib/timeseries/mr_align.mli: Mde_mapred Series
