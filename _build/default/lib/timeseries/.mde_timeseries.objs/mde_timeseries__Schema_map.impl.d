lib/timeseries/schema_map.ml: Array Expr List Mde_relational Printf Schema Table Value
