lib/timeseries/align.ml: Array Float List Series Spline
