lib/timeseries/sgd.mli: Mde_linalg Mde_prob
