lib/timeseries/spline.ml: Array Mde_linalg Series
