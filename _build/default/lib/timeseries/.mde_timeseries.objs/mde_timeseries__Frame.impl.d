lib/timeseries/frame.ml: Align Array Format Hashtbl List Mde_relational Printf Schema Series Table Value
