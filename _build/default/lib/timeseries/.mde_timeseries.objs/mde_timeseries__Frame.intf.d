lib/timeseries/frame.mli: Align Format Mde_relational Series
