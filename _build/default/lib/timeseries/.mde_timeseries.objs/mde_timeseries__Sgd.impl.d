lib/timeseries/sgd.ml: Array Fun Hashtbl List Mde_linalg Mde_prob
