lib/timeseries/mr_align.ml: Array Float List Mde_mapred Series Spline
