type aggregation = Mean | Sum | Last | First | Max_agg | Min_agg
type interpolation = Nearest | Linear | Cubic | Repeat
type method_ = Aggregate of aggregation | Interpolate of interpolation
type alignment_class = Needs_aggregation | Needs_interpolation | Identical

let mean_step times =
  let n = Array.length times in
  if n < 2 then infinity
  else (times.(n - 1) -. times.(0)) /. float_of_int (n - 1)

let classify source ~target_times =
  let src_times = Series.times source in
  if
    Array.length src_times = Array.length target_times
    && Array.for_all2 (fun a b -> a = b) src_times target_times
  then Identical
  else begin
    let src_step = mean_step src_times and tgt_step = mean_step target_times in
    if tgt_step > src_step then Needs_aggregation else Needs_interpolation
  end

let aggregate_values kind values =
  match (kind, values) with
  | _, [] -> None
  | Mean, vs -> Some (List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs))
  | Sum, vs -> Some (List.fold_left ( +. ) 0. vs)
  | First, v :: _ -> Some v
  | Last, vs -> Some (List.nth vs (List.length vs - 1))
  | Max_agg, v :: vs -> Some (List.fold_left Float.max v vs)
  | Min_agg, v :: vs -> Some (List.fold_left Float.min v vs)

let aggregate kind source ~target_times =
  let src_times = Series.times source and src_values = Series.values source in
  let n_src = Array.length src_times in
  let out = Array.make (Array.length target_times) 0. in
  let cursor = ref 0 in
  let last = ref src_values.(0) in
  Array.iteri
    (fun i t ->
      (* Collect source observations in (previous target tick, t]. *)
      let bucket = ref [] in
      while !cursor < n_src && src_times.(!cursor) <= t do
        bucket := src_values.(!cursor) :: !bucket;
        incr cursor
      done;
      (match aggregate_values kind (List.rev !bucket) with
      | Some v -> last := v
      | None -> ());
      out.(i) <- !last)
    target_times;
  Series.create ~times:target_times ~values:out

let rec interpolate kind source ~target_times =
  let src_times = Series.times source and src_values = Series.values source in
  let n = Array.length src_times in
  let value_at t =
    if n = 1 then src_values.(0)
    else begin
      let j = Series.locate source t in
      match kind with
      | Nearest ->
        if Float.abs (t -. src_times.(j)) <= Float.abs (src_times.(j + 1) -. t) then
          src_values.(j)
        else src_values.(j + 1)
      | Repeat -> if t >= src_times.(j + 1) then src_values.(j + 1) else src_values.(j)
      | Linear ->
        let h = src_times.(j + 1) -. src_times.(j) in
        let w = (t -. src_times.(j)) /. h in
        ((1. -. w) *. src_values.(j)) +. (w *. src_values.(j + 1))
      | Cubic -> assert false (* handled below with a shared spline fit *)
    end
  in
  match kind with
  | Cubic when n >= 3 ->
    let spline = Spline.fit source in
    Series.create ~times:target_times ~values:(Spline.eval_many spline target_times)
  | Cubic ->
    (* Too few knots for a cubic: degrade to linear, as Splash's aligner does. *)
    interpolate Linear source ~target_times
  | Nearest | Linear | Repeat ->
    Series.create ~times:target_times ~values:(Array.map value_at target_times)

let align method_ source ~target_times =
  match method_ with
  | Aggregate kind -> aggregate kind source ~target_times
  | Interpolate kind -> interpolate kind source ~target_times

let auto source ~target_times =
  match classify source ~target_times with
  | Needs_aggregation as c -> (align (Aggregate Mean) source ~target_times, c)
  | Needs_interpolation as c -> (align (Interpolate Cubic) source ~target_times, c)
  | Identical as c -> (source, c)
