(** Clio-style schema mappings (§2.2, Clio++/Splash).

    A mapping declares, for each target column, an expression over the
    source schema (renames, unit conversions, derived fields). Like
    Clio++, the graphical spec is replaced by a declarative value which
    {!compile} turns into runtime transformation code; the compiled
    transform is what a Splash-style platform runs at every Monte Carlo
    repetition. *)

open Mde_relational

type field = { target : string; ty : Value.ty; source : Expr.t }

type t

val create : source:Schema.t -> field list -> t
(** Validates that every source expression references only source
    columns. Raises [Invalid_argument] otherwise. *)

val target_schema : t -> Schema.t

val compile : t -> Table.row -> Table.row
(** The compiled row transform. *)

val apply : t -> Table.t -> Table.t
(** Transform a whole table (checks the table's schema matches the
    mapping's source schema). *)

val field : string -> Value.ty -> Expr.t -> field
val rename_field : string -> ty:Value.ty -> from:string -> field
val scale_field : string -> from:string -> factor:float -> field
(** Unit conversion: target = source × factor (float typed). *)

val compose : t -> t -> t
(** [compose f g]: apply [f] then [g]; [g]'s source schema must equal
    [f]'s target schema. *)
