(** Natural cubic splines over a time series (§2.2).

    The spline constants σ₀..σ_m are the knot second derivatives; with
    natural boundary conditions σ₀ = σ_m = 0 the interior constants solve
    an (m−1)×(m−1) tridiagonal system A x = b. {!fit} solves it directly
    (Thomas algorithm); {!Dsgd} below re-derives the same constants by
    minimizing ‖Ax−b‖² with stratified distributed stochastic gradient
    descent — the paper's MapReduce-friendly formulation. *)

type t

val fit : Series.t -> t
(** Direct fit. Requires ≥ 2 observations (with exactly 2, the spline
    degenerates to linear interpolation). *)

val of_sigma : Series.t -> float array -> t
(** Assemble a spline from externally computed constants
    (length = series length), e.g. the DSGD solution. *)

val sigma : t -> float array
val series : t -> Series.t

val eval : t -> float -> float
(** Evaluate the paper's interpolation formula at any point inside the
    knot range; outside, extrapolates with the boundary cubic. *)

val eval_many : t -> float array -> float array

val system : Series.t -> Mde_linalg.Tridiag.t * float array
(** The tridiagonal system (A, b) whose solution gives σ₁..σ_{m−1};
    exposed for the DSGD solver and the benchmarks. Requires ≥ 3
    observations. *)
