type window = {
  index : int;
  s0 : float;
  d0 : float;
  s1 : float;
  d1 : float;
  sigma0 : float;
  sigma1 : float;
}

let windows ?sigma series =
  let n = Series.length series in
  assert (n >= 2);
  let times = Series.times series and values = Series.values series in
  let sigma =
    match sigma with
    | Some s ->
      assert (Array.length s = n);
      s
    | None -> Array.make n 0.
  in
  Array.init (n - 1) (fun j ->
      {
        index = j;
        s0 = times.(j);
        d0 = values.(j);
        s1 = times.(j + 1);
        d1 = values.(j + 1);
        sigma0 = sigma.(j);
        sigma1 = sigma.(j + 1);
      })

(* The paper's cubic interpolation formula, restricted to one window. With
   sigma = 0 on both ends it reduces to linear interpolation. *)
let eval_window w t =
  let h = w.s1 -. w.s0 in
  (w.sigma0 /. (6. *. h) *. ((w.s1 -. t) ** 3.))
  +. (w.sigma1 /. (6. *. h) *. ((t -. w.s0) ** 3.))
  +. (((w.d1 /. h) -. (w.sigma1 *. h /. 6.)) *. (t -. w.s0))
  +. (((w.d0 /. h) -. (w.sigma0 *. h /. 6.)) *. (w.s1 -. t))

type result = {
  target : Series.t;
  interpolation_stats : Mde_mapred.Job.stats;
  sort_stats : Mde_mapred.Job.stats;
}

let interpolate ?(partitions = 8) ~kind series ~target_times =
  let n_windows = Series.length series - 1 in
  assert (n_windows >= 1);
  let sigma =
    match kind with
    | `Linear -> None
    | `Cubic ->
      if Series.length series >= 3 then Some (Spline.sigma (Spline.fit series))
      else None
  in
  let ws = windows ?sigma series in
  (* Route every target time to its window up front (the "map side join"
     key assignment); boundary clamping sends out-of-range points to the
     first/last window. *)
  let targets_of_window = Array.make n_windows [] in
  Array.iter
    (fun t ->
      let j = Series.locate series t in
      targets_of_window.(j) <- t :: targets_of_window.(j))
    target_times;
  let dataset = Mde_mapred.Dataset.of_array ~partitions ws in
  let mapped, interpolation_stats =
    Mde_mapred.Job.map_reduce
      ~map:(fun w ->
        List.rev_map
          (fun t -> (w.index, (t, eval_window w t)))
          targets_of_window.(w.index))
      ~reduce:(fun _ points -> points)
      dataset
  in
  let sorted, sort_stats =
    Mde_mapred.Job.sort_by ~cmp:(fun (a, _) (b, _) -> Float.compare a b) mapped
  in
  let pairs = Mde_mapred.Dataset.to_array sorted in
  let target =
    Series.create ~times:(Array.map fst pairs) ~values:(Array.map snd pairs)
  in
  { target; interpolation_stats; sort_stats }
