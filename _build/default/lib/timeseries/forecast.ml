module Mat = Mde_linalg.Mat
module Ols = Mde_linalg.Ols

type model = Linear_trend | Quadratic_trend | Ar of int

type fit = {
  model : model;
  history : Series.t;
  ols : Ols.fit;
  rmse : float;
}

let design_trend degree series =
  let times = Series.times series in
  Mat.init (Array.length times) (degree + 1) (fun i j -> times.(i) ** float_of_int j)

let design_ar p series =
  let values = Series.values series in
  let n = Array.length values - p in
  let x = Mat.init n (p + 1) (fun i j -> if j = 0 then 1. else values.(i + p - j)) in
  let y = Array.init n (fun i -> values.(i + p)) in
  (x, y)

let fit model series =
  let x, y =
    match model with
    | Linear_trend ->
      if Series.length series < 3 then invalid_arg "Forecast.fit: series too short";
      (design_trend 1 series, Series.values series)
    | Quadratic_trend ->
      if Series.length series < 4 then invalid_arg "Forecast.fit: series too short";
      (design_trend 2 series, Series.values series)
    | Ar p ->
      if p < 1 then invalid_arg "Forecast.fit: AR order must be >= 1";
      if Series.length series < (2 * p) + 2 then
        invalid_arg "Forecast.fit: series too short for AR order";
      design_ar p series
  in
  let ols = Ols.fit x y in
  let fitted = Ols.predict_all ols x in
  let rmse = Mde_prob.Stats.root_mean_square_error fitted y in
  { model; history = series; ols; rmse }

let coefficients f = Array.copy f.ols.Ols.coefficients
let in_sample_rmse f = f.rmse

let mean_step series =
  let times = Series.times series in
  let n = Array.length times in
  assert (n >= 2);
  (times.(n - 1) -. times.(0)) /. float_of_int (n - 1)

let extrapolate f ~horizon =
  assert (horizon > 0);
  let step = mean_step f.history in
  let last_time = Series.end_time f.history in
  let times = Array.init horizon (fun i -> last_time +. (float_of_int (i + 1) *. step)) in
  let values =
    match f.model with
    | Linear_trend ->
      Array.map (fun t -> Ols.predict f.ols [| 1.; t |]) times
    | Quadratic_trend ->
      Array.map (fun t -> Ols.predict f.ols [| 1.; t; t *. t |]) times
    | Ar p ->
      let history = Series.values f.history in
      let n = Array.length history in
      (* Rolling buffer of the p most recent values (own predictions once
         past the end of the data). *)
      let window = Array.init p (fun k -> history.(n - 1 - k)) in
      Array.init horizon (fun _ ->
          let row = Array.init (p + 1) (fun j -> if j = 0 then 1. else window.(j - 1)) in
          let pred = Ols.predict f.ols row in
          for k = p - 1 downto 1 do
            window.(k) <- window.(k - 1)
          done;
          window.(0) <- pred;
          pred)
  in
  Series.create ~times ~values

let extrapolation_error f ~actual =
  let last_fit_time = Series.end_time f.history in
  let actual_times = Series.times actual and actual_values = Series.values actual in
  let future =
    Array.of_list
      (List.filteri
         (fun i _ -> actual_times.(i) > last_fit_time +. 1e-9)
         (Array.to_list actual_values))
  in
  let horizon = Array.length future in
  if horizon = 0 then invalid_arg "Forecast.extrapolation_error: no held-out points";
  let predicted = Series.values (extrapolate f ~horizon) in
  Mde_prob.Stats.root_mean_square_error predicted future
