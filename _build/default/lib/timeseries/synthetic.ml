module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist

let housing_index ?(seed = 19) ?(start_year = 1970.) ?(bust_year = 2006.)
    ?(end_year = 2011.) () =
  assert (start_year < bust_year && bust_year < end_year);
  let rng = Rng.create ~seed () in
  let months =
    Float.to_int (Float.round ((end_year -. start_year) *. 12.)) + 1
  in
  let times = Array.init months (fun i -> start_year +. (float_of_int i /. 12.)) in
  let boom_start = bust_year -. 6. in
  let values = Array.make months 0. in
  let level = ref 100. in
  Array.iteri
    (fun i t ->
      let drift =
        if t < boom_start then 0.0025 (* ~3 %/yr background appreciation *)
        else if t < bust_year then
          (* Accelerating boom: drift ramps up to ~15 %/yr at the peak. *)
          0.0025 +. (0.010 *. (t -. boom_start) /. (bust_year -. boom_start))
        else -0.012 (* collapse: ≈ −13 %/yr *)
      in
      let shock = Dist.sample (Dist.Normal { mean = 0.; std = 0.003 }) rng in
      level := !level *. exp (drift +. shock);
      values.(i) <- !level)
    times;
  Series.create ~times ~values

let smooth_signal ?(seed = 7) ~knots ~span () =
  assert (knots >= 2 && span > 0.);
  let rng = Rng.create ~seed () in
  let n_waves = 4 in
  let amps = Array.init n_waves (fun _ -> Rng.float_range rng 0.3 1.2) in
  let freqs = Array.init n_waves (fun _ -> Rng.float_range rng 0.5 3.0) in
  let phases = Array.init n_waves (fun _ -> Rng.float_range rng 0. (2. *. Float.pi)) in
  let a = Rng.float_range rng (-1.) 1. and b = Rng.float_range rng (-0.5) 0.5 in
  let f t =
    let x = t /. span in
    let acc = ref ((a *. x) +. (b *. x *. x)) in
    for k = 0 to n_waves - 1 do
      acc := !acc +. (amps.(k) *. sin ((2. *. Float.pi *. freqs.(k) *. x) +. phases.(k)))
    done;
    !acc
  in
  let times = Array.init knots (fun i -> span *. float_of_int i /. float_of_int (knots - 1)) in
  Series.create ~times ~values:(Array.map f times)

let noisy_observations ?(seed = 23) ~f ~noise times =
  let rng = Rng.create ~seed () in
  let values =
    Array.map (fun t -> f t +. Dist.sample (Dist.Normal { mean = 0.; std = noise }) rng) times
  in
  Series.create ~times ~values
