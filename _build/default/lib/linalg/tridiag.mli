(** Tridiagonal linear systems.

    The paper's cubic-spline constants are the solution of a tridiagonal
    system A x = b (§2.2). This module provides the direct O(n) Thomas
    solver — the sequential baseline that "does not translate well to a
    MapReduce environment" — plus helpers shared with the DSGD solver. *)

type t = {
  lower : float array;  (** sub-diagonal, length n (index 0 unused) *)
  diag : float array;  (** main diagonal, length n *)
  upper : float array;  (** super-diagonal, length n (index n-1 unused) *)
}

val create : lower:float array -> diag:float array -> upper:float array -> t
(** Validates the three bands have equal length. *)

val dim : t -> int

val solve : t -> float array -> float array
(** Thomas algorithm; O(n) time, not parallelizable across rows.
    Raises [Failure] on a zero pivot. Inputs are not modified. *)

val mul_vec : t -> float array -> float array
(** A x for a tridiagonal A. *)

val row : t -> int -> int -> float
(** [row t i j] is A(i,j) (0 outside the three bands). *)

val to_dense : t -> Mat.t

val residual_norm : t -> float array -> float array -> float
(** ‖A x − b‖₂, used to check iterative solutions. *)
