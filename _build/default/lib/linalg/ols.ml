type fit = {
  coefficients : Vec.t;
  residual_sum_of_squares : float;
  r_squared : float;
  n_observations : int;
}

let normal_matrix ?(ridge = 0.) x =
  let p = Mat.cols x in
  let xtx = Mat.mul (Mat.transpose x) x in
  if ridge > 0. then
    for j = 0 to p - 1 do
      Mat.set xtx j j (Mat.get xtx j j +. ridge)
    done;
  xtx

let fit ?(ridge = 0.) x y =
  let n = Mat.rows x and p = Mat.cols x in
  assert (Array.length y = n);
  assert (n >= p && p > 0);
  let xtx = normal_matrix ~ridge x in
  let xty = Mat.trans_mul_vec x y in
  let coefficients =
    match Mat.cholesky_solve xtx xty with
    | beta -> beta
    | exception Failure _ -> Mat.lu_solve xtx xty
  in
  let fitted = Mat.mul_vec x coefficients in
  let rss = ref 0. in
  for i = 0 to n - 1 do
    let d = y.(i) -. fitted.(i) in
    rss := !rss +. (d *. d)
  done;
  let y_mean = Vec.sum y /. float_of_int n in
  let tss = ref 0. in
  Array.iter
    (fun yi ->
      let d = yi -. y_mean in
      tss := !tss +. (d *. d))
    y;
  let r_squared = if !tss > 0. then 1. -. (!rss /. !tss) else 1. in
  { coefficients; residual_sum_of_squares = !rss; r_squared; n_observations = n }

let predict f row = Vec.dot f.coefficients row

let predict_all f x = Mat.mul_vec x f.coefficients

let standard_errors x _y f =
  let n = Mat.rows x and p = Mat.cols x in
  assert (n > p);
  let sigma2 = f.residual_sum_of_squares /. float_of_int (n - p) in
  let inv = Mat.inverse (normal_matrix x) in
  Array.init p (fun j -> sqrt (sigma2 *. Mat.get inv j j))
