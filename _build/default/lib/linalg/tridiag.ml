type t = { lower : float array; diag : float array; upper : float array }

let create ~lower ~diag ~upper =
  let n = Array.length diag in
  assert (Array.length lower = n && Array.length upper = n);
  { lower; diag; upper }

let dim t = Array.length t.diag

let solve t b =
  let n = dim t in
  assert (Array.length b = n && n > 0);
  (* Thomas algorithm with forward sweep stored in scratch arrays. *)
  let c' = Array.make n 0. in
  let d' = Array.make n 0. in
  if t.diag.(0) = 0. then failwith "Tridiag.solve: zero pivot";
  c'.(0) <- t.upper.(0) /. t.diag.(0);
  d'.(0) <- b.(0) /. t.diag.(0);
  for i = 1 to n - 1 do
    let m = t.diag.(i) -. (t.lower.(i) *. c'.(i - 1)) in
    if m = 0. then failwith "Tridiag.solve: zero pivot";
    c'.(i) <- (if i < n - 1 then t.upper.(i) /. m else 0.);
    d'.(i) <- (b.(i) -. (t.lower.(i) *. d'.(i - 1))) /. m
  done;
  let x = Array.make n 0. in
  x.(n - 1) <- d'.(n - 1);
  for i = n - 2 downto 0 do
    x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
  done;
  x

let mul_vec t x =
  let n = dim t in
  assert (Array.length x = n);
  Array.init n (fun i ->
      let acc = ref (t.diag.(i) *. x.(i)) in
      if i > 0 then acc := !acc +. (t.lower.(i) *. x.(i - 1));
      if i < n - 1 then acc := !acc +. (t.upper.(i) *. x.(i + 1));
      !acc)

let row t i j =
  let n = dim t in
  assert (i >= 0 && i < n && j >= 0 && j < n);
  if j = i then t.diag.(i)
  else if j = i - 1 then t.lower.(i)
  else if j = i + 1 then t.upper.(i)
  else 0.

let to_dense t =
  let n = dim t in
  Mat.init n n (row t)

let residual_norm t x b =
  let ax = mul_vec t x in
  let acc = ref 0. in
  Array.iteri
    (fun i v ->
      let d = v -. b.(i) in
      acc := !acc +. (d *. d))
    ax;
  sqrt !acc
