type t = float array

let make n x = Array.make n x
let init = Array.init
let dim = Array.length
let copy = Array.copy

let check_same_dim x y = assert (Array.length x = Array.length y)

let add x y =
  check_same_dim x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_same_dim x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale a x = Array.map (fun xi -> a *. xi) x

let dot x y =
  check_same_dim x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let dist2 x y =
  check_same_dim x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let axpy a x y =
  check_same_dim x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let map2 f x y =
  check_same_dim x y;
  Array.mapi (fun i xi -> f xi y.(i)) x

let sum = Array.fold_left ( +. ) 0.

let max_abs x = Array.fold_left (fun acc xi -> Float.max acc (Float.abs xi)) 0. x

let pp ppf x =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf v -> Format.fprintf ppf "%.6g" v))
    x
