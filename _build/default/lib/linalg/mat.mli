(** Dense row-major matrices with the factorizations used by the kriging
    predictor (6), OLS metamodel fitting, and the spline benchmarks:
    LU with partial pivoting and Cholesky. *)

type t

val create : int -> int -> t
(** Zero matrix with given rows × cols. *)

val init : int -> int -> (int -> int -> float) -> t
val of_rows : float array array -> t
(** Copies; all rows must have equal length. *)

val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val row : t -> int -> float array
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Matrix product; inner dimensions must agree. *)

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix-vector product. *)

val trans_mul_vec : t -> Vec.t -> Vec.t
(** [trans_mul_vec a x = aᵀ x] without materializing the transpose. *)

val lu_solve : t -> Vec.t -> Vec.t
(** Solve A x = b by LU with partial pivoting. Raises [Failure] on a
    (numerically) singular matrix. Does not modify A. *)

val lu_solve_many : t -> t -> t
(** Solve A X = B column-by-column. *)

val inverse : t -> t
(** Raises [Failure] on singular input. *)

val cholesky : t -> t
(** Lower-triangular L with L Lᵀ = A for symmetric positive-definite A.
    Raises [Failure] if A is not positive definite. *)

val cholesky_solve : t -> Vec.t -> Vec.t
(** Solve A x = b via Cholesky (A symmetric positive-definite). *)

val determinant_sign_logabs : t -> float * float
(** [(sign, log|det|)] via LU; sign is 0. for singular matrices. *)

val pp : Format.formatter -> t -> unit
