(** Dense float vectors (thin wrappers over [float array] with the
    arithmetic needed by the solvers, SGD, and kriging code). *)

type t = float array

val make : int -> float -> t
val init : int -> (int -> float) -> t
val dim : t -> int
val copy : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val dist2 : t -> t -> float
(** Euclidean distance. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y := y + a·x] in place. *)

val map2 : (float -> float -> float) -> t -> t -> t
val sum : t -> float
val max_abs : t -> float
val pp : Format.formatter -> t -> unit
