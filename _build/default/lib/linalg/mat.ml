type t = { r : int; c : int; a : float array }

let create r c =
  assert (r >= 0 && c >= 0);
  { r; c; a = Array.make (r * c) 0. }

let init r c f =
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      m.a.((i * c) + j) <- f i j
    done
  done;
  m

let of_rows rows =
  let r = Array.length rows in
  assert (r > 0);
  let c = Array.length rows.(0) in
  Array.iter (fun row -> assert (Array.length row = c)) rows;
  init r c (fun i j -> rows.(i).(j))

let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let rows m = m.r
let cols m = m.c

let get m i j =
  assert (i >= 0 && i < m.r && j >= 0 && j < m.c);
  m.a.((i * m.c) + j)

let set m i j v =
  assert (i >= 0 && i < m.r && j >= 0 && j < m.c);
  m.a.((i * m.c) + j) <- v

let copy m = { m with a = Array.copy m.a }
let transpose m = init m.c m.r (fun i j -> get m j i)
let row m i = Array.init m.c (fun j -> get m i j)

let add x y =
  assert (x.r = y.r && x.c = y.c);
  { x with a = Array.mapi (fun k v -> v +. y.a.(k)) x.a }

let sub x y =
  assert (x.r = y.r && x.c = y.c);
  { x with a = Array.mapi (fun k v -> v -. y.a.(k)) x.a }

let scale s m = { m with a = Array.map (fun v -> s *. v) m.a }

let mul x y =
  assert (x.c = y.r);
  let out = create x.r y.c in
  for i = 0 to x.r - 1 do
    for k = 0 to x.c - 1 do
      let xik = x.a.((i * x.c) + k) in
      if xik <> 0. then
        for j = 0 to y.c - 1 do
          out.a.((i * y.c) + j) <- out.a.((i * y.c) + j) +. (xik *. y.a.((k * y.c) + j))
        done
    done
  done;
  out

let mul_vec m x =
  assert (m.c = Array.length x);
  Array.init m.r (fun i ->
      let acc = ref 0. in
      for j = 0 to m.c - 1 do
        acc := !acc +. (m.a.((i * m.c) + j) *. x.(j))
      done;
      !acc)

let trans_mul_vec m x =
  assert (m.r = Array.length x);
  let out = Array.make m.c 0. in
  for i = 0 to m.r - 1 do
    let xi = x.(i) in
    if xi <> 0. then
      for j = 0 to m.c - 1 do
        out.(j) <- out.(j) +. (m.a.((i * m.c) + j) *. xi)
      done
  done;
  out

(* LU decomposition with partial pivoting (Doolittle). Returns the packed
   LU matrix, the pivot permutation, and the permutation sign. *)
let lu_decompose m =
  assert (m.r = m.c);
  let n = m.r in
  let lu = copy m in
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Find pivot row. *)
    let pivot = ref k in
    let best = ref (Float.abs (get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (get lu i k) in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if !best = 0. then failwith "Mat.lu_decompose: singular matrix";
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = get lu k j in
        set lu k j (get lu !pivot j);
        set lu !pivot j tmp
      done;
      let tmp = piv.(k) in
      piv.(k) <- piv.(!pivot);
      piv.(!pivot) <- tmp;
      sign := -. !sign
    end;
    let pivot_val = get lu k k in
    for i = k + 1 to n - 1 do
      let factor = get lu i k /. pivot_val in
      set lu i k factor;
      for j = k + 1 to n - 1 do
        set lu i j (get lu i j -. (factor *. get lu k j))
      done
    done
  done;
  (lu, piv, !sign)

let lu_back_substitute lu piv b =
  let n = rows lu in
  assert (Array.length b = n);
  let x = Array.init n (fun i -> b.(piv.(i))) in
  (* Forward: L y = Pb, L has unit diagonal. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Backward: U x = y. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. get lu i i
  done;
  x

let lu_solve m b =
  let lu, piv, _ = lu_decompose m in
  lu_back_substitute lu piv b

let lu_solve_many m b =
  assert (m.r = b.r);
  let lu, piv, _ = lu_decompose m in
  let out = create b.r b.c in
  for j = 0 to b.c - 1 do
    let col = Array.init b.r (fun i -> get b i j) in
    let x = lu_back_substitute lu piv col in
    for i = 0 to b.r - 1 do
      set out i j x.(i)
    done
  done;
  out

let inverse m = lu_solve_many m (identity m.r)

let cholesky m =
  assert (m.r = m.c);
  let n = m.r in
  let l = create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (get m i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (get l i k *. get l j k)
      done;
      if i = j then begin
        if !acc <= 0. then failwith "Mat.cholesky: matrix not positive definite";
        set l i j (sqrt !acc)
      end
      else set l i j (!acc /. get l j j)
    done
  done;
  l

let cholesky_solve m b =
  let n = m.r in
  assert (Array.length b = n);
  let l = cholesky m in
  (* Forward: L y = b. *)
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (get l i j *. y.(j))
    done;
    y.(i) <- !acc /. get l i i
  done;
  (* Backward: Lᵀ x = y. *)
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get l j i *. x.(j))
    done;
    x.(i) <- !acc /. get l i i
  done;
  x

let determinant_sign_logabs m =
  match lu_decompose m with
  | lu, _, sign ->
    let n = rows lu in
    let log_abs = ref 0. in
    let sign = ref sign in
    for i = 0 to n - 1 do
      let d = get lu i i in
      if d < 0. then sign := -. !sign;
      log_abs := !log_abs +. log (Float.abs d)
    done;
    (!sign, !log_abs)
  | exception Failure _ -> (0., neg_infinity)

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.r - 1 do
    Format.fprintf ppf "|";
    for j = 0 to m.c - 1 do
      Format.fprintf ppf " %9.4g" (get m i j)
    done;
    Format.fprintf ppf " |";
    if i < m.r - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
