(** Ordinary least squares (with optional ridge regularization), the
    fitting engine behind polynomial metamodels (§4.1) and the trend
    models in the Figure 1 reproduction. *)

type fit = {
  coefficients : Vec.t;
  residual_sum_of_squares : float;
  r_squared : float;
  n_observations : int;
}

val fit : ?ridge:float -> Mat.t -> Vec.t -> fit
(** [fit x y] solves min ‖Xβ − y‖² (+ ridge·‖β‖²) via the normal
    equations (Cholesky, LU fallback). X is n×p with n ≥ p. A design
    including an intercept must carry an explicit column of ones. *)

val predict : fit -> Vec.t -> float
(** Dot product of a feature row with the coefficients. *)

val predict_all : fit -> Mat.t -> Vec.t

val standard_errors : Mat.t -> Vec.t -> fit -> Vec.t
(** Coefficient standard errors from σ̂²(XᵀX)⁻¹ (requires n > p). *)
