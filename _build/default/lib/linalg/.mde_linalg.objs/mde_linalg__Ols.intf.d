lib/linalg/ols.mli: Mat Vec
