lib/linalg/ols.ml: Array Mat Vec
