lib/linalg/tridiag.ml: Array Mat
