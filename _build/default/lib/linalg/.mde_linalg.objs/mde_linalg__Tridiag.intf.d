lib/linalg/tridiag.mli: Mat
