lib/mapred/dataset.mli:
