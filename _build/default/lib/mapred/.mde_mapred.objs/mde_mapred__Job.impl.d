lib/mapred/job.ml: Array Dataset Format Hashtbl List
