lib/mapred/dataset.ml: Array List
