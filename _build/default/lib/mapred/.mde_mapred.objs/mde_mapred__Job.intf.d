lib/mapred/job.mli: Dataset Format
