(** Partitioned in-memory datasets — the data model of the MapReduce
    substrate that stands in for Hadoop (see DESIGN.md substitutions).

    A dataset is an ordered list of partitions; operations that respect
    partition boundaries model work that a cluster can do without
    communication, while {!Job} operations that cross boundaries are
    charged to the shuffle. *)

type 'a t

val of_array : ?partitions:int -> 'a array -> 'a t
(** Split an array into [partitions] (default 4) contiguous chunks. *)

val of_partitions : 'a array array -> 'a t
val to_array : 'a t -> 'a array
(** Concatenation of all partitions in order. *)

val partitions : 'a t -> 'a array array
val partition_count : 'a t -> int
val total_length : 'a t -> int
val map : ('a -> 'b) -> 'a t -> 'b t
(** Element-wise, partition-preserving (no shuffle). *)

val mapi : (int -> 'a -> 'b) -> 'a t -> 'b t
(** Like {!map} with the global element index. *)

val map_partitions : ('a array -> 'b array) -> 'a t -> 'b t
(** Whole-partition transform (no shuffle). *)

val filter : ('a -> bool) -> 'a t -> 'a t
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Sequential fold over all elements in partition order. *)

val iter : ('a -> unit) -> 'a t -> unit
