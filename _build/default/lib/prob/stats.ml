let mean xs =
  let n = Array.length xs in
  assert (n > 0);
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  assert (n > 0);
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let covariance xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n >= 2);
  let mx = mean xs and my = mean ys in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
  done;
  !acc /. float_of_int (n - 1)

let correlation xs ys =
  let sx = std xs and sy = std ys in
  if sx = 0. || sy = 0. then 0. else covariance xs ys /. (sx *. sy)

let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let quantile_sorted sorted p =
  let n = Array.length sorted in
  assert (n > 0 && p >= 0. && p <= 1.);
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let i = Float.to_int (floor h) in
    if i >= n - 1 then sorted.(n - 1)
    else sorted.(i) +. ((h -. float_of_int i) *. (sorted.(i + 1) -. sorted.(i)))
  end

let quantile xs p =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  quantile_sorted sorted p

let quantiles xs ps =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  Array.map (quantile_sorted sorted) ps

let median xs = quantile xs 0.5

let autocovariance xs k =
  let n = Array.length xs in
  assert (k >= 0 && k < n);
  let m = mean xs in
  let acc = ref 0. in
  for i = 0 to n - k - 1 do
    acc := !acc +. ((xs.(i) -. m) *. (xs.(i + k) -. m))
  done;
  !acc /. float_of_int n

let autocorrelation xs k =
  let c0 = autocovariance xs 0 in
  if c0 = 0. then 0. else autocovariance xs k /. c0

let mean_confidence_interval xs level =
  let n = Array.length xs in
  assert (n >= 2 && level > 0. && level < 1.);
  let m = mean xs in
  let se = std xs /. sqrt (float_of_int n) in
  let z = Special.normal_inv_cdf (1. -. ((1. -. level) /. 2.)) in
  (m -. (z *. se), m +. (z *. se))

type summary = {
  n : int;
  mean : float;
  variance : float;
  min : float;
  max : float;
  q05 : float;
  q25 : float;
  median : float;
  q75 : float;
  q95 : float;
}

let summarize xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let q = quantile_sorted sorted in
  {
    n = Array.length xs;
    mean = mean xs;
    variance = variance xs;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    q05 = q 0.05;
    q25 = q 0.25;
    median = q 0.5;
    q75 = q 0.75;
    q95 = q 0.95;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.6g sd=%.6g min=%.6g q05=%.6g q25=%.6g med=%.6g q75=%.6g \
     q95=%.6g max=%.6g"
    s.n s.mean (sqrt s.variance) s.min s.q05 s.q25 s.median s.q75 s.q95 s.max

module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let std t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
      in
      { n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
    end
end

let bootstrap_ci ~rng ~statistic ?(replicates = 1000) xs level =
  let n = Array.length xs in
  assert (n >= 2 && level > 0. && level < 1. && replicates >= 10);
  let stats =
    Array.init replicates (fun _ ->
        statistic (Array.init n (fun _ -> xs.(Rng.int rng n))))
  in
  let tail = (1. -. level) /. 2. in
  (quantile stats tail, quantile stats (1. -. tail))

let root_mean_square_error xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n > 0);
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let d = xs.(i) -. ys.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)
