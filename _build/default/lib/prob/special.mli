(** Special functions used by the probability distributions and the
    Gaussian-process machinery: error function, log-gamma, regularized
    incomplete gamma and beta, and the standard normal CDF and its inverse. *)

val erf : float -> float
(** Error function, |error| < 1.5e-7 (Abramowitz & Stegun 7.1.26-based
    rational approximation refined for double precision). *)

val erfc : float -> float
(** Complementary error function [1 - erf x], accurate for large [x]. *)

val log_gamma : float -> float
(** Natural log of the gamma function for [x > 0] (Lanczos). *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma P(a, x),
    for [a > 0], [x >= 0]. *)

val gamma_q : float -> float -> float
(** [gamma_q a x = 1 - gamma_p a x]. *)

val beta_inc : float -> float -> float -> float
(** [beta_inc a b x] is the regularized incomplete beta I_x(a, b)
    for [a, b > 0] and [x] in [0, 1]. *)

val normal_cdf : float -> float
(** Standard normal cumulative distribution function Φ. *)

val normal_inv_cdf : float -> float
(** Φ⁻¹, the standard normal quantile function, for p in (0, 1)
    (Acklam's algorithm, |relative error| < 1.15e-9). *)

val log_factorial : int -> float
(** [log_factorial n = log n!] for [n >= 0], exact via table for small n. *)

val log_choose : int -> int -> float
(** [log_choose n k = log (n choose k)]. *)
