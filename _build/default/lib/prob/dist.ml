type t =
  | Uniform of float * float
  | Normal of { mean : float; std : float }
  | Lognormal of { mu : float; sigma : float }
  | Exponential of { rate : float }
  | Gamma of { shape : float; scale : float }
  | Beta of { alpha : float; beta : float }
  | Triangular of { lo : float; mode : float; hi : float }
  | Weibull of { shape : float; scale : float }

let sqrt_two_pi = sqrt (2. *. Float.pi)

let standard_normal rng =
  (* Marsaglia polar method; no discarded state since we use one of the pair
     per call at most twice per acceptance loop on average. *)
  let rec draw () =
    let u = Rng.float_range rng (-1.) 1. in
    let v = Rng.float_range rng (-1.) 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then draw () else u *. sqrt (-2. *. log s /. s)
  in
  draw ()

(* Marsaglia-Tsang for shape >= 1; boost via U^(1/shape) below 1. *)
let rec gamma_sample rng shape scale =
  if shape < 1. then
    let u = Rng.float_pos rng in
    gamma_sample rng (shape +. 1.) scale *. (u ** (1. /. shape))
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec draw () =
      let x = standard_normal rng in
      let v = 1. +. (c *. x) in
      if v <= 0. then draw ()
      else begin
        let v = v *. v *. v in
        let u = Rng.float_pos rng in
        let x2 = x *. x in
        if u < 1. -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1. -. v +. log v)) then d *. v
        else draw ()
      end
    in
    scale *. draw ()
  end

let sample d rng =
  match d with
  | Uniform (lo, hi) -> Rng.float_range rng lo hi
  | Normal { mean; std } -> mean +. (std *. standard_normal rng)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. standard_normal rng))
  | Exponential { rate } -> -.log (Rng.float_pos rng) /. rate
  | Gamma { shape; scale } -> gamma_sample rng shape scale
  | Beta { alpha; beta } ->
    let x = gamma_sample rng alpha 1. in
    let y = gamma_sample rng beta 1. in
    x /. (x +. y)
  | Triangular { lo; mode; hi } ->
    let u = Rng.float rng in
    let fc = (mode -. lo) /. (hi -. lo) in
    if u < fc then lo +. sqrt (u *. (hi -. lo) *. (mode -. lo))
    else hi -. sqrt ((1. -. u) *. (hi -. lo) *. (hi -. mode))
  | Weibull { shape; scale } ->
    scale *. ((-.log (Rng.float_pos rng)) ** (1. /. shape))

let pdf d x =
  match d with
  | Uniform (lo, hi) -> if x >= lo && x < hi then 1. /. (hi -. lo) else 0.
  | Normal { mean; std } ->
    let z = (x -. mean) /. std in
    exp (-0.5 *. z *. z) /. (std *. sqrt_two_pi)
  | Lognormal { mu; sigma } ->
    if x <= 0. then 0.
    else begin
      let z = (log x -. mu) /. sigma in
      exp (-0.5 *. z *. z) /. (x *. sigma *. sqrt_two_pi)
    end
  | Exponential { rate } -> if x < 0. then 0. else rate *. exp (-.rate *. x)
  | Gamma { shape; scale } ->
    if x < 0. then 0.
    else if x = 0. then (if shape < 1. then infinity else if shape = 1. then 1. /. scale else 0.)
    else
      exp
        (((shape -. 1.) *. log (x /. scale)) -. (x /. scale)
        -. Special.log_gamma shape)
      /. scale
  | Beta { alpha; beta } ->
    if x < 0. || x > 1. then 0.
    else if (x = 0. && alpha < 1.) || (x = 1. && beta < 1.) then infinity
    else
      exp
        (((alpha -. 1.) *. log (max x 1e-300))
        +. ((beta -. 1.) *. log (max (1. -. x) 1e-300))
        +. Special.log_gamma (alpha +. beta)
        -. Special.log_gamma alpha -. Special.log_gamma beta)
  | Triangular { lo; mode; hi } ->
    if x < lo || x > hi then 0.
    else if x < mode then 2. *. (x -. lo) /. ((hi -. lo) *. (mode -. lo))
    else if x > mode then 2. *. (hi -. x) /. ((hi -. lo) *. (hi -. mode))
    else 2. /. (hi -. lo)
  | Weibull { shape; scale } ->
    if x < 0. then 0.
    else begin
      let z = x /. scale in
      shape /. scale *. (z ** (shape -. 1.)) *. exp (-.(z ** shape))
    end

let log_pdf d x =
  let p = pdf d x in
  if p > 0. then log p else neg_infinity

let cdf d x =
  match d with
  | Uniform (lo, hi) ->
    if x < lo then 0. else if x >= hi then 1. else (x -. lo) /. (hi -. lo)
  | Normal { mean; std } -> Special.normal_cdf ((x -. mean) /. std)
  | Lognormal { mu; sigma } ->
    if x <= 0. then 0. else Special.normal_cdf ((log x -. mu) /. sigma)
  | Exponential { rate } -> if x < 0. then 0. else 1. -. exp (-.rate *. x)
  | Gamma { shape; scale } -> if x <= 0. then 0. else Special.gamma_p shape (x /. scale)
  | Beta { alpha; beta } ->
    if x <= 0. then 0. else if x >= 1. then 1. else Special.beta_inc alpha beta x
  | Triangular { lo; mode; hi } ->
    if x <= lo then 0.
    else if x >= hi then 1.
    else if x <= mode then (x -. lo) *. (x -. lo) /. ((hi -. lo) *. (mode -. lo))
    else 1. -. ((hi -. x) *. (hi -. x) /. ((hi -. lo) *. (hi -. mode)))
  | Weibull { shape; scale } ->
    if x <= 0. then 0. else 1. -. exp (-.((x /. scale) ** shape))

let support = function
  | Uniform (lo, hi) -> (lo, hi)
  | Normal _ -> (neg_infinity, infinity)
  | Lognormal _ | Exponential _ | Gamma _ | Weibull _ -> (0., infinity)
  | Beta _ -> (0., 1.)
  | Triangular { lo; hi; _ } -> (lo, hi)

let quantile d p =
  assert (p > 0. && p < 1.);
  match d with
  | Uniform (lo, hi) -> lo +. (p *. (hi -. lo))
  | Normal { mean; std } -> mean +. (std *. Special.normal_inv_cdf p)
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. Special.normal_inv_cdf p))
  | Exponential { rate } -> -.log (1. -. p) /. rate
  | Weibull { shape; scale } -> scale *. ((-.log (1. -. p)) ** (1. /. shape))
  | Triangular { lo; mode; hi } ->
    let fc = (mode -. lo) /. (hi -. lo) in
    if p < fc then lo +. sqrt (p *. (hi -. lo) *. (mode -. lo))
    else hi -. sqrt ((1. -. p) *. (hi -. lo) *. (hi -. mode))
  | Gamma _ | Beta _ ->
    (* Bisection on the CDF over a bracket grown from the mean. *)
    let lo0, hi0 = support d in
    let lo = ref (max lo0 1e-300) in
    let hi = ref (if hi0 = infinity then 1. else hi0) in
    while cdf d !hi < p && !hi < 1e300 do
      hi := !hi *. 2.
    done;
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if cdf d mid < p then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)

let mean = function
  | Uniform (lo, hi) -> 0.5 *. (lo +. hi)
  | Normal { mean; _ } -> mean
  | Lognormal { mu; sigma } -> exp (mu +. (0.5 *. sigma *. sigma))
  | Exponential { rate } -> 1. /. rate
  | Gamma { shape; scale } -> shape *. scale
  | Beta { alpha; beta } -> alpha /. (alpha +. beta)
  | Triangular { lo; mode; hi } -> (lo +. mode +. hi) /. 3.
  | Weibull { shape; scale } ->
    scale *. exp (Special.log_gamma (1. +. (1. /. shape)))

let variance = function
  | Uniform (lo, hi) -> (hi -. lo) *. (hi -. lo) /. 12.
  | Normal { std; _ } -> std *. std
  | Lognormal { mu; sigma } ->
    let s2 = sigma *. sigma in
    (exp s2 -. 1.) *. exp ((2. *. mu) +. s2)
  | Exponential { rate } -> 1. /. (rate *. rate)
  | Gamma { shape; scale } -> shape *. scale *. scale
  | Beta { alpha; beta } ->
    let s = alpha +. beta in
    alpha *. beta /. (s *. s *. (s +. 1.))
  | Triangular { lo; mode; hi } ->
    ((lo *. lo) +. (mode *. mode) +. (hi *. hi) -. (lo *. mode) -. (lo *. hi)
    -. (mode *. hi))
    /. 18.
  | Weibull { shape; scale } ->
    let g1 = exp (Special.log_gamma (1. +. (1. /. shape))) in
    let g2 = exp (Special.log_gamma (1. +. (2. /. shape))) in
    scale *. scale *. (g2 -. (g1 *. g1))

let std d = sqrt (variance d)

let sample_n d rng n = Array.init n (fun _ -> sample d rng)

type discrete =
  | Bernoulli of float
  | Binomial of { n : int; p : float }
  | Poisson of float
  | Geometric of float
  | Discrete_uniform of int * int
  | Categorical of float array

let poisson_sample rng lambda =
  if lambda < 30. then begin
    (* Knuth: multiply uniforms until the product drops below e^-lambda. *)
    let limit = exp (-.lambda) in
    let rec go k prod =
      let prod = prod *. Rng.float_pos rng in
      if prod <= limit then k else go (k + 1) prod
    in
    go 0 1.
  end
  else begin
    (* Hörmann's PTRS transformed rejection for large lambda. *)
    let b = 0.931 +. (2.53 *. sqrt lambda) in
    let a = -0.059 +. (0.02483 *. b) in
    let inv_alpha = 1.1239 +. (1.1328 /. (b -. 3.4)) in
    let vr = 0.9277 -. (3.6224 /. (b -. 2.)) in
    let rec draw () =
      let u = Rng.float rng -. 0.5 in
      let v = Rng.float_pos rng in
      let us = 0.5 -. Float.abs u in
      let k = Float.to_int (floor (((2. *. a /. us) +. b) *. u +. lambda +. 0.43)) in
      if us >= 0.07 && v <= vr then k
      else if k < 0 || (us < 0.013 && v > us) then draw ()
      else begin
        let log_v = log (v *. inv_alpha /. ((a /. (us *. us)) +. b)) in
        let accept =
          log_v
          <= (float_of_int k *. log lambda) -. lambda -. Special.log_factorial k
        in
        if accept then k else draw ()
      end
    in
    draw ()
  end

let binomial_sample rng n p =
  if p = 0. then 0
  else if p = 1. then n
  else if n <= 64 then begin
    let count = ref 0 in
    for _ = 1 to n do
      if Rng.bernoulli rng p then incr count
    done;
    !count
  end
  else begin
    (* Inversion from the mode with stable pmf recurrence; expected work
       O(sqrt(n p q)), adequate for the simulation workloads here. *)
    let q = 1. -. p in
    let u = ref (Rng.float rng) in
    let mode = Float.to_int (floor (float_of_int (n + 1) *. p)) in
    let log_pmf k =
      Special.log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log q)
    in
    let pm = exp (log_pmf mode) in
    (* Walk outward from the mode, alternately down and up. *)
    let lo = ref mode and hi = ref mode in
    let p_lo = ref pm and p_hi = ref pm in
    u := !u -. pm;
    let result = ref (-1) in
    while !result < 0 do
      if !lo > 0 then begin
        (* pmf(k-1) = pmf(k) * k*q / ((n-k+1)*p) *)
        p_lo :=
          !p_lo *. float_of_int !lo *. q /. (float_of_int (n - !lo + 1) *. p);
        decr lo;
        u := !u -. !p_lo;
        if !u <= 0. then result := !lo
      end;
      if !result < 0 && !hi < n then begin
        p_hi :=
          !p_hi *. float_of_int (n - !hi) *. p /. (float_of_int (!hi + 1) *. q);
        incr hi;
        u := !u -. !p_hi;
        if !u <= 0. then result := !hi
      end;
      if !result < 0 && !lo = 0 && !hi = n then result := mode
    done;
    !result
  end

let categorical_cumulative weights =
  let n = Array.length weights in
  assert (n > 0);
  let total = Array.fold_left ( +. ) 0. weights in
  assert (total > 0.);
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    assert (weights.(i) >= 0.);
    acc := !acc +. (weights.(i) /. total);
    cum.(i) <- !acc
  done;
  cum.(n - 1) <- 1.;
  cum

let sample_cumulative cum rng =
  let u = Rng.float rng in
  (* Binary search for the first index with cum.(i) > u. *)
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let sample_discrete d rng =
  match d with
  | Bernoulli p -> if Rng.bernoulli rng p then 1 else 0
  | Binomial { n; p } -> binomial_sample rng n p
  | Poisson lambda -> poisson_sample rng lambda
  | Geometric p ->
    assert (p > 0. && p <= 1.);
    if p = 1. then 0
    else Float.to_int (floor (log (Rng.float_pos rng) /. log (1. -. p)))
  | Discrete_uniform (lo, hi) ->
    assert (hi >= lo);
    lo + Rng.int rng (hi - lo + 1)
  | Categorical weights -> sample_cumulative (categorical_cumulative weights) rng

let pmf d k =
  match d with
  | Bernoulli p -> if k = 1 then p else if k = 0 then 1. -. p else 0.
  | Binomial { n; p } ->
    if k < 0 || k > n then 0.
    else if p = 0. then (if k = 0 then 1. else 0.)
    else if p = 1. then (if k = n then 1. else 0.)
    else
      exp
        (Special.log_choose n k
        +. (float_of_int k *. log p)
        +. (float_of_int (n - k) *. log (1. -. p)))
  | Poisson lambda ->
    if k < 0 then 0.
    else exp ((float_of_int k *. log lambda) -. lambda -. Special.log_factorial k)
  | Geometric p ->
    if k < 0 then 0. else p *. ((1. -. p) ** float_of_int k)
  | Discrete_uniform (lo, hi) ->
    if k >= lo && k <= hi then 1. /. float_of_int (hi - lo + 1) else 0.
  | Categorical weights ->
    if k < 0 || k >= Array.length weights then 0.
    else begin
      let total = Array.fold_left ( +. ) 0. weights in
      weights.(k) /. total
    end

let log_pmf d k =
  let p = pmf d k in
  if p > 0. then log p else neg_infinity

let mean_discrete = function
  | Bernoulli p -> p
  | Binomial { n; p } -> float_of_int n *. p
  | Poisson lambda -> lambda
  | Geometric p -> (1. -. p) /. p
  | Discrete_uniform (lo, hi) -> 0.5 *. float_of_int (lo + hi)
  | Categorical weights ->
    let total = Array.fold_left ( +. ) 0. weights in
    let acc = ref 0. in
    Array.iteri (fun i w -> acc := !acc +. (float_of_int i *. w /. total)) weights;
    !acc

let variance_discrete = function
  | Bernoulli p -> p *. (1. -. p)
  | Binomial { n; p } -> float_of_int n *. p *. (1. -. p)
  | Poisson lambda -> lambda
  | Geometric p -> (1. -. p) /. (p *. p)
  | Discrete_uniform (lo, hi) ->
    let n = float_of_int (hi - lo + 1) in
    ((n *. n) -. 1.) /. 12.
  | Categorical weights as d ->
    let m = mean_discrete d in
    let total = Array.fold_left ( +. ) 0. weights in
    let acc = ref 0. in
    Array.iteri
      (fun i w ->
        let x = float_of_int i -. m in
        acc := !acc +. (x *. x *. w /. total))
      weights;
    !acc

let sample_discrete_n d rng n =
  match d with
  | Categorical weights ->
    (* Precompute the cumulative table once for the whole batch. *)
    let cum = categorical_cumulative weights in
    Array.init n (fun _ -> sample_cumulative cum rng)
  | Bernoulli _ | Binomial _ | Poisson _ | Geometric _ | Discrete_uniform _ ->
    Array.init n (fun _ -> sample_discrete d rng)
