(** Probability distributions.

    Continuous distributions are values of type {!t}; integer-valued
    distributions are values of type {!discrete}. Sampling draws from a
    {!Rng.t} stream, so independent replications are obtained by
    {!Rng.split}ting the generator. *)

type t =
  | Uniform of float * float  (** [Uniform (lo, hi)], lo < hi *)
  | Normal of { mean : float; std : float }  (** std > 0 *)
  | Lognormal of { mu : float; sigma : float }
      (** log of the variate is Normal(mu, sigma) *)
  | Exponential of { rate : float }  (** rate > 0; mean 1/rate *)
  | Gamma of { shape : float; scale : float }  (** shape, scale > 0 *)
  | Beta of { alpha : float; beta : float }  (** alpha, beta > 0 *)
  | Triangular of { lo : float; mode : float; hi : float }
      (** lo <= mode <= hi, lo < hi *)
  | Weibull of { shape : float; scale : float }  (** shape, scale > 0 *)

val sample : t -> Rng.t -> float
val pdf : t -> float -> float
val log_pdf : t -> float -> float
val cdf : t -> float -> float

val quantile : t -> float -> float
(** [quantile d p] for p in (0, 1); closed form where available, else
    bracketed bisection on the CDF. *)

val mean : t -> float
val variance : t -> float
val std : t -> float

val support : t -> float * float
(** Closed support interval (may contain infinities). *)

val sample_n : t -> Rng.t -> int -> float array
(** [sample_n d rng n] draws n i.i.d. samples. *)

(** Integer-valued distributions. *)
type discrete =
  | Bernoulli of float  (** p in [0,1]; values 0/1 *)
  | Binomial of { n : int; p : float }
  | Poisson of float  (** rate > 0 *)
  | Geometric of float  (** p in (0,1]; #failures before first success *)
  | Discrete_uniform of int * int  (** inclusive [lo, hi] *)
  | Categorical of float array
      (** unnormalized nonnegative weights; values are indices *)

val sample_discrete : discrete -> Rng.t -> int
val pmf : discrete -> int -> float
val log_pmf : discrete -> int -> float
val mean_discrete : discrete -> float
val variance_discrete : discrete -> float
val sample_discrete_n : discrete -> Rng.t -> int -> int array

val categorical_cumulative : float array -> float array
(** Normalized cumulative weights for repeated categorical sampling. *)

val sample_cumulative : float array -> Rng.t -> int
(** Sample an index given normalized cumulative weights (binary search). *)
