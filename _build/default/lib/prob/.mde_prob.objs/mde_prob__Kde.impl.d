lib/prob/kde.ml: Array Float Stats
