lib/prob/kde.mli:
