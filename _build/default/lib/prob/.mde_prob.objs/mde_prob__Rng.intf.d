lib/prob/rng.mli:
