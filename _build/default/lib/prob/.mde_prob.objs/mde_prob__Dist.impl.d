lib/prob/dist.ml: Array Float Rng Special
