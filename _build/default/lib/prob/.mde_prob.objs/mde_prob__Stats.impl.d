lib/prob/stats.ml: Array Float Format Rng Special
