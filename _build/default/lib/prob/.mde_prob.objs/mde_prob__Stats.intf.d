lib/prob/stats.mli: Format Rng
