lib/prob/special.ml: Array Float
