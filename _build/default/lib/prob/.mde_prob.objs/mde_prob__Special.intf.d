lib/prob/special.mli:
