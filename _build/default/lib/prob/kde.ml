type kernel = Gaussian | Laplace | Epanechnikov

let kernel_value k u =
  match k with
  | Gaussian -> exp (-0.5 *. u *. u) /. sqrt (2. *. Float.pi)
  | Laplace -> 0.5 *. exp (-.Float.abs u)
  | Epanechnikov -> if Float.abs u <= 1. then 0.75 *. (1. -. (u *. u)) else 0.

let silverman_bandwidth xs =
  let n = Array.length xs in
  assert (n > 0);
  let sd = Stats.std xs in
  let iqr = Stats.quantile xs 0.75 -. Stats.quantile xs 0.25 in
  let spread =
    if sd > 0. && iqr > 0. then Float.min sd (iqr /. 1.34)
    else if sd > 0. then sd
    else if iqr > 0. then iqr /. 1.34
    else 0.
  in
  if spread = 0. then 1.
  else 0.9 *. spread *. (float_of_int n ** (-0.2))

type t = { kernel : kernel; bandwidth : float; samples : float array }

let fit ?(kernel = Gaussian) ?bandwidth samples =
  assert (Array.length samples > 0);
  let bandwidth =
    match bandwidth with
    | Some h ->
      assert (h > 0.);
      h
    | None -> silverman_bandwidth samples
  in
  { kernel; bandwidth; samples = Array.copy samples }

let density t x =
  let m = Array.length t.samples in
  let h = t.bandwidth in
  let acc = ref 0. in
  Array.iter (fun xi -> acc := !acc +. kernel_value t.kernel ((x -. xi) /. h)) t.samples;
  !acc /. (float_of_int m *. h)

let log_density t x =
  let d = density t x in
  if d > 0. then log d else neg_infinity

let bandwidth t = t.bandwidth
let sample_count t = Array.length t.samples
