(** Kernel density estimation (§3.2 of the paper).

    Given samples x₁..x_M from an unknown density f, the estimate is
    f̂(x) = (M h)⁻¹ Σᵢ K((x − xᵢ)/h). The paper's example kernel
    K(x) = e^{−|x|} is available as {!Laplace}; {!Gaussian} and
    {!Epanechnikov} are standard alternatives. *)

type kernel =
  | Gaussian
  | Laplace  (** K(x) = ½ e^{−|x|}, normalized form of the paper's example *)
  | Epanechnikov  (** K(x) = ¾(1−x²) on [−1,1] *)

val kernel_value : kernel -> float -> float
(** Normalized kernel evaluated at a point (integrates to 1). *)

val silverman_bandwidth : float array -> float
(** Silverman's rule-of-thumb bandwidth 0.9·min(σ̂, IQR/1.34)·M^{−1/5};
    falls back to 1.0 for degenerate (constant) samples. *)

type t

val fit : ?kernel:kernel -> ?bandwidth:float -> float array -> t
(** Build an estimator from samples (non-empty). Bandwidth defaults to
    Silverman's rule. *)

val density : t -> float -> float
(** Estimated density f̂(x). *)

val log_density : t -> float -> float
val bandwidth : t -> float
val sample_count : t -> int
