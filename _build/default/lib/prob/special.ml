(* Lanczos approximation, g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  assert (x > 0.);
  if x < 0.5 then
    (* Reflection formula keeps the Lanczos series in its accurate range. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

(* Regularized incomplete gamma: series for x < a+1, continued fraction
   otherwise (Numerical Recipes gser/gcf). *)
let gamma_p_series a x =
  let eps = 1e-15 in
  let ap = ref a in
  let sum = ref (1. /. a) in
  let del = ref !sum in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < 1000 do
    incr iter;
    ap := !ap +. 1.;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if Float.abs !del < Float.abs !sum *. eps then continue_ := false
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)

let gamma_q_cf a x =
  let eps = 1e-15 and fpmin = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. fpmin) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let continue_ = ref true in
  let i = ref 1 in
  while !continue_ && !i < 1000 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if Float.abs !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < eps then continue_ := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. log_gamma a) *. !h

let gamma_p a x =
  assert (a > 0. && x >= 0.);
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series a x
  else 1. -. gamma_q_cf a x

let gamma_q a x = 1. -. gamma_p a x

let erf x =
  if x >= 0. then gamma_p 0.5 (x *. x) else -.gamma_p 0.5 (x *. x)

let erfc x =
  if x >= 0. then gamma_q 0.5 (x *. x) else 1. +. gamma_p 0.5 (x *. x)

(* Continued fraction for the incomplete beta (Numerical Recipes betacf). *)
let betacf a b x =
  let eps = 1e-15 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1. /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue_ = ref true in
  while !continue_ && !m <= 1000 do
    let mf = float_of_int !m in
    let m2 = 2. *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1. +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1. /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1. +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1. +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < eps then continue_ := false;
    incr m
  done;
  !h

let beta_inc a b x =
  assert (a > 0. && b > 0. && x >= 0. && x <= 1.);
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let log_front =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. log x) +. (b *. log (1. -. x))
    in
    let front = exp log_front in
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. betacf a b x /. a
    else 1. -. (front *. betacf b a (1. -. x) /. b)
  end

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt 2.)

(* Acklam's inverse normal CDF. *)
let normal_inv_cdf p =
  assert (p > 0. && p < 1.);
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let rational_tail q =
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
  in
  let x =
    if p < p_low then
      let q = sqrt (-2. *. log p) in
      rational_tail q
    else if p <= 1. -. p_low then
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)
    else
      let q = sqrt (-2. *. log (1. -. p)) in
      -.rational_tail q
  in
  (* One Halley refinement step using the forward CDF. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

let factorial_table =
  let t = Array.make 171 0. in
  t.(0) <- 0.;
  for n = 1 to 170 do
    t.(n) <- t.(n - 1) +. log (float_of_int n)
  done;
  t

let log_factorial n =
  assert (n >= 0);
  if n < Array.length factorial_table then factorial_table.(n)
  else log_gamma (float_of_int n +. 1.)

let log_choose n k =
  assert (k >= 0 && k <= n);
  log_factorial n -. log_factorial k -. log_factorial (n - k)
