(** Splittable pseudorandom number generator.

    The generator is a xoshiro256** state seeded through splitmix64, which
    gives high-quality 64-bit streams and cheap, statistically independent
    splitting — the property needed to run Monte Carlo replications, VG
    functions and agents on separate streams without coordination. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a generator from a 64-bit seed (default a
    fixed constant, so runs are reproducible unless a seed is supplied). *)

val copy : t -> t
(** Independent copy of the current state (same future stream). *)

val split : t -> t
(** [split rng] advances [rng] and returns a fresh generator whose stream
    is statistically independent of the remainder of [rng]'s stream. *)

val split_n : t -> int -> t array
(** [split_n rng n] returns [n] independent generators. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1) with 53 bits of precision. *)

val float_pos : t -> float
(** Uniform float in (0, 1) — never returns 0, safe for [log]. *)

val float_range : t -> float -> float -> float
(** [float_range rng lo hi] is uniform in [lo, hi). Requires [lo < hi]. *)

val int : t -> int -> int
(** [int rng n] is uniform in [0, n-1]. Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli rng p] is [true] with probability [p]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation rng n] is a uniform random permutation of [0 .. n-1]. *)
