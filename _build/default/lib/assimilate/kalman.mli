(** The scalar linear-Gaussian Kalman filter: the closed-form special
    case of the filtering problem of §3.2. For models inside its
    assumptions it is exact, which makes it the correctness oracle for
    the particle filter (the test suite checks the PF tracks it) and a
    cheap baseline outside of them. *)

type model = {
  a : float;  (** state transition x' = a·x + N(0, q) *)
  q : float;  (** process noise variance *)
  h : float;  (** observation y = h·x + N(0, r) *)
  r : float;  (** observation noise variance *)
  mu0 : float;  (** prior mean *)
  p0 : float;  (** prior variance *)
}

type t

val create : model -> t
val mean : t -> float
(** Posterior mean after the observations so far (prior mean before any). *)

val variance : t -> float
val steps : t -> int

val step : t -> float -> unit
(** Predict, then update with one observation. *)

val log_likelihood : t -> float
(** Running log p(y₁..y_n): the exact counterpart of
    {!Particle.log_marginal_likelihood}. *)

val filter_all : model -> float array -> float array
(** Posterior means after each observation. *)
