type model = { a : float; q : float; h : float; r : float; mu0 : float; p0 : float }

type t = {
  model : model;
  mutable mu : float;
  mutable p : float;
  mutable n : int;
  mutable log_lik : float;
}

let create model =
  assert (model.q >= 0. && model.r > 0. && model.p0 >= 0.);
  { model; mu = model.mu0; p = model.p0; n = 0; log_lik = 0. }

let mean t = t.mu
let variance t = t.p
let steps t = t.n

let step t y =
  let m = t.model in
  (* Predict. *)
  let mu_pred = m.a *. t.mu in
  let p_pred = (m.a *. m.a *. t.p) +. m.q in
  (* Innovation and its variance give the exact evidence increment. *)
  let innovation = y -. (m.h *. mu_pred) in
  let s = (m.h *. m.h *. p_pred) +. m.r in
  t.log_lik <-
    t.log_lik
    -. (0.5 *. (log (2. *. Float.pi *. s) +. (innovation *. innovation /. s)));
  (* Update. *)
  let gain = p_pred *. m.h /. s in
  t.mu <- mu_pred +. (gain *. innovation);
  t.p <- (1. -. (gain *. m.h)) *. p_pred;
  t.n <- t.n + 1

let log_likelihood t = t.log_lik

let filter_all model observations =
  let t = create model in
  Array.map
    (fun y ->
      step t y;
      t.mu)
    observations
