module Rng = Mde_prob.Rng

type cell = Unburned | Burning of int | Burned

type params = {
  width : int;
  height : int;
  spread_prob : float;
  wind : float * float;
  wind_boost : float;
  intensify_prob : float;
  burnout_prob : float;
  fuel : (int -> int -> float) option;
}

let default_params ~width ~height =
  {
    width;
    height;
    spread_prob = 0.18;
    wind = (1.0, 0.0);
    wind_boost = 0.6;
    intensify_prob = 0.35;
    burnout_prob = 0.10;
    fuel = None;
  }

let smooth_fuel_map ?(seed = 41) ~width ~height () =
  let rng = Mde_prob.Rng.create ~seed () in
  let waves =
    Array.init 4 (fun _ ->
        ( Mde_prob.Rng.float_range rng 0.5 2.5,
          Mde_prob.Rng.float_range rng 0.5 2.5,
          Mde_prob.Rng.float_range rng 0. (2. *. Float.pi) ))
  in
  fun x y ->
    let fx = float_of_int x /. float_of_int width in
    let fy = float_of_int y /. float_of_int height in
    let acc = ref 1. in
    Array.iter
      (fun (kx, ky, phase) ->
        acc :=
          !acc
          +. (0.175 *. sin ((2. *. Float.pi *. ((kx *. fx) +. (ky *. fy))) +. phase)))
      waves;
    Float.max 0.3 (Float.min 1.7 !acc)

(* Cells packed in a flat array: 0 unburned, 1..3 burning, 4 burned. *)
type state = { p : params; cells : int array }

let params s = s.p
let idx p x y = (y * p.width) + x

let ignite p coords =
  assert (p.width > 0 && p.height > 0);
  let cells = Array.make (p.width * p.height) 0 in
  List.iter
    (fun (x, y) ->
      assert (x >= 0 && x < p.width && y >= 0 && y < p.height);
      cells.(idx p x y) <- 1)
    coords;
  { p; cells }

let decode = function
  | 0 -> Unburned
  | 4 -> Burned
  | i -> Burning i

let encode = function Unburned -> 0 | Burned -> 4 | Burning i -> i

let cell s x y =
  assert (x >= 0 && x < s.p.width && y >= 0 && y < s.p.height);
  decode s.cells.(idx s.p x y)

let neighbours8 = [ (-1, -1); (0, -1); (1, -1); (-1, 0); (1, 0); (-1, 1); (0, 1); (1, 1) ]

let step rng s =
  let p = s.p in
  let next = Array.copy s.cells in
  for y = 0 to p.height - 1 do
    for x = 0 to p.width - 1 do
      match decode s.cells.(idx p x y) with
      | Burning intensity ->
        (* Spread to unburned neighbours; alignment with the wind vector
           boosts the ignition probability. *)
        List.iter
          (fun (dx, dy) ->
            let nx = x + dx and ny = y + dy in
            if nx >= 0 && nx < p.width && ny >= 0 && ny < p.height then
              if s.cells.(idx p nx ny) = 0 && next.(idx p nx ny) = 0 then begin
                let wx, wy = p.wind in
                let norm = sqrt (float_of_int ((dx * dx) + (dy * dy))) in
                let align = ((float_of_int dx *. wx) +. (float_of_int dy *. wy)) /. norm in
                let fuel_mult =
                  match p.fuel with None -> 1. | Some f -> f nx ny
                in
                let prob =
                  p.spread_prob
                  *. (1. +. (p.wind_boost *. align))
                  *. (1. +. (0.25 *. float_of_int (intensity - 1)))
                  *. fuel_mult
                in
                let prob = Float.max 0. (Float.min 1. prob) in
                if Rng.bernoulli rng prob then next.(idx p nx ny) <- 1
              end)
          neighbours8;
        (* Intensify or burn out. *)
        let burnout = p.burnout_prob *. float_of_int intensity in
        if Rng.bernoulli rng (Float.min 1. burnout) then next.(idx p x y) <- 4
        else if intensity < 3 && Rng.bernoulli rng p.intensify_prob then
          next.(idx p x y) <- intensity + 1
      | Unburned | Burned -> ()
    done
  done;
  { p; cells = next }

let burning_count s =
  Array.fold_left (fun acc c -> if c >= 1 && c <= 3 then acc + 1 else acc) 0 s.cells

let burned_count s =
  Array.fold_left (fun acc c -> if c = 4 then acc + 1 else acc) 0 s.cells

let burned_area_fraction s =
  float_of_int (burned_count s + burning_count s) /. float_of_int (Array.length s.cells)

let front_cells s =
  let out = ref [] in
  for y = s.p.height - 1 downto 0 do
    for x = s.p.width - 1 downto 0 do
      let c = s.cells.(idx s.p x y) in
      if c >= 1 && c <= 3 then out := (x, y) :: !out
    done
  done;
  !out

let cell_difference a b =
  assert (Array.length a.cells = Array.length b.cells);
  let d = ref 0 in
  Array.iteri (fun i c -> if c <> b.cells.(i) then incr d) a.cells;
  !d

let intensity_at s x y =
  match cell s x y with
  | Burning i -> float_of_int i
  | Unburned | Burned -> 0.

let with_cell s x y c =
  let cells = Array.copy s.cells in
  cells.(idx s.p x y) <- encode c;
  { s with cells }

let to_string s =
  let buf = Buffer.create (s.p.height * (s.p.width + 1)) in
  for y = 0 to s.p.height - 1 do
    for x = 0 to s.p.width - 1 do
      Buffer.add_char buf
        (match cell s x y with
        | Unburned -> '.'
        | Burning i -> Char.chr (Char.code '0' + i)
        | Burned -> 'x')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
