(** Sequential Monte Carlo: SIS and the particle filter of Algorithm 2.

    The hidden Markov model supplies the initial sampler p₁, the
    transition sampler p_n(x_n | x_{n−1}) and the observation
    log-likelihood log p_n(y_n | x_n); a proposal supplies
    q_n(x_n | y_n, x_{n−1}) together with the log incremental weight
    log [p(y|x)·p(x|prev) / q(x|y,prev)]. The bootstrap proposal uses the
    transition itself, collapsing the weight to the observation
    likelihood — the [56] formulation; sensor-aware proposals ([57]) plug
    in through the same interface. *)

type ('state, 'obs) model = {
  init : Mde_prob.Rng.t -> 'state;
  transition : Mde_prob.Rng.t -> 'state -> 'state;
  obs_log_likelihood : 'obs -> 'state -> float;
}

type ('state, 'obs) proposal = {
  propose : Mde_prob.Rng.t -> prev:'state option -> 'obs -> 'state;
      (** [prev = None] at time 1 *)
  log_incremental_weight :
    Mde_prob.Rng.t -> prev:'state option -> obs:'obs -> 'state -> float;
      (** may itself use randomness (e.g. KDE density estimation) *)
}

val bootstrap : ('state, 'obs) model -> ('state, 'obs) proposal

type 'state population = {
  particles : 'state array;
  weights : float array;  (** normalized *)
}

val effective_sample_size : 'state population -> float

type resampling = Multinomial | Systematic

val resample :
  ?scheme:resampling -> Mde_prob.Rng.t -> 'state population -> 'state population
(** Draw N particles according to the weights and reset weights to 1/N.
    Systematic resampling (default) has lower variance. *)

type ('state, 'obs) filter

val create :
  ?n_particles:int ->
  ?resample_threshold:float ->
  ?scheme:resampling ->
  model:('state, 'obs) model ->
  proposal:('state, 'obs) proposal ->
  Mde_prob.Rng.t ->
  ('state, 'obs) filter
(** [resample_threshold] is the ESS/N fraction below which resampling
    triggers: 1.0 (default) resamples every step — Algorithm 2 exactly;
    0.0 never resamples — plain SIS. *)

val step : ('state, 'obs) filter -> 'obs -> unit
(** Assimilate one observation: propose, weight, normalize, (re)sample. *)

val population : ('state, 'obs) filter -> 'state population
val estimate : ('state, 'obs) filter -> ('state -> float) -> float
(** Weighted posterior mean of a statistic. *)

val map_estimate : ('state, 'obs) filter -> 'state
(** Highest-weight particle. *)

val steps_taken : ('state, 'obs) filter -> int
val resamples_done : ('state, 'obs) filter -> int

val log_marginal_likelihood : ('state, 'obs) filter -> float
(** Running estimate of log p(y₁..y_n): the per-step log of the
    weight-normalizing constants, Σ_n log Σ_i W_{n−1,i}·α_n,i — the
    standard SMC evidence estimate, usable for comparing models against
    the same observation stream. *)
