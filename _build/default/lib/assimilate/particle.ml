module Rng = Mde_prob.Rng

type ('state, 'obs) model = {
  init : Rng.t -> 'state;
  transition : Rng.t -> 'state -> 'state;
  obs_log_likelihood : 'obs -> 'state -> float;
}

type ('state, 'obs) proposal = {
  propose : Rng.t -> prev:'state option -> 'obs -> 'state;
  log_incremental_weight : Rng.t -> prev:'state option -> obs:'obs -> 'state -> float;
}

let bootstrap model =
  {
    propose =
      (fun rng ~prev _obs ->
        match prev with
        | None -> model.init rng
        | Some x -> model.transition rng x);
    log_incremental_weight =
      (* q = transition, so p(x|prev)/q cancels and only the observation
         likelihood remains. *)
      (fun _rng ~prev:_ ~obs x -> model.obs_log_likelihood obs x);
  }

type 'state population = { particles : 'state array; weights : float array }

let effective_sample_size pop = Importance.effective_sample_size pop.weights

type resampling = Multinomial | Systematic

let resample ?(scheme = Systematic) rng pop =
  let n = Array.length pop.particles in
  let picks =
    match scheme with
    | Multinomial ->
      let cum = Mde_prob.Dist.categorical_cumulative pop.weights in
      Array.init n (fun _ -> Mde_prob.Dist.sample_cumulative cum rng)
    | Systematic ->
      (* One uniform offset, n evenly spaced pointers through the CDF. *)
      let u0 = Rng.float rng /. float_of_int n in
      let picks = Array.make n 0 in
      let cum = ref pop.weights.(0) in
      let j = ref 0 in
      for i = 0 to n - 1 do
        let u = u0 +. (float_of_int i /. float_of_int n) in
        while !cum < u && !j < n - 1 do
          incr j;
          cum := !cum +. pop.weights.(!j)
        done;
        picks.(i) <- !j
      done;
      picks
  in
  {
    particles = Array.map (fun i -> pop.particles.(i)) picks;
    weights = Array.make n (1. /. float_of_int n);
  }

type ('state, 'obs) filter = {
  model : ('state, 'obs) model;
  proposal : ('state, 'obs) proposal;
  rng : Rng.t;
  n_particles : int;
  resample_threshold : float;
  scheme : resampling;
  mutable pop : 'state population option;  (* None before the first step *)
  mutable steps : int;
  mutable resamples : int;
  mutable log_marginal : float;
}

let create ?(n_particles = 200) ?(resample_threshold = 1.0) ?(scheme = Systematic)
    ~model ~proposal rng =
  assert (n_particles > 0);
  assert (resample_threshold >= 0. && resample_threshold <= 1.);
  {
    model;
    proposal;
    rng;
    n_particles;
    resample_threshold;
    scheme;
    pop = None;
    steps = 0;
    resamples = 0;
    log_marginal = 0.;
  }

let log_sum_exp logs =
  let m = Array.fold_left Float.max neg_infinity logs in
  if m = neg_infinity then neg_infinity
  else m +. log (Array.fold_left (fun acc l -> acc +. exp (l -. m)) 0. logs)

let step t obs =
  let n = t.n_particles in
  let prev_particles, prev_weights =
    match t.pop with
    | Some pop -> (Array.map Option.some pop.particles, pop.weights)
    | None -> (Array.make n None, Array.make n (1. /. float_of_int n))
  in
  let particles = Array.map (fun prev -> t.proposal.propose t.rng ~prev obs) prev_particles in
  let log_w =
    Array.mapi
      (fun i x ->
        log prev_weights.(i)
        +. t.proposal.log_incremental_weight t.rng ~prev:prev_particles.(i) ~obs x)
      particles
  in
  let lse = log_sum_exp log_w in
  (* lse = log Σ_i W_{n-1,i} α_i: the incremental evidence term. *)
  if lse > neg_infinity then t.log_marginal <- t.log_marginal +. lse
  else t.log_marginal <- neg_infinity;
  let weights =
    if lse = neg_infinity then Array.make n (1. /. float_of_int n)
    else Array.map (fun l -> exp (l -. lse)) log_w
  in
  let pop = { particles; weights } in
  let ess = effective_sample_size pop in
  let pop =
    if ess < t.resample_threshold *. float_of_int n || t.resample_threshold >= 1. then begin
      t.resamples <- t.resamples + 1;
      resample ~scheme:t.scheme t.rng pop
    end
    else pop
  in
  t.pop <- Some pop;
  t.steps <- t.steps + 1

let population t =
  match t.pop with
  | Some pop -> pop
  | None -> invalid_arg "Particle.population: no observation assimilated yet"

let estimate t g =
  let pop = population t in
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (pop.weights.(i) *. g x)) pop.particles;
  !acc

let map_estimate t =
  let pop = population t in
  let best = ref 0 in
  Array.iteri (fun i w -> if w > pop.weights.(!best) then best := i) pop.weights;
  pop.particles.(!best)

let steps_taken t = t.steps
let resamples_done t = t.resamples
let log_marginal_likelihood t = t.log_marginal
