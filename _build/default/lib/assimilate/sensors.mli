(** The Gaussian sensor model of [56]: temperature sensors placed over
    the terrain read ambient temperature plus a contribution from fire in
    their own and adjacent cells, with Gaussian noise — giving the
    closed-form observation density p(y | x) that the particle filter
    needs. *)

type t

type reading = float array
(** One value per sensor, in sensor order. *)

val grid_layout : spacing:int -> Wildfire.params -> t
(** One sensor every [spacing] cells in both directions. *)

val count : t -> int
val positions : t -> (int * int) array

val ambient : float
(** Baseline temperature (°C). *)

val expected : t -> Wildfire.state -> reading
(** Noise-free temperatures under a fire state: ambient + 120° per
    intensity level in the sensor's cell + 30° per level in the 8
    surrounding cells. *)

val observe : ?noise_std:float -> t -> Mde_prob.Rng.t -> Wildfire.state -> reading
(** Noisy reading (default σ = 10°). *)

val log_likelihood : ?noise_std:float -> t -> reading -> Wildfire.state -> float
(** log p(y | x) = Σ log N(yᵢ; expectedᵢ(x), σ²). *)

val hot_cells : ?threshold:float -> t -> reading -> (int * int) list
(** Sensor cells reading above [threshold] (default ambient + 60°) — the
    "deemed to have sufficiently high sensor temperatures" set of [57]. *)

val cool_cells : ?threshold:float -> t -> reading -> (int * int) list
(** Sensor cells reading below [threshold] (default ambient + 20°). *)
