(** Wildfire data assimilation (§3.2): wire the fire model and the sensor
    model into the particle filter, with both the bootstrap proposal of
    [56] and the sensor-aware proposal of [57] (ignite hot cells /
    extinguish cool cells, densities estimated by KDE over the fire-state
    metric with M auxiliary samples). *)

type obs = Sensors.reading

val model :
  sensors:Sensors.t ->
  ?noise_std:float ->
  init:(Mde_prob.Rng.t -> Wildfire.state) ->
  unit ->
  (Wildfire.state, obs) Particle.model

val sensor_aware_proposal :
  sensors:Sensors.t ->
  ?noise_std:float ->
  ?m_samples:int ->
  ?confidence:float ->
  (Wildfire.state, obs) Particle.model ->
  (Wildfire.state, obs) Particle.proposal
(** [confidence] (default 0.5) is the probability of trusting the
    sensor-adjusted state over the pure simulation step; [m_samples]
    (default 8) auxiliary draws feed the KDE estimates of the transition
    and proposal densities needed in the weights. *)

type step_error = {
  step : int;
  filter_error : int;  (** cell difference, posterior-mode particle vs truth *)
  open_loop_error : int;  (** cell difference, unassimilated run vs truth *)
  ess : float;
}

type experiment = {
  errors : step_error array;
  mean_filter_error : float;
  mean_open_loop_error : float;
}

val run_experiment :
  ?seed:int ->
  ?n_particles:int ->
  ?noise_std:float ->
  params:Wildfire.params ->
  ignition:(int * int) list ->
  sensor_spacing:int ->
  steps:int ->
  proposal:[ `Bootstrap | `Sensor_aware ] ->
  unit ->
  experiment
(** Simulate a ground-truth fire, stream noisy sensor readings, and
    compare (a) the particle filter's posterior-mode state and (b) an
    open-loop simulation with the same initial knowledge but no sensor
    feedback, against the truth at every step. *)
