module Rng = Mde_prob.Rng

type obs = Sensors.reading

let model ~sensors ?(noise_std = 10.) ~init () =
  {
    Particle.init;
    transition = (fun rng state -> Wildfire.step rng state);
    obs_log_likelihood =
      (fun reading state -> Sensors.log_likelihood ~noise_std sensors reading state);
  }

(* KDE over fire states: Laplace kernel on the cell-difference metric with
   a data-driven bandwidth (mean pairwise distance to the evaluation
   point, floored at 1). *)
let kde_log_density samples x =
  let m = Array.length samples in
  assert (m > 0);
  let distances =
    Array.map (fun z -> float_of_int (Wildfire.cell_difference x z)) samples
  in
  let h = Float.max 1. (Array.fold_left ( +. ) 0. distances /. float_of_int m) in
  let acc =
    Array.fold_left (fun acc d -> acc +. exp (-.d /. h)) 0. distances
  in
  (* (Mh)^-1 Σ K(d/h); the kernel normalizer cancels between p̂ and q̂ up
     to the bandwidth, which we keep. *)
  log (Float.max 1e-300 (acc /. (float_of_int m *. h)))

let adjust_by_sensors ~sensors reading state =
  (* Ignite unburned cells under hot sensors; extinguish burning cells
     under cool sensors. *)
  let state =
    List.fold_left
      (fun s (x, y) ->
        match Wildfire.cell s x y with
        | Wildfire.Unburned -> Wildfire.with_cell s x y (Wildfire.Burning 1)
        | Wildfire.Burning _ | Wildfire.Burned -> s)
      state
      (Sensors.hot_cells sensors reading)
  in
  List.fold_left
    (fun s (x, y) ->
      match Wildfire.cell s x y with
      | Wildfire.Burning _ -> Wildfire.with_cell s x y Wildfire.Unburned
      | Wildfire.Unburned | Wildfire.Burned -> s)
    state
    (Sensors.cool_cells sensors reading)

let sensor_aware_proposal ~sensors ?(noise_std = 10.) ?(m_samples = 8)
    ?(confidence = 0.5) (model : (Wildfire.state, obs) Particle.model) =
  assert (m_samples >= 2);
  assert (confidence >= 0. && confidence <= 1.);
  let transition_sample rng prev =
    match prev with None -> model.Particle.init rng | Some x -> model.Particle.transition rng x
  in
  let propose rng ~prev reading =
    let x = transition_sample rng prev in
    if Rng.bernoulli rng confidence then adjust_by_sensors ~sensors reading x else x
  in
  let log_incremental_weight rng ~prev ~obs x =
    (* Estimate both densities with M auxiliary samples, per [57]. *)
    let p_samples = Array.init m_samples (fun _ -> transition_sample rng prev) in
    let q_samples = Array.init m_samples (fun _ -> propose rng ~prev obs) in
    let log_p = kde_log_density p_samples x in
    let log_q = kde_log_density q_samples x in
    Sensors.log_likelihood ~noise_std sensors obs x +. log_p -. log_q
  in
  { Particle.propose; log_incremental_weight }

type step_error = {
  step : int;
  filter_error : int;
  open_loop_error : int;
  ess : float;
}

type experiment = {
  errors : step_error array;
  mean_filter_error : float;
  mean_open_loop_error : float;
}

let run_experiment ?(seed = 17) ?(n_particles = 100) ?(noise_std = 10.) ~params
    ~ignition ~sensor_spacing ~steps ~proposal () =
  assert (steps > 0);
  let rng = Rng.create ~seed () in
  let truth_rng = Rng.split rng in
  let open_rng = Rng.split rng in
  let filter_rng = Rng.split rng in
  let obs_rng = Rng.split rng in
  let sensors = Sensors.grid_layout ~spacing:sensor_spacing params in
  let init _rng = Wildfire.ignite params ignition in
  let m = model ~sensors ~noise_std ~init () in
  let prop =
    match proposal with
    | `Bootstrap -> Particle.bootstrap m
    | `Sensor_aware -> sensor_aware_proposal ~sensors ~noise_std m
  in
  let filter = Particle.create ~n_particles ~model:m ~proposal:prop filter_rng in
  let truth = ref (Wildfire.ignite params ignition) in
  let open_loop = ref (Wildfire.ignite params ignition) in
  let errors =
    Array.init steps (fun i ->
        truth := Wildfire.step truth_rng !truth;
        open_loop := Wildfire.step open_rng !open_loop;
        let reading = Sensors.observe ~noise_std sensors obs_rng !truth in
        Particle.step filter reading;
        let best = Particle.map_estimate filter in
        {
          step = i + 1;
          filter_error = Wildfire.cell_difference best !truth;
          open_loop_error = Wildfire.cell_difference !open_loop !truth;
          ess = Particle.effective_sample_size (Particle.population filter);
        })
  in
  let mean f =
    Array.fold_left (fun acc e -> acc +. float_of_int (f e)) 0. errors
    /. float_of_int steps
  in
  {
    errors;
    mean_filter_error = mean (fun e -> e.filter_error);
    mean_open_loop_error = mean (fun e -> e.open_loop_error);
  }
