type 'a weighted = { particles : 'a array; log_weights : float array }

let sample ~rng ~n ~proposal ~log_gamma ~log_proposal =
  assert (n > 0);
  let particles = Array.init n (fun _ -> proposal rng) in
  let log_weights = Array.map (fun x -> log_gamma x -. log_proposal x) particles in
  { particles; log_weights }

let log_sum_exp logs =
  let m = Array.fold_left Float.max neg_infinity logs in
  if m = neg_infinity then neg_infinity
  else m +. log (Array.fold_left (fun acc l -> acc +. exp (l -. m)) 0. logs)

let normalized_weights t =
  let lse = log_sum_exp t.log_weights in
  if lse = neg_infinity then
    (* Degenerate: all weights zero; fall back to uniform. *)
    Array.make (Array.length t.log_weights) (1. /. float_of_int (Array.length t.log_weights))
  else Array.map (fun l -> exp (l -. lse)) t.log_weights

let estimate t g =
  let w = normalized_weights t in
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (w.(i) *. g x)) t.particles;
  !acc

let log_normalizer t =
  log_sum_exp t.log_weights -. log (float_of_int (Array.length t.log_weights))

let effective_sample_size weights =
  let s2 = Array.fold_left (fun acc w -> acc +. (w *. w)) 0. weights in
  if s2 = 0. then 0. else 1. /. s2
