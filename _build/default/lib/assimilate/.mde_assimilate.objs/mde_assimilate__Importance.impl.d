lib/assimilate/importance.ml: Array Float
