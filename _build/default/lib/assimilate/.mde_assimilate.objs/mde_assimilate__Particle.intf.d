lib/assimilate/particle.mli: Mde_prob
