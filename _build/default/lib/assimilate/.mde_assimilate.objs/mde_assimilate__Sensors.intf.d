lib/assimilate/sensors.mli: Mde_prob Wildfire
