lib/assimilate/wildfire.mli: Mde_prob
