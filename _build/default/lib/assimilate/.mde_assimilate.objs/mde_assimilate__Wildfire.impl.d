lib/assimilate/wildfire.ml: Array Buffer Char Float List Mde_prob
