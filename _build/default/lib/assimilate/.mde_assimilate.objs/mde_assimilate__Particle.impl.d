lib/assimilate/particle.ml: Array Float Importance Mde_prob Option
