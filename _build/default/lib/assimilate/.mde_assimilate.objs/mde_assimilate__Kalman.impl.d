lib/assimilate/kalman.ml: Array Float
