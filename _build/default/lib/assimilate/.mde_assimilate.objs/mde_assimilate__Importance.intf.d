lib/assimilate/importance.mli: Mde_prob
