lib/assimilate/assimilation.mli: Mde_prob Particle Sensors Wildfire
