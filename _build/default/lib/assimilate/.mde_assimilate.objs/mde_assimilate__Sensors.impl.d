lib/assimilate/sensors.ml: Array Float List Mde_prob Wildfire
