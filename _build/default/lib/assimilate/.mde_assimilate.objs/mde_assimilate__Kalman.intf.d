lib/assimilate/kalman.mli:
