lib/assimilate/assimilation.ml: Array Float List Mde_prob Particle Sensors Wildfire
