module Rng = Mde_prob.Rng

type t = { positions : (int * int) array; params : Wildfire.params }
type reading = float array

let grid_layout ~spacing p =
  assert (spacing >= 1);
  let out = ref [] in
  let y = ref (spacing / 2) in
  while !y < p.Wildfire.height do
    let x = ref (spacing / 2) in
    while !x < p.Wildfire.width do
      out := (!x, !y) :: !out;
      x := !x + spacing
    done;
    y := !y + spacing
  done;
  { positions = Array.of_list (List.rev !out); params = p }

let count t = Array.length t.positions
let positions t = Array.copy t.positions
let ambient = 20.

let expected t state =
  Array.map
    (fun (sx, sy) ->
      let own = Wildfire.intensity_at state sx sy in
      let near = ref 0. in
      for dy = -1 to 1 do
        for dx = -1 to 1 do
          if dx <> 0 || dy <> 0 then begin
            let nx = sx + dx and ny = sy + dy in
            if
              nx >= 0
              && nx < t.params.Wildfire.width
              && ny >= 0
              && ny < t.params.Wildfire.height
            then near := !near +. Wildfire.intensity_at state nx ny
          end
        done
      done;
      ambient +. (120. *. own) +. (30. *. !near))
    t.positions

let observe ?(noise_std = 10.) t rng state =
  let clean = expected t state in
  Array.map
    (fun temp ->
      temp
      +. Mde_prob.Dist.sample (Mde_prob.Dist.Normal { mean = 0.; std = noise_std }) rng)
    clean

let log_likelihood ?(noise_std = 10.) t reading state =
  assert (Array.length reading = count t);
  let clean = expected t state in
  let var = noise_std *. noise_std in
  let log_norm = -0.5 *. log (2. *. Float.pi *. var) in
  let acc = ref 0. in
  Array.iteri
    (fun i y ->
      let d = y -. clean.(i) in
      acc := !acc +. log_norm -. (d *. d /. (2. *. var)))
    reading;
  !acc

let hot_cells ?(threshold = ambient +. 60.) t reading =
  let out = ref [] in
  Array.iteri
    (fun i (x, y) -> if reading.(i) > threshold then out := (x, y) :: !out)
    t.positions;
  List.rev !out

let cool_cells ?(threshold = ambient +. 20.) t reading =
  let out = ref [] in
  Array.iteri
    (fun i (x, y) -> if reading.(i) < threshold then out := (x, y) :: !out)
    t.positions;
  List.rev !out
