(** Importance sampling (§3.2): approximate a target density known up to
    normalization, π = γ/Z, by sampling a tractable proposal q and
    correcting with weights w = γ/q. *)

type 'a weighted = { particles : 'a array; log_weights : float array }

val sample :
  rng:Mde_prob.Rng.t ->
  n:int ->
  proposal:(Mde_prob.Rng.t -> 'a) ->
  log_gamma:('a -> float) ->
  log_proposal:('a -> float) ->
  'a weighted
(** Draw n particles from q with log-weights log γ − log q. *)

val normalized_weights : 'a weighted -> float array
(** Self-normalized weights W_i (softmax of log-weights, stable). *)

val estimate : 'a weighted -> ('a -> float) -> float
(** Self-normalized estimator Σ W_i g(X_i) of E_π[g]. *)

val log_normalizer : 'a weighted -> float
(** log Ẑ = log((1/N) Σ w_i), the marginal-likelihood estimate. *)

val effective_sample_size : float array -> float
(** ESS = 1/Σ W_i² of normalized weights — N when uniform, → 1 at
    collapse (the SIS degeneracy the paper describes). *)
