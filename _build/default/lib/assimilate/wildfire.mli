(** A DEVS-FIRE-style stochastic wildfire spread model (§3.2, [56]):
    terrain is a gridded cell space; each cell is unburned, burning (with
    an intensity), or burned out; fire spreads probabilistically to
    neighbouring unburned cells, boosted along the wind direction, and
    burning cells gain intensity then burn out. States are immutable so
    that particle filters can hold many hypotheses cheaply. *)

type cell = Unburned | Burning of int  (** intensity 1..3 *) | Burned

type params = {
  width : int;
  height : int;
  spread_prob : float;  (** base per-step ignition prob from one burning neighbour *)
  wind : float * float;  (** (wx, wy), each in [−1, 1]; boosts downwind spread *)
  wind_boost : float;  (** multiplicative effect of alignment with the wind *)
  intensify_prob : float;  (** chance a burning cell steps 1→2→3 *)
  burnout_prob : float;  (** chance a burning cell burns out, rising with intensity *)
  fuel : (int -> int -> float) option;
      (** terrain fuel multiplier on the ignition probability of cell
          (x, y): 0 = fire break, 1 = nominal, >1 = heavy fuel. [None]
          means uniform fuel. *)
}

val default_params : width:int -> height:int -> params

val smooth_fuel_map : ?seed:int -> width:int -> height:int -> unit -> int -> int -> float
(** A smooth random fuel field in roughly [0.3, 1.7] (sum of low-frequency
    sinusoids), for heterogeneous-terrain experiments. *)

type state
(** Immutable fire state. *)

val params : state -> params
val ignite : params -> (int * int) list -> state
(** Initial state with the given cells burning at intensity 1. *)

val cell : state -> int -> int -> cell
val step : Mde_prob.Rng.t -> state -> state
(** One Δt of stochastic spread — the p_n(x_n | x_{n−1}) sampler. *)

val burning_count : state -> int
val burned_count : state -> int
val burned_area_fraction : state -> float
val front_cells : state -> (int * int) list
(** Currently burning cells. *)

val cell_difference : state -> state -> int
(** Hamming distance between two states' cell grids — the state metric
    used by KDE density estimation over fire states. *)

val intensity_at : state -> int -> int -> float
(** 0 for unburned/burned, 1..3 for burning — the quantity sensors see. *)

val with_cell : state -> int -> int -> cell -> state
(** Functional single-cell update (used by sensor-aware proposals to
    ignite/extinguish cells). *)

val to_string : state -> string
(** ASCII: [.] unburned, [1-3] burning intensity, [x] burned. *)
