open Mde_relational
module Rng = Mde_prob.Rng
module Series = Mde_timeseries.Series

type datum = Number of float | Timeseries of Series.t | Relation of Table.t

let datum_kind = function
  | Number _ -> "number"
  | Timeseries _ -> "timeseries"
  | Relation _ -> "relation"

type model = {
  name : string;
  description : string;
  inputs : string list;
  outputs : string list;
  run : Rng.t -> datum list -> datum list;
}

type transform = {
  dataset : string;
  transform_name : string;
  apply : datum -> datum;
}

let time_align_transform ~dataset ~target_times =
  {
    dataset;
    transform_name = Printf.sprintf "time-align(%d ticks)" (Array.length target_times);
    apply =
      (function
      | Timeseries s -> Timeseries (fst (Mde_timeseries.Align.auto s ~target_times))
      | (Number _ | Relation _) as d ->
        invalid_arg
          (Printf.sprintf "time_align_transform %s: expected a timeseries, got %s"
             dataset (datum_kind d)));
  }

let schema_map_transform ~dataset mapping =
  {
    dataset;
    transform_name = "schema-map";
    apply =
      (function
      | Relation t -> Relation (Mde_timeseries.Schema_map.apply mapping t)
      | (Number _ | Timeseries _) as d ->
        invalid_arg
          (Printf.sprintf "schema_map_transform %s: expected a relation, got %s"
             dataset (datum_kind d)));
  }

let resample_transform ~dataset ~step =
  assert (step > 0.);
  {
    dataset;
    transform_name = Printf.sprintf "resample(step=%g)" step;
    apply =
      (function
      | Timeseries s ->
        let t0 = Series.start_time s and t1 = Series.end_time s in
        let count = Stdlib.max 1 (1 + Float.to_int (floor ((t1 -. t0) /. step))) in
        let target_times = Series.regular_times ~start:t0 ~step ~count in
        Timeseries (fst (Mde_timeseries.Align.auto s ~target_times))
      | (Number _ | Relation _) as d ->
        invalid_arg
          (Printf.sprintf "resample_transform %s: expected a timeseries, got %s"
             dataset (datum_kind d)));
  }

type composite = {
  composite_name : string;
  models : model list;
  transforms : transform list;
  order : string list;  (* topological model order, fixed at composition *)
}

let topological_order models =
  (* Producer map: dataset -> model name. *)
  let producer = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun ds ->
          if Hashtbl.mem producer ds then
            invalid_arg
              (Printf.sprintf "Splash.compose: dataset %S has two producers" ds);
          Hashtbl.add producer ds m.name)
        m.outputs)
    models;
  (* Model dependency edges via produced inputs. *)
  let by_name = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace by_name m.name m) models;
  let visiting = Hashtbl.create 16 and done_ = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    if Hashtbl.mem done_ name then ()
    else if Hashtbl.mem visiting name then
      invalid_arg
        (Printf.sprintf "Splash.compose: cyclic dependency through model %S" name)
    else begin
      Hashtbl.add visiting name ();
      let m = Hashtbl.find by_name name in
      List.iter
        (fun ds ->
          match Hashtbl.find_opt producer ds with
          | Some producer_name when producer_name <> name -> visit producer_name
          | Some _ | None -> ())
        m.inputs;
      Hashtbl.remove visiting name;
      Hashtbl.add done_ name ();
      order := name :: !order
    end
  in
  List.iter (fun m -> visit m.name) models;
  List.rev !order

let compose ~name ~models ~transforms =
  let order = topological_order models in
  let produced = Hashtbl.create 16 in
  List.iter (fun m -> List.iter (fun ds -> Hashtbl.replace produced ds ()) m.outputs) models;
  List.iter
    (fun tr ->
      if not (Hashtbl.mem produced tr.dataset) then
        invalid_arg
          (Printf.sprintf
             "Splash.compose: transform %S targets dataset %S which no model produces"
             tr.transform_name tr.dataset))
    transforms;
  { composite_name = name; models; transforms; order }

let execution_order c = c.order

let execute_timed c rng ~inputs =
  let store : (string, datum) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (nm, d) -> Hashtbl.replace store nm d) inputs;
  let transforms_for ds = List.filter (fun tr -> tr.dataset = ds) c.transforms in
  let by_name = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace by_name m.name m) c.models;
  let costs = ref [] in
  List.iter
    (fun model_name ->
      let m = Hashtbl.find by_name model_name in
      let fetch ds =
        match Hashtbl.find_opt store ds with
        | Some d -> d
        | None ->
          invalid_arg
            (Printf.sprintf
               "Splash.execute: model %S needs dataset %S, which is neither \
                supplied nor produced upstream"
               m.name ds)
      in
      let ins = List.map fetch m.inputs in
      let started = Sys.time () in
      let outs = m.run rng ins in
      costs := (m.name, Sys.time () -. started) :: !costs;
      if List.length outs <> List.length m.outputs then
        invalid_arg
          (Printf.sprintf "Splash.execute: model %S declared %d outputs, produced %d"
             m.name (List.length m.outputs) (List.length outs));
      List.iter2
        (fun ds d ->
          (* Run every registered transformation on the fresh dataset, so
             downstream consumers see harmonized data. *)
          let d = List.fold_left (fun d tr -> tr.apply d) d (transforms_for ds) in
          Hashtbl.replace store ds d)
        m.outputs outs)
    c.order;
  ( Hashtbl.fold (fun k v acc -> (k, v) :: acc) store []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b),
    List.rev !costs )

let execute c rng ~inputs = fst (execute_timed c rng ~inputs)

let monte_carlo c rng ~inputs ~reps ~query =
  assert (reps > 0);
  let streams = Rng.split_n rng reps in
  Array.init reps (fun r -> query (execute c streams.(r) ~inputs))
