(** Splash-lite (§2.2, [26, 28, 53]): loose coupling of component models
    via data exchange. Contributors register models with metadata naming
    the datasets they read and write; composition wires producers to
    consumers through explicit data transformations (schema mappings,
    time alignment); execution runs the models in dependency order,
    applying every transformation at each Monte Carlo repetition. *)

open Mde_relational

(** A named piece of exchanged data. *)
type datum =
  | Number of float
  | Timeseries of Mde_timeseries.Series.t
  | Relation of Table.t

val datum_kind : datum -> string

type model = {
  name : string;
  description : string;
  inputs : string list;  (** dataset names consumed, in positional order *)
  outputs : string list;  (** dataset names produced, in positional order *)
  run : Mde_prob.Rng.t -> datum list -> datum list;
}

(** A data transformation on a dataset edge, applied after its producer
    runs and before any consumer sees it. *)
type transform = {
  dataset : string;
  transform_name : string;
  apply : datum -> datum;
}

val time_align_transform :
  dataset:string -> target_times:float array -> transform
(** Splash's automatic time aligner on a [Timeseries] dataset. *)

val schema_map_transform :
  dataset:string -> Mde_timeseries.Schema_map.t -> transform
(** A compiled Clio-style mapping on a [Relation] dataset. *)

val resample_transform : dataset:string -> step:float -> transform
(** Re-tick a [Timeseries] dataset onto a regular grid with the given
    step, spanning the series' own time range — the transform a platform
    inserts automatically when producer and consumer declare different
    time steps (see {!Mde.Registry.compose} in the core library). *)

type composite

val compose :
  name:string -> models:model list -> transforms:transform list -> composite
(** Validates the wiring: every dataset is produced by at most one model,
    every transform targets a produced dataset, and the producer/consumer
    graph is acyclic. Raises [Invalid_argument] with a diagnostic — the
    "automatic detection of data mismatches" step. *)

val execution_order : composite -> string list
(** Topological model order. *)

val execute :
  composite -> Mde_prob.Rng.t -> inputs:(string * datum) list -> (string * datum) list
(** One end-to-end run: seed the externally supplied datasets, run each
    model in order (after transforming its inputs), return all datasets.
    Raises [Invalid_argument] if a model input is neither supplied nor
    produced. *)

val execute_timed :
  composite ->
  Mde_prob.Rng.t ->
  inputs:(string * datum) list ->
  (string * datum) list * (string * float) list
(** Like {!execute}, additionally returning each model's wall-clock cost
    in seconds — the observations §2.3 wants folded back into the model
    metadata ("as the component models are used in production runs, their
    behavior can be observed and used to continually refine the
    statistics"); see [Mde.Registry.record_run]. *)

val monte_carlo :
  composite ->
  Mde_prob.Rng.t ->
  inputs:(string * datum) list ->
  reps:int ->
  query:((string * datum) list -> float) ->
  float array
(** Independent repetitions on split RNG streams, reduced by [query]. *)
