module Rng = Mde_prob.Rng
module Design = Mde_metamodel.Design

type parameter = {
  factor : string;
  low : float;
  high : float;
  template : float -> (string * Splash.datum) list;
}

let number_parameter ~factor ~dataset ~low ~high =
  { factor; low; high; template = (fun v -> [ (dataset, Splash.Number v) ]) }

type design_spec =
  | Full_factorial
  | Latin_hypercube of { levels : int }
  | Nolh of { levels : int; tries : int }

type run_record = { point : float array; replicate : int; response : float }

type result = {
  parameters : parameter list;
  design : float array array;
  runs : run_record array;
  mean_response : float array;
  response_variance : float array;
}

let build_design rng spec ~factors =
  match spec with
  | Full_factorial -> Design.full_factorial factors
  | Latin_hypercube { levels } -> Design.latin_hypercube ~rng ~factors ~levels
  | Nolh { levels; tries } -> Design.nearly_orthogonal_lh ~rng ~factors ~levels ~tries

let run ?(replications = 1) ~rng ~design ~parameters ~composite ~fixed_inputs
    ~response () =
  assert (replications >= 1);
  let factors = List.length parameters in
  assert (factors >= 1);
  let coded = build_design rng design ~factors in
  let ranges =
    Array.of_list (List.map (fun p -> (p.low, p.high)) parameters)
  in
  let natural = Design.scale coded ~ranges in
  let runs = ref [] in
  let mean_response = Array.make (Array.length natural) 0. in
  let response_variance = Array.make (Array.length natural) 0. in
  Array.iteri
    (fun run_index point ->
      (* The templating step: synthesize the input datasets each component
         model expects from the factor values. *)
      let templated =
        List.concat
          (List.mapi (fun j p -> p.template point.(j)) parameters)
      in
      (* Later bindings win: templated parameters override fixed inputs. *)
      let inputs =
        List.fold_left
          (fun acc (name, datum) ->
            (name, datum) :: List.remove_assoc name acc)
          fixed_inputs templated
      in
      let samples =
        Array.init replications (fun replicate ->
            let stream = Rng.split rng in
            let outputs = Splash.execute composite stream ~inputs in
            let value = response outputs in
            runs := { point = Array.copy point; replicate; response = value } :: !runs;
            value)
      in
      mean_response.(run_index) <- Mde_prob.Stats.mean samples;
      response_variance.(run_index) <- Mde_prob.Stats.variance samples)
    natural;
  {
    parameters;
    design = natural;
    runs = Array.of_list (List.rev !runs);
    mean_response;
    response_variance;
  }

let to_metamodel_data result = (result.design, result.mean_response)

let fit_kriging_metamodel result =
  let design, means = to_metamodel_data result in
  let replications =
    Array.length result.runs / max 1 (Array.length result.design)
  in
  if replications >= 2 then begin
    let noise_variances =
      Array.map
        (fun v -> Float.max 1e-12 (v /. float_of_int replications))
        result.response_variance
    in
    (* Reuse the MLE hyperparameters from a plain fit, then add the noise. *)
    let mle = Mde_metamodel.Kriging.fit_mle ~design ~response:means () in
    Mde_metamodel.Kriging.fit_stochastic
      ~theta:(Mde_metamodel.Kriging.theta mle)
      ~tau2:(Mde_metamodel.Kriging.tau2 mle)
      ~design ~means ~noise_variances ()
  end
  else Mde_metamodel.Kriging.fit_mle ~design ~response:means ()
