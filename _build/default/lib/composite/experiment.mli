(** Splash's experiment manager (§4.2, [26]): a unified view of composite
    model parameters, experimental designs over them, and runtime support
    for setting parameter values — the paper's "templating mechanism" that
    synthesizes the inputs each component model expects.

    A parameter binds a factor name to a range and a template: a function
    that, given the factor's value, produces (or rewrites) one of the
    composite's input datasets. Designs come from {!Mde_metamodel.Design};
    the manager scales coded levels into ranges, templates the inputs,
    runs the composite (with Monte Carlo replications per design point),
    and returns a response table ready for metamodel fitting. *)

type parameter = {
  factor : string;
  low : float;
  high : float;
  template : float -> (string * Splash.datum) list;
      (** input datasets this factor synthesizes at a given value *)
}

val number_parameter : factor:string -> dataset:string -> low:float -> high:float -> parameter
(** The common case: the factor value becomes a [Number] input dataset. *)

type design_spec =
  | Full_factorial  (** 2^k corners of the ranges *)
  | Latin_hypercube of { levels : int }
  | Nolh of { levels : int; tries : int }

type run_record = {
  point : float array;  (** natural-units factor values, parameter order *)
  replicate : int;
  response : float;
}

type result = {
  parameters : parameter list;
  design : float array array;  (** natural units, runs × factors *)
  runs : run_record array;
  mean_response : float array;  (** per design point *)
  response_variance : float array;  (** per design point, 0 if 1 replicate *)
}

val run :
  ?replications:int ->
  rng:Mde_prob.Rng.t ->
  design:design_spec ->
  parameters:parameter list ->
  composite:Splash.composite ->
  fixed_inputs:(string * Splash.datum) list ->
  response:((string * Splash.datum) list -> float) ->
  unit ->
  result
(** Execute the design: for each design point, template every parameter
    into input datasets (later parameters override earlier ones on name
    clashes; all override [fixed_inputs]), run the composite
    [replications] times on split RNG streams, and record the scalar
    response. *)

val to_metamodel_data : result -> float array array * float array
(** (design points, mean responses) in the form
    {!Mde_metamodel.Kriging.fit_mle} and {!Mde_metamodel.Polynomial.fit}
    consume. *)

val fit_kriging_metamodel : result -> Mde_metamodel.Kriging.t
(** Convenience: a GP metamodel of the composite response — "simulation
    on demand" over the design region. Uses stochastic kriging when the
    result has ≥ 2 replications per point (noise variances from the
    per-point sample variance), plain kriging otherwise. *)
