lib/composite/splash.ml: Array Float Hashtbl List Mde_prob Mde_relational Mde_timeseries Printf Stdlib String Sys Table
