lib/composite/splash.mli: Mde_prob Mde_relational Mde_timeseries Table
