lib/composite/result_cache.mli: Mde_prob
