lib/composite/result_cache.ml: Array Float Mde_prob Printf Stdlib Sys
