lib/composite/experiment.mli: Mde_metamodel Mde_prob Splash
