lib/composite/experiment.ml: Array Float List Mde_metamodel Mde_prob Splash
