(** Baseline derivative-free searches: uniform random sampling and grid
    search — the naive calibration strategies the heuristic methods of
    §3.1 are measured against. *)

type result = { x : float array; f : float; evaluations : int }

val random_search :
  rng:Mde_prob.Rng.t ->
  bounds:(float * float) array ->
  f:(float array -> float) ->
  evaluations:int ->
  result

val grid_search :
  bounds:(float * float) array ->
  f:(float array -> float) ->
  points_per_dim:int ->
  result
(** Full Cartesian grid of [points_per_dim] evenly spaced values per
    dimension — exponential cost, kept for small problems. *)
