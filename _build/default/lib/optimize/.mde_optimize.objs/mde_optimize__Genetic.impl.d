lib/optimize/genetic.ml: Array Float Fun Mde_prob
