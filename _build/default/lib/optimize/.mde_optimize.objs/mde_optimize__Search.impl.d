lib/optimize/search.ml: Array Mde_prob
