lib/optimize/search.mli: Mde_prob
