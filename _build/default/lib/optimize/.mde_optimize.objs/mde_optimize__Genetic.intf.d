lib/optimize/genetic.mli: Mde_prob
