module Rng = Mde_prob.Rng

type result = { x : float array; f : float; evaluations : int }

let random_search ~rng ~bounds ~f ~evaluations =
  assert (evaluations > 0);
  let dim = Array.length bounds in
  let best_x = ref [||] and best_f = ref infinity in
  for _ = 1 to evaluations do
    let x =
      Array.init dim (fun j ->
          let lo, hi = bounds.(j) in
          Rng.float_range rng lo hi)
    in
    let v = f x in
    if v < !best_f then begin
      best_f := v;
      best_x := x
    end
  done;
  { x = !best_x; f = !best_f; evaluations }

let grid_search ~bounds ~f ~points_per_dim =
  assert (points_per_dim >= 2);
  let dim = Array.length bounds in
  let level j k =
    let lo, hi = bounds.(j) in
    lo +. ((hi -. lo) *. float_of_int k /. float_of_int (points_per_dim - 1))
  in
  let best_x = ref [||] and best_f = ref infinity in
  let count = ref 0 in
  let x = Array.make dim 0. in
  let rec go j =
    if j = dim then begin
      incr count;
      let v = f x in
      if v < !best_f then begin
        best_f := v;
        best_x := Array.copy x
      end
    end
    else
      for k = 0 to points_per_dim - 1 do
        x.(j) <- level j k;
        go (j + 1)
      done
  in
  go 0;
  { x = !best_x; f = !best_f; evaluations = !count }
