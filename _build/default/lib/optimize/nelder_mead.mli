(** Nelder–Mead downhill simplex minimization — the heuristic optimizer
    Fabretti [17] applies to agent-based model calibration (§3.1), also
    used for Gaussian-process hyperparameter likelihoods. Derivative-free;
    suited to noisy, expensive objectives. *)

type result = {
  x : float array;
  f : float;
  iterations : int;
  evaluations : int;
  converged : bool;  (** simplex spread fell below [tol] *)
}

val minimize :
  ?max_iter:int ->
  ?tol:float ->
  ?step:float ->
  f:(float array -> float) ->
  x0:float array ->
  unit ->
  result
(** Standard coefficients (reflect 1, expand 2, contract ½, shrink ½);
    the initial simplex places one vertex at [x0] and perturbs each
    coordinate by [step] (default 0.5, or 0.05·|x| if larger). Default
    [max_iter] 1000, [tol] 1e-8 on the f-spread of the simplex. *)

val minimize_box :
  ?max_iter:int ->
  ?tol:float ->
  bounds:(float * float) array ->
  f:(float array -> float) ->
  x0:float array ->
  unit ->
  result
(** Box-constrained variant: coordinates are clamped into [bounds] before
    every evaluation (projection, adequate for the calibration use). *)
