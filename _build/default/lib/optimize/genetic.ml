module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist

type params = {
  population : int;
  generations : int;
  tournament : int;
  crossover_rate : float;
  mutation_rate : float;
  mutation_scale : float;
  elite : int;
}

let default_params =
  {
    population = 40;
    generations = 30;
    tournament = 3;
    crossover_rate = 0.9;
    mutation_rate = 0.15;
    mutation_scale = 0.1;
    elite = 2;
  }

type result = {
  x : float array;
  f : float;
  evaluations : int;
  best_per_generation : float array;
}

let minimize ?(params = default_params) ~rng ~bounds ~f () =
  let dim = Array.length bounds in
  assert (dim >= 1 && params.population >= 4 && params.elite < params.population);
  let evals = ref 0 in
  let eval x =
    incr evals;
    f x
  in
  let clamp j v =
    let lo, hi = bounds.(j) in
    Float.max lo (Float.min hi v)
  in
  let random_individual () =
    Array.init dim (fun j ->
        let lo, hi = bounds.(j) in
        Rng.float_range rng lo hi)
  in
  let pop = ref (Array.init params.population (fun _ -> random_individual ())) in
  let fitness = ref (Array.map eval !pop) in
  let best_per_generation = Array.make params.generations infinity in
  let tournament () =
    let best = ref (Rng.int rng params.population) in
    for _ = 2 to params.tournament do
      let c = Rng.int rng params.population in
      if !fitness.(c) < !fitness.(!best) then best := c
    done;
    !pop.(!best)
  in
  for g = 0 to params.generations - 1 do
    (* Elitism: carry over the current best individuals. *)
    let idx = Array.init params.population Fun.id in
    Array.sort (fun a b -> Float.compare !fitness.(a) !fitness.(b)) idx;
    best_per_generation.(g) <- !fitness.(idx.(0));
    let next = Array.make params.population [||] in
    for e = 0 to params.elite - 1 do
      next.(e) <- Array.copy !pop.(idx.(e))
    done;
    for i = params.elite to params.population - 1 do
      let a = tournament () and b = tournament () in
      let child =
        if Rng.bernoulli rng params.crossover_rate then
          (* BLX-0.5 blend crossover. *)
          Array.init dim (fun j ->
              let lo = Float.min a.(j) b.(j) and hi = Float.max a.(j) b.(j) in
              let range = hi -. lo in
              clamp j (Rng.float_range rng (lo -. (0.5 *. range)) (hi +. (0.5 *. range) +. 1e-12)))
        else Array.copy a
      in
      Array.iteri
        (fun j v ->
          if Rng.bernoulli rng params.mutation_rate then begin
            let lo, hi = bounds.(j) in
            let sigma = params.mutation_scale *. (hi -. lo) in
            child.(j) <-
              clamp j (v +. Dist.sample (Dist.Normal { mean = 0.; std = sigma }) rng)
          end)
        child;
      next.(i) <- child
    done;
    pop := next;
    fitness := Array.map eval !pop
  done;
  let best = ref 0 in
  Array.iteri (fun i v -> if v < !fitness.(!best) then best := i) !fitness;
  {
    x = Array.copy !pop.(!best);
    f = !fitness.(!best);
    evaluations = !evals;
    best_per_generation;
  }
