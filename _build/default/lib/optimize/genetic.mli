(** A real-coded genetic algorithm — the second heuristic Fabretti [17]
    uses for ABS calibration. Tournament selection, blend (BLX-α)
    crossover, Gaussian mutation, elitism. *)

type params = {
  population : int;
  generations : int;
  tournament : int;  (** tournament size for selection *)
  crossover_rate : float;
  mutation_rate : float;  (** per-gene probability *)
  mutation_scale : float;  (** mutation σ as a fraction of each range *)
  elite : int;  (** individuals copied unchanged *)
}

val default_params : params

type result = {
  x : float array;
  f : float;
  evaluations : int;
  best_per_generation : float array;
}

val minimize :
  ?params:params ->
  rng:Mde_prob.Rng.t ->
  bounds:(float * float) array ->
  f:(float array -> float) ->
  unit ->
  result
