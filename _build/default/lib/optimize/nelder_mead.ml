type result = {
  x : float array;
  f : float;
  iterations : int;
  evaluations : int;
  converged : bool;
}

let minimize ?(max_iter = 1000) ?(tol = 1e-8) ?(step = 0.5) ~f ~x0 () =
  let n = Array.length x0 in
  assert (n >= 1);
  let evals = ref 0 in
  let eval x =
    incr evals;
    f x
  in
  (* Initial simplex: x0 plus n perturbed vertices. *)
  let vertices =
    Array.init (n + 1) (fun i ->
        let v = Array.copy x0 in
        if i > 0 then begin
          let j = i - 1 in
          let d = Float.max step (0.05 *. Float.abs v.(j)) in
          v.(j) <- v.(j) +. d
        end;
        v)
  in
  let values = Array.map eval vertices in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun a b -> Float.compare values.(a) values.(b)) idx;
    idx
  in
  let iterations = ref 0 in
  let converged = ref false in
  let simplex_diameter best =
    let worst_d = ref 0. in
    Array.iter
      (fun v ->
        for j = 0 to n - 1 do
          worst_d := Float.max !worst_d (Float.abs (v.(j) -. vertices.(best).(j)))
        done)
      vertices;
    !worst_d
  in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
    let flat = Float.abs (values.(worst) -. values.(best)) <= tol in
    let tiny = simplex_diameter best <= 1e-9 *. (1. +. Float.abs vertices.(best).(0)) in
    if flat && tiny then converged := true
    else if flat then begin
      (* A flat simplex that is still wide (e.g. symmetric plateaus of
         |x − c|): shrink toward the best vertex to force progress. *)
      Array.iteri
        (fun i v ->
          if i <> best then begin
            vertices.(i) <-
              Array.init n (fun j -> (0.5 *. vertices.(best).(j)) +. (0.5 *. v.(j)));
            values.(i) <- eval vertices.(i)
          end)
        vertices
    end
    else begin
      (* Centroid of all but the worst vertex. *)
      let centroid = Array.make n 0. in
      Array.iteri
        (fun rank i ->
          if rank < n + 1 && i <> worst then
            Array.iteri
              (fun j xj -> centroid.(j) <- centroid.(j) +. (xj /. float_of_int n))
              vertices.(i))
        idx;
      let combine a wa b wb = Array.init n (fun j -> (wa *. a.(j)) +. (wb *. b.(j))) in
      let reflected = combine centroid 2. vertices.(worst) (-1.) in
      let fr = eval reflected in
      if fr < values.(best) then begin
        let expanded = combine centroid 3. vertices.(worst) (-2.) in
        let fe = eval expanded in
        if fe < fr then begin
          vertices.(worst) <- expanded;
          values.(worst) <- fe
        end
        else begin
          vertices.(worst) <- reflected;
          values.(worst) <- fr
        end
      end
      else if fr < values.(second_worst) then begin
        vertices.(worst) <- reflected;
        values.(worst) <- fr
      end
      else begin
        let contracted = combine centroid 0.5 vertices.(worst) 0.5 in
        let fc = eval contracted in
        if fc < values.(worst) then begin
          vertices.(worst) <- contracted;
          values.(worst) <- fc
        end
        else begin
          (* Shrink everything toward the best vertex. *)
          Array.iteri
            (fun i v ->
              if i <> best then begin
                vertices.(i) <- combine vertices.(best) 0.5 v 0.5;
                values.(i) <- eval vertices.(i)
              end)
            vertices
        end
      end
    end
  done;
  let idx = order () in
  {
    x = Array.copy vertices.(idx.(0));
    f = values.(idx.(0));
    iterations = !iterations;
    evaluations = !evals;
    converged = !converged;
  }

let minimize_box ?max_iter ?tol ~bounds ~f ~x0 () =
  let clamp x =
    Array.mapi
      (fun j v ->
        let lo, hi = bounds.(j) in
        Float.max lo (Float.min hi v))
      x
  in
  let result = minimize ?max_iter ?tol ~f:(fun x -> f (clamp x)) ~x0:(clamp x0) () in
  { result with x = clamp result.x }
