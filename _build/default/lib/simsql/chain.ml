open Mde_relational
module Rng = Mde_prob.Rng

module String_map = Map.Make (String)

type state = Table.t String_map.t

let state_of_tables tables =
  List.fold_left (fun acc (name, t) -> String_map.add name t acc) String_map.empty tables

let table state name =
  match String_map.find_opt name state with
  | Some t -> t
  | None -> raise Not_found

let table_opt state name = String_map.find_opt name state
let table_names state = List.map fst (String_map.bindings state)
let with_table state name t = String_map.add name t state

type t = {
  initial : Rng.t -> state;
  transition : Rng.t -> state -> state;
}

let simulate t rng ~steps =
  assert (steps >= 0);
  let states = Array.make (steps + 1) String_map.empty in
  states.(0) <- t.initial rng;
  for i = 1 to steps do
    states.(i) <- t.transition rng states.(i - 1)
  done;
  states

let simulate_query t rng ~steps ~query =
  Array.map query (simulate t rng ~steps)

let monte_carlo t rng ~steps ~reps ~query =
  assert (reps > 0);
  let streams = Rng.split_n rng reps in
  Array.init reps (fun r -> simulate_query t streams.(r) ~steps ~query)

module Rules = struct
  type rule = {
    target : string;
    derive : Rng.t -> state -> Table.t;
  }

  let vg_rule ~target ~schema ~driver ~vg ~params ~combine =
    let derive rng state =
      let st =
        Mde_mcdb.Stochastic_table.define ~name:target ~schema ~driver:(driver state)
          ~vg
          ~params:(params state)
          ~combine
      in
      Mde_mcdb.Stochastic_table.instantiate st rng
    in
    { target; derive }

  let transition rules rng state =
    List.fold_left
      (fun acc rule -> with_table acc rule.target (rule.derive rng acc))
      state rules
end
