lib/simsql/self_join.ml: Array Float Hashtbl Int List Mde_relational Schema Table Value
