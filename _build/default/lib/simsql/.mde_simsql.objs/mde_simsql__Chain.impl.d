lib/simsql/chain.ml: Array List Map Mde_mcdb Mde_prob Mde_relational String Table
