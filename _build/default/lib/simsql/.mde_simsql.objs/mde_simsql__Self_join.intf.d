lib/simsql/self_join.mli: Mde_prob Mde_relational Schema Table
