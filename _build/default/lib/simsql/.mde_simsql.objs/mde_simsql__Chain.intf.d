lib/simsql/chain.mli: Mde_mcdb Mde_prob Mde_relational Schema Table
