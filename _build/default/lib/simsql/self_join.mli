(** Agent-based simulation steps as self-joins (Wang et al. [55], §2.1).

    Each row of the agent table is one agent's internal state; a
    simulation step joins the table with itself so that every agent sees
    its interaction partners, then maps each (agent, neighbors) group
    through an update function. Because agents typically interact only
    with a small set of "nearby" agents, the join is partitioned into
    buckets (e.g. spatial cells): agents are only paired within shared
    buckets, which is exactly the structure that lets a parallel DBMS
    scale the step. {!stats} reports how many candidate pairs the bucket
    scheme examined versus the n² a naive self-join would touch. *)

open Mde_relational

type stats = {
  agents : int;
  candidate_pairs : int;  (** pairs examined via buckets *)
  naive_pairs : int;  (** agents² — the unpartitioned cost *)
  neighbor_links : int;  (** pairs that passed the neighbor predicate *)
}

val step :
  ?buckets:(Table.row -> int list) ->
  neighbor:(Schema.t -> Table.row -> Table.row -> bool) ->
  update:(Mde_prob.Rng.t -> Schema.t -> Table.row -> Table.row list -> Table.row) ->
  Mde_prob.Rng.t ->
  Table.t ->
  Table.t * stats
(** [step ~buckets ~neighbor ~update rng agents]:
    - [buckets row] lists the partition cells the agent belongs to
      (default: a single shared bucket, i.e. the full self-join);
    - [neighbor schema a b] decides whether agent [b] is visible to
      agent [a] (need not be symmetric);
    - [update rng schema a nbrs] computes agent [a]'s next state from its
      current row and its visible neighbors' rows.

    All updates read the pre-step table — the synchronous-step semantics
    of the self-join formulation. *)

val grid_buckets :
  x:string -> y:string -> cell:float -> Schema.t -> Table.row -> int list
(** Standard 2-D spatial bucketing: an agent at (x, y) with interaction
    radius ≤ [cell] belongs to its own grid cell and the 8 surrounding
    ones, so any pair within [cell] distance shares at least one bucket. *)
