type column_stats = {
  non_null : int;
  distinct : int;
  min : Value.t;
  max : Value.t;
  mean : float option;
  std : float option;
}

type entry = {
  table : Table.t;
  mutable stats : (string, column_stats) Hashtbl.t;
}

type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 16

let register t name table =
  Hashtbl.replace t name { table; stats = Hashtbl.create 8 }

let drop t name = Hashtbl.remove t name

let find t name =
  match Hashtbl.find_opt t name with
  | Some e -> e.table
  | None -> raise Not_found

let find_opt t name = Option.map (fun e -> e.table) (Hashtbl.find_opt t name)

let table_names t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let row_count t name = Table.cardinality (find t name)

let compute_stats table col =
  let values = Table.column table col in
  let non_null_list =
    Array.to_list values |> List.filter (fun v -> not (Value.is_null v))
  in
  let non_null = List.length non_null_list in
  let distinct =
    let seen = Hashtbl.create 64 in
    List.iter (fun v -> Hashtbl.replace seen v ()) non_null_list;
    Hashtbl.length seen
  in
  let vmin, vmax =
    List.fold_left
      (fun (lo, hi) v ->
        let lo = if Value.is_null lo || Value.compare v lo < 0 then v else lo in
        let hi = if Value.is_null hi || Value.compare v hi > 0 then v else hi in
        (lo, hi))
      (Value.Null, Value.Null) non_null_list
  in
  let numeric =
    match Schema.column_type (Table.schema table) col with
    | Value.Tint | Value.Tfloat -> true
    | Value.Tstring | Value.Tbool -> false
  in
  let mean, std =
    if numeric && non_null > 0 then begin
      let xs = Array.of_list (List.map Value.to_float non_null_list) in
      (Some (Mde_prob.Stats.mean xs), Some (Mde_prob.Stats.std xs))
    end
    else (None, None)
  in
  { non_null; distinct; min = vmin; max = vmax; mean; std }

let column_stats t name col =
  let entry =
    match Hashtbl.find_opt t name with Some e -> e | None -> raise Not_found
  in
  match Hashtbl.find_opt entry.stats col with
  | Some s -> s
  | None ->
    let s = compute_stats entry.table col in
    Hashtbl.add entry.stats col s;
    s

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun name ->
      let table = find t name in
      Format.fprintf ppf "%s: %d rows, schema %a@," name (Table.cardinality table)
        Schema.pp (Table.schema table))
    (table_names t);
  Format.fprintf ppf "@]"
