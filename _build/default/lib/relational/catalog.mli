(** Named-table catalog with per-column statistics — the engine's analogue
    of an RDBMS catalog. §2.3 of the paper points out that simulation-run
    optimization needs the same kind of continuously refined statistics a
    query optimizer keeps; {!column_stats} is what the composite-model
    optimizer consumes. *)

type t

type column_stats = {
  non_null : int;
  distinct : int;
  min : Value.t;  (** Null when the column is all-Null *)
  max : Value.t;
  mean : float option;  (** numeric columns only *)
  std : float option;
}

val create : unit -> t
val register : t -> string -> Table.t -> unit
(** Replaces any previous table of the same name and invalidates its
    cached statistics. *)

val drop : t -> string -> unit
val find : t -> string -> Table.t
(** Raises [Not_found]. *)

val find_opt : t -> string -> Table.t option
val table_names : t -> string list
(** Sorted. *)

val row_count : t -> string -> int

val column_stats : t -> string -> string -> column_stats
(** [column_stats t table col]; computed lazily and cached per table
    version. *)

val pp : Format.formatter -> t -> unit
