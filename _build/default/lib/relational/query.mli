(** A pipeline-style query builder over the algebra, giving the SQL-ish
    surface used by Indemics intervention scripts (Algorithm 1) and the
    MCDB examples:

    {[
      Query.of_table person
      |> Query.where Expr.(col "age" <= int 4)
      |> Query.group ~keys:[] ~aggs:[ ("n", Algebra.Count) ]
      |> Query.run
    ]} *)

type t

val of_table : Table.t -> t
val where : Expr.t -> t -> t
val select_cols : string list -> t -> t
val compute : (string * Value.ty * Expr.t) list -> t -> t
val rename_cols : (string * string) list -> t -> t
val join : ?kind:Algebra.join_kind -> on:(string * string) list -> Table.t -> t -> t
(** Join the pipeline (left side) with a table (right side). *)

val join_query : ?kind:Algebra.join_kind -> on:(string * string) list -> t -> t -> t
val group : keys:string list -> aggs:(string * Algebra.aggregate) list -> t -> t
val sort : ?descending:bool -> string list -> t -> t
val dedup : t -> t
val take : int -> t -> t
val run : t -> Table.t

val scalar : t -> Value.t
(** Run and return the single value of a 1×1 result.
    Raises [Invalid_argument] otherwise. *)

val count : t -> int
(** Cardinality of the result. *)
