(* Queries execute eagerly: each combinator materializes its result.
   This keeps semantics obvious; the engine's tables are small enough in
   all workloads here that pipelining would buy nothing. *)
type t = Table.t

let of_table table = table
let where pred q = Algebra.select pred q
let select_cols names q = Algebra.project names q
let compute defs q = Algebra.extend defs q
let rename_cols renames q = Algebra.rename renames q
let join ?kind ~on right q = Algebra.equi_join ?kind ~on q right
let join_query ?kind ~on right q = Algebra.equi_join ?kind ~on q right
let group ~keys ~aggs q = Algebra.group_by ~keys ~aggs q
let sort ?descending names q = Algebra.order_by ?descending names q
let dedup q = Algebra.distinct q
let take n q = Algebra.limit n q
let run q = q

let scalar q =
  if Table.cardinality q = 1 && Schema.arity (Table.schema q) = 1 then
    (Table.rows q).(0).(0)
  else
    invalid_arg
      (Printf.sprintf "Query.scalar: result is %dx%d, expected 1x1"
         (Table.cardinality q)
         (Schema.arity (Table.schema q)))

let count q = Table.cardinality q
