type row = Value.t array
type t = { schema : Schema.t; rows : row array }

let check_row schema row =
  let cols = Array.of_list (Schema.columns schema) in
  if Array.length row <> Array.length cols then
    invalid_arg
      (Printf.sprintf "Table: row arity %d, schema arity %d" (Array.length row)
         (Array.length cols));
  Array.iteri
    (fun i v ->
      match Value.type_of v with
      | None -> ()
      | Some ty ->
        if ty <> cols.(i).Schema.ty then
          invalid_arg
            (Printf.sprintf "Table: column %S expects %s, got %s" cols.(i).Schema.name
               (Value.type_name cols.(i).Schema.ty)
               (Value.type_name ty)))
    row

let of_rows schema rows =
  Array.iter (check_row schema) rows;
  { schema; rows }

let create schema row_list = of_rows schema (Array.of_list row_list)
let empty schema = { schema; rows = [||] }
let schema t = t.schema
let rows t = t.rows
let cardinality t = Array.length t.rows
let get t i col = t.rows.(i).(Schema.column_index t.schema col)

let column t col =
  let idx = Schema.column_index t.schema col in
  Array.map (fun row -> row.(idx)) t.rows

let column_floats t col =
  let idx = Schema.column_index t.schema col in
  Array.map (fun row -> Value.to_float row.(idx)) t.rows

let iter f t = Array.iter f t.rows

let append a b =
  if not (Schema.equal a.schema b.schema) then
    invalid_arg "Table.append: schema mismatch";
  { schema = a.schema; rows = Array.append a.rows b.rows }

let pp ?(max_rows = 20) ppf t =
  let names = Schema.column_names t.schema in
  let shown = min max_rows (cardinality t) in
  let cells =
    List.map
      (fun name ->
        let idx = Schema.column_index t.schema name in
        let body = List.init shown (fun i -> Value.to_display t.rows.(i).(idx)) in
        name :: body)
      names
  in
  let widths = List.map (fun col -> List.fold_left (fun w s -> max w (String.length s)) 0 col) cells in
  let print_row k =
    List.iteri
      (fun j col ->
        let w = List.nth widths j in
        Format.fprintf ppf "%s%-*s" (if j = 0 then "| " else " | ") w (List.nth col k))
      cells;
    Format.fprintf ppf " |@,"
  in
  Format.fprintf ppf "@[<v>";
  print_row 0;
  List.iteri
    (fun j w ->
      Format.fprintf ppf "%s%s" (if j = 0 then "|-" else "-|-") (String.make w '-'))
    widths;
  Format.fprintf ppf "-|@,";
  for k = 1 to shown do
    print_row k
  done;
  if cardinality t > shown then Format.fprintf ppf "... (%d rows total)@," (cardinality t);
  Format.fprintf ppf "@]"
