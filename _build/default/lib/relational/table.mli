(** Materialized relations: a schema plus an array of rows. Rows are
    value arrays positionally aligned with the schema. *)

type row = Value.t array
type t

val create : Schema.t -> row list -> t
(** Validates every row's arity and (non-null) column types. *)

val of_rows : Schema.t -> row array -> t
val empty : Schema.t -> t
val schema : t -> Schema.t
val rows : t -> row array
(** The backing array — callers must not mutate it. *)

val cardinality : t -> int
val get : t -> int -> string -> Value.t
(** [get t i col] is row [i]'s value in column [col]. *)

val column : t -> string -> Value.t array
val column_floats : t -> string -> float array
(** Numeric column as floats, skipping no rows; raises on non-numeric. *)

val iter : (row -> unit) -> t -> unit
val append : t -> t -> t
(** Schemas must be equal. *)

val pp : ?max_rows:int -> Format.formatter -> t -> unit
(** Render as an aligned text table (default first 20 rows). *)
