lib/relational/query.ml: Algebra Array Printf Schema Table
