lib/relational/plan.ml: Algebra Array Catalog Expr Float Format List Map Option Schema String Table Value
