lib/relational/algebra.mli: Expr Table Value
