lib/relational/query.mli: Algebra Expr Table Value
