lib/relational/plan.mli: Catalog Expr Format Schema Table
