lib/relational/catalog.mli: Format Table Value
