lib/relational/algebra.ml: Array Expr Float Hashtbl Int List Schema Table Value
