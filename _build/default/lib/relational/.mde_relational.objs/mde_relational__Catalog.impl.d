lib/relational/catalog.ml: Array Format Hashtbl List Mde_prob Option Schema String Table Value
