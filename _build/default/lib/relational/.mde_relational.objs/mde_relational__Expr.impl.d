lib/relational/expr.ml: Array Format Hashtbl List Printf Schema Stdlib Value
