lib/relational/table.ml: Array Format List Printf Schema String Value
