lib/relational/value.ml: Bool Float Format Int Printf String
