(** Table schemas: ordered, named, typed columns. Column lookup is O(1)
    via an internal index so that expression evaluation inside tight
    Monte Carlo loops stays cheap. *)

type column = { name : string; ty : Value.ty }
type t

val create : column list -> t
(** Raises [Invalid_argument] on duplicate column names. *)

val of_list : (string * Value.ty) list -> t
val columns : t -> column list
val arity : t -> int
val column_index : t -> string -> int
(** Raises [Not_found] for an unknown column. *)

val mem : t -> string -> bool
val column_type : t -> string -> Value.ty
val column_names : t -> string list

val concat : t -> t -> t
(** Schema of a join result. Raises [Invalid_argument] on a name clash —
    rename columns first. *)

val rename : t -> (string * string) list -> t
(** Apply old→new renames; unknown old names raise [Not_found]. *)

val project : t -> string list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
