type column = { name : string; ty : Value.ty }
type t = { cols : column array; index : (string, int) Hashtbl.t }

let build cols =
  let index = Hashtbl.create (Array.length cols * 2) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem index c.name then
        invalid_arg (Printf.sprintf "Schema.create: duplicate column %S" c.name);
      Hashtbl.add index c.name i)
    cols;
  { cols; index }

let create cols = build (Array.of_list cols)
let of_list l = create (List.map (fun (name, ty) -> { name; ty }) l)
let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let column_index t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> raise Not_found

let mem t name = Hashtbl.mem t.index name
let column_type t name = t.cols.(column_index t name).ty
let column_names t = List.map (fun c -> c.name) (columns t)

let concat a b =
  Array.iter
    (fun c ->
      if Hashtbl.mem a.index c.name then
        invalid_arg (Printf.sprintf "Schema.concat: column %S on both sides" c.name))
    b.cols;
  build (Array.append a.cols b.cols)

let rename t renames =
  List.iter
    (fun (old_name, _) ->
      if not (Hashtbl.mem t.index old_name) then raise Not_found)
    renames;
  let renamed =
    Array.map
      (fun c ->
        match List.assoc_opt c.name renames with
        | Some fresh -> { c with name = fresh }
        | None -> c)
      t.cols
  in
  build renamed

let project t names =
  create (List.map (fun n -> t.cols.(column_index t n)) names)

let equal a b =
  arity a = arity b
  && Array.for_all2 (fun x y -> x.name = y.name && x.ty = y.ty) a.cols b.cols

let pp ppf t =
  Format.fprintf ppf "(@[%a@])"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf c -> Format.fprintf ppf "%s:%s" c.name (Value.type_name c.ty)))
    (columns t)
