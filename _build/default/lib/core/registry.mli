(** The ecosystem registry: the organizational backbone of a model-data
    ecosystem. Models and datasets are registered with the metadata that
    Splash-style platforms rely on (description, provenance, time step,
    performance statistics from past runs), so that composition tools can
    detect mismatches and the run optimizer (§2.3) can amortize pilot
    costs across uses — "important performance characteristics of a model
    can be stored as part of the model's metadata". *)

type model_meta = {
  model_name : string;
  description : string;
  inputs : string list;
  outputs : string list;
  time_step : float option;  (** simulated time units per tick *)
  mutable mean_run_cost : float option;  (** refined after each run *)
  mutable output_variance : float option;
}

type dataset_meta = {
  dataset_name : string;
  dataset_description : string;
  provenance : string;  (** where the data came from *)
  time_step_ds : float option;
}

type t

val create : unit -> t
val register_model : t -> model_meta -> Mde_composite.Splash.model -> unit
val register_dataset : t -> dataset_meta -> Mde_composite.Splash.datum -> unit
val model : t -> string -> Mde_composite.Splash.model
val model_meta : t -> string -> model_meta
val dataset : t -> string -> Mde_composite.Splash.datum
val dataset_meta : t -> string -> dataset_meta
val model_names : t -> string list
val dataset_names : t -> string list

val record_run : t -> string -> cost:float -> output:float -> unit
(** Fold a production run's observed cost and output into the model's
    running statistics (exponential moving average, λ = 0.2) — the §2.3
    continual-refinement loop. *)

val time_step_mismatch : t -> source:string -> target:string -> bool
(** True when both models declare time steps and they differ — the
    trigger for inserting a time-alignment transform. *)

val compose :
  t ->
  name:string ->
  model_names:string list ->
  Mde_composite.Splash.composite
(** Drag-and-drop composition, Splash style: look the models up, detect
    time-step mismatches on every producer→consumer dataset edge, and
    automatically insert a {!Mde_composite.Splash.resample_transform}
    onto the consumer's clock for each mismatch. Raises
    [Invalid_argument] for unknown models or invalid wiring. *)

val pp : Format.formatter -> t -> unit
