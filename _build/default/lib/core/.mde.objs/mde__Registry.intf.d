lib/core/registry.mli: Format Mde_composite
