lib/core/registry.ml: Float Format Hashtbl List Mde_composite Printf String
