type model_meta = {
  model_name : string;
  description : string;
  inputs : string list;
  outputs : string list;
  time_step : float option;
  mutable mean_run_cost : float option;
  mutable output_variance : float option;
}

type dataset_meta = {
  dataset_name : string;
  dataset_description : string;
  provenance : string;
  time_step_ds : float option;
}

type t = {
  models : (string, model_meta * Mde_composite.Splash.model) Hashtbl.t;
  datasets : (string, dataset_meta * Mde_composite.Splash.datum) Hashtbl.t;
}

let create () = { models = Hashtbl.create 16; datasets = Hashtbl.create 16 }

let register_model t meta m = Hashtbl.replace t.models meta.model_name (meta, m)

let register_dataset t meta d =
  Hashtbl.replace t.datasets meta.dataset_name (meta, d)

let find_exn table name kind =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Registry: unknown %s %S" kind name)

let model t name = snd (find_exn t.models name "model")
let model_meta t name = fst (find_exn t.models name "model")
let dataset t name = snd (find_exn t.datasets name "dataset")
let dataset_meta t name = fst (find_exn t.datasets name "dataset")

let sorted_keys table =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let model_names t = sorted_keys t.models
let dataset_names t = sorted_keys t.datasets

let ema old fresh = match old with None -> fresh | Some v -> (0.8 *. v) +. (0.2 *. fresh)

let record_run t name ~cost ~output =
  let meta = model_meta t name in
  meta.mean_run_cost <- Some (ema meta.mean_run_cost cost);
  (* Second-moment EMA: a rough, continually refined variability
     statistic in the spirit of RDBMS catalog statistics. *)
  meta.output_variance <- Some (ema meta.output_variance (output *. output))

let time_step_mismatch t ~source ~target =
  match ((model_meta t source).time_step, (model_meta t target).time_step) with
  | Some a, Some b -> Float.abs (a -. b) > 1e-12
  | None, _ | _, None -> false

let pp ppf t =
  Format.fprintf ppf "@[<v>models:@,";
  List.iter
    (fun name ->
      let meta = model_meta t name in
      Format.fprintf ppf "  %s: %s (in: %s; out: %s)@," name meta.description
        (String.concat ", " meta.inputs)
        (String.concat ", " meta.outputs))
    (model_names t);
  Format.fprintf ppf "datasets:@,";
  List.iter
    (fun name ->
      let meta = dataset_meta t name in
      Format.fprintf ppf "  %s: %s [%s]@," name meta.dataset_description meta.provenance)
    (dataset_names t);
  Format.fprintf ppf "@]"

let compose t ~name ~model_names =
  let models = List.map (fun n -> (model_meta t n, model t n)) model_names in
  (* Producer map over the chosen models. *)
  let producer = Hashtbl.create 16 in
  List.iter
    (fun (meta, _) ->
      List.iter (fun ds -> Hashtbl.replace producer ds meta) meta.outputs)
    models;
  (* For each consumed dataset with a producer, compare declared time
     steps and insert an automatic resampling transform on mismatch. *)
  let transforms = ref [] in
  List.iter
    (fun (consumer_meta, _) ->
      List.iter
        (fun ds ->
          match Hashtbl.find_opt producer ds with
          | Some producer_meta -> (
            match (producer_meta.time_step, consumer_meta.time_step) with
            | Some src, Some dst when Float.abs (src -. dst) > 1e-12 ->
              transforms :=
                Mde_composite.Splash.resample_transform ~dataset:ds ~step:dst
                :: !transforms
            | Some _, Some _ | None, _ | _, None -> ())
          | None -> ())
        consumer_meta.inputs)
    models;
  Mde_composite.Splash.compose ~name
    ~models:(List.map snd models)
    ~transforms:(List.rev !transforms)
