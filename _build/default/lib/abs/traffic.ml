module Rng = Mde_prob.Rng

type params = {
  length : int;
  lanes : int;
  max_speed : int;
  p_brake : float;
  p_change : float;
}

let default_params =
  { length = 300; lanes = 1; max_speed = 5; p_brake = 0.25; p_change = 0.5 }

(* speed.(lane).(cell) is the speed of the car in that cell, or -1 when
   the cell is empty. *)
type t = {
  params : params;
  speed : int array array;
  rng : Rng.t;
  mutable moved_last_step : int;
}

let create params ~density rng =
  assert (params.length > 1 && params.lanes >= 1 && params.max_speed >= 1);
  assert (density > 0. && density < 1.);
  let speed = Array.init params.lanes (fun _ -> Array.make params.length (-1)) in
  let cells = params.lanes * params.length in
  let n_cars =
    Stdlib.max 1 (Float.to_int (ceil (density *. float_of_int cells)))
  in
  (* Choose occupied cells without replacement via a shuffled index list. *)
  let order = Rng.permutation rng cells in
  for k = 0 to n_cars - 1 do
    let idx = order.(k) in
    let lane = idx / params.length and cell = idx mod params.length in
    speed.(lane).(cell) <- Rng.int rng (params.max_speed + 1)
  done;
  { params; speed; rng; moved_last_step = 0 }

let car_count t =
  Array.fold_left
    (fun acc lane -> Array.fold_left (fun a v -> if v >= 0 then a + 1 else a) acc lane)
    0 t.speed

let gap_ahead t lane cell =
  (* Distance to the next occupied cell ahead, capped at max_speed+1. *)
  let n = t.params.length in
  let rec go d =
    if d > t.params.max_speed + 1 then d
    else if t.speed.(lane).((cell + d) mod n) >= 0 then d - 1
    else go (d + 1)
  in
  go 1

let gap_behind t lane cell =
  let n = t.params.length in
  let wrap i = ((i mod n) + n) mod n in
  let rec go d =
    if d > t.params.max_speed + 1 then d
    else if t.speed.(lane).(wrap (cell - d)) >= 0 then d - 1
    else go (d + 1)
  in
  go 1

let step t =
  let p = t.params in
  let n = p.length in
  (* Phase 1: lane changes (only meaningful with >= 2 lanes). *)
  if p.lanes >= 2 then begin
    let changes = ref [] in
    for lane = 0 to p.lanes - 1 do
      for cell = 0 to n - 1 do
        let v = t.speed.(lane).(cell) in
        if v >= 0 then begin
          let gap = gap_ahead t lane cell in
          if gap < v + 1 then begin
            (* Blocked: look for a better lane among the adjacent ones. *)
            let candidates =
              List.filter
                (fun l -> l >= 0 && l < p.lanes)
                [ lane - 1; lane + 1 ]
            in
            let better =
              List.filter
                (fun l ->
                  t.speed.(l).(cell) < 0
                  && gap_ahead t l cell > gap
                  && gap_behind t l cell >= p.max_speed)
                candidates
            in
            match better with
            | [] -> ()
            | l :: _ ->
              if Rng.bernoulli t.rng p.p_change then changes := (lane, cell, l) :: !changes
          end
        end
      done
    done;
    List.iter
      (fun (lane, cell, target) ->
        if t.speed.(target).(cell) < 0 then begin
          t.speed.(target).(cell) <- t.speed.(lane).(cell);
          t.speed.(lane).(cell) <- -1
        end)
      !changes
  end;
  (* Phase 2: NaSch speed update + synchronous movement. *)
  let moved = ref 0 in
  let next = Array.init p.lanes (fun _ -> Array.make n (-1)) in
  for lane = 0 to p.lanes - 1 do
    for cell = 0 to n - 1 do
      let v = t.speed.(lane).(cell) in
      if v >= 0 then begin
        let v = Stdlib.min (v + 1) p.max_speed in
        let gap = gap_ahead t lane cell in
        let v = Stdlib.min v gap in
        let v = if v > 0 && Rng.bernoulli t.rng p.p_brake then v - 1 else v in
        let dest = (cell + v) mod n in
        next.(lane).(dest) <- v;
        moved := !moved + v
      end
    done
  done;
  Array.iteri (fun lane row -> Array.blit row 0 t.speed.(lane) 0 n) next;
  t.moved_last_step <- !moved

let mean_speed t =
  let cars = car_count t in
  if cars = 0 then 0.
  else begin
    let total =
      Array.fold_left
        (fun acc lane -> Array.fold_left (fun a v -> if v >= 0 then a + v else a) acc lane)
        0 t.speed
    in
    float_of_int total /. float_of_int cars
  end

let flow t =
  let cells = t.params.lanes * t.params.length in
  float_of_int (car_count t) /. float_of_int cells *. mean_speed t

let jammed_fraction t =
  let cars = car_count t in
  if cars = 0 then 0.
  else begin
    let stopped =
      Array.fold_left
        (fun acc lane -> Array.fold_left (fun a v -> if v = 0 then a + 1 else a) acc lane)
        0 t.speed
    in
    float_of_int stopped /. float_of_int cars
  end

let occupancy t ~lane = Array.map (fun v -> v >= 0) t.speed.(lane)

type sweep_point = {
  density : float;
  mean_flow : float;
  mean_speed_pt : float;
  jammed : float;
}

let density_sweep ?(seed = 42) params ~densities ~warmup ~measure =
  assert (warmup >= 0 && measure > 0);
  Array.map
    (fun density ->
      let rng = Rng.create ~seed () in
      let t = create params ~density rng in
      for _ = 1 to warmup do
        step t
      done;
      let f = ref 0. and s = ref 0. and j = ref 0. in
      for _ = 1 to measure do
        step t;
        f := !f +. flow t;
        s := !s +. mean_speed t;
        j := !j +. jammed_fraction t
      done;
      let m = float_of_int measure in
      {
        density;
        mean_flow = !f /. m;
        mean_speed_pt = !s /. m;
        jammed = !j /. m;
      })
    densities

let space_time_diagram t ~steps ~lane =
  assert (lane >= 0 && lane < t.params.lanes);
  let buf = Buffer.create (steps * (t.params.length + 1)) in
  for _ = 1 to steps do
    step t;
    Array.iter
      (fun occupied -> Buffer.add_char buf (if occupied then '#' else '.'))
      (occupancy t ~lane);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
