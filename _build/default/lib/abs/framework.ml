type ('agent, 'env) spec = {
  step_agent : Mde_prob.Rng.t -> 'env -> 'agent array -> int -> 'agent;
  step_env : Mde_prob.Rng.t -> 'env -> 'agent array -> 'env;
}

type ('agent, 'env) state = { agents : 'agent array; env : 'env }

let step spec rng state =
  let agents =
    Array.init (Array.length state.agents) (fun i ->
        spec.step_agent rng state.env state.agents i)
  in
  { agents; env = spec.step_env rng state.env agents }

let run spec rng ~steps ~init =
  assert (steps >= 0);
  let state = ref init in
  for _ = 1 to steps do
    state := step spec rng !state
  done;
  !state

let trajectory spec rng ~steps ~init ~observe =
  assert (steps >= 0);
  let out = Array.make (steps + 1) (observe init) in
  let state = ref init in
  for i = 1 to steps do
    state := step spec rng !state;
    out.(i) <- observe !state
  done;
  out
