(** Schelling's dynamic model of segregation [48] — the paper's canonical
    early agent-based simulation. Two agent types on a grid with
    vacancies; an agent is unhappy when the fraction of like neighbours
    among its occupied neighbours falls below its tolerance threshold,
    and unhappy agents relocate to random vacant cells. Mild individual
    preferences produce strong global segregation. *)

type t

val create :
  ?seed:int ->
  size:int ->
  vacancy:float ->
  threshold:float ->
  unit ->
  t
(** [size × size] torus; [vacancy] ∈ (0,1) fraction of empty cells;
    remaining cells split evenly between the two types; [threshold] ∈
    [0,1] is the minimum acceptable like-neighbour fraction. *)

val step : t -> int
(** Move every unhappy agent (random order) to a uniformly random vacant
    cell; returns the number of moves. *)

val run_until_settled : ?max_steps:int -> t -> int
(** Step until no agent moves (or the cap, default 500); returns steps
    executed. *)

val segregation_index : t -> float
(** Mean like-neighbour fraction over all agents — 0.5 at random mixing,
    → 1 under full segregation. *)

val unhappy_count : t -> int
val to_string : t -> string
(** ASCII rendering: [#]/[o] agents, [.] vacant. *)
