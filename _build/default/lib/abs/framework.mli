(** A minimal synchronous agent-based simulation framework: agents repeat
    the sense–think–respond cycle of §2.4 against a shared environment.
    Concrete models (traffic, Schelling, the epidemic and wildfire
    simulators) either instantiate this or follow its discipline. *)

type ('agent, 'env) spec = {
  step_agent : Mde_prob.Rng.t -> 'env -> 'agent array -> int -> 'agent;
      (** [step_agent rng env agents i]: agent [i]'s next state, reading
          the pre-step population (synchronous update). *)
  step_env : Mde_prob.Rng.t -> 'env -> 'agent array -> 'env;
      (** Environment update, applied after all agents move. *)
}

type ('agent, 'env) state = { agents : 'agent array; env : 'env }

val step :
  ('agent, 'env) spec -> Mde_prob.Rng.t -> ('agent, 'env) state -> ('agent, 'env) state

val run :
  ('agent, 'env) spec ->
  Mde_prob.Rng.t ->
  steps:int ->
  init:('agent, 'env) state ->
  ('agent, 'env) state
(** Final state after [steps] synchronous steps. *)

val trajectory :
  ('agent, 'env) spec ->
  Mde_prob.Rng.t ->
  steps:int ->
  init:('agent, 'env) state ->
  observe:(('agent, 'env) state -> 'obs) ->
  'obs array
(** Observation at every step including the initial state
    (length steps+1). *)
