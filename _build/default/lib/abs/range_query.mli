(** Synchronized range queries over distributed shared state
    (PDES-MAS, §2.4, [52]).

    Agent logical processes (ALPs) publish externally visible attributes
    as shared state variables (SSVs) whose values are timestamped; a tree
    of communication logical processes (CLPs) holds the SSVs and answers
    instantaneous range queries — "find all agents whose attribute is in
    [lo, hi] right now" — issued at possibly different simulated times,
    because ALPs progress at different rates. Here the CLP tree is a
    static balanced binary tree over agents; each node keeps bounds over
    its subtree's whole value history for pruning, and every answer is
    checked against the timestamped histories, so queries at past times
    are answered exactly. *)

type t

val create : ?bucket_width:float -> n_agents:int -> unit -> t
(** Agents are 0..n_agents−1 with empty histories.

    [bucket_width] enables time-bucketed subtree bounds: each CLP node
    additionally keeps, per time bucket of that width, conservative
    bounds over every value that could be current during the bucket, so a
    query at simulated time t prunes with the bounds of t's bucket rather
    than the whole history — much sharper for queries early in simulated
    time, the case that matters when ALPs progress at different rates.
    Without it only whole-history bounds are kept. *)

val n_agents : t -> int

val write : t -> agent:int -> time:float -> value:float -> unit
(** Record an SSV update. Times per agent must be non-decreasing; raises
    [Invalid_argument] otherwise. *)

val value_at : t -> agent:int -> time:float -> float option
(** Latest write at or before [time] ([None] before the first write). *)

type query_stats = {
  matched : int;
  clp_nodes_visited : int;
  histories_scanned : int;  (** leaf histories actually binary-searched *)
}

val range_query :
  t -> time:float -> lo:float -> hi:float -> int list * query_stats
(** Agents whose value at [time] lies in [lo, hi] (ascending ids), routed
    through the CLP tree with subtree-bound pruning. *)

val range_query_brute : t -> time:float -> lo:float -> hi:float -> int list
(** Reference implementation scanning every agent — the correctness
    oracle. *)
