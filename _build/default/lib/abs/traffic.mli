(** Bonabeau's motivating traffic model (§1): cars on a ring road follow
    behavioural rules — accelerate toward a comfortable speed on open
    road, slow when someone appears ahead, brake at random, change lanes
    when the neighbouring lane is more attractive — and traffic jams
    emerge. This is the Nagel–Schreckenberg cellular automaton with the
    standard symmetric lane-change extension. *)

type params = {
  length : int;  (** ring road length in cells *)
  lanes : int;  (** ≥ 1 *)
  max_speed : int;  (** the driver-dependent "comfortable" speed cap *)
  p_brake : float;  (** random-deceleration probability *)
  p_change : float;  (** lane-change probability when advantageous *)
}

val default_params : params

type t

val create : params -> density:float -> Mde_prob.Rng.t -> t
(** Place ⌈density × lanes × length⌉ cars uniformly at random with
    random initial speeds. Requires density in (0, 1). *)

val step : t -> unit
(** One synchronous update: lane changes, then the NaSch speed rules,
    then movement. *)

val car_count : t -> int
val mean_speed : t -> float
val flow : t -> float
(** Cars passing a fixed point per time step (density × mean speed). *)

val jammed_fraction : t -> float
(** Fraction of cars currently stopped — the jam indicator. *)

val occupancy : t -> lane:int -> bool array
(** Cell occupancy of one lane (for space-time diagrams). *)

type sweep_point = {
  density : float;
  mean_flow : float;
  mean_speed_pt : float;
  jammed : float;
}

val density_sweep :
  ?seed:int ->
  params ->
  densities:float array ->
  warmup:int ->
  measure:int ->
  sweep_point array
(** The fundamental-diagram experiment: for each density, warm the system
    up, then average flow/speed/jam fraction over [measure] steps. *)

val space_time_diagram : t -> steps:int -> lane:int -> string
(** ASCII diagram: one row per step, [#] = occupied cell. Jams appear as
    backward-moving dark bands. Runs the model [steps] further steps. *)
