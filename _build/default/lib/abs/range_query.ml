(* Per-agent SSV history: parallel growable arrays of (time, value),
   append-only with non-decreasing times. *)
type history = {
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

type node = {
  lo_agent : int;
  hi_agent : int;  (* inclusive agent-id range *)
  mutable vmin : float;
  mutable vmax : float;  (* bounds over all values ever written in range *)
  (* Optional time-bucketed bounds: bucket_bounds.(b) covers every value
     that may be current during bucket b. A write (t, v) is folded into
     bucket(t) and, conservatively, every later bucket (the value may
     stay current indefinitely). Stored as growable parallel arrays. *)
  mutable bucket_min : float array;
  mutable bucket_max : float array;
  left : node option;
  right : node option;
}

type t = { histories : history array; root : node; bucket_width : float option }

let rec build lo hi =
  if lo = hi then
    { lo_agent = lo; hi_agent = hi; vmin = infinity; vmax = neg_infinity;
      bucket_min = [||]; bucket_max = [||]; left = None; right = None }
  else begin
    let mid = (lo + hi) / 2 in
    let left = build lo mid and right = build (mid + 1) hi in
    {
      lo_agent = lo;
      hi_agent = hi;
      vmin = infinity;
      vmax = neg_infinity;
      bucket_min = [||];
      bucket_max = [||];
      left = Some left;
      right = Some right;
    }
  end

let create ?bucket_width ~n_agents () =
  assert (n_agents > 0);
  Option.iter (fun w -> assert (w > 0.)) bucket_width;
  {
    histories =
      Array.init n_agents (fun _ ->
          { times = Array.make 4 0.; values = Array.make 4 0.; len = 0 });
    root = build 0 (n_agents - 1);
    bucket_width;
  }

let n_agents t = Array.length t.histories

let push history time value =
  if history.len > 0 && time < history.times.(history.len - 1) then
    invalid_arg "Range_query.write: time moved backwards for agent";
  if history.len = Array.length history.times then begin
    let grow a = Array.append a (Array.make (Array.length a) 0.) in
    history.times <- grow history.times;
    history.values <- grow history.values
  end;
  history.times.(history.len) <- time;
  history.values.(history.len) <- value;
  history.len <- history.len + 1

let ensure_buckets node upto =
  let len = Array.length node.bucket_min in
  if upto >= len then begin
    let grown = Stdlib.max (upto + 1) (Stdlib.max 4 (2 * len)) in
    let fresh_min = Array.make grown infinity and fresh_max = Array.make grown neg_infinity in
    Array.blit node.bucket_min 0 fresh_min 0 len;
    Array.blit node.bucket_max 0 fresh_max 0 len;
    (* New trailing buckets inherit the carry-over of everything already
       written (any existing value may still be current there). *)
    for b = len to grown - 1 do
      fresh_min.(b) <- node.vmin;
      fresh_max.(b) <- node.vmax
    done;
    node.bucket_min <- fresh_min;
    node.bucket_max <- fresh_max
  end

let rec update_bounds bucket node agent value =
  if agent >= node.lo_agent && agent <= node.hi_agent then begin
    if value < node.vmin then node.vmin <- value;
    if value > node.vmax then node.vmax <- value;
    (match bucket with
    | None -> ()
    | Some b ->
      ensure_buckets node b;
      (* The value is (possibly) current in its own bucket and every
         later one. *)
      for k = b to Array.length node.bucket_min - 1 do
        if value < node.bucket_min.(k) then node.bucket_min.(k) <- value;
        if value > node.bucket_max.(k) then node.bucket_max.(k) <- value
      done);
    Option.iter (fun n -> update_bounds bucket n agent value) node.left;
    Option.iter (fun n -> update_bounds bucket n agent value) node.right
  end

let bucket_of t time =
  Option.map (fun w -> Stdlib.max 0 (Float.to_int (floor (time /. w)))) t.bucket_width

let write t ~agent ~time ~value =
  assert (agent >= 0 && agent < n_agents t);
  push t.histories.(agent) time value;
  update_bounds (bucket_of t time) t.root agent value

let value_at_history history time =
  if history.len = 0 || time < history.times.(0) then None
  else begin
    (* Largest index with times.(i) <= time. *)
    let lo = ref 0 and hi = ref (history.len - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if history.times.(mid) <= time then lo := mid else hi := mid - 1
    done;
    Some history.values.(!lo)
  end

let value_at t ~agent ~time =
  assert (agent >= 0 && agent < n_agents t);
  value_at_history t.histories.(agent) time

type query_stats = {
  matched : int;
  clp_nodes_visited : int;
  histories_scanned : int;
}

let range_query t ~time ~lo ~hi =
  assert (lo <= hi);
  let visited = ref 0 and scanned = ref 0 in
  let out = ref [] in
  let query_bucket = bucket_of t time in
  let node_bounds node =
    match query_bucket with
    | Some b when Array.length node.bucket_min > 0 ->
      let k = Stdlib.min b (Array.length node.bucket_min - 1) in
      (node.bucket_min.(k), node.bucket_max.(k))
    | Some _ | None -> (node.vmin, node.vmax)
  in
  let rec go node =
    incr visited;
    (* Prune: no value that can be current at the query time intersects
       [lo, hi]. *)
    let nmin, nmax = node_bounds node in
    if nmax >= lo && nmin <= hi then begin
      match (node.left, node.right) with
      | None, None ->
        let agent = node.lo_agent in
        incr scanned;
        (match value_at_history t.histories.(agent) time with
        | Some v when v >= lo && v <= hi -> out := agent :: !out
        | Some _ | None -> ())
      | Some l, Some r ->
        go l;
        go r
      | Some only, None | None, Some only -> go only
    end
  in
  go t.root;
  let matched = List.rev !out in
  ( matched,
    {
      matched = List.length matched;
      clp_nodes_visited = !visited;
      histories_scanned = !scanned;
    } )

let range_query_brute t ~time ~lo ~hi =
  assert (lo <= hi);
  let out = ref [] in
  for agent = n_agents t - 1 downto 0 do
    match value_at t ~agent ~time with
    | Some v when v >= lo && v <= hi -> out := agent :: !out
    | Some _ | None -> ()
  done;
  !out
