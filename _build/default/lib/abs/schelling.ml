module Rng = Mde_prob.Rng

type cell = Empty | A | B

type t = {
  size : int;
  threshold : float;
  grid : cell array array;
  rng : Rng.t;
}

let create ?(seed = 11) ~size ~vacancy ~threshold () =
  assert (size >= 3);
  assert (vacancy > 0. && vacancy < 1.);
  assert (threshold >= 0. && threshold <= 1.);
  let rng = Rng.create ~seed () in
  let cells = size * size in
  let n_vacant = Stdlib.max 1 (Float.to_int (vacancy *. float_of_int cells)) in
  let n_agents = cells - n_vacant in
  let n_a = n_agents / 2 in
  let order = Rng.permutation rng cells in
  let grid = Array.make_matrix size size Empty in
  Array.iteri
    (fun rank idx ->
      let kind = if rank < n_a then A else if rank < n_agents then B else Empty in
      grid.(idx / size).(idx mod size) <- kind)
    order;
  { size; threshold; grid; rng }

let neighbours t i j =
  let out = ref [] in
  for di = -1 to 1 do
    for dj = -1 to 1 do
      if di <> 0 || dj <> 0 then begin
        let ni = (i + di + t.size) mod t.size in
        let nj = (j + dj + t.size) mod t.size in
        out := t.grid.(ni).(nj) :: !out
      end
    done
  done;
  !out

let like_fraction t i j =
  match t.grid.(i).(j) with
  | Empty -> None
  | me ->
    let occupied = List.filter (fun c -> c <> Empty) (neighbours t i j) in
    (match occupied with
    | [] -> Some 1. (* no neighbours: trivially content *)
    | _ ->
      let like = List.length (List.filter (fun c -> c = me) occupied) in
      Some (float_of_int like /. float_of_int (List.length occupied)))

let unhappy t i j =
  match like_fraction t i j with
  | Some f -> f < t.threshold
  | None -> false

let vacancies t =
  let out = ref [] in
  for i = 0 to t.size - 1 do
    for j = 0 to t.size - 1 do
      if t.grid.(i).(j) = Empty then out := (i, j) :: !out
    done
  done;
  Array.of_list !out

let step t =
  let movers = ref [] in
  for i = 0 to t.size - 1 do
    for j = 0 to t.size - 1 do
      if unhappy t i j then movers := (i, j) :: !movers
    done
  done;
  let movers = Array.of_list !movers in
  Rng.shuffle_in_place t.rng movers;
  let moved = ref 0 in
  Array.iter
    (fun (i, j) ->
      (* Re-check: earlier moves this step may have made the agent happy. *)
      if unhappy t i j then begin
        let vacant = vacancies t in
        if Array.length vacant > 0 then begin
          let vi, vj = vacant.(Rng.int t.rng (Array.length vacant)) in
          t.grid.(vi).(vj) <- t.grid.(i).(j);
          t.grid.(i).(j) <- Empty;
          incr moved
        end
      end)
    movers;
  !moved

let run_until_settled ?(max_steps = 500) t =
  let rec go n = if n >= max_steps then n else if step t = 0 then n + 1 else go (n + 1) in
  go 0

let segregation_index t =
  let total = ref 0. and count = ref 0 in
  for i = 0 to t.size - 1 do
    for j = 0 to t.size - 1 do
      match like_fraction t i j with
      | Some f ->
        total := !total +. f;
        incr count
      | None -> ()
    done
  done;
  if !count = 0 then 0. else !total /. float_of_int !count

let unhappy_count t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    for j = 0 to t.size - 1 do
      if unhappy t i j then incr n
    done
  done;
  !n

let to_string t =
  let buf = Buffer.create (t.size * (t.size + 1)) in
  for i = 0 to t.size - 1 do
    for j = 0 to t.size - 1 do
      Buffer.add_char buf
        (match t.grid.(i).(j) with Empty -> '.' | A -> '#' | B -> 'o')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
