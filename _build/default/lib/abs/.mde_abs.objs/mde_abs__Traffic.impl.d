lib/abs/traffic.ml: Array Buffer Float List Mde_prob Stdlib
