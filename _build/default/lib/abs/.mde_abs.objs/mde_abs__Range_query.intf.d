lib/abs/range_query.mli:
