lib/abs/schelling.ml: Array Buffer Float List Mde_prob Stdlib
