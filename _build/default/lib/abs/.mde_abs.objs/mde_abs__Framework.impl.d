lib/abs/framework.ml: Array Mde_prob
