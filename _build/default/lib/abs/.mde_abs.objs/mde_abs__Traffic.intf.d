lib/abs/traffic.mli: Mde_prob
