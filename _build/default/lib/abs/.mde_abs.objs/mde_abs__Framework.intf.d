lib/abs/framework.mli: Mde_prob
