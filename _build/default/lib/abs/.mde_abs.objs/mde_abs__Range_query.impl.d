lib/abs/range_query.ml: Array Float List Option Stdlib
