lib/abs/schelling.mli:
