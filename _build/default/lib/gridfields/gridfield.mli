(** Gridfields: data bound to the cells of one dimension of a grid, with
    the algebra's operators — bind, restrict, merge, and the central
    regrid (map source cells onto target cells via a many-to-one
    assignment, then aggregate). Includes the restrict/regrid commutation
    rewrite of [31] with an explicit cells-touched cost so the
    optimization is observable. *)

type t

val bind : Grid.t -> dim:int -> (int -> float) -> t
(** Bind a value to every cell of dimension [dim]. *)

val grid : t -> Grid.t
val dim : t -> int
val value : t -> int -> float
(** Raises [Not_found] for a cell not carried by the field. *)

val value_opt : t -> int -> float option
val cells : t -> int array
(** Carried cell ids, ascending. *)

val size : t -> int

val restrict : (float -> bool) -> t -> t
(** Value restriction: cut the grid down to the dimension-[dim] cells
    whose bound value satisfies the predicate (plus all cells of other
    dimensions), inducing the sub-grid. *)

val restrict_cells : (int -> bool) -> t -> t
(** Geometric restriction by cell id (e.g. a spatial region mask). *)

val merge : t -> t -> (float -> float -> float) -> t
(** Pointwise combination of two fields on the same grid and dimension
    over the cells they share. *)

type aggregation = Average | Total | Maximum | Minimum

val aggregate_values : aggregation -> float list -> float
(** Raises [Invalid_argument] on an empty list. *)

type regrid_stats = { source_cells_touched : int; target_cells_bound : int }

val regrid :
  assignment:(int -> int option) ->
  aggregate:aggregation ->
  target:Grid.t ->
  target_dim:int ->
  t ->
  t * regrid_stats
(** [regrid ~assignment ~aggregate ~target ~target_dim field]: map each
    source cell to at most one target cell of dimension [target_dim] and
    aggregate per target cell. Target cells receiving no source cells are
    left unbound (the result carries only bound cells). *)

val restrict_then_regrid :
  region:(int -> bool) ->
  assignment:(int -> int option) ->
  aggregate:aggregation ->
  target:Grid.t ->
  target_dim:int ->
  t ->
  t * regrid_stats
(** The optimized form of "regrid, then keep only target cells in
    [region]": push the restriction through the regrid by pre-filtering
    source cells whose assignment falls outside the region. Produces the
    same field as the naive order (property tested) while touching fewer
    source cells — the commutation opportunity of [31]. *)

val naive_regrid_then_restrict :
  region:(int -> bool) ->
  assignment:(int -> int option) ->
  aggregate:aggregation ->
  target:Grid.t ->
  target_dim:int ->
  t ->
  t * regrid_stats
(** The unoptimized order, for comparison. *)
