lib/gridfields/grid.mli:
