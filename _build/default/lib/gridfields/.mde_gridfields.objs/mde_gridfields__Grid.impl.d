lib/gridfields/grid.ml: Array Hashtbl Int List Printf
