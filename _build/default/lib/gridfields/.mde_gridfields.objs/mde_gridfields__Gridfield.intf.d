lib/gridfields/gridfield.mli: Grid
