lib/gridfields/gridfield.ml: Array Float Grid Hashtbl Int List
