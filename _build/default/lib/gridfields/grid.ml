type cell = { id : int; dim : int }

type t = {
  by_id : (int, cell) Hashtbl.t;
  by_dim : (int, cell list ref) Hashtbl.t;
  up_of : (int, int list ref) Hashtbl.t;  (* x -> ys with x ≤ y *)
  down_of : (int, int list ref) Hashtbl.t;  (* y -> xs with x ≤ y *)
}

let create ~cells ~incidence =
  let by_id = Hashtbl.create 64 in
  let by_dim = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem by_id c.id then
        invalid_arg (Printf.sprintf "Grid.create: duplicate cell id %d" c.id);
      Hashtbl.add by_id c.id c;
      match Hashtbl.find_opt by_dim c.dim with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add by_dim c.dim (ref [ c ]))
    cells;
  let up_of = Hashtbl.create 64 and down_of = Hashtbl.create 64 in
  let push table key v =
    match Hashtbl.find_opt table key with
    | Some l -> l := v :: !l
    | None -> Hashtbl.add table key (ref [ v ])
  in
  List.iter
    (fun (x, y) ->
      let cx =
        match Hashtbl.find_opt by_id x with
        | Some c -> c
        | None -> invalid_arg (Printf.sprintf "Grid.create: unknown cell %d" x)
      and cy =
        match Hashtbl.find_opt by_id y with
        | Some c -> c
        | None -> invalid_arg (Printf.sprintf "Grid.create: unknown cell %d" y)
      in
      if cx.dim >= cy.dim then
        invalid_arg
          (Printf.sprintf "Grid.create: incidence %d ≤ %d violates dim(%d) < dim(%d)"
             x y x y);
      push up_of x y;
      push down_of y x)
    incidence;
  { by_id; by_dim; up_of; down_of }

let dims t =
  List.sort Int.compare (Hashtbl.fold (fun d _ acc -> d :: acc) t.by_dim [])

let cells_of_dim t dim =
  match Hashtbl.find_opt t.by_dim dim with
  | Some l ->
    let arr = Array.of_list !l in
    Array.sort (fun a b -> Int.compare a.id b.id) arr;
    arr
  | None -> [||]

let cell_count t = Hashtbl.length t.by_id

let dim_of t id =
  match Hashtbl.find_opt t.by_id id with
  | Some c -> c.dim
  | None -> raise Not_found

let up t id =
  match Hashtbl.find_opt t.up_of id with
  | Some l -> List.sort Int.compare !l
  | None -> []

let down t id =
  match Hashtbl.find_opt t.down_of id with
  | Some l -> List.sort Int.compare !l
  | None -> []

let leq t x y =
  x = y || (Hashtbl.mem t.by_id x && List.mem y (up t x))

let sub_grid t ~keep =
  let cells =
    Hashtbl.fold (fun _ c acc -> if keep c then c :: acc else acc) t.by_id []
  in
  let kept = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.add kept c.id ()) cells;
  let incidence =
    Hashtbl.fold
      (fun x ys acc ->
        if Hashtbl.mem kept x then
          List.fold_left
            (fun acc y -> if Hashtbl.mem kept y then (x, y) :: acc else acc)
            acc !ys
        else acc)
      t.up_of []
  in
  create ~cells ~incidence

let regular_2d ~nx ~ny =
  assert (nx >= 1 && ny >= 1);
  (* Vertices: (nx+1)(ny+1); horizontal edges: nx(ny+1); vertical edges:
     (nx+1)ny; faces: nx·ny. Ids are assigned in that order. *)
  let vid i j = (j * (nx + 1)) + i in
  let n_v = (nx + 1) * (ny + 1) in
  let hid i j = n_v + (j * nx) + i in
  let n_h = nx * (ny + 1) in
  let vidg i j = n_v + n_h + (j * (nx + 1)) + i in
  let n_ve = (nx + 1) * ny in
  let fid i j = n_v + n_h + n_ve + (j * nx) + i in
  let cells = ref [] in
  for j = 0 to ny do
    for i = 0 to nx do
      cells := { id = vid i j; dim = 0 } :: !cells
    done
  done;
  for j = 0 to ny do
    for i = 0 to nx - 1 do
      cells := { id = hid i j; dim = 1 } :: !cells
    done
  done;
  for j = 0 to ny - 1 do
    for i = 0 to nx do
      cells := { id = vidg i j; dim = 1 } :: !cells
    done
  done;
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      cells := { id = fid i j; dim = 2 } :: !cells
    done
  done;
  let incidence = ref [] in
  (* Vertex ≤ incident edges. *)
  for j = 0 to ny do
    for i = 0 to nx - 1 do
      incidence := (vid i j, hid i j) :: (vid (i + 1) j, hid i j) :: !incidence
    done
  done;
  for j = 0 to ny - 1 do
    for i = 0 to nx do
      incidence := (vid i j, vidg i j) :: (vid i (j + 1), vidg i j) :: !incidence
    done
  done;
  (* Edge ≤ bounding face, vertex ≤ face. *)
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      let f = fid i j in
      incidence :=
        (hid i j, f) :: (hid i (j + 1), f) :: (vidg i j, f) :: (vidg (i + 1) j, f)
        :: (vid i j, f) :: (vid (i + 1) j, f) :: (vid i (j + 1), f)
        :: (vid (i + 1) (j + 1), f) :: !incidence
    done
  done;
  create ~cells:!cells ~incidence:!incidence
