(** Grids in the Howe–Maier sense (§2.2, [31]): a collection of
    heterogeneous abstract cells of various dimensions with an incidence
    relation ≤, where x ≤ y iff x = y, or dim(x) < dim(y) and x touches
    y (e.g. a line segment that is the side of a square). *)

type cell = { id : int; dim : int }

type t

val create : cells:cell list -> incidence:(int * int) list -> t
(** [incidence] lists (x, y) pairs with x ≤ y, x ≠ y. Raises
    [Invalid_argument] on duplicate ids, unknown ids, or pairs violating
    dim(x) < dim(y). The reflexive part of ≤ is implicit. *)

val dims : t -> int list
(** Dimensions present, ascending. *)

val cells_of_dim : t -> int -> cell array
(** Cells of one dimension, in id order. *)

val cell_count : t -> int
val dim_of : t -> int -> int
(** Dimension of a cell id. Raises [Not_found]. *)

val leq : t -> int -> int -> bool
(** The incidence relation x ≤ y. *)

val up : t -> int -> int list
(** Cells y > x incident to x (ascending id). *)

val down : t -> int -> int list
(** Cells x < y incident to y (ascending id). *)

val sub_grid : t -> keep:(cell -> bool) -> t
(** Induced sub-grid: keep the selected cells and every incidence pair
    whose endpoints both survive. *)

val regular_2d : nx:int -> ny:int -> t
(** Helper: a structured nx × ny quadrilateral mesh with 0-cells
    (vertices), 1-cells (edges) and 2-cells (faces) and full incidence —
    the CORIE-style test grid. Vertex ids come first, then edges, then
    faces; use {!cells_of_dim} to enumerate each stratum. *)
