type t = { grid : Grid.t; dim : int; data : (int, float) Hashtbl.t }

let bind grid ~dim f =
  let data = Hashtbl.create 64 in
  Array.iter
    (fun (c : Grid.cell) -> Hashtbl.add data c.Grid.id (f c.Grid.id))
    (Grid.cells_of_dim grid dim);
  { grid; dim; data }

let grid t = t.grid
let dim t = t.dim

let value t id =
  match Hashtbl.find_opt t.data id with
  | Some v -> v
  | None -> raise Not_found

let value_opt t id = Hashtbl.find_opt t.data id

let cells t =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.data [] in
  let arr = Array.of_list ids in
  Array.sort Int.compare arr;
  arr

let size t = Hashtbl.length t.data

let restrict_general keep_cell t =
  let keep (c : Grid.cell) =
    if c.Grid.dim <> t.dim then true else keep_cell c.Grid.id
  in
  let sub = Grid.sub_grid t.grid ~keep in
  let data = Hashtbl.create 64 in
  Hashtbl.iter (fun id v -> if keep_cell id then Hashtbl.add data id v) t.data;
  { grid = sub; dim = t.dim; data }

let restrict pred t =
  restrict_general
    (fun id -> match Hashtbl.find_opt t.data id with Some v -> pred v | None -> false)
    t

let restrict_cells pred t = restrict_general pred t

let merge a b f =
  if a.dim <> b.dim then invalid_arg "Gridfield.merge: dimension mismatch";
  let data = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id va ->
      match Hashtbl.find_opt b.data id with
      | Some vb -> Hashtbl.add data id (f va vb)
      | None -> ())
    a.data;
  { grid = a.grid; dim = a.dim; data }

type aggregation = Average | Total | Maximum | Minimum

let aggregate_values kind = function
  | [] -> invalid_arg "Gridfield.aggregate_values: empty"
  | v :: vs -> (
    match kind with
    | Average ->
      List.fold_left ( +. ) v vs /. float_of_int (1 + List.length vs)
    | Total -> List.fold_left ( +. ) v vs
    | Maximum -> List.fold_left Float.max v vs
    | Minimum -> List.fold_left Float.min v vs)

type regrid_stats = { source_cells_touched : int; target_cells_bound : int }

let regrid ~assignment ~aggregate ~target ~target_dim t =
  let buckets : (int, float list ref) Hashtbl.t = Hashtbl.create 64 in
  let touched = ref 0 in
  Hashtbl.iter
    (fun id v ->
      incr touched;
      match assignment id with
      | Some tgt -> (
        match Hashtbl.find_opt buckets tgt with
        | Some l -> l := v :: !l
        | None -> Hashtbl.add buckets tgt (ref [ v ]))
      | None -> ())
    t.data;
  let data = Hashtbl.create 64 in
  Hashtbl.iter
    (fun tgt values -> Hashtbl.add data tgt (aggregate_values aggregate !values))
    buckets;
  ( { grid = target; dim = target_dim; data },
    { source_cells_touched = !touched; target_cells_bound = Hashtbl.length data } )

let restrict_then_regrid ~region ~assignment ~aggregate ~target ~target_dim t =
  (* Pushed-down form: drop source cells destined outside the region
     before aggregating. *)
  let filtered_assignment id =
    match assignment id with
    | Some tgt when region tgt -> Some tgt
    | Some _ | None -> None
  in
  (* Pre-filter so untouched cells are genuinely not visited. *)
  let pre =
    restrict_general
      (fun id -> match filtered_assignment id with Some _ -> true | None -> false)
      t
  in
  regrid ~assignment:filtered_assignment ~aggregate ~target ~target_dim pre

let naive_regrid_then_restrict ~region ~assignment ~aggregate ~target ~target_dim t =
  let field, stats = regrid ~assignment ~aggregate ~target ~target_dim t in
  (restrict_cells region field, stats)
