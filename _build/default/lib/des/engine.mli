(** The discrete-event simulation engine: a clock and a pending-event
    set. Event handlers receive the engine and may schedule further
    events; the run loop fires events in timestamp (then FIFO) order
    until a horizon or event budget is reached. *)

type t

val create : unit -> t
val now : t -> float
val events_processed : t -> int

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Schedule a handler [delay ≥ 0] time units from the current clock. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Absolute-time variant; the time must not precede the clock. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Fire events until the set is exhausted, the next event would exceed
    [until], or [max_events] have been processed. The clock advances to
    each event's timestamp; with [until], the clock finishes at
    min(until, last event time) — it never exceeds [until]. *)

val pending : t -> int
