module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist

type params = { arrival_rate : float; service_rate : float; servers : int }

type results = {
  customers_served : int;
  mean_wait_in_queue : float;
  mean_time_in_system : float;
  mean_queue_length : float;
  utilization : float;
  simulated_time : float;
}

type state = {
  mutable busy : int;
  waiting : float Queue.t;  (* arrival times of queued customers *)
  mutable served : int;
  mutable measured : int;
  mutable wait_sum : float;
  mutable system_sum : float;
  (* Time-integrals for L_q and utilization. *)
  mutable last_change : float;
  mutable queue_area : float;
  mutable busy_area : float;
}

let simulate ?warmup_customers params ~customers rng =
  assert (params.arrival_rate > 0. && params.service_rate > 0. && params.servers >= 1);
  assert (customers > 0);
  let warmup =
    match warmup_customers with Some w -> w | None -> customers / 10
  in
  let engine = Engine.create () in
  let st =
    {
      busy = 0;
      waiting = Queue.create ();
      served = 0;
      measured = 0;
      wait_sum = 0.;
      system_sum = 0.;
      last_change = 0.;
      queue_area = 0.;
      busy_area = 0.;
    }
  in
  let advance_areas engine =
    let t = Engine.now engine in
    let dt = t -. st.last_change in
    st.queue_area <- st.queue_area +. (dt *. float_of_int (Queue.length st.waiting));
    st.busy_area <- st.busy_area +. (dt *. float_of_int st.busy);
    st.last_change <- t
  in
  let exp_sample rate = Dist.sample (Dist.Exponential { rate }) rng in
  let record_completion arrival start engine =
    let depart = Engine.now engine in
    st.served <- st.served + 1;
    if st.served > warmup then begin
      st.measured <- st.measured + 1;
      st.wait_sum <- st.wait_sum +. (start -. arrival);
      st.system_sum <- st.system_sum +. (depart -. arrival)
    end
  in
  let rec begin_service arrival engine =
    let start = Engine.now engine in
    Engine.schedule engine ~delay:(exp_sample params.service_rate) (fun engine ->
        advance_areas engine;
        record_completion arrival start engine;
        (* Server frees: pull the next waiting customer, if any. *)
        match Queue.take_opt st.waiting with
        | Some queued_arrival -> begin_service queued_arrival engine
        | None -> st.busy <- st.busy - 1)
  in
  let handle_arrival engine =
    advance_areas engine;
    if st.busy < params.servers then begin
      st.busy <- st.busy + 1;
      begin_service (Engine.now engine) engine
    end
    else Queue.add (Engine.now engine) st.waiting
  in
  let rec arrival_process engine =
    if st.served < customers + warmup then begin
      handle_arrival engine;
      Engine.schedule engine ~delay:(exp_sample params.arrival_rate) arrival_process
    end
  in
  Engine.schedule engine ~delay:(exp_sample params.arrival_rate) arrival_process;
  (* Run until enough customers completed (the arrival process stops
     feeding once the target is reached, draining the system). *)
  Engine.run engine;
  let total_time = Float.max 1e-12 (Engine.now engine) in
  let measured = max 1 st.measured in
  {
    customers_served = st.served;
    mean_wait_in_queue = st.wait_sum /. float_of_int measured;
    mean_time_in_system = st.system_sum /. float_of_int measured;
    mean_queue_length = st.queue_area /. total_time;
    utilization = st.busy_area /. total_time /. float_of_int params.servers;
    simulated_time = total_time;
  }

let factorial n =
  let acc = ref 1. in
  for k = 2 to n do
    acc := !acc *. float_of_int k
  done;
  !acc

let erlang_c params =
  let lambda = params.arrival_rate and mu = params.service_rate in
  let c = params.servers in
  let a = lambda /. mu in
  let rho = a /. float_of_int c in
  assert (rho < 1.);
  let sum = ref 0. in
  for k = 0 to c - 1 do
    sum := !sum +. ((a ** float_of_int k) /. factorial k)
  done;
  let tail = (a ** float_of_int c) /. (factorial c *. (1. -. rho)) in
  tail /. (!sum +. tail)

let theoretical_wq params =
  let lambda = params.arrival_rate and mu = params.service_rate in
  let c = float_of_int params.servers in
  erlang_c params /. ((c *. mu) -. lambda)

let theoretical_w params = theoretical_wq params +. (1. /. params.service_rate)
let theoretical_lq params = params.arrival_rate *. theoretical_wq params
let theoretical_utilization params =
  params.arrival_rate /. (float_of_int params.servers *. params.service_rate)
