(** An M/M/c queueing station on the event engine — the standard
    validation model for a discrete-event core (simulated waits must match
    the Erlang-C closed forms) and the reusable building block behind the
    paper's demand→queue composite example (§2.3, Figure 2). *)

type params = {
  arrival_rate : float;  (** λ > 0 *)
  service_rate : float;  (** μ > 0, per server *)
  servers : int;  (** c ≥ 1 *)
}

type results = {
  customers_served : int;
  mean_wait_in_queue : float;  (** W_q *)
  mean_time_in_system : float;  (** W = W_q + 1/μ *)
  mean_queue_length : float;  (** L_q, time-averaged *)
  utilization : float;  (** time-averaged busy servers / c *)
  simulated_time : float;
}

val simulate :
  ?warmup_customers:int ->
  params ->
  customers:int ->
  Mde_prob.Rng.t ->
  results
(** Run until [customers] have completed service after discarding the
    first [warmup_customers] (default 10 % of [customers]) from the wait
    statistics. Requires a stable system (λ < cμ) for the averages to
    settle; the simulation itself runs regardless. *)

(** {2 Closed forms for validation} *)

val erlang_c : params -> float
(** P(wait > 0), the Erlang-C delay probability. Requires λ < cμ. *)

val theoretical_wq : params -> float
(** W_q = ErlangC / (cμ − λ). *)

val theoretical_w : params -> float
val theoretical_lq : params -> float
(** L_q = λ·W_q (Little's law). *)

val theoretical_utilization : params -> float
(** ρ = λ / (cμ). *)
