lib/des/engine.mli:
