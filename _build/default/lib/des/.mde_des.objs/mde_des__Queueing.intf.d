lib/des/queueing.mli: Mde_prob
