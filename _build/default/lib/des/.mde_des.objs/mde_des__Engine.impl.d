lib/des/engine.ml: Event_queue Option Printf
