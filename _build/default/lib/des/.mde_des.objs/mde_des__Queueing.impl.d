lib/des/queueing.ml: Engine Float Mde_prob Queue
