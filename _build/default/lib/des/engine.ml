type t = {
  queue : (t -> unit) Event_queue.t;
  mutable clock : float;
  mutable processed : int;
}

let create () = { queue = Event_queue.create (); clock = 0.; processed = 0 }
let now t = t.clock
let events_processed t = t.processed

let schedule_at t ~time handler =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g precedes the clock %g" time t.clock);
  Event_queue.add t.queue ~time handler

let schedule t ~delay handler =
  assert (delay >= 0.);
  schedule_at t ~time:(t.clock +. delay) handler

let run ?until ?max_events t =
  let horizon = Option.value until ~default:infinity in
  let budget = Option.value max_events ~default:max_int in
  let continue_ = ref true in
  while !continue_ && t.processed < budget do
    match Event_queue.peek_time t.queue with
    | None -> continue_ := false
    | Some time when time > horizon ->
      t.clock <- horizon;
      continue_ := false
    | Some _ -> (
      match Event_queue.pop t.queue with
      | Some (time, handler) ->
        t.clock <- time;
        t.processed <- t.processed + 1;
        handler t
      | None -> continue_ := false)
  done;
  if Option.is_some until && t.clock < horizon && Event_queue.is_empty t.queue then
    t.clock <- horizon

let pending t = Event_queue.size t.queue
