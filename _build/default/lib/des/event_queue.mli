(** A pending-event set: the core data structure of discrete-event
    simulation (the paper's DEVS/PDES substrate, §2.2/§2.4). Binary
    min-heap on (time, insertion sequence), so simultaneous events fire
    in FIFO order — the determinism the engine's tests rely on. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** O(log n). *)

val peek_time : 'a t -> float option

val pop : 'a t -> (float * 'a) option
(** Earliest event (FIFO among ties); O(log n). *)

val clear : 'a t -> unit
