open Mde_relational

type cell = Det of Value.t | Unc of Value.t array

type t = {
  schema : Schema.t;
  n_reps : int;
  rows : cell array array;
  presence : bool array array;  (* rows × reps *)
}

let schema t = t.schema
let n_reps t = t.n_reps
let row_count t = Array.length t.rows

let cell_value cell r =
  match cell with Det v -> v | Unc vs -> vs.(r)

let realize_row t i r = Array.map (fun c -> cell_value c r) t.rows.(i)
let present t i r = t.presence.(i).(r)

let compress_column values =
  (* values : one per repetition; collapse to Det when constant. *)
  let first = values.(0) in
  if Array.for_all (fun v -> Value.equal v first) values then Det first
  else Unc (Array.copy values)

let of_stochastic_table st rng ~n_reps =
  assert (n_reps > 0);
  let vg = Stochastic_table.vg st in
  if not vg.Vg.row_stable then
    invalid_arg
      (Printf.sprintf
         "Bundle.of_stochastic_table: VG function %S is not row-stable"
         vg.Vg.name);
  let out_schema = Stochastic_table.schema st in
  let arity = Schema.arity out_schema in
  let rows = ref [] in
  Table.iter
    (fun driver_row ->
      (* One physical tuple per driver row; its uncertain attributes are
         instantiated n_reps times and bundled column-wise. *)
      let reps =
        Array.init n_reps (fun _ ->
            match Stochastic_table.generate_for_row st rng driver_row with
            | [ row ] -> row
            | rows ->
              invalid_arg
                (Printf.sprintf
                   "Bundle.of_stochastic_table: VG %S emitted %d rows for one \
                    driver row (expected 1)"
                   vg.Vg.name (List.length rows)))
      in
      let cells =
        Array.init arity (fun j -> compress_column (Array.map (fun rep -> rep.(j)) reps))
      in
      rows := cells :: !rows)
    (Stochastic_table.driver st);
  let rows = Array.of_list (List.rev !rows) in
  let presence = Array.map (fun _ -> Array.make n_reps true) rows in
  { schema = out_schema; n_reps; rows; presence }

let of_table table ~n_reps =
  assert (n_reps > 0);
  let rows = Array.map (Array.map (fun v -> Det v)) (Table.rows table) in
  let presence = Array.map (fun _ -> Array.make n_reps true) rows in
  { schema = Table.schema table; n_reps; rows; presence }

let select pred t =
  let used = Expr.columns_used pred in
  let idxs = List.map (Schema.column_index t.schema) used in
  let presence = Array.map Array.copy t.presence in
  Array.iteri
    (fun i row ->
      let det_only =
        List.for_all (fun j -> match row.(j) with Det _ -> true | Unc _ -> false) idxs
      in
      if det_only then begin
        (* One evaluation covers every repetition. *)
        let realized = Array.map (fun c -> cell_value c 0) row in
        if not (Expr.eval_bool t.schema realized pred) then
          Array.fill presence.(i) 0 t.n_reps false
      end
      else
        for r = 0 to t.n_reps - 1 do
          if presence.(i).(r) then begin
            let realized = realize_row t i r in
            if not (Expr.eval_bool t.schema realized pred) then
              presence.(i).(r) <- false
          end
        done)
    t.rows;
  { t with presence }

let project names t =
  let idxs = List.map (Schema.column_index t.schema) names in
  let rows =
    Array.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) idxs)) t.rows
  in
  { t with schema = Schema.project t.schema names; rows }

let extend defs t =
  let added = Schema.of_list (List.map (fun (n, ty, _) -> (n, ty)) defs) in
  let out_schema = Schema.concat t.schema added in
  let rows =
    Array.mapi
      (fun i row ->
        let new_cells =
          List.map
            (fun (_, _, e) ->
              let used = Expr.columns_used e in
              let idxs = List.map (Schema.column_index t.schema) used in
              let det_only =
                List.for_all
                  (fun j -> match row.(j) with Det _ -> true | Unc _ -> false)
                  idxs
              in
              if det_only then
                Det (Expr.eval t.schema (Array.map (fun c -> cell_value c 0) row) e)
              else
                compress_column
                  (Array.init t.n_reps (fun r -> Expr.eval t.schema (realize_row t i r) e)))
            defs
        in
        Array.append row (Array.of_list new_cells))
      t.rows
  in
  { t with schema = out_schema; rows }

let det_key_exn t idxs i =
  List.map
    (fun j ->
      match t.rows.(i).(j) with
      | Det v -> v
      | Unc _ -> invalid_arg "Bundle: key column is uncertain")
    idxs

let join ~on left right =
  let ls = left.schema and rs = right.schema in
  assert (left.n_reps = right.n_reps);
  let out_schema = Schema.concat ls rs in
  let l_idx = List.map (fun (l, _) -> Schema.column_index ls l) on in
  let r_idx = List.map (fun (_, r) -> Schema.column_index rs r) on in
  let build = Hashtbl.create (max 16 (Array.length right.rows)) in
  Array.iteri
    (fun i _ ->
      let key = det_key_exn right r_idx i in
      if not (List.exists Value.is_null key) then Hashtbl.add build key i)
    right.rows;
  let out_rows = ref [] and out_presence = ref [] in
  Array.iteri
    (fun i _ ->
      let key = det_key_exn left l_idx i in
      if not (List.exists Value.is_null key) then
        List.iter
          (fun j ->
            out_rows := Array.append left.rows.(i) right.rows.(j) :: !out_rows;
            out_presence :=
              Array.init left.n_reps (fun r ->
                  left.presence.(i).(r) && right.presence.(j).(r))
              :: !out_presence)
          (List.rev (Hashtbl.find_all build key)))
    left.rows;
  {
    schema = out_schema;
    n_reps = left.n_reps;
    rows = Array.of_list (List.rev !out_rows);
    presence = Array.of_list (List.rev !out_presence);
  }

type agg = Count | Sum of Expr.t | Avg of Expr.t | Min of Expr.t | Max of Expr.t

type group_state = {
  counts : int array;  (* per rep *)
  sums : float array array;  (* per agg, per rep *)
  mins : float array array;
  maxs : float array array;
  agg_counts : int array array;  (* per agg: rows contributing per rep *)
}

let aggregate ?(keys = []) aggs t =
  let key_idx = List.map (Schema.column_index t.schema) keys in
  let groups : (Value.t list, group_state) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let n_aggs = List.length aggs in
  let fresh () =
    {
      counts = Array.make t.n_reps 0;
      sums = Array.init n_aggs (fun _ -> Array.make t.n_reps 0.);
      mins = Array.init n_aggs (fun _ -> Array.make t.n_reps infinity);
      maxs = Array.init n_aggs (fun _ -> Array.make t.n_reps neg_infinity);
      agg_counts = Array.init n_aggs (fun _ -> Array.make t.n_reps 0);
    }
  in
  Array.iteri
    (fun i _ ->
      let key = det_key_exn t key_idx i in
      let state =
        match Hashtbl.find_opt groups key with
        | Some s -> s
        | None ->
          let s = fresh () in
          Hashtbl.add groups key s;
          order := key :: !order;
          s
      in
      for r = 0 to t.n_reps - 1 do
        if t.presence.(i).(r) then begin
          state.counts.(r) <- state.counts.(r) + 1;
          List.iteri
            (fun a (_, agg) ->
              match agg with
              | Count -> ()
              | Sum e | Avg e | Min e | Max e ->
                let v = Expr.eval t.schema (realize_row t i r) e in
                if not (Value.is_null v) then begin
                  let x = Value.to_float v in
                  state.sums.(a).(r) <- state.sums.(a).(r) +. x;
                  if x < state.mins.(a).(r) then state.mins.(a).(r) <- x;
                  if x > state.maxs.(a).(r) then state.maxs.(a).(r) <- x;
                  state.agg_counts.(a).(r) <- state.agg_counts.(a).(r) + 1
                end)
            aggs
        end
      done)
    t.rows;
  let finish key =
    let state = Hashtbl.find groups key in
    let per_agg =
      Array.of_list
        (List.mapi
           (fun a (_, agg) ->
             Array.init t.n_reps (fun r ->
                 match agg with
                 | Count -> float_of_int state.counts.(r)
                 | Sum _ -> state.sums.(a).(r)
                 | Avg _ ->
                   if state.agg_counts.(a).(r) = 0 then nan
                   else state.sums.(a).(r) /. float_of_int state.agg_counts.(a).(r)
                 | Min _ ->
                   if state.agg_counts.(a).(r) = 0 then nan else state.mins.(a).(r)
                 | Max _ ->
                   if state.agg_counts.(a).(r) = 0 then nan else state.maxs.(a).(r)))
           aggs)
    in
    (Array.of_list key, per_agg)
  in
  let finish_empty_global () =
    (* No tuples at all and a global group: zero counts/sums, nan moments. *)
    let per_agg =
      Array.of_list
        (List.map
           (fun (_, agg) ->
             Array.init t.n_reps (fun _ ->
                 match agg with Count | Sum _ -> 0. | Avg _ | Min _ | Max _ -> nan))
           aggs)
    in
    ([||], per_agg)
  in
  match (!order, keys) with
  | [], [] -> [ finish_empty_global () ]
  | found, _ -> List.map finish (List.rev found)

let to_instances t =
  Array.init t.n_reps (fun r ->
      let rows = ref [] in
      Array.iteri
        (fun i _ -> if t.presence.(i).(r) then rows := realize_row t i r :: !rows)
        t.rows;
      Table.create t.schema (List.rev !rows))
