(** Variable Generation (VG) functions — MCDB's pluggable stochastic
    models (§2.1). A VG function consumes parameter tables (produced by
    SQL queries over the deterministic relations) and emits a
    pseudorandom set of rows.

    In MCDB these are external C++ programs; here they are ordinary OCaml
    closures, and the library below covers the paper's examples: normal
    sampling, backward random walks for missing prices, stock-price walks
    for option valuation, and Bayesian per-customer demand. *)

open Mde_relational

type t = {
  name : string;
  output : Schema.t;  (** schema of the rows a single call generates *)
  row_stable : bool;
      (** [true] when every call generates exactly one output row, which
          enables tuple-bundle execution *)
  generate : Mde_prob.Rng.t -> Table.t list -> Table.row list;
      (** [generate rng params] draws one realization *)
}

val create :
  name:string ->
  output:Schema.t ->
  ?row_stable:bool ->
  (Mde_prob.Rng.t -> Table.t list -> Table.row list) ->
  t

val normal : t
(** Output [(value : float)]. Parameter table 1: single row [(mean, std)].
    The paper's [Normal] VG function from the SBP_DATA example. *)

val uniform : t
(** Output [(value : float)]; parameter row [(lo, hi)]. *)

val poisson : t
(** Output [(value : int)]; parameter row [(rate)]. *)

val discrete_choice : t
(** Output [(value : string)]. Parameter table 1: rows [(label, weight)].
    Samples a label proportionally to weight. *)

val backward_walk : steps:int -> t
(** Output [(step : int, price : float)], steps+1 rows. Parameter row
    [(current_price, volatility)]. Simulates a backward multiplicative
    random walk to impute missing prior prices (paper's example). Not
    row-stable. *)

val option_value : horizon:int -> strike:float -> t
(** Output [(value : float)]: payoff max(S_T − strike, 0) of a call after
    a [horizon]-step geometric walk. Parameter row
    [(current_price, drift, volatility)]. *)

val resample_row : output:Mde_relational.Schema.t -> t
(** Output: one row drawn uniformly at random from parameter table 1 —
    the bootstrap VG function, for "uncertain" data whose distribution is
    the empirical distribution of observed rows. The parameter table's
    schema must match [output]. *)

val bayesian_demand : t
(** Output [(demand : float)]. Parameter table 1: single row
    [(alpha, beta, price)] — a global demand model d ~ Gamma(alpha,
    beta·f(price)); parameter table 2: the customer's purchase history,
    rows [(quantity)]. The posterior given Gamma-Poisson conjugacy is
    sampled, matching the paper's "global model + Bayes' theorem per
    customer" construction. *)
