lib/mcdb/vg.ml: Array Float Mde_prob Mde_relational Schema Table Value
