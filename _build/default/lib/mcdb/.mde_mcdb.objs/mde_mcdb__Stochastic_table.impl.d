lib/mcdb/stochastic_table.ml: Array List Mde_relational Schema Table Vg
