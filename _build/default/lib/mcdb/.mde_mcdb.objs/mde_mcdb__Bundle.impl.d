lib/mcdb/bundle.ml: Array Expr Hashtbl List Mde_relational Printf Schema Stochastic_table Table Value Vg
