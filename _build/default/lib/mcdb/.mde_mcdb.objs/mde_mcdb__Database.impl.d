lib/mcdb/database.ml: Array Catalog Estimator Hashtbl List Mde_prob Mde_relational Printf Stochastic_table String Table
