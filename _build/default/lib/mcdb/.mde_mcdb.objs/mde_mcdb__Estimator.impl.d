lib/mcdb/estimator.ml: Array Float Format List Mde_prob Printf
