lib/mcdb/vg.mli: Mde_prob Mde_relational Schema Table
