lib/mcdb/stochastic_table.mli: Mde_prob Mde_relational Schema Table Vg
