lib/mcdb/bundle.mli: Expr Mde_prob Mde_relational Schema Stochastic_table Table Value
