lib/mcdb/database.mli: Catalog Estimator Mde_prob Mde_relational Stochastic_table Table
