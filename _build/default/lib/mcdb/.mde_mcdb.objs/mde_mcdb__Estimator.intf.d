lib/mcdb/estimator.mli: Format
