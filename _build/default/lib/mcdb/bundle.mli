(** Tuple-bundle query execution (§2.1).

    MCDB "executes a query plan only once, processing tuple bundles
    rather than ordinary tuples": each uncertain attribute of a tuple
    carries the array of its instantiations across all Monte Carlo
    repetitions, while deterministic attributes are stored once. A
    per-repetition presence bitmap tracks which tuples survive selection
    in which repetition, so selections, projections, computed columns,
    joins on deterministic keys, and aggregations all happen in a single
    pass over the data instead of once per repetition.

    Restrictions (documented MCDB-style): bundle construction requires a
    row-stable VG function (exactly one output row per driver row), and
    join keys / group-by keys must be deterministic. The general case
    falls back to {!Stochastic_table.instantiate_many} + ordinary
    queries; {!to_instances} lets tests check the two paths agree. *)

open Mde_relational

type cell =
  | Det of Value.t  (** same value in every repetition *)
  | Unc of Value.t array  (** one value per repetition *)

type t

val of_stochastic_table :
  Stochastic_table.t -> Mde_prob.Rng.t -> n_reps:int -> t
(** Instantiate all repetitions at once. Columns whose values coincide
    across repetitions are stored as [Det]. Raises [Invalid_argument] if
    the table's VG function is not row-stable. *)

val of_table : Table.t -> n_reps:int -> t
(** Wrap a deterministic table (all cells [Det], all rows present). *)

val schema : t -> Schema.t
val n_reps : t -> int
val row_count : t -> int
(** Physical tuples (independent of presence). *)

val realize_row : t -> int -> int -> Table.row
(** [realize_row b i r]: row [i]'s values in repetition [r]. *)

val present : t -> int -> int -> bool

val select : Expr.t -> t -> t
(** Evaluate the predicate per repetition, narrowing presence. Evaluated
    once per tuple when the predicate touches only deterministic cells. *)

val project : string list -> t -> t

val extend : (string * Value.ty * Expr.t) list -> t -> t
(** Computed columns; a result cell is [Det] when every referenced input
    cell is. *)

val join : on:(string * string) list -> t -> t -> t
(** Hash equi-join on deterministic key columns; output presence is the
    conjunction of the inputs' presence. Raises [Invalid_argument] if a
    key column is uncertain. *)

type agg =
  | Count
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

val aggregate :
  ?keys:string list -> (string * agg) list -> t -> (Table.row * float array array) list
(** Grouped aggregation in one pass: for each group (keyed on
    deterministic columns; `?keys` defaults to none, i.e. one global
    group) and each named aggregate, the per-repetition aggregate values
    (array of length [n_reps]). Empty groups in a repetition yield [nan]
    for Avg/Min/Max and 0 for Count/Sum. *)

val to_instances : t -> Table.t array
(** Materialize each repetition as an ordinary table (presence applied) —
    the bridge to the naive path for testing and for downstream operators
    the bundle engine does not cover. *)
