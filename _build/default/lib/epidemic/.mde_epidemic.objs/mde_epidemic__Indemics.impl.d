lib/epidemic/indemics.ml: Array Catalog Float Hashtbl Int List Mde_prob Mde_relational Network Option Schema Stdlib String Table Value
