lib/epidemic/network.ml: Array Fun List Mde_prob Stdlib
