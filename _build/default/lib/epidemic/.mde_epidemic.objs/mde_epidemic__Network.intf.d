lib/epidemic/network.mli: Mde_prob
