lib/epidemic/indemics.mli: Catalog Mde_relational Network Table
