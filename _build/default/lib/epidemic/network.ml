module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist

type health = Susceptible | Exposed | Infectious | Recovered | Vaccinated

let health_name = function
  | Susceptible -> "S"
  | Exposed -> "E"
  | Infectious -> "I"
  | Recovered -> "R"
  | Vaccinated -> "V"

type person = {
  id : int;
  age : int;
  household : int;
  mutable health : health;
  mutable days_in_state : int;
  mutable quarantined_days : int;
  mutable fear : float;
}

type contact = { peer : int; hours : float; kind : string }

type t = { persons : person array; adjacency : contact list array }

let persons t = t.persons
let contacts t i = t.adjacency.(i)
let size t = Array.length t.persons

let edge_count t =
  Array.fold_left (fun acc l -> acc + List.length l) 0 t.adjacency / 2

let add_edge t i j hours kind =
  if i <> j then begin
    t.adjacency.(i) <- { peer = j; hours; kind } :: t.adjacency.(i);
    t.adjacency.(j) <- { peer = i; hours; kind } :: t.adjacency.(j)
  end

(* Age distribution loosely shaped like a national pyramid: ~6% are 0-4. *)
let sample_age rng =
  let u = Rng.float rng in
  if u < 0.06 then Rng.int rng 5
  else if u < 0.24 then 5 + Rng.int rng 13 (* school age *)
  else if u < 0.80 then 18 + Rng.int rng 47 (* adults *)
  else 65 + Rng.int rng 30

let synthetic ?(seed = 3) ~n ~community_degree () =
  assert (n >= 10);
  let rng = Rng.create ~seed () in
  let persons = Array.make n { id = 0; age = 0; household = 0; health = Susceptible; days_in_state = 0; quarantined_days = 0; fear = 0. } in
  (* Assign people to households of size 1-5. *)
  let household = ref 0 in
  let i = ref 0 in
  let household_members = ref [] in
  while !i < n do
    let hh_size = Stdlib.min (n - !i) (1 + Rng.int rng 5) in
    let members = List.init hh_size (fun k -> !i + k) in
    List.iter
      (fun id ->
        persons.(id) <-
          {
            id;
            age = sample_age rng;
            household = !household;
            health = Susceptible;
            days_in_state = 0;
            quarantined_days = 0;
            fear = 0.;
          })
      members;
    household_members := members :: !household_members;
    incr household;
    i := !i + hh_size
  done;
  let t = { persons; adjacency = Array.make n [] } in
  (* Household contacts: complete subgraph, long exposure. *)
  List.iter
    (fun members ->
      List.iteri
        (fun k a ->
          List.iteri (fun l b -> if l > k then add_edge t a b 8.0 "household") members)
        members)
    !household_members;
  (* Daycare groups among preschoolers. *)
  let preschoolers =
    Array.of_list
      (List.filter (fun id -> persons.(id).age <= 4) (List.init n Fun.id))
  in
  Rng.shuffle_in_place rng preschoolers;
  let group_size = 8 in
  Array.iteri
    (fun idx _ ->
      let group = idx / group_size in
      let pos = idx mod group_size in
      (* Connect to earlier members of the same group. *)
      for other = group * group_size to (group * group_size) + pos - 1 do
        add_edge t preschoolers.(idx) preschoolers.(other) 5.0 "daycare"
      done)
    preschoolers;
  (* Random community contacts. *)
  let n_community =
    Dist.sample_discrete (Dist.Poisson (community_degree *. float_of_int n /. 2.)) rng
  in
  for _ = 1 to n_community do
    let a = Rng.int rng n and b = Rng.int rng n in
    if a <> b then add_edge t a b (Rng.float_range rng 0.5 3.0) "community"
  done;
  t

let count_health t h =
  Array.fold_left (fun acc p -> if p.health = h then acc + 1 else acc) 0 t.persons

let reset t =
  Array.iter
    (fun p ->
      p.health <- Susceptible;
      p.days_in_state <- 0;
      p.quarantined_days <- 0;
      p.fear <- 0.)
    t.persons

let mean_fear t =
  let acc = Array.fold_left (fun acc p -> acc +. p.fear) 0. t.persons in
  acc /. float_of_int (Stdlib.max 1 (Array.length t.persons))

let churn_community_edges t rng ~count =
  assert (count >= 0);
  let n = Array.length t.persons in
  (* Deletion: pick random people with community contacts and drop one. *)
  let removed = ref 0 in
  let attempts = ref 0 in
  while !removed < count && !attempts < count * 20 do
    incr attempts;
    let a = Rng.int rng n in
    let community =
      List.filter (fun c -> c.kind = "community") t.adjacency.(a)
    in
    match community with
    | [] -> ()
    | cs ->
      let victim = List.nth cs (Rng.int rng (List.length cs)) in
      let b = victim.peer in
      let drop_one person peer =
        let seen = ref false in
        t.adjacency.(person) <-
          List.filter
            (fun c ->
              if (not !seen) && c.kind = "community" && c.peer = peer then begin
                seen := true;
                false
              end
              else true)
            t.adjacency.(person)
      in
      drop_one a b;
      drop_one b a;
      incr removed
  done;
  (* Formation: the same number of fresh random community contacts. *)
  for _ = 1 to !removed do
    let a = Rng.int rng n and b = Rng.int rng n in
    if a <> b then add_edge t a b (Rng.float_range rng 0.5 3.0) "community"
  done
