(** Contact networks for epidemic simulation (§2.4, Indemics).

    Nodes are individuals carrying demographic attributes and a mutable
    health/behavioural state; edges are social contacts with a duration
    attribute that scales transmission. The synthetic generator stands in
    for Indemics's proprietary regional populations (see DESIGN.md): it
    builds households (complete subgraphs, long contacts), daycare groups
    connecting preschoolers, and random community contacts. *)

type health =
  | Susceptible
  | Exposed
  | Infectious
  | Recovered
  | Vaccinated

val health_name : health -> string

type person = {
  id : int;
  age : int;
  household : int;
  mutable health : health;
  mutable days_in_state : int;
  mutable quarantined_days : int;  (** >0: contacts damped *)
  mutable fear : float;
      (** behavioural state in [0,1] (§2.4's "fear level"): rises with
          infectious contacts, decays otherwise, and dampens contacts when
          the engine's distancing parameter is positive *)
}

type contact = { peer : int; hours : float; kind : string }

type t

val persons : t -> person array
val contacts : t -> int -> contact list
(** Contacts of one person (symmetric). *)

val size : t -> int
val edge_count : t -> int

val synthetic :
  ?seed:int ->
  n:int ->
  community_degree:float ->
  unit ->
  t
(** [n] people in households of 1–5 (ages drawn so that ≈6 % are
    preschoolers, 0–4); preschoolers additionally meet in daycare groups
    of ~8; everyone gets Poisson([community_degree]) random community
    contacts. *)

val count_health : t -> health -> int
val mean_fear : t -> float

val churn_community_edges : t -> Mde_prob.Rng.t -> count:int -> unit
(** The paper's "formation of new edges due to new contacts" and edge
    deletion: remove up to [count] random community contacts and create
    [count] fresh ones between random pairs. Household and daycare
    structure is left intact; symmetry is preserved. *)

val reset : t -> unit
(** All healthy, no quarantines (for reuse across Monte Carlo reps). *)
