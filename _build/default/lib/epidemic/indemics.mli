(** The Indemics division of labour (§2.4, [6]): a simulation kernel (the
    paper's HPC side) advances the contact-network disease dynamics
    between observation times; a relational session (the RDBMS side)
    exposes the current network state as tables so that the experimenter
    can assess subpopulations with SQL-style queries and specify
    interventions as (subset, action) pairs — pausing the simulation,
    querying, intervening, resuming. *)

open Mde_relational

type params = {
  transmission_rate : float;
      (** per contact-hour per day probability scale: P(infect) =
          1 − exp(−rate × hours) *)
  exposed_days_mean : float;  (** geometric-ish dwell in E *)
  infectious_days_mean : float;  (** dwell in I *)
  initial_infectious : int;
  quarantine_damping : float;  (** contact-hour multiplier when quarantined *)
  fear_gain : float;
      (** fear added per infectious contact per day (0 disables the
          behavioural dynamics, the default) *)
  fear_decay : float;  (** per-day relaxation of fear toward 0 *)
  fear_distancing : float;
      (** contact reduction at fear = 1: hours ×= (1 − d·fear) per side *)
  edge_churn_per_1000 : int;
      (** community edges re-wired per day per 1000 people — §2.4's
          "formation of new edges due to new contacts" *)
}

val default_params : params

type t

val create : ?seed:int -> Network.t -> params -> t
(** Resets the network and seeds [initial_infectious] random infections. *)

val network : t -> Network.t
val day : t -> int

val step_day : t -> int
(** Advance one day of disease dynamics (the HPC step); returns the
    number of new infections. *)

(** {2 The relational session} *)

val person_table : t -> Table.t
(** Schema (pid:int, age:int, household:int, health:string,
    quarantined:bool, fear:float) reflecting the current state, so
    behavioural subpopulations ("WHERE fear > 0.5") are queryable like
    everything else. *)

val infected_table : t -> Table.t
(** (pid:int) for currently infectious individuals — the paper's
    [InfectedPerson]. *)

val catalog : t -> Catalog.t
(** A catalog with [Person] and [InfectedPerson] registered, refreshed on
    every call. *)

(** {2 Interventions} *)

type action =
  | Vaccinate  (** susceptible members become immune *)
  | Quarantine of int  (** damp contacts for the given number of days *)

val apply_intervention : t -> pids:int list -> action -> int
(** Apply an action to a subpopulation (typically the pids returned by a
    query); returns how many individuals actually changed state. *)

val close_contacts : t -> kind:string -> days:int -> unit
(** A structural intervention — the paper's "deletion of edges" case:
    damp every contact of the given kind (e.g. ["daycare"]) by the
    quarantine damping factor for the given number of days. Extends any
    active closure of the same kind. *)

val active_closures : t -> (string * int) list
(** Contact kinds currently closed, with remaining days. *)

(** {2 Experiment driver} *)

type day_record = {
  day : int;
  susceptible : int;
  exposed : int;
  infectious : int;
  recovered : int;
  vaccinated : int;
  new_infections : int;
  interventions_applied : int;
}

val run :
  ?observe_every:int -> t -> days:int -> policy:(t -> int) option -> day_record array
(** Simulate [days] days; the HPC kernel advances the network between
    observation times, and at every [observe_every]-th day (default 1)
    the optional policy runs with query access to the session and
    returns how many individuals it intervened on (Algorithm 1 style).
    Record 0 is the initial state. *)

val attack_rate : day_record array -> float
(** Fraction ever infected by the end (recovered + infectious + exposed
    over population). *)

(** {2 Performance measures} *)

type cost_params = {
  infection_cost : float;  (** per person ever infected *)
  vaccination_cost : float;  (** per dose *)
  closure_day_cost : float;  (** per day a contact kind stays closed *)
}

val default_cost_params : cost_params

val economic_cost : t -> cost_params -> day_record array -> float
(** The "economic damage" objective of §2.4: infections + doses +
    closure-days, each at its unit cost, over a completed run. *)
