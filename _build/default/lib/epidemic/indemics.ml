open Mde_relational
module Rng = Mde_prob.Rng

type params = {
  transmission_rate : float;
  exposed_days_mean : float;
  infectious_days_mean : float;
  initial_infectious : int;
  quarantine_damping : float;
  fear_gain : float;
  fear_decay : float;
  fear_distancing : float;
  edge_churn_per_1000 : int;
}

let default_params =
  {
    transmission_rate = 0.02;
    exposed_days_mean = 2.0;
    infectious_days_mean = 5.0;
    initial_infectious = 5;
    quarantine_damping = 0.1;
    (* Behavioural dynamics are off by default so the classic SEIR-style
       experiments stay comparable; switch them on per run. *)
    fear_gain = 0.;
    fear_decay = 0.1;
    fear_distancing = 0.;
    edge_churn_per_1000 = 0;
  }

type t = {
  network : Network.t;
  params : params;
  rng : Rng.t;
  mutable day : int;
  closures : (string, int) Hashtbl.t;  (* contact kind -> days remaining *)
  mutable closure_days_total : int;
}

let create ?(seed = 5) network params =
  assert (params.initial_infectious >= 1);
  Network.reset network;
  let rng = Rng.create ~seed () in
  let n = Network.size network in
  let persons = Network.persons network in
  let seeded = ref 0 in
  while !seeded < Stdlib.min params.initial_infectious n do
    let id = Rng.int rng n in
    if persons.(id).Network.health = Network.Susceptible then begin
      persons.(id).Network.health <- Network.Infectious;
      persons.(id).Network.days_in_state <- 0;
      incr seeded
    end
  done;
  { network; params; rng; day = 0; closures = Hashtbl.create 4; closure_days_total = 0 }

let network t = t.network
let day t = t.day

(* Dwell-time exit probability for a mean-d geometric dwell. *)
let exit_prob mean_days = 1. /. Float.max 1. mean_days

let step_day t =
  let persons = Network.persons t.network in
  let n = Array.length persons in
  let newly_exposed = ref [] in
  (* Transmission: each infectious person exposes susceptible contacts. *)
  Array.iter
    (fun p ->
      if p.Network.health = Network.Infectious then
        List.iter
          (fun { Network.peer; hours; kind } ->
            let q = persons.(peer) in
            if q.Network.health = Network.Susceptible then begin
              let damp a =
                if a.Network.quarantined_days > 0 then t.params.quarantine_damping
                else 1.
              in
              let closure_damp =
                if Hashtbl.mem t.closures kind then t.params.quarantine_damping
                else 1.
              in
              (* Fearful individuals voluntarily reduce their contacts. *)
              let fear_damp a = 1. -. (t.params.fear_distancing *. a.Network.fear) in
              let effective =
                hours *. damp p *. damp q *. closure_damp *. fear_damp p
                *. fear_damp q
              in
              let prob = 1. -. exp (-.t.params.transmission_rate *. effective) in
              if Rng.bernoulli t.rng prob then newly_exposed := peer :: !newly_exposed
            end)
          (Network.contacts t.network p.Network.id))
    persons;
  (* Progression: E -> I -> R with geometric dwell times. *)
  Array.iter
    (fun p ->
      match p.Network.health with
      | Network.Exposed ->
        p.Network.days_in_state <- p.Network.days_in_state + 1;
        if Rng.bernoulli t.rng (exit_prob t.params.exposed_days_mean) then begin
          p.Network.health <- Network.Infectious;
          p.Network.days_in_state <- 0
        end
      | Network.Infectious ->
        p.Network.days_in_state <- p.Network.days_in_state + 1;
        if Rng.bernoulli t.rng (exit_prob t.params.infectious_days_mean) then begin
          p.Network.health <- Network.Recovered;
          p.Network.days_in_state <- 0
        end
      | Network.Susceptible | Network.Recovered | Network.Vaccinated -> ())
    persons;
  (* Apply the day's new exposures (a person counted once). *)
  let infected = ref 0 in
  List.iter
    (fun id ->
      let p = persons.(id) in
      if p.Network.health = Network.Susceptible then begin
        p.Network.health <- Network.Exposed;
        p.Network.days_in_state <- 0;
        incr infected
      end)
    (List.sort_uniq Int.compare !newly_exposed);
  (* Behavioural state: fear rises with infectious contacts, decays
     otherwise; the network itself churns community edges. *)
  if t.params.fear_gain > 0. then
    Array.iter
      (fun p ->
        let infectious_contacts =
          List.fold_left
            (fun acc { Network.peer; _ } ->
              if persons.(peer).Network.health = Network.Infectious then acc + 1
              else acc)
            0
            (Network.contacts t.network p.Network.id)
        in
        p.Network.fear <-
          Float.min 1.
            (Float.max 0.
               ((p.Network.fear *. (1. -. t.params.fear_decay))
               +. (t.params.fear_gain *. float_of_int infectious_contacts))))
      persons;
  if t.params.edge_churn_per_1000 > 0 then
    Network.churn_community_edges t.network t.rng
      ~count:(t.params.edge_churn_per_1000 * n / 1000);
  (* Quarantine and closure clocks tick down. *)
  for i = 0 to n - 1 do
    let p = persons.(i) in
    if p.Network.quarantined_days > 0 then
      p.Network.quarantined_days <- p.Network.quarantined_days - 1
  done;
  t.closure_days_total <- t.closure_days_total + Hashtbl.length t.closures;
  Hashtbl.filter_map_inplace
    (fun _ remaining -> if remaining > 1 then Some (remaining - 1) else None)
    t.closures;
  t.day <- t.day + 1;
  !infected

let person_schema =
  Schema.of_list
    [
      ("pid", Value.Tint);
      ("age", Value.Tint);
      ("household", Value.Tint);
      ("health", Value.Tstring);
      ("quarantined", Value.Tbool);
      ("fear", Value.Tfloat);
    ]

let person_table t =
  let rows =
    Array.map
      (fun p ->
        [|
          Value.Int p.Network.id;
          Value.Int p.Network.age;
          Value.Int p.Network.household;
          Value.String (Network.health_name p.Network.health);
          Value.Bool (p.Network.quarantined_days > 0);
          Value.Float p.Network.fear;
        |])
      (Network.persons t.network)
  in
  Table.of_rows person_schema rows

let infected_schema = Schema.of_list [ ("pid", Value.Tint) ]

let infected_table t =
  let rows =
    Array.to_list (Network.persons t.network)
    |> List.filter (fun p -> p.Network.health = Network.Infectious)
    |> List.map (fun p -> [| Value.Int p.Network.id |])
  in
  Table.create infected_schema rows

let catalog t =
  let c = Catalog.create () in
  Catalog.register c "Person" (person_table t);
  Catalog.register c "InfectedPerson" (infected_table t);
  c

type action = Vaccinate | Quarantine of int

let apply_intervention t ~pids action =
  let persons = Network.persons t.network in
  let changed = ref 0 in
  List.iter
    (fun pid ->
      if pid >= 0 && pid < Array.length persons then begin
        let p = persons.(pid) in
        match action with
        | Vaccinate ->
          if p.Network.health = Network.Susceptible then begin
            p.Network.health <- Network.Vaccinated;
            incr changed
          end
        | Quarantine days ->
          if p.Network.quarantined_days < days then begin
            p.Network.quarantined_days <- days;
            incr changed
          end
      end)
    pids;
  !changed

type day_record = {
  day : int;
  susceptible : int;
  exposed : int;
  infectious : int;
  recovered : int;
  vaccinated : int;
  new_infections : int;
  interventions_applied : int;
}

let record (t : t) ~new_infections ~interventions_applied =
  {
    day = t.day;
    susceptible = Network.count_health t.network Network.Susceptible;
    exposed = Network.count_health t.network Network.Exposed;
    infectious = Network.count_health t.network Network.Infectious;
    recovered = Network.count_health t.network Network.Recovered;
    vaccinated = Network.count_health t.network Network.Vaccinated;
    new_infections;
    interventions_applied;
  }

let run ?(observe_every = 1) t ~days ~policy =
  assert (days >= 0 && observe_every >= 1);
  let out = Array.make (days + 1) (record t ~new_infections:0 ~interventions_applied:0) in
  for d = 1 to days do
    let fresh = step_day t in
    let acted =
      if d mod observe_every = 0 then
        match policy with Some p -> p t | None -> 0
      else 0
    in
    out.(d) <- record t ~new_infections:fresh ~interventions_applied:acted
  done;
  out

let attack_rate records =
  assert (Array.length records > 0);
  let last = records.(Array.length records - 1) in
  let total =
    last.susceptible + last.exposed + last.infectious + last.recovered
    + last.vaccinated
  in
  float_of_int (last.exposed + last.infectious + last.recovered)
  /. float_of_int total

let close_contacts t ~kind ~days =
  assert (days > 0);
  let current = Option.value ~default:0 (Hashtbl.find_opt t.closures kind) in
  Hashtbl.replace t.closures kind (Stdlib.max current days)

let active_closures t =
  Hashtbl.fold (fun kind days acc -> (kind, days) :: acc) t.closures []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type cost_params = {
  infection_cost : float;
  vaccination_cost : float;
  closure_day_cost : float;
}

let default_cost_params =
  { infection_cost = 100.; vaccination_cost = 5.; closure_day_cost = 50. }

let economic_cost t costs records =
  assert (Array.length records > 0);
  let last = records.(Array.length records - 1) in
  let ever_infected =
    float_of_int (last.exposed + last.infectious + last.recovered)
  in
  (costs.infection_cost *. ever_infected)
  +. (costs.vaccination_cost *. float_of_int last.vaccinated)
  +. (costs.closure_day_cost *. float_of_int t.closure_days_total)
