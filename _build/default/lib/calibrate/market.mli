(** A small agent-based asset market in the Alfarano–Lux herding family
    [1] — the standard calibration target in the ABS-calibration
    literature the paper surveys. N traders are optimists or pessimists;
    each step a trader flips with probability a + b·(opposite fraction)
    (idiosyncratic switching plus herding); returns follow the mood
    imbalance plus fundamental noise. Herding (b) fattens the return
    tails and makes volatility cluster — the moments MSM calibrates
    against. *)

type params = {
  n_agents : int;
  a : float;  (** idiosyncratic switching rate *)
  b : float;  (** herding strength *)
  noise : float;  (** fundamental news volatility *)
}

val simulate_returns :
  Mde_prob.Rng.t -> params -> steps:int -> burn_in:int -> float array
(** One realization of the return series after discarding [burn_in]
    steps. *)

val moments : float array -> float array
(** The calibration moment vector: [variance; kurtosis; lag-1
    autocorrelation of absolute returns] — variance targets noise,
    kurtosis and |r| clustering target herding. *)

val simulate_moments :
  steps:int -> burn_in:int -> n_agents:int -> noise:float ->
  Mde_prob.Rng.t -> float array -> float array
(** Adapter for {!Msm.problem}: θ = [a; b]. *)
