module Rng = Mde_prob.Rng
module Mat = Mde_linalg.Mat

type regularization = { lambda : float; prior : float array }

type problem = {
  simulate_moments : Rng.t -> float array -> float array;
  observed : float array array;
  bounds : (float * float) array;
  replications : int;
  regularization : regularization option;
}

let observed_mean problem =
  let n = Array.length problem.observed in
  assert (n > 0);
  let m = Array.length problem.observed.(0) in
  let out = Array.make m 0. in
  Array.iter
    (fun row ->
      assert (Array.length row = m);
      Array.iteri (fun j v -> out.(j) <- out.(j) +. (v /. float_of_int n)) row)
    problem.observed;
  out

let weight_matrix ?ridge problem =
  let n = Array.length problem.observed in
  let m = Array.length problem.observed.(0) in
  assert (n >= 2);
  let mean = observed_mean problem in
  (* Covariance of G = Ȳ − m̂(θ): per-sample moment covariance scaled by
     (1/n + 1/R) — the simulation-noise correction of McFadden's MSM
     (m̂ is itself an R-replication average of the same moment vector). *)
  let scale =
    (1. /. float_of_int n) +. (1. /. float_of_int problem.replications)
  in
  let cov =
    Mat.init m m (fun a b ->
        let acc = ref 0. in
        Array.iter
          (fun row -> acc := !acc +. ((row.(a) -. mean.(a)) *. (row.(b) -. mean.(b))))
          problem.observed;
        !acc /. float_of_int (n - 1) *. scale)
  in
  let trace = ref 0. in
  for i = 0 to m - 1 do
    trace := !trace +. Mat.get cov i i
  done;
  let ridge =
    match ridge with Some r -> r | None -> 1e-6 *. Float.max 1e-12 (!trace /. float_of_int m)
  in
  for i = 0 to m - 1 do
    Mat.set cov i i (Mat.get cov i i +. ridge)
  done;
  Mat.inverse cov

let simulated_mean problem rng theta =
  let m_dim = Array.length problem.observed.(0) in
  let out = Array.make m_dim 0. in
  for _ = 1 to problem.replications do
    let sample = problem.simulate_moments rng theta in
    assert (Array.length sample = m_dim);
    Array.iteri
      (fun j v -> out.(j) <- out.(j) +. (v /. float_of_int problem.replications))
      sample
  done;
  out

let penalty problem theta =
  match problem.regularization with
  | None -> 0.
  | Some { lambda; prior } ->
    assert (Array.length prior = Array.length theta);
    let acc = ref 0. in
    Array.iteri
      (fun k t ->
        let lo, hi = problem.bounds.(k) in
        let d = (t -. prior.(k)) /. Float.max 1e-12 (hi -. lo) in
        acc := !acc +. (d *. d))
      theta;
    lambda *. !acc

let objective problem rng weight theta =
  let g =
    let y = observed_mean problem and m_hat = simulated_mean problem rng theta in
    Array.mapi (fun j yj -> yj -. m_hat.(j)) y
  in
  let wg = Mat.mul_vec weight g in
  let acc = ref 0. in
  Array.iteri (fun j gj -> acc := !acc +. (gj *. wg.(j))) g;
  !acc +. penalty problem theta

type method_ =
  | Nelder_mead
  | Genetic of Mde_optimize.Genetic.params
  | Random_search of int
  | Kriging_surrogate of { design_points : int; refine : bool }

type result = {
  theta : float array;
  j_value : float;
  simulations : int;
  method_name : string;
}

let calibrate ?(seed = 99) ?weight ?(common_random_numbers = true) problem method_ =
  let rng = Rng.create ~seed () in
  let weight = match weight with Some w -> w | None -> weight_matrix problem in
  let sims = ref 0 in
  let j theta =
    sims := !sims + problem.replications;
    let stream =
      if common_random_numbers then Rng.create ~seed:(seed + 7919) ()
      else Rng.split rng
    in
    objective problem stream weight theta
  in
  (* Optimize in the unit box: parameter ranges often differ by orders of
     magnitude (a switching rate vs a herding strength), which breaks any
     optimizer with a global step size. *)
  let dims = Array.length problem.bounds in
  let to_theta u =
    Array.mapi
      (fun k uk ->
        let lo, hi = problem.bounds.(k) in
        lo +. (uk *. (hi -. lo)))
      u
  in
  let j_unit u = j (to_theta u) in
  let unit_bounds = Array.make dims (0., 1.) in
  let center = Array.make dims 0.5 in
  match method_ with
  | Nelder_mead ->
    (* Multi-start: a handful of random probes seed restarts, since the
       simulated J surface is rugged and a single simplex gets trapped. *)
    let probe_rng = Rng.split rng in
    let probes =
      Array.init 6 (fun _ -> Array.init dims (fun _ -> Rng.float probe_rng))
    in
    let scored = Array.map (fun u -> (j_unit u, u)) probes in
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) scored;
    let starts = [ center; snd scored.(0); snd scored.(1) ] in
    let best = ref None in
    List.iter
      (fun x0 ->
        let opt =
          Mde_optimize.Nelder_mead.minimize_box ~max_iter:80 ~bounds:unit_bounds
            ~f:j_unit ~x0 ()
        in
        match !best with
        | Some (f, _) when f <= opt.Mde_optimize.Nelder_mead.f -> ()
        | Some _ | None ->
          best := Some (opt.Mde_optimize.Nelder_mead.f, opt.Mde_optimize.Nelder_mead.x))
      starts;
    let f, u = Option.get !best in
    {
      theta = to_theta u;
      j_value = f;
      simulations = !sims;
      method_name = "nelder-mead";
    }
  | Genetic params ->
    let opt =
      Mde_optimize.Genetic.minimize ~params ~rng:(Rng.split rng)
        ~bounds:problem.bounds ~f:j ()
    in
    {
      theta = opt.Mde_optimize.Genetic.x;
      j_value = opt.Mde_optimize.Genetic.f;
      simulations = !sims;
      method_name = "genetic";
    }
  | Random_search budget ->
    let opt =
      Mde_optimize.Search.random_search ~rng:(Rng.split rng) ~bounds:problem.bounds
        ~f:j ~evaluations:budget
    in
    {
      theta = opt.Mde_optimize.Search.x;
      j_value = opt.Mde_optimize.Search.f;
      simulations = !sims;
      method_name = "random-search";
    }
  | Kriging_surrogate { design_points; refine } ->
    assert (design_points >= 4);
    (* DOE: a nearly orthogonal LH over the unit box (Salle-Yildizoglu). *)
    let coded =
      Mde_metamodel.Design.nearly_orthogonal_lh ~rng:(Rng.split rng) ~factors:dims
        ~levels:design_points ~tries:50
    in
    let design = Mde_metamodel.Design.scale coded ~ranges:unit_bounds in
    let response = Array.map j_unit design in
    let surrogate = Mde_metamodel.Kriging.fit_mle ~design ~response () in
    (* Minimize the metamodel (cheap) by multi-start Nelder-Mead from the
       best design points. *)
    let order = Array.init (Array.length response) Fun.id in
    Array.sort (fun a b -> Float.compare response.(a) response.(b)) order;
    let best = ref design.(order.(0)) in
    let best_val = ref (Mde_metamodel.Kriging.predict surrogate !best) in
    for s = 0 to Stdlib.min 2 (Array.length order - 1) do
      let opt =
        Mde_optimize.Nelder_mead.minimize_box ~max_iter:300 ~bounds:unit_bounds
          ~f:(Mde_metamodel.Kriging.predict surrogate)
          ~x0:design.(order.(s)) ()
      in
      if opt.Mde_optimize.Nelder_mead.f < !best_val then begin
        best := opt.Mde_optimize.Nelder_mead.x;
        best_val := opt.Mde_optimize.Nelder_mead.f
      end
    done;
    let u, j_value =
      if refine then begin
        let opt =
          Mde_optimize.Nelder_mead.minimize_box ~max_iter:60 ~bounds:unit_bounds
            ~f:j_unit ~x0:!best ()
        in
        (opt.Mde_optimize.Nelder_mead.x, opt.Mde_optimize.Nelder_mead.f)
      end
      else (!best, j_unit !best)
    in
    { theta = to_theta u; j_value; simulations = !sims; method_name = "kriging-surrogate" }
