(** The method of moments (§3.1): equate population moments m(θ) to their
    empirical counterparts and solve for θ. *)

val exponential : float array -> float
(** E[X] = 1/θ ⇒ θ̂ = 1/X̄ (coincides with the MLE, as the paper notes). *)

val normal : float array -> float * float
(** Two moments, two unknowns: (X̄, s). *)

type result = { theta : float array; distance : float; evaluations : int }

val solve :
  population_moments:(float array -> float array) ->
  observed_moments:float array ->
  bounds:(float * float) array ->
  x0:float array ->
  result
(** Generic MM: minimize ‖m(θ) − Ȳ‖² over the box (Nelder–Mead), for
    models whose moment map is analytic but not invertible by hand. *)

val sample_moments : orders:int list -> float array -> float array
(** Raw sample moments (1/n)Σxᵏ for the requested orders. *)
