(** The method of simulated moments (§3.1, McFadden [41]) for calibrating
    agent-based simulations: the moment map m(θ) is intractable, so it is
    replaced by a simulation estimate m̂(θ) (averaged over Monte Carlo
    replications), and θ is chosen to minimize the generalized distance
    J(θ) = Gᵀ W G with G = Ȳ − m̂(θ). W defaults to the inverse of the
    observed moments' covariance (the statistically efficient choice of
    [20, 30]); optimizer back-ends cover the strategies the paper
    surveys: Nelder–Mead and genetic algorithms (Fabretti [17]), random
    search as the naive baseline, and DOE + kriging surrogate
    minimization (Salle–Yildizoglu [45]). *)

type regularization = {
  lambda : float;  (** penalty weight *)
  prior : float array;  (** θ₀ the estimate is shrunk toward *)
}
(** The paper's anti-overfitting hook for MSM: "regularization terms can
    potentially be incorporated into the objective function J" (§3.1).
    The penalized objective is J(θ) + λ·‖(θ−θ₀)/range‖² (coordinates
    scaled by the parameter ranges so the penalty is unit-free). *)

type problem = {
  simulate_moments : Mde_prob.Rng.t -> float array -> float array;
      (** one simulation replication's moment vector at a given θ *)
  observed : float array array;
      (** empirical moment samples (replications × moments) from the
          real-world data — used for Ȳ and the weight matrix *)
  bounds : (float * float) array;
  replications : int;  (** simulation replications averaged into m̂(θ) *)
  regularization : regularization option;
}

val observed_mean : problem -> float array

val weight_matrix : ?ridge:float -> problem -> Mde_linalg.Mat.t
(** Inverse covariance of G = Ȳ − m̂(θ): the per-sample moment covariance
    scaled by (1/n + 1/replications) — McFadden's simulation-noise
    correction — with a ridge (default 1e-6 × mean diagonal) for
    stability. *)

val objective : problem -> Mde_prob.Rng.t -> Mde_linalg.Mat.t -> float array -> float
(** J(θ) for one (fresh-stream) simulation estimate of m̂(θ). *)

type method_ =
  | Nelder_mead
  | Genetic of Mde_optimize.Genetic.params
  | Random_search of int  (** evaluation budget *)
  | Kriging_surrogate of { design_points : int; refine : bool }
      (** NOLH design → fit GP to J → minimize the surrogate (optionally
          polish with Nelder–Mead on the true objective) *)

type result = {
  theta : float array;
  j_value : float;
  simulations : int;  (** total simulate_moments calls *)
  method_name : string;
}

val calibrate :
  ?seed:int ->
  ?weight:Mde_linalg.Mat.t ->
  ?common_random_numbers:bool ->
  problem ->
  method_ ->
  result
(** [common_random_numbers] (default true) evaluates every J(θ) on the
    same random stream, the standard variance-reduction trick that turns
    the noisy objective into a fixed surface so that deterministic
    optimizers (Nelder–Mead, the kriging surrogate) behave; set false for
    independent streams per evaluation. *)
