let exponential xs =
  let mean = Mde_prob.Stats.mean xs in
  assert (mean > 0.);
  1. /. mean

let normal xs = (Mde_prob.Stats.mean xs, Mde_prob.Stats.std xs)

type result = { theta : float array; distance : float; evaluations : int }

let solve ~population_moments ~observed_moments ~bounds ~x0 =
  let m = Array.length observed_moments in
  let objective theta =
    let predicted = population_moments theta in
    assert (Array.length predicted = m);
    let acc = ref 0. in
    for i = 0 to m - 1 do
      let d = predicted.(i) -. observed_moments.(i) in
      acc := !acc +. (d *. d)
    done;
    !acc
  in
  let opt = Mde_optimize.Nelder_mead.minimize_box ~bounds ~f:objective ~x0 () in
  {
    theta = opt.Mde_optimize.Nelder_mead.x;
    distance = opt.Mde_optimize.Nelder_mead.f;
    evaluations = opt.Mde_optimize.Nelder_mead.evaluations;
  }

let sample_moments ~orders xs =
  let n = float_of_int (Array.length xs) in
  assert (n > 0.);
  Array.of_list
    (List.map
       (fun k ->
         assert (k >= 1);
         Array.fold_left (fun acc x -> acc +. (x ** float_of_int k)) 0. xs /. n)
       orders)
