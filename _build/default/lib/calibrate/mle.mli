(** Maximum likelihood estimation (§3.1): closed forms for the paper's
    textbook cases plus a generic numeric MLE for densities where the
    likelihood is available — which, as the paper notes, is rarely the
    case for agent-based simulations (hence MSM in {!Msm}). *)

val exponential : float array -> float
(** MLE of the rate θ of f(x;θ) = θe^{−θx}: 1 / sample mean (the paper's
    worked example). Requires positive observations. *)

val normal : float array -> float * float
(** (μ̂, σ̂) with the (biased, 1/n) MLE variance. *)

val poisson : int array -> float
(** Rate MLE = sample mean. *)

type numeric_result = {
  theta : float array;
  log_likelihood : float;
  evaluations : int;
}

val numeric :
  log_density:(theta:float array -> float -> float) ->
  bounds:(float * float) array ->
  x0:float array ->
  float array ->
  numeric_result
(** [numeric ~log_density ~bounds ~x0 data] maximizes Σᵢ log f(xᵢ; θ)
    with box-constrained Nelder–Mead. *)
