module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist

type params = { n_agents : int; a : float; b : float; noise : float }

let simulate_returns rng params ~steps ~burn_in =
  assert (params.n_agents >= 2 && steps > 0 && burn_in >= 0);
  assert (params.a >= 0. && params.b >= 0. && params.noise >= 0.);
  let n = params.n_agents in
  (* optimists: number of agents in the + state. *)
  let optimists = ref (n / 2) in
  let mood_of n_opt = (2. *. float_of_int n_opt /. float_of_int n) -. 1. in
  let step_market () =
    let n_opt = !optimists in
    let n_pes = n - n_opt in
    let frac_opt = float_of_int n_opt /. float_of_int n in
    let frac_pes = 1. -. frac_opt in
    (* Kirman-style recruitment: each pessimist flips with prob
       a + b·frac_opt, each optimist with a + b·frac_pes. With small a the
       mood distribution is bimodal and flips between regimes in bursts.
       Binomial draws keep the update O(1) in the agent count. *)
    let p_to_opt = Float.min 1. (params.a +. (params.b *. frac_opt)) in
    let p_to_pes = Float.min 1. (params.a +. (params.b *. frac_pes)) in
    let gain = Dist.sample_discrete (Dist.Binomial { n = n_pes; p = p_to_opt }) rng in
    let loss = Dist.sample_discrete (Dist.Binomial { n = n_opt; p = p_to_pes }) rng in
    let prev_mood = mood_of n_opt in
    optimists := Stdlib.max 0 (Stdlib.min n (n_opt + gain - loss));
    (* Returns respond to sentiment *changes*: regime flips produce the
       volatility bursts herding is known for. *)
    let news = Dist.sample (Dist.Normal { mean = 0.; std = params.noise }) rng in
    (0.1 *. (mood_of !optimists -. prev_mood)) +. news
  in
  for _ = 1 to burn_in do
    ignore (step_market ())
  done;
  Array.init steps (fun _ -> step_market ())

let moments returns =
  let n = Array.length returns in
  assert (n >= 3);
  let mean = Mde_prob.Stats.mean returns in
  let centered = Array.map (fun r -> r -. mean) returns in
  let var = Array.fold_left (fun acc c -> acc +. (c *. c)) 0. centered /. float_of_int n in
  let m4 =
    Array.fold_left (fun acc c -> acc +. (c ** 4.)) 0. centered /. float_of_int n
  in
  let kurtosis = if var > 0. then m4 /. (var *. var) else 3. in
  let abs_returns = Array.map Float.abs returns in
  let acf1 = Mde_prob.Stats.autocorrelation abs_returns 1 in
  [| var; kurtosis; acf1 |]

let simulate_moments ~steps ~burn_in ~n_agents ~noise rng theta =
  assert (Array.length theta = 2);
  let params = { n_agents; a = Float.max 0. theta.(0); b = Float.max 0. theta.(1); noise } in
  moments (simulate_returns rng params ~steps ~burn_in)
