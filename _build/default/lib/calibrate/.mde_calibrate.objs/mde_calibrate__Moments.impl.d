lib/calibrate/moments.ml: Array List Mde_optimize Mde_prob
