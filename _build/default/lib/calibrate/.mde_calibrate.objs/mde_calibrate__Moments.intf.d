lib/calibrate/moments.mli:
