lib/calibrate/mle.mli:
