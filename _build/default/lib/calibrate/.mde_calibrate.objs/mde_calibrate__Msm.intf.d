lib/calibrate/msm.mli: Mde_linalg Mde_optimize Mde_prob
