lib/calibrate/mle.ml: Array Float Mde_optimize Mde_prob
