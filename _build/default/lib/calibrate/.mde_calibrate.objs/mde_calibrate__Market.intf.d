lib/calibrate/market.mli: Mde_prob
