lib/calibrate/market.ml: Array Float Mde_prob Stdlib
