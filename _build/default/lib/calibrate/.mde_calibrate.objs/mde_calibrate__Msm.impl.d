lib/calibrate/msm.ml: Array Float Fun List Mde_linalg Mde_metamodel Mde_optimize Mde_prob Option Stdlib
