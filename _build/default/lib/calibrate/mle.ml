let exponential xs =
  assert (Array.length xs > 0);
  Array.iter (fun x -> assert (x >= 0.)) xs;
  let mean = Mde_prob.Stats.mean xs in
  assert (mean > 0.);
  1. /. mean

let normal xs =
  let n = Array.length xs in
  assert (n > 0);
  let mu = Mde_prob.Stats.mean xs in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. xs /. float_of_int n
  in
  (mu, sqrt var)

let poisson ks =
  assert (Array.length ks > 0);
  Mde_prob.Stats.mean (Array.map float_of_int ks)

type numeric_result = {
  theta : float array;
  log_likelihood : float;
  evaluations : int;
}

let numeric ~log_density ~bounds ~x0 data =
  assert (Array.length data > 0);
  let objective theta =
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. log_density ~theta x) data;
    (* Minimize the negative log-likelihood; guard against NaN from
       boundary evaluations. *)
    if Float.is_nan !acc then infinity else -. !acc
  in
  let opt = Mde_optimize.Nelder_mead.minimize_box ~bounds ~f:objective ~x0 () in
  {
    theta = opt.Mde_optimize.Nelder_mead.x;
    log_likelihood = -.opt.Mde_optimize.Nelder_mead.f;
    evaluations = opt.Mde_optimize.Nelder_mead.evaluations;
  }
