(* Indemics-style epidemic experimentation (paper §2.4, Algorithm 1):
   the simulation kernel advances a contact-network epidemic day by day;
   at each observation the experimenter queries the relational session
   and, when more than 1 % of preschoolers are infected, vaccinates all
   preschoolers — the paper's example intervention, specified as queries
   over the Person / InfectedPerson tables.

   Run with: dune exec examples/epidemic_intervention.exe *)

open Mde.Relational
module Network = Mde.Epidemic.Network
module Indemics = Mde.Epidemic.Indemics

(* Algorithm 1, in the query DSL. *)
let vaccinate_preschoolers_policy engine =
  let cat = Indemics.catalog engine in
  let person = Catalog.find cat "Person" in
  let infected = Catalog.find cat "InfectedPerson" in
  (* CREATE TABLE Preschool AS SELECT pid FROM Person WHERE 0 <= age <= 4 *)
  let preschool =
    Query.of_table person
    |> Query.where Expr.(col "age" >= int 0 && col "age" <= int 4)
    |> Query.select_cols [ "pid" ]
    |> Query.run
  in
  let n_preschool = Table.cardinality preschool in
  (* WITH InfectedPreschool AS (SELECT pid FROM Preschool JOIN InfectedPerson) *)
  let n_infected_preschool =
    Query.of_table preschool
    |> Query.join ~on:[ ("pid", "ipid") ] (Algebra.rename [ ("pid", "ipid") ] infected)
    |> Query.count
  in
  if float_of_int n_infected_preschool > 0.01 *. float_of_int n_preschool then begin
    let pids =
      Array.to_list (Table.rows preschool) |> List.map (fun r -> Value.to_int r.(0))
    in
    Indemics.apply_intervention engine ~pids Indemics.Vaccinate
  end
  else 0

let preschool_attack engine =
  let persons = Network.persons (Indemics.network engine) in
  let total = ref 0 and hit = ref 0 in
  Array.iter
    (fun p ->
      if p.Network.age <= 4 then begin
        incr total;
        match p.Network.health with
        | Network.Exposed | Network.Infectious | Network.Recovered -> incr hit
        | Network.Susceptible | Network.Vaccinated -> ()
      end)
    persons;
  float_of_int !hit /. float_of_int (max 1 !total)

let () =
  let days = 150 in
  let run policy =
    let network = Network.synthetic ~seed:7 ~n:5_000 ~community_degree:4. () in
    let engine = Indemics.create ~seed:12 network Indemics.default_params in
    let records = Indemics.run engine ~days ~policy in
    (engine, records)
  in
  Format.printf "Epidemic on a 5,000-person synthetic contact network, %d days.@.@." days;
  let baseline_engine, baseline = run None in
  let policy_engine, with_policy = run (Some vaccinate_preschoolers_policy) in
  let peak records =
    Array.fold_left (fun m (r : Indemics.day_record) -> max m r.Indemics.infectious) 0 records
  in
  let vaccinations =
    Array.fold_left (fun acc r -> acc + r.Indemics.interventions_applied) 0 with_policy
  in
  Format.printf "%-34s %12s %12s@." "" "baseline" "Algorithm 1";
  Format.printf "%-34s %11.1f%% %11.1f%%@." "overall attack rate"
    (100. *. Indemics.attack_rate baseline)
    (100. *. Indemics.attack_rate with_policy);
  Format.printf "%-34s %11.1f%% %11.1f%%@." "preschooler attack rate"
    (100. *. preschool_attack baseline_engine)
    (100. *. preschool_attack policy_engine);
  Format.printf "%-34s %12d %12d@." "peak infectious" (peak baseline) (peak with_policy);
  Format.printf "%-34s %12d %12d@." "vaccinations administered" 0 vaccinations;
  Format.printf "@.Epidemic curve (infectious, every 10 days):@.";
  Format.printf "%6s %10s %12s@." "day" "baseline" "Algorithm 1";
  Array.iteri
    (fun d (r : Indemics.day_record) ->
      if d mod 10 = 0 then
        Format.printf "%6d %10d %12d@." d r.Indemics.infectious
          with_policy.(d).Indemics.infectious)
    baseline
