(* Bonabeau's traffic example (paper §1): behavioural rules — accelerate
   when the road is clear, slow behind others, brake at random — make
   jams emerge, something no correlation over speed/volume data reveals.

   The example sweeps density to draw the fundamental diagram (flow vs
   density) and prints a space-time diagram where jams appear as dark
   bands drifting backwards against the traffic.

   Run with: dune exec examples/traffic_jam.exe *)

module Traffic = Mde.Abs.Traffic

let bar width value max_value =
  let n = Float.to_int (Float.round (value /. max_value *. float_of_int width)) in
  String.make (max 0 (min width n)) '*'

let () =
  let params = Traffic.default_params in
  let densities = Array.init 16 (fun i -> 0.04 +. (0.055 *. float_of_int i)) in
  let points = Traffic.density_sweep ~seed:4 params ~densities ~warmup:150 ~measure:80 in
  let max_flow =
    Array.fold_left (fun m p -> Float.max m p.Traffic.mean_flow) 0. points
  in
  Format.printf "Fundamental diagram (ring road, %d cells, vmax %d, p_brake %.2f)@.@."
    params.Traffic.length params.Traffic.max_speed params.Traffic.p_brake;
  Format.printf "%8s %8s %8s %7s@." "density" "flow" "speed" "jammed";
  Array.iter
    (fun p ->
      Format.printf "%8.3f %8.4f %8.3f %6.1f%%  |%s@." p.Traffic.density
        p.Traffic.mean_flow p.Traffic.mean_speed_pt
        (100. *. p.Traffic.jammed)
        (bar 30 p.Traffic.mean_flow max_flow))
    points;
  (* Space-time diagram just above the jam transition. *)
  Format.printf "@.Space-time diagram at density 0.20 (time runs down; '#' = car):@.@.";
  let rng = Mde.Prob.Rng.create ~seed:9 () in
  let road = Traffic.create { params with length = 120 } ~density:0.20 rng in
  for _ = 1 to 120 do
    Traffic.step road
  done;
  print_string (Traffic.space_time_diagram road ~steps:30 ~lane:0);
  Format.printf "@.Jams form spontaneously and travel upstream — the emergent@.";
  Format.printf "behaviour the paper argues pure data mining cannot supply.@."
