(* A "population well-being" composite (paper §2.2: "decision-makers
   increasingly need to bring together multiple models across a broad
   range of disciplines"): a weather model (hourly), a behaviour model
   (daily indoor-crowding index), and the contact-network epidemic engine
   are composed through the ecosystem Registry — which detects the
   clock mismatch and inserts the alignment transform automatically — and
   the composite is run as a Monte Carlo experiment.

   Run with: dune exec examples/wellbeing.exe *)

module Splash = Mde.Composite.Splash
module Registry = Mde.Registry
module Series = Mde.Timeseries.Series
module Network = Mde.Epidemic.Network
module Indemics = Mde.Epidemic.Indemics
module Dist = Mde.Prob.Dist
module Rng = Mde.Prob.Rng
module Stats = Mde.Prob.Stats

let days = 120

(* Model 1 — weather: hourly temperature over the experiment horizon. *)
let weather_model =
  {
    Splash.name = "weather";
    description = "hourly temperature (deg C)";
    inputs = [];
    outputs = [ "temperature" ];
    run =
      (fun rng _ ->
        let hours = days * 24 in
        let times = Series.regular_times ~start:0. ~step:(1. /. 24.) ~count:hours in
        let values =
          Array.map
            (fun t ->
              12. +. (8. *. sin (t /. 365. *. 2. *. Float.pi))
              +. (4. *. sin (t *. 2. *. Float.pi))
              +. Dist.sample (Dist.Normal { mean = 0.; std = 1.5 }) rng)
            times
        in
        [ Splash.Timeseries (Series.create ~times ~values) ]);
  }

(* Model 2 — behaviour: cold days push people indoors, raising effective
   contact intensity. Consumes the (auto-aligned) daily temperature. *)
let behaviour_model =
  {
    Splash.name = "behaviour";
    description = "daily indoor-crowding multiplier from temperature";
    inputs = [ "temperature" ];
    outputs = [ "crowding" ];
    run =
      (fun _ inputs ->
        match inputs with
        | [ Splash.Timeseries temp ] ->
          let crowding =
            Series.map_values
              (fun celsius -> 1. +. (0.6 /. (1. +. exp ((celsius -. 8.) /. 3.))))
              temp
          in
          [ Splash.Timeseries crowding ]
        | _ -> failwith "behaviour: expected a temperature series");
  }

(* Model 3 — health: the Indemics engine, with daily transmission scaled
   by the crowding index. *)
let health_model =
  {
    Splash.name = "health";
    description = "contact-network epidemic driven by crowding";
    inputs = [ "crowding" ];
    outputs = [ "attack_rate"; "peak_infectious" ];
    run =
      (fun rng inputs ->
        match inputs with
        | [ Splash.Timeseries crowding ] ->
          let network =
            Network.synthetic
              ~seed:(Mde.Prob.Rng.int rng 1_000_000)
              ~n:3_000 ~community_degree:4. ()
          in
          let engine =
            Indemics.create
              ~seed:(Mde.Prob.Rng.int rng 1_000_000)
              network
              { Indemics.default_params with transmission_rate = 0.016 }
          in
          (* Crowding modulates exposure: a heavily indoor day (index above
             1.35) counts as a double-exposure day, approximating the
             roughly doubled contact hours of winter crowding. *)
          let values = Series.values crowding in
          let peak = ref 0 in
          for d = 0 to days - 1 do
            ignore (Indemics.step_day engine);
            if values.(min d (Array.length values - 1)) > 1.35 then
              ignore (Indemics.step_day engine);
            peak := max !peak (Network.count_health network Network.Infectious)
          done;
          let final =
            let r = Network.count_health network Network.Recovered in
            let e = Network.count_health network Network.Exposed in
            let i = Network.count_health network Network.Infectious in
            float_of_int (r + e + i) /. 3_000.
          in
          [ Splash.Number final; Splash.Number (float_of_int !peak) ]
        | _ -> failwith "health: expected a crowding series");
  }

let () =
  (* Register the models with their clocks; the registry inserts the
     hourly→daily alignment automatically. *)
  let registry = Registry.create () in
  let meta name ?(step = None) inputs outputs =
    {
      Registry.model_name = name;
      description = name;
      inputs;
      outputs;
      time_step = step;
      mean_run_cost = None;
      output_variance = None;
    }
  in
  Registry.register_model registry
    (meta "weather" ~step:(Some (1. /. 24.)) [] [ "temperature" ])
    weather_model;
  Registry.register_model registry
    (meta "behaviour" ~step:(Some 1.) [ "temperature" ] [ "crowding" ])
    behaviour_model;
  Registry.register_model registry
    (meta "health" ~step:(Some 1.) [ "crowding" ] [ "attack_rate"; "peak_infectious" ])
    health_model;
  Format.printf "time-step mismatch weather->behaviour detected: %b@."
    (Registry.time_step_mismatch registry ~source:"weather" ~target:"behaviour");
  let composite =
    Registry.compose registry ~name:"wellbeing"
      ~model_names:[ "weather"; "behaviour"; "health" ]
  in
  Format.printf "execution order: %s@.@."
    (String.concat " -> " (Splash.execution_order composite));
  (* Monte Carlo over the whole composite. *)
  let rng = Rng.create ~seed:7 () in
  let attack_rates =
    Splash.monte_carlo composite rng ~inputs:[] ~reps:12 ~query:(fun outputs ->
        match List.assoc "attack_rate" outputs with
        | Splash.Number a -> a
        | _ -> nan)
  in
  Format.printf "attack rate over %d composite Monte Carlo replications:@."
    (Array.length attack_rates);
  Format.printf "  mean %.1f%%, sd %.1f%%, min %.1f%%, max %.1f%%@."
    (100. *. Stats.mean attack_rates)
    (100. *. Stats.std attack_rates)
    (100. *. fst (Stats.min_max attack_rates))
    (100. *. snd (Stats.min_max attack_rates));
  Format.printf
    "@.Three disciplines — climate, behaviour, health — composed by data@.";
  Format.printf
    "exchange alone, with the platform reconciling their clocks: the paper's@.";
  Format.printf "composite-modeling vision end to end.@."
