examples/epidemic_intervention.ml: Algebra Array Catalog Expr Format List Mde Query Table Value
