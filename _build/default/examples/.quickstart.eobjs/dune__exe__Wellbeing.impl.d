examples/wellbeing.ml: Array Float Format List Mde String
