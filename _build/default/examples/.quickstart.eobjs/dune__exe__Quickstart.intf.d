examples/quickstart.mli:
