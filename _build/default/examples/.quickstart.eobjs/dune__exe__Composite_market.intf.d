examples/composite_market.mli:
