examples/epidemic_intervention.mli:
