examples/composite_market.ml: Array Float Format List Mde String Sys
