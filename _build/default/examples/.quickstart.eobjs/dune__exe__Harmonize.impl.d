examples/harmonize.ml: Array Expr Float Format Mde String Table Value
