examples/wildfire_assimilation.mli:
