examples/traffic_jam.mli:
