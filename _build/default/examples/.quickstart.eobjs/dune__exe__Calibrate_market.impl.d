examples/calibrate_market.ml: Array Format Mde
