examples/traffic_jam.ml: Array Float Format Mde String
