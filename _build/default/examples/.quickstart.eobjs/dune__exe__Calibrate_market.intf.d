examples/calibrate_market.mli:
