examples/harmonize.mli:
