examples/quickstart.ml: Array Expr Format List Mde Schema Table Value
