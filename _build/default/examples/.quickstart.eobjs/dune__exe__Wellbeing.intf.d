examples/wellbeing.mli:
