examples/wildfire_assimilation.ml: Array Format Mde
