(* Wildfire data assimilation (paper §3.2): a particle filter fuses a
   stochastic fire-spread simulation with noisy temperature-sensor
   readings, tracking the true fire far better than the simulation alone.

   Run with: dune exec examples/wildfire_assimilation.exe *)

module Wildfire = Mde.Assimilate.Wildfire
module Assimilation = Mde.Assimilate.Assimilation

let () =
  let params = Wildfire.default_params ~width:20 ~height:20 in
  Format.printf
    "Tracking a stochastic wildfire on a %dx%d grid with sensors every 4 cells.@."
    params.Wildfire.width params.Wildfire.height;
  Format.printf
    "Error = #cells where the estimate disagrees with the true fire state.@.@.";
  let run proposal name =
    let result =
      Assimilation.run_experiment ~seed:31 ~n_particles:150 ~params
        ~ignition:[ (10, 10) ] ~sensor_spacing:4 ~steps:15 ~proposal ()
    in
    Format.printf "%-22s mean filter error %6.2f   open-loop error %6.2f@." name
      result.Assimilation.mean_filter_error result.Assimilation.mean_open_loop_error;
    result
  in
  let bootstrap = run `Bootstrap "bootstrap proposal:" in
  let _aware = run `Sensor_aware "sensor-aware proposal:" in
  Format.printf "@.Per-step detail (bootstrap proposal):@.";
  Format.printf "%6s %14s %16s %8s@." "step" "filter error" "open-loop error" "ESS";
  Array.iter
    (fun (e : Assimilation.step_error) ->
      Format.printf "%6d %14d %16d %8.1f@." e.Assimilation.step
        e.Assimilation.filter_error e.Assimilation.open_loop_error e.Assimilation.ess)
    bootstrap.Assimilation.errors;
  Format.printf
    "@.The filter corrects the simulation with each sensor reading, so its@.";
  Format.printf
    "error stays bounded while the open-loop simulation drifts from the truth.@."
