(* Quickstart: the Monte Carlo database in ~60 lines.

   We recreate the paper's SBP_DATA example — a stochastic table of blood
   pressures driven by a patients table and a Normal VG function — then
   ask a what-if question with tuple-bundle execution:

     "What fraction of female patients would exceed 140 mmHg systolic?"

   Run with: dune exec examples/quickstart.exe *)

open Mde.Relational
module Mcdb = Mde.Mcdb

let () =
  (* 1. Ordinary (deterministic) relations. *)
  let patients_schema =
    Schema.of_list [ ("pid", Value.Tint); ("gender", Value.Tstring) ]
  in
  let patients =
    Table.create patients_schema
      (List.init 500 (fun i ->
           [| Value.Int i; Value.String (if i mod 2 = 0 then "F" else "M") |]))
  in
  let sbp_param =
    Table.create
      (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
      [ [| Value.Float 120.; Value.Float 15. |] ]
  in
  (* 2. The stochastic table: FOR EACH p IN patients WITH sbp AS
     Normal(SELECT mean, std FROM sbp_param). *)
  let sbp_data =
    Mcdb.Stochastic_table.define ~name:"SBP_DATA"
      ~schema:
        (Schema.of_list
           [ ("pid", Value.Tint); ("gender", Value.Tstring); ("sbp", Value.Tfloat) ])
      ~driver:patients ~vg:Mcdb.Vg.normal
      ~params:(fun _patient -> [ sbp_param ])
      ~combine:(fun patient vg_row -> [| patient.(0); patient.(1); vg_row.(0) |])
  in
  (* 3. Instantiate 1000 Monte Carlo repetitions at once as tuple bundles
     (the query plan below runs once, not 1000 times). *)
  let rng = Mde.Prob.Rng.create ~seed:42 () in
  let bundle = Mcdb.Bundle.of_stochastic_table sbp_data rng ~n_reps:1000 in
  (* 4. The what-if query: σ(gender = F ∧ sbp > 140) → COUNT per rep. *)
  let hypertensive =
    Mcdb.Bundle.select
      Expr.(col "gender" = string "F" && col "sbp" > float 140.)
      bundle
  in
  (match Mcdb.Bundle.aggregate [ ("n", Mcdb.Bundle.Count) ] hypertensive with
  | [ (_, per_agg) ] ->
    let counts = per_agg.(0) in
    let fractions = Array.map (fun c -> c /. 250.) counts in
    let estimate = Mcdb.Estimator.of_samples fractions in
    Format.printf "hypertensive fraction among women: %a@."
      Mcdb.Estimator.pp_estimate estimate;
    Format.printf "theory (P[N(120,15) > 140]):       %.4f@."
      (1. -. Mde.Prob.Special.normal_cdf (20. /. 15.));
    (* Risk-style queries over the same Monte Carlo samples. *)
    Format.printf "95th percentile of the fraction:   %.4f@."
      (Mcdb.Estimator.quantile fractions 0.95);
    let p, (lo, hi) = Mcdb.Estimator.threshold_probability fractions 0.10 in
    Format.printf "P(fraction > 10%%) = %.3f  (95%% CI [%.3f, %.3f])@." p lo hi
  | _ -> assert false)
