(* Calibrating an agent-based model by the method of simulated moments
   (paper §3.1): the Kirman/Alfarano-style herding market generates
   "observed" return moments under a hidden true θ = (a, b); MSM then
   recovers θ by minimizing the generalized distance J(θ) = Gᵀ W G,
   comparing the optimizer back-ends the paper surveys — Nelder-Mead and
   a genetic algorithm (Fabretti [17]), naive random search, and the
   DOE + kriging surrogate of Salle-Yildizoglu [45].

   Run with: dune exec examples/calibrate_market.exe *)

module Market = Mde.Calibrate.Market
module Msm = Mde.Calibrate.Msm
module Rng = Mde.Prob.Rng

let steps = 1500
let burn_in = 300
let n_agents = 50
let noise = 0.002
(* The bistable Kirman regime (a << b/N would be fully bimodal; this sits
   at the intermittent edge): herding bursts leave strong fingerprints in
   kurtosis and |r| clustering, so the moments identify θ. *)
let truth = [| 0.002; 0.3 |] (* a = idiosyncratic switching, b = herding *)

let () =
  Format.printf "True parameters: a=%.3f (switching)  b=%.3f (herding)@.@." truth.(0)
    truth.(1);
  (* "Real-world" data: moment samples simulated at the hidden truth. *)
  let data_rng = Rng.create ~seed:2024 () in
  let observed =
    Array.init 60 (fun _ ->
        Market.simulate_moments ~steps ~burn_in ~n_agents ~noise data_rng truth)
  in
  let problem =
    {
      Msm.simulate_moments = Market.simulate_moments ~steps ~burn_in ~n_agents ~noise;
      observed;
      bounds = [| (0.0005, 0.01); (0.0, 0.5) |];
      replications = 10;
      regularization = None;
    }
  in
  let y = Msm.observed_mean problem in
  Format.printf "observed moments: variance=%.3g kurtosis=%.3f acf|r|=%.3f@.@." y.(0)
    y.(1) y.(2);
  Format.printf "%-20s %10s %10s %8s %14s@." "method" "a-hat" "b-hat" "J" "simulations";
  let show (result : Msm.result) =
    Format.printf "%-20s %10.4f %10.4f %8.3f %14d@." result.Msm.method_name
      result.Msm.theta.(0) result.Msm.theta.(1) result.Msm.j_value
      result.Msm.simulations
  in
  show (Msm.calibrate ~seed:1 problem Msm.Nelder_mead);
  let ga =
    { Mde.Optimize.Genetic.default_params with population = 24; generations = 15 }
  in
  show (Msm.calibrate ~seed:2 problem (Msm.Genetic ga));
  show (Msm.calibrate ~seed:3 problem (Msm.Random_search 120));
  show
    (Msm.calibrate ~seed:4 problem
       (Msm.Kriging_surrogate { design_points = 21; refine = true }));
  Format.printf
    "@.The rugged simulated-J surface traps the local simplex search — the@.";
  Format.printf
    "reason Fabretti [17] reaches for global heuristics. The GA recovers θ@.";
  Format.printf
    "best; the DOE+kriging surrogate of [45] gets close with far fewer@.";
  Format.printf "expensive ABS simulations.@."
