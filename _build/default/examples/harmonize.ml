(* Data harmonization between two models (paper §2.2, the Splash
   pipeline): an upstream climate model emits hourly weather in imperial
   units with its own column names; a downstream epidemiological model
   expects daily metric inputs. Harmonization = a Clio-style schema
   mapping (compiled, not hand-coded) + time alignment, executed at scale
   on the MapReduce substrate.

   Run with: dune exec examples/harmonize.exe *)

open Mde.Relational
module Frame = Mde.Timeseries.Frame
module Series = Mde.Timeseries.Series
module Schema_map = Mde.Timeseries.Schema_map
module Align = Mde.Timeseries.Align
module Mr_align = Mde.Timeseries.Mr_align
module Synthetic = Mde.Timeseries.Synthetic

let () =
  (* 1. The upstream model's output: hourly (°F, mph), 60 days. *)
  let hours = 60 * 24 in
  let times = Series.regular_times ~start:0. ~step:1. ~count:hours in
  let temp_f =
    Synthetic.noisy_observations ~seed:5
      ~f:(fun t -> 68. +. (18. *. sin (t /. 24. *. 2. *. Float.pi)) +. (t /. 200.))
      ~noise:1.5 times
  in
  let wind_mph =
    Synthetic.noisy_observations ~seed:6
      ~f:(fun t -> 8. +. (4. *. sin ((t /. 24. *. 2. *. Float.pi) +. 1.)))
      ~noise:1.0 times
  in
  let upstream =
    Frame.create ~times
      ~columns:
        [ ("TMP_F", Series.values temp_f); ("WND_MPH", Series.values wind_mph) ]
  in
  Format.printf "upstream: %d hourly ticks, columns %s@." (Frame.length upstream)
    (String.concat ", " (Frame.column_names upstream));

  (* 2. Schema mapping (the Clio++ step): rename + unit conversion,
     declared once and compiled to a row transform. *)
  let upstream_table = Frame.to_table upstream in
  let mapping =
    Schema_map.create ~source:(Table.schema upstream_table)
      [
        Schema_map.rename_field "time" ~ty:Value.Tfloat ~from:"time";
        Schema_map.field "temp_c" Value.Tfloat
          Expr.((col "TMP_F" - float 32.) * float (5. /. 9.));
        Schema_map.scale_field "wind_ms" ~from:"WND_MPH" ~factor:0.44704;
      ]
  in
  let metric = Frame.of_table ~time_column:"time" (Schema_map.apply mapping upstream_table) in
  Format.printf "after schema map: columns %s (metric units)@."
    (String.concat ", " (Frame.column_names metric));

  (* 3. Time alignment: the downstream model runs daily. The aligner
     classifies the mismatch and aggregates. *)
  let daily = Series.regular_times ~start:23. ~step:24. ~count:60 in
  let classified = Align.classify (Frame.column metric "temp_c") ~target_times:daily in
  Format.printf "aligner classification: %s@."
    (match classified with
    | Align.Needs_aggregation -> "Needs_aggregation (hourly -> daily)"
    | Align.Needs_interpolation -> "Needs_interpolation"
    | Align.Identical -> "Identical");
  let downstream = Frame.align metric ~target_times:daily in
  Format.printf "downstream frame: %d daily ticks@.@." (Frame.length downstream);
  Format.printf "%8s %10s %10s@." "day" "temp_c" "wind_ms";
  Array.iteri
    (fun i t ->
      if i mod 10 = 0 then
        Format.printf "%8.0f %10.2f %10.2f@." (t /. 24.)
          (Frame.values downstream "temp_c").(i)
          (Frame.values downstream "wind_ms").(i))
    (Frame.times downstream);

  (* 4. The reverse direction at scale: a second consumer needs the daily
     temperature back on a 10-minute grid — cubic interpolation over the
     MapReduce substrate, with shuffle accounting. *)
  let fine = Series.regular_times ~start:30. ~step:(1. /. 6.) ~count:(59 * 24 * 6) in
  let result =
    Mr_align.interpolate ~partitions:12 ~kind:`Cubic
      (Frame.column downstream "temp_c")
      ~target_times:fine
  in
  Format.printf "@.MapReduce re-interpolation: %d target points, %a@."
    (Series.length result.Mr_align.target)
    Mde.Mapred.Job.pp_stats result.Mr_align.interpolation_stats;
  let seq =
    Align.align (Align.Interpolate Align.Cubic)
      (Frame.column downstream "temp_c")
      ~target_times:fine
  in
  let mr_values = Series.values result.Mr_align.target in
  let seq_values = Series.values seq in
  let worst = ref 0. in
  Array.iteri
    (fun i v -> worst := Float.max !worst (Float.abs (v -. seq_values.(i))))
    mr_values;
  Format.printf "max |MR - sequential| = %.2e (identical pipelines)@." !worst
