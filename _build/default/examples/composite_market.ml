(* Splash-style composite modelling + run optimization (paper §2.2-2.3):

   A demand model produces an intensity time series on an hourly clock; a
   queueing model consumes it on a four-hour clock, so the composition
   inserts an automatic time-alignment transform. We then treat the pair
   as the paper's two-model series M1 → M2, estimate the statistics
   (c1, c2, V1, V2) with pilot runs, choose the optimal replication
   fraction alpha*, and estimate E[mean wait] under a computing budget
   with result caching.

   Run with: dune exec examples/composite_market.exe *)

module Splash = Mde.Composite.Splash
module Rc = Mde.Composite.Result_cache
module Series = Mde.Timeseries.Series
module Dist = Mde.Prob.Dist
module Rng = Mde.Prob.Rng

(* M1: hourly arrival-intensity series with day/night shape and noise.
   Padded with busy-work to make it the expensive model. *)
let demand_series rng =
  let times = Series.regular_times ~start:0. ~step:1. ~count:48 in
  let burn = ref 0. in
  for i = 1 to 40_000 do
    burn := !burn +. sin (float_of_int i)
  done;
  ignore !burn;
  let values =
    Array.map
      (fun t ->
        let daily = 5. +. (3. *. sin (t /. 24. *. 2. *. Float.pi)) in
        Float.max 0.5 (daily +. Dist.sample (Dist.Normal { mean = 0.; std = 1.0 }) rng))
      times
  in
  Series.create ~times ~values

(* M2: a small single-server queue simulated against the aligned
   intensity; output is the mean wait of the first 200 customers. *)
let queue_wait rng series =
  let service_rate = 9. in
  let wait_sum = ref 0. and served = ref 0 in
  let clock = ref 0. and backlog = ref 0. in
  let values = Series.values series in
  let n = Array.length values in
  while !served < 200 do
    let intensity = values.(Float.to_int !clock mod n) in
    let inter = Dist.sample (Dist.Exponential { rate = Float.max 0.5 intensity }) rng in
    let service = Dist.sample (Dist.Exponential { rate = service_rate }) rng in
    clock := !clock +. inter;
    backlog := Float.max 0. (!backlog -. inter) +. service;
    wait_sum := !wait_sum +. !backlog;
    incr served
  done;
  !wait_sum /. 200.

let demand_model =
  {
    Splash.name = "demand";
    description = "hourly arrival intensities";
    inputs = [];
    outputs = [ "arrivals" ];
    run = (fun rng _ -> [ Splash.Timeseries (demand_series rng) ]);
  }

let queue_model =
  {
    Splash.name = "queue";
    description = "mean customer wait";
    inputs = [ "arrivals" ];
    outputs = [ "mean_wait" ];
    run =
      (fun rng inputs ->
        match inputs with
        | [ Splash.Timeseries s ] -> [ Splash.Number (queue_wait rng s) ]
        | _ -> failwith "queue: expected a timeseries input");
  }

let () =
  (* 1. Compose with an automatic time alignment on the shared dataset. *)
  let four_hourly = Series.regular_times ~start:2. ~step:4. ~count:12 in
  let composite =
    Splash.compose ~name:"demand->queue"
      ~models:[ demand_model; queue_model ]
      ~transforms:[ Splash.time_align_transform ~dataset:"arrivals" ~target_times:four_hourly ]
  in
  Format.printf "Execution order: %s@."
    (String.concat " -> " (Splash.execution_order composite));
  let rng = Rng.create ~seed:77 () in
  let one_run =
    Splash.execute composite rng ~inputs:[]
  in
  (match List.assoc "mean_wait" one_run with
  | Splash.Number w -> Format.printf "single composite run: mean wait = %.4f@.@." w
  | _ -> assert false);
  (* 2. Result caching: pilot-estimate the statistics, pick alpha*. *)
  let two_stage =
    {
      Rc.model1 = demand_series;
      model2 =
        (fun rng series ->
          let aligned, _ = Mde.Timeseries.Align.auto series ~target_times:four_hourly in
          queue_wait rng aligned);
    }
  in
  let pilot = Rc.pilot two_stage rng ~inputs:30 ~outputs_per_input:4 in
  let s = pilot.Rc.statistics in
  Format.printf "pilot statistics: c1=%.2e c2=%.2e V1=%.4f V2=%.4f@." s.Rc.c1 s.Rc.c2
    s.Rc.v1 s.Rc.v2;
  let star = Rc.alpha_star s in
  Format.printf "optimal replication fraction alpha* = %.3f@." star;
  Format.printf "asymptotic efficiency gain g(1)/g(alpha*) = %.2fx@.@."
    (Rc.efficiency_gain s);
  (* 3. Budget-constrained estimation at alpha* vs no caching. *)
  let budget = 500. *. (s.Rc.c1 +. s.Rc.c2) in
  let alpha_used = Float.max 0.05 (Float.min 1. star) in
  let compare_alpha alpha =
    let wall0 = Sys.time () in
    let e = Rc.estimate_under_budget two_stage rng ~budget ~alpha ~stats:s in
    let wall = Sys.time () -. wall0 in
    Format.printf
      "alpha=%.3f: theta=%.4f with n=%d M2-runs, m=%d M1-runs (%.2fs wall)@."
      alpha e.Rc.theta_hat e.Rc.n e.Rc.m wall;
    e
  in
  let cached = compare_alpha alpha_used in
  let uncached = compare_alpha 1.0 in
  Format.printf
    "@.Caching buys %d extra M2 replications under the same budget (%d vs %d).@."
    (cached.Rc.n - uncached.Rc.n) cached.Rc.n uncached.Rc.n
