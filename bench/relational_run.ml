(* The --relational experiment: row algebra vs interpreted vs compiled
   columnar execution of one select/extend/group pipeline, recorded in
   bench/BENCH_relational.json via the shared Mde_relational_bench
   harness (also behind [mde_cli relational-bench]). *)

module B = Mde_relational_bench

let run ?(domains = 1) ?(rows = 200_000) ?(seed = 42) () =
  Util.section "RELATIONAL"
    (Printf.sprintf "unified columnar substrate, %d rows (%d domains)" rows domains);
  let result = B.run ~domains ~rows ~seed () in
  B.print result;
  let path = B.emit ~domains ~seed result in
  Util.note "recorded in %s" path;
  if not result.B.identical then begin
    Util.note "FAIL: the three engines disagree";
    exit 1
  end;
  let speedup = B.speedup_vs_interp result in
  if speedup < 3. then begin
    Util.note "WARNING: kernel speedup %.1fx below the 3x acceptance floor" speedup;
    exit 1
  end;
  (* Packed key codes: the keyed operators against their boxed twins. *)
  let keyed = B.run_keyed ~domains ~rows ~seed () in
  B.print_keyed keyed;
  let path = B.emit_keyed ~domains ~seed keyed in
  Util.note "recorded in %s" path;
  if not keyed.B.kidentical then begin
    Util.note "FAIL: packed and boxed keyed operators disagree";
    exit 1
  end;
  let g = B.op_speedup keyed.B.group_op
  and j = B.op_speedup keyed.B.join_op in
  if g < 2. || j < 2. then begin
    Util.note
      "WARNING: packed keyed speedup below the 2x floor (group %.1fx, join %.1fx)" g j;
    exit 1
  end
