(* The --shard experiment: sharded-vs-single-shard bit-identity plus the
   open-loop overload sweep, recorded in bench/BENCH_serve.json via the
   shared Mde_shard_bench harness (also behind [mde_cli shard-bench]). *)

module S = Mde_shard_bench

let run ?(shards = 2) ?(domains = 1) () =
  Util.section "SHARD"
    (Printf.sprintf
       "sharded serving front: %d shards, open-loop overload sweep (%d domains)" shards
       domains);
  let result = S.run ~domains ~shards ~seed:7 () in
  S.print result;
  let path = S.emit result in
  Util.note "recorded in %s" path;
  match S.gate result with
  | Ok () -> ()
  | Error msg ->
    Util.note "FAIL: %s" msg;
    exit 1
