(* The --session experiment: the progressive-session planner race
   (GenIE-style explorer vs round-robin) plus the converged-session
   bit-identity pass, recorded in bench/BENCH_session.json via the
   shared Mde_session_bench harness (also behind [mde_cli
   session-bench]). *)

module S = Mde_session_bench

let run ?(tick_reps = 64) () =
  Util.section "SESSION"
    (Printf.sprintf
       "progressive-refinement sessions: explorer vs round-robin, %d reps per tick"
       tick_reps);
  let result = S.run ~tick_reps ~seed:11 () in
  S.print result;
  let path = S.emit result in
  Util.note "recorded in %s" path;
  match S.gate result with
  | Ok () -> ()
  | Error msg ->
    Util.note "FAIL: %s" msg;
    exit 1
