module Serve = Mde.Serve
module Session = Serve.Session
module Server = Serve.Server
module Emit = Mde_bench_emit

type curve_point = { tick : int; spent : int; mean_hw : float }

type planner_run = {
  planner : string;
  reps_to_target : int option;
  total_reps : int;
  curve : curve_point list;
}

type result = {
  rows : int;
  seed : int;
  tick_reps : int;
  impl : Mde.Relational.Impl.t;
  tau : float;
  explore : planner_run;
  round_robin : planner_run;
  compared : int;
  mismatches : int;
  reused_reps : int;
}

(* The exploration workload: four cheap low-variance walks next to one
   hot high-variance walk (variance of a [steps]-step U(-0.5,0.5) walk
   is steps/12). A uniform planner waters the cheap handles long after
   their CIs stopped mattering; the explorer shifts budget to the hot
   one — the σ^(2/3) allocation, worth ~1.6x here in reps-to-target. *)
let gate_requests ~seed =
  List.init 4 (fun i ->
      {
        Server.model = "walk";
        kind = Server.Chain_mean { steps = 4; reps = 64 };
        seed = seed + i;
        deadline = None;
      })
  @ [
      {
        Server.model = "walk";
        kind = Server.Chain_mean { steps = 512; reps = 2048 };
        seed = seed + 100;
        deadline = None;
      };
    ]

let config ~tick_reps = { Session.default_config with Session.tick_reps }

(* Mean CI half width across the gate handles, once every one has an
   estimate. *)
let mean_hw session handles =
  let hws =
    List.filter_map
      (fun h ->
        Session.estimate session h
        |> Option.map (fun u -> u.Session.half_width))
      handles
  in
  if List.length hws < List.length handles then None
  else Some (List.fold_left ( +. ) 0. hws /. float_of_int (List.length hws))

(* Both planners start from the identical warm-up state (one min_batch
   per handle — exactly what one round-robin cycle allocates), so the
   target τ is derived once, from that state, and is the same constant
   for both runs. *)
let derive_tau target ~seed =
  let session =
    Session.create ~planner:Session.Round_robin
      ~config:(config ~tick_reps:(5 * Session.default_config.Session.min_batch))
      target
  in
  let handles = List.map (Session.open_query session) (gate_requests ~seed) in
  ignore (Session.tick session);
  match mean_hw session handles with
  | Some hw -> hw /. 2.5
  | None -> invalid_arg "Mde_session_bench: warm-up produced no estimates"

let measure target ~planner ~name ~tau ~tick_reps ~seed =
  let session = Session.create ~planner ~config:(config ~tick_reps) target in
  let handles = List.map (Session.open_query session) (gate_requests ~seed) in
  let curve = ref [] and reached = ref None in
  let spent = ref 0 and tick_no = ref 0 and running = ref true in
  while !running do
    incr tick_no;
    ignore (Session.tick session);
    let st = Session.stats session in
    spent := st.Session.fresh_reps + st.Session.reused_reps;
    (match mean_hw session handles with
    | Some hw ->
      curve := { tick = !tick_no; spent = !spent; mean_hw = hw } :: !curve;
      if hw <= tau && !reached = None then reached := Some !spent
    | None -> ());
    let converged =
      List.for_all
        (fun h ->
          match Session.estimate session h with
          | Some u -> u.Session.converged
          | None -> false)
        handles
    in
    if !reached <> None || converged || !tick_no >= 1000 then running := false
  done;
  { planner = name; reps_to_target = !reached; total_reps = !spent; curve = List.rev !curve }

let bits = Int64.bits_of_float

(* Bit-identity pass: one handle per query kind (plus a key-mate pair
   exercising cached-pilot reuse), driven to convergence, then each
   request re-served one-shot on a fresh identically-registered server
   — the converged session must hold exactly the one-shot bits. *)
let identity ?pool ?impl ~rows ~seed () =
  let session_server = Serve.Demo.server ?pool ?impl ~rows () in
  let target = Serve.Target.of_server session_server in
  let requests =
    [
      { Server.model = "sbp"; kind = Server.Mcdb_mean { reps = 32 }; seed; deadline = None };
      (* same refinement key as above: adopts its cached replications *)
      { Server.model = "sbp"; kind = Server.Mcdb_mean { reps = 16 }; seed; deadline = None };
      {
        Server.model = "sbp_bundle";
        kind = Server.Mcdb_tail { reps = 64; p = 0.9 };
        seed = seed + 1;
        deadline = None;
      };
      {
        Server.model = "walk";
        kind = Server.Chain_mean { steps = 8; reps = 24 };
        seed = seed + 2;
        deadline = None;
      };
      {
        Server.model = "queue";
        kind = Server.Composite_estimate { n = 64; alpha = 0.25 };
        seed = seed + 3;
        deadline = None;
      };
    ]
  in
  let session = Session.create ~config:(config ~tick_reps:32) target in
  let handles = List.map (Session.open_query session) requests in
  let finals = Session.drive session in
  let final_of h =
    List.find_opt (fun u -> u.Session.id = Session.id h) finals
  in
  let oneshot = Serve.Demo.server ?pool ?impl ~rows () in
  let compared = ref 0 and mismatches = ref 0 in
  List.iter2
    (fun request h ->
      match (Server.serve oneshot request, final_of h) with
      | `Served resp, Some u ->
        incr compared;
        let same_value = bits u.Session.value = bits resp.Server.value in
        let same_ci = u.Session.ci95 = resp.Server.ci95 in
        if not (same_value && same_ci) then incr mismatches
      | _ -> incr mismatches)
    requests handles;
  (!compared, !mismatches, (Session.stats session).Session.reused_reps)

let run ?(domains = 1) ?(rows = 60) ?(impl = (`Kernel : Mde.Relational.Impl.t))
    ?(tick_reps = 64) ~seed () =
  if domains < 1 || rows < 1 || tick_reps < 1 then
    invalid_arg "Mde_session_bench.run: sizes must be positive";
  let with_pool f =
    if domains > 1 then Mde.Par.Pool.with_pool ~domains (fun pool -> f (Some pool))
    else f None
  in
  with_pool @@ fun pool ->
  let fresh_target () =
    Serve.Target.of_server (Serve.Demo.server ?pool ~impl ~rows ())
  in
  let tau = derive_tau (fresh_target ()) ~seed in
  let explore =
    measure (fresh_target ()) ~planner:Session.Explore ~name:"explore" ~tau
      ~tick_reps ~seed
  in
  let round_robin =
    measure (fresh_target ()) ~planner:Session.Round_robin ~name:"round-robin" ~tau
      ~tick_reps ~seed
  in
  let compared, mismatches, reused_reps = identity ?pool ~impl ~rows ~seed () in
  {
    rows;
    seed;
    tick_reps;
    impl;
    tau;
    explore;
    round_robin;
    compared;
    mismatches;
    reused_reps;
  }

let identical r = r.compared > 0 && r.mismatches = 0

let advantage r =
  match (r.explore.reps_to_target, r.round_robin.reps_to_target) with
  | Some e, Some u when e > 0 -> Some (float_of_int u /. float_of_int e)
  | _ -> None

let gate r =
  if not (identical r) then
    Error
      (Printf.sprintf "converged sessions vs one-shot serves: %d mismatches over %d"
         r.mismatches r.compared)
  else if r.reused_reps = 0 then
    Error "key-mate handle adopted no cached replications: reuse never engaged"
  else
    match advantage r with
    | None -> Error "a planner never reached the target half width"
    | Some ratio when ratio >= 1.2 -> Ok ()
    | Some ratio ->
      Error
        (Printf.sprintf
           "explorer advantage %.2fx below the 1.2x gate (explore %d vs round-robin \
            %d reps)"
           ratio
           (Option.value ~default:0 r.explore.reps_to_target)
           (Option.value ~default:0 r.round_robin.reps_to_target))

let print r =
  Printf.printf
    "session-bench: 4 cold + 1 hot progressive chain queries, tick budget %d reps \
     (%s engine, %d rows)\n"
    r.tick_reps
    (Mde.Relational.Impl.to_string r.impl)
    r.rows;
  Printf.printf "target mean CI half width: %.4f (warm-up mean / 2.5)\n\n" r.tau;
  let line p =
    Printf.printf "  %-12s %6s reps to target  (%d ticks, %d reps total)\n" p.planner
      (match p.reps_to_target with Some n -> string_of_int n | None -> "-")
      (List.length p.curve) p.total_reps
  in
  line r.explore;
  line r.round_robin;
  (match advantage r with
  | Some ratio -> Printf.printf "\n  explorer advantage: %.2fx fewer reps\n" ratio
  | None -> Printf.printf "\n  explorer advantage: unavailable\n");
  if identical r then
    Printf.printf
      "converged sessions vs one-shot serves: bit-identical over %d requests (%d \
       reps adopted from cache)\n"
      r.compared r.reused_reps
  else
    Printf.printf "converged sessions vs one-shot serves: %d MISMATCHES over %d\n"
      r.mismatches r.compared

let emit r =
  let curve p =
    "["
    ^ String.concat ", "
        (List.map
           (fun c ->
             Printf.sprintf "{\"tick\": %d, \"spent_reps\": %d, \"mean_halfwidth\": %s}"
               c.tick c.spent (Emit.json_float c.mean_hw))
           p.curve)
    ^ "]"
  in
  Emit.append ~file:"BENCH_session.json" ~name:"session-explore"
    [
      ("rows", Emit.Int r.rows);
      ("seed", Int r.seed);
      ("tick_reps", Int r.tick_reps);
      ("impl", Str (Mde.Relational.Impl.to_string r.impl));
      ("tau_halfwidth", Float r.tau);
      ( "explore_reps_to_target",
        match r.explore.reps_to_target with Some n -> Int n | None -> Json "null" );
      ( "round_robin_reps_to_target",
        match r.round_robin.reps_to_target with Some n -> Int n | None -> Json "null" );
      ( "explorer_advantage",
        match advantage r with Some x -> Float x | None -> Json "null" );
      ("compared", Int r.compared);
      ("identical_output", Bool (identical r));
      ("reused_reps", Int r.reused_reps);
      ("explore_curve", Json (curve r.explore));
      ("round_robin_curve", Json (curve r.round_robin));
    ]
