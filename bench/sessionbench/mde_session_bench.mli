(** The progressive-session experiment, shared by [bench/main -- --session]
    and [mde_cli session-bench] so both record the same run.

    Three phases over the serving demo models ({!Mde.Serve.Demo}):

    - {e warm-up / calibration}: a throwaway round-robin session brings
      every gate handle to one [min_batch] of replications — the state
      both planners pass through identically — and the target CI half
      width τ is set to the mean half width there divided by 2.5.
    - {e planner race}: the gate workload (four cheap low-variance
      random-walk queries next to one hot high-variance one) is run
      once under the GenIE-style {!Mde.Serve.Session.Explore} planner
      and once under {!Mde.Serve.Session.Round_robin}, each on a fresh
      server, ticking until the mean half width over the handles
      reaches τ. The replications each planner spent to get there — and
      the full per-tick (spent, half-width) refinement curves — are
      recorded; the gate requires the explorer to need ≥1.2x fewer.
    - {e bit-identity}: a session with one handle per query kind (plus
      a same-key pair exercising cached-pilot reuse) is driven to
      convergence and every final estimate is compared bit for bit
      against a one-shot serve of the same request on a fresh server —
      the session abstraction must cost nothing in answer fidelity.

    Results append to [bench/BENCH_session.json] as the
    ["session-explore"] entry. *)

type curve_point = {
  tick : int;
  spent : int;  (** cumulative replications allocated after this tick *)
  mean_hw : float;  (** mean CI half width over the gate handles *)
}

type planner_run = {
  planner : string;
  reps_to_target : int option;  (** spend when mean half width first ≤ τ *)
  total_reps : int;
  curve : curve_point list;  (** tick order *)
}

type result = {
  rows : int;
  seed : int;
  tick_reps : int;
  impl : Mde.Relational.Impl.t;  (** bundle-plan engine used by the servers *)
  tau : float;  (** target mean CI half width *)
  explore : planner_run;
  round_robin : planner_run;
  compared : int;  (** (session, one-shot) estimate pairs compared *)
  mismatches : int;
  reused_reps : int;  (** replications the key-mate handle adopted from cache *)
}

val run :
  ?domains:int ->
  ?rows:int ->
  ?impl:Mde.Relational.Impl.t ->
  ?tick_reps:int ->
  seed:int ->
  unit ->
  result
(** Execute all three phases. Defaults: [domains = 1], [rows = 60],
    [impl = `Kernel], [tick_reps = 64]. Raises [Invalid_argument] on
    non-positive sizes. *)

val identical : result -> bool
(** At least one pair compared and no mismatches. *)

val advantage : result -> float option
(** Round-robin reps-to-target over explorer reps-to-target; [None] if
    either planner never reached τ. *)

val gate : result -> (unit, string) Result.t
(** The acceptance gate shared by the bench harness and CI smoke:
    {!identical}, cached-pilot reuse engaged ([reused_reps > 0]), and
    {!advantage} ≥ 1.2. [Error] carries a one-line reason. *)

val print : result -> unit
(** Human-readable phase summaries, to stdout. *)

val emit : result -> string
(** Append the ["session-explore"] entry (params, τ, both planners'
    reps-to-target and refinement curves as nested JSON arrays, the
    identity verdict) to [bench/BENCH_session.json]; returns the path
    written. *)
