type field = Int of int | Float of float | Bool of bool | Str of string | Json of string

(* JSON has no nan/inf literals: an unserved percentile (nan) or an
   empty-window throughput (inf) must become null, not an invalid
   token that corrupts the whole BENCH_*.json array. Exposed so callers
   assembling raw [Json] values (e.g. latency-under-load curves) share
   the same guard instead of reinventing it wrong. *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let render_value = function
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Bool b -> string_of_bool b
  | Str s -> Printf.sprintf "%S" s
  | Json s -> s

let render_entry fields =
  Printf.sprintf "  {%s}"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k (render_value v)) fields))

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown")
  with _ -> "unknown"

let resolve file =
  if Filename.is_implicit file && Sys.file_exists "bench" && Sys.is_directory "bench"
  then Filename.concat "bench" file
  else file

let append ~file ~name fields =
  let entry =
    render_entry
      (("timestamp", Int (int_of_float (Unix.time ())))
      :: ("benchmark", Str name)
      :: ("git", Str (git_describe ()))
      :: fields)
  in
  let path = resolve file in
  (* The file is a JSON array, appended to on every run so the metric
     trajectory accumulates across commits. *)
  let previous =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match String.rindex_opt s ']' with
      | Some i -> Some (String.trim (String.sub s 0 i))
      | None -> None
    end
    else None
  in
  let body =
    match previous with
    | Some prefix when String.length prefix > 1 -> prefix ^ ",\n" ^ entry ^ "\n]\n"
    | _ -> "[\n" ^ entry ^ "\n]\n"
  in
  let oc = open_out_bin path in
  output_string oc body;
  close_out oc;
  path
