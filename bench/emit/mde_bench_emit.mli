(** The one JSON-lines benchmark emitter shared by every harness that
    records results (bench/BENCH_par.json, bench/BENCH_serve.json, ...).

    Each target file is a JSON array appended to in place on every run,
    so trajectories accumulate across commits. Every entry carries the
    common schema fields — [timestamp] (epoch seconds), [benchmark]
    (the run name) and [git] (git-describe, or "unknown" outside a
    checkout) — followed by the caller's params and metrics in order. *)

type field = Int of int | Float of float | Bool of bool | Str of string | Json of string
(** [Json s] is emitted verbatim — the caller guarantees [s] is a valid
    JSON value (e.g. an {!Mde_obs.Export.json} snapshot attached as a
    nested object). *)

val git_describe : unit -> string
(** [git describe --always --dirty], or ["unknown"] when git or the
    repository is unavailable. *)

val append : file:string -> name:string -> (string * field) list -> string
(** [append ~file ~name fields] appends one entry to [file] (resolved
    under [bench/] when that directory exists, mirroring where the
    harnesses write from the repo root) and returns the path written. *)
