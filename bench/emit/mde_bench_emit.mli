(** The one JSON-lines benchmark emitter shared by every harness that
    records results (bench/BENCH_par.json, bench/BENCH_serve.json, ...).

    Each target file is a JSON array appended to in place on every run,
    so trajectories accumulate across commits. Every entry carries the
    common schema fields — [timestamp] (epoch seconds), [benchmark]
    (the run name) and [git] (git-describe, or "unknown" outside a
    checkout) — followed by the caller's params and metrics in order. *)

type field = Int of int | Float of float | Bool of bool | Str of string | Json of string
(** [Json s] is emitted verbatim — the caller guarantees [s] is a valid
    JSON value (e.g. an {!Mde_obs.Export.json} snapshot attached as a
    nested object). *)

val json_float : float -> string
(** Render one float as a JSON number — or [null] when it is not finite,
    because JSON has no nan/inf literals and a single bare [nan] token
    invalidates the whole accumulated array. This is the exact rendering
    the [Float] field case uses; callers assembling raw {!field.Json}
    values must use it for any float that could be non-finite (e.g.
    percentiles over an empty served set). *)

val git_describe : unit -> string
(** [git describe --always --dirty], or ["unknown"] when git or the
    repository is unavailable. *)

val append : file:string -> name:string -> (string * field) list -> string
(** [append ~file ~name fields] appends one entry to [file] (resolved
    under [bench/] when that directory exists, mirroring where the
    harnesses write from the repo root) and returns the path written. *)
