(* The experiment harness: regenerates every figure, algorithm and
   quantitative claim indexed in DESIGN.md / EXPERIMENTS.md.

     dune exec bench/main.exe            -- run every experiment
     dune exec bench/main.exe -- --list  -- list experiment ids
     dune exec bench/main.exe -- fig2 alg1
     dune exec bench/main.exe -- --perf  -- Bechamel microbenchmarks *)

let experiments : (string * string * (unit -> unit)) list =
  Figures.all @ Data_intensive.all @ Integration.all @ Metamodeling.all
  @ Ablations.all

let list_experiments () =
  Format.printf "available experiments:@.";
  List.iter (fun (id, desc, _) -> Format.printf "  %-8s %s@." id desc) experiments;
  Format.printf "  %-8s %s@." "--perf" "Bechamel microbenchmarks";
  Format.printf "  %-8s %s@." "--domains N"
    "sequential vs N-domain Monte Carlo replication wall time";
  Format.printf "  %-8s %s@." "--par [N]"
    "small-N pool smoke: asserts the domains=1 overhead gate (default N=1)";
  Format.printf "  %-8s %s@." "--serve [N]"
    "Zipf workload against the serving layer (optional domain count)";
  Format.printf "  %-8s %s@." "--bundle [rows reps]"
    "naive vs interpreted vs columnar tuple-bundle execution";
  Format.printf "  %-8s %s@." "--relational [rows [domains]]"
    "row algebra vs interpreted vs compiled columnar relational pipeline, plus \
     packed-vs-boxed keyed operators (pooled when domains > 1)";
  Format.printf "  %-8s %s@." "--shard [N]"
    "sharded serving front: bit-identity vs single shard + open-loop overload sweep";
  Format.printf "  %-8s %s@." "--session [N]"
    "progressive-refinement sessions: explorer vs round-robin (optional tick budget)"

let run_one id =
  match List.find_opt (fun (eid, _, _) -> eid = id) experiments with
  | Some (_, _, fn) ->
    let (), elapsed = Util.time_it fn in
    Format.printf "@.  [%s completed in %.1fs]@." id elapsed
  | None ->
    Format.eprintf "unknown experiment %S (use --list)@." id;
    exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] -> list_experiments ()
  | [ "--perf" ] -> Perf.run ()
  | [ "--domains"; n ] -> (
    match int_of_string_opt n with
    | Some domains when domains >= 1 -> Perf.run_parallel ~domains ()
    | _ ->
      Format.eprintf "--domains expects a positive integer, got %S@." n;
      exit 1)
  | [ "--par" ] -> Perf.run_parallel ~reps:120 ~domains:1 ()
  | [ "--par"; n ] -> (
    match int_of_string_opt n with
    | Some domains when domains >= 1 -> Perf.run_parallel ~reps:120 ~domains ()
    | _ ->
      Format.eprintf "--par expects a positive integer domain count, got %S@." n;
      exit 1)
  | [ "--bundle" ] -> Bundle_run.run ()
  | [ "--bundle"; rows; reps ] -> (
    match (int_of_string_opt rows, int_of_string_opt reps) with
    | Some rows, Some reps when rows >= 1 && reps >= 2 ->
      Bundle_run.run ~rows ~reps ()
    | _ ->
      Format.eprintf "--bundle expects positive integers ROWS REPS (reps >= 2)@.";
      exit 1)
  | [ "--relational" ] -> Relational_run.run ()
  | [ "--relational"; rows ] -> (
    match int_of_string_opt rows with
    | Some rows when rows >= 1 -> Relational_run.run ~rows ()
    | _ ->
      Format.eprintf "--relational expects a positive integer row count, got %S@." rows;
      exit 1)
  | [ "--relational"; rows; domains ] -> (
    match (int_of_string_opt rows, int_of_string_opt domains) with
    | Some rows, Some domains when rows >= 1 && domains >= 1 ->
      Relational_run.run ~domains ~rows ()
    | _ ->
      Format.eprintf "--relational expects positive integers ROWS [DOMAINS]@.";
      exit 1)
  | [ "--shard" ] -> Shard_run.run ()
  | [ "--shard"; n ] -> (
    match int_of_string_opt n with
    | Some shards when shards >= 1 -> Shard_run.run ~shards ()
    | _ ->
      Format.eprintf "--shard expects a positive integer shard count, got %S@." n;
      exit 1)
  | [ "--session" ] -> Session_run.run ()
  | [ "--session"; n ] -> (
    match int_of_string_opt n with
    | Some tick_reps when tick_reps >= 1 -> Session_run.run ~tick_reps ()
    | _ ->
      Format.eprintf "--session expects a positive integer tick budget, got %S@." n;
      exit 1)
  | [ "--serve" ] -> Serve_bench.run ~domains:1 ()
  | [ "--serve"; n ] -> (
    match int_of_string_opt n with
    | Some domains when domains >= 1 -> Serve_bench.run ~domains ()
    | _ ->
      Format.eprintf "--serve expects a positive integer domain count, got %S@." n;
      exit 1)
  | [] ->
    Format.printf
      "Model-data ecosystems: reproducing every figure and experiment of@.";
    Format.printf "Haas, \"Model-Data Ecosystems\" (PODS 2014). See EXPERIMENTS.md.@.";
    List.iter (fun (id, _, _) -> run_one id) experiments
  | ids -> List.iter run_one ids
