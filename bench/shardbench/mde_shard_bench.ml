module Serve = Mde.Serve
module W = Serve.Workload
module Emit = Mde_bench_emit

type point = { offered_rate : float; report : W.open_report }

type result = {
  shards : int;
  domains : int;
  rows : int;
  catalog : int;
  arrivals : int;
  queue : int;
  zipf : float;
  seed : int;
  compared : int;
  mismatches : int;
  capacity_rps : float;
  points : point list;
}

(* 8x the measured paired-pass capacity overshoots even a generous
   estimate of the front's true capacity, so the top sweep point is
   overloaded by construction and the shed gate below is machine-speed
   independent. *)
let default_multipliers = [ 0.5; 1.0; 2.0; 8.0 ]

let responses_identical (a : Serve.Server.response) (b : Serve.Server.response) =
  a.Serve.Server.value = b.Serve.Server.value
  && a.Serve.Server.ci95 = b.Serve.Server.ci95
  && a.Serve.Server.reps_executed = b.Serve.Server.reps_executed

let run ?(domains = 1) ?(shards = 2) ?(rows = 60) ?(catalog = 16) ?(arrivals = 160)
    ?(queue = 8) ?(zipf = 1.1) ?(rates = []) ~seed () =
  if domains < 1 || shards < 1 || rows < 1 || catalog < 1 || arrivals < 1 || queue < 1
  then invalid_arg "Mde_shard_bench.run: sizes must be positive";
  if List.exists (fun r -> not (r > 0.)) rates then
    invalid_arg "Mde_shard_bench.run: rates must be positive";
  let clock = Unix.gettimeofday in
  let with_pool f =
    if domains > 1 then Mde.Par.Pool.with_pool ~domains (fun pool -> f (Some pool))
    else f None
  in
  with_pool @@ fun pool ->
  let templates = Serve.Demo.catalog catalog in
  (* Phase 1 — bit-identity + capacity. The same Zipf-sampled sequence
     (repeats exercise both sides' caches) is served request-by-request
     through a single-shard server and the front; serve drains
     immediately, so queues never fill and nothing is shed. *)
  let picks =
    let cdf = W.zipf_cdf ~s:zipf ~n:catalog in
    let rng = Mde.Prob.Rng.create ~seed:(seed + 17) () in
    Array.init arrivals (fun _ -> W.zipf_sample rng cdf)
  in
  let single = Serve.Demo.server ?pool ~clock ~rows () in
  let front = Serve.Demo.front ?pool ~clock ~rows ~shards () in
  let compared = ref 0 and mismatches = ref 0 in
  let t0 = clock () in
  Array.iter
    (fun rank ->
      let request = templates.(rank) in
      match (Serve.Server.serve single request, Serve.Shard.serve front request) with
      | `Served a, `Served b ->
        incr compared;
        if not (responses_identical a b) then incr mismatches
      | (`Rejected | `Served _), (`Shed _ | `Served _) -> ())
    picks;
  let elapsed = clock () -. t0 in
  ignore (Serve.Shard.shutdown front);
  let capacity_rps =
    if elapsed > 0. then float_of_int arrivals /. elapsed else infinity
  in
  (* Phase 2 — the open-loop sweep, a fresh cold front per point so the
     points are comparable. Small per-shard queues keep the shed
     threshold low and p99 structurally bounded under overload. *)
  let rates =
    match rates with
    | [] -> List.map (fun m -> m *. capacity_rps) default_multipliers
    | explicit -> explicit
  in
  let sweep_catalog =
    Array.map
      (fun (r : Serve.Server.request) ->
        if r.Serve.Server.model = "sbp_bundle" then
          { r with Serve.Server.model = "sbp_any" }
        else r)
      templates
  in
  let scheduler = { Serve.Scheduler.default_config with queue_capacity = queue } in
  let points =
    List.map
      (fun rate ->
        let front = Serve.Demo.front ?pool ~clock ~rows ~scheduler ~shards () in
        let report, _ =
          W.run_open ~clock (Serve.Target.of_shard front) ~catalog:sweep_catalog
            { W.arrivals; rate; zipf_s = zipf; seed }
        in
        ignore (Serve.Shard.shutdown front);
        { offered_rate = rate; report })
      rates
  in
  {
    shards;
    domains;
    rows;
    catalog;
    arrivals;
    queue;
    zipf;
    seed;
    compared = !compared;
    mismatches = !mismatches;
    capacity_rps;
    points;
  }

let identical r = r.compared > 0 && r.mismatches = 0
let shed_engaged r = List.exists (fun p -> p.report.W.shed > 0) r.points

let gate r =
  if not (identical r) then
    Error
      (Printf.sprintf "sharded vs single-shard: %d mismatches over %d compared"
         r.mismatches r.compared)
  else
    match List.rev r.points with
    | [] -> Error "no sweep points"
    | top :: _ ->
      (* Only the auto-calibrated sweep guarantees the top point is
         overloaded; an explicit --rate run may be pure underload. *)
      if top.offered_rate < 7.9 *. r.capacity_rps then Ok ()
      else if top.report.W.shed = 0 then
        Error "overloaded top rate shed nothing: admission control never engaged"
      else if top.report.W.served = 0 then
        Error "overloaded top rate served nothing: the front sank instead of shedding"
      else if not (Float.is_finite top.report.W.p99) then
        Error "overloaded top rate has non-finite p99 over served requests"
      else Ok ()

let ms v = if Float.is_finite v then Printf.sprintf "%.2f" (1e3 *. v) else "-"

let print r =
  Printf.printf
    "shard-bench: %d shards, %d-template catalog, %d arrivals, queue %d/shard (%d \
     domains)\n"
    r.shards r.catalog r.arrivals r.queue r.domains;
  (if identical r then
     Printf.printf
       "sharded vs single-shard estimates: bit-identical over %d compared requests\n"
       r.compared
   else
     Printf.printf "sharded vs single-shard estimates: %d MISMATCHES over %d compared\n"
       r.mismatches r.compared);
  Printf.printf "paired-pass capacity estimate: %.1f req/s\n\n" r.capacity_rps;
  Printf.printf "%12s %12s %9s %9s %9s %7s %7s\n" "offered" "throughput" "p50" "p95"
    "p99" "served" "shed";
  List.iter
    (fun p ->
      let rep = p.report in
      Printf.printf "%10.1f/s %10.1f/s %7sms %7sms %7sms %7d %7d\n" p.offered_rate
        rep.W.throughput (ms rep.W.p50) (ms rep.W.p95) (ms rep.W.p99) rep.W.served
        rep.W.shed)
    r.points

let emit r =
  (* The curve rides along as one raw Json array; percentiles over an
     all-shed point are nan, which json_float renders as null so the
     accumulated BENCH_serve.json stays parseable. *)
  let curve =
    "["
    ^ String.concat ", "
        (List.map
           (fun p ->
             let rep = p.report in
             Printf.sprintf
               "{\"offered_rps\": %s, \"throughput_rps\": %s, \"served\": %d, \
                \"shed\": %d, \"shed_rate\": %s, \"hits\": %d, \"p50_s\": %s, \
                \"p95_s\": %s, \"p99_s\": %s}"
               (Emit.json_float p.offered_rate)
               (Emit.json_float rep.W.throughput)
               rep.W.served rep.W.shed
               (Emit.json_float rep.W.shed_rate)
               rep.W.hits (Emit.json_float rep.W.p50) (Emit.json_float rep.W.p95)
               (Emit.json_float rep.W.p99))
           r.points)
    ^ "]"
  in
  Emit.append ~file:"BENCH_serve.json" ~name:"shard-openloop"
    [
      ("shards", Emit.Int r.shards);
      ("domains", Int r.domains);
      ("rows", Int r.rows);
      ("catalog", Int r.catalog);
      ("arrivals", Int r.arrivals);
      ("queue_capacity", Int r.queue);
      ("zipf_s", Float r.zipf);
      ("seed", Int r.seed);
      ("capacity_rps", Float r.capacity_rps);
      ("compared", Int r.compared);
      ("identical_output", Bool (identical r));
      ("shed_engaged", Bool (shed_engaged r));
      ("curve", Json curve);
    ]
