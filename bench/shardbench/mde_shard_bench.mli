(** The sharded-serving experiment, shared by [bench/main -- --shard]
    and [mde_cli shard-bench] so both record the same run.

    Two phases over the demo catalog ({!Mde.Serve.Demo}):

    - {e bit-identity}: the same Zipf-sampled request sequence is served
      request-by-request through a single-shard {!Mde.Serve.Server} and
      a [shards]-shard {!Mde.Serve.Shard} front, and every response pair
      is compared bit for bit (value, CI, repetitions) — the front's
      determinism contract, checked live. The timed front pass doubles
      as the capacity estimate the rate sweep calibrates against.
    - {e open-loop sweep}: a fresh front per point (small per-shard
      queues) is driven by {!Mde.Serve.Workload.run_open} at each
      offered rate — by default 0.5x, 1x, 2x and 8x the measured
      capacity, so the top point is deliberately overloaded and typed
      shedding must engage. The latency-under-load curve (throughput,
      p50/p95/p99, shed rate per offered rate) is appended to
      [bench/BENCH_serve.json] as the ["shard-openloop"] entry.

    The sweep catalog reroutes the bundle templates through the
    federated ["sbp_any"] name, so the federation path runs under
    load. *)

type point = {
  offered_rate : float;
  report : Mde.Serve.Workload.open_report;
}

type result = {
  shards : int;
  domains : int;
  rows : int;
  catalog : int;
  arrivals : int;  (** requests in the identity pass and per sweep point *)
  queue : int;  (** per-shard scheduler queue capacity during the sweep *)
  zipf : float;
  seed : int;
  compared : int;  (** response pairs compared in the identity pass *)
  mismatches : int;
  capacity_rps : float;
      (** paired-pass throughput (each request served by {e both}
          targets), so a conservative floor on either target's capacity *)
  points : point list;  (** one per offered rate, sweep order *)
}

val run :
  ?domains:int ->
  ?shards:int ->
  ?rows:int ->
  ?catalog:int ->
  ?arrivals:int ->
  ?queue:int ->
  ?zipf:float ->
  ?rates:float list ->
  seed:int ->
  unit ->
  result
(** Execute both phases. [rates] fixes the swept offered rates
    explicitly (requests per second); the default [[]] sweeps multiples
    of the measured capacity as described above. Defaults:
    [domains = 1], [shards = 2], [rows = 60], [catalog = 16],
    [arrivals = 160], [queue = 8], [zipf = 1.1]. Raises
    [Invalid_argument] on non-positive sizes or rates. *)

val identical : result -> bool
(** At least one pair compared and no mismatches. *)

val shed_engaged : result -> bool
(** Some sweep point shed at least one request. *)

val gate : result -> (unit, string) Result.t
(** The acceptance gate shared by the bench harness and CI smoke:
    {!identical}, and — when the default auto-calibrated sweep ran (so
    the top rate is deliberate overload) — the last point must have
    shed > 0, served > 0 and a finite p99. [Error] carries a one-line
    reason. *)

val print : result -> unit
(** Human-readable phase summaries and the rate-sweep table, to stdout. *)

val emit : result -> string
(** Append the ["shard-openloop"] entry (params, capacity, identity
    verdict, and the curve as a nested JSON array — non-finite floats
    rendered as [null] via {!Mde_bench_emit.json_float}) to
    [bench/BENCH_serve.json]; returns the path written. *)
