(* Bechamel microbenchmarks for the performance-sensitive kernels: one
   Test.make per operation, all run from the single bench executable
   (enable with --perf). *)

open Bechamel
module Instance = Bechamel.Toolkit.Instance
open Mde.Relational
module Rng = Mde.Prob.Rng
module Mcdb = Mde.Mcdb

let bundle_fixture =
  lazy
    (let customers =
       Table.create
         (Schema.of_list [ ("cid", Value.Tint); ("region", Value.Tstring) ])
         (List.init 1_000 (fun idx ->
              [| Value.Int idx; Value.String (if idx mod 2 = 0 then "east" else "west") |]))
     in
     let param =
       Table.create
         (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
         [ [| Value.Float 50.; Value.Float 12. |] ]
     in
     let st =
       Mcdb.Stochastic_table.define ~name:"SALES"
         ~schema:
           (Schema.of_list
              [ ("cid", Value.Tint); ("region", Value.Tstring); ("amount", Value.Tfloat) ])
         ~driver:customers ~vg:Mcdb.Vg.normal
         ~params:(fun _ -> [ param ])
         ~combine:(fun d v -> [| d.(0); d.(1); v.(0) |])
     in
     let rng = Rng.create ~seed:1 () in
     (st, Mcdb.Bundle.of_stochastic_table st rng ~n_reps:50))

let pred = Expr.(col "region" = string "east" && col "amount" > float 60.)

let test_bundle_query =
  Test.make ~name:"mcdb/bundle-query-kernel-50reps"
    (Staged.stage (fun () ->
         let _, bundle = Lazy.force bundle_fixture in
         let selected = Mcdb.Bundle.select pred bundle in
         Mcdb.Bundle.aggregate [ ("s", Mcdb.Bundle.Sum (Expr.col "amount")) ] selected))

(* The same query forced through the interpreter fallback: the per-run
   time and allocation gap to the kernel case is the whole point of the
   columnar engine. *)
let test_bundle_query_interp =
  Test.make ~name:"mcdb/bundle-query-interp-50reps"
    (Staged.stage (fun () ->
         let _, bundle = Lazy.force bundle_fixture in
         let selected = Mcdb.Bundle.select ~impl:`Interpreter pred bundle in
         Mcdb.Bundle.aggregate ~impl:`Interpreter
           [ ("s", Mcdb.Bundle.Sum (Expr.col "amount")) ]
           selected))

let test_naive_query =
  Test.make ~name:"mcdb/naive-query-50reps"
    (Staged.stage (fun () ->
         let st, _ = Lazy.force bundle_fixture in
         let rng = Rng.create ~seed:1 () in
         for _ = 1 to 50 do
           let instance = Mcdb.Stochastic_table.instantiate st rng in
           ignore
             (Algebra.group_by ~keys:[]
                ~aggs:[ ("s", Algebra.Sum (Expr.col "amount")) ]
                (Algebra.select pred instance))
         done))

let join_fixture =
  lazy
    (let rng = Rng.create ~seed:2 () in
     let schema k v = Schema.of_list [ (k, Value.Tint); (v, Value.Tfloat) ] in
     let make k v =
       Table.create (schema k v)
         (List.init 5_000 (fun _ ->
              [| Value.Int (Rng.int rng 1000); Value.Float (Rng.float rng) |]))
     in
     (make "a" "x", make "b" "y"))

let test_hash_join =
  Test.make ~name:"relational/hash-join-5kx5k"
    (Staged.stage (fun () ->
         let left, right = Lazy.force join_fixture in
         Algebra.equi_join ~on:[ ("a", "b") ] left right))

let tridiag_fixture =
  lazy
    (let series = Mde.Timeseries.Synthetic.smooth_signal ~seed:3 ~knots:5_000 ~span:100. () in
     Mde.Timeseries.Spline.system series)

let test_thomas =
  Test.make ~name:"spline/thomas-5k"
    (Staged.stage (fun () ->
         let a, b = Lazy.force tridiag_fixture in
         Mde.Linalg.Tridiag.solve a b))

let test_dsgd_subepochs =
  Test.make ~name:"spline/dsgd-30-subepochs-5k"
    (Staged.stage (fun () ->
         let a, b = Lazy.force tridiag_fixture in
         let problem = Mde.Timeseries.Sgd.of_tridiag a b in
         let rng = Rng.create ~seed:4 () in
         Mde.Timeseries.Sgd.dsgd ~rng
           ~schedule:(Mde.Timeseries.Sgd.Row_normalized 1.0)
           ~sub_epochs:30
           ~strata:(Mde.Timeseries.Sgd.tridiagonal_strata ~dim:problem.Mde.Timeseries.Sgd.dim)
           problem))

let fire_fixture =
  lazy
    (let params = Mde.Assimilate.Wildfire.default_params ~width:32 ~height:32 in
     let state = Mde.Assimilate.Wildfire.ignite params [ (16, 16) ] in
     let rng = Rng.create ~seed:5 () in
     let state = ref state in
     for _ = 1 to 10 do
       state := Mde.Assimilate.Wildfire.step rng !state
     done;
     !state)

let test_wildfire_step =
  Test.make ~name:"wildfire/step-32x32"
    (Staged.stage (fun () ->
         let rng = Rng.create ~seed:6 () in
         Mde.Assimilate.Wildfire.step rng (Lazy.force fire_fixture)))

let gp_fixture =
  lazy
    (let rng = Rng.create ~seed:7 () in
     let design = Array.init 40 (fun _ -> Array.init 2 (fun _ -> Rng.float rng)) in
     let response = Array.map (fun x -> sin (3. *. x.(0)) +. x.(1)) design in
     Mde.Metamodel.Kriging.fit ~theta:[| 5.; 5. |] ~tau2:1. ~design ~response ())

let test_gp_predict =
  Test.make ~name:"kriging/predict-40pts"
    (Staged.stage (fun () ->
         Mde.Metamodel.Kriging.predict (Lazy.force gp_fixture) [| 0.33; 0.77 |]))

let traffic_fixture =
  lazy
    (let rng = Rng.create ~seed:8 () in
     Mde.Abs.Traffic.create Mde.Abs.Traffic.default_params ~density:0.3 rng)

let test_traffic_step =
  Test.make ~name:"traffic/nasch-step-300cells"
    (Staged.stage (fun () -> Mde.Abs.Traffic.step (Lazy.force traffic_fixture)))

let plan_fixture =
  lazy
    (let rng = Rng.create ~seed:9 () in
     let cat = Catalog.create () in
     Catalog.register cat "a"
       (Table.create
          (Schema.of_list [ ("ka", Value.Tint); ("va", Value.Tfloat) ])
          (List.init 5_000 (fun i -> [| Value.Int (i mod 100); Value.Float (Rng.float rng) |])));
     Catalog.register cat "b"
       (Table.create
          (Schema.of_list [ ("kb", Value.Tint); ("vb", Value.Tfloat) ])
          (List.init 200 (fun i -> [| Value.Int (i mod 100); Value.Float (Rng.float rng) |])));
     let plan =
       Plan.select
         Expr.(col "vb" > float 0.9 && col "va" > float 0.5)
         (Plan.join ~on:[ ("ka", "kb") ] (Plan.scan "a") (Plan.scan "b"))
     in
     (cat, plan))

let test_plan_optimize =
  Test.make ~name:"plan/optimize"
    (Staged.stage (fun () ->
         let cat, plan = Lazy.force plan_fixture in
         Plan.optimize cat plan))

let test_plan_execute_optimized =
  Test.make ~name:"plan/execute-optimized"
    (Staged.stage (fun () ->
         let cat, plan = Lazy.force plan_fixture in
         Plan.execute cat (Plan.optimize cat plan)))

let test_mm1 =
  Test.make ~name:"des/mm1-2000-customers"
    (Staged.stage (fun () ->
         Mde.Des.Queueing.simulate
           { Mde.Des.Queueing.arrival_rate = 4.; service_rate = 5.; servers = 1 }
           ~customers:2_000 (Rng.create ~seed:10 ())))

(* --- the domain-parallel replication benchmark (--domains N) --- *)

module Pool = Mde.Par.Pool

let wall_time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* The SBP_DATA shape from the paper, sized so one repetition does real
   work: realize a 500-row stochastic table, then aggregate over it. *)
let replication_fixture () =
  let patients =
    Table.create
      (Schema.of_list [ ("pid", Value.Tint); ("gender", Value.Tstring) ])
      (List.init 500 (fun i ->
           [| Value.Int i; Value.String (if i mod 2 = 0 then "F" else "M") |]))
  in
  let param =
    Table.create
      (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
      [ [| Value.Float 120.; Value.Float 15. |] ]
  in
  let st =
    Mcdb.Stochastic_table.define ~name:"SBP_DATA"
      ~schema:
        (Schema.of_list
           [ ("pid", Value.Tint); ("gender", Value.Tstring); ("sbp", Value.Tfloat) ])
      ~driver:patients ~vg:Mcdb.Vg.normal
      ~params:(fun _ -> [ param ])
      ~combine:(fun d v -> [| d.(0); d.(1); v.(0) |])
  in
  let db = Mcdb.Database.create () in
  Mcdb.Database.add_stochastic db st;
  let query catalog =
    let t = Catalog.find catalog "SBP_DATA" in
    let total = ref 0. and n = ref 0 in
    Table.iter
      (fun row ->
        total := !total +. Value.to_float row.(2);
        incr n)
      t;
    !total /. float_of_int !n
  in
  (db, query)

let bench_par_json ~reps ~domains ~t_seq ~t_par ~identical ~batches ~seq_batches
    ~steals =
  Mde_bench_emit.append ~file:"BENCH_par.json" ~name:"mcdb-replications"
    [
      ("reps", Mde_bench_emit.Int reps);
      ("domains", Int domains);
      ("sequential_s", Float t_seq);
      ("parallel_s", Float t_par);
      ("speedup", Float (t_seq /. t_par));
      ("identical_output", Bool identical);
      ("pool_batches", Int batches);
      ("pool_seq_batches", Int seq_batches);
      ("pool_steals", Int steals);
    ]

(* Min over [k] runs: the least-noise estimator for a deterministic
   computation on a shared machine. The result is identical every run by
   construction, so keeping the last is as good as any. *)
let best_of k f =
  let best = ref infinity and result = ref None in
  for _ = 1 to k do
    let r, t = wall_time f in
    if t < !best then best := t;
    result := Some r
  done;
  (Option.get !result, !best)

(* Pooled runs must cost at most this factor over sequential when the
   pool cannot help (domains = 1): the sequential fast path makes pool
   dispatch essentially free. CI runs this as a smoke gate. *)
let domains1_overhead_gate = 1.10

let run_parallel ?(reps = 400) ~domains () =
  Util.section "PAR"
    (Printf.sprintf "domain-parallel Monte Carlo replications (%d domains)" domains);
  let db, query = replication_fixture () in
  let seed = 42 in
  let run ?pool () =
    Mcdb.Database.monte_carlo ?pool db (Rng.create ~seed ()) ~reps ~query
  in
  (* A persistent shared pool: spawned once, reused across every timed
     run — the per-call domain spawn was most of the old slowdown. *)
  let pool = Pool.shared ~domains () in
  (* Warm-up trains the adaptive chunk estimator and faults in both
     paths before anything is timed. *)
  ignore (run ~pool ());
  ignore (run ());
  let stats0 = Pool.stats pool in
  let seq, t_seq = best_of 3 (fun () -> run ()) in
  let par, t_par = best_of 3 (fun () -> run ~pool ()) in
  let stats1 = Pool.stats pool in
  let sum = Array.fold_left ( + ) 0 in
  let batches = stats1.Pool.batches - stats0.Pool.batches in
  let seq_batches = stats1.Pool.seq_batches - stats0.Pool.seq_batches in
  let steals = sum stats1.Pool.steals - sum stats0.Pool.steals in
  let identical = seq = par in
  Util.table
    [ "mode"; "wall time"; "speedup" ]
    [
      [ "sequential"; Printf.sprintf "%.3f s" t_seq; "1.00x" ];
      [
        Printf.sprintf "%d domains" domains;
        Printf.sprintf "%.3f s" t_par;
        Printf.sprintf "%.2fx" (t_seq /. t_par);
      ];
    ];
  Util.note "output equality: %s"
    (if identical then "bit-identical (determinism contract holds)"
     else "MISMATCH — determinism contract violated");
  Util.note "pool: %d fanned-out batches, %d sequential fast-path batches, %d steals"
    batches seq_batches steals;
  (match Pool.estimated_item_seconds pool ~site:"mcdb.monte_carlo" with
  | Some s -> Util.note "adaptive estimate: %.1f us per replication" (s *. 1e6)
  | None -> ());
  Util.note "available cores: %d" (Domain.recommended_domain_count ());
  let path =
    bench_par_json ~reps ~domains ~t_seq ~t_par ~identical ~batches ~seq_batches
      ~steals
  in
  Util.note "recorded in %s" path;
  if not identical then exit 1;
  if domains = 1 && t_par > domains1_overhead_gate *. t_seq then begin
    Util.note "FAIL: domains=1 pool overhead %.1f%% exceeds the %.0f%% gate"
      (100. *. ((t_par /. t_seq) -. 1.))
      (100. *. (domains1_overhead_gate -. 1.));
    exit 1
  end

let tests =
  [
    test_bundle_query;
    test_bundle_query_interp;
    test_naive_query;
    test_hash_join;
    test_thomas;
    test_dsgd_subepochs;
    test_wildfire_step;
    test_gp_predict;
    test_traffic_step;
    test_plan_optimize;
    test_plan_execute_optimized;
    test_mm1;
  ]

let pretty_ns ns =
  if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let pretty_words w =
  if w > 1e6 then Printf.sprintf "%.2f Mw" (w /. 1e6)
  else if w > 1e3 then Printf.sprintf "%.1f kw" (w /. 1e3)
  else Printf.sprintf "%.0f w" w

let run () =
  Util.section "PERF"
    "Bechamel microbenchmarks (monotonic clock ns/run; minor+major GC words/run)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock; minor_allocated; major_allocated ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"perf" tests) in
  let analyze instance = Analyze.all ols instance raw in
  let time_results = analyze (List.nth instances 0) in
  let minor_results = analyze (List.nth instances 1) in
  let major_results = analyze (List.nth instances 2) in
  let estimate table name =
    match Hashtbl.find_opt table name with
    | Some r -> (
      match Analyze.OLS.estimates r with Some [ v ] -> Some v | Some _ | None -> None)
    | None -> None
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name _ ->
      match estimate time_results name with
      | Some ns ->
        rows :=
          (name, ns, estimate minor_results name, estimate major_results name)
          :: !rows
      | None -> ())
    time_results;
  let rows =
    List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b) !rows
  in
  Util.table
    [ "benchmark"; "time/run"; "minor alloc/run"; "major alloc/run" ]
    (List.map
       (fun (name, ns, minor, major) ->
         let words = function Some w -> pretty_words w | None -> "-" in
         [ name; pretty_ns ns; words minor; words major ])
       rows)
