(** The unified-substrate relational benchmark, shared by
    [bench/main -- --relational] and [mde_cli relational-bench] so both
    record the same experiment.

    One randomized measurement table ([rows] rows: float key, small int
    group, float value), one fixed pipeline (conjunctive predicate,
    derived risk column, Count/Sum/Avg/Max group aggregates), three
    executions of the identical query:

    - {e row algebra}: the legacy row-at-a-time
      {!Mde.Relational.Algebra} operators — the bit-identity oracle;
    - {e interpreter}: the columnar engine forced through its boxed
      row-fallback everywhere ([~impl:`Interpreter]);
    - {e kernel}: the same columnar pipeline through compiled typed
      kernels ([~impl:`Kernel]).

    Each stage is timed separately with its [Gc.allocated_bytes] delta.
    All three engines must produce bit-identical group tables
    ({!result.identical} — callers should fail the run when false). *)

type timing = { seconds : float; alloc_bytes : float }

type path = {
  select_t : timing;
  extend_t : timing;
  group_t : timing;
}

type result = {
  rows : int;
  row_path : path;  (** legacy row {!Mde.Relational.Algebra} *)
  interp_path : path;  (** columnar, [~impl:`Interpreter] *)
  kernel_path : path;  (** columnar, [~impl:`Kernel] *)
  identical : bool;  (** all three final tables bit-identical *)
}

val run : ?domains:int -> rows:int -> seed:int -> unit -> result
(** Execute the benchmark. [domains] > 1 runs the kernel select/extend
    stages over a shared domain pool; results stay bit-identical. *)

val total : path -> float
(** Summed wall seconds of the three stages. *)

val rows_per_second : result -> path -> float

val speedup_vs_interp : result -> float
(** Kernel pipeline throughput over interpreter pipeline throughput —
    the quantity gated at 3x by the harness. *)

val speedup_vs_rows : result -> float

val alloc_reduction_vs_interp : result -> float

val print : result -> unit
(** Human-readable table on stdout. *)

val emit : ?file:string -> ?domains:int -> seed:int -> result -> string
(** Append one entry to [BENCH_relational.json] (via {!Mde_bench_emit});
    returns the path written. *)

(** {2 Packed key codes}

    The keyed-operator benchmark: group_by / equi_join / distinct /
    order_by over a star-shaped table (dictionary-coded string dimension
    key + small int bucket), each run through the packed {!Keycode} path
    (the default), the boxed [Value.Tbl] path ([~packed:false]) and —
    with [domains] > 1, for the operators that take a pool — the pooled
    packed path. All paths must produce bit-identical tables. *)

type keyed_op = {
  packed_t : timing;
  boxed_t : timing;
  pooled_t : timing option;  (** [None] when [domains] = 1 or unpooled *)
}

type keyed_result = {
  krows : int;
  group_op : keyed_op;
  join_op : keyed_op;
  distinct_op : keyed_op;
  order_op : keyed_op;
  kidentical : bool;  (** packed == boxed == pooled, bit for bit *)
}

val run_keyed : ?domains:int -> rows:int -> seed:int -> unit -> keyed_result

val op_speedup : keyed_op -> float
(** Packed throughput over boxed throughput for one operator — the
    harness gates group and join at 2x. *)

val op_alloc_reduction : keyed_op -> float
(** Boxed allocated bytes over packed allocated bytes. *)

val print_keyed : keyed_result -> unit

val emit_keyed : ?file:string -> ?domains:int -> seed:int -> keyed_result -> string
(** Append one "relational-keycode" entry to [BENCH_relational.json];
    returns the path written. *)
