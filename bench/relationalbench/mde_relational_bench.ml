open Mde.Relational
module Rng = Mde.Prob.Rng

type timing = { seconds : float; alloc_bytes : float }

type path = {
  select_t : timing;
  extend_t : timing;
  group_t : timing;
}

type result = {
  rows : int;
  row_path : path;
  interp_path : path;
  kernel_path : path;
  identical : bool;
}

let timed f =
  let a0 = Gc.allocated_bytes () in
  let t0 = Mde.Obs.Clock.wall () in
  let x = f () in
  let seconds = Mde.Obs.Clock.wall () -. t0 in
  (x, { seconds; alloc_bytes = Gc.allocated_bytes () -. a0 })

(* Monte Carlo-shaped input: a float auxiliary key, a small int grouping
   column, a float measurement. *)
let make_table ~rows ~seed =
  let rng = Rng.create ~seed () in
  let schema =
    Schema.of_list [ ("k", Value.Tfloat); ("g", Value.Tint); ("v", Value.Tfloat) ]
  in
  Table.create schema
    (List.init rows (fun _ ->
         [|
           Value.Float (Rng.float_range rng 0. 8.);
           Value.Int (Rng.int rng 16);
           Value.Float (Rng.float_range rng (-1.) 1.);
         |]))

(* Predicate + derived column + four aggregates: every kernel class
   (comparison, conjunction, arithmetic, Count/Sum/Avg/Max) is on the
   timed path. *)
let pred = Expr.(col "v" > float (-0.5) && col "k" < float 6.)

let defs =
  [ ("risk", Value.Tfloat, Expr.(((col "v" - float 0.1) * float 2.) + col "k")) ]

let keys = [ "g" ]

let aggs =
  [
    ("n", Algebra.Count);
    ("total", Algebra.Sum (Expr.col "v"));
    ("mean_risk", Algebra.Avg (Expr.col "risk"));
    ("max_risk", Algebra.Max (Expr.col "risk"));
  ]

let value_identical a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> a = b

let tables_identical a b =
  Table.cardinality a = Table.cardinality b
  && Array.for_all2
       (fun ra rb -> Array.for_all2 value_identical ra rb)
       (Table.rows a) (Table.rows b)

let run_rows table =
  let selected, select_t = timed (fun () -> Algebra.select pred table) in
  let extended, extend_t = timed (fun () -> Algebra.extend defs selected) in
  let grouped, group_t = timed (fun () -> Algebra.group_by ~keys ~aggs extended) in
  (grouped, { select_t; extend_t; group_t })

let run_columnar ?pool ~impl c =
  let selected, select_t = timed (fun () -> Columnar.select ?pool ~impl pred c) in
  let extended, extend_t = timed (fun () -> Columnar.extend ?pool ~impl defs selected) in
  let grouped, group_t = timed (fun () -> Columnar.group_by ~impl ~keys ~aggs extended) in
  (Columnar.to_table grouped, { select_t; extend_t; group_t })

let run ?(domains = 1) ~rows ~seed () =
  let table = make_table ~rows ~seed in
  let c = Columnar.of_table table in
  let with_pool f =
    (* Shared pool: domains live across runs, so spawn cost never lands
       inside a timed section. *)
    if domains > 1 then f (Some (Mde.Par.Pool.shared ~domains ())) else f None
  in
  with_pool (fun pool ->
      let row_out, row_path = run_rows table in
      let interp_out, interp_path = run_columnar ~impl:`Interpreter c in
      let kernel_out, kernel_path = run_columnar ?pool ~impl:`Kernel c in
      {
        rows;
        row_path;
        interp_path;
        kernel_path;
        identical =
          tables_identical row_out interp_out && tables_identical row_out kernel_out;
      })

let total p = p.select_t.seconds +. p.extend_t.seconds +. p.group_t.seconds
let total_alloc p =
  p.select_t.alloc_bytes +. p.extend_t.alloc_bytes +. p.group_t.alloc_bytes

let rows_per_second r p =
  let t = total p in
  if t > 0. then float_of_int r.rows /. t else infinity

let speedup_vs_interp r = rows_per_second r r.kernel_path /. rows_per_second r r.interp_path
let speedup_vs_rows r = rows_per_second r r.kernel_path /. rows_per_second r r.row_path

let alloc_reduction_vs_interp r =
  let k = total_alloc r.kernel_path in
  if k > 0. then total_alloc r.interp_path /. k else infinity

let print r =
  let line label p =
    Printf.printf "  %-18s %10.4f s  %12.3g rows/s  %14.3g bytes\n" label (total p)
      (rows_per_second r p) (total_alloc p)
  in
  Printf.printf "relational-bench: select -> extend -> group_by over %d rows\n\n" r.rows;
  Printf.printf "  %-18s %12s  %14s  %14s\n" "engine" "wall" "throughput" "allocated";
  line "row algebra" r.row_path;
  line (Impl.to_string `Interpreter) r.interp_path;
  line (Impl.to_string `Kernel) r.kernel_path;
  Printf.printf "\n  kernel vs interpreter: %.1fx throughput, %.1fx less allocation\n"
    (speedup_vs_interp r)
    (alloc_reduction_vs_interp r);
  Printf.printf "  kernel vs row algebra: %.1fx throughput\n" (speedup_vs_rows r);
  Printf.printf "  outputs bit-identical across all three engines: %b\n" r.identical

let emit ?(file = "BENCH_relational.json") ?(domains = 1) ~seed r =
  let open Mde_bench_emit in
  let path_fields prefix p =
    [
      (prefix ^ "_select_s", Float p.select_t.seconds);
      (prefix ^ "_extend_s", Float p.extend_t.seconds);
      (prefix ^ "_group_s", Float p.group_t.seconds);
      (prefix ^ "_total_s", Float (total p));
      (prefix ^ "_alloc_bytes", Float (total_alloc p));
      (prefix ^ "_rows_per_s", Float (rows_per_second r p));
    ]
  in
  append ~file ~name:"relational-columnar"
    ([ ("rows", Int r.rows); ("seed", Int seed); ("domains", Int domains) ]
    @ path_fields "row" r.row_path
    @ path_fields "interp" r.interp_path
    @ path_fields (Impl.to_string `Kernel) r.kernel_path
    @ [
        ("kernel_speedup_vs_interp", Float (speedup_vs_interp r));
        ("kernel_speedup_vs_rows", Float (speedup_vs_rows r));
        ("kernel_alloc_reduction_vs_interp", Float (alloc_reduction_vs_interp r));
        ("identical_output", Bool r.identical);
      ])
