open Mde.Relational
module Rng = Mde.Prob.Rng

type timing = { seconds : float; alloc_bytes : float }

type path = {
  select_t : timing;
  extend_t : timing;
  group_t : timing;
}

type result = {
  rows : int;
  row_path : path;
  interp_path : path;
  kernel_path : path;
  identical : bool;
}

let timed f =
  let a0 = Gc.allocated_bytes () in
  let t0 = Mde.Obs.Clock.wall () in
  let x = f () in
  let seconds = Mde.Obs.Clock.wall () -. t0 in
  (x, { seconds; alloc_bytes = Gc.allocated_bytes () -. a0 })

(* Monte Carlo-shaped input: a float auxiliary key, a small int grouping
   column, a float measurement. *)
let make_table ~rows ~seed =
  let rng = Rng.create ~seed () in
  let schema =
    Schema.of_list [ ("k", Value.Tfloat); ("g", Value.Tint); ("v", Value.Tfloat) ]
  in
  Table.create schema
    (List.init rows (fun _ ->
         [|
           Value.Float (Rng.float_range rng 0. 8.);
           Value.Int (Rng.int rng 16);
           Value.Float (Rng.float_range rng (-1.) 1.);
         |]))

(* Predicate + derived column + four aggregates: every kernel class
   (comparison, conjunction, arithmetic, Count/Sum/Avg/Max) is on the
   timed path. *)
let pred = Expr.(col "v" > float (-0.5) && col "k" < float 6.)

let defs =
  [ ("risk", Value.Tfloat, Expr.(((col "v" - float 0.1) * float 2.) + col "k")) ]

let keys = [ "g" ]

let aggs =
  [
    ("n", Algebra.Count);
    ("total", Algebra.Sum (Expr.col "v"));
    ("mean_risk", Algebra.Avg (Expr.col "risk"));
    ("max_risk", Algebra.Max (Expr.col "risk"));
  ]

let value_identical a b =
  match (a, b) with
  | Value.Float x, Value.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> a = b

let tables_identical a b =
  Table.cardinality a = Table.cardinality b
  && Array.for_all2
       (fun ra rb -> Array.for_all2 value_identical ra rb)
       (Table.rows a) (Table.rows b)

let run_rows table =
  let selected, select_t = timed (fun () -> Algebra.select pred table) in
  let extended, extend_t = timed (fun () -> Algebra.extend defs selected) in
  let grouped, group_t = timed (fun () -> Algebra.group_by ~keys ~aggs extended) in
  (grouped, { select_t; extend_t; group_t })

let run_columnar ?pool ~impl c =
  let selected, select_t = timed (fun () -> Columnar.select ?pool ~impl pred c) in
  let extended, extend_t = timed (fun () -> Columnar.extend ?pool ~impl defs selected) in
  let grouped, group_t = timed (fun () -> Columnar.group_by ~impl ~keys ~aggs extended) in
  (Columnar.to_table grouped, { select_t; extend_t; group_t })

let run ?(domains = 1) ~rows ~seed () =
  let table = make_table ~rows ~seed in
  let c = Columnar.of_table table in
  let with_pool f =
    (* Shared pool: domains live across runs, so spawn cost never lands
       inside a timed section. *)
    if domains > 1 then f (Some (Mde.Par.Pool.shared ~domains ())) else f None
  in
  with_pool (fun pool ->
      (* One untimed pooled pass first: it trains the pool's per-site
         crossover estimates, so the timed kernel stages measure steady
         state rather than cold fan-out on work too small to split. *)
      if pool <> None then ignore (run_columnar ?pool ~impl:`Kernel c);
      (* Each path starts on a settled heap and keeps its best of two
         runs per stage: single-shot timings at smoke row counts are
         dominated by GC debt and scheduling noise, not the operator. *)
      let min_timing a b =
        {
          seconds = Float.min a.seconds b.seconds;
          alloc_bytes = Float.min a.alloc_bytes b.alloc_bytes;
        }
      in
      let twice f =
        Gc.full_major ();
        let out, p = f () in
        let _, q = f () in
        ( out,
          {
            select_t = min_timing p.select_t q.select_t;
            extend_t = min_timing p.extend_t q.extend_t;
            group_t = min_timing p.group_t q.group_t;
          } )
      in
      let row_out, row_path = twice (fun () -> run_rows table) in
      let interp_out, interp_path = twice (fun () -> run_columnar ~impl:`Interpreter c) in
      let kernel_out, kernel_path = twice (fun () -> run_columnar ?pool ~impl:`Kernel c) in
      {
        rows;
        row_path;
        interp_path;
        kernel_path;
        identical =
          tables_identical row_out interp_out && tables_identical row_out kernel_out;
      })

let total p = p.select_t.seconds +. p.extend_t.seconds +. p.group_t.seconds
let total_alloc p =
  p.select_t.alloc_bytes +. p.extend_t.alloc_bytes +. p.group_t.alloc_bytes

let rows_per_second r p =
  let t = total p in
  if t > 0. then float_of_int r.rows /. t else infinity

let speedup_vs_interp r = rows_per_second r r.kernel_path /. rows_per_second r r.interp_path
let speedup_vs_rows r = rows_per_second r r.kernel_path /. rows_per_second r r.row_path

let alloc_reduction_vs_interp r =
  let k = total_alloc r.kernel_path in
  if k > 0. then total_alloc r.interp_path /. k else infinity

let print r =
  let line label p =
    Printf.printf "  %-18s %10.4f s  %12.3g rows/s  %14.3g bytes\n" label (total p)
      (rows_per_second r p) (total_alloc p)
  in
  Printf.printf "relational-bench: select -> extend -> group_by over %d rows\n\n" r.rows;
  Printf.printf "  %-18s %12s  %14s  %14s\n" "engine" "wall" "throughput" "allocated";
  line "row algebra" r.row_path;
  line (Impl.to_string `Interpreter) r.interp_path;
  line (Impl.to_string `Kernel) r.kernel_path;
  Printf.printf "\n  kernel vs interpreter: %.1fx throughput, %.1fx less allocation\n"
    (speedup_vs_interp r)
    (alloc_reduction_vs_interp r);
  Printf.printf "  kernel vs row algebra: %.1fx throughput\n" (speedup_vs_rows r);
  Printf.printf "  outputs bit-identical across all three engines: %b\n" r.identical

(* --- packed key codes: the keyed-operator benchmark ---------------- *)

type keyed_op = { packed_t : timing; boxed_t : timing; pooled_t : timing option }

type keyed_result = {
  krows : int;
  group_op : keyed_op;
  join_op : keyed_op;
  distinct_op : keyed_op;
  order_op : keyed_op;
  kidentical : bool;
}

(* A star-shaped input: a dictionary-coded string dimension key plus a
   small int bucket on the fact side, and a dimension table keyed by
   the same composite (sku, g) pair. The composite key packs into one
   word; the boxed path realizes a two-element Value.t list per row for
   the same work. The dimension covers every other sku, so the join
   probes every fact row but emits only about half of them — the
   selective shape where probe cost, not output materialization, is
   the operator. *)
let make_keyed_tables ~rows ~seed =
  let rng = Rng.create ~seed () in
  let dims = max 16 (rows / 1000) in
  let buckets = 16 in
  let dim_name i = Printf.sprintf "sku-%04d" i in
  let fact =
    Table.create
      (Schema.of_list [ ("sku", Value.Tstring); ("g", Value.Tint); ("v", Value.Tfloat) ])
      (List.init rows (fun _ ->
           [|
             Value.String (dim_name (Rng.int rng dims));
             Value.Int (Rng.int rng buckets);
             Value.Float (Rng.float_range rng (-1.) 1.);
           |]))
  in
  let dim =
    Table.create
      (Schema.of_list
         [ ("dsku", Value.Tstring); ("dg", Value.Tint); ("weight", Value.Tfloat) ])
      (List.init (dims * buckets / 2) (fun i ->
           [|
             Value.String (dim_name (2 * (i / buckets)));
             Value.Int (i mod buckets);
             Value.Float (Rng.float_range rng 0. 2.);
           |]))
  in
  (Columnar.of_table fact, Columnar.of_table dim)

let join_on = [ ("sku", "dsku"); ("g", "dg") ]

let keyed_keys = [ "sku"; "g" ]
let keyed_aggs = [ ("n", Algebra.Count); ("total", Algebra.Sum (Expr.col "v")) ]

let run_keyed ?(domains = 1) ~rows ~seed () =
  let fact, dim = make_keyed_tables ~rows ~seed in
  let keys_only = Columnar.project keyed_keys fact in
  let pool = if domains > 1 then Some (Mde.Par.Pool.shared ~domains ()) else None in
  let same a b = tables_identical (Columnar.to_table a) (Columnar.to_table b) in
  (* One operator, measured packed (the default), boxed (~packed:false,
     the old Value.Tbl path) and — when a pool is live and the operator
     has a pooled form — pooled packed. All three must agree bit for
     bit. Each section starts on a settled heap: whichever variant runs
     first would otherwise absorb the major-GC debt of building the
     input tables, which at these allocation rates dwarfs the operator
     itself. *)
  let timed_settled f =
    Gc.full_major ();
    let out, a = timed f in
    let _, b = timed f in
    (* Best of two: the first run also absorbs one-shot warmup costs
       (dictionary pages, branch history) that are noise at smoke row
       counts. *)
    ( out,
      {
        seconds = Float.min a.seconds b.seconds;
        alloc_bytes = Float.min a.alloc_bytes b.alloc_bytes;
      } )
  in
  let measure ?pooled packed_f boxed_f =
    let packed_out, packed_t = timed_settled packed_f in
    let boxed_out, boxed_t = timed_settled boxed_f in
    let pooled_t, pooled_ok =
      match (pool, pooled) with
      | Some p, Some f ->
        let out, t = timed_settled (fun () -> f p) in
        (Some t, same out packed_out)
      | _ -> (None, true)
    in
    ({ packed_t; boxed_t; pooled_t }, same packed_out boxed_out && pooled_ok)
  in
  let group_op, g_ok =
    measure
      ~pooled:(fun p -> Columnar.group_by ~pool:p ~keys:keyed_keys ~aggs:keyed_aggs fact)
      (fun () -> Columnar.group_by ~keys:keyed_keys ~aggs:keyed_aggs fact)
      (fun () -> Columnar.group_by ~packed:false ~keys:keyed_keys ~aggs:keyed_aggs fact)
  in
  let join_op, j_ok =
    measure
      ~pooled:(fun p -> Columnar.equi_join ~pool:p ~on:join_on fact dim)
      (fun () -> Columnar.equi_join ~on:join_on fact dim)
      (fun () -> Columnar.equi_join ~packed:false ~on:join_on fact dim)
  in
  let distinct_op, d_ok =
    measure
      ~pooled:(fun p -> Columnar.distinct ~pool:p keys_only)
      (fun () -> Columnar.distinct keys_only)
      (fun () -> Columnar.distinct ~packed:false keys_only)
  in
  let order_op, o_ok =
    measure
      (fun () -> Columnar.order_by keyed_keys fact)
      (fun () -> Columnar.order_by ~packed:false keyed_keys fact)
  in
  {
    krows = rows;
    group_op;
    join_op;
    distinct_op;
    order_op;
    kidentical = g_ok && j_ok && d_ok && o_ok;
  }

let op_speedup op =
  if op.packed_t.seconds > 0. then op.boxed_t.seconds /. op.packed_t.seconds else infinity

let op_alloc_reduction op =
  if op.packed_t.alloc_bytes > 0. then op.boxed_t.alloc_bytes /. op.packed_t.alloc_bytes
  else infinity

let print_keyed r =
  Printf.printf
    "relational-bench: packed key codes vs boxed Value.Tbl over %d rows\n\n" r.krows;
  Printf.printf "  %-10s %12s %12s %12s  %8s %10s\n" "operator" "packed" "boxed"
    "pooled" "speedup" "alloc red.";
  let line label op =
    let pooled =
      match op.pooled_t with
      | Some t -> Printf.sprintf "%10.4f s" t.seconds
      | None -> "         --"
    in
    Printf.printf "  %-10s %10.4f s %10.4f s %12s  %7.1fx %9.1fx\n" label
      op.packed_t.seconds op.boxed_t.seconds pooled (op_speedup op)
      (op_alloc_reduction op)
  in
  line "group_by" r.group_op;
  line "join" r.join_op;
  line "distinct" r.distinct_op;
  line "order_by" r.order_op;
  Printf.printf "\n  outputs bit-identical across packed/boxed/pooled paths: %b\n"
    r.kidentical

let emit_keyed ?(file = "BENCH_relational.json") ?(domains = 1) ~seed r =
  let open Mde_bench_emit in
  let op_fields prefix op =
    [
      (prefix ^ "_packed_s", Float op.packed_t.seconds);
      (prefix ^ "_boxed_s", Float op.boxed_t.seconds);
      (prefix ^ "_packed_alloc_bytes", Float op.packed_t.alloc_bytes);
      (prefix ^ "_boxed_alloc_bytes", Float op.boxed_t.alloc_bytes);
      (prefix ^ "_speedup", Float (op_speedup op));
      (prefix ^ "_alloc_reduction", Float (op_alloc_reduction op));
    ]
    @
    match op.pooled_t with
    | Some t -> [ (prefix ^ "_pooled_s", Float t.seconds) ]
    | None -> []
  in
  append ~file ~name:"relational-keycode"
    ([ ("rows", Int r.krows); ("seed", Int seed); ("domains", Int domains) ]
    @ op_fields "group" r.group_op
    @ op_fields "join" r.join_op
    @ op_fields "distinct" r.distinct_op
    @ op_fields "order" r.order_op
    @ [ ("identical_output", Bool r.kidentical) ])

let emit ?(file = "BENCH_relational.json") ?(domains = 1) ~seed r =
  let open Mde_bench_emit in
  let path_fields prefix p =
    [
      (prefix ^ "_select_s", Float p.select_t.seconds);
      (prefix ^ "_extend_s", Float p.extend_t.seconds);
      (prefix ^ "_group_s", Float p.group_t.seconds);
      (prefix ^ "_total_s", Float (total p));
      (prefix ^ "_alloc_bytes", Float (total_alloc p));
      (prefix ^ "_rows_per_s", Float (rows_per_second r p));
    ]
  in
  append ~file ~name:"relational-columnar"
    ([ ("rows", Int r.rows); ("seed", Int seed); ("domains", Int domains) ]
    @ path_fields "row" r.row_path
    @ path_fields "interp" r.interp_path
    @ path_fields (Impl.to_string `Kernel) r.kernel_path
    @ [
        ("kernel_speedup_vs_interp", Float (speedup_vs_interp r));
        ("kernel_speedup_vs_rows", Float (speedup_vs_rows r));
        ("kernel_alloc_reduction_vs_interp", Float (alloc_reduction_vs_interp r));
        ("identical_output", Bool r.identical);
      ])
