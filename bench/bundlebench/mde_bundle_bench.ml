open Mde.Relational
module Mcdb = Mde.Mcdb
module Bundle = Mcdb.Bundle
module Rng = Mde.Prob.Rng

type timing = { seconds : float; alloc_bytes : float }

type result = {
  rows : int;
  reps : int;
  cells : int;
  naive_build : timing;
  naive_query : timing;
  bundle_build : timing;
  interp_query : timing;
  kernel_query : timing;
  identical : bool;
}

let timed f =
  let a0 = Gc.allocated_bytes () in
  let t0 = Mde.Obs.Clock.wall () in
  let x = f () in
  let seconds = Mde.Obs.Clock.wall () -. t0 in
  (x, { seconds; alloc_bytes = Gc.allocated_bytes () -. a0 })

(* The demo SBP table at benchmark scale: [rows] patients, each drawing
   sbp ~ Normal(120, 15) — row-stable, so the bundle path applies. *)
let sbp_table rows =
  let patients =
    Table.create
      (Schema.of_list [ ("pid", Value.Tint); ("gender", Value.Tstring) ])
      (List.init rows (fun i ->
           [| Value.Int i; Value.String (if i mod 2 = 0 then "F" else "M") |]))
  in
  let param =
    Table.create
      (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
      [ [| Value.Float 120.; Value.Float 15. |] ]
  in
  Mcdb.Stochastic_table.define ~name:"SBP_DATA"
    ~schema:
      (Schema.of_list
         [ ("pid", Value.Tint); ("gender", Value.Tstring); ("sbp", Value.Tfloat) ])
    ~driver:patients ~vg:Mcdb.Vg.normal
    ~params:(fun _ -> [ param ])
    ~combine:(fun d v -> [| d.(0); d.(1); v.(0) |])

(* Uncertain predicate + derived column + three aggregates: every kernel
   class (comparison, arithmetic, Avg/Max/Count) is on the timed path. *)
let where_ = Expr.(col "sbp" > float 100.)
let derive = [ ("risk", Value.Tfloat, Expr.((col "sbp" - float 120.) / float 15.)) ]

let aggs =
  [
    ("mean_sbp", Bundle.Avg (Expr.col "sbp"));
    ("max_risk", Bundle.Max (Expr.col "risk"));
    ("n", Bundle.Count);
  ]

let plan = { Bundle.where_ = Some where_; derive; group_keys = []; aggs }

let algebra_aggs =
  List.map
    (fun (name, agg) ->
      ( name,
        match agg with
        | Bundle.Count -> Algebra.Count
        | Bundle.Sum e -> Algebra.Sum e
        | Bundle.Avg e -> Algebra.Avg e
        | Bundle.Min e -> Algebra.Min e
        | Bundle.Max e -> Algebra.Max e ))
    aggs

(* Per-instance plan execution — the query the naive path repeats. The
   global group row is read back in [Bundle.aggregate]'s float
   conventions (Count as float, empty-group Avg/Min/Max as nan). *)
let naive_instance table =
  let out =
    Algebra.group_by ~keys:[] ~aggs:algebra_aggs
      (Algebra.extend derive (Algebra.select where_ table))
  in
  let row = (Table.rows out).(0) in
  Array.mapi
    (fun j _ ->
      match row.(j) with
      | Value.Int n -> float_of_int n
      | Value.Float f -> f
      | Value.Null -> nan
      | v -> Value.to_float v)
    (Array.of_list algebra_aggs)

let bits = Int64.bits_of_float
let float_eq a b = Int64.equal (bits a) (bits b)

(* [query] returns the single global group; index result as (agg, rep). *)
let samples_of_query = function
  | [ (_, per_agg) ] -> per_agg
  | results ->
    invalid_arg
      (Printf.sprintf "bundle-bench: expected one global group, got %d"
         (List.length results))

let identical3 ~reps naive interp kernel =
  let n_aggs = List.length aggs in
  let ok = ref true in
  for j = 0 to n_aggs - 1 do
    for r = 0 to reps - 1 do
      if
        not
          (float_eq naive.(r).(j) interp.(j).(r)
          && float_eq interp.(j).(r) kernel.(j).(r))
      then ok := false
    done
  done;
  !ok

let run ?(domains = 1) ~rows ~reps ~seed () =
  let st = sbp_table rows in
  let with_pool f =
    (* Shared pool: the domains live across runs, so spawn cost never
       lands inside a timed section. *)
    if domains > 1 then f (Some (Mde.Par.Pool.shared ~domains ()))
    else f None
  in
  with_pool (fun pool ->
      let instances, naive_build =
        timed (fun () ->
            Mcdb.Stochastic_table.instantiate_many ?pool st
              (Rng.create ~seed ()) reps)
      in
      let naive_samples, naive_query =
        timed (fun () -> Array.map naive_instance instances)
      in
      let bundle, bundle_build =
        timed (fun () ->
            Bundle.of_stochastic_table ?pool st (Rng.create ~seed ()) ~n_reps:reps)
      in
      let interp_samples, interp_query =
        timed (fun () ->
            samples_of_query (Bundle.query ~impl:`Interpreter bundle plan))
      in
      let kernel_samples, kernel_query =
        timed (fun () ->
            samples_of_query (Bundle.query ?pool ~impl:`Kernel bundle plan))
      in
      {
        rows;
        reps;
        cells = rows * reps;
        naive_build;
        naive_query;
        bundle_build;
        interp_query;
        kernel_query;
        identical = identical3 ~reps naive_samples interp_samples kernel_samples;
      })

let cells_per_second result t =
  if t.seconds > 0. then float_of_int result.cells /. t.seconds else infinity

let speedup_vs_interp r =
  cells_per_second r r.kernel_query /. cells_per_second r r.interp_query

let alloc_reduction_vs_interp r =
  if r.kernel_query.alloc_bytes > 0. then
    r.interp_query.alloc_bytes /. r.kernel_query.alloc_bytes
  else infinity

let print r =
  let row label t =
    Printf.printf "  %-18s %10.4f s  %12.3g cells/s  %14.3g bytes\n" label t.seconds
      (cells_per_second r t) t.alloc_bytes
  in
  Printf.printf "bundle-bench: %d rows x %d reps = %d cells\n\n" r.rows r.reps
    r.cells;
  Printf.printf "  %-18s %12s  %14s  %14s\n" "phase" "wall" "throughput" "allocated";
  row "naive build" r.naive_build;
  row "naive query" r.naive_query;
  row "bundle build" r.bundle_build;
  row "interpreted query" r.interp_query;
  row "columnar query" r.kernel_query;
  Printf.printf "\n  columnar vs interpreted: %.1fx throughput, %.1fx less allocation\n"
    (speedup_vs_interp r)
    (alloc_reduction_vs_interp r);
  Printf.printf "  outputs bit-identical across all three paths: %b\n" r.identical

let emit ?(file = "BENCH_bundle.json") ?(domains = 1) ~seed r =
  let open Mde_bench_emit in
  append ~file ~name:"bundle-kernel"
    [
      ("rows", Int r.rows);
      ("reps", Int r.reps);
      ("cells", Int r.cells);
      ("seed", Int seed);
      ("domains", Int domains);
      ("naive_build_s", Float r.naive_build.seconds);
      ("naive_query_s", Float r.naive_query.seconds);
      ("naive_query_alloc_bytes", Float r.naive_query.alloc_bytes);
      ("naive_query_cells_per_s", Float (cells_per_second r r.naive_query));
      ("bundle_build_s", Float r.bundle_build.seconds);
      ("interp_query_s", Float r.interp_query.seconds);
      ("interp_query_alloc_bytes", Float r.interp_query.alloc_bytes);
      ("interp_query_cells_per_s", Float (cells_per_second r r.interp_query));
      ("kernel_query_s", Float r.kernel_query.seconds);
      ("kernel_query_alloc_bytes", Float r.kernel_query.alloc_bytes);
      ("kernel_query_cells_per_s", Float (cells_per_second r r.kernel_query));
      ("kernel_speedup_vs_interp", Float (speedup_vs_interp r));
      ("kernel_alloc_reduction_vs_interp", Float (alloc_reduction_vs_interp r));
      ("identical_output", Bool r.identical);
    ]
