(** The tuple-bundle engine benchmark, shared by [bench/main -- --bundle]
    and [mde_cli bundle-bench] so both record the same experiment.

    One SBP-style stochastic table ([rows] driver rows), one fixed plan
    (uncertain-float predicate, derived risk column, Avg/Max/Count
    aggregates), three executions of the identical query:

    - {e naive}: one realized instance per repetition
      ({!Mde.Mcdb.Stochastic_table.instantiate_many}), the plan run once
      per instance through {!Mde.Relational.Algebra} — MCDB's "run the
      query once per database instance" baseline;
    - {e interpreted}: the columnar bundle swept by the boxed
      {!Mde.Relational.Expr} interpreter ([~impl:`Interpreter]);
    - {e columnar}: the same bundle through the compiled kernels
      ([~impl:`Kernel]).

    Construction (instantiation / bundle build) is timed separately from
    query execution, and every timing carries its [Gc.allocated_bytes]
    delta. All three paths must produce bit-identical samples
    ({!result.identical} — callers should fail the run when false). *)

type timing = { seconds : float; alloc_bytes : float }

type result = {
  rows : int;
  reps : int;
  cells : int;  (** rows × reps *)
  naive_build : timing;  (** instantiate_many *)
  naive_query : timing;  (** Algebra plan, once per instance *)
  bundle_build : timing;  (** Bundle.of_stochastic_table *)
  interp_query : timing;  (** Bundle.query ~impl:`Interpreter *)
  kernel_query : timing;  (** Bundle.query ~impl:`Kernel *)
  identical : bool;  (** all three sample sets bit-identical *)
}

val run : ?domains:int -> rows:int -> reps:int -> seed:int -> unit -> result
(** Execute the benchmark ([domains] > 1 runs bundle construction and the
    kernel query over a domain pool; results stay bit-identical). *)

val speedup_vs_interp : result -> float
(** Kernel query throughput over interpreted query throughput. *)

val alloc_reduction_vs_interp : result -> float
(** Interpreted query allocation over kernel query allocation. *)

val cells_per_second : result -> timing -> float

val print : result -> unit
(** Human-readable table on stdout. *)

val emit : ?file:string -> ?domains:int -> seed:int -> result -> string
(** Append one entry to [BENCH_bundle.json] (via {!Mde_bench_emit});
    returns the path written. *)
