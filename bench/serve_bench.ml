(* The serving-layer experiment (--serve): a Zipf closed-loop workload
   against the demo server, cold pass then warm pass, recorded in
   bench/BENCH_serve.json through the shared emitter. *)

module Serve = Mde.Serve
module Emit = Mde_bench_emit

let report_row label (r : Serve.Workload.report) =
  [
    label;
    Printf.sprintf "%.1f req/s" r.throughput;
    Printf.sprintf "%.2f ms" (1e3 *. r.p50);
    Printf.sprintf "%.2f ms" (1e3 *. r.p95);
    Printf.sprintf "%.2f ms" (1e3 *. r.p99);
    Printf.sprintf "%.0f%%" (100. *. r.hit_rate);
    Printf.sprintf "%.0f%%" (100. *. r.rejection_rate);
  ]

let run ~domains () =
  Util.section "SERVE"
    (Printf.sprintf "Zipf workload against the serving layer (%d domains)" domains);
  let clock = Unix.gettimeofday in
  (* Benchmark with observability on: the registry must be live before
     the pool and server exist, and the snapshot rides along in the
     emitted entry so regressions in queue depth or batch shape are
     visible next to the latency trajectory. *)
  let registry = Mde.Obs.create () in
  Mde.Obs.set_default registry;
  let run_with pool =
    let server = Serve.Demo.server ?pool ~clock ~cache_capacity:256 () in
    let catalog = Serve.Demo.catalog 24 in
    let config =
      { Serve.Workload.requests = 240; concurrency = 8; zipf_s = 1.1; seed = 7 }
    in
    (config, Serve.Demo.cold_warm ~clock (Serve.Target.of_server server) ~catalog config)
  in
  let config, (cold, warm, verdict) =
    (* The shared pool persists across invocations — no domain spawn
       inside the measured window. *)
    if domains > 1 then run_with (Some (Mde.Par.Pool.shared ~domains ()))
    else run_with None
  in
  Mde.Obs.set_default Mde.Obs.noop;
  Util.table
    [ "pass"; "throughput"; "p50"; "p95"; "p99"; "hit rate"; "rejected" ]
    [ report_row "cold" cold; report_row "warm" warm ];
  (match verdict with
  | `Identical n ->
    Util.note "cold vs warm estimates: bit-identical over %d served requests" n
  | `Mismatch n -> Util.note "cold vs warm estimates: %d MISMATCHES" n);
  let path =
    Emit.append ~file:"BENCH_serve.json" ~name:"serve-zipf"
      [
        ("requests", Emit.Int config.requests);
        ("concurrency", Int config.concurrency);
        ("zipf_s", Float config.zipf_s);
        ("seed", Int config.seed);
        ("domains", Int domains);
        ("cold_throughput_rps", Float cold.throughput);
        ("warm_throughput_rps", Float warm.throughput);
        ("warm_p50_s", Float warm.p50);
        ("warm_p95_s", Float warm.p95);
        ("warm_p99_s", Float warm.p99);
        ("cold_hit_rate", Float cold.hit_rate);
        ("warm_hit_rate", Float warm.hit_rate);
        ("rejection_rate", Float warm.rejection_rate);
        ("identical_output", Bool (match verdict with `Identical _ -> true | _ -> false));
        ("metrics", Json (Mde.Obs.Export.json registry));
      ]
  in
  Util.note "recorded in %s" path;
  match verdict with
  | `Identical _ when warm.hit_rate > cold.hit_rate -> ()
  | `Identical _ ->
    Util.note "WARNING: warm hit rate did not improve on cold";
    exit 1
  | `Mismatch _ -> exit 1
