(* The --bundle experiment: naive vs interpreted vs columnar execution of
   one plan, recorded in bench/BENCH_bundle.json via the shared
   Mde_bundle_bench harness (also behind [mde_cli bundle-bench]). *)

module B = Mde_bundle_bench

let run ?(domains = 1) ?(rows = 2000) ?(reps = 200) ?(seed = 42) () =
  Util.section "BUNDLE"
    (Printf.sprintf "columnar tuple-bundle engine, %d rows x %d reps (%d domains)"
       rows reps domains);
  let result = B.run ~domains ~rows ~reps ~seed () in
  B.print result;
  let path = B.emit ~domains ~seed result in
  Util.note "recorded in %s" path;
  if not result.B.identical then begin
    Util.note "FAIL: the three execution paths disagree";
    exit 1
  end;
  let speedup = B.speedup_vs_interp result in
  let alloc = B.alloc_reduction_vs_interp result in
  if speedup < 3. then begin
    Util.note "WARNING: columnar speedup %.1fx below the 3x acceptance floor" speedup;
    exit 1
  end;
  if alloc < 5. then begin
    Util.note "WARNING: allocation reduction %.1fx below the 5x acceptance floor" alloc;
    exit 1
  end
