(* mde — a command-line front end for the model-data-ecosystems library:
   run the headline simulators interactively with your own parameters.

     dune exec bin/mde_cli.exe -- traffic --density 0.25
     dune exec bin/mde_cli.exe -- epidemic --people 5000 --policy vaccinate-preschool
     dune exec bin/mde_cli.exe -- fire --steps 12 --proposal aware
     dune exec bin/mde_cli.exe -- schelling --size 30 --threshold 0.45
     dune exec bin/mde_cli.exe -- housing --bust-year 2006 *)

open Cmdliner
open Mde.Relational

(* Every subcommand takes --seed through this term, so validation (the
   seed must be non-negative) and the effective-seed echo are uniform:
   any run can be replayed from the first stderr line. *)
let seed_arg =
  let check seed =
    if seed < 0 then
      `Error (false, Printf.sprintf "--seed must be non-negative (got %d)" seed)
    else begin
      Printf.eprintf "mde: effective seed %d\n%!" seed;
      `Ok seed
    end
  in
  Term.(
    ret
      (const check
      $ Arg.(
          value
          & opt int 42
          & info [ "seed" ] ~docv:"N"
              ~doc:"Random seed (non-negative; echoed on stderr).")))

(* Engine-selection flag shared by the bench subcommands, parsed and
   printed through the first-class {!Mde.Relational.Impl} vocabulary so
   the accepted spellings are exactly the ones the library defines. *)
let impl_conv =
  let parse s =
    match Impl.of_string_opt s with
    | Some impl -> Ok impl
    | None ->
      Error
        (`Msg
          (Printf.sprintf "expected %s, got %S"
             (String.concat " or " (List.map Impl.to_string Impl.all))
             s))
  in
  Arg.conv (parse, fun ppf impl -> Format.pp_print_string ppf (Impl.to_string impl))

let impl_arg =
  Arg.(
    value
    & opt impl_conv `Kernel
    & info [ "impl" ] ~docv:"ENGINE"
        ~doc:"Columnar bundle-plan engine: $(b,kernel) or $(b,interpreter).")

(* --- traffic --- *)

let traffic_cmd =
  let run density length steps seed =
    let params = { Mde.Abs.Traffic.default_params with length } in
    let rng = Mde.Prob.Rng.create ~seed () in
    let road = Mde.Abs.Traffic.create params ~density rng in
    for _ = 1 to 100 do
      Mde.Abs.Traffic.step road
    done;
    print_string (Mde.Abs.Traffic.space_time_diagram road ~steps ~lane:0);
    Printf.printf "\ndensity %.2f: flow %.4f, mean speed %.2f, jammed %.1f%%\n" density
      (Mde.Abs.Traffic.flow road)
      (Mde.Abs.Traffic.mean_speed road)
      (100. *. Mde.Abs.Traffic.jammed_fraction road)
  in
  let density =
    Arg.(value & opt float 0.2 & info [ "density" ] ~docv:"D" ~doc:"Car density in (0,1).")
  in
  let length =
    Arg.(value & opt int 120 & info [ "length" ] ~docv:"CELLS" ~doc:"Ring-road length.")
  in
  let steps =
    Arg.(value & opt int 30 & info [ "steps" ] ~docv:"N" ~doc:"Diagram rows to print.")
  in
  Cmd.v
    (Cmd.info "traffic" ~doc:"Nagel-Schreckenberg traffic with emergent jams")
    Term.(const run $ density $ length $ steps $ seed_arg)

(* --- epidemic --- *)

let epidemic_cmd =
  let run people days policy fear seed =
    let network = Mde.Epidemic.Network.synthetic ~seed ~n:people ~community_degree:4. () in
    let params =
      if fear then
        { Mde.Epidemic.Indemics.default_params with
          Mde.Epidemic.Indemics.fear_gain = 0.04;
          fear_distancing = 0.45
        }
      else Mde.Epidemic.Indemics.default_params
    in
    let engine = Mde.Epidemic.Indemics.create ~seed:(seed + 1) network params in
    let policy_fn =
      match policy with
      | "none" -> None
      | "vaccinate-preschool" ->
        Some
          (fun engine ->
            let cat = Mde.Epidemic.Indemics.catalog engine in
            let person = Catalog.find cat "Person" in
            let infected = Catalog.find cat "InfectedPerson" in
            let preschool =
              Query.of_table person
              |> Query.where Expr.(col "age" <= int 4)
              |> Query.select_cols [ "pid" ] |> Query.run
            in
            let infected_preschool =
              Query.of_table preschool
              |> Query.join ~on:[ ("pid", "ipid") ]
                   (Algebra.rename [ ("pid", "ipid") ] infected)
              |> Query.count
            in
            if
              float_of_int infected_preschool
              > 0.01 *. float_of_int (Table.cardinality preschool)
            then
              Mde.Epidemic.Indemics.apply_intervention engine
                ~pids:
                  (Array.to_list (Table.rows preschool)
                  |> List.map (fun r -> Value.to_int r.(0)))
                Mde.Epidemic.Indemics.Vaccinate
            else 0)
      | "quarantine" ->
        Some
          (fun engine ->
            let infected = Mde.Epidemic.Indemics.infected_table engine in
            Mde.Epidemic.Indemics.apply_intervention engine
              ~pids:
                (Array.to_list (Table.rows infected)
                |> List.map (fun r -> Value.to_int r.(0)))
              (Mde.Epidemic.Indemics.Quarantine 14))
      | "close-daycare" ->
        Some
          (fun engine ->
            if Mde.Epidemic.Indemics.day engine = 20 then begin
              Mde.Epidemic.Indemics.close_contacts engine ~kind:"daycare" ~days:60;
              0
            end
            else 0)
      | other ->
        Printf.eprintf "unknown policy %S\n" other;
        exit 1
    in
    let records = Mde.Epidemic.Indemics.run engine ~days ~policy:policy_fn in
    Printf.printf "%6s %8s %8s %8s %8s %8s\n" "day" "S" "E" "I" "R" "V";
    Array.iteri
      (fun d (r : Mde.Epidemic.Indemics.day_record) ->
        if d mod 10 = 0 then
          Printf.printf "%6d %8d %8d %8d %8d %8d\n" d r.Mde.Epidemic.Indemics.susceptible
            r.Mde.Epidemic.Indemics.exposed r.Mde.Epidemic.Indemics.infectious
            r.Mde.Epidemic.Indemics.recovered r.Mde.Epidemic.Indemics.vaccinated)
      records;
    Printf.printf "\nattack rate: %.1f%%  economic cost: %.0f\n"
      (100. *. Mde.Epidemic.Indemics.attack_rate records)
      (Mde.Epidemic.Indemics.economic_cost engine
         Mde.Epidemic.Indemics.default_cost_params records)
  in
  let people =
    Arg.(value & opt int 2000 & info [ "people" ] ~docv:"N" ~doc:"Population size.")
  in
  let days = Arg.(value & opt int 150 & info [ "days" ] ~docv:"N" ~doc:"Days to simulate.") in
  let policy =
    Arg.(
      value
      & opt string "none"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"none | vaccinate-preschool | quarantine | close-daycare")
  in
  let fear =
    Arg.(value & flag & info [ "fear" ] ~doc:"Enable fear-driven voluntary distancing.")
  in
  Cmd.v
    (Cmd.info "epidemic" ~doc:"Indemics-style contact-network epidemic with interventions")
    Term.(const run $ people $ days $ policy $ fear $ seed_arg)

(* --- fire --- *)

let fire_cmd =
  let run width height steps particles proposal seed =
    let params = Mde.Assimilate.Wildfire.default_params ~width ~height in
    let proposal =
      match proposal with
      | "bootstrap" -> `Bootstrap
      | "aware" -> `Sensor_aware
      | other ->
        Printf.eprintf "unknown proposal %S (bootstrap|aware)\n" other;
        exit 1
    in
    let result =
      Mde.Assimilate.Assimilation.run_experiment ~seed ~n_particles:particles ~params
        ~ignition:[ (width / 2, height / 2) ]
        ~sensor_spacing:4 ~steps ~proposal ()
    in
    Printf.printf "%6s %14s %16s %8s\n" "step" "filter error" "open-loop error" "ESS";
    Array.iter
      (fun (e : Mde.Assimilate.Assimilation.step_error) ->
        Printf.printf "%6d %14d %16d %8.1f\n" e.Mde.Assimilate.Assimilation.step
          e.Mde.Assimilate.Assimilation.filter_error
          e.Mde.Assimilate.Assimilation.open_loop_error e.Mde.Assimilate.Assimilation.ess)
      result.Mde.Assimilate.Assimilation.errors;
    Printf.printf "\nmean error: filter %.1f vs open-loop %.1f\n"
      result.Mde.Assimilate.Assimilation.mean_filter_error
      result.Mde.Assimilate.Assimilation.mean_open_loop_error
  in
  let width = Arg.(value & opt int 20 & info [ "width" ] ~docv:"W" ~doc:"Grid width.") in
  let height = Arg.(value & opt int 20 & info [ "height" ] ~docv:"H" ~doc:"Grid height.") in
  let steps = Arg.(value & opt int 12 & info [ "steps" ] ~docv:"N" ~doc:"Assimilation steps.") in
  let particles =
    Arg.(value & opt int 100 & info [ "particles" ] ~docv:"N" ~doc:"Particle count.")
  in
  let proposal =
    Arg.(value & opt string "bootstrap" & info [ "proposal" ] ~docv:"P" ~doc:"bootstrap | aware")
  in
  Cmd.v
    (Cmd.info "fire" ~doc:"wildfire data assimilation with a particle filter")
    Term.(const run $ width $ height $ steps $ particles $ proposal $ seed_arg)

(* --- schelling --- *)

let schelling_cmd =
  let run size threshold vacancy seed =
    let t = Mde.Abs.Schelling.create ~seed ~size ~vacancy ~threshold () in
    Printf.printf "initial segregation index: %.3f\n\n%s\n"
      (Mde.Abs.Schelling.segregation_index t)
      (Mde.Abs.Schelling.to_string t);
    let steps = Mde.Abs.Schelling.run_until_settled t in
    Printf.printf "after %d steps: segregation index %.3f\n\n%s" steps
      (Mde.Abs.Schelling.segregation_index t)
      (Mde.Abs.Schelling.to_string t)
  in
  let size = Arg.(value & opt int 24 & info [ "size" ] ~docv:"N" ~doc:"Grid side length.") in
  let threshold =
    Arg.(value & opt float 0.4 & info [ "threshold" ] ~docv:"T" ~doc:"Like-neighbour tolerance.")
  in
  let vacancy =
    Arg.(value & opt float 0.2 & info [ "vacancy" ] ~docv:"V" ~doc:"Vacant-cell fraction.")
  in
  Cmd.v
    (Cmd.info "schelling" ~doc:"Schelling segregation dynamics")
    Term.(const run $ size $ threshold $ vacancy $ seed_arg)

(* --- market --- *)

let market_cmd =
  let run a b agents noise steps seed =
    let rng = Mde.Prob.Rng.create ~seed () in
    let returns =
      Mde.Calibrate.Market.simulate_returns rng
        { Mde.Calibrate.Market.n_agents = agents; a; b; noise }
        ~steps ~burn_in:(steps / 5)
    in
    let m = Mde.Calibrate.Market.moments returns in
    Printf.printf "herding market (N=%d, a=%.4f, b=%.2f, noise=%.4f), %d steps\n\n"
      agents a b noise steps;
    Printf.printf "variance          %.4g\n" m.(0);
    Printf.printf "kurtosis          %.3f%s\n" m.(1)
      (if m.(1) > 3.5 then "   (fat tails)" else "");
    Printf.printf "acf1 of |returns| %.3f%s\n" m.(2)
      (if m.(2) > 0.1 then "   (volatility clustering)" else "");
    let summary = Mde.Prob.Stats.summarize returns in
    Printf.printf "\nreturns: %s\n"
      (Format.asprintf "%a" Mde.Prob.Stats.pp_summary summary)
  in
  let a =
    Arg.(value & opt float 0.002 & info [ "switching" ] ~doc:"Idiosyncratic switching rate a.")
  in
  let b = Arg.(value & opt float 0.3 & info [ "herding" ] ~doc:"Herding strength b.") in
  let agents = Arg.(value & opt int 50 & info [ "agents" ] ~doc:"Trader count.") in
  let noise = Arg.(value & opt float 0.002 & info [ "noise" ] ~doc:"News volatility.") in
  let steps = Arg.(value & opt int 2000 & info [ "steps" ] ~doc:"Return observations.") in
  Cmd.v
    (Cmd.info "market" ~doc:"the Kirman/Alfarano herding asset market")
    Term.(const run $ a $ b $ agents $ noise $ steps $ seed_arg)

(* --- mcdb --- *)

let mcdb_cmd =
  let run rows reps domains seed =
    if rows < 1 || reps < 1 || domains < 1 then begin
      prerr_endline "mcdb: --rows, --reps and --domains must be positive";
      exit 2
    end;
    let patients =
      Table.create
        (Schema.of_list [ ("pid", Value.Tint); ("gender", Value.Tstring) ])
        (List.init rows (fun i ->
             [| Value.Int i; Value.String (if i mod 2 = 0 then "F" else "M") |]))
    in
    let param =
      Table.create
        (Schema.of_list [ ("mean", Value.Tfloat); ("std", Value.Tfloat) ])
        [ [| Value.Float 120.; Value.Float 15. |] ]
    in
    let st =
      Mde.Mcdb.Stochastic_table.define ~name:"SBP_DATA"
        ~schema:
          (Schema.of_list
             [ ("pid", Value.Tint); ("gender", Value.Tstring); ("sbp", Value.Tfloat) ])
        ~driver:patients ~vg:Mde.Mcdb.Vg.normal
        ~params:(fun _ -> [ param ])
        ~combine:(fun d v -> [| d.(0); d.(1); v.(0) |])
    in
    let db = Mde.Mcdb.Database.create () in
    Mde.Mcdb.Database.add_stochastic db st;
    let query catalog =
      let t = Catalog.find catalog "SBP_DATA" in
      let total = ref 0. and n = ref 0 in
      Table.iter
        (fun row ->
          total := !total +. Value.to_float row.(2);
          incr n)
        t;
      !total /. float_of_int !n
    in
    let wall f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let samples_seq, t_seq =
      wall (fun () ->
          Mde.Mcdb.Database.monte_carlo db (Mde.Prob.Rng.create ~seed ()) ~reps ~query)
    in
    Printf.printf "MCDB mean-SBP query: %d driver rows, %d repetitions\n\n" rows reps;
    Printf.printf "sequential        %.3f s   %s\n" t_seq
      (Format.asprintf "%a" Mde.Mcdb.Estimator.pp_estimate
         (Mde.Mcdb.Estimator.of_samples samples_seq));
    if domains > 1 then begin
      let pool = Mde.Par.Pool.shared ~domains () in
      let samples_par, t_par =
        wall (fun () ->
            Mde.Mcdb.Database.monte_carlo ~pool db
              (Mde.Prob.Rng.create ~seed ())
              ~reps ~query)
      in
      Printf.printf "%d domains         %.3f s   %s\n" domains t_par
        (Format.asprintf "%a" Mde.Mcdb.Estimator.pp_estimate
           (Mde.Mcdb.Estimator.of_samples samples_par));
      Printf.printf "\nspeedup %.2fx on %d core(s); outputs %s\n" (t_seq /. t_par)
        (Domain.recommended_domain_count ())
        (if samples_seq = samples_par then "bit-identical (same seed, split streams)"
         else "DIFFER — determinism bug, please report");
      if samples_seq <> samples_par then exit 1
    end
  in
  let rows =
    Arg.(value & opt int 500 & info [ "rows" ] ~docv:"N" ~doc:"Driver-table rows.")
  in
  let reps =
    Arg.(value & opt int 400 & info [ "reps" ] ~docv:"N" ~doc:"Monte Carlo repetitions.")
  in
  let domains =
    Arg.(
      value
      & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Also run the replications on a pool of $(docv) domains and report \
             sequential-vs-parallel wall time plus an output-equality check.")
  in
  Cmd.v
    (Cmd.info "mcdb"
       ~doc:"Monte Carlo database replications, optionally domain-parallel")
    Term.(const run $ rows $ reps $ domains $ seed_arg)

(* --- housing --- *)

let housing_cmd =
  let run bust_year seed =
    let full = Mde.Timeseries.Synthetic.housing_index ~seed ~bust_year () in
    let history = Mde.Timeseries.Series.sub_before full bust_year in
    Printf.printf "%-16s %14s %12s\n" "model" "in-sample RMSE" "holdout RMSE";
    List.iter
      (fun (name, model) ->
        let fit = Mde.Timeseries.Forecast.fit model history in
        Printf.printf "%-16s %14.2f %12.2f\n" name
          (Mde.Timeseries.Forecast.in_sample_rmse fit)
          (Mde.Timeseries.Forecast.extrapolation_error fit ~actual:full))
      [ ("linear trend", Mde.Timeseries.Forecast.Linear_trend);
        ("quadratic", Mde.Timeseries.Forecast.Quadratic_trend);
        ("AR(12)", Mde.Timeseries.Forecast.Ar 12) ];
    Printf.printf "\n(The regime change at %.0f defeats every extrapolation.)\n" bust_year
  in
  let bust =
    Arg.(value & opt float 2006. & info [ "bust-year" ] ~docv:"Y" ~doc:"Regime-change year.")
  in
  Cmd.v
    (Cmd.info "housing" ~doc:"the Figure 1 extrapolation cautionary tale")
    Term.(const run $ bust $ seed_arg)

(* --- metrics --- *)

let metrics_cmd =
  let run requests concurrency zipf catalog_size domains format out seed =
    if requests < 1 || concurrency < 1 || catalog_size < 1 || domains < 1 then begin
      prerr_endline
        "mde metrics: --requests, --concurrency, --catalog and --domains must be \
         positive";
      exit 2
    end;
    (* Install the live registry before any instrumented object exists:
       the server, cache, scheduler and pool capture it at construction. *)
    let registry = Mde.Obs.create () in
    Mde.Obs.set_default registry;
    (* Always route through a pool (1-domain pools run sequentially on
       the caller) so pool batch/chunk/steal metrics appear in the
       exposition alongside the serving-layer ones. *)
    let pool = Mde.Par.Pool.create ~domains () in
    let server = Mde.Serve.Demo.server ~pool () in
    let catalog = Mde.Serve.Demo.catalog catalog_size in
    let config = { Mde.Serve.Workload.requests; concurrency; zipf_s = zipf; seed } in
    let report, _responses =
      Mde.Serve.Workload.run (Mde.Serve.Target.of_server server) ~catalog config
    in
    Mde.Par.Pool.shutdown pool;
    Mde.Obs.set_default Mde.Obs.noop;
    Printf.eprintf "mde: workload served %d/%d requests in %.3f s\n%!" report.served
      report.issued report.elapsed;
    let prom = Mde.Obs.Export.prometheus registry in
    (match Mde.Obs.Export.validate_prometheus prom with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "mde metrics: exporter emitted a malformed line: %s\n" msg;
      exit 1);
    let payload =
      match format with
      | "prom" -> prom
      | "json" -> Mde.Obs.Export.json registry ^ "\n"
      | other ->
        Printf.eprintf "mde metrics: unknown format %S (prom|json)\n" other;
        exit 2
    in
    match out with
    | None -> print_string payload
    | Some path ->
      let oc = open_out path in
      output_string oc payload;
      close_out oc;
      Printf.eprintf "mde: metrics snapshot written to %s\n" path
  in
  let requests =
    Arg.(value & opt int 120 & info [ "requests" ] ~docv:"N" ~doc:"Workload requests.")
  in
  let concurrency =
    Arg.(
      value & opt int 8
      & info [ "concurrency" ] ~docv:"N" ~doc:"Closed-loop clients per round.")
  in
  let zipf =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S" ~doc:"Zipf popularity skew exponent.")
  in
  let catalog_size =
    Arg.(
      value & opt int 24 & info [ "catalog" ] ~docv:"N" ~doc:"Distinct request templates.")
  in
  let format =
    Arg.(
      value & opt string "prom"
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Snapshot format: prom (Prometheus text) or json.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Serve the workload over a pool of $(docv) domains; pool metrics are \
             exported either way (a 1-domain pool runs sequentially).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the snapshot to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "run the demo serving workload with observability on and dump the metrics \
          snapshot (validated Prometheus text or JSON)")
    Term.(
      const run $ requests $ concurrency $ zipf $ catalog_size $ domains $ format $ out
      $ seed_arg)

(* --- bundle-bench --- *)

let bundle_bench_cmd =
  let run rows reps domains seed =
    if rows < 1 || reps < 2 || domains < 1 then begin
      prerr_endline
        "mde bundle-bench: --rows and --domains must be positive, --reps >= 2";
      exit 2
    end;
    let result = Mde_bundle_bench.run ~domains ~rows ~reps ~seed () in
    Mde_bundle_bench.print result;
    let path = Mde_bundle_bench.emit ~domains ~seed result in
    Printf.printf "recorded in %s\n" path;
    if not result.Mde_bundle_bench.identical then begin
      prerr_endline "mde bundle-bench: execution paths disagree";
      exit 1
    end
  in
  let rows =
    Arg.(
      value & opt int 2000
      & info [ "rows" ] ~docv:"N" ~doc:"Driver rows in the stochastic table.")
  in
  let reps =
    Arg.(
      value & opt int 200
      & info [ "reps" ] ~docv:"N" ~doc:"Monte Carlo repetitions per tuple bundle.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Domain-pool size for bundle construction and the kernel sweep.")
  in
  Cmd.v
    (Cmd.info "bundle-bench"
       ~doc:
         "naive vs interpreted vs columnar tuple-bundle execution of one MCDB plan \
          (records BENCH_bundle.json)")
    Term.(const run $ rows $ reps $ domains $ seed_arg)

(* --- relational-bench --- *)

let relational_bench_cmd =
  let run rows domains seed =
    if rows < 1 || domains < 1 then begin
      prerr_endline "mde relational-bench: --rows and --domains must be positive";
      exit 2
    end;
    let result = Mde_relational_bench.run ~domains ~rows ~seed () in
    Mde_relational_bench.print result;
    let path = Mde_relational_bench.emit ~domains ~seed result in
    Printf.printf "recorded in %s\n" path;
    if not result.Mde_relational_bench.identical then begin
      prerr_endline "mde relational-bench: engines disagree";
      exit 1
    end;
    let keyed = Mde_relational_bench.run_keyed ~domains ~rows ~seed () in
    Mde_relational_bench.print_keyed keyed;
    let path = Mde_relational_bench.emit_keyed ~domains ~seed keyed in
    Printf.printf "recorded in %s\n" path;
    if not keyed.Mde_relational_bench.kidentical then begin
      prerr_endline "mde relational-bench: packed and boxed keyed operators disagree";
      exit 1
    end
  in
  let rows =
    Arg.(
      value & opt int 200_000
      & info [ "rows" ] ~docv:"N" ~doc:"Rows in the randomized measurement table.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Domain-pool size for the kernel select/extend stages.")
  in
  Cmd.v
    (Cmd.info "relational-bench"
       ~doc:
         "row algebra vs interpreted vs compiled columnar execution of one relational \
          pipeline (records BENCH_relational.json)")
    Term.(const run $ rows $ domains $ seed_arg)

(* --- serve-bench --- *)

let serve_bench_cmd =
  let run requests concurrency zipf catalog_size cache_capacity domains deadline metrics
      seed =
    if requests < 1 || concurrency < 1 || catalog_size < 1 || cache_capacity < 1
       || domains < 1
    then begin
      prerr_endline
        "mde serve-bench: --requests, --concurrency, --catalog, --cache and --domains \
         must be positive";
      exit 2
    end;
    let clock = Unix.gettimeofday in
    let deadline = if deadline > 0. then Some deadline else None in
    (* Instrumented objects capture the default registry at construction,
       so it must be live before the pool and server are built. The
       instrumentation never touches RNG streams, so the cold-vs-warm
       bit-identity verdict below holds with metrics on. *)
    let registry =
      if metrics then begin
        let r = Mde.Obs.create () in
        Mde.Obs.set_default r;
        Some r
      end
      else None
    in
    let run_with pool =
      let server = Mde.Serve.Demo.server ?pool ~clock ~cache_capacity () in
      let catalog = Mde.Serve.Demo.catalog ?deadline catalog_size in
      let config =
        { Mde.Serve.Workload.requests; concurrency; zipf_s = zipf; seed }
      in
      ( config,
        Mde.Serve.Demo.cold_warm ~clock
          (Mde.Serve.Target.of_server server)
          ~catalog config )
    in
    let config, (cold, warm, verdict) =
      if domains > 1 then
        Mde.Par.Pool.with_pool ~domains (fun pool -> run_with (Some pool))
      else run_with None
    in
    if metrics then Mde.Obs.set_default Mde.Obs.noop;
    Printf.printf
      "serve-bench: %d requests, concurrency %d, Zipf s=%.2f over %d templates\n\n"
      config.requests config.concurrency config.zipf_s catalog_size;
    Printf.printf "%-6s %12s %9s %9s %9s %9s %9s %9s\n" "pass" "throughput" "p50" "p95"
      "p99" "hits" "rejected" "degraded";
    let row label (r : Mde.Serve.Workload.report) =
      Printf.printf "%-6s %9.1f/s %7.2fms %7.2fms %7.2fms %8.1f%% %8.1f%% %9d\n" label
        r.throughput (1e3 *. r.p50) (1e3 *. r.p95) (1e3 *. r.p99) (100. *. r.hit_rate)
        (100. *. r.rejection_rate) r.degraded
    in
    row "cold" cold;
    row "warm" warm;
    (match verdict with
    | `Identical n ->
      Printf.printf "\ncold vs warm estimates: bit-identical over %d served requests\n" n
    | `Mismatch n -> Printf.printf "\ncold vs warm estimates: %d MISMATCHES\n" n);
    let path =
      Mde_bench_emit.append ~file:"BENCH_serve.json" ~name:"serve-zipf"
        ([
          ("requests", Mde_bench_emit.Int config.requests);
          ("concurrency", Int config.concurrency);
          ("zipf_s", Float config.zipf_s);
          ("catalog", Int catalog_size);
          ("seed", Int config.seed);
          ("domains", Int domains);
          ( "deadline_s",
            match deadline with Some d -> Float d | None -> Float Float.nan );
          ("cold_throughput_rps", Float cold.throughput);
          ("warm_throughput_rps", Float warm.throughput);
          ("warm_p50_s", Float warm.p50);
          ("warm_p95_s", Float warm.p95);
          ("warm_p99_s", Float warm.p99);
          ("cold_hit_rate", Float cold.hit_rate);
          ("warm_hit_rate", Float warm.hit_rate);
          ("rejection_rate", Float warm.rejection_rate);
          ( "identical_output",
            Bool (match verdict with `Identical _ -> true | _ -> false) );
        ]
        @
        match registry with
        | Some r -> [ ("metrics", Mde_bench_emit.Json (Mde.Obs.Export.json r)) ]
        | None -> [])
    in
    Printf.printf "recorded in %s\n" path;
    match verdict with
    | `Mismatch _ -> exit 1
    | `Identical _ ->
      if deadline = None && warm.hit_rate <= cold.hit_rate then begin
        prerr_endline "serve-bench: warm hit rate did not improve on cold";
        exit 1
      end
  in
  let requests =
    Arg.(value & opt int 240 & info [ "requests" ] ~docv:"N" ~doc:"Requests per pass.")
  in
  let concurrency =
    Arg.(
      value & opt int 8
      & info [ "concurrency" ] ~docv:"N" ~doc:"Closed-loop clients per round.")
  in
  let zipf =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S" ~doc:"Zipf popularity skew exponent.")
  in
  let catalog_size =
    Arg.(
      value & opt int 24 & info [ "catalog" ] ~docv:"N" ~doc:"Distinct request templates.")
  in
  let cache_capacity =
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N" ~doc:"Domain-pool size for batch fan-out.")
  in
  let deadline =
    Arg.(
      value & opt float 0.
      & info [ "deadline" ] ~docv:"S"
          ~doc:
            "Per-request deadline in seconds (0 = none). Deadlines may degrade \
             estimates, so the bit-identical warm-vs-cold check is skipped.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Run with a live observability registry and attach its JSON snapshot to \
             the BENCH_serve.json entry.")
  in
  Cmd.v
    (Cmd.info "serve-bench"
       ~doc:"Zipf workload against the cached, batched serving layer")
    Term.(
      const run $ requests $ concurrency $ zipf $ catalog_size $ cache_capacity
      $ domains $ deadline $ metrics $ seed_arg)

(* --- shard-bench --- *)

let shard_bench_cmd =
  let run shards rate requests catalog queue zipf domains rows seed =
    if shards < 1 || requests < 1 || catalog < 1 || queue < 1 || domains < 1 || rows < 1
    then begin
      prerr_endline
        "mde shard-bench: --shards, --requests, --catalog, --queue, --rows and \
         --domains must be positive";
      exit 2
    end;
    if rate < 0. || zipf < 0. then begin
      prerr_endline "mde shard-bench: --rate and --zipf must be non-negative";
      exit 2
    end;
    let rates = if rate > 0. then [ rate ] else [] in
    let result =
      Mde_shard_bench.run ~domains ~shards ~rows ~catalog ~arrivals:requests ~queue
        ~zipf ~rates ~seed ()
    in
    Mde_shard_bench.print result;
    let path = Mde_shard_bench.emit result in
    Printf.printf "recorded in %s\n" path;
    match Mde_shard_bench.gate result with
    | Ok () -> ()
    | Error msg ->
      prerr_endline ("mde shard-bench: " ^ msg);
      exit 1
  in
  let shards =
    Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N" ~doc:"Shards in the front.")
  in
  let rate =
    Arg.(
      value & opt float 0.
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Offered load in requests per second for a single open-loop point (0 = \
             sweep multiples of the measured capacity, ending deliberately \
             overloaded).")
  in
  let requests =
    Arg.(
      value & opt int 160
      & info [ "requests" ] ~docv:"N"
          ~doc:"Requests in the identity pass and arrivals per sweep point.")
  in
  let catalog_size =
    Arg.(
      value & opt int 16 & info [ "catalog" ] ~docv:"N" ~doc:"Distinct request templates.")
  in
  let queue =
    Arg.(
      value & opt int 8
      & info [ "queue" ] ~docv:"N"
          ~doc:"Per-shard scheduler queue capacity during the sweep.")
  in
  let zipf =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S" ~doc:"Zipf popularity skew exponent.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N" ~doc:"Domain-pool size shared by every shard.")
  in
  let rows =
    Arg.(
      value & opt int 60
      & info [ "rows" ] ~docv:"N" ~doc:"Driver rows in the demo stochastic table.")
  in
  Cmd.v
    (Cmd.info "shard-bench"
       ~doc:
         "consistent-hash sharded serving front: bit-identity vs a single shard, then \
          an open-loop latency-under-load sweep with typed shedding (records \
          BENCH_serve.json)")
    Term.(
      const run $ shards $ rate $ requests $ catalog_size $ queue $ zipf $ domains
      $ rows $ seed_arg)

(* --- session-bench --- *)

let session_bench_cmd =
  let run tick_reps domains rows impl seed =
    if tick_reps < 1 || domains < 1 || rows < 1 then begin
      prerr_endline
        "mde session-bench: --tick-reps, --domains and --rows must be positive";
      exit 2
    end;
    let result = Mde_session_bench.run ~domains ~rows ~impl ~tick_reps ~seed () in
    Mde_session_bench.print result;
    let path = Mde_session_bench.emit result in
    Printf.printf "recorded in %s\n" path;
    match Mde_session_bench.gate result with
    | Ok () -> ()
    | Error msg ->
      prerr_endline ("mde session-bench: " ^ msg);
      exit 1
  in
  let tick_reps =
    Arg.(
      value & opt int 64
      & info [ "tick-reps" ] ~docv:"N"
          ~doc:"Replication budget each session tick may spend.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N" ~doc:"Domain-pool size behind the servers.")
  in
  let rows =
    Arg.(
      value & opt int 60
      & info [ "rows" ] ~docv:"N" ~doc:"Driver rows in the demo stochastic table.")
  in
  Cmd.v
    (Cmd.info "session-bench"
       ~doc:
         "progressive-refinement query sessions: GenIE-style explorer vs round-robin \
          reps-to-target race, plus converged-session vs one-shot bit-identity \
          (records BENCH_session.json)")
    Term.(const run $ tick_reps $ domains $ rows $ impl_arg $ seed_arg)

let () =
  let info =
    Cmd.info "mde" ~version:"1.0.0"
      ~doc:"model-data ecosystems: simulators from Haas (PODS 2014), runnable"
  in
  let group =
    Cmd.group info
      [ traffic_cmd; epidemic_cmd; fire_cmd; schelling_cmd; market_cmd; mcdb_cmd;
        housing_cmd; serve_bench_cmd; shard_bench_cmd; session_bench_cmd;
        bundle_bench_cmd; relational_bench_cmd; metrics_cmd ]
  in
  (* cmdliner's usage errors span several lines (message + usage + help
     pointer); compress to the first line so scripts see one diagnostic
     and a non-zero exit. *)
  let err_buf = Buffer.create 256 in
  let err_fmt = Format.formatter_of_buffer err_buf in
  match Cmd.eval_value ~err:err_fmt group with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error `Exn ->
    Format.pp_print_flush err_fmt ();
    prerr_string (Buffer.contents err_buf);
    exit 125
  | Error (`Parse | `Term) ->
    Format.pp_print_flush err_fmt ();
    let msg = String.trim (Buffer.contents err_buf) in
    let first_line =
      match String.index_opt msg '\n' with
      | Some i -> String.trim (String.sub msg 0 i)
      | None -> msg
    in
    prerr_endline
      (if first_line = "" then "mde: usage error, try 'mde --help'" else first_line);
    exit 2
