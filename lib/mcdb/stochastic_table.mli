(** Stochastic-table definitions, mirroring MCDB's

    {v
    CREATE TABLE SBP_DATA(PID, GENDER, SBP) AS
      FOR EACH p IN PATIENTS
      WITH SBP AS Normal((SELECT s.MEAN, s.STD FROM SBP_PARAM s))
      SELECT p.PID, p.GENDER, b.VALUE FROM SBP b
    v}

    A definition names a driver table ([FOR EACH]), a VG function
    ([WITH ... AS]), a per-driver-row parametrization (the inner SELECT),
    and a combiner (the outer SELECT) that builds each output row from the
    driver row and one VG output row. *)

open Mde_relational

type t

val define :
  name:string ->
  schema:Schema.t ->
  driver:Table.t ->
  vg:Vg.t ->
  params:(Table.row -> Table.t list) ->
  combine:(Table.row -> Table.row -> Table.row) ->
  t
(** [combine driver_row vg_row] must produce a row matching [schema]. *)

val name : t -> string
val schema : t -> Schema.t
val vg : t -> Vg.t
val driver : t -> Table.t

val fingerprint : t -> string
(** Canonical one-line description of the definition (name, VG function,
    output schema, driver cardinality) — stable across runs, so a serving
    layer can use it as a cache-key component. The per-row [params] and
    [combine] closures are not observable and are assumed to be determined
    by the rest of the definition. *)

val generate_for_row : t -> Mde_prob.Rng.t -> Table.row -> Table.row list
(** Run the VG function for a single driver row and combine: the unit of
    work that both the naive and the tuple-bundle paths share. *)

val instantiate : t -> Mde_prob.Rng.t -> Table.t
(** Draw one realization of the whole table: loop over the driver rows,
    call the VG function once per row, and UNION the combined outputs. *)

val instantiate_many :
  ?pool:Mde_par.Pool.t -> t -> Mde_prob.Rng.t -> int -> Table.t array
(** n independent realizations (the naive Monte Carlo path: the query
    must then be run once per instance), each drawn on its own split
    stream; with [?pool] the realizations are drawn in parallel with
    bit-identical output. *)
