(** The Monte Carlo database proper: ordinary relations plus any number
    of stochastic-table definitions. Queries are ordinary functions over
    a realized {!Mde_relational.Catalog} — "running an SQL query over the
    database instance generates a sample from the query-result
    distribution. Iteration of this process yields a collection of
    samples" (§2.1). This is the fully general execution path; the
    tuple-bundle engine ({!Bundle}) is its one-pass optimization for
    row-stable VG functions. *)

open Mde_relational

type t

val create : unit -> t

val add_table : t -> string -> Table.t -> unit
(** Register an ordinary (deterministic) relation. *)

val add_stochastic : t -> Stochastic_table.t -> unit
(** Register a stochastic table (keyed by its name). Definitions may
    consult the deterministic relations through the closures they were
    built with. *)

val deterministic_tables : t -> string list
val stochastic_tables : t -> string list

val fingerprint : t -> string
(** Canonical description of the database contents (deterministic
    relations with schema and cardinality, stochastic definitions via
    {!Stochastic_table.fingerprint}), in sorted name order — the
    database component of a serving-layer cache key. *)

val instantiate : t -> Mde_prob.Rng.t -> Catalog.t
(** One database instance: every deterministic relation plus one
    realization of every stochastic table, as a catalog ready for
    querying. *)

val monte_carlo :
  ?pool:Mde_par.Pool.t ->
  t ->
  Mde_prob.Rng.t ->
  reps:int ->
  query:(Catalog.t -> float) ->
  float array
(** The MCDB loop: realize, query, repeat — one sample of the
    query-result distribution per repetition, each on a split RNG
    stream. With [?pool] the repetitions run in parallel over the
    domain pool; because every repetition owns its pre-split stream, the
    samples are bit-identical to the sequential run. Raises
    [Invalid_argument] if [reps < 1]. *)

val plan_samples :
  ?pool:Mde_par.Pool.t ->
  ?impl:Bundle.impl ->
  t ->
  Mde_prob.Rng.t ->
  table:string ->
  reps:int ->
  Bundle.plan ->
  float array
(** The tuple-bundle counterpart of {!monte_carlo} for plans over one
    stochastic table: build a columnar {!Bundle} (one VG sweep for all
    repetitions) and run the plan in a single fused pass, returning the
    per-repetition samples of the plan's first aggregate. Bit-identical
    to realizing instance [r] and running the plan on it, for every [r]
    (the property the bundle tests assert). The plan must aggregate into
    a single global group ([group_keys = []]) and name at least one
    aggregate; the table's VG function must be row-stable. Raises
    [Invalid_argument] otherwise, or for an unknown [table], or
    [reps < 1]. *)

val estimate :
  ?pool:Mde_par.Pool.t ->
  t ->
  Mde_prob.Rng.t ->
  reps:int ->
  query:(Catalog.t -> float) ->
  Estimator.estimate
(** Convenience: {!monte_carlo} reduced to a mean estimate with CI.
    When a live {!Mde_obs.default} registry is installed, the call runs
    under an [mcdb.estimate] span and records replications executed
    ([mde_mcdb_replications_total]) and estimator wall time
    ([mde_mcdb_estimate_seconds]); the instrumentation never touches the
    RNG, so results are bit-identical either way. *)
