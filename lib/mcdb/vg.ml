open Mde_relational
module Rng = Mde_prob.Rng
module Dist = Mde_prob.Dist

type t = {
  name : string;
  output : Schema.t;
  row_stable : bool;
  generate : Rng.t -> Table.t list -> Table.row list;
}

let create ~name ~output ?(row_stable = false) generate =
  { name; output; row_stable; generate }

let single_param_row = function
  | param_table :: _ when Table.cardinality param_table >= 1 -> (Table.rows param_table).(0)
  | _ -> invalid_arg "Vg: expected a non-empty first parameter table"

let float_schema = Schema.of_list [ ("value", Value.Tfloat) ]

let normal =
  create ~name:"Normal" ~output:float_schema ~row_stable:true (fun rng params ->
      let row = single_param_row params in
      let mean = Value.to_float row.(0) and std = Value.to_float row.(1) in
      [ [| Value.Float (Dist.sample (Dist.Normal { mean; std }) rng) |] ])

let uniform =
  create ~name:"Uniform" ~output:float_schema ~row_stable:true (fun rng params ->
      let row = single_param_row params in
      let lo = Value.to_float row.(0) and hi = Value.to_float row.(1) in
      [ [| Value.Float (Rng.float_range rng lo hi) |] ])

let poisson =
  create ~name:"Poisson"
    ~output:(Schema.of_list [ ("value", Value.Tint) ])
    ~row_stable:true
    (fun rng params ->
      let row = single_param_row params in
      let rate = Value.to_float row.(0) in
      [ [| Value.Int (Dist.sample_discrete (Dist.Poisson rate) rng) |] ])

let discrete_choice =
  create ~name:"DiscreteChoice"
    ~output:(Schema.of_list [ ("value", Value.Tstring) ])
    ~row_stable:true
    (fun rng params ->
      match params with
      | table :: _ when Table.cardinality table > 0 ->
        let rows = Table.rows table in
        let weights = Array.map (fun r -> Value.to_float r.(1)) rows in
        let idx = Dist.sample_discrete (Dist.Categorical weights) rng in
        [ [| rows.(idx).(0) |] ]
      | _ -> invalid_arg "Vg.discrete_choice: empty parameter table")

let backward_walk ~steps =
  (* Not an assert: validation must survive [-noassert] builds. *)
  if steps <= 0 then invalid_arg "Vg.backward_walk: steps must be positive";
  create ~name:"BackwardWalk"
    ~output:(Schema.of_list [ ("step", Value.Tint); ("price", Value.Tfloat) ])
    (fun rng params ->
      let row = single_param_row params in
      let current = Value.to_float row.(0) and vol = Value.to_float row.(1) in
      (* Walk backward in time: step 0 is today, step -k is k ticks ago.
         Rows are emitted in ascending step order, today last. *)
      let price = ref current in
      let out = ref [ [| Value.Int 0; Value.Float current |] ] in
      for k = 1 to steps do
        let shock = Dist.sample (Dist.Normal { mean = 0.; std = vol }) rng in
        price := !price *. exp (-.shock);
        out := [| Value.Int (-k); Value.Float !price |] :: !out
      done;
      !out)

let option_value ~horizon ~strike =
  if horizon <= 0 then invalid_arg "Vg.option_value: horizon must be positive";
  create ~name:"OptionValue" ~output:float_schema ~row_stable:true
    (fun rng params ->
      let row = single_param_row params in
      let s0 = Value.to_float row.(0) in
      let drift = Value.to_float row.(1) in
      let vol = Value.to_float row.(2) in
      let price = ref s0 in
      for _ = 1 to horizon do
        let shock = Dist.sample (Dist.Normal { mean = 0.; std = vol }) rng in
        price := !price *. exp (drift -. (0.5 *. vol *. vol) +. shock)
      done;
      [ [| Value.Float (Float.max 0. (!price -. strike)) |] ])

let resample_row ~output =
  create ~name:"ResampleRow" ~output ~row_stable:true (fun rng params ->
      match params with
      | table :: _ when Table.cardinality table > 0 ->
        if not (Schema.equal (Table.schema table) output) then
          invalid_arg "Vg.resample_row: parameter schema differs from output";
        let rows = Table.rows table in
        [ Array.copy rows.(Rng.int rng (Array.length rows)) ]
      | _ -> invalid_arg "Vg.resample_row: empty parameter table")

let bayesian_demand =
  create ~name:"BayesianDemand"
    ~output:(Schema.of_list [ ("demand", Value.Tfloat) ])
    ~row_stable:true
    (fun rng params ->
      match params with
      | global :: history :: _ ->
        let g = (Table.rows global).(0) in
        let alpha = Value.to_float g.(0) in
        let beta = Value.to_float g.(1) in
        let price = Value.to_float g.(2) in
        (* Global prior: demand rate ~ Gamma(alpha, 1/beta'); the customer's
           purchase history enters through Gamma-Poisson conjugacy:
           posterior shape = alpha + Σ purchases, rate = beta' + #purchases. *)
        let n_hist = Table.cardinality history in
        let total_purchases =
          Array.fold_left
            (fun acc row -> acc +. Value.to_float row.(0))
            0. (Table.rows history)
        in
        let price_effect = exp (-0.05 *. price) in
        let prior_rate = beta /. price_effect in
        let post_shape = alpha +. total_purchases in
        let post_rate = prior_rate +. float_of_int n_hist in
        let rate_draw =
          Dist.sample (Dist.Gamma { shape = post_shape; scale = 1. /. post_rate }) rng
        in
        [ [| Value.Float rate_draw |] ]
      | _ -> invalid_arg "Vg.bayesian_demand: expected two parameter tables")
