module Stats = Mde_prob.Stats
module Special = Mde_prob.Special

type estimate = {
  n : int;
  dropped : int;
  mean : float;
  std : float;
  std_error : float;
  ci95 : float * float;
}

(* Every entry point drops NaN samples (empty-group repetitions) before
   computing. A non-empty input that cleans to nothing is a caller error
   — every repetition produced no value — and must fail loudly here
   rather than crash deep inside [Stats.quantile] on an empty array. *)
let clean_counted ~who xs =
  let kept =
    Array.of_list (List.filter (fun x -> not (Float.is_nan x)) (Array.to_list xs))
  in
  let total = Array.length xs in
  let dropped = total - Array.length kept in
  if total > 0 && dropped = total then
    invalid_arg
      (Printf.sprintf "Estimator.%s: all %d samples are NaN (every repetition empty)"
         who total);
  (kept, dropped)

let of_samples xs =
  let xs, dropped = clean_counted ~who:"of_samples" xs in
  let n = Array.length xs in
  if n < 2 then
    invalid_arg
      (if dropped = 0 then "Estimator.of_samples: need at least 2 samples"
       else
         Printf.sprintf
           "Estimator.of_samples: need at least 2 samples (%d left after dropping %d NaN)"
           n dropped);
  let mean = Stats.mean xs in
  let std = Stats.std xs in
  let std_error = std /. sqrt (float_of_int n) in
  let z = 1.959963984540054 in
  {
    n;
    dropped;
    mean;
    std;
    std_error;
    ci95 = (mean -. (z *. std_error), mean +. (z *. std_error));
  }

let pp_estimate ppf e =
  (* The printed half-width is derived from the stored interval, so the
     ± and the [lo, hi] always agree. *)
  let lo, hi = e.ci95 in
  Format.fprintf ppf "mean=%.6g ± %.3g (95%% CI [%.6g, %.6g], n=%d)" e.mean
    ((hi -. lo) /. 2.) lo hi e.n

let quantile xs p = Stats.quantile (fst (clean_counted ~who:"quantile" xs)) p

(* [who] for the error message; validation shared by the quantile-style
   queries. Written as [not (p > 0. && ...)] so a NaN parameter also
   fails. These used to be [assert]s, which [-noassert] compiles out —
   the checks must survive release builds. *)
let check_unit_interval ~who ~what p =
  if not (p > 0. && p < 1.) then
    invalid_arg (Printf.sprintf "Estimator.%s: %s must be in (0,1)" who what)

let quantile_ci xs p level =
  let xs, _ = clean_counted ~who:"quantile_ci" xs in
  let n = Array.length xs in
  if n < 2 then invalid_arg "Estimator.quantile_ci: need at least 2 samples";
  check_unit_interval ~who:"quantile_ci" ~what:"p" p;
  check_unit_interval ~who:"quantile_ci" ~what:"level" level;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let z = Special.normal_inv_cdf (1. -. ((1. -. level) /. 2.)) in
  let nf = float_of_int n in
  let half_width = z *. sqrt (nf *. p *. (1. -. p)) in
  let lo_rank = Float.to_int (Float.max 0. (floor ((nf *. p) -. half_width))) in
  let hi_rank = Float.to_int (Float.min (nf -. 1.) (ceil ((nf *. p) +. half_width))) in
  (sorted.(lo_rank), sorted.(hi_rank))

let extreme_quantile xs p =
  let xs, _ = clean_counted ~who:"extreme_quantile" xs in
  let n = Array.length xs in
  check_unit_interval ~who:"extreme_quantile" ~what:"p" p;
  let tail = Float.min p (1. -. p) in
  if float_of_int n *. tail < 1. then
    invalid_arg
      (Printf.sprintf
         "Estimator.extreme_quantile: %d samples leave the %.4g tail empty; \
          draw more repetitions"
         n tail);
  Stats.quantile xs p

let quantiles xs ps =
  let xs, _ = clean_counted ~who:"quantiles" xs in
  if Array.length xs = 0 then invalid_arg "Estimator.quantiles: need at least 1 sample";
  Array.iter (fun p ->
      if not (p >= 0. && p <= 1.) then
        invalid_arg "Estimator.quantiles: every p must be in [0,1]")
    ps;
  Stats.quantiles xs ps

(* extreme_quantile + quantile_ci share the same sorted order statistics;
   serving-layer tail queries want both, so compute them off one sort.
   Kept rank-for-rank identical to the two separate calls (the estimator
   tests assert it). *)
let tail_estimate xs ~p ~level =
  let xs, _ = clean_counted ~who:"tail_estimate" xs in
  let n = Array.length xs in
  if n < 2 then invalid_arg "Estimator.tail_estimate: need at least 2 samples";
  check_unit_interval ~who:"tail_estimate" ~what:"p" p;
  check_unit_interval ~who:"tail_estimate" ~what:"level" level;
  let tail = Float.min p (1. -. p) in
  if float_of_int n *. tail < 1. then
    invalid_arg
      (Printf.sprintf
         "Estimator.tail_estimate: %d samples leave the %.4g tail empty; draw \
          more repetitions"
         n tail);
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let q = Stats.quantile_sorted sorted p in
  let z = Special.normal_inv_cdf (1. -. ((1. -. level) /. 2.)) in
  let nf = float_of_int n in
  let half_width = z *. sqrt (nf *. p *. (1. -. p)) in
  let lo_rank = Float.to_int (Float.max 0. (floor ((nf *. p) -. half_width))) in
  let hi_rank = Float.to_int (Float.min (nf -. 1.) (ceil ((nf *. p) +. half_width))) in
  (q, (sorted.(lo_rank), sorted.(hi_rank)))

let conditional_tail_expectation xs p =
  let xs, _ = clean_counted ~who:"conditional_tail_expectation" xs in
  let q = Stats.quantile xs p in
  let tail = List.filter (fun x -> x >= q) (Array.to_list xs) in
  match tail with
  | [] -> q
  | _ -> Stats.mean (Array.of_list tail)

let threshold_probability xs cutoff =
  let xs, _ = clean_counted ~who:"threshold_probability" xs in
  let n = Array.length xs in
  if n < 1 then invalid_arg "Estimator.threshold_probability: need at least 1 sample";
  let k = Array.fold_left (fun acc x -> if x > cutoff then acc + 1 else acc) 0 xs in
  let p_hat = float_of_int k /. float_of_int n in
  (* Wilson score interval at 95%. *)
  let z = 1.959963984540054 in
  let nf = float_of_int n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. nf) in
  let center = (p_hat +. (z2 /. (2. *. nf))) /. denom in
  let half =
    z *. sqrt ((p_hat *. (1. -. p_hat) /. nf) +. (z2 /. (4. *. nf *. nf))) /. denom
  in
  (p_hat, (Float.max 0. (center -. half), Float.min 1. (center +. half)))

let exceeds_with_probability xs ~cutoff ~prob =
  let p_hat, _ = threshold_probability xs cutoff in
  p_hat >= prob
