open Mde_relational
module Bitset = Column.Bitset

type t = {
  schema : Schema.t;
  n_reps : int;
  n_rows : int;
  columns : Column.t array;
  presence : Bitset.t;
}

type impl = Impl.t

let schema t = t.schema
let n_reps t = t.n_reps
let row_count t = t.n_rows
let survivors t = Bitset.popcount t.presence
let row_survivors t i = Bitset.row_popcount t.presence i
let realize_row t i r = Array.map (fun c -> Column.value c i r) t.columns
let present t i r = Bitset.get t.presence i r

(* --- observability -------------------------------------------------

   With the no-op default registry the operators skip straight to the
   work — no clock reads, no registration — so instrumented runs stay
   bit-identical to uninstrumented ones. *)

let instrumented ~cells f =
  let obs = Mde_obs.default () in
  if not (Mde_obs.enabled obs) then f ()
  else
    Mde_obs.with_span obs ~name:"bundle.kernel" (fun () ->
        let t0 = Mde_obs.Clock.wall () in
        let result = f () in
        Mde_obs.Histogram.observe
          (Mde_obs.histogram obs ~help:"Wall seconds per bundle operator sweep"
             "mde_bundle_kernel_seconds")
          (Mde_obs.Clock.wall () -. t0);
        Mde_obs.Counter.add
          (Mde_obs.counter obs
             ~help:"Row-by-repetition cells swept by bundle operators"
             "mde_bundle_cells_total")
          cells;
        result)

let count_fallbacks n =
  if n > 0 then begin
    let obs = Mde_obs.default () in
    if Mde_obs.enabled obs then
      Mde_obs.Counter.add
        (Mde_obs.counter obs
           ~help:"Bundle expressions evaluated by the interpreter fallback"
           "mde_bundle_fallback_total")
        n
  end

(* Row-chunked side-effecting sweep; [Pool.iter] chunks contiguously,
   and every per-row write (presence bytes, column slots) is disjoint
   across rows, so the parallel sweep is bit-identical to sequential. *)
let iter_rows ?pool n f = Mde_par.Pool.iter ?pool ~site:"bundle.sweep" n f

(* --- construction -------------------------------------------------- *)

let column_types schema =
  Array.of_list (List.map (fun c -> c.Schema.ty) (Schema.columns schema))

let of_stochastic_table ?pool st rng ~n_reps =
  if n_reps < 1 then invalid_arg "Bundle.of_stochastic_table: n_reps must be >= 1";
  let vg = Stochastic_table.vg st in
  if not vg.Vg.row_stable then
    invalid_arg
      (Printf.sprintf
         "Bundle.of_stochastic_table: VG function %S is not row-stable" vg.Vg.name);
  let out_schema = Stochastic_table.schema st in
  let driver_rows = Table.rows (Stochastic_table.driver st) in
  let n_rows = Array.length driver_rows in
  (* One pre-split stream per repetition, consumed driver-row-major —
     exactly how [Stochastic_table.instantiate] consumes stream [r] in
     [instantiate_many] — so realization [r] of this bundle is
     bit-identical to the naive path's instance [r], and repetitions can
     run on the pool without changing a single draw. *)
  let streams = Mde_prob.Rng.split_n rng n_reps in
  let reps_rows =
    Mde_par.Pool.init ?pool ~site:"bundle.generate" n_reps (fun r ->
        let rng = streams.(r) in
        Array.map
          (fun driver_row ->
            match Stochastic_table.generate_for_row st rng driver_row with
            | [ row ] -> row
            | rows ->
              invalid_arg
                (Printf.sprintf
                   "Bundle.of_stochastic_table: VG %S emitted %d rows for one \
                    driver row (expected 1)"
                   vg.Vg.name (List.length rows)))
          driver_rows)
  in
  let tys = column_types out_schema in
  let columns =
    Array.init (Array.length tys) (fun j ->
        Column.of_cells ~ty:tys.(j) ~rows:n_rows ~reps:n_reps (fun i r ->
            reps_rows.(r).(i).(j)))
  in
  {
    schema = out_schema;
    n_reps;
    n_rows;
    columns;
    presence = Bitset.create ~rows:n_rows ~reps:n_reps true;
  }

let of_table table ~n_reps =
  if n_reps < 1 then invalid_arg "Bundle.of_table: n_reps must be >= 1";
  let schema = Table.schema table in
  let rows = Table.rows table in
  let n_rows = Array.length rows in
  let tys = column_types schema in
  let columns =
    Array.init (Array.length tys) (fun j ->
        Column.of_det_cells ~ty:tys.(j) ~rows:n_rows ~reps:n_reps (fun i ->
            rows.(i).(j)))
  in
  { schema; n_reps; n_rows; columns; presence = Bitset.create ~rows:n_rows ~reps:n_reps true }

(* --- select -------------------------------------------------------- *)

let interp_det_only t e =
  List.for_all
    (fun name -> Column.det t.columns.(Schema.column_index t.schema name))
    (Expr.columns_used e)

let select ?pool ?(impl = `Kernel) pred t =
  instrumented ~cells:(t.n_rows * t.n_reps) (fun () ->
      let presence = Bitset.copy t.presence in
      let compiled =
        match impl with
        | `Interpreter -> None
        | `Kernel -> begin
          let env = Kernel.env_of_columns t.schema ~reps:t.n_reps t.columns in
          match Kernel.compile env pred with
          | Some node -> begin
            match Kernel.as_pred node with
            | Some test -> Some (test, Kernel.node_unc node)
            | None -> None
          end
          | None -> None
        end
      in
      begin
        match compiled with
        | Some (test, unc) ->
          if not unc then
            (* One evaluation covers every repetition. *)
            iter_rows ?pool t.n_rows (fun i ->
                if not (test i 0) then Bitset.clear_row presence i)
          else
            iter_rows ?pool t.n_rows (fun i ->
                for r = 0 to t.n_reps - 1 do
                  if Bitset.get presence i r && not (test i r) then
                    Bitset.unset presence i r
                done)
        | None ->
          (match impl with `Kernel -> count_fallbacks 1 | `Interpreter -> ());
          if interp_det_only t pred then
            iter_rows ?pool t.n_rows (fun i ->
                if not (Expr.eval_bool t.schema (realize_row t i 0) pred) then
                  Bitset.clear_row presence i)
          else
            iter_rows ?pool t.n_rows (fun i ->
                for r = 0 to t.n_reps - 1 do
                  if
                    Bitset.get presence i r
                    && not (Expr.eval_bool t.schema (realize_row t i r) pred)
                  then Bitset.unset presence i r
                done)
      end;
      { t with presence })

(* --- project / extend ---------------------------------------------- *)

let project names t =
  let idxs = List.map (Schema.column_index t.schema) names in
  {
    t with
    schema = Schema.project t.schema names;
    columns = Array.of_list (List.map (fun j -> t.columns.(j)) idxs);
  }

let extend ?pool ?(impl = `Kernel) defs t =
  let added = Schema.of_list (List.map (fun (n, ty, _) -> (n, ty)) defs) in
  let out_schema = Schema.concat t.schema added in
  instrumented ~cells:(t.n_rows * t.n_reps * List.length defs) (fun () ->
      let env = Kernel.env_of_columns t.schema ~reps:t.n_reps t.columns in
      let new_cols =
        List.map
          (fun (_, ty, e) ->
            let node =
              match impl with `Interpreter -> None | `Kernel -> Kernel.compile env e
            in
            match node with
            | Some node -> Kernel.materialize ?pool ~rows:t.n_rows ~reps:t.n_reps node
            | None ->
              (match impl with `Kernel -> count_fallbacks 1 | `Interpreter -> ());
              if interp_det_only t e then
                Column.of_det_cells ~ty ~rows:t.n_rows ~reps:t.n_reps (fun i ->
                    Expr.eval t.schema (realize_row t i 0) e)
              else
                Column.of_cells ~ty ~rows:t.n_rows ~reps:t.n_reps (fun i r ->
                    Expr.eval t.schema (realize_row t i r) e))
          defs
      in
      {
        t with
        schema = out_schema;
        columns = Array.append t.columns (Array.of_list new_cols);
      })

(* --- join ----------------------------------------------------------- *)

let det_key_exn t idxs i =
  List.map
    (fun j ->
      let c = t.columns.(j) in
      if Column.det c then Column.value c i 0
      else invalid_arg "Bundle: key column is uncertain")
    idxs

let join ~on left right =
  if left.n_reps <> right.n_reps then
    invalid_arg "Bundle.join: repetition counts differ";
  let ls = left.schema and rs = right.schema in
  let out_schema = Schema.concat ls rs in
  let l_idx = List.map (fun (l, _) -> Schema.column_index ls l) on in
  let r_idx = List.map (fun (_, r) -> Schema.column_index rs r) on in
  (* NaN-safe build side: keys hash via [Value.hash]. *)
  let build = Value.Tbl.create (max 16 right.n_rows) in
  for j = 0 to right.n_rows - 1 do
    let key = det_key_exn right r_idx j in
    if not (List.exists Value.is_null key) then Value.Tbl.add build key j
  done;
  let pairs = ref [] in
  for i = 0 to left.n_rows - 1 do
    let key = det_key_exn left l_idx i in
    if not (List.exists Value.is_null key) then
      (* find_all returns most-recent first; restore build order. *)
      List.iter
        (fun j -> pairs := (i, j) :: !pairs)
        (List.rev (Value.Tbl.find_all build key))
  done;
  let pairs = Array.of_list (List.rev !pairs) in
  let n_out = Array.length pairs in
  let li = Array.map fst pairs and ri = Array.map snd pairs in
  let columns =
    Array.append
      (Array.map (fun c -> Column.gather c li) left.columns)
      (Array.map (fun c -> Column.gather c ri) right.columns)
  in
  let presence = Bitset.create ~rows:n_out ~reps:left.n_reps false in
  Array.iteri
    (fun k (i, j) ->
      Bitset.and_rows ~dst:presence k ~a:left.presence i ~b:right.presence j)
    pairs;
  { schema = out_schema; n_reps = left.n_reps; n_rows = n_out; columns; presence }

(* --- aggregate / fused query ---------------------------------------- *)

type agg = Count | Sum of Expr.t | Avg of Expr.t | Min of Expr.t | Max of Expr.t

type group_state = {
  counts : int array;  (* per rep *)
  sums : float array array;  (* per agg, per rep *)
  mins : float array array;
  maxs : float array array;
  agg_counts : int array array;  (* per agg: rows contributing per rep *)
}

type def_eval = D_node of Kernel.node | D_interp of Expr.t
type pred_eval = P_none | P_cell of (int -> int -> bool) | P_interp of Expr.t
type agg_eval = A_count | A_cell of Kernel.cell | A_interp of Expr.t

let fused ?pool ~impl t ~pred ~defs ~keys ~aggs =
  let key_idx = List.map (Schema.column_index t.schema) keys in
  let ext_schema =
    match defs with
    | [] -> t.schema
    | _ ->
      Schema.concat t.schema
        (Schema.of_list (List.map (fun (n, ty, _) -> (n, ty)) defs))
  in
  let kernel = match impl with `Kernel -> true | `Interpreter -> false in
  let fallbacks = ref 0 in
  let env = Kernel.env_of_columns t.schema ~reps:t.n_reps t.columns in
  let def_evals =
    List.map
      (fun (name, _, e) ->
        if kernel then
          match Kernel.compile env e with
          | Some node -> (name, D_node node)
          | None ->
            incr fallbacks;
            (name, D_interp e)
        else (name, D_interp e))
      defs
  in
  let env' =
    Kernel.env_extend env
      (List.filter_map
         (function n, D_node node -> Some (n, node) | _, D_interp _ -> None)
         def_evals)
  in
  let pred_eval =
    match pred with
    | None -> P_none
    | Some p ->
      if kernel then begin
        match Option.bind (Kernel.compile env p) Kernel.as_pred with
        | Some test -> P_cell test
        | None ->
          incr fallbacks;
          P_interp p
      end
      else P_interp p
  in
  let agg_evals =
    Array.of_list
      (List.map
         (fun (_, agg) ->
           match agg with
           | Count -> A_count
           | Sum e | Avg e | Min e | Max e ->
             if kernel then begin
               match Option.bind (Kernel.compile env' e) Kernel.as_float_cell with
               | Some cell -> A_cell cell
               | None ->
                 incr fallbacks;
                 A_interp e
             end
             else A_interp e)
         aggs)
  in
  if kernel then count_fallbacks !fallbacks;
  (* Extended-schema row for interpreted aggregate arguments. *)
  let ext_row i r =
    let base = realize_row t i r in
    match def_evals with
    | [] -> base
    | _ ->
      Array.append base
        (Array.of_list
           (List.map
              (function
                | _, D_node node -> Kernel.node_value node i r
                | _, D_interp e -> Expr.eval t.schema base e)
              def_evals))
  in
  let pass =
    match pred_eval with
    | P_none -> fun _ _ -> true
    | P_cell test -> test
    | P_interp p -> fun i r -> Expr.eval_bool t.schema (realize_row t i r) p
  in
  let n_aggs = Array.length agg_evals in
  let fresh () =
    {
      counts = Array.make t.n_reps 0;
      sums = Array.init n_aggs (fun _ -> Array.make t.n_reps 0.);
      mins = Array.init n_aggs (fun _ -> Array.make t.n_reps infinity);
      maxs = Array.init n_aggs (fun _ -> Array.make t.n_reps neg_infinity);
      agg_counts = Array.init n_aggs (fun _ -> Array.make t.n_reps 0);
    }
  in
  (* Keying: packed Keycode words when every key column encodes, the
     boxed Value.Tbl otherwise. Group order is first-seen either way,
     and each group's key values are read back from its first row, so
     the two strategies are bit-identical. An uncertain key column makes
     [Keycode.of_columns] refuse (it requires det storage), which lands
     on the boxed path where [det_key_exn] raises exactly as before. *)
  let enc =
    match keys with
    | [] -> None
    | _ ->
      Keycode.of_columns [ Array.of_list (List.map (fun j -> t.columns.(j)) key_idx) ]
  in
  let state_for, finished =
    match enc with
    | Some enc ->
      let coded = Keycode.encode ?pool enc ~side:0 in
      let tbl = Keycode.tbl_create ~hint:(max 16 (t.n_rows / 8)) coded.keys in
      (* The [fresh ()] fill is a dummy shared by unused slots only;
         every live id gets its own state on first sight. *)
      let states = ref (Array.make 16 (fresh ())) in
      let rep_rows = ref (Array.make 16 0) in
      let n_groups = ref 0 in
      let state_for i =
        let id = Keycode.tbl_add tbl i in
        if id = !n_groups then begin
          if id = Array.length !states then begin
            let grow fill a =
              let bigger = Array.make (2 * Array.length a) fill in
              Array.blit a 0 bigger 0 (Array.length a);
              bigger
            in
            states := grow (fresh ()) !states;
            rep_rows := grow 0 !rep_rows
          end;
          !states.(id) <- fresh ();
          !rep_rows.(id) <- i;
          incr n_groups
        end;
        !states.(id)
      in
      let finished () =
        List.init !n_groups (fun g -> (det_key_exn t key_idx !rep_rows.(g), !states.(g)))
      in
      (state_for, finished)
    | None ->
      let groups : group_state Value.Tbl.t = Value.Tbl.create 16 in
      let order = ref [] in
      let state_for i =
        let key = det_key_exn t key_idx i in
        match Value.Tbl.find_opt groups key with
        | Some s -> s
        | None ->
          let s = fresh () in
          Value.Tbl.add groups key s;
          order := key :: !order;
          s
      in
      let finished () =
        List.map (fun key -> (key, Value.Tbl.find groups key)) (List.rev !order)
      in
      (state_for, finished)
  in
  let accumulate state a r x =
    state.sums.(a).(r) <- state.sums.(a).(r) +. x;
    if x < state.mins.(a).(r) then state.mins.(a).(r) <- x;
    if x > state.maxs.(a).(r) then state.maxs.(a).(r) <- x;
    state.agg_counts.(a).(r) <- state.agg_counts.(a).(r) + 1
  in
  begin
    match pool with
    | None ->
      (* Single fused sweep: test, derive and accumulate per cell. *)
      for i = 0 to t.n_rows - 1 do
        let state = state_for i in
        for r = 0 to t.n_reps - 1 do
          if Bitset.get t.presence i r && pass i r then begin
            state.counts.(r) <- state.counts.(r) + 1;
            Array.iteri
              (fun a ev ->
                match ev with
                | A_count -> ()
                | A_cell cell ->
                  if not (cell.Kernel.null i r) then
                    accumulate state a r (cell.Kernel.value i r)
                | A_interp e ->
                  let v = Expr.eval ext_schema (ext_row i r) e in
                  if not (Value.is_null v) then accumulate state a r (Value.to_float v))
              agg_evals
          end
        done
      done
    | Some _ ->
      (* Two-phase parallel: evaluate cells row-chunked into scratch,
         then replay the accumulation sequentially in row order — float
         addition is order-sensitive, so the replay keeps grouped sums
         bit-identical to the sequential sweep. *)
      let pass_bits = Bitset.create ~rows:t.n_rows ~reps:t.n_reps false in
      let scratch =
        Array.map
          (function
            | A_count -> None
            | A_cell _ | A_interp _ ->
              Some
                ( Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
                    (max 1 (t.n_rows * t.n_reps)),
                  Bitset.create ~rows:t.n_rows ~reps:t.n_reps false ))
          agg_evals
      in
      iter_rows ?pool t.n_rows (fun i ->
          for r = 0 to t.n_reps - 1 do
            if Bitset.get t.presence i r && pass i r then begin
              Bitset.set pass_bits i r;
              Array.iteri
                (fun a ev ->
                  match (ev, scratch.(a)) with
                  | A_count, _ | _, None -> ()
                  | A_cell cell, Some (vals, skips) ->
                    if cell.Kernel.null i r then Bitset.set skips i r
                    else
                      Bigarray.Array1.set vals ((i * t.n_reps) + r)
                        (cell.Kernel.value i r)
                  | A_interp e, Some (vals, skips) ->
                    let v = Expr.eval ext_schema (ext_row i r) e in
                    if Value.is_null v then Bitset.set skips i r
                    else
                      Bigarray.Array1.set vals ((i * t.n_reps) + r) (Value.to_float v))
                agg_evals
            end
          done);
      for i = 0 to t.n_rows - 1 do
        let state = state_for i in
        for r = 0 to t.n_reps - 1 do
          if Bitset.get pass_bits i r then begin
            state.counts.(r) <- state.counts.(r) + 1;
            Array.iteri
              (fun a ev ->
                match (ev, scratch.(a)) with
                | A_count, _ | _, None -> ()
                | (A_cell _ | A_interp _), Some (vals, skips) ->
                  if not (Bitset.get skips i r) then
                    accumulate state a r
                      (Bigarray.Array1.get vals ((i * t.n_reps) + r)))
              agg_evals
          end
        done
      done
  end;
  let finish (key, state) =
    let per_agg =
      Array.of_list
        (List.mapi
           (fun a (_, agg) ->
             Array.init t.n_reps (fun r ->
                 match agg with
                 | Count -> float_of_int state.counts.(r)
                 | Sum _ -> state.sums.(a).(r)
                 | Avg _ ->
                   if state.agg_counts.(a).(r) = 0 then nan
                   else state.sums.(a).(r) /. float_of_int state.agg_counts.(a).(r)
                 | Min _ ->
                   if state.agg_counts.(a).(r) = 0 then nan else state.mins.(a).(r)
                 | Max _ ->
                   if state.agg_counts.(a).(r) = 0 then nan else state.maxs.(a).(r)))
           aggs)
    in
    (Array.of_list key, per_agg)
  in
  let finish_empty_global () =
    (* No tuples at all and a global group: zero counts/sums, nan moments. *)
    let per_agg =
      Array.of_list
        (List.map
           (fun (_, agg) ->
             Array.init t.n_reps (fun _ ->
                 match agg with Count | Sum _ -> 0. | Avg _ | Min _ | Max _ -> nan))
           aggs)
    in
    ([||], per_agg)
  in
  match (finished (), keys) with
  | [], [] -> [ finish_empty_global () ]
  | found, _ -> List.map finish found

let aggregate ?pool ?(impl = `Kernel) ?(keys = []) aggs t =
  instrumented ~cells:(t.n_rows * t.n_reps) (fun () ->
      fused ?pool ~impl t ~pred:None ~defs:[] ~keys ~aggs)

type plan = {
  where_ : Expr.t option;
  derive : (string * Value.ty * Expr.t) list;
  group_keys : string list;
  aggs : (string * agg) list;
}

let agg_fingerprint = function
  | Count -> "count"
  | Sum e -> Format.asprintf "sum(%a)" Expr.pp e
  | Avg e -> Format.asprintf "avg(%a)" Expr.pp e
  | Min e -> Format.asprintf "min(%a)" Expr.pp e
  | Max e -> Format.asprintf "max(%a)" Expr.pp e

let plan_fingerprint plan =
  Format.asprintf "plan{where=%s;derive=[%s];keys=[%s];aggs=[%s]}"
    (match plan.where_ with
    | None -> "-"
    | Some p -> Format.asprintf "%a" Expr.pp p)
    (String.concat ";"
       (List.map
          (fun (n, ty, e) ->
            Format.asprintf "%s:%s=%a" n (Value.type_name ty) Expr.pp e)
          plan.derive))
    (String.concat ";" plan.group_keys)
    (String.concat ";"
       (List.map (fun (n, a) -> n ^ "=" ^ agg_fingerprint a) plan.aggs))

let query ?pool ?(impl = `Kernel) t plan =
  if List.for_all (Schema.mem t.schema) plan.group_keys then
    instrumented ~cells:(t.n_rows * t.n_reps) (fun () ->
        fused ?pool ~impl t ~pred:plan.where_ ~defs:plan.derive
          ~keys:plan.group_keys ~aggs:plan.aggs)
  else
    (* Group keys name derived columns: materialize, then aggregate. *)
    let t = match plan.where_ with None -> t | Some p -> select ?pool ~impl p t in
    let t = extend ?pool ~impl plan.derive t in
    aggregate ?pool ~impl ~keys:plan.group_keys plan.aggs t

let to_instances t =
  Array.init t.n_reps (fun r ->
      let rows = ref [] in
      for i = t.n_rows - 1 downto 0 do
        if Bitset.get t.presence i r then rows := realize_row t i r :: !rows
      done;
      Table.create t.schema !rows)
