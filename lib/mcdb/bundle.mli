(** Tuple-bundle query execution (§2.1), columnar edition.

    MCDB "executes a query plan only once, processing tuple bundles
    rather than ordinary tuples": each uncertain attribute of a tuple
    carries its instantiations across all Monte Carlo repetitions, while
    deterministic attributes are stored once. Storage is columnar
    ({!Column}): float attributes in float64 bigarrays, int/bool in int
    arrays, strings dictionary-encoded, and presence as a packed
    rows × reps bitset with popcount survivor counting. Predicates,
    computed columns and aggregate arguments are compiled to typed
    closures ({!Kernel}); expressions the compiler does not cover fall
    back to the {!Mde_relational.Expr} interpreter per expression, with
    identical results (fallbacks are counted on
    [mde_bundle_fallback_total] when a live {!Mde_obs} registry is
    installed, and every operator sweep records
    [mde_bundle_kernel_seconds] and [mde_bundle_cells_total]).

    Determinism contract: construction pre-splits one RNG stream per
    repetition (so realization [r] of {!to_instances} is bit-identical to
    element [r] of {!Stochastic_table.instantiate_many} with the same
    seed), and the [?pool] row-chunked parallel paths produce
    bit-identical bundles and aggregates to their sequential runs.
    [?impl:`Interpreter] forces the fallback path everywhere — the
    benchmark baseline, and the oracle the kernel path is tested
    against.

    Restrictions (documented MCDB-style): bundle construction requires a
    row-stable VG function (exactly one output row per driver row), and
    join keys / group-by keys must be deterministic columns. The general
    case falls back to {!Stochastic_table.instantiate_many} + ordinary
    queries; {!to_instances} lets tests check the two paths agree. *)

open Mde_relational

type t

type impl = Impl.t
(** The shared selector ({!Mde_relational.Impl.t}): [`Kernel] (the
    default) compiles what it can and falls back per expression;
    [`Interpreter] forces interpreted evaluation. *)

val of_stochastic_table :
  ?pool:Mde_par.Pool.t -> Stochastic_table.t -> Mde_prob.Rng.t -> n_reps:int -> t
(** Instantiate all repetitions at once, one pre-split RNG stream per
    repetition ([?pool] parallelizes over repetitions, bit-identically).
    Columns constant across repetitions are stored deterministically.
    Raises [Invalid_argument] if the table's VG function is not
    row-stable or [n_reps < 1]. *)

val of_table : Table.t -> n_reps:int -> t
(** Wrap a deterministic table (all columns deterministic, all rows
    present). *)

val schema : t -> Schema.t
val n_reps : t -> int

val row_count : t -> int
(** Physical tuples (independent of presence). *)

val survivors : t -> int
(** Present (row, repetition) cells — one popcount sweep of the packed
    presence bitmap. A fresh bundle has [row_count * n_reps]. *)

val row_survivors : t -> int -> int
(** Repetitions in which row [i] is present. *)

val realize_row : t -> int -> int -> Table.row
(** [realize_row b i r]: row [i]'s values in repetition [r]. *)

val present : t -> int -> int -> bool

val select : ?pool:Mde_par.Pool.t -> ?impl:impl -> Expr.t -> t -> t
(** Narrow presence by the predicate, sweeping the repetition axis with
    a compiled kernel (deterministic predicates evaluate once per
    tuple). [?pool] chunks rows over the domain pool; each row's
    presence bits start on a byte boundary, so chunks write disjoint
    bytes and the result is bit-identical. *)

val project : string list -> t -> t

val extend :
  ?pool:Mde_par.Pool.t -> ?impl:impl -> (string * Value.ty * Expr.t) list -> t -> t
(** Computed columns, materialized as typed columns. A compiled column
    is deterministic when the expression touches only deterministic
    inputs; a fallback column is deterministic when its values are
    observed constant across repetitions. *)

val join : on:(string * string) list -> t -> t -> t
(** Hash equi-join on deterministic key columns (keyed by
    {!Value.hash}, so NaN keys match themselves); output presence is
    the byte-wise AND of the inputs' presence. Raises
    [Invalid_argument] if a key column is uncertain or the repetition
    counts differ. *)

type agg =
  | Count
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

val aggregate :
  ?pool:Mde_par.Pool.t ->
  ?impl:impl ->
  ?keys:string list ->
  (string * agg) list ->
  t ->
  (Table.row * float array array) list
(** Grouped aggregation in one pass: for each group (keyed on
    deterministic columns; [?keys] defaults to none, i.e. one global
    group) and each named aggregate, the per-repetition aggregate values
    (array of length [n_reps]). Empty groups in a repetition yield [nan]
    for Avg/Min/Max and 0 for Count/Sum. With [?pool], evaluation is
    row-chunked and the accumulation replayed in row order, so grouped
    sums are bit-identical to the sequential pass. *)

type plan = {
  where_ : Expr.t option;  (** selection over the base schema *)
  derive : (string * Value.ty * Expr.t) list;  (** computed columns *)
  group_keys : string list;
  aggs : (string * agg) list;  (** over the derived schema *)
}
(** A select → extend → aggregate pipeline, the row-stable query shape
    the serving layer pushes through the bundle engine. *)

val plan_fingerprint : plan -> string
(** Canonical one-line rendering of a plan (expressions printed with
    {!Mde_relational.Expr.pp}) — stable across runs, the plan component
    of a serving-layer cache key. *)

val query :
  ?pool:Mde_par.Pool.t ->
  ?impl:impl ->
  t ->
  plan ->
  (Table.row * float array array) list
(** Run a plan in one fused pass: no intermediate bundle is
    materialized and presence is not rewritten — each cell is tested,
    derived and accumulated in a single sweep. Result is exactly
    [aggregate ~keys (select |> extend)] on the same bundle (asserted in
    tests, bit for bit). Group keys naming derived columns force the
    unfused compose path. *)

val to_instances : t -> Table.t array
(** Materialize each repetition as an ordinary table (presence applied) —
    the bridge to the naive path for testing and for downstream operators
    the bundle engine does not cover. Realization [r] is bit-identical
    to element [r] of {!Stochastic_table.instantiate_many} for a bundle
    built with the same seed. *)
