open Mde_relational
module Rng = Mde_prob.Rng

type t = {
  deterministic : (string, Table.t) Hashtbl.t;
  stochastic : (string, Stochastic_table.t) Hashtbl.t;
}

let create () = { deterministic = Hashtbl.create 8; stochastic = Hashtbl.create 8 }

let add_table t name table =
  if Hashtbl.mem t.stochastic name then
    invalid_arg (Printf.sprintf "Database.add_table: %S is a stochastic table" name);
  Hashtbl.replace t.deterministic name table

let add_stochastic t st =
  let name = Stochastic_table.name st in
  if Hashtbl.mem t.deterministic name then
    invalid_arg
      (Printf.sprintf "Database.add_stochastic: %S is a deterministic table" name);
  Hashtbl.replace t.stochastic name st

let sorted_keys table =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let deterministic_tables t = sorted_keys t.deterministic
let stochastic_tables t = sorted_keys t.stochastic

let fingerprint t =
  let det =
    List.map
      (fun name ->
        let table = Hashtbl.find t.deterministic name in
        Format.asprintf "%s:%a:%d" name Schema.pp (Table.schema table)
          (Table.cardinality table))
      (deterministic_tables t)
  in
  let sto =
    List.map
      (fun name -> Stochastic_table.fingerprint (Hashtbl.find t.stochastic name))
      (stochastic_tables t)
  in
  Printf.sprintf "mcdb{det=[%s];sto=[%s]}" (String.concat ";" det)
    (String.concat ";" sto)

let instantiate t rng =
  let catalog = Catalog.create () in
  Hashtbl.iter (fun name table -> Catalog.register catalog name table) t.deterministic;
  (* Realize stochastic tables in name order so the RNG consumption is
     deterministic given the seed. *)
  List.iter
    (fun name ->
      let st = Hashtbl.find t.stochastic name in
      Catalog.register catalog name (Stochastic_table.instantiate st rng))
    (stochastic_tables t);
  catalog

let monte_carlo ?pool t rng ~reps ~query =
  if reps < 1 then invalid_arg "Database.monte_carlo: reps must be >= 1";
  (* Streams are split up front, so repetition [r] consumes stream [r]
     whether it runs here or on a pool domain: parallel and sequential
     runs are bit-identical. *)
  let streams = Rng.split_n rng reps in
  Mde_par.Pool.init ?pool ~site:"mcdb.monte_carlo" reps (fun r -> query (instantiate t streams.(r)))

let plan_samples ?pool ?impl t rng ~table ~reps plan =
  if reps < 1 then invalid_arg "Database.plan_samples: reps must be >= 1";
  if plan.Bundle.group_keys <> [] then
    invalid_arg "Database.plan_samples: plan must aggregate into a single global group";
  if plan.Bundle.aggs = [] then
    invalid_arg "Database.plan_samples: plan has no aggregates";
  let st =
    match Hashtbl.find_opt t.stochastic table with
    | Some st -> st
    | None ->
      invalid_arg
        (Printf.sprintf "Database.plan_samples: unknown stochastic table %S" table)
  in
  let run () =
    let bundle = Bundle.of_stochastic_table ?pool st rng ~n_reps:reps in
    match Bundle.query ?pool ?impl bundle plan with
    | [ (_, aggs) ] -> aggs.(0)
    | results ->
      invalid_arg
        (Printf.sprintf "Database.plan_samples: expected one group, got %d"
           (List.length results))
  in
  let obs = Mde_obs.default () in
  if not (Mde_obs.enabled obs) then run ()
  else Mde_obs.with_span obs ~name:"mcdb.plan_samples" run

(* Replication counts and estimator wall time go to whatever registry
   is installed at call time (registration is idempotent, so the
   repeated [counter]/[histogram] calls are hashtable lookups). With the
   no-op default the whole block is skipped — no clock reads, no
   registration — so estimates stay bit-identical to uninstrumented
   runs. *)
let estimate ?pool t rng ~reps ~query =
  let obs = Mde_obs.default () in
  if not (Mde_obs.enabled obs) then
    Estimator.of_samples (monte_carlo ?pool t rng ~reps ~query)
  else
    Mde_obs.with_span obs ~name:"mcdb.estimate" (fun () ->
        let t0 = Mde_obs.Clock.wall () in
        let est = Estimator.of_samples (monte_carlo ?pool t rng ~reps ~query) in
        Mde_obs.Counter.add
          (Mde_obs.counter obs
             ~help:"Monte Carlo replications executed by Database.estimate"
             "mde_mcdb_replications_total")
          reps;
        Mde_obs.Histogram.observe
          (Mde_obs.histogram obs ~help:"Wall seconds per Database.estimate call"
             "mde_mcdb_estimate_seconds")
          (Mde_obs.Clock.wall () -. t0);
        est)
