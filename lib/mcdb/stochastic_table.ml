open Mde_relational

type t = {
  name : string;
  schema : Schema.t;
  driver : Table.t;
  vg : Vg.t;
  params : Table.row -> Table.t list;
  combine : Table.row -> Table.row -> Table.row;
}

let define ~name ~schema ~driver ~vg ~params ~combine =
  { name; schema; driver; vg; params; combine }

let name t = t.name
let schema t = t.schema
let vg t = t.vg
let driver t = t.driver

let fingerprint t =
  Format.asprintf "%s{vg=%s;schema=%a;driver=%d}" t.name t.vg.Vg.name Schema.pp
    t.schema
    (Table.cardinality t.driver)

let generate_for_row t rng driver_row =
  let param_tables = t.params driver_row in
  let vg_rows = t.vg.Vg.generate rng param_tables in
  List.map (fun vg_row -> t.combine driver_row vg_row) vg_rows

let instantiate t rng =
  let out = ref [] in
  Table.iter
    (fun driver_row ->
      List.iter
        (fun row -> out := row :: !out)
        (generate_for_row t rng driver_row))
    t.driver;
  Table.create t.schema (List.rev !out)

let instantiate_many ?pool t rng n =
  (* Not an assert: validation must survive [-noassert] builds. *)
  if n <= 0 then invalid_arg "Stochastic_table.instantiate_many: n must be positive";
  (* One split stream per realization, so the naive path parallelizes
     with bit-identical output to its sequential run. *)
  let streams = Mde_prob.Rng.split_n rng n in
  Mde_par.Pool.init ?pool ~site:"mcdb.instantiate" n (fun r -> instantiate t streams.(r))
