(** Turning per-repetition Monte Carlo outputs into answers: moments and
    quantiles of the query-result distribution, plus the MCDB-R risk
    extensions (extreme quantiles, conditional tail expectation) and
    probabilistic threshold queries (§2.1, [5, 42]). *)

type estimate = {
  n : int;  (** samples the estimate is based on, after NaN dropping *)
  dropped : int;  (** [nan] samples (empty-group repetitions) discarded *)
  mean : float;
  std : float;
  std_error : float;
  ci95 : float * float;  (** normal-approximation 95 % CI for the mean *)
}

val of_samples : float array -> estimate
(** Requires ≥ 2 non-[nan] samples; [nan] entries (empty-group
    repetitions) are dropped first and counted in [dropped]. Raises
    [Invalid_argument] — naming the drop count — when too few remain,
    and (like every function below) when a non-empty input is entirely
    [nan]. All validation survives [-noassert] builds. *)

val pp_estimate : Format.formatter -> estimate -> unit

val quantile : float array -> float -> float
(** Sample quantile of the result distribution. *)

val quantile_ci : float array -> float -> float -> float * float
(** [quantile_ci xs p level] — distribution-free order-statistic
    confidence interval for the p-quantile using the binomial normal
    approximation. Raises [Invalid_argument] on fewer than 2 samples or
    [p]/[level] outside (0,1). *)

val extreme_quantile : float array -> float -> float
(** MCDB-R-style risk quantile (e.g. p = 0.99): sample quantile with a
    tail-sensitivity check; requires [p] in (0,1) and enough samples
    that the tail region contains at least one observation, else raises
    [Invalid_argument]. *)

val quantiles : float array -> float array -> float array
(** [quantiles xs ps]: several quantiles off a single sort (per-call
    {!quantile} re-sorts the samples each time). Element [i] equals
    [quantile xs ps.(i)] exactly. Raises [Invalid_argument] on an empty
    (or all-[nan]) input or a [p] outside [0,1]. *)

val tail_estimate : float array -> p:float -> level:float -> float * (float * float)
(** [tail_estimate xs ~p ~level] = ([extreme_quantile xs p],
    [quantile_ci xs p level]) computed off one sort instead of two —
    the point estimate and its order-statistic CI for a risk quantile,
    the pair every tail query wants. Identical values and validation to
    the two separate calls. *)

val conditional_tail_expectation : float array -> float -> float
(** [conditional_tail_expectation xs p]: mean of the values at or above
    the p-quantile — expected shortfall, the standard risk companion to
    the extreme quantile. *)

val threshold_probability : float array -> float -> float * (float * float)
(** [threshold_probability xs cutoff] estimates P(result > cutoff) with a
    Wilson 95 % confidence interval — the "more than a 2 % decline with
    at least 50 % probability" query shape. *)

val exceeds_with_probability :
  float array -> cutoff:float -> prob:float -> bool
(** Decision form of a threshold query: is the estimated
    P(result > cutoff) at least [prob]? *)
