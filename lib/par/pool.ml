(* Task counts per domain and chunk latency feed the observability
   registry (counters are atomic, the histogram takes its own lock), so
   recording from worker domains is safe. With the no-op registry every
   recording site is a branch — no clock reads, no allocation. *)
type metrics = {
  obs_on : bool;
  domain_tasks : Mde_obs.Counter.t array;  (* index 0 = submitting domain *)
  chunk_seconds : Mde_obs.Histogram.t;
}

type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
  n_domains : int;
  metrics : metrics;
}

(* Workers block on [work_available] until a task arrives or the pool
   closes; a closing pool still drains whatever is queued. *)
let rec worker_loop pool tasks_counter =
  Mutex.lock pool.mutex;
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some _ as task -> task
    | None ->
      if pool.closing then None
      else begin
        Condition.wait pool.work_available pool.mutex;
        next ()
      end
  in
  let task = next () in
  Mutex.unlock pool.mutex;
  match task with
  | Some task ->
    task ();
    Mde_obs.Counter.incr tasks_counter;
    worker_loop pool tasks_counter
  | None -> ()

let create ?domains () =
  let n =
    match domains with
    | None -> Domain.recommended_domain_count ()
    | Some d -> d
  in
  if n < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let obs = Mde_obs.default () in
  let metrics =
    {
      obs_on = Mde_obs.enabled obs;
      domain_tasks =
        Array.init n (fun i ->
            Mde_obs.counter obs ~help:"Pool tasks executed, by domain (0 = caller)"
              ~labels:[ ("domain", string_of_int i) ]
              "mde_pool_tasks_total");
      chunk_seconds =
        Mde_obs.histogram obs ~help:"Wall seconds per executed pool chunk"
          "mde_pool_chunk_seconds";
    }
  in
  let pool =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [||];
      n_domains = n;
      metrics;
    }
  in
  pool.workers <-
    Array.init (n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool metrics.domain_tasks.(i + 1)));
  pool

let domains pool = pool.n_domains

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.closing then Mutex.unlock pool.mutex
  else begin
    pool.closing <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Run [run_chunk lo hi] for each chunk of [0, n), spread over the pool.
   The submitting domain takes part: while its batch is outstanding it
   executes queued tasks (its own batch's or any other), and only sleeps
   when the queue is momentarily empty. Exactly one exception — the
   first, in completion order — survives the batch and is re-raised on
   the caller once every chunk has finished, so a failing batch never
   leaves tasks behind to corrupt a later one. *)
let parallel_chunks pool ~n ~chunk run_chunk =
  let n_chunks = (n + chunk - 1) / chunk in
  let remaining = ref n_chunks in
  let error = ref None in
  let batch_done = Condition.create () in
  let task_for c () =
    let t0 = if pool.metrics.obs_on then Mde_obs.Clock.wall () else 0. in
    (try run_chunk (c * chunk) (min n ((c + 1) * chunk))
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock pool.mutex;
       if !error = None then error := Some (e, bt);
       Mutex.unlock pool.mutex);
    if pool.metrics.obs_on then
      Mde_obs.Histogram.observe pool.metrics.chunk_seconds (Mde_obs.Clock.wall () -. t0);
    Mutex.lock pool.mutex;
    decr remaining;
    if !remaining = 0 then Condition.broadcast batch_done;
    Mutex.unlock pool.mutex
  in
  Mutex.lock pool.mutex;
  if pool.closing then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool: submitted to a shut-down pool"
  end;
  for c = 0 to n_chunks - 1 do
    Queue.add (task_for c) pool.queue
  done;
  Condition.broadcast pool.work_available;
  let rec help () =
    if !remaining > 0 then begin
      match Queue.take_opt pool.queue with
      | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        Mde_obs.Counter.incr pool.metrics.domain_tasks.(0);
        Mutex.lock pool.mutex;
        help ()
      | None ->
        Condition.wait batch_done pool.mutex;
        help ()
    end
  in
  help ();
  Mutex.unlock pool.mutex;
  match !error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let default_chunk pool n =
  (* Aim for ~4 chunks per domain: fine enough to balance uneven work,
     coarse enough to keep scheduling overhead negligible. *)
  max 1 ((n + (4 * pool.n_domains) - 1) / (4 * pool.n_domains))

let parallel_init pool ?chunk n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if pool.closing then invalid_arg "Pool: submitted to a shut-down pool";
  if n = 0 then [||]
  else if pool.n_domains <= 1 then Array.init n f
  else begin
    let chunk =
      match chunk with
      | Some c ->
        if c < 1 then invalid_arg "Pool.parallel_init: chunk must be >= 1";
        c
      | None -> default_chunk pool n
    in
    let out = Array.make n None in
    parallel_chunks pool ~n ~chunk (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f i)
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map pool ?chunk f a =
  parallel_init pool ?chunk (Array.length a) (fun i -> f a.(i))

let map ?pool f a =
  match pool with None -> Array.map f a | Some p -> parallel_map p f a

let init ?pool n f =
  match pool with None -> Array.init n f | Some p -> parallel_init p n f
